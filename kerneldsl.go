package adore

import "repro/internal/compiler"

// Statement kinds of the kernel IR, re-exported for composite literals.
const (
	SLoadInt    = compiler.SLoadInt
	SLoadFloat  = compiler.SLoadFloat
	SStoreInt   = compiler.SStoreInt
	SStoreFloat = compiler.SStoreFloat
	SAddImm     = compiler.SAddImm
	SAdd        = compiler.SAdd
	SAnd        = compiler.SAnd
	SXor        = compiler.SXor
	SShl        = compiler.SShl
	SFAdd       = compiler.SFAdd
	SFMul       = compiler.SFMul
	SFSub       = compiler.SFSub
	SFMA        = compiler.SFMA
	SCvtFI      = compiler.SCvtFI
	SCvtIF      = compiler.SCvtIF
	SGetSig     = compiler.SGetSig
)

// Reference kinds, re-exported.
const (
	RefAffine   = compiler.RefAffine
	RefIndirect = compiler.RefIndirect
	RefPointer  = compiler.RefPointer
)

// InitLinear initializes array element i to i*mult + add.
func InitLinear(mult, add int64) compiler.InitSpec {
	return compiler.InitSpec{Kind: compiler.InitLinear, Mult: mult, Add: add}
}

// InitLinearMod initializes element i to (i*mult + add) mod m — the usual
// shape for index arrays feeding indirect references.
func InitLinearMod(mult, add, m int64) compiler.InitSpec {
	return compiler.InitSpec{Kind: compiler.InitLinear, Mult: mult, Add: add, Mod: m}
}

// InitChain builds a linked structure of nodeSize-byte nodes whose next
// pointer lives at nextOff; shufflePct percent of the links are redirected
// pseudo-randomly (0 = fully regular traversal).
func InitChain(nodeSize, nextOff int64, shufflePct int, seed uint64) compiler.InitSpec {
	return compiler.InitSpec{
		Kind: compiler.InitChain, NodeSize: nodeSize, NextOff: nextOff,
		ShufflePct: shufflePct, Seed: seed,
	}
}

// Load reads size bytes from array with the given per-iteration stride.
func Load(dst, array string, stride int64, size int) Stmt {
	return Stmt{Kind: SLoadInt, Dst: dst, Size: size,
		Ref: &Ref{Kind: RefAffine, Array: array, InnerStride: stride}}
}

// LoadF reads a double from array with the given stride.
func LoadF(dst, array string, stride int64) Stmt {
	return Stmt{Kind: SLoadFloat, Dst: dst,
		Ref: &Ref{Kind: RefAffine, Array: array, InnerStride: stride}}
}

// LoadFAt is LoadF with a starting byte offset (staggering de-aligns the
// line crossings of concurrently streamed arrays).
func LoadFAt(dst, array string, stride, offset int64) Stmt {
	return Stmt{Kind: SLoadFloat, Dst: dst,
		Ref: &Ref{Kind: RefAffine, Array: array, InnerStride: stride, Offset: offset}}
}

// Store writes size bytes of src to array with the given stride.
func Store(src, array string, stride int64, size int) Stmt {
	return Stmt{Kind: SStoreInt, A: src, Size: size,
		Ref: &Ref{Kind: RefAffine, Array: array, InnerStride: stride}}
}

// StoreF writes the double src to array with the given stride.
func StoreF(src, array string, stride int64) Stmt {
	return Stmt{Kind: SStoreFloat, A: src,
		Ref: &Ref{Kind: RefAffine, Array: array, InnerStride: stride}}
}

// Gather reads size bytes from array[idxTemp], scaling the index by scale
// bytes — the indirect reference pattern (Fig. 5B).
func Gather(dst, array, idxTemp string, scale int64, size int) Stmt {
	return Stmt{Kind: SLoadInt, Dst: dst, Size: size,
		Ref: &Ref{Kind: RefIndirect, Array: array, IndexTemp: idxTemp, Scale: scale}}
}

// LoadPtr reads 8 bytes from *(ptrTemp + off) — the pointer-chasing
// pattern (Fig. 5C) when the result feeds ptrTemp again.
func LoadPtr(dst, ptrTemp string, off int64) Stmt {
	return Stmt{Kind: SLoadInt, Dst: dst, Size: 8,
		Ref: &Ref{Kind: RefPointer, PtrTemp: ptrTemp, Offset: off}}
}

// InitPtr sets a loop-carried temp to &array + offset before the loop.
func InitPtr(temp, array string, offset int64) compiler.Init {
	return compiler.Init{Temp: temp, Array: array, Offset: offset}
}

// InitImm sets a loop-carried temp to an immediate before the loop.
func InitImm(temp string, v int64) compiler.Init {
	return compiler.Init{Temp: temp, IsImm: true, Imm: v}
}
