package adore_test

import (
	"fmt"
	"log"

	"repro"
)

// Example runs the DAXPY loop of the paper's §1.3 on the simulated
// Itanium 2, then again under the ADORE dynamic optimizer, and reports
// what the optimizer did. The output is deterministic: the simulator has
// no wall-clock or randomness outside seeded generators.
func Example() {
	n := int64(1 << 15)
	kernel := &adore.Kernel{
		Name: "daxpy",
		Arrays: []adore.Array{
			{Name: "x", Elem: 8, N: n, Float: true, Init: adore.InitLinear(1, 0)},
			{Name: "y", Elem: 8, N: n, Float: true, Init: adore.InitLinear(2, 0)},
		},
		Phases: []adore.Phase{{
			Name:   "daxpy",
			Repeat: 60,
			Loops: []*adore.Loop{{
				Name:      "daxpy",
				OuterTrip: 1,
				InnerTrip: n,
				Body: []adore.Stmt{
					adore.LoadF("xv", "x", 8),
					adore.LoadFAt("yv", "y", 8, 24),
					{Kind: adore.SFMA, Dst: "r", A: "xv", B: "a", C: "yv"},
					adore.StoreF("r", "y", 8),
				},
				FloatTemps: []string{"a"},
			}},
		}},
	}

	build, err := adore.Compile(kernel, adore.CompileOptions())
	if err != nil {
		log.Fatal(err)
	}
	base, err := adore.Run(build, adore.RunOptions())
	if err != nil {
		log.Fatal(err)
	}
	opt, err := adore.Run(build, adore.WithADORE(adore.RunOptions()))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("patched traces: %d\n", opt.Core.TracesPatched)
	fmt.Printf("direct prefetches inserted: %d\n", opt.Core.DirectPrefetches)
	fmt.Printf("faster: %v\n", opt.CPU.Cycles < base.CPU.Cycles)
	// Output:
	// patched traces: 1
	// direct prefetches inserted: 2
	// faster: true
}
