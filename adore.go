// Package adore is the public API of the ADORE reproduction: a simulated
// Itanium-2-class machine, an ORC-like static compiler, seventeen SPEC
// CPU2000-like workloads, and the ADORE dynamic optimizer itself — runtime
// data-cache prefetching driven by hardware performance-monitoring samples,
// after Lu et al., "The Performance of Runtime Data Cache Prefetching in a
// Dynamic Optimization System" (MICRO-36, 2003).
//
// Quick start:
//
//	bench, _ := adore.Benchmark("mcf", 1.0)
//	build, _ := adore.Compile(bench.Kernel, adore.CompileOptions())
//
//	base, _ := adore.Run(build, adore.RunOptions())          // plain O2
//	opt, _ := adore.Run(build, adore.WithADORE(adore.RunOptions()))
//	fmt.Printf("speedup: %.1f%%\n", 100*adore.Speedup(base.CPU.Cycles, opt.CPU.Cycles))
//
// The experiment drivers (Fig7, Table1, ...) regenerate every table and
// figure of the paper's evaluation; `cmd/adore-bench` wraps them.
//
// The exported names are aliases of the internal implementation packages,
// so everything reachable from here is usable without importing internals:
// isa/asm/program (the simulated target), memsys/cpu/pmu (the machine),
// compiler (the static side), core (the dynamic optimizer), verify (the
// machine-code verifier), workloads and harness (the evaluation).
package adore

import (
	"context"
	"io"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/harness"
	"repro/internal/memsys"
	"repro/internal/obs"
	"repro/internal/pmu"
	"repro/internal/verify"
	"repro/internal/workloads"
)

// Workload definition and compilation.
type (
	// Kernel is the loop-oriented workload IR accepted by the compiler.
	Kernel = compiler.Kernel
	// Array declares one data region of a kernel.
	Array = compiler.Array
	// Phase is a repeat-counted sequence of loops.
	Phase = compiler.Phase
	// Loop is a one- or two-deep loop nest.
	Loop = compiler.Loop
	// Stmt is one loop-body statement.
	Stmt = compiler.Stmt
	// Ref is a memory reference (affine, indirect, or pointer-chasing).
	Ref = compiler.Ref
	// Init sets a loop-carried temp before the inner loop starts.
	Init = compiler.Init
	// BuildOptions are the static compiler knobs (O2/O3, SWP, reserved
	// registers, profile-guided prefetch filtering).
	BuildOptions = compiler.Options
	// Build is compiled output: the program image plus Table 1 metrics.
	Build = compiler.BuildResult
)

// The dynamic optimizer.
type (
	// Config holds every ADORE parameter: sampling, phase detection,
	// trace selection, prefetch generation, patching.
	Config = core.Config
	// Controller is the dynopt thread.
	Controller = core.Controller
	// OptStats aggregates what the optimizer did (Table 2 counters).
	OptStats = core.Stats
)

// The observability layer (DESIGN.md §10): a cycle-stamped event recorder
// threaded through the controller, CPI-stack accounting in the CPU, and
// exporters for Perfetto (Chrome trace format), JSONL, and a text timeline.
type (
	// ObsEvent is one recorded controller/counter event.
	ObsEvent = obs.Event
	// ObsKind identifies what an ObsEvent records.
	ObsKind = obs.Kind
	// ObsCapture is one run's complete event stream.
	ObsCapture = obs.Capture
	// Recorder is the fixed-capacity event ring buffer.
	Recorder = obs.Recorder
	// CPIStack partitions elapsed cycles into busy / load-stall /
	// flush / fetch (cpu.Config.Accounting).
	CPIStack = cpu.CPIStack
	// PrefetchStats aggregates prefetch-usefulness counters.
	PrefetchStats = memsys.PrefetchStats
)

// WithObserve enables the observability layer on a run configuration:
// RunResult.Obs carries the event stream (on ADORE runs) and
// RunResult.CPIStack/LoopCPI the cycle accounting.
func WithObserve(rc RunConfig) RunConfig {
	rc.Observe = true
	return rc
}

// WriteChromeTrace writes a capture in Chrome trace-event format, loadable
// in Perfetto and chrome://tracing.
func WriteChromeTrace(w io.Writer, c *ObsCapture) error { return obs.WriteChromeTrace(w, c) }

// WriteEventsJSONL writes a capture as JSON Lines (one event per line).
func WriteEventsJSONL(w io.Writer, c *ObsCapture) error { return obs.WriteJSONL(w, c) }

// ValidateChromeTrace checks that data is a well-formed Chrome trace with
// per-track monotonic timestamps, returning the timestamped event count.
func ValidateChromeTrace(data []byte) (int, error) { return obs.ValidateChromeTrace(data) }

// Timeline renders a capture as a plain-text per-window history.
func Timeline(c *ObsCapture) string { return obs.Timeline(c) }

// The static machine-code verifier (DESIGN.md §9). It checks generated
// images after every compile, guards every runtime patch installation
// (Config.Verify, on by default), and backs cmd/adore-lint.
type (
	// Finding is one verifier diagnostic, addressed by bundle and slot.
	Finding = verify.Finding
	// VerifyRule names the check that produced a finding.
	VerifyRule = verify.Rule
	// VerifyOptions configures a verification pass.
	VerifyOptions = verify.Options
)

// VerifyImage statically checks a compiled image and returns its findings
// (nil when clean). Compile already runs this; it is exported for checking
// images loaded or modified outside the build path.
func VerifyImage(b *Build, opt VerifyOptions) []Finding {
	return verify.CheckImage(b.Image, opt)
}

// The machine and harness.
type (
	// MachineConfig is the CPU issue model.
	MachineConfig = cpu.Config
	// MemoryConfig is the cache hierarchy geometry.
	MemoryConfig = memsys.HierarchyConfig
	// SamplingConfig programs the PMU sampler.
	SamplingConfig = pmu.Config
	// RunConfig selects what to wire around a workload for one run.
	RunConfig = harness.RunConfig
	// Result is the outcome of one run.
	Result = harness.RunResult
	// WorkloadInfo describes one of the 17 SPEC2000-like benchmarks.
	WorkloadInfo = workloads.Benchmark
)

// Experiment drivers (one per table/figure in the paper's evaluation).
type (
	ExpConfig    = harness.ExpConfig
	Fig7Result   = harness.Fig7Result
	Table1Result = harness.Table1Result
	Table2Result = harness.Table2Result
	SeriesResult = harness.SeriesResult
	Fig10Result  = harness.Fig10Result
	Fig11Result  = harness.Fig11Result
	// PolicyMatrixResult is the policy-layer evaluation: every benchmark ×
	// every registered prefetch policy × the runtime selector.
	PolicyMatrixResult = harness.PolicyMatrixResult
)

// The concurrent experiment engine. Every run is hermetic, so sweeps
// parallelize freely: set ExpConfig.Engine (or pass -j to cmd/adore-bench)
// to run the paper's sweeps on a worker pool with a shared build cache.
type (
	// Engine schedules experiment jobs on a bounded worker pool and
	// deduplicates compiles through a single-flight build cache.
	Engine = harness.Engine
	// EngineConfig sizes the engine: Parallelism (0 = GOMAXPROCS,
	// 1 = serial) and an optional progress callback.
	EngineConfig = harness.EngineConfig
	// EngineProgress is one live job start/finish event.
	EngineProgress = harness.Progress
	// EngineJob pairs a compile spec with one run configuration.
	EngineJob = harness.Job
	// EngineCompileSpec names one cached compilation unit.
	EngineCompileSpec = harness.CompileSpec
	// EngineBuildCache is the single-flight compile cache.
	EngineBuildCache = harness.BuildCache
)

// O2 and O3 are the compilation levels of the evaluation.
const (
	O2 = compiler.O2
	O3 = compiler.O3
)

// Benchmarks returns the 17 paper benchmarks at the given workload scale
// (1.0 = the standard run lengths).
func Benchmarks(scale float64) []WorkloadInfo { return workloads.All(scale) }

// Benchmark returns one benchmark by its SPEC name ("mcf", "art", ...).
func Benchmark(name string, scale float64) (WorkloadInfo, error) {
	return workloads.ByName(name, scale)
}

// CompileOptions returns the paper's restricted configuration: O2, no
// software pipelining, registers r27-r30 and p6 reserved for the runtime
// optimizer.
func CompileOptions() BuildOptions { return compiler.DefaultOptions() }

// Compile lowers a kernel to a simulated IA-64 program image.
func Compile(k *Kernel, opts BuildOptions) (*Build, error) { return compiler.Build(k, opts) }

// DefaultConfig returns ADORE parameters scaled for simulated runs.
func DefaultConfig() Config { return core.DefaultConfig() }

// RunOptions returns the standard machine configuration without ADORE.
func RunOptions() RunConfig { return harness.DefaultRunConfig() }

// WithADORE enables the dynamic optimizer on a run configuration.
func WithADORE(rc RunConfig) RunConfig {
	rc.ADORE = true
	if rc.Core.W == 0 {
		rc.Core = core.DefaultConfig()
	}
	return rc
}

// WithPolicy selects a named prefetch policy for the run's optimizer and
// implies WithADORE. The built-ins are "paper" (the default §3 pipeline),
// "nextline", "adaptive", and "throttle"; Policies lists what is
// registered. An unknown name surfaces as an error from Run.
func WithPolicy(rc RunConfig, policy string) RunConfig {
	rc = WithADORE(rc)
	rc.Core.Policy = policy
	rc.Core.Selector = false
	return rc
}

// WithSelector enables the runtime policy selector, which re-picks the
// prefetch policy from live machine counters at every stable phase.
// Implies WithADORE and overrides any fixed WithPolicy choice.
func WithSelector(rc RunConfig) RunConfig {
	rc = WithADORE(rc)
	rc.Core.Policy = ""
	rc.Core.Selector = true
	return rc
}

// Policies returns the registered prefetch-policy names, sorted.
func Policies() []string { return core.PrefetchPolicyNames() }

// Run executes a compiled workload.
func Run(b *Build, rc RunConfig) (*Result, error) { return harness.Run(b, rc) }

// RunContext is Run with cancellation threaded through the simulator: the
// CPU polls ctx between bundles, so long simulations stop promptly.
func RunContext(ctx context.Context, b *Build, rc RunConfig) (*Result, error) {
	return harness.RunContext(ctx, b, rc)
}

// NewEngine creates a concurrent experiment engine. Share one engine
// across sweeps to share its build cache.
func NewEngine(cfg EngineConfig) *Engine { return harness.NewEngine(cfg) }

// Speedup returns base/test - 1 (positive: test is faster).
func Speedup(baseCycles, testCycles uint64) float64 {
	return harness.Speedup(baseCycles, testCycles)
}

// Experiments returns a default full-scale experiment configuration.
func Experiments() ExpConfig { return harness.DefaultExpConfig() }

// Fig7 regenerates Fig. 7(a) (level O2) or 7(b) (level O3).
func Fig7(cfg ExpConfig, level compiler.OptLevel) (*Fig7Result, error) {
	return harness.RunFig7(cfg, level)
}

// Table1 regenerates the profile-guided static prefetching comparison.
func Table1(cfg ExpConfig) (*Table1Result, error) { return harness.RunTable1(cfg) }

// Table2 regenerates the prefetch pattern analysis.
func Table2(cfg ExpConfig) (*Table2Result, error) { return harness.RunTable2(cfg) }

// Series regenerates the Fig. 8 (art) / Fig. 9 (mcf) time series for any
// benchmark.
func Series(cfg ExpConfig, name string) (*SeriesResult, error) {
	return harness.RunSeries(cfg, name)
}

// Fig10 regenerates the register-reservation/SWP impact comparison.
func Fig10(cfg ExpConfig) (*Fig10Result, error) { return harness.RunFig10(cfg) }

// Fig11 regenerates the monitoring-overhead measurement.
func Fig11(cfg ExpConfig) (*Fig11Result, error) { return harness.RunFig11(cfg) }

// PolicyMatrix runs every benchmark under every registered prefetch policy
// and the runtime selector, against the no-prefetching baseline.
func PolicyMatrix(cfg ExpConfig) (*PolicyMatrixResult, error) {
	return harness.RunPolicyMatrix(cfg)
}
