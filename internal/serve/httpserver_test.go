package serve

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

// TestHardenedTimeouts pins the Slowloris hardening: the server a command
// binds MUST carry read-side timeouts (the bug was a bare
// &http.Server{Handler: mux} with none).
func TestHardenedTimeouts(t *testing.T) {
	srv := Hardened(http.NewServeMux())
	if srv.ReadHeaderTimeout <= 0 {
		t.Error("ReadHeaderTimeout unset: slow-header clients pin connections forever")
	}
	if srv.ReadTimeout <= 0 {
		t.Error("ReadTimeout unset: slow-body clients pin connections forever")
	}
	if srv.IdleTimeout <= 0 {
		t.Error("IdleTimeout unset")
	}
	if srv.MaxHeaderBytes <= 0 {
		t.Error("MaxHeaderBytes unset")
	}
}

// TestListenAndServeGraceful pins the shutdown contract: cancelling ctx
// lets an in-flight request finish (zero dropped requests) and returns
// nil for a clean drain.
func TestListenAndServeGraceful(t *testing.T) {
	inHandler := make(chan struct{})
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, _ *http.Request) {
		close(inHandler)
		<-release
		fmt.Fprint(w, "finished")
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- ListenAndServe(ctx, Hardened(mux), ln, 5*time.Second) }()

	got := make(chan string, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/slow")
		if err != nil {
			got <- "error: " + err.Error()
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		got <- string(b)
	}()
	<-inHandler

	// Shutdown starts while the request is in flight...
	cancel()
	time.Sleep(20 * time.Millisecond)
	close(release)

	// ...and both the request and the server must finish cleanly.
	select {
	case body := <-got:
		if body != "finished" {
			t.Fatalf("in-flight request dropped during graceful shutdown: %q", body)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("clean drain returned %v, want nil", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("ListenAndServe did not return after shutdown")
	}
}

// TestListenAndServeGraceExpiry pins the bounded deadline: a request that
// outlives the grace cannot wedge shutdown; ListenAndServe force-closes
// and reports the shutdown error.
func TestListenAndServeGraceExpiry(t *testing.T) {
	started := make(chan struct{})
	block := make(chan struct{})
	defer close(block)
	mux := http.NewServeMux()
	mux.HandleFunc("/stuck", func(w http.ResponseWriter, r *http.Request) {
		close(started)
		select {
		case <-block:
		case <-r.Context().Done():
		}
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- ListenAndServe(ctx, Hardened(mux), ln, 50*time.Millisecond) }()

	go http.Get("http://" + ln.Addr().String() + "/stuck")
	<-started
	cancel()

	select {
	case err := <-served:
		if err == nil {
			t.Fatal("grace expired with a stuck request but ListenAndServe reported a clean drain")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stuck request wedged shutdown past the grace deadline")
	}
}
