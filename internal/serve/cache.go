package serve

import (
	"container/list"
	"context"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// The response cache: the serving-path half of the ROADMAP's "sharded run
// fleet with a content-addressed result cache". Keys are request
// fingerprints (sha256 over the normalized request document — see
// request.go), values are fully marshaled response bodies, so a cache hit
// is served byte-identical to the cold run that filled it, with zero
// re-marshaling. The fingerprint prefix picks the shard, each shard is an
// independently locked bounded LRU (the lesson of the unbounded
// harness.ResultCache: a long-lived process must not grow its cache with
// its query universe), and each entry is single-flight — concurrent
// identical requests share one simulation.

// CacheConfig sizes the sharded response cache.
type CacheConfig struct {
	// Shards is the shard count, rounded up to a power of two (so the
	// fingerprint prefix maps onto shards with a mask). Default 8.
	Shards int
	// ShardCap bounds each shard's completed entries (LRU eviction past
	// it). Default 128.
	ShardCap int
}

// ShardedCache is a sharded, bounded-LRU, single-flight cache of response
// bodies keyed by request fingerprint.
type ShardedCache struct {
	shards []*cacheShard
	mask   uint64

	// Aggregate counters, mirrored live when a registry is attached.
	mHits      *metrics.Counter
	mMisses    *metrics.Counter
	mEvictions *metrics.Counter
}

// cacheShard is one independently locked LRU shard.
type cacheShard struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	lru     *list.List // of *cacheEntry; front = most recently used
	cap     int

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64

	// Load signals for the shard manager: every request to the shard
	// (hit or miss) counts once, with its full service latency.
	requests  atomic.Uint64
	latencyNS atomic.Uint64
}

// cacheEntry is one single-flight slot: ready closes once body/err are
// set. In-flight entries (elem == nil) are never evicted — their waiters
// hold the pointer, and evicting one would let a concurrent identical
// request start a duplicate simulation.
type cacheEntry struct {
	key   string
	ready chan struct{}
	body  []byte
	err   error
	elem  *list.Element
}

// NewShardedCache builds the cache and registers its aggregate counters
// on reg (nil runs unmetered for free).
func NewShardedCache(cfg CacheConfig, reg *metrics.Registry) *ShardedCache {
	want := cfg.Shards
	if want <= 0 {
		want = 8
	}
	n := 1
	for n < want {
		n <<= 1
	}
	capacity := cfg.ShardCap
	if capacity <= 0 {
		capacity = 128
	}
	c := &ShardedCache{
		shards:     make([]*cacheShard, n),
		mask:       uint64(n - 1),
		mHits:      reg.Counter("adore_serve_cache_hits_total", "requests served from the sharded response cache (incl. in-flight joins)"),
		mMisses:    reg.Counter("adore_serve_cache_misses_total", "requests that ran a simulation"),
		mEvictions: reg.Counter("adore_serve_cache_evictions_total", "completed responses dropped by shard LRU bounds"),
	}
	for i := range c.shards {
		c.shards[i] = &cacheShard{entries: map[string]*cacheEntry{}, lru: list.New(), cap: capacity}
	}
	return c
}

// Shards reports the shard count.
func (c *ShardedCache) Shards() int { return len(c.shards) }

// ShardFor maps a fingerprint to its shard index by prefix: the leading
// hex digits select the shard, so the keyspace spreads uniformly (the
// fingerprint is a cryptographic hash). Non-hex keys fall back to FNV.
func (c *ShardedCache) ShardFor(key string) int {
	var v uint64
	n := 0
	for ; n < len(key) && n < 8; n++ {
		d := hexVal(key[n])
		if d < 0 {
			break
		}
		v = v<<4 | uint64(d)
	}
	if n == 0 {
		h := fnv.New64a()
		h.Write([]byte(key))
		v = h.Sum64()
	}
	return int(v & c.mask)
}

func hexVal(b byte) int {
	switch {
	case b >= '0' && b <= '9':
		return int(b - '0')
	case b >= 'a' && b <= 'f':
		return int(b-'a') + 10
	case b >= 'A' && b <= 'F':
		return int(b-'A') + 10
	}
	return -1
}

// Do returns the body cached under key, filling it with fill on a miss.
// Concurrent calls with the same key run fill once and share its result
// (hit reports whether THIS call was served without running fill). A
// failed fill is handed to the waiters that joined it but evicted, so a
// retry re-runs; a waiter whose own ctx fires returns immediately instead
// of stranding on a stuck fill; a panicking fill releases its waiters
// before the panic propagates.
func (c *ShardedCache) Do(ctx context.Context, key string, fill func(context.Context) ([]byte, error)) (body []byte, hit bool, err error) {
	s := c.shards[c.ShardFor(key)]
	start := time.Now()
	defer func() {
		s.requests.Add(1)
		s.latencyNS.Add(uint64(time.Since(start)))
	}()

	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		if e.elem != nil {
			s.lru.MoveToFront(e.elem)
		}
		s.mu.Unlock()
		s.hits.Add(1)
		c.mHits.Inc()
		select {
		case <-e.ready:
			return e.body, true, e.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	s.entries[key] = e
	s.mu.Unlock()
	s.misses.Add(1)
	c.mMisses.Inc()

	finished := false
	defer func() {
		if !finished {
			e.err = fmt.Errorf("serve: cache fill for %s died", key)
			s.mu.Lock()
			delete(s.entries, key)
			s.mu.Unlock()
			close(e.ready)
		}
	}()
	e.body, e.err = fill(ctx)
	finished = true
	s.mu.Lock()
	if e.err != nil {
		delete(s.entries, key)
	} else {
		e.elem = s.lru.PushFront(e)
		for s.lru.Len() > s.cap {
			victim := s.lru.Remove(s.lru.Back()).(*cacheEntry)
			delete(s.entries, victim.key)
			s.evictions.Add(1)
			c.mEvictions.Inc()
		}
	}
	s.mu.Unlock()
	close(e.ready)
	return e.body, false, e.err
}

// Stats reports the aggregate cache effectiveness across shards.
func (c *ShardedCache) Stats() (hits, misses, evictions uint64) {
	for _, s := range c.shards {
		hits += s.hits.Load()
		misses += s.misses.Load()
		evictions += s.evictions.Load()
	}
	return hits, misses, evictions
}

// ShardLoad reports shard i's cumulative request count and service
// latency — the shard manager's input signals.
func (c *ShardedCache) ShardLoad(i int) (requests, latencyNS uint64) {
	s := c.shards[i]
	return s.requests.Load(), s.latencyNS.Load()
}

// ShardStats reports shard i's cache counters and current entry count
// (the /shards introspection document).
func (c *ShardedCache) ShardStats(i int) (hits, misses, evictions uint64, entries int) {
	s := c.shards[i]
	s.mu.Lock()
	entries = len(s.entries)
	s.mu.Unlock()
	return s.hits.Load(), s.misses.Load(), s.evictions.Load(), entries
}
