package serve

import (
	"net/http"
	"testing"
)

// TestRequestNormalize pins defaulting and validation.
func TestRequestNormalize(t *testing.T) {
	r := RunRequest{Workload: "mcf"}
	if err := r.normalize(); err != nil {
		t.Fatalf("minimal request rejected: %v", err)
	}
	if r.Scale != 0.05 || r.Opt != "O2" || r.ADORE {
		t.Fatalf("defaults wrong: %+v", r)
	}

	// Policy implies ADORE; so does Selector.
	p := RunRequest{Workload: "mcf", Policy: "paper"}
	if err := p.normalize(); err != nil {
		t.Fatal(err)
	}
	if !p.ADORE {
		t.Fatal("policy did not imply ADORE")
	}
	sel := RunRequest{Workload: "mcf", Selector: true}
	if err := sel.normalize(); err != nil {
		t.Fatal(err)
	}
	if !sel.ADORE {
		t.Fatal("selector did not imply ADORE")
	}

	bad := []RunRequest{
		{},
		{Workload: "mcf", Scale: 1.5},
		{Workload: "mcf", Scale: -1},
		{Workload: "mcf", Opt: "O1"},
		{Workload: "mcf", Policy: "warp"},
	}
	for i, r := range bad {
		if err := r.normalize(); err == nil {
			t.Errorf("bad request %d accepted: %+v", i, r)
		} else if err.code != http.StatusBadRequest {
			t.Errorf("bad request %d: code %d, want 400", i, err.code)
		}
	}
	if err := (&RunRequest{Workload: "nope"}).normalize(); err == nil || err.code != http.StatusNotFound {
		t.Fatalf("unknown workload: %v, want 404", err)
	}
}

// TestFingerprintIdentity pins the cache-key semantics: fingerprints are
// over the normalized document (sparse == explicit-default), differ when
// any simulated value differs, and /run can never collide with /sweep.
func TestFingerprintIdentity(t *testing.T) {
	norm := func(r RunRequest) RunRequest {
		if err := r.normalize(); err != nil {
			t.Fatalf("normalize: %v", err)
		}
		return r
	}
	sparse := norm(RunRequest{Workload: "mcf"})
	explicit := norm(RunRequest{Workload: "mcf", Scale: 0.05, Opt: "O2"})
	if sparse.Fingerprint() != explicit.Fingerprint() {
		t.Fatal("normalized-equal requests fingerprint differently")
	}
	if len(sparse.Fingerprint()) != 24 {
		t.Fatalf("fingerprint %q, want 24 hex chars", sparse.Fingerprint())
	}

	distinct := []RunRequest{
		norm(RunRequest{Workload: "mcf"}),
		norm(RunRequest{Workload: "art"}),
		norm(RunRequest{Workload: "mcf", Scale: 0.1}),
		norm(RunRequest{Workload: "mcf", Opt: "O3"}),
		norm(RunRequest{Workload: "mcf", ADORE: true}),
		norm(RunRequest{Workload: "mcf", Policy: "paper"}),
		norm(RunRequest{Workload: "mcf", Selector: true}),
		norm(RunRequest{Workload: "mcf", MaxInsts: 1000}),
	}
	seen := map[string]int{}
	for i, r := range distinct {
		fp := r.Fingerprint()
		if j, dup := seen[fp]; dup {
			t.Fatalf("requests %d and %d collide: %+v vs %+v", i, j, distinct[i], distinct[j])
		}
		seen[fp] = i
	}

	sw := SweepRequest{Workload: "mcf"}
	if err := sw.normalize(); err != nil {
		t.Fatal(err)
	}
	if sw.Fingerprint() == sparse.Fingerprint() {
		t.Fatal("a sweep fingerprint collided with a run fingerprint")
	}
}

// TestSweepNormalize pins sweep column defaulting and validation.
func TestSweepNormalize(t *testing.T) {
	sw := SweepRequest{Workload: "mcf"}
	if err := sw.normalize(); err != nil {
		t.Fatal(err)
	}
	if len(sw.Policies) < 3 || sw.Policies[0] != "base" || sw.Policies[len(sw.Policies)-1] != "selector" {
		t.Fatalf("default columns wrong: %v", sw.Policies)
	}
	jobs, err := sw.jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != len(sw.Policies) {
		t.Fatalf("%d jobs for %d columns", len(jobs), len(sw.Policies))
	}
	// Job 0 is the base column: no ADORE; the rest attach it.
	if jobs[0].Config.ADORE {
		t.Fatal("base column got ADORE")
	}
	for i := 1; i < len(jobs); i++ {
		if !jobs[i].Config.ADORE {
			t.Fatalf("column %q missing ADORE", sw.Policies[i])
		}
	}

	if err := (&SweepRequest{Workload: "mcf", Policies: []string{"base", "warp"}}).normalize(); err == nil {
		t.Fatal("unknown column accepted")
	}
	if err := (&SweepRequest{Workload: "mcf", Policies: []string{"paper", "paper"}}).normalize(); err == nil {
		t.Fatal("duplicate column accepted")
	}
}
