package serve

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// Hardened wraps a handler in an http.Server with the timeouts a
// long-running service must set: without ReadHeaderTimeout/ReadTimeout a
// client that dribbles its request a byte at a time (Slowloris) pins a
// connection — and its goroutine — forever. WriteTimeout stays generous
// because a cold sweep legitimately takes minutes; the read-side limits
// are what keep an idle attacker from holding sockets.
func Hardened(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      10 * time.Minute,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
}

// ListenAndServe runs srv on ln until ctx fires, then shuts it down
// gracefully: in-flight requests get until grace to finish before the
// server is closed hard. A Serve error other than the expected
// ErrServerClosed is returned (the old fire-and-forget `go srv.Serve(ln)`
// silently discarded e.g. an fd exhaustion error and left the process
// looking healthy with a dead listener).
func ListenAndServe(ctx context.Context, srv *http.Server, ln net.Listener, grace time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		// Grace expired with requests still in flight; close them hard.
		srv.Close()
		return err
	}
	return nil
}
