package serve

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/metrics"
)

// The shard manager: the control loop of the run fleet. Each shard owns a
// resizable pool of worker slots; a cache miss acquires a slot from its
// shard's pool before simulating, so the fleet's total concurrency is
// bounded and the split across shards is a policy the manager re-decides
// every interval from the shards' observed load (request rate × mean
// latency ≈ offered concurrency, Little's law), smoothed with an EWMA so
// one bursty interval does not thrash allocations. Hot shards grow, cold
// shards shrink to the floor — the add/drop-replica loop of a sharded
// cache fleet, scaled down to one process.

// slotPool is a context-aware resizable semaphore. Tokens live in a
// buffered channel sized for the largest possible allocation; shrinking
// swallows tokens as they are released (debt) when none are free to
// remove immediately.
type slotPool struct {
	tokens chan struct{}
	mu     sync.Mutex
	cap    int // current allocation
	debt   int // tokens to swallow on release after a shrink
}

func newSlotPool(max, initial int) *slotPool {
	if initial > max {
		initial = max
	}
	p := &slotPool{tokens: make(chan struct{}, max), cap: initial}
	for i := 0; i < initial; i++ {
		p.tokens <- struct{}{}
	}
	return p
}

// Acquire takes a slot, blocking until one frees or ctx fires.
func (p *slotPool) Acquire(ctx context.Context) error {
	select {
	case <-p.tokens:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns a slot (or pays down shrink debt).
func (p *slotPool) Release() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.debt > 0 {
		p.debt--
		return
	}
	p.tokens <- struct{}{}
}

// Resize sets the allocation to n slots. Growth first cancels pending
// debt, then adds tokens; shrinking removes free tokens immediately and
// books the remainder as debt against future releases.
func (p *slotPool) Resize(n int) {
	if n < 0 {
		n = 0
	}
	if n > cap(p.tokens) {
		n = cap(p.tokens)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	delta := n - p.cap
	p.cap = n
	for delta > 0 && p.debt > 0 {
		p.debt--
		delta--
	}
	for ; delta > 0; delta-- {
		p.tokens <- struct{}{}
	}
	for ; delta < 0; delta++ {
		select {
		case <-p.tokens:
		default:
			p.debt++
		}
	}
}

// Cap reports the current allocation.
func (p *slotPool) Cap() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cap
}

// ManagerConfig sizes the shard manager.
type ManagerConfig struct {
	// TotalSlots is the fleet's worker budget, split across shards.
	// Default GOMAXPROCS.
	TotalSlots int
	// MinPerShard is the allocation floor (a shard must always be able to
	// make progress). Default 1.
	MinPerShard int
	// Interval is the rebalance period of the Run loop. Default 2s.
	Interval time.Duration
	// Alpha is the EWMA weight of the newest load observation. Default 0.5.
	Alpha float64
}

func (c ManagerConfig) withDefaults() ManagerConfig {
	if c.TotalSlots <= 0 {
		c.TotalSlots = runtime.GOMAXPROCS(0)
	}
	if c.MinPerShard <= 0 {
		c.MinPerShard = 1
	}
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.5
	}
	return c
}

// ShardManager watches per-shard latency/RPS and resizes the shards'
// worker-slot pools.
type ShardManager struct {
	cfg   ManagerConfig
	cache *ShardedCache
	pools []*slotPool

	lastReq []uint64
	lastLat []uint64
	ewma    []float64

	rps     []*metrics.Gauge // adore_serve_shard_<i>_rps_milli
	latency []*metrics.Gauge // adore_serve_shard_<i>_latency_us
	workers []*metrics.Gauge // adore_serve_shard_<i>_workers
}

// NewShardManager builds the manager over cache's shards, every pool
// starting at an even split of the slot budget, and registers the
// per-shard gauges on reg (nil runs unmetered).
func NewShardManager(cache *ShardedCache, cfg ManagerConfig, reg *metrics.Registry) *ShardManager {
	cfg = cfg.withDefaults()
	n := cache.Shards()
	m := &ShardManager{
		cfg:     cfg,
		cache:   cache,
		pools:   make([]*slotPool, n),
		lastReq: make([]uint64, n),
		lastLat: make([]uint64, n),
		ewma:    make([]float64, n),
		rps:     make([]*metrics.Gauge, n),
		latency: make([]*metrics.Gauge, n),
		workers: make([]*metrics.Gauge, n),
	}
	for i := 0; i < n; i++ {
		m.rps[i] = reg.Gauge(fmt.Sprintf("adore_serve_shard_%d_rps_milli", i), "shard request rate over the last rebalance interval, milli-requests/s")
		m.latency[i] = reg.Gauge(fmt.Sprintf("adore_serve_shard_%d_latency_us", i), "shard mean service latency over the last rebalance interval, µs")
		m.workers[i] = reg.Gauge(fmt.Sprintf("adore_serve_shard_%d_workers", i), "worker slots currently allocated to the shard")
	}
	alloc := m.evenSplit()
	for i := 0; i < n; i++ {
		m.pools[i] = newSlotPool(cfg.TotalSlots, alloc[i])
		m.workers[i].Set(int64(alloc[i]))
	}
	return m
}

// Pool returns shard i's slot pool.
func (m *ShardManager) Pool(i int) *slotPool { return m.pools[i] }

// Allocations reports the current per-shard slot allocation.
func (m *ShardManager) Allocations() []int {
	out := make([]int, len(m.pools))
	for i, p := range m.pools {
		out[i] = p.Cap()
	}
	return out
}

// Run rebalances every Interval until ctx fires.
func (m *ShardManager) Run(ctx context.Context) {
	t := time.NewTicker(m.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			m.Rebalance(m.cfg.Interval)
		}
	}
}

// Rebalance performs one control step over an interval of the given
// length: fold each shard's request/latency deltas into its load EWMA,
// publish the RPS/latency gauges, and redistribute the slot budget
// proportionally to the smoothed load (floor MinPerShard each, largest
// remainder for the leftovers). Exported so tests (and callers with
// their own cadence) can drive the loop deterministically.
func (m *ShardManager) Rebalance(elapsed time.Duration) {
	n := len(m.pools)
	secs := elapsed.Seconds()
	if secs <= 0 {
		secs = 1
	}
	for i := 0; i < n; i++ {
		req, lat := m.cache.ShardLoad(i)
		dReq := req - m.lastReq[i]
		dLat := lat - m.lastLat[i]
		m.lastReq[i], m.lastLat[i] = req, lat
		rps := float64(dReq) / secs
		var meanNS float64
		if dReq > 0 {
			meanNS = float64(dLat) / float64(dReq)
		}
		// Offered concurrency ≈ arrival rate × service time.
		work := rps * meanNS / 1e9
		m.ewma[i] = m.cfg.Alpha*work + (1-m.cfg.Alpha)*m.ewma[i]
		m.rps[i].Set(int64(rps * 1000))
		m.latency[i].Set(int64(meanNS / 1000))
	}
	alloc := m.split(m.ewma)
	for i := 0; i < n; i++ {
		m.pools[i].Resize(alloc[i])
		m.workers[i].Set(int64(alloc[i]))
	}
}

// evenSplit divides the budget with no load signal.
func (m *ShardManager) evenSplit() []int {
	return m.split(make([]float64, m.cache.Shards()))
}

// split allocates TotalSlots across shards proportionally to weight,
// with a MinPerShard floor and deterministic largest-remainder rounding
// (ties to the lower shard index). A zero weight vector splits evenly.
func (m *ShardManager) split(weight []float64) []int {
	n := len(weight)
	alloc := make([]int, n)
	floor := m.cfg.MinPerShard
	total := m.cfg.TotalSlots
	if total < n*floor {
		// Budget under the floor (more shards than cores): the floor wins.
		// A zero-slot shard deadlocks every miss that hashes to it, while
		// oversubscribing is harmless — the engine's own worker pool still
		// bounds real concurrency; shard slots only shape the queue.
		for i := range alloc {
			alloc[i] = floor
		}
		return alloc
	}
	spare := total - n*floor
	var sum float64
	for _, w := range weight {
		sum += w
	}
	for i := range alloc {
		alloc[i] = floor
	}
	if spare == 0 {
		return alloc
	}
	if sum == 0 {
		for i := 0; spare > 0; i = (i + 1) % n {
			alloc[i]++
			spare--
		}
		return alloc
	}
	type rem struct {
		i    int
		frac float64
	}
	rems := make([]rem, n)
	used := 0
	for i, w := range weight {
		exact := float64(spare) * w / sum
		whole := int(exact)
		alloc[i] += whole
		used += whole
		rems[i] = rem{i: i, frac: exact - float64(whole)}
	}
	// Largest remainder first; stable on ties by shard index.
	for left := spare - used; left > 0; left-- {
		best := -1
		for j := range rems {
			if best < 0 || rems[j].frac > rems[best].frac {
				best = j
			}
		}
		alloc[rems[best].i]++
		rems[best].frac = -1
	}
	return alloc
}
