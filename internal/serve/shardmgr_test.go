package serve

import (
	"context"
	"testing"
	"time"

	"repro/internal/metrics"
)

// TestSlotPoolResize pins the resizable-semaphore bookkeeping: shrink
// with slots outstanding books debt that releases pay down; growth
// cancels debt before adding tokens.
func TestSlotPoolResize(t *testing.T) {
	ctx := context.Background()
	p := newSlotPool(8, 2)
	if p.Cap() != 2 {
		t.Fatalf("Cap = %d, want 2", p.Cap())
	}
	// Take both slots.
	if err := p.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := p.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	// Shrink to 1 while both are outstanding: nothing free to remove, so
	// the shrink becomes debt and the next release is swallowed.
	p.Resize(1)
	p.Release()
	timed, cancel := context.WithTimeout(ctx, 30*time.Millisecond)
	defer cancel()
	if err := p.Acquire(timed); err == nil {
		t.Fatal("acquire succeeded past the shrunken allocation")
	}
	// The second release lands as the single live token.
	p.Release()
	if err := p.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	p.Release()

	// Growth must mint usable tokens.
	p.Resize(3)
	for i := 0; i < 3; i++ {
		if err := p.Acquire(ctx); err != nil {
			t.Fatalf("acquire %d after grow: %v", i, err)
		}
	}
	// Grow while debt is pending: shrink 3->0 (all outstanding = 3 debt),
	// then grow to 2 — debt absorbs the growth, so after releasing all
	// three, exactly 2 tokens exist.
	p.Resize(0)
	p.Resize(2)
	p.Release()
	p.Release()
	p.Release()
	if err := p.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := p.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	timed2, cancel2 := context.WithTimeout(ctx, 30*time.Millisecond)
	defer cancel2()
	if err := p.Acquire(timed2); err == nil {
		t.Fatal("more tokens live than the allocation")
	}
}

// TestSplitAllocation pins the budget split: floors, proportionality,
// largest-remainder rounding, and the oversubscribed floor-wins case.
func TestSplitAllocation(t *testing.T) {
	cache := NewShardedCache(CacheConfig{Shards: 4, ShardCap: 4}, nil)
	m := NewShardManager(cache, ManagerConfig{TotalSlots: 10, MinPerShard: 1}, nil)

	sum := func(a []int) int {
		s := 0
		for _, v := range a {
			s += v
		}
		return s
	}

	// No signal: even split of the whole budget.
	even := m.split([]float64{0, 0, 0, 0})
	if sum(even) != 10 {
		t.Fatalf("even split spends %d of 10", sum(even))
	}
	for i, v := range even {
		if v < 2 || v > 3 {
			t.Fatalf("even split shard %d = %d, want 2..3", i, v)
		}
	}

	// One hot shard takes the spare; everyone keeps the floor.
	hot := m.split([]float64{9, 0, 0, 0})
	if want := []int{7, 1, 1, 1}; !equalInts(hot, want) {
		t.Fatalf("hot split = %v, want %v", hot, want)
	}

	// Largest remainder: 6 spare across weights 1:1:1:3 → exact shares
	// 1,1,1,3 — all integral here, so check a fractional case too.
	frac := m.split([]float64{1, 1, 1, 2})
	if sum(frac) != 10 {
		t.Fatalf("fractional split spends %d of 10", sum(frac))
	}
	if frac[3] <= frac[0] {
		t.Fatalf("heavier shard not favored: %v", frac)
	}

	// Budget under the floor: every shard still gets the floor (a
	// zero-slot shard would deadlock its misses).
	tight := NewShardManager(cache, ManagerConfig{TotalSlots: 2, MinPerShard: 1}, nil)
	for i, v := range tight.split([]float64{0, 0, 0, 0}) {
		if v < 1 {
			t.Fatalf("oversubscribed split starves shard %d: %v", i, v)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRebalanceTracksLoad drives the control loop deterministically:
// synthetic load deltas on one shard must pull worker slots toward it,
// and the per-shard gauges must publish the observed signals.
func TestRebalanceTracksLoad(t *testing.T) {
	reg := metrics.NewRegistry()
	cache := NewShardedCache(CacheConfig{Shards: 2, ShardCap: 4}, reg)
	m := NewShardManager(cache, ManagerConfig{TotalSlots: 8, MinPerShard: 1, Alpha: 1}, reg)

	start := m.Allocations()
	if start[0] != 4 || start[1] != 4 {
		t.Fatalf("initial allocation = %v, want even [4 4]", start)
	}

	// Shard 0: 100 requests × 200ms mean over a 1s interval ≈ 20 slots of
	// offered work. Shard 1: idle.
	cache.shards[0].requests.Add(100)
	cache.shards[0].latencyNS.Add(100 * 200_000_000)
	m.Rebalance(time.Second)

	alloc := m.Allocations()
	if alloc[0] <= alloc[1] {
		t.Fatalf("hot shard not favored: %v", alloc)
	}
	if alloc[0]+alloc[1] != 8 {
		t.Fatalf("allocation spends %d of 8", alloc[0]+alloc[1])
	}
	if alloc[1] < 1 {
		t.Fatalf("cold shard below floor: %v", alloc)
	}

	// Gauges publish the interval's signals: 100 RPS = 100000 milli-RPS,
	// 200ms mean = 200000µs.
	var snap = map[string]int64{}
	for _, s := range reg.Snapshot() {
		snap[s.Name] = s.Gauge
	}
	if got := snap["adore_serve_shard_0_rps_milli"]; got != 100000 {
		t.Errorf("rps gauge = %d, want 100000", got)
	}
	if got := snap["adore_serve_shard_0_latency_us"]; got != 200000 {
		t.Errorf("latency gauge = %d, want 200000", got)
	}
	if got := snap["adore_serve_shard_0_workers"]; got != int64(alloc[0]) {
		t.Errorf("workers gauge = %d, want %d", got, alloc[0])
	}

	// Load dies down: allocations drift back toward even.
	m.Rebalance(time.Second)
	cooled := m.Allocations()
	if cooled[0] != 4 || cooled[1] != 4 {
		t.Fatalf("after cooldown (alpha=1) allocation = %v, want [4 4]", cooled)
	}
}
