package serve

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/harness"
)

// StatusTracker folds engine progress callbacks into the /status JSON
// document. It is shared by adore-serve and adore-bench's -metrics-addr
// endpoint.
type StatusTracker struct {
	mu     sync.Mutex
	start  time.Time
	sweeps map[string]*sweepStatus
}

type sweepStatus struct {
	Total   int      `json:"total"`
	Started int      `json:"started"`
	Done    int      `json:"done"`
	Failed  int      `json:"failed"`
	Running []string `json:"running,omitempty"`
}

// NewStatusTracker starts an empty tracker; uptime counts from here.
func NewStatusTracker() *StatusTracker {
	return &StatusTracker{start: time.Now(), sweeps: map[string]*sweepStatus{}}
}

// Progress observes one engine event; safe for concurrent use (the engine
// calls it from worker goroutines).
func (t *StatusTracker) Progress(p harness.Progress) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.sweeps[p.Sweep]
	if s == nil {
		s = &sweepStatus{}
		t.sweeps[p.Sweep] = s
	}
	s.Total = p.Total
	if !p.Done {
		s.Started++
		s.Running = append(s.Running, p.Job)
		return
	}
	if p.Err != nil {
		s.Failed++
	} else {
		s.Done++
	}
	for i, name := range s.Running {
		if name == p.Job {
			s.Running = append(s.Running[:i], s.Running[i+1:]...)
			break
		}
	}
}

// marshalStatus renders the status document; a variable so tests can
// force the failure path.
var marshalStatus = func(doc any) ([]byte, error) {
	return json.MarshalIndent(doc, "", "  ")
}

// ServeHTTP renders the tracker as the /status JSON document. The
// snapshot is taken under the lock but marshaled outside it, and
// marshaling completes BEFORE the first response byte: a marshal failure
// becomes a clean 500 instead of a half-written 200 body (the bug the
// old encoder-straight-to-ResponseWriter version had — by the time
// Encode failed, the 200 and a body prefix were already on the wire, and
// the error was discarded besides).
func (t *StatusTracker) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	t.mu.Lock()
	names := make([]string, 0, len(t.sweeps))
	for name := range t.sweeps {
		names = append(names, name)
	}
	sort.Strings(names)
	type entry struct {
		Sweep string `json:"sweep"`
		sweepStatus
	}
	doc := struct {
		UptimeSeconds float64 `json:"uptime_seconds"`
		Sweeps        []entry `json:"sweeps"`
	}{UptimeSeconds: time.Since(t.start).Seconds()}
	for _, name := range names {
		s := *t.sweeps[name]
		s.Running = append([]string(nil), s.Running...)
		doc.Sweeps = append(doc.Sweeps, entry{Sweep: name, sweepStatus: s})
	}
	t.mu.Unlock()

	body, err := marshalStatus(doc)
	if err != nil {
		http.Error(w, "status marshal: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(body, '\n'))
}
