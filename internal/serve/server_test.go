package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// testServer builds a small service instance backed by the real engine
// (runs are cheap at tiny scales on the simulated machine).
func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{Parallelism: 2, Shards: 2, ShardCap: 16, TotalSlots: 4})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestHandlerValidation pins the error mapping: malformed JSON and bad
// fields are 400, an unknown workload is 404, a wrong method 405.
func TestHandlerValidation(t *testing.T) {
	_, ts := testServer(t)
	cases := []struct {
		name string
		path string
		body string
		want int
	}{
		{"bad json", "/run", `{"workload": `, http.StatusBadRequest},
		{"unknown field", "/run", `{"workload":"mcf","typo":1}`, http.StatusBadRequest},
		{"missing workload", "/run", `{}`, http.StatusBadRequest},
		{"bad scale", "/run", `{"workload":"mcf","scale":2}`, http.StatusBadRequest},
		{"bad opt", "/run", `{"workload":"mcf","opt":"O9"}`, http.StatusBadRequest},
		{"bad policy", "/run", `{"workload":"mcf","policy":"warp"}`, http.StatusBadRequest},
		{"unknown workload", "/run", `{"workload":"nope"}`, http.StatusNotFound},
		{"sweep bad json", "/sweep", `[`, http.StatusBadRequest},
		{"sweep dup column", "/sweep", `{"workload":"mcf","policies":["base","base"]}`, http.StatusBadRequest},
		{"sweep unknown workload", "/sweep", `{"workload":"nope"}`, http.StatusNotFound},
	}
	for _, c := range cases {
		resp := post(t, ts.URL+c.path, c.body)
		readAll(t, resp)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
	resp, err := http.Get(ts.URL + "/run")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /run: status %d, want 405", resp.StatusCode)
	}
}

// TestRunCachedByteIdentical pins the core serving contract: the second
// identical request is a cache hit whose body is byte-identical to the
// cold response, with the disposition only in headers.
func TestRunCachedByteIdentical(t *testing.T) {
	s, ts := testServer(t)
	const body = `{"workload":"ammp","scale":0.02,"policy":"paper"}`

	cold := post(t, ts.URL+"/run", body)
	coldBody := readAll(t, cold)
	if cold.StatusCode != http.StatusOK {
		t.Fatalf("cold run: status %d: %s", cold.StatusCode, coldBody)
	}
	if got := cold.Header.Get("X-Adore-Cache"); got != "miss" {
		t.Fatalf("cold X-Adore-Cache = %q, want miss", got)
	}
	fp := cold.Header.Get("X-Adore-Fingerprint")
	if len(fp) != 24 {
		t.Fatalf("fingerprint %q, want 24 hex chars", fp)
	}

	warm := post(t, ts.URL+"/run", body)
	warmBody := readAll(t, warm)
	if warm.StatusCode != http.StatusOK {
		t.Fatalf("warm run: status %d", warm.StatusCode)
	}
	if got := warm.Header.Get("X-Adore-Cache"); got != "hit" {
		t.Fatalf("warm X-Adore-Cache = %q, want hit", got)
	}
	if warm.Header.Get("X-Adore-Fingerprint") != fp {
		t.Fatalf("fingerprint changed between identical requests")
	}
	if !bytes.Equal(coldBody, warmBody) {
		t.Fatalf("cache hit not byte-identical:\ncold: %s\nwarm: %s", coldBody, warmBody)
	}

	// A semantically identical but sparser document (defaults elided the
	// same way) must hit too: fingerprints are over the NORMALIZED doc.
	sparse := post(t, ts.URL+"/run", `{"workload":"ammp","scale":0.02,"policy":"paper","opt":"O2"}`)
	sparseBody := readAll(t, sparse)
	if got := sparse.Header.Get("X-Adore-Cache"); got != "hit" {
		t.Fatalf("normalized-equal request X-Adore-Cache = %q, want hit", got)
	}
	if !bytes.Equal(coldBody, sparseBody) {
		t.Fatalf("normalized-equal request body differs")
	}

	var doc RunResponse
	if err := json.Unmarshal(coldBody, &doc); err != nil {
		t.Fatalf("response not a RunResponse: %v", err)
	}
	if doc.Workload != "ammp" || doc.Policy != "paper" || doc.Cycles == 0 {
		t.Fatalf("response content wrong: %+v", doc)
	}
	if hits, misses, _ := s.Cache().Stats(); misses != 1 || hits != 2 {
		t.Fatalf("cache stats = %d hits / %d misses, want 2/1", hits, misses)
	}
}

// TestRunConcurrentSingleFlight pins dedup through the full HTTP path:
// concurrent identical requests simulate once and all get one body.
func TestRunConcurrentSingleFlight(t *testing.T) {
	s, ts := testServer(t)
	const body = `{"workload":"art","scale":0.02}`
	const n = 6
	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/run", "application/json", bytes.NewReader([]byte(body)))
			if err != nil {
				t.Errorf("POST: %v", err)
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d body differs from request 0", i)
		}
	}
	if _, misses, _ := s.Cache().Stats(); misses != 1 {
		t.Fatalf("%d cache misses for %d concurrent identical requests, want 1", misses, n)
	}
}

// TestSweepForked pins the /sweep path: a policy sweep runs fork-grouped,
// reports per-column results in order, and caches like /run.
func TestSweepForked(t *testing.T) {
	_, ts := testServer(t)
	const body = `{"workload":"equake","scale":0.02,"policies":["base","nextline","selector"]}`
	cold := post(t, ts.URL+"/sweep", body)
	coldBody := readAll(t, cold)
	if cold.StatusCode != http.StatusOK {
		t.Fatalf("sweep: status %d: %s", cold.StatusCode, coldBody)
	}
	var doc SweepResponse
	if err := json.Unmarshal(coldBody, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != 3 {
		t.Fatalf("%d results, want 3", len(doc.Results))
	}
	wantCols := []string{"base", "nextline", "selector"}
	for i, col := range wantCols {
		if doc.Results[i].Policy != col {
			t.Fatalf("result %d policy = %q, want %q", i, doc.Results[i].Policy, col)
		}
	}
	if doc.Results[0].Prefetches != 0 {
		t.Fatalf("base column reports %d prefetches, want 0", doc.Results[0].Prefetches)
	}
	if doc.Fork == nil {
		t.Fatal("sweep response missing fork summary")
	}
	// nextline + selector differ only in policy: they either fork-group
	// or (no snapshot boundary at this scale) fall back to straight runs.
	if doc.Fork.Groups+doc.Fork.StraightRuns == 0 {
		t.Fatalf("fork summary empty: %+v", doc.Fork)
	}

	warm := post(t, ts.URL+"/sweep", body)
	warmBody := readAll(t, warm)
	if got := warm.Header.Get("X-Adore-Cache"); got != "hit" {
		t.Fatalf("repeat sweep X-Adore-Cache = %q, want hit", got)
	}
	if !bytes.Equal(coldBody, warmBody) {
		t.Fatal("repeat sweep body not byte-identical")
	}
}

// TestShardsEndpoint pins the introspection document shape.
func TestShardsEndpoint(t *testing.T) {
	s, ts := testServer(t)
	readAll(t, post(t, ts.URL+"/run", `{"workload":"gzip","scale":0.02}`))
	resp, err := http.Get(ts.URL + "/shards")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Shards []shardDoc `json:"shards"`
	}
	if err := json.Unmarshal(readAll(t, resp), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Shards) != s.Cache().Shards() {
		t.Fatalf("%d shard rows, want %d", len(doc.Shards), s.Cache().Shards())
	}
	var misses, workers uint64
	for _, row := range doc.Shards {
		misses += row.Misses
		workers += uint64(row.Workers)
	}
	if misses != 1 {
		t.Fatalf("shard table shows %d misses, want 1", misses)
	}
	if workers == 0 {
		t.Fatal("shard table shows no worker slots allocated")
	}
}
