// Package serve is the simulation-as-a-service front door: a long-running
// HTTP/JSON service that accepts run and sweep requests (workload, scale,
// compile options, ADORE/policy configuration), executes them on a worker
// fleet built from the experiment engine, and serves repeated requests
// from a sharded content-addressed response cache in O(1) — the paper's
// premise at fleet scale: once the heavy warmup is paid, re-evaluating a
// prefetching decision is cheap, and a cached decision is free.
//
// Identity is by value end to end: a request fingerprints to a content
// address (request.go) built on the same keys the engine caches already
// trust — compiler.Options.Fingerprint() for the compile half,
// harness.RunConfig.Fingerprint() for the run half — so a cache hit is
// provably the same simulation, and the cached body is returned
// byte-identical to the cold run that produced it. The fingerprint prefix
// picks a shard (cache.go); a shard-manager control loop watches
// per-shard latency/RPS and resizes the shards' worker-slot allocations
// (shardmgr.go). DESIGN.md §17 documents the architecture.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/harness"
	"repro/internal/memsys"
	"repro/internal/metrics"
)

// Config sizes the service.
type Config struct {
	// Parallelism is the engine's worker-pool width (0 = GOMAXPROCS).
	Parallelism int
	// Shards and ShardCap size the response cache (CacheConfig).
	Shards   int
	ShardCap int
	// TotalSlots is the shard manager's worker budget (0 = the engine's
	// effective parallelism).
	TotalSlots int
	// Rebalance is the shard-manager interval (default 2s).
	Rebalance time.Duration
	// EngineResultCap bounds the engine's inner result cache; a
	// long-running service must never run an unbounded cache. Default
	// 1024.
	EngineResultCap int
	// Registry receives every metric (engine + serve). Created if nil.
	Registry *metrics.Registry
}

// Server is the simulation-as-a-service HTTP front door.
type Server struct {
	reg    *metrics.Registry
	eng    *harness.Engine
	cache  *ShardedCache
	mgr    *ShardManager
	status *StatusTracker
	mux    *http.ServeMux

	requests   *metrics.Counter
	failures   *metrics.Counter
	latency    *metrics.Histogram
	forkGroups *metrics.Counter
	forkedRuns *metrics.Counter
}

// New assembles the service: engine, sharded cache, shard manager, and
// the HTTP mux. Call Run to start the manager's control loop.
func New(cfg Config) *Server {
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	if cfg.EngineResultCap <= 0 {
		cfg.EngineResultCap = 1024
	}
	s := &Server{
		reg:        reg,
		status:     NewStatusTracker(),
		cache:      NewShardedCache(CacheConfig{Shards: cfg.Shards, ShardCap: cfg.ShardCap}, reg),
		requests:   reg.Counter("adore_serve_requests_total", "HTTP run/sweep requests received"),
		failures:   reg.Counter("adore_serve_failures_total", "HTTP run/sweep requests that failed"),
		latency:    reg.Histogram("adore_serve_request_latency_ns", "run/sweep request service latency"),
		forkGroups: reg.Counter("adore_serve_fork_groups_total", "fork groups formed by sweep requests"),
		forkedRuns: reg.Counter("adore_serve_forked_runs_total", "sweep continuations resumed from a warmup snapshot"),
	}
	s.eng = harness.NewEngine(harness.EngineConfig{
		Parallelism:    cfg.Parallelism,
		OnProgress:     s.status.Progress,
		Metrics:        reg,
		ResultCacheCap: cfg.EngineResultCap,
	})
	slots := cfg.TotalSlots
	if slots <= 0 {
		slots = s.eng.Parallelism()
	}
	s.mgr = NewShardManager(s.cache, ManagerConfig{
		TotalSlots: slots,
		Interval:   cfg.Rebalance,
	}, reg)

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/run", s.handleRun)
	s.mux.HandleFunc("/sweep", s.handleSweep)
	s.mux.HandleFunc("/shards", s.handleShards)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	s.mux.Handle("/metrics", metrics.Handler(reg))
	s.mux.Handle("/status", s.status)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the service's metric registry.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Cache exposes the response cache (for stats and tests).
func (s *Server) Cache() *ShardedCache { return s.cache }

// Manager exposes the shard manager (for stats and tests).
func (s *Server) Manager() *ShardManager { return s.mgr }

// Run drives the shard manager's control loop until ctx fires.
func (s *Server) Run(ctx context.Context) { s.mgr.Run(ctx) }

// RunResponse is the /run result document (one sweep column reuses it).
type RunResponse struct {
	Workload     string  `json:"workload"`
	Opt          string  `json:"opt"`
	Scale        float64 `json:"scale"`
	Policy       string  `json:"policy"` // "base", a fixed policy, or "selector"
	Cycles       uint64  `json:"cycles"`
	Instructions uint64  `json:"instructions"`
	CPI          float64 `json:"cpi"`
	// Prefetches is the number of prefetch sequences ADORE inserted
	// (0 without ADORE); TracesPatched the traces it installed.
	Prefetches    int                  `json:"prefetches"`
	TracesPatched int                  `json:"traces_patched"`
	PrefetchLines memsys.PrefetchStats `json:"prefetch_lines"`
}

// ForkSummary reports a sweep's warmup sharing (harness.ForkStats).
type ForkSummary struct {
	Groups          int     `json:"groups"`
	ForkedRuns      int     `json:"forked_runs"`
	StraightRuns    int     `json:"straight_runs"`
	WarmupStraight  uint64  `json:"warmup_cycles_straight"`
	WarmupForked    uint64  `json:"warmup_cycles_forked"`
	WarmupReduction float64 `json:"warmup_reduction"`
}

// SweepResponse is the /sweep result document.
type SweepResponse struct {
	Workload string        `json:"workload"`
	Opt      string        `json:"opt"`
	Scale    float64       `json:"scale"`
	Columns  []string      `json:"columns"`
	Results  []RunResponse `json:"results"`
	Fork     *ForkSummary  `json:"fork,omitempty"`
}

// runResponse folds one run result into the response document.
func runResponse(rr RunRequest, res *harness.RunResult) RunResponse {
	out := RunResponse{
		Workload:     rr.Workload,
		Opt:          rr.Opt,
		Scale:        rr.Scale,
		Policy:       rr.policyColumn(),
		Cycles:       res.CPU.Cycles,
		Instructions: res.CPU.Retired,
		CPI:          res.CPU.CPI(),
	}
	if res.Core != nil {
		out.Prefetches = res.Core.TotalPrefetches()
		out.TracesPatched = res.Core.TracesPatched
	}
	if res.Mem != nil {
		out.PrefetchLines = res.Mem.Prefetch()
	}
	return out
}

// marshalBody renders a response document in its canonical cached form.
func marshalBody(doc any) ([]byte, error) {
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// serveCached runs the common request tail: look the fingerprint up in
// the sharded cache, fill on a miss (gated by the shard's worker slots),
// and write the cached body with the cache disposition in headers — never
// in the body, which must stay byte-identical between cold and cached
// service of one fingerprint.
func (s *Server) serveCached(w http.ResponseWriter, req *http.Request, fp string, fill func(ctx context.Context) ([]byte, error)) {
	s.requests.Inc()
	start := time.Now()
	shard := s.cache.ShardFor(fp)
	pool := s.mgr.Pool(shard)
	body, hit, err := s.cache.Do(req.Context(), fp, func(ctx context.Context) ([]byte, error) {
		if err := pool.Acquire(ctx); err != nil {
			return nil, err
		}
		defer pool.Release()
		return fill(ctx)
	})
	s.latency.Observe(uint64(time.Since(start)))
	if err != nil {
		s.failures.Inc()
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Adore-Fingerprint", fp)
	if hit {
		w.Header().Set("X-Adore-Cache", "hit")
	} else {
		w.Header().Set("X-Adore-Cache", "miss")
	}
	w.Write(body)
}

// writeError maps a failure onto its HTTP status: validation errors carry
// their own code, cancellation is 503 (the client or the server went
// away, not the request's fault), everything else 500.
func writeError(w http.ResponseWriter, err error) {
	var he *httpError
	switch {
	case errors.As(err, &he):
		http.Error(w, he.msg, he.code)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// decode parses a JSON request body strictly: unknown fields are a 400
// (a misspelled option silently meaning a different simulation is worse
// than an error).
func decode(req *http.Request, into any) *httpError {
	dec := json.NewDecoder(req.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return badRequest("bad request JSON: %v", err)
	}
	return nil
}

// handleRun serves POST /run: one simulation by value.
func (s *Server) handleRun(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var rr RunRequest
	if err := decode(req, &rr); err != nil {
		s.failures.Inc()
		writeError(w, err)
		return
	}
	if err := rr.normalize(); err != nil {
		s.failures.Inc()
		writeError(w, err)
		return
	}
	s.serveCached(w, req, rr.Fingerprint(), func(ctx context.Context) ([]byte, error) {
		job, err := rr.job()
		if err != nil {
			return nil, err
		}
		res, err := s.eng.RunJob(ctx, "serve/run", job)
		if err != nil {
			return nil, err
		}
		return marshalBody(runResponse(rr, res))
	})
}

// handleSweep serves POST /sweep: one workload across policy columns on
// the checkpoint/fork engine — ADORE columns differing only in policy
// share one warmup probe, so the sweep costs one warmup plus N tails.
func (s *Server) handleSweep(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var sr SweepRequest
	if err := decode(req, &sr); err != nil {
		s.failures.Inc()
		writeError(w, err)
		return
	}
	if err := sr.normalize(); err != nil {
		s.failures.Inc()
		writeError(w, err)
		return
	}
	s.serveCached(w, req, sr.Fingerprint(), func(ctx context.Context) ([]byte, error) {
		jobs, err := sr.jobs()
		if err != nil {
			return nil, err
		}
		runs, stats, err := s.eng.RunJobsForked(ctx, "serve/sweep", jobs)
		if err != nil {
			return nil, err
		}
		doc := SweepResponse{Workload: sr.Workload, Opt: sr.Opt, Scale: sr.Scale, Columns: sr.Policies}
		for i, col := range sr.Policies {
			doc.Results = append(doc.Results, runResponse(sr.columnRequest(col), runs[i]))
		}
		if stats != nil {
			doc.Fork = &ForkSummary{
				Groups:          stats.Groups,
				ForkedRuns:      stats.ForkedRuns,
				StraightRuns:    stats.StraightRuns,
				WarmupStraight:  stats.WarmupStraight,
				WarmupForked:    stats.WarmupForked,
				WarmupReduction: stats.WarmupReduction(),
			}
			s.forkGroups.Add(uint64(stats.Groups))
			s.forkedRuns.Add(uint64(stats.ForkedRuns))
		}
		return marshalBody(doc)
	})
}

// shardDoc is one row of the /shards introspection document.
type shardDoc struct {
	Shard     int    `json:"shard"`
	Workers   int    `json:"workers"`
	Entries   int    `json:"entries"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Requests  uint64 `json:"requests"`
	LatencyNS uint64 `json:"latency_ns_total"`
}

// handleShards serves GET /shards: the live shard table the manager acts
// on — per-shard cache counters, load signals, and worker allocation.
func (s *Server) handleShards(w http.ResponseWriter, _ *http.Request) {
	alloc := s.mgr.Allocations()
	doc := struct {
		Shards []shardDoc `json:"shards"`
	}{}
	for i := 0; i < s.cache.Shards(); i++ {
		hits, misses, evictions, entries := s.cache.ShardStats(i)
		requests, latency := s.cache.ShardLoad(i)
		doc.Shards = append(doc.Shards, shardDoc{
			Shard: i, Workers: alloc[i], Entries: entries,
			Hits: hits, Misses: misses, Evictions: evictions,
			Requests: requests, LatencyNS: latency,
		})
	}
	body, err := marshalBody(doc)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}
