package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/workloads"
)

// The request schema. A request names a simulation by value — workload,
// scale, compile options, ADORE/policy configuration — and the service
// keys its cache by a fingerprint over exactly those values, normalized
// (defaults applied) so that two requests meaning the same run hash the
// same however sparsely they were written. The fingerprint composes the
// same identities the engine's caches already rely on: the compile side
// of a run is compiler.Options.Fingerprint() (via CompileSpec.Key) and
// the run side harness.RunConfig.Fingerprint().

// httpError carries the status code a validation failure maps to.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// RunRequest asks for one simulation.
type RunRequest struct {
	// Workload names one of the 17 benchmarks (workloads.Names). Unknown
	// names are 404: the resource space is the workload set.
	Workload string `json:"workload"`
	// Scale is the workload scale factor in (0, 1]; default 0.05 (the
	// golden-corpus scale — small enough to serve interactively).
	Scale float64 `json:"scale,omitempty"`
	// Opt is the compile level, "O2" (default) or "O3".
	Opt string `json:"opt,omitempty"`
	// ADORE attaches the runtime optimizer. Policy and Selector imply it.
	ADORE bool `json:"adore,omitempty"`
	// Policy picks a fixed prefetch policy (core.PrefetchPolicyNames).
	Policy string `json:"policy,omitempty"`
	// Selector enables the per-phase runtime policy selector.
	Selector bool `json:"selector,omitempty"`
	// MaxInsts overrides the instruction safety stop (0 = default).
	MaxInsts uint64 `json:"max_insts,omitempty"`
}

// normalize applies defaults and validates; the error, when non-nil, is
// an *httpError carrying the response code.
func (r *RunRequest) normalize() *httpError {
	if r.Workload == "" {
		return badRequest("missing workload (want one of %v)", workloads.Names())
	}
	if r.Scale == 0 {
		r.Scale = 0.05
	}
	if r.Scale < 0 || r.Scale > 1 {
		return badRequest("scale %g out of range (0, 1]", r.Scale)
	}
	if r.Opt == "" {
		r.Opt = "O2"
	}
	if r.Opt != "O2" && r.Opt != "O3" {
		return badRequest("unknown opt %q (want O2 or O3)", r.Opt)
	}
	if r.Policy != "" || r.Selector {
		r.ADORE = true
	}
	if r.Policy != "" {
		if err := validPolicy(r.Policy); err != nil {
			return err
		}
	}
	if _, err := workloads.ByName(r.Workload, r.Scale); err != nil {
		return &httpError{code: http.StatusNotFound, msg: err.Error()}
	}
	return nil
}

func validPolicy(name string) *httpError {
	for _, p := range core.PrefetchPolicyNames() {
		if p == name {
			return nil
		}
	}
	return badRequest("unknown policy %q (want one of %v)", name, core.PrefetchPolicyNames())
}

// optLevel maps the validated Opt string.
func optLevel(opt string) compiler.OptLevel {
	if opt == "O3" {
		return compiler.O3
	}
	return compiler.O2
}

// compileSpec is the request's cache-keyed compile unit — the same shape
// the experiment drivers build (benchmark@scale + default options at the
// requested level), so serve requests share the engine's build cache with
// any sweep that compiled the same kernel.
func (r *RunRequest) compileSpec() (harness.CompileSpec, error) {
	b, err := workloads.ByName(r.Workload, r.Scale)
	if err != nil {
		return harness.CompileSpec{}, err
	}
	opts := compiler.DefaultOptions()
	opts.Level = optLevel(r.Opt)
	return harness.CompileSpec{
		Name:    fmt.Sprintf("%s@%g", b.Name, r.Scale),
		Kernel:  b.Kernel,
		Options: opts,
	}, nil
}

// runConfig builds the run side of the request.
func (r *RunRequest) runConfig() harness.RunConfig {
	rc := harness.DefaultRunConfig()
	rc.ADORE = r.ADORE
	rc.Core.Policy = r.Policy
	rc.Core.Selector = r.Selector
	if r.MaxInsts > 0 {
		rc.MaxInsts = r.MaxInsts
	}
	return rc
}

// job assembles the engine job for the request.
func (r *RunRequest) job() (harness.Job, error) {
	sp, err := r.compileSpec()
	if err != nil {
		return harness.Job{}, err
	}
	name := r.Workload + "/" + r.policyColumn()
	return harness.Job{Name: name, Compile: sp, Config: r.runConfig()}, nil
}

// policyColumn names the request's policy configuration the way the
// policy-matrix columns do: "base" without ADORE, "selector" with the
// runtime selector, else the fixed policy name.
func (r *RunRequest) policyColumn() string {
	if !r.ADORE {
		return harness.PolicyBaseColumn
	}
	cfg := core.Config{Policy: r.Policy, Selector: r.Selector}
	return cfg.PolicyKey()
}

// Fingerprint is the request's content address: sha256 over the
// normalized request document plus an operation tag (so a /run and a
// /sweep can never collide), hex-encoded. The leading hex digits are the
// shard prefix.
func (r RunRequest) Fingerprint() string {
	return fingerprintDoc("run", r)
}

// SweepRequest asks for one workload across a set of policy columns —
// the repeated, cacheable query mix of a policy search. The server runs
// it on the checkpoint/fork engine: ADORE columns differing only in
// policy share one warmup probe (harness.RunJobsForked).
type SweepRequest struct {
	Workload string  `json:"workload"`
	Scale    float64 `json:"scale,omitempty"`
	Opt      string  `json:"opt,omitempty"`
	// Policies lists the matrix columns to run: "base", fixed policy
	// names, and/or "selector". Empty means every column
	// (harness.PolicyColumns order).
	Policies []string `json:"policies,omitempty"`
	MaxInsts uint64   `json:"max_insts,omitempty"`
}

// normalize applies defaults and validates.
func (r *SweepRequest) normalize() *httpError {
	base := &RunRequest{Workload: r.Workload, Scale: r.Scale, Opt: r.Opt, MaxInsts: r.MaxInsts}
	if err := base.normalize(); err != nil {
		return err
	}
	r.Scale, r.Opt = base.Scale, base.Opt
	if len(r.Policies) == 0 {
		r.Policies = harness.PolicyColumns()
	}
	seen := map[string]bool{}
	for _, col := range r.Policies {
		if seen[col] {
			return badRequest("duplicate policy column %q", col)
		}
		seen[col] = true
		if col == harness.PolicyBaseColumn || col == harness.PolicySelectorColumn {
			continue
		}
		if err := validPolicy(col); err != nil {
			return err
		}
	}
	return nil
}

// columnRequest is the RunRequest of one sweep column.
func (r *SweepRequest) columnRequest(col string) RunRequest {
	rr := RunRequest{Workload: r.Workload, Scale: r.Scale, Opt: r.Opt, MaxInsts: r.MaxInsts}
	switch col {
	case harness.PolicyBaseColumn:
	case harness.PolicySelectorColumn:
		rr.ADORE = true
		rr.Selector = true
	default:
		rr.ADORE = true
		rr.Policy = col
	}
	return rr
}

// jobs assembles the sweep's job list in column order.
func (r *SweepRequest) jobs() ([]harness.Job, error) {
	jobs := make([]harness.Job, 0, len(r.Policies))
	for _, col := range r.Policies {
		rr := r.columnRequest(col)
		j, err := rr.job()
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}

// Fingerprint is the sweep's content address (see RunRequest.Fingerprint).
func (r SweepRequest) Fingerprint() string {
	return fingerprintDoc("sweep", r)
}

// fingerprintDoc hashes an operation tag plus the normalized request.
func fingerprintDoc(op string, doc any) string {
	b, err := json.Marshal(doc)
	if err != nil {
		// Requests are plain data; failure here is a programming error.
		panic(fmt.Sprintf("serve: request not fingerprintable: %v", err))
	}
	sum := sha256.Sum256(append([]byte(op+"|"), b...))
	return hex.EncodeToString(sum[:12])
}
