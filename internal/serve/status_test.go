package serve

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"testing"

	"repro/internal/harness"
)

// TestStatusTracker pins the progress bookkeeping and the /status
// document shape.
func TestStatusTracker(t *testing.T) {
	tr := NewStatusTracker()
	tr.Progress(harness.Progress{Sweep: "s", Job: "a", Total: 2})
	tr.Progress(harness.Progress{Sweep: "s", Job: "b", Total: 2})
	tr.Progress(harness.Progress{Sweep: "s", Job: "a", Total: 2, Done: true})
	tr.Progress(harness.Progress{Sweep: "s", Job: "b", Total: 2, Done: true, Err: errors.New("x")})

	rec := httptest.NewRecorder()
	tr.ServeHTTP(rec, httptest.NewRequest("GET", "/status", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if got := rec.Header().Get("Content-Type"); got != "application/json" {
		t.Fatalf("Content-Type = %q", got)
	}
	var doc struct {
		UptimeSeconds float64 `json:"uptime_seconds"`
		Sweeps        []struct {
			Sweep   string   `json:"sweep"`
			Total   int      `json:"total"`
			Started int      `json:"started"`
			Done    int      `json:"done"`
			Failed  int      `json:"failed"`
			Running []string `json:"running"`
		} `json:"sweeps"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("status body not JSON: %v\n%s", err, rec.Body.String())
	}
	if len(doc.Sweeps) != 1 {
		t.Fatalf("%d sweeps, want 1", len(doc.Sweeps))
	}
	s := doc.Sweeps[0]
	if s.Sweep != "s" || s.Started != 2 || s.Done != 1 || s.Failed != 1 || len(s.Running) != 0 {
		t.Fatalf("sweep doc wrong: %+v", s)
	}
}

// TestStatusMarshalFailure pins the encoding bugfix: a marshal failure is
// a clean 500, not a half-written 200 with a discarded error.
func TestStatusMarshalFailure(t *testing.T) {
	orig := marshalStatus
	marshalStatus = func(any) ([]byte, error) { return nil, errors.New("synthetic marshal failure") }
	defer func() { marshalStatus = orig }()

	tr := NewStatusTracker()
	rec := httptest.NewRecorder()
	tr.ServeHTTP(rec, httptest.NewRequest("GET", "/status", nil))
	if rec.Code != 500 {
		t.Fatalf("status %d on marshal failure, want 500", rec.Code)
	}
	if rec.Header().Get("Content-Type") == "application/json" {
		t.Fatal("failure response claims to be the JSON document")
	}
}
