package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

func fillWith(body string) func(context.Context) ([]byte, error) {
	return func(context.Context) ([]byte, error) { return []byte(body), nil }
}

// TestShardForPrefix pins the fingerprint-prefix shard mapping: the
// leading hex digits select the shard via the low mask bits.
func TestShardForPrefix(t *testing.T) {
	c := NewShardedCache(CacheConfig{Shards: 8, ShardCap: 4}, nil)
	if got := c.Shards(); got != 8 {
		t.Fatalf("Shards() = %d, want 8", got)
	}
	cases := map[string]int{
		"00000000ffff": 0,
		"00000005ffff": 5,
		"0000000fffff": 7, // 0xf & 7
		"deadbeef0000": int(0xdeadbeef & 7),
	}
	for key, want := range cases {
		if got := c.ShardFor(key); got != want {
			t.Errorf("ShardFor(%q) = %d, want %d", key, got, want)
		}
	}
	// Non-hex keys must still land somewhere in range (FNV fallback).
	if got := c.ShardFor("zzz"); got < 0 || got >= 8 {
		t.Errorf("ShardFor(non-hex) = %d, out of range", got)
	}
	// Shard count rounds up to a power of two.
	if got := NewShardedCache(CacheConfig{Shards: 5}, nil).Shards(); got != 8 {
		t.Errorf("Shards(5 requested) = %d, want 8", got)
	}
}

// TestCacheLRUEviction pins eviction order and counter accuracy on one
// shard: capacity 2, with a touch refreshing recency.
func TestCacheLRUEviction(t *testing.T) {
	reg := metrics.NewRegistry()
	c := NewShardedCache(CacheConfig{Shards: 1, ShardCap: 2}, reg)
	ctx := context.Background()
	runs := 0
	do := func(key string) (string, bool) {
		body, hit, err := c.Do(ctx, key, func(context.Context) ([]byte, error) {
			runs++
			return []byte("body-" + key), nil
		})
		if err != nil {
			t.Fatalf("Do(%s): %v", key, err)
		}
		return string(body), hit
	}

	do("a")
	do("b")
	do("c") // evicts a (oldest)
	if _, hit := do("b"); !hit {
		t.Fatalf("b should still be cached")
	}
	do("d") // b was just touched, so this evicts c
	if _, hit := do("c"); hit {
		t.Fatalf("c should have been evicted by d")
	}
	if _, hit := do("a"); hit {
		t.Fatalf("a should have been evicted by c")
	}
	// runs: a, b, c, d, c(again), a(again) = 6; hits: the b lookup = 1.
	if runs != 6 {
		t.Fatalf("fill ran %d times, want 6", runs)
	}
	hits, misses, evictions := c.Stats()
	if hits != 1 || misses != 6 {
		t.Fatalf("stats = %d hits / %d misses, want 1/6", hits, misses)
	}
	// Evictions: a (by c), c (by d), b (by c-again), d (by a-again) = 4.
	if evictions != 4 {
		t.Fatalf("evictions = %d, want 4", evictions)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "adore_serve_cache_evictions_total 4") {
		t.Fatalf("registry not mirroring evictions:\n%s", buf.String())
	}
}

// TestCacheSingleFlight pins the dedup property: concurrent identical
// keys run fill once and all see its body.
func TestCacheSingleFlight(t *testing.T) {
	c := NewShardedCache(CacheConfig{Shards: 2, ShardCap: 8}, nil)
	ctx := context.Background()
	var mu sync.Mutex
	runs := 0
	release := make(chan struct{})
	const n = 8
	var wg sync.WaitGroup
	bodies := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _, err := c.Do(ctx, "abc123", func(context.Context) ([]byte, error) {
				mu.Lock()
				runs++
				mu.Unlock()
				<-release
				return []byte("shared"), nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
				return
			}
			bodies[i] = string(body)
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // let the waiters pile onto the entry
	close(release)
	wg.Wait()
	if runs != 1 {
		t.Fatalf("fill ran %d times under concurrency, want 1", runs)
	}
	for i, b := range bodies {
		if b != "shared" {
			t.Fatalf("waiter %d got %q", i, b)
		}
	}
	hits, misses, _ := c.Stats()
	if misses != 1 || hits != n-1 {
		t.Fatalf("stats = %d hits / %d misses, want %d/1", hits, misses, n-1)
	}
}

// TestCacheWaiterContext pins the no-stranded-waiter fix: a waiter whose
// own context fires while the fill is stuck returns promptly, and a
// failed fill is evicted so a retry re-runs.
func TestCacheWaiterContext(t *testing.T) {
	c := NewShardedCache(CacheConfig{Shards: 1, ShardCap: 4}, nil)
	block := make(chan struct{})
	fillErr := errors.New("boom")

	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	runnerDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(ctxA, "k", func(ctx context.Context) ([]byte, error) {
			close(block)
			<-ctx.Done()
			return nil, fillErr
		})
		runnerDone <- err
	}()
	<-block // the fill is now in flight

	ctxB, cancelB := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(ctxB, "k", func(context.Context) ([]byte, error) {
			t.Error("waiter must join the in-flight fill, not run its own")
			return nil, nil
		})
		waiterDone <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancelB()
	select {
	case err := <-waiterDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled waiter returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter stranded on a stuck fill after its own ctx fired")
	}

	cancelA()
	if err := <-runnerDone; !errors.Is(err, fillErr) {
		t.Fatalf("runner returned %v, want the fill error", err)
	}
	// The failed entry must be gone: a retry runs a fresh fill.
	body, hit, err := c.Do(context.Background(), "k", fillWith("ok"))
	if err != nil || hit || string(body) != "ok" {
		t.Fatalf("retry after failed fill: body=%q hit=%v err=%v", body, hit, err)
	}
}

// TestCachePanicReleasesWaiters pins the panic path: a panicking fill
// hands its waiters an error instead of a hang, and leaves no entry.
func TestCachePanicReleasesWaiters(t *testing.T) {
	c := NewShardedCache(CacheConfig{Shards: 1, ShardCap: 4}, nil)
	started := make(chan struct{})
	waiterDone := make(chan error, 1)
	go func() {
		defer func() { recover() }()
		c.Do(context.Background(), "k", func(context.Context) ([]byte, error) {
			close(started)
			time.Sleep(10 * time.Millisecond)
			panic("fill died")
		})
	}()
	<-started
	go func() {
		_, _, err := c.Do(context.Background(), "k", func(context.Context) ([]byte, error) {
			return []byte("second"), nil
		})
		waiterDone <- err
	}()
	select {
	case err := <-waiterDone:
		if err == nil {
			t.Fatal("waiter joined a panicked fill and got a nil error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter stranded behind a panicked fill")
	}
	// The shard must be clean for retries.
	body, hit, err := c.Do(context.Background(), "k", fillWith("retry"))
	if err != nil || hit || string(body) != "retry" {
		t.Fatalf("retry after panic: body=%q hit=%v err=%v", body, hit, err)
	}
}

// TestCacheInFlightNotEvicted pins that eviction pressure cannot drop an
// in-flight entry (which would duplicate its simulation).
func TestCacheInFlightNotEvicted(t *testing.T) {
	c := NewShardedCache(CacheConfig{Shards: 1, ShardCap: 1}, nil)
	ctx := context.Background()
	block := make(chan struct{})
	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Do(ctx, "inflight", func(context.Context) ([]byte, error) {
			close(started)
			<-block
			return []byte("x"), nil
		})
	}()
	<-started
	// Churn the shard far past capacity while "inflight" is running.
	for i := 0; i < 5; i++ {
		c.Do(ctx, fmt.Sprintf("churn-%d", i), fillWith("y"))
	}
	// The in-flight entry must still be joinable.
	joined := make(chan bool, 1)
	go func() {
		_, hit, _ := c.Do(ctx, "inflight", func(context.Context) ([]byte, error) {
			return []byte("dup"), nil
		})
		joined <- hit
	}()
	time.Sleep(10 * time.Millisecond)
	close(block)
	<-done
	if hit := <-joined; !hit {
		t.Fatal("in-flight entry was evicted: a concurrent identical request re-ran the fill")
	}
}
