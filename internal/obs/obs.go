// Package obs is the observability layer of the reproduction: a
// low-overhead, cycle-stamped structured event recorder plus exporters that
// render one run's event stream as JSONL, as a Chrome-trace-format file
// loadable in Perfetto, and as a plain-text timeline.
//
// The recorder is a fixed-capacity ring of value-typed events, stamped on
// the *simulated* clock (cpu.Now()), so two identical runs produce
// identical streams and recording never perturbs the simulation. A nil
// *Recorder is a valid disabled recorder: every method is a no-op, which is
// how the zero-overhead-when-off guarantee is kept without branching at
// call sites.
package obs

import (
	"errors"
	"fmt"
)

// Kind identifies what an Event records. The controller-pipeline kinds
// mirror the ADORE control loop (DESIGN.md §10); the counter kinds carry
// per-profile-window deltas for the Perfetto counter tracks.
type Kind uint8

const (
	// KindWindowObserved: one profile window left the SSB.
	// A=window sequence, B=DEAR events, C=retired instructions,
	// V=window CPI, W=window DPI.
	KindWindowObserved Kind = iota
	// KindPhaseDetected: the phase detector confirmed a stable phase.
	// PC=phase PC-center, A=windows establishing stability, V=phase CPI,
	// W=DEAR events per 1000 instructions.
	KindPhaseDetected
	// KindPhaseChange: the previously stable phase ended.
	KindPhaseChange
	// KindTraceSelected: trace selection produced a candidate.
	// PC=trace start, A=trace bundles, B=1 for loop traces.
	KindTraceSelected
	// KindPatchInstalled: a trace went live in the pool.
	// PC=patched entry, A=trace pool address, B=first address past the
	// trace, C=prefetches inserted.
	KindPatchInstalled
	// KindVerifyReject: the static verifier refused a trace.
	// PC=trace start, A=error-severity findings.
	KindVerifyReject
	// KindUnpatch: a non-profitable trace was removed.
	// PC=patched entry, A=trace pool address, V=observed phase CPI,
	// W=pre-patch CPI.
	KindUnpatch
	// KindCPIStack: per-window cycle accounting deltas (cpu.CPIStack).
	// A=busy, B=load-use stall, C=mispredict flush, D=bundle fetch.
	// Loop >= 0 scopes the delta to one loop; Loop == -1 is the whole
	// core.
	KindCPIStack
	// KindPrefetchWindow: per-window prefetch-usefulness deltas.
	// A=lfetch issued, B=useful hits, C=late (demand hit while the fill
	// was still in flight), D=evicted unused, V=L1D miss ratio over the
	// window.
	KindPrefetchWindow
	// KindPolicySelected: the runtime selector picked a prefetch policy
	// for a stable phase. PC=phase PC-center, A=index into Meta.Policies,
	// B=selection ordinal.
	KindPolicySelected
	// KindPolicySwitched: the selected policy injected nothing into a
	// trace and the selector fell back. PC=trace start, A=from-policy
	// index, B=to-policy index (both into Meta.Policies).
	KindPolicySwitched
)

var kindNames = [...]string{
	KindWindowObserved: "WindowObserved",
	KindPhaseDetected:  "PhaseDetected",
	KindPhaseChange:    "PhaseChange",
	KindTraceSelected:  "TraceSelected",
	KindPatchInstalled: "PatchInstalled",
	KindVerifyReject:   "VerifyReject",
	KindUnpatch:        "Unpatch",
	KindCPIStack:       "CPIStack",
	KindPrefetchWindow: "PrefetchWindow",
	KindPolicySelected: "PolicySelected",
	KindPolicySwitched: "PolicySwitched",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "Kind?"
}

// Event is one recorded occurrence. It is a fixed-size value — no pointers,
// no per-kind payload types — so emitting one costs a struct copy and
// nothing else. Cycle is the simulated clock; Loop is the compiler loop ID
// the event concerns (-1 when none); the meaning of PC, A-D, V and W is
// per-kind (see the Kind constants).
type Event struct {
	Cycle      uint64
	Kind       Kind
	Loop       int32
	PC         uint64
	A, B, C, D uint64
	V, W       float64
}

// DefaultCapacity is the ring size used when a Recorder is created with
// capacity <= 0: large enough to hold every event of the paper-scale runs,
// small enough (a few MB) to keep observed runs cheap.
const DefaultCapacity = 1 << 16

// Recorder is a fixed-capacity ring buffer of events. Once full, new events
// overwrite the oldest and Dropped counts the overwrites — a timeline tail
// is more useful than a head when the buffer is undersized, matching the
// SSB's own newest-wins behaviour.
//
// A nil *Recorder is the disabled recorder: Emit and the query methods are
// no-ops, allocation-free by construction.
type Recorder struct {
	buf     []Event
	next    int // oldest entry once the ring is full
	dropped uint64
}

// NewRecorder returns a recorder holding up to capacity events
// (DefaultCapacity when capacity <= 0). All memory is allocated up front;
// Emit never allocates.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{buf: make([]Event, 0, capacity)}
}

// Emit appends one event. On a full ring the oldest event is overwritten.
// Safe on a nil receiver.
func (r *Recorder) Emit(e Event) {
	if r == nil {
		return
	}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
	}
	r.dropped++
}

// Len reports the number of buffered events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Dropped reports how many events were overwritten after the ring filled.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Events returns the buffered events oldest-first, as a copy the caller
// owns.
func (r *Recorder) Events() []Event {
	if r == nil || len(r.buf) == 0 {
		return nil
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Restore replaces the recorder's contents with the given oldest-first
// events and dropped count — the values a prior Events()/Dropped() pair
// returned. The ring resumes exactly as the original would: a full ring
// keeps overwriting oldest-first, so the event stream a restored run
// produces is identical to the uninterrupted one. Restoring more events
// than the ring's capacity is an error.
func (r *Recorder) Restore(events []Event, dropped uint64) error {
	if r == nil {
		if len(events) > 0 {
			return errors.New("obs: restoring events into a nil recorder")
		}
		return nil
	}
	if len(events) > cap(r.buf) {
		return fmt.Errorf("obs: restoring %d events into a %d-capacity recorder", len(events), cap(r.buf))
	}
	r.buf = append(r.buf[:0], events...)
	r.next = 0
	r.dropped = dropped
	return nil
}

// LoopLabel names one compiler loop for the exporters' per-loop tracks.
type LoopLabel struct {
	ID   int
	Name string
}

// Meta is run-level context the exporters attach to the stream.
type Meta struct {
	Program string
	Loops   []LoopLabel
	// Policies is the name table the policy events' indices resolve
	// against (PolicySelected/PolicySwitched carry integers only).
	Policies []string `json:",omitempty"`
}

// PolicyName resolves a policy-event index against the name table.
func (m Meta) PolicyName(idx uint64) string {
	if idx < uint64(len(m.Policies)) {
		return m.Policies[idx]
	}
	return "policy?"
}

// Capture is one run's complete recorded stream, ready for export.
type Capture struct {
	Meta    Meta
	Events  []Event
	Dropped uint64
}
