package obs

import (
	"testing"
)

func ev(cycle uint64, k Kind) Event { return Event{Cycle: cycle, Kind: k, Loop: -1} }

func TestRingWraparound(t *testing.T) {
	r := NewRecorder(4)
	for i := uint64(1); i <= 6; i++ {
		r.Emit(ev(i, KindWindowObserved))
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", r.Dropped())
	}
	got := r.Events()
	want := []uint64{3, 4, 5, 6}
	for i, w := range want {
		if got[i].Cycle != w {
			t.Fatalf("Events()[%d].Cycle = %d, want %d (full: %+v)", i, got[i].Cycle, w, got)
		}
	}
	// Keep wrapping past a full revolution.
	for i := uint64(7); i <= 11; i++ {
		r.Emit(ev(i, KindWindowObserved))
	}
	got = r.Events()
	want = []uint64{8, 9, 10, 11}
	for i, w := range want {
		if got[i].Cycle != w {
			t.Fatalf("after revolution: Events()[%d].Cycle = %d, want %d", i, got[i].Cycle, w)
		}
	}
}

func TestRecorderBelowCapacity(t *testing.T) {
	r := NewRecorder(8)
	r.Emit(ev(1, KindPhaseDetected))
	r.Emit(ev(2, KindPatchInstalled))
	if r.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", r.Dropped())
	}
	got := r.Events()
	if len(got) != 2 || got[0].Cycle != 1 || got[1].Cycle != 2 {
		t.Fatalf("Events() = %+v", got)
	}
}

func TestDefaultCapacity(t *testing.T) {
	r := NewRecorder(0)
	if cap(r.buf) != DefaultCapacity {
		t.Fatalf("cap = %d, want %d", cap(r.buf), DefaultCapacity)
	}
}

// TestDisabledRecorderZeroAlloc pins the zero-overhead-when-off contract:
// emitting on a nil (disabled) recorder allocates nothing, and a live
// recorder allocates nothing per Emit either (all memory is up-front).
func TestDisabledRecorderZeroAlloc(t *testing.T) {
	var disabled *Recorder
	e := Event{Cycle: 1, Kind: KindCPIStack, Loop: -1, A: 1, B: 2, C: 3, D: 4}
	if n := testing.AllocsPerRun(1000, func() { disabled.Emit(e) }); n != 0 {
		t.Fatalf("nil recorder: %v allocs/Emit, want 0", n)
	}
	if disabled.Len() != 0 || disabled.Dropped() != 0 || disabled.Events() != nil {
		t.Fatal("nil recorder leaked state")
	}

	live := NewRecorder(64)
	if n := testing.AllocsPerRun(1000, func() { live.Emit(e) }); n != 0 {
		t.Fatalf("live recorder: %v allocs/Emit, want 0", n)
	}
}

// BenchmarkRecorder measures the per-event cost of the enabled recorder —
// the number CHANGES.md quotes next to the <5% run-overhead guard.
func BenchmarkRecorder(b *testing.B) {
	r := NewRecorder(1 << 12)
	e := Event{Cycle: 1, Kind: KindWindowObserved, Loop: -1, A: 1, B: 2, V: 1.5, W: 0.01}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Cycle = uint64(i)
		r.Emit(e)
	}
}

// BenchmarkRecorderDisabled is the disabled-path cost (a nil check).
func BenchmarkRecorderDisabled(b *testing.B) {
	var r *Recorder
	e := Event{Cycle: 1, Kind: KindWindowObserved, Loop: -1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Emit(e)
	}
}
