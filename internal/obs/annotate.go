package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"repro/internal/isa"
	"repro/internal/program"
)

// Annotated disassembly, in the style of `perf annotate`: the image's
// bundle listing with the sampled profile's attribution folded in on the
// left — per-bundle share of attributed cycles, the raw cycle and
// load-stall counts, L2/L3 data-miss counts, and the prefetch-usefulness
// deltas. Loop boundaries from the compiler's loop table are marked
// inline, and a per-loop summary table leads the listing, so "which loads
// miss" is answerable by eye: find the hot loop in the summary, jump to
// its section, read off the bundles carrying the stall and miss columns.

// WriteAnnotate writes the annotated listing of img's code segment.
// Bundles the sampler never observed print with empty columns; profile
// cells outside the segment (installed traces in a patch pool segment,
// for instance) are listed in a trailing section.
func WriteAnnotate(w io.Writer, p *Profile, img *program.Image) error {
	bw := bufio.NewWriter(w)
	attr := p.AttributedCycles()

	fmt.Fprintf(bw, "# %s — simulated-execution profile, annotated\n", p.Program)
	fmt.Fprintf(bw, "# sample interval: %d cycles   total: %d cycles   attributed: %d cycles (%.1f%%)\n",
		p.SampleEvery, p.TotalCycles, attr, pct(attr, p.TotalCycles))
	fmt.Fprintf(bw, "#\n")

	// Per-loop summary, hottest first.
	fmt.Fprintf(bw, "# %7s %14s %14s %10s %10s %9s %8s  %s\n",
		"cyc%", "cycles", "ldstall", "l2miss", "l3miss", "pf-use", "pf-late", "loop")
	for _, lp := range p.ByLoop() {
		fmt.Fprintf(bw, "# %6.2f%% %14d %14d %10d %10d %9d %8d  %s\n",
			pct(lp.Cycles, attr), lp.Cycles, lp.LoadStall, lp.L2Miss, lp.L3Miss,
			lp.PfUseful, lp.PfLate, FrameName(lp.Loop, lp.Name, p.Program))
	}
	fmt.Fprintf(bw, "\n")

	// Index the profile by PC for the listing walk.
	cells := make(map[uint64]*BundleProfile, len(p.Bundles))
	for i := range p.Bundles {
		cells[p.Bundles[i].PC] = &p.Bundles[i]
	}

	// Loop boundary markers, keyed by bundle address.
	starts := map[uint64]*program.LoopInfo{}
	ends := map[uint64]*program.LoopInfo{}
	var seg *program.Segment
	if img != nil {
		seg = img.Code
		for i := range img.Loops {
			l := &img.Loops[i]
			starts[l.BodyStart] = l
			ends[l.BodyEnd] = l
		}
	}

	fmt.Fprintf(bw, "%8s %12s %10s %7s %7s %7s %7s\n",
		"cyc%", "cycles", "ldstall", "l2miss", "l3miss", "pf-use", "pf-late")
	listed := map[uint64]bool{}
	if seg != nil {
		for i := range seg.Bundles {
			addr := seg.Base + uint64(i)*isa.BundleBytes
			if l, ok := ends[addr]; ok {
				fmt.Fprintf(bw, "%62s ── end %s ──\n", "", loopTitle(l))
			}
			if l, ok := starts[addr]; ok {
				fmt.Fprintf(bw, "%62s ┌─ loop %s ─┐\n", "", loopTitle(l))
			}
			listed[addr] = true
			writeAnnotLine(bw, cells[addr], attr, addr, seg.Bundles[i].String())
		}
	}

	// Sampled addresses outside the image's code segment (patch pool).
	var extra []uint64
	for pc := range cells {
		if !listed[pc] {
			extra = append(extra, pc)
		}
	}
	if len(extra) > 0 {
		sort.Slice(extra, func(i, j int) bool { return extra[i] < extra[j] })
		fmt.Fprintf(bw, "\n# sampled outside the image code segment:\n")
		for _, pc := range extra {
			writeAnnotLine(bw, cells[pc], attr, pc, "(outside image)")
		}
	}
	return bw.Flush()
}

// writeAnnotLine emits one listing row; a nil cell prints empty columns.
func writeAnnotLine(bw *bufio.Writer, c *BundleProfile, attr, addr uint64, disasm string) {
	if c == nil {
		fmt.Fprintf(bw, "%8s %12s %10s %7s %7s %7s %7s  %#06x  %s\n",
			"", "", "", "", "", "", "", addr, disasm)
		return
	}
	fmt.Fprintf(bw, "%7.2f%% %12d %10d %7d %7d %7d %7d  %#06x  %s\n",
		pct(c.Cycles, attr), c.Cycles, c.LoadStall, c.L2Miss, c.L3Miss,
		c.PfUseful, c.PfLate, addr, disasm)
}

func loopTitle(l *program.LoopInfo) string {
	if l.Name != "" {
		return l.Name
	}
	return fmt.Sprintf("#%d", l.ID)
}

func pct(part, whole uint64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}
