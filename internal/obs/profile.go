package obs

import (
	"sort"
	"strconv"

	"repro/internal/cpu"
	"repro/internal/program"
)

// This file aggregates the CPU's raw cycle-sampling profile (per bundle
// address) into the exportable Profile form: bundle cells joined with the
// compiler's loop table, so every downstream view — the pprof export, the
// annotated listing, the JSON form — can group by loop without re-deriving
// the mapping.

// BundleProfile is the attributed cost of one bundle address.
type BundleProfile struct {
	PC       uint64
	Loop     int    // compiler loop ID; -1 outside every static loop
	LoopName string `json:",omitempty"`

	Samples   uint64
	Cycles    uint64
	LoadStall uint64
	L2Miss    uint64
	L3Miss    uint64
	PfUseful  uint64
	PfLate    uint64
}

// LoopProfile is the attributed cost of one compiler loop (or, for ID -1,
// of all code outside static loops, including installed traces).
type LoopProfile struct {
	Loop      int
	Name      string
	Bundles   int // distinct sampled bundle addresses
	Samples   uint64
	Cycles    uint64
	LoadStall uint64
	L2Miss    uint64
	L3Miss    uint64
	PfUseful  uint64
	PfLate    uint64
}

// Profile is one run's aggregated simulated-execution profile.
type Profile struct {
	Program     string
	SampleEvery uint64          // sampling interval, simulated cycles
	TotalCycles uint64          // the run's full cycle count (attribution ⊆ this)
	Bundles     []BundleProfile // ascending by PC
}

// BuildProfile joins the CPU's raw per-PC samples with the image's loop
// table. img may be nil (every bundle lands on loop -1). samples is the
// map returned by cpu.(*CPU).ProfileSamples.
func BuildProfile(prog string, sampleEvery, totalCycles uint64,
	samples map[uint64]cpu.PCSample, img *program.Image) *Profile {
	p := &Profile{Program: prog, SampleEvery: sampleEvery, TotalCycles: totalCycles}
	if len(samples) == 0 {
		return p
	}
	p.Bundles = make([]BundleProfile, 0, len(samples))
	for pc, s := range samples {
		b := BundleProfile{
			PC:      pc,
			Loop:    -1,
			Samples: s.Samples, Cycles: s.Cycles, LoadStall: s.LoadStall,
			L2Miss: s.L2Miss, L3Miss: s.L3Miss,
			PfUseful: s.PfUseful, PfLate: s.PfLate,
		}
		if img != nil {
			if l, ok := img.LoopAt(pc); ok {
				b.Loop = l.ID
				b.LoopName = l.Name
			}
		}
		p.Bundles = append(p.Bundles, b)
	}
	sort.Slice(p.Bundles, func(i, j int) bool { return p.Bundles[i].PC < p.Bundles[j].PC })
	return p
}

// AttributedCycles returns the cycles the sampler attributed in total —
// at most TotalCycles, short by less than one interval (the tail after
// the final fire).
func (p *Profile) AttributedCycles() uint64 {
	var tot uint64
	for i := range p.Bundles {
		tot += p.Bundles[i].Cycles
	}
	return tot
}

// ByLoop folds the bundle cells per compiler loop, sorted by attributed
// cycles descending (ties by loop ID, so the order is deterministic).
func (p *Profile) ByLoop() []LoopProfile {
	if len(p.Bundles) == 0 {
		return nil
	}
	byID := make(map[int]*LoopProfile)
	for i := range p.Bundles {
		b := &p.Bundles[i]
		lp := byID[b.Loop]
		if lp == nil {
			lp = &LoopProfile{Loop: b.Loop, Name: b.LoopName}
			byID[b.Loop] = lp
		}
		if lp.Name == "" {
			lp.Name = b.LoopName
		}
		lp.Bundles++
		lp.Samples += b.Samples
		lp.Cycles += b.Cycles
		lp.LoadStall += b.LoadStall
		lp.L2Miss += b.L2Miss
		lp.L3Miss += b.L3Miss
		lp.PfUseful += b.PfUseful
		lp.PfLate += b.PfLate
	}
	out := make([]LoopProfile, 0, len(byID))
	for _, lp := range byID {
		out = append(out, *lp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		return out[i].Loop < out[j].Loop
	})
	return out
}

// FrameName is the synthetic "function" name a loop renders as in the
// pprof export and the annotated listing — the aggregation unit shared by
// both views and by cpu.LoopAccounting cross-checks.
func FrameName(loop int, name, prog string) string {
	if loop < 0 {
		if prog == "" {
			prog = "program"
		}
		return prog + "::outside_loops"
	}
	if name == "" {
		return "loop#" + strconv.Itoa(loop)
	}
	return name
}
