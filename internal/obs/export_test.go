package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureCapture is a small hand-built stream exercising every event kind,
// shared by the golden, validation, and timeline tests.
func fixtureCapture() *Capture {
	return &Capture{
		Meta: Meta{
			Program:  "mcf",
			Loops:    []LoopLabel{{ID: 0, Name: "arcs"}, {ID: 1, Name: "nodes"}},
			Policies: []string{"adaptive", "nextline", "paper", "throttle"},
		},
		Dropped: 0,
		Events: []Event{
			{Cycle: 1000, Kind: KindWindowObserved, Loop: -1, A: 0, B: 12, C: 500, V: 2.125, W: 0.015},
			{Cycle: 1000, Kind: KindCPIStack, Loop: -1, A: 400, B: 500, C: 60, D: 40},
			{Cycle: 1000, Kind: KindCPIStack, Loop: 0, A: 300, B: 450, C: 10, D: 5},
			{Cycle: 1000, Kind: KindPrefetchWindow, Loop: -1, A: 0, B: 0, C: 0, D: 0, V: 0.25},
			{Cycle: 2000, Kind: KindWindowObserved, Loop: -1, A: 1, B: 14, C: 510, V: 2.0, W: 0.014},
			{Cycle: 2000, Kind: KindCPIStack, Loop: -1, A: 420, B: 480, C: 55, D: 45},
			{Cycle: 2000, Kind: KindPrefetchWindow, Loop: -1, A: 0, B: 0, C: 0, D: 0, V: 0.24},
			{Cycle: 2500, Kind: KindPhaseDetected, Loop: 0, PC: 0x10040, A: 4, V: 2.06, W: 1.5},
			{Cycle: 2500, Kind: KindPolicySelected, Loop: 0, PC: 0x10040, A: 2, B: 1},
			{Cycle: 2500, Kind: KindTraceSelected, Loop: 0, PC: 0x10040, A: 6, B: 1},
			{Cycle: 2500, Kind: KindPolicySwitched, Loop: 0, PC: 0x10040, A: 2, B: 1},
			{Cycle: 2500, Kind: KindVerifyReject, Loop: 1, PC: 0x10200, A: 2},
			{Cycle: 2500, Kind: KindPatchInstalled, Loop: 0, PC: 0x10040, A: 0x4000_0000, B: 0x4000_0070, C: 2},
			{Cycle: 3000, Kind: KindWindowObserved, Loop: -1, A: 2, B: 3, C: 520, V: 1.25, W: 0.004},
			{Cycle: 3000, Kind: KindCPIStack, Loop: -1, A: 600, B: 40, C: 10, D: 0},
			{Cycle: 3000, Kind: KindPrefetchWindow, Loop: -1, A: 64, B: 60, C: 3, D: 1, V: 0.05},
			{Cycle: 3500, Kind: KindPhaseChange, Loop: -1},
			{Cycle: 4000, Kind: KindUnpatch, Loop: 0, PC: 0x10040, A: 0x4000_0000, V: 2.5, W: 2.0},
		},
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test ./internal/obs -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden file.\n-- got --\n%s\n-- want --\n%s", name, got, want)
	}
}

// TestChromeTraceGolden pins the Perfetto export byte-for-byte.
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, fixtureCapture()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fixture.trace.json", buf.Bytes())

	n, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("exported trace fails own validator: %v", err)
	}
	if n == 0 {
		t.Fatal("validator saw no timestamped events")
	}
}

// TestJSONLGolden pins the JSONL export byte-for-byte.
func TestJSONLGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, fixtureCapture()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fixture.events.jsonl", buf.Bytes())
	if lines := bytes.Count(buf.Bytes(), []byte("\n")); lines != len(fixtureCapture().Events)+1 {
		t.Fatalf("JSONL has %d lines, want %d", lines, len(fixtureCapture().Events)+1)
	}
}

func TestValidateRejectsBackwardsTimestamps(t *testing.T) {
	bad := `{"traceEvents": [
	  {"name":"cpi","ph":"C","ts":2000,"pid":1,"args":{"cpi":1}},
	  {"name":"cpi","ph":"C","ts":1000,"pid":1,"args":{"cpi":2}}
	]}`
	if _, err := ValidateChromeTrace([]byte(bad)); err == nil {
		t.Fatal("backwards counter timestamps not rejected")
	}
	// Same timestamps on different tracks are fine.
	ok := `{"traceEvents": [
	  {"name":"cpi","ph":"C","ts":2000,"pid":1,"args":{"cpi":1}},
	  {"name":"miss_rate","ph":"C","ts":1000,"pid":1,"args":{"dpi":2}}
	]}`
	if _, err := ValidateChromeTrace([]byte(ok)); err != nil {
		t.Fatalf("independent tracks rejected: %v", err)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":    `{"traceEvents": [`,
		"no array":    `{"events": []}`,
		"no name":     `{"traceEvents": [{"ph":"i","ts":1,"pid":1,"tid":1}]}`,
		"no pid":      `{"traceEvents": [{"name":"x","ph":"i","ts":1,"tid":1}]}`,
		"no ts":       `{"traceEvents": [{"name":"x","ph":"i","pid":1,"tid":1}]}`,
		"unknown ph":  `{"traceEvents": [{"name":"x","ph":"Z","ts":1,"pid":1,"tid":1}]}`,
		"instant tid": `{"traceEvents": [{"name":"x","ph":"i","ts":1,"pid":1}]}`,
	}
	for name, doc := range cases {
		if _, err := ValidateChromeTrace([]byte(doc)); err == nil {
			t.Errorf("%s: not rejected", name)
		}
	}
}

func TestTimeline(t *testing.T) {
	out := Timeline(fixtureCapture())
	for _, want := range []string{
		"timeline of mcf",
		"phase detected: pc-center 0x10040",
		"patch installed @0x10040",
		"verifier rejected trace @0x10200",
		"unpatched @0x10040",
		"64/60/3/1", // prefetch window deltas
		"phase change",
		"policy selected: paper",
		"policy fallback paper -> nextline",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
}
