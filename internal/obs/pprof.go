package obs

import (
	"compress/gzip"
	"io"
)

// Hand-rolled pprof export: renders a Profile as a gzipped
// profile.proto message so `go tool pprof` — and anything else that
// speaks the format — can browse a *simulated* execution profile exactly
// as it would a native one. Only the small, stable subset of the schema
// the viewers require is emitted; the encoder below writes raw protobuf
// wire format (varints and length-delimited fields), which keeps the
// repository free of generated code and proto dependencies.
//
// Shape: one Sample per sampled bundle address, whose single Location
// carries the bundle address and a Line resolving to a synthetic Function
// named after the owning compiler loop (FrameName). `pprof -top` then
// aggregates at loop granularity — the same unit as cpu.LoopAccounting,
// which is what the cross-check test compares against.
//
// Determinism: bundles are already PC-sorted, IDs are assigned in that
// order, no wall-clock time is embedded (time_nanos is left unset), and
// gzip's header has a zero ModTime by default — identical profiles
// serialize to identical bytes.

// protobuf wire types.
const (
	wireVarint = 0
	wireBytes  = 2
)

// pbuf is a minimal protobuf wire-format writer.
type pbuf struct{ b []byte }

func (p *pbuf) varint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

func (p *pbuf) tag(field, wire int) { p.varint(uint64(field)<<3 | uint64(wire)) }

// uint64Field emits a varint field, omitting zero values as proto3 does.
func (p *pbuf) uint64Field(field int, v uint64) {
	if v == 0 {
		return
	}
	p.tag(field, wireVarint)
	p.varint(v)
}

func (p *pbuf) bytesField(field int, b []byte) {
	p.tag(field, wireBytes)
	p.varint(uint64(len(b)))
	p.b = append(p.b, b...)
}

// packedField emits a repeated varint field in packed encoding.
func (p *pbuf) packedField(field int, vs []uint64) {
	var inner pbuf
	for _, v := range vs {
		inner.varint(v)
	}
	p.bytesField(field, inner.b)
}

// profile.proto field numbers (the subset emitted here).
const (
	profSampleType        = 1
	profSample            = 2
	profMapping           = 3
	profLocation          = 4
	profFunction          = 5
	profStringTable       = 6
	profDurationNanos     = 10
	profPeriodType        = 11
	profPeriod            = 12
	profDefaultSampleType = 14

	vtType = 1
	vtUnit = 2

	sampleLocationID = 1
	sampleValue      = 2

	mappingID           = 1
	mappingLimit        = 3
	mappingFile         = 5
	mappingHasFunctions = 7

	locationID      = 1
	locationMapping = 2
	locationAddress = 3
	locationLine    = 4

	lineFunctionID = 1

	functionID   = 1
	functionName = 2
)

// strTable interns strings into the profile string table (index 0 is
// always "", as the format requires).
type strTable struct {
	byVal map[string]uint64
	vals  []string
}

func newStrTable() *strTable {
	return &strTable{byVal: map[string]uint64{"": 0}, vals: []string{""}}
}

func (t *strTable) index(s string) uint64 {
	if i, ok := t.byVal[s]; ok {
		return i
	}
	i := uint64(len(t.vals))
	t.byVal[s] = i
	t.vals = append(t.vals, s)
	return i
}

// sampleValueNames are the per-sample value columns, in order. "cycles"
// is the default view: `pprof -top` on the export ranks loops by
// attributed simulated cycles.
var sampleValueNames = [...][2]string{
	{"samples", "count"},
	{"cycles", "cycles"},
	{"loadstall", "cycles"},
	{"l2miss", "count"},
	{"l3miss", "count"},
	{"pfuseful", "count"},
	{"pflate", "count"},
}

// WritePprof writes the profile as a gzipped profile.proto message.
func WritePprof(w io.Writer, p *Profile) error {
	strs := newStrTable()
	var body pbuf

	// sample_type: the value schema, one ValueType per column.
	for _, vt := range sampleValueNames {
		var m pbuf
		m.uint64Field(vtType, strs.index(vt[0]))
		m.uint64Field(vtUnit, strs.index(vt[1]))
		body.bytesField(profSampleType, m.b)
	}

	// function: one synthetic frame per loop, in first-appearance (PC)
	// order. funcID is 1-based; funcOf[loop] remembers the assignment.
	funcOf := map[int]uint64{}
	for i := range p.Bundles {
		b := &p.Bundles[i]
		if _, ok := funcOf[b.Loop]; ok {
			continue
		}
		id := uint64(len(funcOf) + 1)
		funcOf[b.Loop] = id
		var f pbuf
		f.uint64Field(functionID, id)
		f.uint64Field(functionName, strs.index(FrameName(b.Loop, b.LoopName, p.Program)))
		body.bytesField(profFunction, f.b)
	}

	// location: one per bundle, ID = index+1, address = bundle PC.
	var maxPC uint64
	for i := range p.Bundles {
		b := &p.Bundles[i]
		if b.PC > maxPC {
			maxPC = b.PC
		}
		var line pbuf
		line.uint64Field(lineFunctionID, funcOf[b.Loop])
		var loc pbuf
		loc.uint64Field(locationID, uint64(i+1))
		loc.uint64Field(locationMapping, 1)
		loc.uint64Field(locationAddress, b.PC)
		loc.bytesField(locationLine, line.b)
		body.bytesField(profLocation, loc.b)
	}

	// sample: one per bundle, leaf-only stack.
	for i := range p.Bundles {
		b := &p.Bundles[i]
		var s pbuf
		s.packedField(sampleLocationID, []uint64{uint64(i + 1)})
		s.packedField(sampleValue, []uint64{
			b.Samples, b.Cycles, b.LoadStall,
			b.L2Miss, b.L3Miss, b.PfUseful, b.PfLate,
		})
		body.bytesField(profSample, s.b)
	}

	// mapping: one synthetic text mapping covering the sampled range, so
	// viewers render addresses instead of complaining about orphans.
	var m pbuf
	m.uint64Field(mappingID, 1)
	// memory_start is 0 (omitted as a proto3 zero); the limit is one
	// bundle past the highest sampled address.
	m.uint64Field(mappingLimit, maxPC+16)
	m.uint64Field(mappingFile, strs.index(p.Program))
	// has_functions: every location resolves to a named frame already, so
	// pprof must not try (and noisily fail) to symbolize the "binary".
	m.uint64Field(mappingHasFunctions, 1)
	body.bytesField(profMapping, m.b)

	// period: the sampler's cycle interval; duration: the run length in
	// simulated cycles (reported nominally as nanoseconds — no wall time
	// exists in a simulated profile).
	var pt pbuf
	pt.uint64Field(vtType, strs.index("cycles"))
	pt.uint64Field(vtUnit, strs.index("cycles"))
	body.bytesField(profPeriodType, pt.b)
	body.uint64Field(profPeriod, p.SampleEvery)
	body.uint64Field(profDurationNanos, p.TotalCycles)
	body.uint64Field(profDefaultSampleType, strs.index("cycles"))

	// string_table last in construction but order within the message is
	// irrelevant to parsers; emit every interned string, index order.
	for _, s := range strs.vals {
		body.bytesField(profStringTable, []byte(s))
	}

	zw := gzip.NewWriter(w)
	if _, err := zw.Write(body.b); err != nil {
		return err
	}
	return zw.Close()
}
