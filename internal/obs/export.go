package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// This file renders a Capture in two interchange formats:
//
//   - JSONL: one self-describing JSON object per event, preceded by one
//     meta line — the grep/jq-friendly form.
//   - Chrome trace-event format (the JSON object form, {"traceEvents":
//     [...]}), loadable in Perfetto and chrome://tracing: instant events on
//     a controller track and one track per loop, plus counter tracks for
//     the CPI stack, CPI, L1D miss rate, and prefetch usefulness.
//
// Both writers emit fields in a fixed order with strconv-formatted numbers,
// so identical captures serialize to identical bytes (the golden-file and
// determinism tests rely on this).

// fnum formats a float like encoding/json does (shortest round-trip form).
func fnum(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteJSONL writes the capture as JSON Lines. The first line is a meta
// record carrying the program name, the event count, and how many events
// the ring dropped; each following line is one event.
func WriteJSONL(w io.Writer, c *Capture) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `{"meta":true,"program":%q,"events":%d,"dropped":%d}`+"\n",
		c.Meta.Program, len(c.Events), c.Dropped)
	for i := range c.Events {
		e := &c.Events[i]
		fmt.Fprintf(bw,
			`{"cycle":%d,"kind":%q,"loop":%d,"pc":"0x%x","a":%d,"b":%d,"c":%d,"d":%d,"v":%s,"w":%s}`+"\n",
			e.Cycle, e.Kind.String(), e.Loop, e.PC, e.A, e.B, e.C, e.D, fnum(e.V), fnum(e.W))
	}
	return bw.Flush()
}

// Track/pid layout of the Chrome trace. One fake process holds everything;
// the controller gets tid 1, the policy selector tid 2, and each compiler
// loop gets 100+ID, so Perfetto shows the dynopt's actions per loop.
const (
	tracePid      = 1
	controllerTid = 1
	policyTid     = 2
	loopTidBase   = 100
)

func loopTid(loop int32) int {
	if loop < 0 {
		return controllerTid
	}
	return loopTidBase + int(loop)
}

// chromeWriter assembles the traceEvents array with deterministic
// formatting.
type chromeWriter struct {
	bw    *bufio.Writer
	first bool
}

func (cw *chromeWriter) event(fields string) {
	if !cw.first {
		cw.bw.WriteString(",\n")
	}
	cw.first = false
	cw.bw.WriteString("  {")
	cw.bw.WriteString(fields)
	cw.bw.WriteString("}")
}

func (cw *chromeWriter) meta(name string, tid int, value string) {
	cw.event(fmt.Sprintf(`"name":%q,"ph":"M","pid":%d,"tid":%d,"args":{"name":%q}`,
		name, tracePid, tid, value))
}

func (cw *chromeWriter) instant(name string, ts uint64, tid int, args string) {
	cw.event(fmt.Sprintf(`"name":%q,"ph":"i","s":"t","ts":%d,"pid":%d,"tid":%d,"args":{%s}`,
		name, ts, tracePid, tid, args))
}

func (cw *chromeWriter) counter(name string, ts uint64, args string) {
	cw.event(fmt.Sprintf(`"name":%q,"ph":"C","ts":%d,"pid":%d,"args":{%s}`,
		name, ts, tracePid, args))
}

// WriteChromeTrace writes the capture in Chrome trace-event format.
// Timestamps map one simulated cycle to one microsecond; Perfetto's time
// axis therefore reads directly in simulated megacycles.
func WriteChromeTrace(w io.Writer, c *Capture) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"traceEvents\": [\n")
	cw := &chromeWriter{bw: bw, first: true}

	cw.meta("process_name", 0, "adore: "+c.Meta.Program)
	cw.meta("thread_name", controllerTid, "controller")
	if len(c.Meta.Policies) > 0 {
		cw.meta("thread_name", policyTid, "policy selector")
	}
	for _, l := range c.Meta.Loops {
		cw.meta("thread_name", loopTidBase+l.ID, fmt.Sprintf("loop %d: %s", l.ID, l.Name))
	}

	for i := range c.Events {
		e := &c.Events[i]
		switch e.Kind {
		case KindWindowObserved:
			cw.counter("cpi", e.Cycle, `"cpi":`+fnum(e.V))
			cw.counter("miss_rate", e.Cycle, `"dpi":`+fnum(e.W))
		case KindCPIStack:
			if e.Loop >= 0 {
				// Per-loop stacks stay out of the counter tracks (one
				// counter per name); the JSONL stream carries them.
				continue
			}
			cw.counter("cpi_stack", e.Cycle, fmt.Sprintf(
				`"busy":%d,"load_stall":%d,"flush":%d,"fetch":%d`, e.A, e.B, e.C, e.D))
		case KindPrefetchWindow:
			cw.counter("prefetch", e.Cycle, fmt.Sprintf(
				`"issued":%d,"useful":%d,"late":%d,"evicted_unused":%d`, e.A, e.B, e.C, e.D))
		case KindPhaseDetected:
			cw.instant("PhaseDetected", e.Cycle, controllerTid, fmt.Sprintf(
				`"pc_center":"0x%x","windows":%d,"cpi":%s,"dear_per_k":%s`, e.PC, e.A, fnum(e.V), fnum(e.W)))
		case KindPhaseChange:
			cw.instant("PhaseChange", e.Cycle, controllerTid, "")
		case KindTraceSelected:
			cw.instant("TraceSelected", e.Cycle, loopTid(e.Loop), fmt.Sprintf(
				`"start":"0x%x","bundles":%d,"loop_trace":%t`, e.PC, e.A, e.B != 0))
		case KindPatchInstalled:
			cw.instant("PatchInstalled", e.Cycle, loopTid(e.Loop), fmt.Sprintf(
				`"entry":"0x%x","trace":"0x%x","trace_end":"0x%x","prefetches":%d`, e.PC, e.A, e.B, e.C))
		case KindVerifyReject:
			cw.instant("VerifyReject", e.Cycle, loopTid(e.Loop), fmt.Sprintf(
				`"start":"0x%x","findings":%d`, e.PC, e.A))
		case KindUnpatch:
			cw.instant("Unpatch", e.Cycle, loopTid(e.Loop), fmt.Sprintf(
				`"entry":"0x%x","trace":"0x%x","cpi":%s,"pre_patch_cpi":%s`, e.PC, e.A, fnum(e.V), fnum(e.W)))
		case KindPolicySelected:
			cw.instant("PolicySelected", e.Cycle, policyTid, fmt.Sprintf(
				`"policy":%q,"pc_center":"0x%x","selection":%d`, c.Meta.PolicyName(e.A), e.PC, e.B))
		case KindPolicySwitched:
			cw.instant("PolicySwitched", e.Cycle, policyTid, fmt.Sprintf(
				`"from":%q,"to":%q,"trace":"0x%x"`, c.Meta.PolicyName(e.A), c.Meta.PolicyName(e.B), e.PC))
		}
	}

	fmt.Fprintf(bw, "\n], \"displayTimeUnit\": \"ms\", \"otherData\": {\"program\": %q, \"dropped\": %d}}\n",
		c.Meta.Program, c.Dropped)
	return bw.Flush()
}
