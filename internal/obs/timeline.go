package obs

import (
	"fmt"
	"strings"
)

// Timeline renders the capture as a plain-text per-window history: one row
// per profile window (cycle, CPI, DPI, CPI-stack shares, prefetch deltas)
// with the controller's actions — phase events, trace selections, patches,
// rejections — interleaved at the window positions where they happened.
// This is the `-timeline` view of cmd/adore-profile.
func Timeline(c *Capture) string {
	var b strings.Builder
	fmt.Fprintf(&b, "timeline of %s: %d events", c.Meta.Program, len(c.Events))
	if c.Dropped > 0 {
		fmt.Fprintf(&b, " (%d dropped)", c.Dropped)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%14s %7s %8s | %5s %5s %5s %5s | %s\n",
		"cycle", "CPI", "DPI", "busy", "stall", "flush", "fetch", "lfetch issued/useful/late/unused")

	// Per-window rows assemble from the WindowObserved + core CPIStack +
	// PrefetchWindow events the controller emits back to back; everything
	// else prints as an annotation line in stream order.
	type row struct {
		cycle     uint64
		cpi, dpi  float64
		haveStack bool
		stack     [4]uint64
		havePf    bool
		pf        [4]uint64
	}
	var cur *row
	flush := func() {
		if cur == nil {
			return
		}
		fmt.Fprintf(&b, "%14d %7.3f %8.5f", cur.cycle, cur.cpi, cur.dpi)
		if cur.haveStack {
			total := cur.stack[0] + cur.stack[1] + cur.stack[2] + cur.stack[3]
			if total == 0 {
				total = 1
			}
			pct := func(v uint64) float64 { return 100 * float64(v) / float64(total) }
			fmt.Fprintf(&b, " | %4.0f%% %4.0f%% %4.0f%% %4.0f%%",
				pct(cur.stack[0]), pct(cur.stack[1]), pct(cur.stack[2]), pct(cur.stack[3]))
		} else {
			fmt.Fprintf(&b, " | %5s %5s %5s %5s", "-", "-", "-", "-")
		}
		if cur.havePf {
			fmt.Fprintf(&b, " | %d/%d/%d/%d", cur.pf[0], cur.pf[1], cur.pf[2], cur.pf[3])
		}
		b.WriteString("\n")
		cur = nil
	}
	note := func(cycle uint64, format string, args ...any) {
		flush()
		fmt.Fprintf(&b, "%14d   * ", cycle)
		fmt.Fprintf(&b, format, args...)
		b.WriteString("\n")
	}

	for i := range c.Events {
		e := &c.Events[i]
		switch e.Kind {
		case KindWindowObserved:
			flush()
			cur = &row{cycle: e.Cycle, cpi: e.V, dpi: e.W}
		case KindCPIStack:
			if e.Loop >= 0 {
				continue // per-loop stacks stay in the JSONL/Perfetto views
			}
			if cur != nil {
				cur.haveStack = true
				cur.stack = [4]uint64{e.A, e.B, e.C, e.D}
			}
		case KindPrefetchWindow:
			if cur != nil {
				cur.havePf = true
				cur.pf = [4]uint64{e.A, e.B, e.C, e.D}
			}
		case KindPhaseDetected:
			note(e.Cycle, "phase detected: pc-center %#x, CPI %.3f, DEAR/K %.2f (%d windows)",
				e.PC, e.V, e.W, e.A)
		case KindPhaseChange:
			note(e.Cycle, "phase change")
		case KindTraceSelected:
			kind := "trace"
			if e.B != 0 {
				kind = "loop trace"
			}
			note(e.Cycle, "%s selected @%#x (%d bundles, loop %d)", kind, e.PC, e.A, e.Loop)
		case KindPatchInstalled:
			note(e.Cycle, "patch installed @%#x -> %#x..%#x (%d prefetches, loop %d)",
				e.PC, e.A, e.B, e.C, e.Loop)
		case KindVerifyReject:
			note(e.Cycle, "verifier rejected trace @%#x (%d findings)", e.PC, e.A)
		case KindUnpatch:
			note(e.Cycle, "unpatched @%#x (CPI %.3f vs pre-patch %.3f)", e.PC, e.V, e.W)
		case KindPolicySelected:
			note(e.Cycle, "policy selected: %s (phase pc-center %#x)", c.Meta.PolicyName(e.A), e.PC)
		case KindPolicySwitched:
			note(e.Cycle, "policy fallback %s -> %s @%#x", c.Meta.PolicyName(e.A), c.Meta.PolicyName(e.B), e.PC)
		}
	}
	flush()
	return b.String()
}
