package obs

import (
	"encoding/json"
	"fmt"
)

// ValidateChromeTrace checks a serialized Chrome trace (as produced by
// WriteChromeTrace, or any schema-compatible producer) for the properties
// Perfetto needs: well-formed JSON with a traceEvents array, every event
// carrying a name, a known phase, and pid/tid, and per-track timestamps
// that never run backwards. It returns the event count on success — CI
// runs this over the trace artifact before uploading it.
func ValidateChromeTrace(data []byte) (events int, err error) {
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, fmt.Errorf("obs: trace is not valid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return 0, fmt.Errorf("obs: trace has no traceEvents array")
	}

	type ev struct {
		Name string   `json:"name"`
		Ph   string   `json:"ph"`
		Ts   *float64 `json:"ts"`
		Pid  *int     `json:"pid"`
		Tid  *int     `json:"tid"`
	}
	// Timestamps must be non-decreasing per track: per (pid,tid) for
	// instants/durations, per (pid,name) for counters (a counter is its
	// own track regardless of tid).
	lastTs := map[string]float64{}
	for i, raw := range doc.TraceEvents {
		var e ev
		if err := json.Unmarshal(raw, &e); err != nil {
			return 0, fmt.Errorf("obs: traceEvents[%d] malformed: %w", i, err)
		}
		if e.Name == "" {
			return 0, fmt.Errorf("obs: traceEvents[%d] has no name", i)
		}
		if e.Pid == nil {
			return 0, fmt.Errorf("obs: traceEvents[%d] %q has no pid", i, e.Name)
		}
		var track string
		switch e.Ph {
		case "M": // metadata carries no timestamp
			continue
		case "C":
			track = fmt.Sprintf("C/%d/%s", *e.Pid, e.Name)
		case "i", "I", "X", "B", "E":
			if e.Tid == nil {
				return 0, fmt.Errorf("obs: traceEvents[%d] %q has no tid", i, e.Name)
			}
			track = fmt.Sprintf("T/%d/%d", *e.Pid, *e.Tid)
		default:
			return 0, fmt.Errorf("obs: traceEvents[%d] %q has unknown phase %q", i, e.Name, e.Ph)
		}
		if e.Ts == nil {
			return 0, fmt.Errorf("obs: traceEvents[%d] %q has no ts", i, e.Name)
		}
		if prev, seen := lastTs[track]; seen && *e.Ts < prev {
			return 0, fmt.Errorf("obs: traceEvents[%d] %q: ts %v runs backwards on track %s (prev %v)",
				i, e.Name, *e.Ts, track, prev)
		}
		lastTs[track] = *e.Ts
		events++
	}
	return events, nil
}
