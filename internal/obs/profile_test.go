package obs

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/program"
)

// testImage builds a two-loop image whose code segment spans 6 bundles:
// loop 0 at [0x10,0x30), loop 1 at [0x30,0x50).
func testImage() *program.Image {
	bundles := make([]isa.Bundle, 6)
	for i := range bundles {
		bundles[i] = isa.Bundle{Tmpl: isa.TmplMII, Slots: [3]isa.Inst{isa.Nop, isa.Nop, isa.Nop}}
	}
	seg := &program.Segment{Name: "text", Base: 0, Bundles: bundles}
	img := program.NewImage("toy", seg, 0)
	img.Loops = []program.LoopInfo{
		{ID: 0, Name: "stream_sum", Head: 0x10, BodyStart: 0x10, BodyEnd: 0x30},
		{ID: 1, Name: "scatter", Head: 0x30, BodyStart: 0x30, BodyEnd: 0x50},
	}
	return img
}

func testSamples() map[uint64]cpu.PCSample {
	return map[uint64]cpu.PCSample{
		0x00: {Samples: 1, Cycles: 50},
		0x10: {Samples: 10, Cycles: 4000, LoadStall: 3000, L2Miss: 40, L3Miss: 12, PfUseful: 5, PfLate: 2},
		0x20: {Samples: 4, Cycles: 1000, LoadStall: 200, L2Miss: 8},
		0x40: {Samples: 2, Cycles: 500, LoadStall: 100, L3Miss: 1},
	}
}

func TestBuildProfile(t *testing.T) {
	p := BuildProfile("toy", 4093, 6000, testSamples(), testImage())
	if len(p.Bundles) != 4 {
		t.Fatalf("profile has %d bundles, want 4", len(p.Bundles))
	}
	// PC-sorted.
	for i := 1; i < len(p.Bundles); i++ {
		if p.Bundles[i-1].PC >= p.Bundles[i].PC {
			t.Fatal("bundles not PC-sorted")
		}
	}
	byPC := map[uint64]BundleProfile{}
	for _, b := range p.Bundles {
		byPC[b.PC] = b
	}
	if b := byPC[0x10]; b.Loop != 0 || b.LoopName != "stream_sum" {
		t.Errorf("0x10 resolved to loop %d %q", b.Loop, b.LoopName)
	}
	if b := byPC[0x40]; b.Loop != 1 || b.LoopName != "scatter" {
		t.Errorf("0x40 resolved to loop %d %q", b.Loop, b.LoopName)
	}
	if b := byPC[0x00]; b.Loop != -1 {
		t.Errorf("0x00 resolved to loop %d, want -1", b.Loop)
	}
	if got := p.AttributedCycles(); got != 5550 {
		t.Errorf("attributed %d cycles, want 5550", got)
	}

	loops := p.ByLoop()
	if len(loops) != 3 {
		t.Fatalf("ByLoop returned %d entries, want 3", len(loops))
	}
	if loops[0].Loop != 0 || loops[0].Cycles != 5000 || loops[0].LoadStall != 3200 ||
		loops[0].L2Miss != 48 || loops[0].Bundles != 2 {
		t.Errorf("hottest loop wrong: %+v", loops[0])
	}
	if loops[1].Loop != 1 || loops[2].Loop != -1 {
		t.Errorf("loop order wrong: %+v", loops)
	}
}

// pprofMsg is a decoded protobuf message: field number -> varint values
// and field number -> raw bytes payloads.
type pprofMsg struct {
	ints  map[int][]uint64
	bytes map[int][][]byte
}

// parseProto walks protobuf wire format (varint and length-delimited
// fields only — all profile.proto uses).
func parseProto(t *testing.T, b []byte) pprofMsg {
	t.Helper()
	m := pprofMsg{ints: map[int][]uint64{}, bytes: map[int][][]byte{}}
	for len(b) > 0 {
		key, n := uvarint(b)
		if n <= 0 {
			t.Fatal("bad varint key")
		}
		b = b[n:]
		field, wire := int(key>>3), int(key&7)
		switch wire {
		case 0:
			v, n := uvarint(b)
			if n <= 0 {
				t.Fatal("bad varint value")
			}
			b = b[n:]
			m.ints[field] = append(m.ints[field], v)
		case 2:
			l, n := uvarint(b)
			if n <= 0 || uint64(len(b)-n) < l {
				t.Fatal("bad length-delimited field")
			}
			m.bytes[field] = append(m.bytes[field], b[n:n+int(l)])
			b = b[n+int(l):]
		default:
			t.Fatalf("unexpected wire type %d", wire)
		}
	}
	return m
}

func uvarint(b []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(b) && i < 10; i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i] < 0x80 {
			return v, i + 1
		}
	}
	return 0, -1
}

func parsePacked(t *testing.T, b []byte) []uint64 {
	t.Helper()
	var out []uint64
	for len(b) > 0 {
		v, n := uvarint(b)
		if n <= 0 {
			t.Fatal("bad packed varint")
		}
		out = append(out, v)
		b = b[n:]
	}
	return out
}

// TestWritePprof decodes the export with a minimal wire-format parser and
// checks the structural invariants `go tool pprof` relies on.
func TestWritePprof(t *testing.T) {
	p := BuildProfile("toy", 4093, 6000, testSamples(), testImage())
	var buf bytes.Buffer
	if err := WritePprof(&buf, p); err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("export is not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	msg := parseProto(t, raw)

	// String table: index 0 must be "".
	strs := msg.bytes[6]
	if len(strs) == 0 || len(strs[0]) != 0 {
		t.Fatal("string_table[0] is not the empty string")
	}
	str := func(i uint64) string {
		if i >= uint64(len(strs)) {
			t.Fatalf("string index %d out of range", i)
		}
		return string(strs[i])
	}

	// sample_type count must match every sample's value count.
	nTypes := len(msg.bytes[1])
	if nTypes != len(sampleValueNames) {
		t.Fatalf("%d sample types, want %d", nTypes, len(sampleValueNames))
	}
	samples := msg.bytes[2]
	if len(samples) != 4 {
		t.Fatalf("%d samples, want 4", len(samples))
	}
	var totalCycles uint64
	for _, sb := range samples {
		sm := parseProto(t, sb)
		locs := parsePacked(t, sm.bytes[1][0])
		if len(locs) != 1 {
			t.Fatalf("sample has %d locations, want 1", len(locs))
		}
		vals := parsePacked(t, sm.bytes[2][0])
		if len(vals) != nTypes {
			t.Fatalf("sample has %d values, want %d", len(vals), nTypes)
		}
		totalCycles += vals[1]
	}
	if totalCycles != 5550 {
		t.Errorf("samples sum to %d cycles, want 5550", totalCycles)
	}

	// Locations resolve to functions named per loop.
	funcs := map[uint64]string{}
	for _, fb := range msg.bytes[5] {
		fm := parseProto(t, fb)
		funcs[fm.ints[1][0]] = str(fm.ints[2][0])
	}
	names := map[string]bool{}
	for _, n := range funcs {
		names[n] = true
	}
	for _, want := range []string{"stream_sum", "scatter", "toy::outside_loops"} {
		if !names[want] {
			t.Errorf("function %q missing from export (have %v)", want, funcs)
		}
	}
	locFuncs := map[uint64]bool{}
	for _, lb := range msg.bytes[4] {
		lm := parseProto(t, lb)
		line := parseProto(t, lm.bytes[4][0])
		fid := line.ints[1][0]
		if _, ok := funcs[fid]; !ok {
			t.Fatalf("location references unknown function %d", fid)
		}
		locFuncs[fid] = true
	}
	if len(locFuncs) != 3 {
		t.Errorf("locations reference %d functions, want 3", len(locFuncs))
	}

	// Period and default sample type.
	if got := msg.ints[12]; len(got) != 1 || got[0] != 4093 {
		t.Errorf("period = %v, want [4093]", got)
	}
	if got := msg.ints[14]; len(got) != 1 || str(got[0]) != "cycles" {
		t.Errorf("default_sample_type wrong: %v", got)
	}

	// Determinism: a second export is byte-identical.
	var buf2 bytes.Buffer
	if err := WritePprof(&buf2, BuildProfile("toy", 4093, 6000, testSamples(), testImage())); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("two exports of the same profile differ")
	}
}

func TestWriteAnnotate(t *testing.T) {
	p := BuildProfile("toy", 4093, 6000, testSamples(), testImage())
	var b strings.Builder
	if err := WriteAnnotate(&b, p, testImage()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# toy — simulated-execution profile",
		"sample interval: 4093 cycles",
		"loop stream_sum",    // boundary marker
		"stream_sum",         // summary row
		"toy::outside_loops", // the loop -1 frame
		"0x000010",           // hottest bundle's address
		"3000",               // its load-stall count
	} {
		if !strings.Contains(out, want) {
			t.Errorf("annotated listing missing %q:\n%s", want, out)
		}
	}
	// The hottest loop leads the summary.
	sumIdx := strings.Index(out, "stream_sum")
	scatIdx := strings.Index(out, "scatter")
	if sumIdx < 0 || scatIdx < 0 || sumIdx > scatIdx {
		t.Errorf("summary not sorted hottest-first:\n%s", out)
	}
	// Unsampled bundles still list (6 bundles => 6 address rows).
	for _, addr := range []string{"0x000000", "0x000010", "0x000020", "0x000030", "0x000040", "0x000050"} {
		if !strings.Contains(out, addr) {
			t.Errorf("listing missing bundle %s", addr)
		}
	}
}

// TestPprofToolReadsExport runs the real `go tool pprof -top` over the
// export — the end-to-end guarantee the hand-rolled encoder exists for.
func TestPprofToolReadsExport(t *testing.T) {
	if testing.Short() {
		t.Skip("execs the go tool")
	}
	gobin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not on PATH")
	}
	p := BuildProfile("toy", 4093, 6000, testSamples(), testImage())
	path := filepath.Join(t.TempDir(), "sim.pb.gz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WritePprof(f, p); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(gobin, "tool", "pprof", "-top", "-sample_index=cycles", path).CombinedOutput()
	if err != nil {
		t.Fatalf("go tool pprof failed: %v\n%s", err, out)
	}
	for _, want := range []string{"stream_sum", "scatter", "toy::outside_loops"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("pprof -top output missing %q:\n%s", want, out)
		}
	}
}
