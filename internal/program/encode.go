package program

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/isa"
)

// Binary image format ("ADORE images"): a compact serialization of a
// compiled program — code bundles, entry point, symbols and loop metadata —
// so that compiled workloads can be saved, inspected and reloaded by tools
// without rebuilding. Data initialization is not part of the format: it is
// a property of the workload definition, re-run at load time by whoever
// owns the kernel.
//
// Layout (all multi-byte integers are unsigned varints unless noted):
//
//	magic "ADORimg1"
//	name string                (uvarint length + bytes)
//	entry, base uvarint
//	bundle count uvarint
//	  per bundle: template byte, then 3 instructions
//	  per instruction: opcode byte, flag byte (bit0 spec, bit1 swploop),
//	    qp, r1, r2, r3, f1..f4, p1, p2, b, rel (raw bytes),
//	    imm zigzag-varint, postinc zigzag-varint, target uvarint
//	symbol count uvarint, then (name string, addr uvarint) sorted by name
//	loop count uvarint, then per loop: id uvarint, name string,
//	  head/bodyStart/bodyEnd uvarint, flag byte (bit0 prefetchable,
//	  bit1 prefetched)
const imageMagic = "ADORimg1"

// EncodeImage writes im to w in the binary image format.
func EncodeImage(w io.Writer, im *Image) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(imageMagic); err != nil {
		return err
	}
	writeString(bw, im.Name)
	writeUvarint(bw, im.Entry)
	writeUvarint(bw, im.Code.Base)
	writeUvarint(bw, uint64(len(im.Code.Bundles)))
	for i := range im.Code.Bundles {
		b := &im.Code.Bundles[i]
		bw.WriteByte(byte(b.Tmpl))
		for s := 0; s < 3; s++ {
			encodeInst(bw, &b.Slots[s])
		}
	}

	names := make([]string, 0, len(im.Symbols))
	for n := range im.Symbols {
		names = append(names, n)
	}
	sort.Strings(names)
	writeUvarint(bw, uint64(len(names)))
	for _, n := range names {
		writeString(bw, n)
		writeUvarint(bw, im.Symbols[n])
	}

	writeUvarint(bw, uint64(len(im.Loops)))
	for i := range im.Loops {
		l := &im.Loops[i]
		writeUvarint(bw, uint64(l.ID))
		writeString(bw, l.Name)
		writeUvarint(bw, l.Head)
		writeUvarint(bw, l.BodyStart)
		writeUvarint(bw, l.BodyEnd)
		var fl byte
		if l.Prefetchable {
			fl |= 1
		}
		if l.Prefetched {
			fl |= 2
		}
		bw.WriteByte(fl)
	}
	return bw.Flush()
}

// DecodeImage reads an image previously written by EncodeImage. The
// returned image has no data initializer.
func DecodeImage(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(imageMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("program: reading magic: %w", err)
	}
	if string(magic) != imageMagic {
		return nil, fmt.Errorf("program: bad magic %q", magic)
	}
	name, err := readString(br)
	if err != nil {
		return nil, err
	}
	entry, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	base, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	const maxBundles = 1 << 24
	if n > maxBundles {
		return nil, fmt.Errorf("program: unreasonable bundle count %d", n)
	}
	seg := &Segment{Name: name, Base: base, Bundles: make([]isa.Bundle, n)}
	for i := range seg.Bundles {
		tb, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		seg.Bundles[i].Tmpl = isa.Template(tb)
		for s := 0; s < 3; s++ {
			if err := decodeInst(br, &seg.Bundles[i].Slots[s]); err != nil {
				return nil, fmt.Errorf("program: bundle %d slot %d: %w", i, s, err)
			}
		}
	}
	im := NewImage(name, seg, entry)

	ns, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < ns; i++ {
		sym, err := readString(br)
		if err != nil {
			return nil, err
		}
		addr, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		im.Symbols[sym] = addr
	}

	nl, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nl; i++ {
		var l LoopInfo
		id, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		l.ID = int(id)
		if l.Name, err = readString(br); err != nil {
			return nil, err
		}
		if l.Head, err = binary.ReadUvarint(br); err != nil {
			return nil, err
		}
		if l.BodyStart, err = binary.ReadUvarint(br); err != nil {
			return nil, err
		}
		if l.BodyEnd, err = binary.ReadUvarint(br); err != nil {
			return nil, err
		}
		fl, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		l.Prefetchable = fl&1 != 0
		l.Prefetched = fl&2 != 0
		im.Loops = append(im.Loops, l)
	}
	return im, nil
}

func encodeInst(bw *bufio.Writer, in *isa.Inst) {
	bw.WriteByte(byte(in.Op))
	var fl byte
	if in.Spec {
		fl |= 1
	}
	if in.SWPLoop {
		fl |= 2
	}
	bw.WriteByte(fl)
	bw.WriteByte(byte(in.QP))
	bw.WriteByte(byte(in.R1))
	bw.WriteByte(byte(in.R2))
	bw.WriteByte(byte(in.R3))
	bw.WriteByte(byte(in.F1))
	bw.WriteByte(byte(in.F2))
	bw.WriteByte(byte(in.F3))
	bw.WriteByte(byte(in.F4))
	bw.WriteByte(byte(in.P1))
	bw.WriteByte(byte(in.P2))
	bw.WriteByte(byte(in.B))
	bw.WriteByte(byte(in.Rel))
	writeVarint(bw, in.Imm)
	writeVarint(bw, in.PostInc)
	writeUvarint(bw, in.Target)
}

func decodeInst(br *bufio.Reader, in *isa.Inst) error {
	raw := make([]byte, 14)
	if _, err := io.ReadFull(br, raw); err != nil {
		return err
	}
	in.Op = isa.Op(raw[0])
	in.Spec = raw[1]&1 != 0
	in.SWPLoop = raw[1]&2 != 0
	in.QP = isa.PReg(raw[2])
	in.R1 = isa.Reg(raw[3])
	in.R2 = isa.Reg(raw[4])
	in.R3 = isa.Reg(raw[5])
	in.F1 = isa.FReg(raw[6])
	in.F2 = isa.FReg(raw[7])
	in.F3 = isa.FReg(raw[8])
	in.F4 = isa.FReg(raw[9])
	in.P1 = isa.PReg(raw[10])
	in.P2 = isa.PReg(raw[11])
	in.B = isa.BReg(raw[12])
	in.Rel = isa.CmpRel(raw[13])
	var err error
	if in.Imm, err = binary.ReadVarint(br); err != nil {
		return err
	}
	if in.PostInc, err = binary.ReadVarint(br); err != nil {
		return err
	}
	if in.Target, err = binary.ReadUvarint(br); err != nil {
		return err
	}
	return nil
}

func writeUvarint(bw *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	bw.Write(buf[:n])
}

func writeVarint(bw *bufio.Writer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	bw.Write(buf[:n])
}

func writeString(bw *bufio.Writer, s string) {
	writeUvarint(bw, uint64(len(s)))
	bw.WriteString(s)
}

func readString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	const maxString = 1 << 20
	if n > maxString {
		return "", fmt.Errorf("program: unreasonable string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
