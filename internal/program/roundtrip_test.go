package program_test

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/compiler"
	"repro/internal/program"
	"repro/internal/workloads"
)

// TestEncodeDecodeRoundTripAllWorkloads encodes every compiled workload at
// every opt level and decodes it back, requiring bundle-for-bundle equality
// plus identical metadata. This is the on-disk contract adore-lint and the
// experiment cache rely on: what was verified is exactly what reloads.
func TestEncodeDecodeRoundTripAllWorkloads(t *testing.T) {
	for _, bench := range workloads.All(0.05) {
		for _, lv := range []compiler.OptLevel{compiler.O2, compiler.O3} {
			t.Run(fmt.Sprintf("%s/%s", bench.Name, lv), func(t *testing.T) {
				opts := compiler.DefaultOptions()
				opts.Level = lv
				build, err := compiler.Build(bench.Kernel, opts)
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				img := build.Image

				var buf bytes.Buffer
				if err := program.EncodeImage(&buf, img); err != nil {
					t.Fatalf("encode: %v", err)
				}
				got, err := program.DecodeImage(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatalf("decode: %v", err)
				}
				compareImages(t, img, got)
			})
		}
	}
}

func compareImages(t *testing.T, want, got *program.Image) {
	t.Helper()
	if got.Name != want.Name {
		t.Errorf("Name = %q, want %q", got.Name, want.Name)
	}
	if got.Entry != want.Entry {
		t.Errorf("Entry = %#x, want %#x", got.Entry, want.Entry)
	}
	if got.BundleCount != want.BundleCount {
		t.Errorf("BundleCount = %d, want %d", got.BundleCount, want.BundleCount)
	}
	if got.Code.Base != want.Code.Base {
		t.Errorf("Code.Base = %#x, want %#x", got.Code.Base, want.Code.Base)
	}
	if len(got.Code.Bundles) != len(want.Code.Bundles) {
		t.Fatalf("len(Bundles) = %d, want %d", len(got.Code.Bundles), len(want.Code.Bundles))
	}
	for i := range want.Code.Bundles {
		if got.Code.Bundles[i] != want.Code.Bundles[i] {
			t.Errorf("bundle %d:\n got %v\nwant %v", i, got.Code.Bundles[i], want.Code.Bundles[i])
		}
	}
	if !reflect.DeepEqual(got.Symbols, want.Symbols) {
		t.Errorf("Symbols = %v, want %v", got.Symbols, want.Symbols)
	}
	if !reflect.DeepEqual(got.Loops, want.Loops) {
		t.Errorf("Loops = %v, want %v", got.Loops, want.Loops)
	}
}
