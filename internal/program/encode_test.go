package program

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func sampleImage() *Image {
	seg := &Segment{Name: "kern", Base: 0x1000, Bundles: []isa.Bundle{
		{Tmpl: isa.TmplMLX, Slots: [3]isa.Inst{
			isa.Nop,
			{Op: isa.OpMovI, R1: 14, Imm: 0x1000_0000},
			isa.Nop,
		}},
		{Tmpl: isa.TmplMMI, Slots: [3]isa.Inst{
			{Op: isa.OpLd8, R1: 20, R3: 14, PostInc: 8, Spec: true},
			{Op: isa.OpLfetch, R3: 27, PostInc: -64},
			{Op: isa.OpAddI, R1: 10, Imm: -1, R3: 10},
		}},
		{Tmpl: isa.TmplMIB, Slots: [3]isa.Inst{
			{Op: isa.OpCmpI, Rel: isa.CmpLt, P1: 1, P2: 2, Imm: 0, R3: 10},
			isa.Nop,
			{Op: isa.OpBrCond, QP: 1, Target: 0x1010, SWPLoop: true},
		}},
	}}
	im := NewImage("kern", seg, 0x1000)
	im.Symbols["array:a"] = 0x1000_0000
	im.Symbols["array:b"] = 0x1010_0000
	im.Loops = []LoopInfo{
		{ID: 0, Name: "main", Head: 0x1010, BodyStart: 0x1010, BodyEnd: 0x1030, Prefetchable: true, Prefetched: false},
		{ID: 1, Name: "tail", Head: 0x1030, BodyStart: 0x1030, BodyEnd: 0x1040, Prefetchable: false, Prefetched: true},
	}
	return im
}

func TestImageRoundTrip(t *testing.T) {
	im := sampleImage()
	var buf bytes.Buffer
	if err := EncodeImage(&buf, im); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != im.Name || got.Entry != im.Entry || got.Code.Base != im.Code.Base {
		t.Fatalf("header mismatch: %+v", got)
	}
	if !reflect.DeepEqual(got.Code.Bundles, im.Code.Bundles) {
		t.Fatalf("bundles differ:\n got %v\nwant %v", got.Code.Bundles, im.Code.Bundles)
	}
	if !reflect.DeepEqual(got.Symbols, im.Symbols) {
		t.Fatalf("symbols differ: %v vs %v", got.Symbols, im.Symbols)
	}
	if !reflect.DeepEqual(got.Loops, im.Loops) {
		t.Fatalf("loops differ: %v vs %v", got.Loops, im.Loops)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeImage(strings.NewReader("not an image at all")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := DecodeImage(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	// Truncated after the magic.
	if _, err := DecodeImage(strings.NewReader(imageMagic)); err == nil {
		t.Fatal("truncated input accepted")
	}
	// Valid prefix, truncated body.
	var buf bytes.Buffer
	if err := EncodeImage(&buf, sampleImage()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{len(full) / 4, len(full) / 2, len(full) - 1} {
		if _, err := DecodeImage(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// Property: any instruction survives an encode/decode round trip exactly.
func TestInstRoundTripProperty(t *testing.T) {
	f := func(op, qp, r1, r2, r3, f1, f2, f3, f4, p1, p2, b, rel uint8,
		imm, post int64, target uint64, spec, swp bool) bool {
		in := isa.Inst{
			Op: isa.Op(op), QP: isa.PReg(qp),
			R1: isa.Reg(r1), R2: isa.Reg(r2), R3: isa.Reg(r3),
			F1: isa.FReg(f1), F2: isa.FReg(f2), F3: isa.FReg(f3), F4: isa.FReg(f4),
			P1: isa.PReg(p1), P2: isa.PReg(p2), B: isa.BReg(b),
			Rel: isa.CmpRel(rel), Imm: imm, PostInc: post, Target: target,
			Spec: spec, SWPLoop: swp,
		}
		seg := &Segment{Name: "x", Base: 0, Bundles: []isa.Bundle{{Slots: [3]isa.Inst{in, isa.Nop, isa.Nop}}}}
		im := NewImage("x", seg, 0)
		var buf bytes.Buffer
		if err := EncodeImage(&buf, im); err != nil {
			return false
		}
		got, err := DecodeImage(&buf)
		if err != nil {
			return false
		}
		return got.Code.Bundles[0].Slots[0] == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodedSizeIsCompact(t *testing.T) {
	im := sampleImage()
	var buf bytes.Buffer
	if err := EncodeImage(&buf, im); err != nil {
		t.Fatal(err)
	}
	// 3 bundles; compact encoding should stay well under 32 bytes per
	// instruction.
	if buf.Len() > 3*3*32+256 {
		t.Fatalf("encoded size %d suspiciously large", buf.Len())
	}
}
