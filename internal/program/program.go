// Package program defines the executable image the simulated CPU runs: a
// code space made of bundle-addressed segments (the static code plus the
// trace pool ADORE allocates at runtime), a data initializer, symbols, and
// the compiler's loop metadata used by the profile-guided prefetching
// experiment.
package program

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/isa"
	"repro/internal/memsys"
)

// Segment is one contiguous region of code.
type Segment struct {
	Name    string
	Base    uint64
	Bundles []isa.Bundle
}

// End returns the first address past the segment.
func (s *Segment) End() uint64 {
	return s.Base + uint64(len(s.Bundles))*isa.BundleBytes
}

// Contains reports whether addr falls inside the segment.
func (s *Segment) Contains(addr uint64) bool {
	return addr >= s.Base && addr < s.End()
}

// ChangeHook observes mutations to a code space: bundles [first, first+n)
// of seg were just (re)written, or seg was newly registered (first = 0,
// n = len(seg.Bundles)). The CPU's predecoded code image subscribes so
// runtime patching — ADORE's entry-bundle rewrites and trace-pool installs
// — updates its direct-indexed slab in place instead of invalidating it.
type ChangeHook func(seg *Segment, first, n int)

// CodeSpace is the set of code segments visible to the CPU. Bundles are
// mutable: ADORE patches them at runtime exactly as it rewrites the text
// segment of a live process in the paper. All mutations must go through
// Write or WriteBundles so registered ChangeHooks observe them.
type CodeSpace struct {
	segs  []*Segment // sorted by Base
	last  *Segment   // one-entry fetch cache
	hooks []ChangeHook
}

// NewCodeSpace returns an empty code space.
func NewCodeSpace() *CodeSpace { return &CodeSpace{} }

// OnChange registers h to observe every subsequent segment registration
// and bundle write.
func (cs *CodeSpace) OnChange(h ChangeHook) { cs.hooks = append(cs.hooks, h) }

func (cs *CodeSpace) notify(seg *Segment, first, n int) {
	for _, h := range cs.hooks {
		h(seg, first, n)
	}
}

// AddSegment registers a segment. Segments must not overlap.
func (cs *CodeSpace) AddSegment(seg *Segment) error {
	if seg.Base%isa.BundleBytes != 0 {
		return fmt.Errorf("program: segment %q base %#x not bundle-aligned", seg.Name, seg.Base)
	}
	for _, s := range cs.segs {
		if seg.Base < s.End() && s.Base < seg.End() {
			return fmt.Errorf("program: segment %q overlaps %q", seg.Name, s.Name)
		}
	}
	cs.segs = append(cs.segs, seg)
	sort.Slice(cs.segs, func(i, j int) bool { return cs.segs[i].Base < cs.segs[j].Base })
	cs.last = nil
	cs.notify(seg, 0, len(seg.Bundles))
	return nil
}

// SegmentAt returns the segment containing addr.
func (cs *CodeSpace) SegmentAt(addr uint64) (*Segment, bool) {
	if cs.last != nil && cs.last.Contains(addr) {
		return cs.last, true
	}
	for _, s := range cs.segs {
		if s.Contains(addr) {
			cs.last = s
			return s, true
		}
	}
	return nil, false
}

// Fetch returns a pointer to the bundle at addr (which may carry a slot
// offset in its low 4 bits; those are masked off).
func (cs *CodeSpace) Fetch(addr uint64) (*isa.Bundle, bool) {
	addr &^= isa.BundleBytes - 1
	s, ok := cs.SegmentAt(addr)
	if !ok {
		return nil, false
	}
	return &s.Bundles[(addr-s.Base)/isa.BundleBytes], true
}

// Write replaces the bundle at addr. This is the patching primitive.
func (cs *CodeSpace) Write(addr uint64, b isa.Bundle) error {
	addr &^= isa.BundleBytes - 1
	s, ok := cs.SegmentAt(addr)
	if !ok {
		return fmt.Errorf("program: write to unmapped code address %#x", addr)
	}
	i := int((addr - s.Base) / isa.BundleBytes)
	s.Bundles[i] = b
	cs.notify(s, i, 1)
	return nil
}

// WriteBundles replaces len(bs) consecutive bundles starting at addr — the
// bulk form of Write the trace pool uses to install a finished trace, so
// ChangeHooks see one notification instead of one per bundle.
func (cs *CodeSpace) WriteBundles(addr uint64, bs []isa.Bundle) error {
	addr &^= isa.BundleBytes - 1
	s, ok := cs.SegmentAt(addr)
	if !ok {
		return fmt.Errorf("program: write to unmapped code address %#x", addr)
	}
	i := int((addr - s.Base) / isa.BundleBytes)
	if i+len(bs) > len(s.Bundles) {
		return fmt.Errorf("program: write of %d bundles at %#x overruns segment %q", len(bs), addr, s.Name)
	}
	copy(s.Bundles[i:], bs)
	cs.notify(s, i, len(bs))
	return nil
}

// Segments returns the registered segments in address order.
func (cs *CodeSpace) Segments() []*Segment { return cs.segs }

// LoopInfo is compiler metadata about one innermost loop: where it lives
// and whether the static prefetcher scheduled prefetches for it. The
// profile-guided experiment (Table 1) maps sampled miss PCs back to loops
// through this table.
type LoopInfo struct {
	ID        int
	Name      string
	Head      uint64 // loop header bundle address
	BodyStart uint64
	BodyEnd   uint64 // first address past the loop body
	// Prefetchable marks loops the static prefetch algorithm would
	// consider (affine array references with known strides).
	Prefetchable bool
	// Prefetched marks loops for which the compiler emitted lfetch.
	Prefetched bool
}

// Contains reports whether pc falls inside the loop body.
func (l *LoopInfo) Contains(pc uint64) bool {
	return pc >= l.BodyStart && pc < l.BodyEnd
}

// Image is one loadable program.
type Image struct {
	Name    string
	Entry   uint64
	Code    *Segment
	Symbols map[string]uint64
	Loops   []LoopInfo

	// InitData populates simulated data memory before execution. It may
	// be nil for pure register kernels.
	InitData func(m *memsys.Memory)

	// BundleCount at build time; used for the normalized-binary-size
	// column of Table 1.
	BundleCount int
}

// NewImage wraps assembled code into an image.
func NewImage(name string, code *Segment, entry uint64) *Image {
	return &Image{
		Name:        name,
		Entry:       entry,
		Code:        code,
		Symbols:     make(map[string]uint64),
		BundleCount: len(code.Bundles),
	}
}

// LoopAt returns the loop whose body contains pc.
func (im *Image) LoopAt(pc uint64) (*LoopInfo, bool) {
	for i := range im.Loops {
		if im.Loops[i].Contains(pc) {
			return &im.Loops[i], true
		}
	}
	return nil, false
}

// Listing disassembles a code segment for debugging and golden tests.
func Listing(seg *Segment) string {
	var b strings.Builder
	for i := range seg.Bundles {
		addr := seg.Base + uint64(i)*isa.BundleBytes
		fmt.Fprintf(&b, "%#06x  %s\n", addr, seg.Bundles[i].String())
	}
	return b.String()
}
