package program

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func seg(name string, base uint64, n int) *Segment {
	return &Segment{Name: name, Base: base, Bundles: make([]isa.Bundle, n)}
}

func TestCodeSpaceFetchAndWrite(t *testing.T) {
	cs := NewCodeSpace()
	if err := cs.AddSegment(seg("main", 0x1000, 4)); err != nil {
		t.Fatal(err)
	}
	if err := cs.AddSegment(seg("pool", 0x100000, 8)); err != nil {
		t.Fatal(err)
	}
	b, ok := cs.Fetch(0x1010)
	if !ok || b == nil {
		t.Fatal("fetch failed")
	}
	patch := isa.BranchBundle(0x100000)
	if err := cs.Write(0x1010, patch); err != nil {
		t.Fatal(err)
	}
	b2, _ := cs.Fetch(0x1012) // slot bits masked
	if b2.Slots[2].Op != isa.OpBr || b2.Slots[2].Target != 0x100000 {
		t.Fatalf("patched bundle = %v", b2)
	}
	// The pool segment is independently addressable.
	if _, ok := cs.Fetch(0x100070); !ok {
		t.Fatal("pool fetch failed")
	}
	if _, ok := cs.Fetch(0x2000); ok {
		t.Fatal("unmapped fetch succeeded")
	}
	if err := cs.Write(0x2000, patch); err == nil {
		t.Fatal("unmapped write succeeded")
	}
}

func TestCodeSpaceRejectsOverlap(t *testing.T) {
	cs := NewCodeSpace()
	if err := cs.AddSegment(seg("a", 0x1000, 4)); err != nil {
		t.Fatal(err)
	}
	if err := cs.AddSegment(seg("b", 0x1030, 4)); err == nil {
		t.Fatal("overlap accepted")
	}
	if err := cs.AddSegment(seg("c", 0xff0, 8)); err == nil {
		t.Fatal("overlap from below accepted")
	}
	if err := cs.AddSegment(seg("d", 0x1008, 1)); err == nil {
		t.Fatal("unaligned base accepted")
	}
}

func TestLoopInfoContains(t *testing.T) {
	l := LoopInfo{BodyStart: 0x100, BodyEnd: 0x140}
	if !l.Contains(0x100) || !l.Contains(0x13f) || l.Contains(0x140) || l.Contains(0xff) {
		t.Fatal("LoopInfo.Contains wrong")
	}
}

func TestImageLoopAt(t *testing.T) {
	im := NewImage("x", seg("main", 0, 16), 0)
	im.Loops = []LoopInfo{
		{ID: 0, BodyStart: 0x00, BodyEnd: 0x40},
		{ID: 1, BodyStart: 0x40, BodyEnd: 0x80},
	}
	l, ok := im.LoopAt(0x44)
	if !ok || l.ID != 1 {
		t.Fatalf("LoopAt = %+v, %v", l, ok)
	}
	if _, ok := im.LoopAt(0x200); ok {
		t.Fatal("LoopAt outside code matched")
	}
}

func TestListing(t *testing.T) {
	s := seg("main", 0x40, 2)
	s.Bundles[1] = isa.BranchBundle(0x40)
	out := Listing(s)
	if !strings.Contains(out, "0x000050") || !strings.Contains(out, "br 0x40") {
		t.Fatalf("listing:\n%s", out)
	}
}
