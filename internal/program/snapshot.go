package program

import (
	"fmt"

	"repro/internal/isa"
)

// CodeSnapshot captures the bundle contents of every segment in a code
// space — the patched state an ADORE run has accumulated (entry-bundle
// rewrites plus the trace pool). Restore writes the bundles back through
// WriteBundles so change hooks fire and derived caches (the CPU's
// predecoded image) stay coherent; that is the invalidation rule for code
// patched after a snapshot (DESIGN.md §16).
type CodeSnapshot struct {
	segs []segSnapshot
}

type segSnapshot struct {
	base    uint64
	bundles []isa.Bundle
}

// Snapshot deep-copies every segment's bundles. Segment identity (base
// address, length, order) is captured for validation, not restoration:
// a snapshot can only be restored into a code space with the same layout.
func (cs *CodeSpace) Snapshot() *CodeSnapshot {
	s := &CodeSnapshot{segs: make([]segSnapshot, 0, len(cs.segs))}
	for _, seg := range cs.segs {
		s.segs = append(s.segs, segSnapshot{
			base:    seg.Base,
			bundles: append([]isa.Bundle(nil), seg.Bundles...),
		})
	}
	return s
}

// Restore overwrites every segment's bundles from s, notifying change
// hooks. It errors when the code space's segment layout differs from the
// one the snapshot was taken from.
func (cs *CodeSpace) Restore(s *CodeSnapshot) error {
	if len(cs.segs) != len(s.segs) {
		return fmt.Errorf("program: code snapshot has %d segments, space has %d", len(s.segs), len(cs.segs))
	}
	for i, seg := range cs.segs {
		ss := &s.segs[i]
		if seg.Base != ss.base || len(seg.Bundles) != len(ss.bundles) {
			return fmt.Errorf("program: code snapshot segment %d layout mismatch (base %#x/%d vs %#x/%d)",
				i, ss.base, len(ss.bundles), seg.Base, len(seg.Bundles))
		}
	}
	for i := range cs.segs {
		ss := &s.segs[i]
		if err := cs.WriteBundles(ss.base, ss.bundles); err != nil {
			return err
		}
	}
	return nil
}
