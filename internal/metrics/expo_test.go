package metrics

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// fixtureRegistry builds a registry with one instrument of each kind in a
// deterministic state.
func fixtureRegistry() *Registry {
	r := NewRegistry()
	c := r.Counter("adore_jobs_completed_total", "experiment jobs finished")
	c.Add(17)
	g := r.Gauge("adore_jobs_inflight", "jobs currently running")
	g.Set(3)
	h := r.Histogram("adore_job_latency_ns", "per-job wall time")
	for _, v := range []uint64{0, 1, 5, 5, 900, 1 << 20} {
		h.Observe(v)
	}
	return r
}

// TestPrometheusGolden pins the exposition bytes: name-ordered metrics,
// HELP/TYPE headers, cumulative buckets with power-of-two bounds, +Inf,
// _sum and _count.
func TestPrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := fixtureRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	const want = `# HELP adore_job_latency_ns per-job wall time
# TYPE adore_job_latency_ns histogram
adore_job_latency_ns_bucket{le="0"} 1
adore_job_latency_ns_bucket{le="1"} 2
adore_job_latency_ns_bucket{le="3"} 2
adore_job_latency_ns_bucket{le="7"} 4
adore_job_latency_ns_bucket{le="15"} 4
adore_job_latency_ns_bucket{le="31"} 4
adore_job_latency_ns_bucket{le="63"} 4
adore_job_latency_ns_bucket{le="127"} 4
adore_job_latency_ns_bucket{le="255"} 4
adore_job_latency_ns_bucket{le="511"} 4
adore_job_latency_ns_bucket{le="1023"} 5
adore_job_latency_ns_bucket{le="2047"} 5
adore_job_latency_ns_bucket{le="4095"} 5
adore_job_latency_ns_bucket{le="8191"} 5
adore_job_latency_ns_bucket{le="16383"} 5
adore_job_latency_ns_bucket{le="32767"} 5
adore_job_latency_ns_bucket{le="65535"} 5
adore_job_latency_ns_bucket{le="131071"} 5
adore_job_latency_ns_bucket{le="262143"} 5
adore_job_latency_ns_bucket{le="524287"} 5
adore_job_latency_ns_bucket{le="1048575"} 5
adore_job_latency_ns_bucket{le="2097151"} 6
adore_job_latency_ns_bucket{le="+Inf"} 6
adore_job_latency_ns_sum 1049487
adore_job_latency_ns_count 6
# HELP adore_jobs_completed_total experiment jobs finished
# TYPE adore_jobs_completed_total counter
adore_jobs_completed_total 17
# HELP adore_jobs_inflight jobs currently running
# TYPE adore_jobs_inflight gauge
adore_jobs_inflight 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

var (
	commentLine = regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)
	sampleLine  = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{le="([0-9]+|\+Inf)"\})? (-?[0-9]+)$`)
)

// TestPrometheusParses validates the line format of the exposition and the
// histogram invariants a scraper relies on: every line is a comment or a
// sample, bucket counts are cumulative and monotone, the +Inf bucket
// equals _count, and _sum/_count are present exactly once per histogram.
func TestPrometheusParses(t *testing.T) {
	var b strings.Builder
	if err := fixtureRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	type hist struct {
		buckets  []uint64
		last     uint64
		inf      *uint64
		sum, cnt *uint64
	}
	hists := map[string]*hist{}
	getHist := func(name string) *hist {
		h := hists[name]
		if h == nil {
			h = &hist{}
			hists[name] = h
		}
		return h
	}
	for i, line := range strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !commentLine.MatchString(line) {
				t.Fatalf("line %d: malformed comment %q", i+1, line)
			}
			continue
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: malformed sample %q", i+1, line)
		}
		name, le, val := m[1], m[3], m[4]
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			t.Fatalf("line %d: value %q: %v", i+1, val, err)
		}
		switch {
		case strings.HasSuffix(name, "_bucket") && le == "+Inf":
			h := getHist(strings.TrimSuffix(name, "_bucket"))
			h.inf = &n
		case strings.HasSuffix(name, "_bucket"):
			h := getHist(strings.TrimSuffix(name, "_bucket"))
			if n < h.last {
				t.Errorf("%s: bucket counts not cumulative (%d after %d)", name, n, h.last)
			}
			h.last = n
			h.buckets = append(h.buckets, n)
		case strings.HasSuffix(name, "_sum"):
			getHist(strings.TrimSuffix(name, "_sum")).sum = &n
		case strings.HasSuffix(name, "_count"):
			getHist(strings.TrimSuffix(name, "_count")).cnt = &n
		}
	}
	if len(hists) != 1 {
		t.Fatalf("parsed %d histograms, want 1", len(hists))
	}
	for name, h := range hists {
		if h.inf == nil || h.sum == nil || h.cnt == nil {
			t.Fatalf("%s: missing +Inf/_sum/_count", name)
		}
		if *h.inf != *h.cnt {
			t.Errorf("%s: +Inf bucket %d != count %d", name, *h.inf, *h.cnt)
		}
		if len(h.buckets) > 0 && h.buckets[len(h.buckets)-1] > *h.inf {
			t.Errorf("%s: last bucket %d exceeds +Inf %d", name, h.buckets[len(h.buckets)-1], *h.inf)
		}
	}
}

func TestJSONSnapshot(t *testing.T) {
	var b strings.Builder
	if err := fixtureRegistry().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var snaps []Snapshot
	if err := json.Unmarshal([]byte(b.String()), &snaps); err != nil {
		t.Fatalf("JSON exposition does not parse: %v", err)
	}
	if len(snaps) != 3 {
		t.Fatalf("snapshot has %d metrics, want 3", len(snaps))
	}
	byName := map[string]Snapshot{}
	for _, s := range snaps {
		byName[s.Name] = s
	}
	if s := byName["adore_jobs_completed_total"]; s.Kind != "counter" || s.Counter != 17 {
		t.Errorf("counter snapshot wrong: %+v", s)
	}
	if s := byName["adore_jobs_inflight"]; s.Kind != "gauge" || s.Gauge != 3 {
		t.Errorf("gauge snapshot wrong: %+v", s)
	}
	h := byName["adore_job_latency_ns"].Histogram
	if h == nil || h.Count != 6 || h.Sum != 1049487 {
		t.Fatalf("histogram snapshot wrong: %+v", h)
	}
	if got := h.Buckets[len(h.Buckets)-1].N; got != h.Count {
		t.Errorf("last cumulative bucket %d != count %d", got, h.Count)
	}
	if mean := h.Mean(); mean < 174914 || mean > 174915 {
		t.Errorf("mean = %f", mean)
	}
}

func TestHandler(t *testing.T) {
	srv := httptest.NewServer(Handler(fixtureRegistry()))
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if got := res.Header.Get("Content-Type"); !strings.HasPrefix(got, "text/plain") {
		t.Errorf("content type %q", got)
	}
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "adore_jobs_completed_total 17") {
		t.Errorf("exposition body missing counter:\n%s", body)
	}

	res2, err := srv.Client().Get(srv.URL + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Body.Close()
	var snaps []Snapshot
	if err := json.NewDecoder(res2.Body).Decode(&snaps); err != nil {
		t.Fatalf("json endpoint: %v", err)
	}
	if len(snaps) != 3 {
		t.Errorf("json endpoint returned %d metrics", len(snaps))
	}
}
