// Package metrics is the telemetry registry of the reproduction: a
// dependency-free set of atomic counters, gauges and exponential-bucket
// histograms with snapshot, Prometheus text exposition and JSON export.
//
// The design constraints mirror the obs.Recorder contract (DESIGN.md §10):
// recording is zero-allocation and lock-free (a single atomic RMW per
// update), and every instrument is nil-receiver-safe — a nil *Counter is a
// valid disabled counter whose methods are no-ops. Instrumented code
// therefore asks an optional registry for its instruments unconditionally:
// with no registry the instruments are nil and the recording sites cost a
// nil check, which is how "telemetry off" stays free without branching on
// configuration at every site.
//
// This file holds only the recording paths; it is on the adore-vet
// zero-allocation list (internal/lint.HotPathFiles), like the simulator's
// run-loop files. Construction and exposition live in registry.go and
// expo.go, which are not.
package metrics

import (
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The zero value is ready to
// use; a nil *Counter is a valid disabled counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 value that can move both ways. The zero
// value is ready to use; a nil *Gauge is a valid disabled gauge.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (negative deltas decrease it). No-op on a
// nil receiver.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Inc moves the gauge up by one. No-op on a nil receiver.
func (g *Gauge) Inc() { g.Add(1) }

// Dec moves the gauge down by one. No-op on a nil receiver.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count of a Histogram: bucket i holds the
// observations whose value has bit-length i, so the buckets cover the full
// uint64 range in powers of two and Observe needs no search, no
// configuration and no allocation.
const histBuckets = 65

// Histogram counts observations in exponential (power-of-two) buckets:
// an observation v lands in bucket bits.Len64(v), whose upper bound is
// 2^i - 1 (bucket 0 holds exactly the zeros). Sum and Count are tracked
// alongside, so mean and Prometheus histogram invariants come for free.
// The zero value is ready to use; a nil *Histogram is a valid disabled
// histogram.
//
// Updates are three independent atomic adds — a concurrent snapshot may
// catch one observation between them, which Prometheus scrapes tolerate
// (counts are cumulative and monotone per cell).
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	sum     atomic.Uint64
	count   atomic.Uint64
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bits.Len64(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on a nil receiver).
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Bucket returns the observation count of bucket i (values of bit-length
// i; upper bound 2^i - 1). Zero on a nil receiver or out-of-range i.
func (h *Histogram) Bucket(i int) uint64 {
	if h == nil || i < 0 || i >= histBuckets {
		return 0
	}
	return h.buckets[i].Load()
}
