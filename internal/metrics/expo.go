package metrics

import (
	"bufio"
	"encoding/json"
	"io"
	"strconv"
	"strings"
)

// This file renders a Registry in the two interchange formats the telemetry
// endpoints serve:
//
//   - Prometheus text exposition format (version 0.0.4) — what a scraper
//     reads from /metrics. Histograms render as cumulative `_bucket` series
//     with `le` upper bounds, a `+Inf` bucket equal to `_count`, and the
//     `_sum`/`_count` pair, per the format specification.
//   - JSON — an array of Snapshot objects for /metrics.json and for
//     embedding in a /status document.
//
// Both writers iterate metrics in name order and format numbers with
// strconv, so identical registry states serialize to identical bytes (the
// golden test relies on this).

// Snapshot is one metric's point-in-time value, the JSON exposition unit.
type Snapshot struct {
	Name      string
	Help      string             `json:",omitempty"`
	Kind      string             // "counter", "gauge" or "histogram"
	Counter   uint64             `json:",omitempty"`
	Gauge     int64              `json:",omitempty"`
	Histogram *HistogramSnapshot `json:",omitempty"`
}

// HistogramSnapshot is the exported state of one histogram.
type HistogramSnapshot struct {
	Count   uint64
	Sum     uint64
	Buckets []Bucket // cumulative, ascending by upper bound; +Inf omitted
}

// Bucket is one cumulative histogram cell: N observations had values <= Le.
type Bucket struct {
	Le uint64
	N  uint64
}

// Mean returns the average observed value (0 when empty).
func (h *HistogramSnapshot) Mean() float64 {
	if h == nil || h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Snapshot captures every registered metric in name order. Nil-safe.
func (r *Registry) Snapshot() []Snapshot {
	if r == nil {
		return nil
	}
	ms := r.sorted()
	out := make([]Snapshot, 0, len(ms))
	for _, m := range ms {
		s := Snapshot{Name: m.name, Help: m.help, Kind: m.kind.String()}
		switch m.kind {
		case KindCounter:
			s.Counter = m.counter.Value()
		case KindGauge:
			s.Gauge = m.gauge.Value()
		case KindHistogram:
			s.Histogram = snapshotHistogram(m.hist)
		}
		out = append(out, s)
	}
	return out
}

// snapshotHistogram converts the per-bit-length cells into cumulative
// buckets, keeping leading cells only up to the highest populated one.
func snapshotHistogram(h *Histogram) *HistogramSnapshot {
	hs := &HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
	top := -1
	for i := 0; i < histBuckets; i++ {
		if h.Bucket(i) > 0 {
			top = i
		}
	}
	var cum uint64
	for i := 0; i <= top; i++ {
		cum += h.Bucket(i)
		hs.Buckets = append(hs.Buckets, Bucket{Le: bucketBound(i), N: cum})
	}
	return hs
}

// bucketBound returns the inclusive upper bound of bucket i: the largest
// value with bit-length i (0 for i == 0, 2^i - 1 otherwise; the final
// bucket's bound is the maximum uint64 and renders as +Inf).
func bucketBound(i int) uint64 {
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// WriteJSON writes the registry snapshot as a JSON array.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	snaps := r.Snapshot()
	if snaps == nil {
		snaps = []Snapshot{}
	}
	return enc.Encode(snaps)
}

// WritePrometheus writes the registry in Prometheus text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, m := range r.sorted() {
		if m.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(m.name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(m.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(m.name)
		bw.WriteByte(' ')
		bw.WriteString(m.kind.String())
		bw.WriteByte('\n')
		switch m.kind {
		case KindCounter:
			writeSample(bw, m.name, "", strconv.FormatUint(m.counter.Value(), 10))
		case KindGauge:
			writeSample(bw, m.name, "", strconv.FormatInt(m.gauge.Value(), 10))
		case KindHistogram:
			hs := snapshotHistogram(m.hist)
			for _, b := range hs.Buckets {
				writeSample(bw, m.name+"_bucket", `{le="`+strconv.FormatUint(b.Le, 10)+`"}`,
					strconv.FormatUint(b.N, 10))
			}
			writeSample(bw, m.name+"_bucket", `{le="+Inf"}`, strconv.FormatUint(hs.Count, 10))
			writeSample(bw, m.name+"_sum", "", strconv.FormatUint(hs.Sum, 10))
			writeSample(bw, m.name+"_count", "", strconv.FormatUint(hs.Count, 10))
		}
	}
	return bw.Flush()
}

// writeSample emits one `name{labels} value` line.
func writeSample(bw *bufio.Writer, name, labels, value string) {
	bw.WriteString(name)
	bw.WriteString(labels)
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
