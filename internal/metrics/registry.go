package metrics

import (
	"fmt"
	"sort"
	"sync"
)

// Kind classifies a registered metric for the exposition writers.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "kind?"
}

// metric is one registered instrument with its exposition metadata.
type metric struct {
	name string
	help string
	kind Kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds named instruments. Registration is idempotent by name —
// asking twice for the same counter returns the same instrument — so
// independent components may share aggregate metrics without coordination.
// A nil *Registry is a valid disabled registry: its constructors return nil
// instruments, whose recording methods are no-ops, which is how code is
// instrumented unconditionally and pays nothing when telemetry is off.
//
// Names follow the Prometheus convention (snake_case, `_total` suffix on
// counters, an explicit unit suffix like `_ns` on histograms). Labels are
// deliberately unsupported: the fleet-level dimensions (shard, worker)
// belong to the scraper's job/instance labels, and flat names keep the
// registry allocation-free on the recording path.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]*metric
	ordered []*metric // insertion order; sorted on exposition
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// Counter returns the counter registered under name, creating it on first
// use. Returns nil (a valid disabled counter) on a nil registry. Asking
// for a name previously registered as a different kind panics: that is a
// programming error, not a runtime condition.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	m := r.lookup(name, help, KindCounter)
	return m.counter
}

// Gauge returns the gauge registered under name, creating it on first use.
// Returns nil (a valid disabled gauge) on a nil registry.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	m := r.lookup(name, help, KindGauge)
	return m.gauge
}

// Histogram returns the histogram registered under name, creating it on
// first use. Returns nil (a valid disabled histogram) on a nil registry.
func (r *Registry) Histogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	m := r.lookup(name, help, KindHistogram)
	return m.hist
}

// lookup finds or creates the named metric.
func (r *Registry) lookup(name, help string, kind Kind) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("metrics: %q registered as %v, requested as %v", name, m.kind, kind))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind}
	switch kind {
	case KindCounter:
		m.counter = new(Counter)
	case KindGauge:
		m.gauge = new(Gauge)
	case KindHistogram:
		m.hist = new(Histogram)
	}
	r.byName[name] = m
	r.ordered = append(r.ordered, m)
	return m
}

// sorted returns the registered metrics in name order — the deterministic
// iteration order both exposition formats rely on.
func (r *Registry) sorted() []*metric {
	r.mu.Lock()
	out := make([]*metric, len(r.ordered))
	copy(out, r.ordered)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Len reports the number of registered metrics (0 on a nil registry).
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ordered)
}
