package metrics

import (
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 4, 100, 1 << 40} {
		h.Observe(v)
	}
	if got := h.Count(); got != 7 {
		t.Fatalf("count = %d, want 7", got)
	}
	if got := h.Sum(); got != 0+1+2+3+4+100+1<<40 {
		t.Fatalf("sum = %d", got)
	}
	// Bucket i holds values of bit-length i.
	want := map[int]uint64{0: 1, 1: 1, 2: 2, 3: 1, 7: 1, 41: 1}
	for i, n := range want {
		if got := h.Bucket(i); got != n {
			t.Errorf("bucket %d = %d, want %d", i, got, n)
		}
	}
}

// TestNilInstruments pins the disabled-telemetry contract: every recording
// and reading method is a no-op on a nil receiver, and a nil registry
// hands out nil instruments.
func TestNilInstruments(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	var g *Gauge
	g.Set(5)
	g.Add(1)
	g.Inc()
	g.Dec()
	if g.Value() != 0 {
		t.Error("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(7)
	if h.Count() != 0 || h.Sum() != 0 || h.Bucket(3) != 0 {
		t.Error("nil histogram has state")
	}

	var r *Registry
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x", "") != nil {
		t.Error("nil registry handed out live instruments")
	}
	if r.Len() != 0 || r.Snapshot() != nil {
		t.Error("nil registry has contents")
	}
}

// TestRecordingZeroAlloc pins the hot-path claim: recording on live and on
// nil instruments never allocates.
func TestRecordingZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_ns", "")
	var nc *Counter
	var nh *Histogram
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Add(3)
		h.Observe(12345)
		nc.Inc()
		nh.Observe(99)
	}); n != 0 {
		t.Fatalf("recording allocates %.1f times per op, want 0", n)
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("jobs_total", "jobs")
	b := r.Counter("jobs_total", "jobs")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("shared counter not shared")
	}
	if r.Len() != 1 {
		t.Fatalf("registry has %d metrics, want 1", r.Len())
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x", "")
}

// TestConcurrentRecording exercises the lock-free update paths under the
// race detector and checks the totals are exact.
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			c := r.Counter("shared_total", "")
			h := r.Histogram("shared_ns", "")
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(uint64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total", "").Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Histogram("shared_ns", "").Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
}
