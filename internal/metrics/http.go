package metrics

import (
	"log"
	"net/http"
)

// Handler returns an http.Handler exposing the registry: Prometheus text
// exposition by default, the JSON snapshot form with `?format=json`. A nil
// registry serves an empty (but well-formed) document of either format.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			if err := r.WriteJSON(w); err != nil {
				log.Printf("metrics: json exposition: %v", err)
			}
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			// The write failed mid-stream (client gone); nothing to send.
			log.Printf("metrics: exposition: %v", err)
		}
	})
}
