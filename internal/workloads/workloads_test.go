package workloads_test

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/harness"
	"repro/internal/workloads"
)

func TestAllBenchmarksCompileBothLevels(t *testing.T) {
	for _, b := range workloads.All(0.05) {
		for _, level := range []compiler.OptLevel{compiler.O2, compiler.O3} {
			opts := compiler.DefaultOptions()
			opts.Level = level
			if _, err := compiler.Build(b.Kernel, opts); err != nil {
				t.Errorf("%s at %v: %v", b.Name, level, err)
			}
		}
	}
}

func TestSuiteShape(t *testing.T) {
	all := workloads.All(1.0)
	if len(all) != 17 {
		t.Fatalf("benchmarks = %d, want 17", len(all))
	}
	ints, fps := 0, 0
	seen := map[string]bool{}
	for _, b := range all {
		if seen[b.Name] {
			t.Errorf("duplicate benchmark %s", b.Name)
		}
		seen[b.Name] = true
		switch b.Class {
		case workloads.INT:
			ints++
		case workloads.FP:
			fps++
		}
		if b.PaperNote == "" {
			t.Errorf("%s has no paper note", b.Name)
		}
	}
	if ints != 8 || fps != 9 {
		t.Fatalf("suite split %d INT / %d FP, want 8/9", ints, fps)
	}
}

func TestByName(t *testing.T) {
	b, err := workloads.ByName("mcf", 1.0)
	if err != nil || b.Name != "mcf" {
		t.Fatalf("workloads.ByName(mcf) = %v, %v", b.Name, err)
	}
	if _, err := workloads.ByName("nope", 1.0); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestScaleReducesWork(t *testing.T) {
	big, err := workloads.ByName("mcf", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	small, err := workloads.ByName("mcf", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Phase 0 is the one-shot setup phase; scaling applies to the work
	// phases after it.
	if small.Kernel.Phases[1].Repeat >= big.Kernel.Phases[1].Repeat {
		t.Fatal("scale did not reduce repeats")
	}
	if small.Kernel.Phases[1].Repeat < 1 {
		t.Fatal("scale produced zero repeats")
	}
}

// Every benchmark must run to completion at O2 under the plain machine.
func TestAllBenchmarksRunToCompletion(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	for _, b := range workloads.All(0.03) {
		build, err := compiler.Build(b.Kernel, compiler.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		r, err := harness.Run(build, harness.DefaultRunConfig())
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if r.CPU.Retired == 0 || r.CPU.Cycles == 0 {
			t.Fatalf("%s: empty run", b.Name)
		}
	}
}
