package workloads

import "repro/internal/compiler"

// ammp: molecular dynamics over neighbor lists — indirect gathers of atom
// data plus linked-list traversal of the atom chain (Table 2: 2 indirect,
// 2 pointer, 3 optimized phases).
func ammp(scale float64) Benchmark {
	gather := func(name, idxArr, dataArr string) *compiler.Loop {
		return &compiler.Loop{
			Name:      name,
			OuterTrip: 1,
			InnerTrip: 1 << 15,
			Body: append(append([]compiler.Stmt{
				affLoad("ni", idxArr, 4, 4),
				{Kind: compiler.SLoadInt, Dst: "ax", Size: 8,
					Ref: &compiler.Ref{Kind: compiler.RefIndirect, Array: dataArr, IndexTemp: "ni", Scale: 8}},
			}, intChain("fc", 12)...),
				compiler.Stmt{Kind: compiler.SAdd, Dst: "f", A: "f", B: "ax"}),
			Inits: []compiler.Init{{Temp: "f", IsImm: true, Imm: 0}, {Temp: "fc", IsImm: true, Imm: 0}},
		}
	}
	k := &compiler.Kernel{
		Name: "ammp",
		Arrays: []compiler.Array{
			{Name: "nbr1", Elem: 4, N: 1 << 16, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 193, Mod: 1 << 17}},
			{Name: "nbr2", Elem: 4, N: 1 << 16, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 389, Mod: 1 << 17}},
			{Name: "atoms", Elem: 8, N: 1 << 17, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 17}},
			{Name: "alist", N: 1 << 14, Init: compiler.InitSpec{Kind: compiler.InitChain, NodeSize: 128, NextOff: 8, ShufflePct: 55, Seed: 11}},
		},
		Phases: []compiler.Phase{
			{Name: "nonbon1", Repeat: scaleRepeat(14, scale), Loops: []*compiler.Loop{gather("forces1", "nbr1", "atoms")}},
			{Name: "nonbon2", Repeat: scaleRepeat(14, scale), Loops: []*compiler.Loop{gather("forces2", "nbr2", "atoms")}},
			{
				Name:   "mm-fv",
				Repeat: scaleRepeat(24, scale),
				Loops: []*compiler.Loop{{
					Name:      "atom-walk",
					OuterTrip: 1,
					InnerTrip: 1 << 14,
					Body: append(append(chaseLoads("a", "serial", 0, 8),
						compiler.Stmt{Kind: compiler.SAdd, Dst: "n", A: "n", B: "serial"}),
						intChain("nc", 12)...),
					Inits: []compiler.Init{
						{Temp: "a", Array: "alist", Offset: 0},
						{Temp: "n", IsImm: true, Imm: 0},
						{Temp: "nc", IsImm: true, Imm: 0},
					},
				}},
			},
		},
	}
	return Benchmark{
		Name: "ammp", Class: FP, Kernel: withSetup(k, 5),
		PaperNote: "indirect neighbor gathers + pointer-chasing atom list (Table 2: 2 indirect, 2 pointer)",
	}
}

// art: neural-network image recognition. Two long streaming phases over
// F1-layer arrays far larger than L3 — the Fig. 8 case whose CPI and DEAR
// rate halve under runtime prefetching. The arrays are passed as aliased
// parameters (the paper's §1.1 analysis problem), so the static compiler
// cannot prefetch them even at O3 — runtime prefetching wins both times.
func art(scale float64) Benchmark {
	train := &compiler.Loop{
		Name:      "train-f1",
		NoSWP:     true,
		OuterTrip: 1,
		InnerTrip: 1 << 17,
		Ambiguous: true,
		Body: []compiler.Stmt{
			affLoadFOff("i1", "f1a", 8, 0),
			affLoadFOff("w1", "bus", 8, 24),
			{Kind: compiler.SFMA, Dst: "y", A: "i1", B: "w1", C: "y"},
			affLoadFOff("t1", "tds", 8, 48),
			{Kind: compiler.SFAdd, Dst: "u", A: "u", B: "t1"},
		},
		FloatTemps: []string{"y", "u", "kk"},
	}
	train.Body = append(train.Body, fpChain("y", "kk", 8)...)
	match := &compiler.Loop{
		Name:      "match-f2",
		NoSWP:     true,
		OuterTrip: 1,
		InnerTrip: 1 << 16,
		Ambiguous: true,
		Body: []compiler.Stmt{
			affLoad("wi", "widx", 4, 4),
			{Kind: compiler.SLoadInt, Dst: "wv", Size: 8,
				Ref: &compiler.Ref{Kind: compiler.RefIndirect, Array: "wts", IndexTemp: "wi", Scale: 8}},
			{Kind: compiler.SAdd, Dst: "m", A: "m", B: "wv"},
			affLoadF("x", "f1b", 8),
			{Kind: compiler.SFAdd, Dst: "z", A: "z", B: "x"},
		},
		Inits:      []compiler.Init{{Temp: "m", IsImm: true, Imm: 0}},
		FloatTemps: []string{"z", "kk"},
	}
	match.Body = append(match.Body, fpChain("z", "kk", 12)...)
	k := &compiler.Kernel{
		Name: "art",
		Arrays: []compiler.Array{
			{Name: "f1a", Elem: 8, N: 1 << 17, Float: true, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 1}},
			{Name: "bus", Elem: 8, N: 1 << 17, Float: true, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 2}},
			{Name: "tds", Elem: 8, N: 1 << 17, Float: true, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 3}},
			{Name: "f1b", Elem: 8, N: 1 << 16, Float: true, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 4}},
			{Name: "widx", Elem: 4, N: 1 << 16, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 229, Mod: 1 << 17}},
			{Name: "wts", Elem: 8, N: 1 << 17, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 7}},
		},
		Phases: []compiler.Phase{
			{Name: "train", Repeat: scaleRepeat(14, scale), Loops: []*compiler.Loop{train}},
			{Name: "match", Repeat: scaleRepeat(20, scale), Loops: []*compiler.Loop{match}},
		},
	}
	return Benchmark{
		Name: "art", Class: FP, Kernel: withSetup(k, 5),
		PaperNote: "two streaming phases (Fig. 8); aliased arrays defeat static analysis, runtime prefetching halves CPI",
	}
}

// applu: an SSOR solver whose huge loop bodies spread cache misses across
// many independent streams. The loop is memory-bandwidth-bound and each
// load carries only a small share of the total latency, so prefetching the
// top three delinquent loads does not help ("the cache misses are evenly
// distributed among hundreds of loads ... their miss penalties are
// effectively overlapped").
func applu(scale float64) Benchmark {
	mkSweep := func(name string, arrays []string) *compiler.Loop {
		var body []compiler.Stmt
		for i, a := range arrays {
			dst := "v" + string(rune('0'+i))
			body = append(body, affLoadF(dst, a, 8))
		}
		for i := range arrays {
			body = append(body, compiler.Stmt{Kind: compiler.SFAdd, Dst: "s", A: "s", B: "v" + string(rune('0'+i))})
		}
		return &compiler.Loop{
			Name: name, NoSWP: true, OuterTrip: 1, InnerTrip: 1 << 16,
			Body: body, FloatTemps: []string{"s"},
		}
	}
	k := &compiler.Kernel{
		Name: "applu",
		Arrays: []compiler.Array{
			{Name: "a1", Elem: 8, N: 1 << 17, Float: true, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 1}},
			{Name: "a2", Elem: 8, N: 1 << 17, Float: true, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 2}},
			{Name: "a3", Elem: 8, N: 1 << 17, Float: true, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 3}},
			{Name: "a4", Elem: 8, N: 1 << 17, Float: true, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 4}},
			{Name: "a5", Elem: 8, N: 1 << 17, Float: true, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 5}},
			{Name: "a6", Elem: 8, N: 1 << 17, Float: true, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 6}},
			{Name: "a7", Elem: 8, N: 1 << 17, Float: true, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 7}},
			{Name: "a8", Elem: 8, N: 1 << 17, Float: true, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 8}},
		},
		Phases: []compiler.Phase{
			{Name: "jacld", Repeat: scaleRepeat(10, scale), Loops: []*compiler.Loop{
				mkSweep("sweep-lo", []string{"a1", "a2", "a3", "a4", "a5", "a6", "a7", "a8"}),
			}},
			{Name: "buts", Repeat: scaleRepeat(10, scale), Loops: []*compiler.Loop{
				mkSweep("sweep-hi", []string{"a8", "a7", "a6", "a5", "a4", "a3", "a2", "a1"}),
			}},
		},
	}
	return Benchmark{
		Name: "applu", Class: FP, Kernel: withSetup(k, 5),
		PaperNote: "bandwidth-bound, misses spread over many loads; top-3 prefetching cannot help",
	}
}

// equake: sparse matrix-vector products — an indirect gather dominates the
// miss latency, with supporting direct streams. The sparse structure is
// built from aliased pointers, so static prefetching misses it even at O3:
// equake keeps its runtime-prefetching gain on O3 binaries (Fig. 7b). The
// time-integration loop is a pipelinable affine stream (Fig. 10).
func equake(scale float64) Benchmark {
	smvp := &compiler.Loop{
		Name:      "smvp",
		OuterTrip: 1,
		InnerTrip: 1 << 16,
		Ambiguous: true,
		Body: []compiler.Stmt{
			affLoad("col", "cols", 4, 4),
			{Kind: compiler.SLoadInt, Dst: "xv", Size: 8,
				Ref: &compiler.Ref{Kind: compiler.RefIndirect, Array: "x", IndexTemp: "col", Scale: 8}},
			affLoadF("av", "vals", 8),
			{Kind: compiler.SAdd, Dst: "acc", A: "acc", B: "xv"},
			{Kind: compiler.SFAdd, Dst: "w", A: "w", B: "av"},
		},
		Inits:      []compiler.Init{{Temp: "acc", IsImm: true, Imm: 0}},
		FloatTemps: []string{"w", "kk"},
	}
	smvp.Body = append(smvp.Body, fpChain("w", "kk", 9)...)
	integrate := &compiler.Loop{
		Name:      "time-integration",
		OuterTrip: 1,
		InnerTrip: 1 << 16,
		Ambiguous: true,
		Body: []compiler.Stmt{
			affLoadF("d", "disp", 8),
			affLoadF("v", "vel", 8),
			{Kind: compiler.SFMA, Dst: "nd", A: "v", B: "dt", C: "d"},
			affStoreF("nd", "disp2", 8),
		},
		FloatTemps: []string{"dt"},
	}
	k := &compiler.Kernel{
		Name: "equake",
		Arrays: []compiler.Array{
			{Name: "cols", Elem: 4, N: 1 << 16, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 449, Mod: 1 << 17}},
			{Name: "x", Elem: 8, N: 1 << 17, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 3}},
			{Name: "vals", Elem: 8, N: 1 << 16, Float: true, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 2}},
			{Name: "disp", Elem: 8, N: 1 << 16, Float: true, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 1}},
			{Name: "vel", Elem: 8, N: 1 << 16, Float: true, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 4}},
			{Name: "disp2", Elem: 8, N: 1 << 16, Float: true, Init: compiler.InitSpec{Kind: compiler.InitZero}},
		},
		Phases: []compiler.Phase{{
			Name:   "timestep",
			Repeat: scaleRepeat(16, scale),
			Loops:  []*compiler.Loop{smvp, integrate},
		}},
	}
	return Benchmark{
		Name: "equake", Class: FP, Kernel: withSetup(k, 5),
		PaperNote: "indirect gather dominates; gains persist at O3 because static prefetching cannot analyze it",
	}
}

// facerec: image-correlation passes — clean affine FP streams over
// mid-sized arrays. O3's static prefetching covers them (so runtime adds
// nothing there); at O2 the runtime prefetcher gets the full gain. The
// streams software-pipeline well (Fig. 10).
func facerec(scale float64) Benchmark {
	stream := func(name string, arrs ...string) *compiler.Loop {
		var body []compiler.Stmt
		for i, a := range arrs {
			dst := "g" + string(rune('0'+i))
			body = append(body, affLoadFOff(dst, a, 8, int64(i*24)))
			body = append(body, compiler.Stmt{Kind: compiler.SFMA, Dst: "s", A: dst, B: "k", C: "s"})
		}
		body = append(body, fpChain("s", "k", 22)...)
		return &compiler.Loop{
			Name: name, OuterTrip: 1, InnerTrip: 1 << 17,
			Body: body, FloatTemps: []string{"s", "k"},
		}
	}
	k := &compiler.Kernel{
		Name: "facerec",
		Arrays: []compiler.Array{
			{Name: "img", Elem: 8, N: 1 << 17, Float: true, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 1}},
			{Name: "gabor", Elem: 8, N: 1 << 17, Float: true, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 2}},
			{Name: "graph", Elem: 8, N: 1 << 17, Float: true, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 3}},
		},
		Phases: []compiler.Phase{
			{Name: "gabor-xform", Repeat: scaleRepeat(7, scale), Loops: []*compiler.Loop{stream("conv", "img", "gabor")}},
			{Name: "graph-sim", Repeat: scaleRepeat(7, scale), Loops: []*compiler.Loop{stream("sim", "graph", "img")}},
			{Name: "search", Repeat: scaleRepeat(7, scale), Loops: []*compiler.Loop{stream("search", "gabor", "graph")}},
		},
	}
	return Benchmark{
		Name: "facerec", Class: FP, Kernel: withSetup(k, 5),
		PaperNote: "affine FP streams: runtime prefetching gains at O2, static O3 already covers them",
	}
}

// fma3d: finite-element solver — element arrays streamed directly plus
// connectivity gathers (Table 2: 11 direct, 2 indirect over 4 phases).
func fma3d(scale float64) Benchmark {
	stream := func(name string, a1, a2 string) *compiler.Loop {
		return &compiler.Loop{
			Name: name, NoSWP: true, OuterTrip: 1, InnerTrip: 1 << 15,
			Body: append([]compiler.Stmt{
				affLoadFOff("e1", a1, 8, 0),
				affLoadFOff("e2", a2, 8, 24),
				{Kind: compiler.SFMA, Dst: "f", A: "e1", B: "e2", C: "f"},
				affStoreF("f", a1, 8),
			}, fpChain("f", "kk", 0)...),
			FloatTemps: []string{"f", "kk"},
		}
	}
	gatherLoop := &compiler.Loop{
		Name: "connectivity", NoSWP: true, OuterTrip: 1, InnerTrip: 1 << 15,
		Body: append([]compiler.Stmt{
			affLoad("n", "conn", 4, 4),
			{Kind: compiler.SLoadInt, Dst: "nd", Size: 8,
				Ref: &compiler.Ref{Kind: compiler.RefIndirect, Array: "nodes", IndexTemp: "n", Scale: 8}},
			{Kind: compiler.SAdd, Dst: "q", A: "q", B: "nd"},
		}, intChain("qq", 0)...),
		Inits: []compiler.Init{{Temp: "q", IsImm: true, Imm: 0}, {Temp: "qq", IsImm: true, Imm: 0}},
	}
	k := &compiler.Kernel{
		Name: "fma3d",
		Arrays: []compiler.Array{
			{Name: "stress", Elem: 8, N: 1 << 17, Float: true, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 1}},
			{Name: "strain", Elem: 8, N: 1 << 17, Float: true, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 2}},
			{Name: "force", Elem: 8, N: 1 << 17, Float: true, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 3}},
			{Name: "veloc", Elem: 8, N: 1 << 17, Float: true, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 4}},
			{Name: "conn", Elem: 4, N: 1 << 16, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 151, Mod: 1 << 17}},
			{Name: "nodes", Elem: 8, N: 1 << 17, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 5}},
		},
		Phases: []compiler.Phase{
			{Name: "internal-forces", Repeat: scaleRepeat(32, scale), Loops: []*compiler.Loop{stream("stress-strain", "stress", "strain")}},
			{Name: "gather", Repeat: scaleRepeat(28, scale), Loops: []*compiler.Loop{gatherLoop}},
			{Name: "accel", Repeat: scaleRepeat(32, scale), Loops: []*compiler.Loop{stream("f-v", "force", "veloc")}},
			{Name: "update", Repeat: scaleRepeat(32, scale), Loops: []*compiler.Loop{stream("v-s", "veloc", "stress")}},
		},
	}
	return Benchmark{
		Name: "fma3d", Class: FP, Kernel: withSetup(k, 5),
		PaperNote: "direct element streams plus connectivity gathers over 4 phases",
	}
}

// lucas: Lucas-Lehmer FFT squaring. The dominant misses sit behind an
// address computed from floating-point data (getf.sig of the butterfly
// index), which the runtime slicer refuses — stride computation fails as
// the paper reports. Secondary direct streams still get prefetched with
// little effect.
func lucas(scale float64) Benchmark {
	k := &compiler.Kernel{
		Name: "lucas",
		Arrays: []compiler.Array{
			{Name: "fftw", Elem: 8, N: 1 << 17, Float: true, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 3, Mod: 1 << 18}},
			{Name: "xdat", Elem: 8, N: 1 << 19, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 9}},
			{Name: "scr", Elem: 8, N: 1 << 15, Float: true, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 2}},
		},
		Phases: []compiler.Phase{{
			Name:   "squaring",
			Repeat: scaleRepeat(18, scale),
			Loops: []*compiler.Loop{
				{
					Name:      "butterfly",
					NoSWP:     true,
					OuterTrip: 1,
					InnerTrip: 1 << 16,
					Body: []compiler.Stmt{
						affLoadF("tw", "fftw", 8),
						{Kind: compiler.SGetSig, Dst: "bi", A: "tw"},
						{Kind: compiler.SAnd, Dst: "bj", A: "bi", B: "mask"},
						{Kind: compiler.SLoadInt, Dst: "xv", Size: 8,
							Ref: &compiler.Ref{Kind: compiler.RefIndirect, Array: "xdat", IndexTemp: "bj", Scale: 8}},
						{Kind: compiler.SAdd, Dst: "acc", A: "acc", B: "xv"},
					},
					Inits: []compiler.Init{
						{Temp: "acc", IsImm: true, Imm: 0},
						{Temp: "mask", IsImm: true, Imm: (1 << 19) - 1},
					},
				},
				{
					Name:      "carry",
					OuterTrip: 1,
					InnerTrip: 1 << 13,
					Body: []compiler.Stmt{
						affLoadF("c", "scr", 8),
						{Kind: compiler.SFAdd, Dst: "cs", A: "cs", B: "c"},
					},
					FloatTemps: []string{"cs"},
				},
			},
		}},
	}
	return Benchmark{
		Name: "lucas", Class: FP, Kernel: withSetup(k, 5),
		PaperNote: "dominant misses behind fp-int conversion: slice fails, ~no gain",
	}
}

// mesa: software rendering with a mostly cache-resident working set; one
// minor direct prefetch, little to gain.
func mesa(scale float64) Benchmark {
	k := &compiler.Kernel{
		Name: "mesa",
		Arrays: []compiler.Array{
			{Name: "fb", Elem: 8, N: 1 << 15, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 2}},
			{Name: "tex", Elem: 8, N: 1 << 13, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 3}},
		},
		Phases: []compiler.Phase{{
			Name:   "render",
			Repeat: scaleRepeat(40, scale),
			Loops: []*compiler.Loop{
				{
					Name:      "span",
					NoSWP:     true,
					OuterTrip: 1,
					InnerTrip: 1 << 15,
					Body: append([]compiler.Stmt{
						affLoad("px", "fb", 8, 8),
						{Kind: compiler.SAddImm, Dst: "px2", A: "px", Imm: 1},
						{Kind: compiler.SStoreInt, A: "px2", Size: 8,
							Ref: &compiler.Ref{Kind: compiler.RefAffine, Array: "fb", InnerStride: 8}},
					}, intChain("sh", 18)...),
					Inits: []compiler.Init{{Temp: "sh", IsImm: true, Imm: 0}},
				},
				{
					Name:      "texture",
					NoSWP:     true,
					OuterTrip: 1,
					InnerTrip: 1 << 12,
					Body: []compiler.Stmt{
						affLoad("t", "tex", 8, 8),
						{Kind: compiler.SAdd, Dst: "tv", A: "tv", B: "t"},
					},
					Inits: []compiler.Init{{Temp: "tv", IsImm: true, Imm: 0}},
				},
			},
		}},
	}
	return Benchmark{
		Name: "mesa", Class: FP, Kernel: withSetup(k, 5),
		PaperNote: "small working set; one minor prefetch, ~no gain",
	}
}

// swim: shallow-water stencil sweeps — several FP streams per iteration
// over L3-scale grids. Runtime prefetching gains at O2; O3's static
// prefetching already covers the affine streams; SWP hides the remaining
// hit latency (swim is one of Fig. 10's SWP-sensitive programs).
func swim(scale float64) Benchmark {
	k := &compiler.Kernel{
		Name: "swim",
		Arrays: []compiler.Array{
			{Name: "u", Elem: 8, N: 1 << 15, Float: true, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 1}},
			{Name: "v", Elem: 8, N: 1 << 15, Float: true, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 2}},
			{Name: "p", Elem: 8, N: 1 << 17, Float: true, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 3}},
			{Name: "unew", Elem: 8, N: 1 << 17, Float: true, Init: compiler.InitSpec{Kind: compiler.InitZero}},
		},
		Phases: []compiler.Phase{{
			Name:   "calc",
			Repeat: scaleRepeat(20, scale),
			Loops: []*compiler.Loop{{
				Name:      "stencil",
				OuterTrip: 4,
				InnerTrip: 1 << 15,
				Body: []compiler.Stmt{
					affLoadFOff("uu", "u", 8, 0),
					affLoadFOff("vv", "v", 8, 24),
					{Kind: compiler.SLoadFloat, Dst: "pp", Ref: &compiler.Ref{Kind: compiler.RefAffine, Array: "p", InnerStride: 8, OuterStride: 8 << 15, Offset: 48}},
					{Kind: compiler.SFMA, Dst: "t1", A: "uu", B: "vv", C: "pp"},
					{Kind: compiler.SFMA, Dst: "t2", A: "t1", B: "uu", C: "vv"},
					{Kind: compiler.SFMA, Dst: "acc", A: "t2", B: "kq", C: "acc"},
					{Kind: compiler.SFMA, Dst: "acc", A: "acc", B: "kq", C: "acc"},
					{Kind: compiler.SFMA, Dst: "acc", A: "acc", B: "kq", C: "acc"},
					{Kind: compiler.SFMA, Dst: "acc", A: "acc", B: "kq", C: "acc"},
					{Kind: compiler.SFMA, Dst: "acc", A: "acc", B: "kq", C: "acc"},
					{Kind: compiler.SFMA, Dst: "acc", A: "acc", B: "kq", C: "acc"},
					{Kind: compiler.SStoreFloat, A: "t2", Ref: &compiler.Ref{Kind: compiler.RefAffine, Array: "unew", InnerStride: 8, OuterStride: 8 << 15}},
				},
				FloatTemps: []string{"acc", "kq"},
			}},
		}},
	}
	return Benchmark{
		Name: "swim", Class: FP, Kernel: withSetup(k, 5),
		PaperNote: "stencil streams: O2 gains from runtime prefetching; SWP-sensitive (Fig. 10)",
	}
}
