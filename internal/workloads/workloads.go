// Package workloads defines the 17 SPEC CPU2000-like synthetic benchmarks
// of the reproduction. Each kernel is built to exhibit the memory behaviour
// the paper reports for its namesake — reference patterns (direct /
// indirect / pointer-chasing), working-set sizes relative to the simulated
// Itanium 2 hierarchy, phase structure, and the specific failure modes
// (fp-int address computation, miss latency spread over many loads,
// bandwidth-bound loops, runs too short for phase detection).
//
// DESIGN.md §4 documents the modelling intent per benchmark; EXPERIMENTS.md
// compares the resulting shapes with the paper's.
package workloads

import (
	"fmt"

	"repro/internal/compiler"
)

// Class labels a benchmark suite half, as in the paper's Fig. 7 grouping.
type Class string

const (
	INT Class = "SPECint2000"
	FP  Class = "SPECfp2000"
)

// Benchmark is one synthetic SPEC2000 stand-in.
type Benchmark struct {
	Name   string
	Class  Class
	Kernel *compiler.Kernel

	// Paper-reported behaviour notes used by EXPERIMENTS.md.
	PaperNote string
}

// scaleRepeat scales a phase repeat count, keeping at least one iteration.
func scaleRepeat(n int64, scale float64) int64 {
	v := int64(float64(n) * scale)
	if v < 1 {
		v = 1
	}
	return v
}

// All returns the 17 benchmarks in the paper's Fig. 7 order (integer
// programs first). scale multiplies phase repeat counts: 1.0 reproduces the
// standard run lengths (tens of millions of simulated instructions), tests
// use smaller values.
func All(scale float64) []Benchmark {
	return []Benchmark{
		bzip2(scale), gzip(scale), mcf(scale), vpr(scale), parser(scale),
		gap(scale), vortex(scale), gcc(scale),
		ammp(scale), art(scale), applu(scale), equake(scale), facerec(scale),
		fma3d(scale), lucas(scale), mesa(scale), swim(scale),
	}
}

// ByName returns one benchmark at the given scale.
func ByName(name string, scale float64) (Benchmark, error) {
	for _, b := range All(scale) {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("workloads: unknown benchmark %q", name)
}

// Names lists the benchmark names in suite order.
func Names() []string {
	names := make([]string, 0, 17)
	for _, b := range All(0.01) {
		names = append(names, b.Name)
	}
	return names
}

// ---- shared building blocks ----

// affLoad returns a strided load statement.
func affLoad(dst, array string, stride int64, size int) compiler.Stmt {
	return compiler.Stmt{
		Kind: compiler.SLoadInt, Dst: dst, Size: size,
		Ref: &compiler.Ref{Kind: compiler.RefAffine, Array: array, InnerStride: stride},
	}
}

// affLoadF returns a strided FP load statement.
func affLoadF(dst, array string, stride int64) compiler.Stmt {
	return compiler.Stmt{
		Kind: compiler.SLoadFloat, Dst: dst,
		Ref: &compiler.Ref{Kind: compiler.RefAffine, Array: array, InnerStride: stride},
	}
}

// affLoadFOff is affLoadF with a starting byte offset. Staggering the
// offsets of concurrently streamed arrays de-aligns their cache-line
// crossings, as unrelated heap arrays are in real programs; perfectly
// co-aligned streams would always latch the same (last) load in the DEAR.
func affLoadFOff(dst, array string, stride, offset int64) compiler.Stmt {
	return compiler.Stmt{
		Kind: compiler.SLoadFloat, Dst: dst,
		Ref: &compiler.Ref{Kind: compiler.RefAffine, Array: array, InnerStride: stride, Offset: offset},
	}
}

// affStoreF returns a strided FP store statement.
func affStoreF(src, array string, stride int64) compiler.Stmt {
	return compiler.Stmt{
		Kind: compiler.SStoreFloat, A: src,
		Ref: &compiler.Ref{Kind: compiler.RefAffine, Array: array, InnerStride: stride},
	}
}

// chaseLoads returns the canonical two-load pointer chase (Fig. 5C):
// payload = p->field; p = p->next.
func chaseLoads(ptr, payload string, payOff, nextOff int64) []compiler.Stmt {
	return []compiler.Stmt{
		{Kind: compiler.SLoadInt, Dst: payload, Size: 8,
			Ref: &compiler.Ref{Kind: compiler.RefPointer, PtrTemp: ptr, Offset: payOff}},
		{Kind: compiler.SLoadInt, Dst: ptr, Size: 8,
			Ref: &compiler.Ref{Kind: compiler.RefPointer, PtrTemp: ptr, Offset: nextOff}},
	}
}

// intChain appends n dependent integer ops (1 cycle each) that hide load
// latency behind computation — the mechanism that makes gap/applu-style
// loops insensitive to prefetching.
func intChain(dst string, n int) []compiler.Stmt {
	out := make([]compiler.Stmt, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, compiler.Stmt{Kind: compiler.SAddImm, Dst: dst, A: dst, Imm: 1})
	}
	return out
}

// withSetup prepends a one-shot initialization phase of small cache-warm
// loops. Real benchmarks carry many such loops; at O3 the static prefetcher
// schedules them for prefetching even though they never miss, and the
// Table 1 profile-guided pass is what filters them back out ("83% of loops
// scheduled for prefetching have been filtered out").
func withSetup(k *compiler.Kernel, n int) *compiler.Kernel {
	k.Arrays = append(k.Arrays, compiler.Array{
		Name: "warm", Elem: 8, N: 1 << 9,
		Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 1},
	})
	setup := compiler.Phase{Name: "setup", Repeat: 1}
	for i := 0; i < n; i++ {
		setup.Loops = append(setup.Loops, &compiler.Loop{
			Name:      fmt.Sprintf("init%d", i),
			NoSWP:     true,
			OuterTrip: 1,
			InnerTrip: 1 << 9,
			Body: []compiler.Stmt{
				{Kind: compiler.SLoadInt, Dst: "wv", Size: 8,
					Ref: &compiler.Ref{Kind: compiler.RefAffine, Array: "warm", InnerStride: 8}},
				{Kind: compiler.SAddImm, Dst: "wv2", A: "wv", Imm: int64(i)},
				{Kind: compiler.SStoreInt, A: "wv2", Size: 8,
					Ref: &compiler.Ref{Kind: compiler.RefAffine, Array: "warm", InnerStride: 8}},
			},
		})
	}
	k.Phases = append([]compiler.Phase{setup}, k.Phases...)
	return k
}

// fpChain appends n dependent FMAs.
func fpChain(dst, mul string, n int) []compiler.Stmt {
	out := make([]compiler.Stmt, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, compiler.Stmt{Kind: compiler.SFMA, Dst: dst, A: dst, B: mul, C: dst})
	}
	return out
}
