package workloads

import "repro/internal/compiler"

// bzip2: block-sorting compression. Two phases; both direct and indirect
// array references miss heavily (Table 2 reports direct and indirect
// prefetches; Fig. 7a shows a solid gain).
func bzip2(scale float64) Benchmark {
	k := &compiler.Kernel{
		Name: "bzip2",
		Arrays: []compiler.Array{
			{Name: "block", Elem: 4, N: 1 << 20, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 2654435761 % (1 << 20), Mod: 1 << 20}},
			{Name: "freq", Elem: 8, N: 1 << 17, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 3}},
			{Name: "out", Elem: 8, N: 1 << 19, Init: compiler.InitSpec{Kind: compiler.InitZero}},
		},
		Phases: []compiler.Phase{
			{
				Name:   "sort",
				Repeat: scaleRepeat(24, scale),
				Loops: []*compiler.Loop{{
					Name:      "bucket",
					NoSWP:     true,
					OuterTrip: 1,
					InnerTrip: 1 << 15,
					Body: append([]compiler.Stmt{
						affLoad("sym", "block", 4, 4),
						{Kind: compiler.SAnd, Dst: "symm", A: "sym", B: "mask"},
						{Kind: compiler.SLoadInt, Dst: "cnt", Size: 8,
							Ref: &compiler.Ref{Kind: compiler.RefIndirect, Array: "freq", IndexTemp: "symm", Scale: 8}},
						{Kind: compiler.SAdd, Dst: "acc", A: "acc", B: "cnt"},
					}, intChain("w", 26)...),
					Inits: []compiler.Init{
						{Temp: "acc", IsImm: true, Imm: 0},
						{Temp: "w", IsImm: true, Imm: 0},
						{Temp: "mask", IsImm: true, Imm: (1 << 17) - 1},
					},
				}},
			},
			{
				Name:   "emit",
				Repeat: scaleRepeat(16, scale),
				Loops: []*compiler.Loop{{
					Name:      "mtf",
					NoSWP:     true,
					OuterTrip: 1,
					InnerTrip: 1 << 15,
					Body: []compiler.Stmt{
						affLoad("v", "out", 8, 8),
						{Kind: compiler.SAddImm, Dst: "v2", A: "v", Imm: 1},
						{Kind: compiler.SStoreInt, A: "v2", Size: 8,
							Ref: &compiler.Ref{Kind: compiler.RefAffine, Array: "out", InnerStride: 8}},
					},
				}},
			},
		},
	}
	return Benchmark{
		Name: "bzip2", Class: INT, Kernel: withSetup(k, 5),
		PaperNote: "gains from both direct and indirect prefetching (Table 2: 10 direct, 6 indirect)",
	}
}

// gzip: the run is too short for ADORE to detect a stable phase ("gzip's
// execution time is too short (less than 1 minute) for ADORE to detect a
// stable phase"), so runtime prefetching never engages.
func gzip(scale float64) Benchmark {
	k := &compiler.Kernel{
		Name: "gzip",
		Arrays: []compiler.Array{
			{Name: "win", Elem: 4, N: 1 << 16, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 7, Mod: 1 << 16}},
		},
		Phases: []compiler.Phase{{
			Name:   "deflate",
			Repeat: scaleRepeat(40, scale),
			Loops: []*compiler.Loop{{
				Name:      "match",
				OuterTrip: 1,
				InnerTrip: 4096,
				NoSWP:     true,
				Body: append([]compiler.Stmt{
					affLoad("c", "win", 4, 4),
					{Kind: compiler.SAdd, Dst: "h", A: "h", B: "c"},
				}, intChain("h2", 2)...),
				Inits: []compiler.Init{
					{Temp: "h", IsImm: true, Imm: 0},
					{Temp: "h2", IsImm: true, Imm: 0},
				},
			}},
		}},
	}
	return Benchmark{
		Name: "gzip", Class: INT, Kernel: withSetup(k, 5),
		PaperNote: "execution too short for a stable phase; no optimization happens",
	}
}

// mcf: the paper's flagship pointer-chasing win (+57% at O2). The network
// simplex inner loop walks the arc list through two levels of pointers
// (Fig. 5C); the chain has mostly regular node spacing, which is what the
// induction-pointer prefetch exploits. A secondary arc-refresh phase is a
// plain affine scan (and is software-pipelinable, part of mcf's Fig. 10
// sensitivity).
func mcf(scale float64) Benchmark {
	k := &compiler.Kernel{
		Name: "mcf",
		Arrays: []compiler.Array{
			{Name: "arcs", N: 1 << 16, Init: compiler.InitSpec{Kind: compiler.InitChain, NodeSize: 128, NextOff: 8, ShufflePct: 10, Seed: 42}},
			{Name: "cost", Elem: 8, N: 1 << 17, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 11}},
		},
		Phases: []compiler.Phase{
			{
				Name:   "pbeampp",
				Repeat: scaleRepeat(10, scale),
				Loops: []*compiler.Loop{{
					Name:      "arc-scan",
					OuterTrip: 1,
					InnerTrip: 1 << 16,
					Body: append(append(
						chaseLoads("arc", "tail", 0, 8),
						compiler.Stmt{Kind: compiler.SLoadInt, Dst: "flow", Size: 8,
							Ref: &compiler.Ref{Kind: compiler.RefPointer, PtrTemp: "tail", Offset: 16}},
						compiler.Stmt{Kind: compiler.SAdd, Dst: "red", A: "red", B: "tail"},
						compiler.Stmt{Kind: compiler.SAdd, Dst: "red", A: "red", B: "flow"},
					), intChain("price", 7)...),
					Inits: []compiler.Init{
						{Temp: "arc", Array: "arcs", Offset: 0},
						{Temp: "red", IsImm: true, Imm: 0},
						{Temp: "price", IsImm: true, Imm: 0},
					},
				}},
			},
			{
				Name:   "refresh",
				Repeat: scaleRepeat(80, scale),
				Loops: []*compiler.Loop{{
					Name:      "cost-scan",
					OuterTrip: 1,
					InnerTrip: 1 << 17,
					Body: []compiler.Stmt{
						affLoad("c", "cost", 8, 8),
						{Kind: compiler.SAdd, Dst: "tot", A: "tot", B: "c"},
					},
					Inits: []compiler.Init{{Temp: "tot", IsImm: true, Imm: 0}},
				}},
			},
		},
	}
	return Benchmark{
		Name: "mcf", Class: INT, Kernel: withSetup(k, 5),
		PaperNote: "largest gain; induction-pointer prefetching on mostly-regular arc chains (Fig. 5C/6C)",
	}
}

// vpr: delinquent loads have complex address calculation (coordinates
// computed in floating point, then converted) — the slice fails, matching
// "causing the dynamic optimizer to fail in computing the stride
// information (in vpr, lucas and gap)".
func vpr(scale float64) Benchmark {
	k := &compiler.Kernel{
		Name: "vpr",
		Arrays: []compiler.Array{
			{Name: "xs", Elem: 8, N: 1 << 13, Float: true, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 5, Mod: 1 << 18}},
			{Name: "grid", Elem: 8, N: 1 << 19, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 13}},
			{Name: "net", Elem: 8, N: 1 << 15, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 1}},
		},
		Phases: []compiler.Phase{{
			Name:   "place",
			Repeat: scaleRepeat(120, scale),
			Loops: []*compiler.Loop{
				{
					Name:      "cost",
					OuterTrip: 1,
					InnerTrip: 1 << 13,
					Body: []compiler.Stmt{
						affLoadF("x", "xs", 8),
						{Kind: compiler.SCvtFI, Dst: "gi", A: "x"},
						{Kind: compiler.SLoadInt, Dst: "g", Size: 8,
							Ref: &compiler.Ref{Kind: compiler.RefIndirect, Array: "grid", IndexTemp: "gi", Scale: 8}},
						{Kind: compiler.SAdd, Dst: "acc", A: "acc", B: "g"},
					},
					Inits: []compiler.Init{{Temp: "acc", IsImm: true, Imm: 0}},
				},
				{
					Name:      "bbox",
					NoSWP:     true,
					OuterTrip: 1,
					InnerTrip: 1 << 14,
					Body: append([]compiler.Stmt{
						affLoad("n", "net", 8, 8),
						{Kind: compiler.SAdd, Dst: "bb", A: "bb", B: "n"},
					}, intChain("t", 18)...),
					Inits: []compiler.Init{
						{Temp: "bb", IsImm: true, Imm: 0},
						{Temp: "t", IsImm: true, Imm: 0},
					},
				},
			},
		}},
	}
	return Benchmark{
		Name: "vpr", Class: INT, Kernel: withSetup(k, 5),
		PaperNote: "dominant misses behind an fp-int conversion: slice analysis fails, ~no gain",
	}
}

// parser: a dictionary walk over linked structures with partially regular
// strides gives a small pointer-chasing gain; most time goes to
// latency-tolerant matching code.
func parser(scale float64) Benchmark {
	k := &compiler.Kernel{
		Name: "parser",
		Arrays: []compiler.Array{
			{Name: "dict", N: 1 << 14, Init: compiler.InitSpec{Kind: compiler.InitChain, NodeSize: 128, NextOff: 8, ShufflePct: 45, Seed: 7}},
			{Name: "sent", Elem: 8, N: 1 << 17, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 3}},
		},
		Phases: []compiler.Phase{{
			Name:   "parse",
			Repeat: scaleRepeat(20, scale),
			Loops: []*compiler.Loop{
				{
					Name:      "dict-walk",
					OuterTrip: 1,
					InnerTrip: 1 << 14,
					Body: append(append(chaseLoads("w", "def", 0, 8),
						compiler.Stmt{Kind: compiler.SAdd, Dst: "hits", A: "hits", B: "def"}),
						intChain("hc", 10)...),
					Inits: []compiler.Init{
						{Temp: "w", Array: "dict", Offset: 0},
						{Temp: "hits", IsImm: true, Imm: 0},
						{Temp: "hc", IsImm: true, Imm: 0},
					},
				},
				{
					Name:      "match",
					NoSWP:     true,
					OuterTrip: 1,
					InnerTrip: 1 << 16,
					Body: append([]compiler.Stmt{
						affLoad("tok", "sent", 8, 8),
						{Kind: compiler.SAdd, Dst: "m", A: "m", B: "tok"},
					}, intChain("s", 12)...),
					Inits: []compiler.Init{
						{Temp: "m", IsImm: true, Imm: 0},
						{Temp: "s", IsImm: true, Imm: 0},
					},
				},
			},
		}},
	}
	return Benchmark{
		Name: "parser", Class: INT, Kernel: withSetup(k, 5),
		PaperNote: "small pointer-chasing gain (Table 2: 1 direct, 2 pointer)",
	}
}

// gap: misses exist (DEAR events fire on L3-latency loads) but long
// dependent computation chains already hide the latency, so the inserted
// prefetches buy ~nothing.
func gap(scale float64) Benchmark {
	loop := func(name, array string, chain int) *compiler.Loop {
		return &compiler.Loop{
			Name:      name,
			NoSWP:     true,
			OuterTrip: 1,
			InnerTrip: 1 << 15,
			Body: append([]compiler.Stmt{
				affLoad("v", array, 8, 8),
				{Kind: compiler.SAdd, Dst: "acc", A: "acc", B: "v"},
			}, intChain("c", chain)...),
			Inits: []compiler.Init{
				{Temp: "acc", IsImm: true, Imm: 0},
				{Temp: "c", IsImm: true, Imm: 0},
			},
		}
	}
	k := &compiler.Kernel{
		Name: "gap",
		Arrays: []compiler.Array{
			{Name: "bag1", Elem: 8, N: 1 << 17, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 3}},
			{Name: "bag2", Elem: 8, N: 1 << 17, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 5}},
			{Name: "bag3", Elem: 8, N: 1 << 17, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 7}},
		},
		Phases: []compiler.Phase{
			{Name: "collect1", Repeat: scaleRepeat(14, scale), Loops: []*compiler.Loop{loop("sweep1", "bag1", 16)}},
			{Name: "collect2", Repeat: scaleRepeat(14, scale), Loops: []*compiler.Loop{loop("sweep2", "bag2", 16)}},
			{Name: "collect3", Repeat: scaleRepeat(14, scale), Loops: []*compiler.Loop{loop("sweep3", "bag3", 16)}},
		},
	}
	return Benchmark{
		Name: "gap", Class: INT, Kernel: withSetup(k, 5),
		PaperNote: "prefetches inserted but latency already hidden by computation; ~no gain",
	}
}

// vortex: modest database-like loops; the paper attributes part of its
// small +2% to improved I-cache locality from trace layout.
func vortex(scale float64) Benchmark {
	k := &compiler.Kernel{
		Name: "vortex",
		Arrays: []compiler.Array{
			{Name: "objs", Elem: 8, N: 1 << 15, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 9}},
			{Name: "index", Elem: 8, N: 1 << 15, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 4}},
		},
		Phases: []compiler.Phase{
			{
				Name:   "lookup",
				Repeat: scaleRepeat(16, scale),
				Loops: []*compiler.Loop{{
					Name:      "scan-objs",
					NoSWP:     true,
					OuterTrip: 1,
					InnerTrip: 1 << 16,
					Body: append([]compiler.Stmt{
						affLoad("o", "objs", 8, 8),
						{Kind: compiler.SAdd, Dst: "acc", A: "acc", B: "o"},
					}, intChain("k", 16)...),
					Inits: []compiler.Init{
						{Temp: "acc", IsImm: true, Imm: 0},
						{Temp: "k", IsImm: true, Imm: 0},
					},
				}},
			},
			{
				Name:   "update",
				Repeat: scaleRepeat(12, scale),
				Loops: []*compiler.Loop{{
					Name:      "scan-index",
					NoSWP:     true,
					OuterTrip: 1,
					InnerTrip: 1 << 15,
					Body: append([]compiler.Stmt{
						affLoad("e", "index", 8, 8),
						{Kind: compiler.SAddImm, Dst: "e2", A: "e", Imm: 3},
						{Kind: compiler.SStoreInt, A: "e2", Size: 8,
							Ref: &compiler.Ref{Kind: compiler.RefAffine, Array: "index", InnerStride: 8}},
					}, intChain("k", 14)...),
					Inits: []compiler.Init{{Temp: "k", IsImm: true, Imm: 0}},
				}},
			},
		},
	}
	return Benchmark{
		Name: "vortex", Class: INT, Kernel: withSetup(k, 5),
		PaperNote: "small gain, partly from I-cache effects of trace layout",
	}
}

// gcc: many distinct hot regions and rapid phase changes. Phases are short
// relative to the profile window, so the detector churns; the sampling
// overhead plus I-cache pressure from duplicated traces produce a small
// net loss (the paper measures -3.8%).
func gcc(scale float64) Benchmark {
	mkLoop := func(name, array string, bodyPad int) *compiler.Loop {
		body := []compiler.Stmt{
			affLoad("v", array, 8, 8),
			{Kind: compiler.SAdd, Dst: "acc", A: "acc", B: "v"},
		}
		// Wide bodies: gcc's hot code footprint is large, stressing the
		// I-cache when traces duplicate it.
		for i := 0; i < bodyPad; i++ {
			dst := "t" + string(rune('a'+i%8))
			body = append(body, compiler.Stmt{Kind: compiler.SAddImm, Dst: dst, A: dst, Imm: int64(i + 1)})
		}
		inits := []compiler.Init{{Temp: "acc", IsImm: true, Imm: 0}}
		for i := 0; i < 8 && i < bodyPad; i++ {
			inits = append(inits, compiler.Init{Temp: "t" + string(rune('a'+i)), IsImm: true, Imm: 0})
		}
		return &compiler.Loop{
			Name: name, NoSWP: true, OuterTrip: 1, InnerTrip: 1 << 13,
			Body: body, Inits: inits,
		}
	}
	k := &compiler.Kernel{
		Name: "gcc",
		Arrays: []compiler.Array{
			{Name: "rtl1", Elem: 8, N: 1 << 16, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 3}},
			{Name: "rtl2", Elem: 8, N: 1 << 16, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 5}},
			{Name: "rtl3", Elem: 8, N: 1 << 16, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 7}},
			{Name: "rtl4", Elem: 8, N: 1 << 16, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 9}},
		},
		Phases: []compiler.Phase{
			{Name: "pass1", Repeat: scaleRepeat(18, scale), Loops: []*compiler.Loop{
				mkLoop("cse", "rtl1", 36), mkLoop("jump", "rtl2", 36),
			}},
			{Name: "pass2", Repeat: scaleRepeat(18, scale), Loops: []*compiler.Loop{
				mkLoop("loop-opt", "rtl3", 36), mkLoop("regalloc", "rtl4", 36),
			}},
			{Name: "pass3", Repeat: scaleRepeat(18, scale), Loops: []*compiler.Loop{
				mkLoop("sched", "rtl1", 36), mkLoop("final", "rtl3", 36),
			}},
		},
	}
	return Benchmark{
		Name: "gcc", Class: INT, Kernel: withSetup(k, 5),
		PaperNote: "rapid phase changes; I-cache pressure and sampling overhead cause a small loss",
	}
}
