package progfuzz_test

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/harness"
	"repro/internal/memsys"
	"repro/internal/progfuzz"
)

// sameRun asserts two runs of the same configuration are bit-identical:
// architectural state, every counter the simulator keeps, and the final
// data memory. This is the fork engine's contract (DESIGN.md §16) checked
// from outside the harness package, on generated programs.
func sameRun(t *testing.T, label string, straight, forked *harness.RunResult) {
	t.Helper()
	if straight.CPU != forked.CPU {
		t.Errorf("%s: cpu stats diverged:\n straight %+v\n forked   %+v", label, straight.CPU, forked.CPU)
	}
	if !reflect.DeepEqual(straight.Arch, forked.Arch) {
		t.Errorf("%s: architectural state diverged", label)
	}
	if !reflect.DeepEqual(straight.Core, forked.Core) {
		t.Errorf("%s: controller stats diverged:\n straight %+v\n forked   %+v", label, straight.Core, forked.Core)
	}
	if straight.Mem.Prefetch() != forked.Mem.Prefetch() {
		t.Errorf("%s: prefetch stats diverged:\n straight %+v\n forked   %+v", label, straight.Mem.Prefetch(), forked.Mem.Prefetch())
	}
	cs := [4]memsys.CacheStats{straight.Mem.L1D.Stats, straight.Mem.L1I.Stats, straight.Mem.L2.Stats, straight.Mem.L3.Stats}
	cf := [4]memsys.CacheStats{forked.Mem.L1D.Stats, forked.Mem.L1I.Stats, forked.Mem.L2.Stats, forked.Mem.L3.Stats}
	if cs != cf {
		t.Errorf("%s: cache stats diverged:\n straight %+v\n forked   %+v", label, cs, cf)
	}
	if addr, sv, fv, diff := memsys.FirstDiff(straight.FinalMemory, forked.FinalMemory); diff {
		t.Errorf("%s: memory diverged at %#x: straight %#x, forked %#x", label, addr, sv, fv)
	}
}

// FuzzSnapshot is the generative checkpoint/fork target: bytes → a
// constrained random program, snapshotted at a fuzzed mid-run cycle (or at
// the policy-divergence point) and resumed — same-config always, and with
// a different fuzzed policy/selector when the snapshot precedes the first
// policy decision. Every resumed run must be bit-identical to the
// corresponding straight run.
func FuzzSnapshot(f *testing.F) {
	f.Add([]byte{}, uint64(0))                                   // minimal program, divergence mode
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, uint64(0))      // short mixed, divergence mode
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, uint64(50_001)) // short mixed, early fixed cycle
	seed := make([]byte, 160)
	for i := range seed {
		seed[i] = byte(i*37 + 11)
	}
	f.Add(seed, uint64(0))       // long multi-nest, divergence mode
	f.Add(seed, uint64(300_003)) // long multi-nest, mid-run fixed cycle
	hot := make([]byte, 200)
	for i := range hot {
		hot[i] = 0xff
	}
	f.Add(hot, uint64(999_999)) // hottest program, late fixed cycle

	f.Fuzz(func(t *testing.T, data []byte, captureMin uint64) {
		p, err := progfuzz.Generate(data)
		if err != nil {
			t.Fatalf("generate: %v", err)
		}

		cfg := harness.DefaultRunConfig()
		cfg.MaxInsts = 4_000_000
		cfg.ADORE = true
		cfg.Core = fuzzCore()
		cfg.Core.Policy, cfg.Core.Selector = progfuzz.PolicyFromInput(data)

		straight, err := harness.RunImage(p.Image, cfg)
		if err != nil {
			t.Fatalf("straight: %v", err)
		}

		ctx := context.Background()
		if captureMin%2 == 0 {
			// Divergence mode: freeze at the first policy decision, then
			// fork with a different fuzzed policy. Only sound when the
			// snapshot precedes every policy decision (Diverged, or a run
			// that never reached one).
			probe, snap, err := harness.RunForkProbeImage(ctx, p.Image, cfg, harness.ForkDivergence)
			if err != nil {
				t.Fatalf("probe: %v", err)
			}
			sameRun(t, "probe", straight, probe)
			if snap == nil {
				return // no snapshot-worthy boundary; nothing to resume
			}
			resumed, err := harness.RunForkedImage(ctx, p.Image, cfg, snap)
			if err != nil {
				t.Fatalf("same-config resume: %v", err)
			}
			sameRun(t, "same-config resume", straight, resumed)

			alt := cfg
			alt.Core.Policy, alt.Core.Selector = progfuzz.PolicyFromInput(append(data, 1))
			if alt.Core.Policy == cfg.Core.Policy && alt.Core.Selector == cfg.Core.Selector {
				return
			}
			altStraight, err := harness.RunImage(p.Image, alt)
			if err != nil {
				t.Fatalf("alt straight: %v", err)
			}
			altForked, err := harness.RunForkedImage(ctx, p.Image, alt, snap)
			if err != nil {
				t.Fatalf("alt fork: %v", err)
			}
			sameRun(t, "cross-policy fork", altStraight, altForked)
		} else {
			// Fixed-cycle mode: snapshot at the first eligible boundary at
			// or after a fuzzed mid-run cycle — possibly past policy
			// decisions, so only the same-config resume must reproduce the
			// straight run (the snapshot then includes the patched code).
			probe, snap, err := harness.RunForkProbeImage(ctx, p.Image, cfg, captureMin%1_500_000)
			if err != nil {
				t.Fatalf("probe: %v", err)
			}
			sameRun(t, "probe", straight, probe)
			if snap == nil {
				return
			}
			resumed, err := harness.RunForkedImage(ctx, p.Image, cfg, snap)
			if err != nil {
				t.Fatalf("mid-run resume: %v", err)
			}
			sameRun(t, "mid-run resume", straight, resumed)
		}
	})
}
