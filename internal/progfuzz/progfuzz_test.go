package progfuzz

import (
	"math/rand"
	"testing"

	"repro/internal/oracle"
	"repro/internal/program"
	"repro/internal/verify"
)

// TestGeneratedProgramsAreLegal sweeps many random inputs and asserts the
// generator's contract: every program builds, passes the static verifier
// with zero findings (under the reservation discipline), and halts on the
// reference interpreter within the instruction budget.
func TestGeneratedProgramsAreLegal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		data := make([]byte, rng.Intn(200))
		rng.Read(data)
		p, err := Generate(data)
		if err != nil {
			t.Fatalf("input %d: %v", i, err)
		}
		if fs := verify.CheckImage(p.Image, verify.Options{ReservedRegsUnused: true}); len(fs) != 0 {
			t.Fatalf("input %d: verifier findings on generated program:\n%v\nlisting:\n%s",
				i, fs, program.Listing(p.Image.Code))
		}
		m, err := oracle.FromImage(p.Image)
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.Run(4_000_000)
		if err != nil {
			t.Fatalf("input %d: %v\nlisting:\n%s", i, err, program.Listing(p.Image.Code))
		}
		if !m.Halted() {
			t.Fatalf("input %d: did not halt within budget (retired %d, repeat %d nests %d ops %d)",
				i, st.Retired, p.Repeat, p.Nests, p.Ops)
		}
	}
}

// TestGenerateDeterministic: the same bytes must produce the same program
// and the same initial memory — generation is a pure function of the input.
func TestGenerateDeterministic(t *testing.T) {
	data := make([]byte, 96)
	rng := rand.New(rand.NewSource(7))
	rng.Read(data)

	a, err := Generate(data)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(data)
	if err != nil {
		t.Fatal(err)
	}
	if program.Listing(a.Image.Code) != program.Listing(b.Image.Code) {
		t.Error("same input produced different code")
	}
	if a.Seed != b.Seed {
		t.Errorf("seeds differ: %#x vs %#x", a.Seed, b.Seed)
	}
}

// TestGenerateEmptyInput: zero bytes of entropy still yield a legal,
// halting program (the reader pads with zeros).
func TestGenerateEmptyInput(t *testing.T) {
	p, err := Generate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if fs := verify.CheckImage(p.Image, verify.Options{ReservedRegsUnused: true}); len(fs) != 0 {
		t.Fatalf("verifier findings: %v", fs)
	}
	m, err := oracle.FromImage(p.Image)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(4_000_000); err != nil || !m.Halted() {
		t.Fatalf("empty-input program did not halt cleanly: %v", err)
	}
}

// TestShapeBudget sweeps many large random inputs and requires every
// program to retire under half the differential harness's 4M budget — so
// even shapes the sweep missed have margin before a fuzz run would
// spuriously hit the cap instead of halting.
func TestShapeBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var worst uint64
	for i := 0; i < 300; i++ {
		data := make([]byte, 512)
		rng.Read(data)
		p, err := Generate(data)
		if err != nil {
			t.Fatal(err)
		}
		m, err := oracle.FromImage(p.Image)
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.Run(4_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if !m.Halted() || st.Retired > 2_000_000 {
			t.Fatalf("input %d: retired %d (halted %v) — too close to the 4M differential cap (repeat %d nests %d ops %d)",
				i, st.Retired, m.Halted(), p.Repeat, p.Nests, p.Ops)
		}
		if st.Retired > worst {
			worst = st.Retired
		}
	}
	t.Logf("worst retired across sweep: %d", worst)
}
