package progfuzz_test

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/progfuzz"
	"repro/internal/program"
)

// flattenBundles lists the non-nop instructions of a bundle sequence in
// execution order — the common flattened shape of the runtime slicer and
// the static classifier.
func flattenBundles(bs []isa.Bundle) []isa.Inst {
	var out []isa.Inst
	for _, b := range bs {
		for _, in := range b.Slots {
			if in.Op != isa.OpNop {
				out = append(out, in)
			}
		}
	}
	return out
}

// FuzzAnalysis is the static-analysis robustness and differential target:
// bytes → a constrained random program → AnalyzeSegment must not panic,
// its result must be identical after an image encode/decode round trip
// (decoding preserves bundle order, so analysis must too), and on every
// simple loop the static classifier must agree with the runtime slicer
// run on a trace made of the same bundles.
func FuzzAnalysis(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	seed := make([]byte, 160)
	for i := range seed {
		seed[i] = byte(i*37 + 11)
	}
	f.Add(seed)
	hot := make([]byte, 200)
	for i := range hot {
		hot[i] = 0xff
	}
	f.Add(hot)

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := progfuzz.Generate(data)
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		res := analysis.AnalyzeSegment(p.Image.Code) // must not panic

		// Stability under a bundle-order-preserving re-decode: the same
		// machine code must yield the same reports and findings.
		var buf bytes.Buffer
		if err := program.EncodeImage(&buf, p.Image); err != nil {
			t.Fatalf("encode: %v", err)
		}
		img2, err := program.DecodeImage(&buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		res2 := analysis.AnalyzeSegment(img2.Code)
		if !reflect.DeepEqual(res.Reports, res2.Reports) {
			t.Fatalf("loop reports changed across encode/decode:\n%+v\nvs\n%+v", res.Reports, res2.Reports)
		}
		if !reflect.DeepEqual(res.Findings, res2.Findings) {
			t.Fatalf("findings changed across encode/decode:\n%v\nvs\n%v", res.Findings, res2.Findings)
		}

		// Differential: on every simple loop, run the runtime slicer over
		// a trace built from the loop's own bundles and compare verdicts
		// for every load.
		seg := p.Image.Code
		c := res.CFG
		for _, l := range res.Loops {
			body, ok := c.LoopBody(l)
			if !ok {
				continue
			}
			// Collect the loop's bundles in straightened order; a bundle
			// split across non-adjacent blocks has no single trace shape.
			var tr core.Trace
			tr.IsLoop = true
			last, dup := -1, false
			seen := map[int]bool{}
			for i := 0; i < body.Len(); i++ {
				_, pos := body.At(i)
				bi := pos / analysis.SlotsPerBundle
				if bi == last {
					continue
				}
				if seen[bi] {
					dup = true
					break
				}
				seen[bi] = true
				last = bi
				tr.Bundles = append(tr.Bundles, seg.Bundles[bi])
				tr.Orig = append(tr.Orig, seg.Base+uint64(bi)*isa.BundleBytes)
			}
			if dup || len(tr.Bundles) == 0 {
				continue
			}
			tr.Start = tr.Orig[0]
			tr.BackEdge = len(tr.Bundles) - 1
			// Only compare when the trace flattens to exactly the body
			// (an out-of-loop slot sharing a bundle would diverge).
			flat := flattenBundles(tr.Bundles)
			if len(flat) != body.Len() {
				continue
			}
			match := true
			for i := range flat {
				in, _ := body.At(i)
				if in != flat[i] {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			for _, li := range body.LoadIndices() {
				_, pos := body.At(li)
				bi := pos / analysis.SlotsPerBundle
				ti := -1
				for i, a := range tr.Orig {
					if a == seg.Base+uint64(bi)*isa.BundleBytes {
						ti = i
					}
				}
				an, ok := core.ClassifyLoad(&tr, ti, pos%analysis.SlotsPerBundle)
				if !ok {
					t.Fatalf("slicer did not find load at body index %d (pos %d)", li, pos)
				}
				lc := body.Classify(li)
				agree := false
				switch an.Pattern {
				case core.PatternDirect:
					agree = lc.Verdict == analysis.VerdictStrided && lc.Stride == an.Stride
				case core.PatternIndirect:
					agree = lc.Verdict == analysis.VerdictIndirect &&
						lc.FeederStride == an.FeederStride && lc.FeederAddrReg == an.FeederAddrReg
				case core.PatternPointer:
					agree = lc.Verdict == analysis.VerdictPointer && lc.InductionReg == an.InductionReg
				default:
					agree = lc.Verdict == analysis.VerdictUnknown
				}
				if !agree {
					t.Errorf("loop @%#x load pos %d: runtime slicer %v (stride %d) vs static %v (stride %d)",
						tr.Start, pos, an.Pattern, an.Stride, lc.Verdict, lc.Stride)
				}
			}
		}
	})
}
