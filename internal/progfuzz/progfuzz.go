// Package progfuzz generates constrained random programs for differential
// testing: every output is a template-legal, verifier-clean image that
// always halts within a bounded instruction count, yet exercises the
// machine's interesting corners — counted loop nests, post-increment
// addressing, predication, strided and pointer-chasing access patterns,
// floating-point dataflow, and call/return linkage.
//
// Generation is a pure function of the input bytes (an exhausted byte
// stream reads as zeros), which makes it a natural `go test -fuzz` target:
// the fuzzer mutates bytes, the generator maps them onto the grammar, and
// internal/harness/differential.go checks the oracle and the machine agree
// on the result. The grammar deliberately stays inside the legality rules
// of internal/verify — the same rules ADORE's own patch verifier enforces —
// so a generated program is also a valid subject for runtime patching.
package progfuzz

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/memsys"
	"repro/internal/program"
)

// Data-region layout. Code and data are separate address spaces, so these
// only need to avoid the compiler's DataBase (0x1000_0000) to keep fuzz
// programs distinguishable from workload data in dumps.
const (
	CodeBase  = 0x1000
	InBase    = 0x0200_0000 // pseudorandom input array
	InBytes   = 1 << 16
	OutBase   = 0x0210_0000 // output / scratch, stores land here
	ChainBase = 0x0220_0000 // circular linked list for pointer chasing
	ChainLen  = 256         // nodes
	NodeBytes = 64          // one cache line per node; next pointer at +0, payload at +8
)

// Register discipline. Everything stays clear of the runtime-reserved set
// (r27-r30, p6) so generated programs verify with ReservedRegsUnused and
// ADORE may patch them.
const (
	curIn    isa.Reg = 11 // input cursor
	curOut   isa.Reg = 12 // output cursor
	curFP    isa.Reg = 13 // FP stream cursor
	curPf    isa.Reg = 14 // lfetch cursor
	curChase isa.Reg = 15 // pointer-chase cursor

	cntRepeat isa.Reg = 20 // whole-program repeat counter
	cntOuter  isa.Reg = 21 // outer loop counter
	cntInner  isa.Reg = 22 // inner loop counter

	tmpFirst isa.Reg = 32 // integer temporaries r32..r47
	tmpCount         = 16

	fpFirst isa.FReg = 8 // floating temporaries f8..f15
	fpCount          = 8

	predA     isa.PReg = 8 // body compare pair
	predB     isa.PReg = 9
	predC     isa.PReg = 10 // alternate body pair: consecutive compares
	predD     isa.PReg = 11 // rotate pairs so no bundle holds two writes
	predLoop  isa.PReg = 16 // inner back edge pair
	predLoopN isa.PReg = 17
	predOut   isa.PReg = 18 // outer back edge pair
	predOutN  isa.PReg = 19
	predRep   isa.PReg = 20 // repeat back edge pair
	predRepN  isa.PReg = 21
)

// Bounds. The worst-case retired-slot count (every knob at maximum, every
// bundle nop-padded) stays well under the 2M-instruction differential cap:
// 24 repeats × 3 nests × 4 outer × 64 inner × ~8 ops × 3 slots ≈ 1.1M.
const (
	maxRepeat = 24
	maxNests  = 3
	maxOuter  = 4
	maxInner  = 64
	maxOps    = 8
)

// Program is one generated fuzz subject.
type Program struct {
	Image *program.Image
	Seed  uint64 // data-memory initialization seed (drawn from the input)

	// Shape, for logging and corpus minimization.
	Repeat int
	Nests  int
	Ops    int // total body operations across nests
}

// reader turns the fuzz input into an endless byte stream: exhausted input
// reads as zeros, so every prefix of a crasher is itself a valid program.
type reader struct {
	data []byte
	off  int
}

func (r *reader) byte() byte {
	if r.off >= len(r.data) {
		return 0
	}
	b := r.data[r.off]
	r.off++
	return b
}

// rng returns a value in [0, n).
func (r *reader) rng(n int) int { return int(r.byte()) % n }

// rng1 returns a value in [1, n].
func (r *reader) rng1(n int) int { return 1 + r.rng(n) }

func (r *reader) bit() bool { return r.byte()&1 != 0 }

func (r *reader) u64() uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(r.byte())
	}
	return v
}

// gen carries generation state.
type gen struct {
	r       *reader
	b       *asm.Builder
	prog    *Program
	label   int  // unique label counter
	cmpFlip bool // body-compare predicate-pair rotation
}

func (g *gen) fresh(prefix string) string {
	g.label++
	return fmt.Sprintf("%s%d", prefix, g.label)
}

// temp picks an integer temporary.
func (g *gen) temp() isa.Reg { return tmpFirst + isa.Reg(g.r.rng(tmpCount)) }

// ftemp picks a floating temporary.
func (g *gen) ftemp() isa.FReg { return fpFirst + isa.FReg(g.r.rng(fpCount)) }

// qp picks a qualifying predicate for a body op: usually none, sometimes
// one of the body compare pair. Both engines treat a false predicate as a
// retired no-op, so predication is always safe to sprinkle.
func (g *gen) qp() isa.PReg {
	switch g.r.rng(4) {
	case 0:
		return predA
	case 1:
		return predB
	default:
		return 0
	}
}

// Generate maps data onto the program grammar. The result always halts,
// always passes the static verifier, and touches memory only inside the
// fuzz data regions.
func Generate(data []byte) (*Program, error) {
	g := &gen{r: &reader{data: data}, b: asm.New(CodeBase), prog: &Program{}}
	g.prog.Seed = g.r.u64()

	b := g.b
	// Cursor initialization: small 8-aligned offsets into each region.
	b.MovI(curIn, InBase+int64(g.r.rng(256))*8)
	b.MovI(curOut, OutBase+int64(g.r.rng(256))*8)
	b.MovI(curFP, InBase+int64(g.r.rng(256))*8)
	b.MovI(curPf, InBase+int64(g.r.rng(256))*8)
	b.MovI(curChase, ChainBase+int64(g.r.rng(ChainLen))*NodeBytes)
	// Seed two temporaries and the body predicates so predicated ops have
	// defined behaviour from the first iteration.
	b.MovI(g.temp(), int64(g.r.byte()))
	b.MovI(g.temp(), int64(g.r.byte()))
	b.CmpI(isa.CmpLt, predA, predB, int64(g.r.rng(128)), tmpFirst)

	g.prog.Repeat = g.r.rng1(maxRepeat)
	g.prog.Nests = g.r.rng1(maxNests)

	hasCall := g.r.bit()

	b.MovI(cntRepeat, int64(g.prog.Repeat))
	repTop := g.fresh("rep")
	b.Label(repTop)

	for n := 0; n < g.prog.Nests; n++ {
		g.nest()
	}

	if hasCall {
		b.BrCall(1, "sub")
	}

	b.AddI(cntRepeat, -1, cntRepeat)
	b.CmpI(isa.CmpLt, predRep, predRepN, 0, cntRepeat)
	b.BrCond(predRep, repTop)
	b.Halt()

	if hasCall {
		// A tiny leaf routine: a little ALU noise, then return. Placed
		// after halt so straight-line execution can't fall into it.
		b.Label("sub")
		t := g.temp()
		b.AddI(t, int64(g.r.byte()), t)
		b.Emit(isa.Inst{Op: isa.OpXor, R1: g.temp(), R2: t, R3: tmpFirst})
		b.BrRet(1)
	}

	res, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("progfuzz: %w", err)
	}
	seg := &program.Segment{Name: "fuzz", Base: res.Base, Bundles: res.Bundles}
	img := program.NewImage("fuzz", seg, res.Base)
	seed := g.prog.Seed
	img.InitData = func(m *memsys.Memory) { InitData(m, seed) }
	g.prog.Image = img
	return g.prog, nil
}

// nest emits one loop nest: an optional counted outer loop around a counted
// inner loop whose body is drawn from the operation menu.
func (g *gen) nest() {
	b := g.b
	outerTrip := 0
	if g.r.bit() {
		outerTrip = g.r.rng1(maxOuter)
	}
	innerTrip := g.r.rng1(maxInner)
	nOps := g.r.rng1(maxOps)
	g.prog.Ops += nOps

	var outTop string
	if outerTrip > 0 {
		b.MovI(cntOuter, int64(outerTrip))
		outTop = g.fresh("outer")
		b.Label(outTop)
	}
	b.MovI(cntInner, int64(innerTrip))
	inTop := g.fresh("inner")
	b.Label(inTop)

	for i := 0; i < nOps; i++ {
		g.bodyOp()
	}

	b.AddI(cntInner, -1, cntInner)
	b.CmpI(isa.CmpLt, predLoop, predLoopN, 0, cntInner)
	b.BrCond(predLoop, inTop)

	if outerTrip > 0 {
		b.AddI(cntOuter, -1, cntOuter)
		b.CmpI(isa.CmpLt, predOut, predOutN, 0, cntOuter)
		b.BrCond(predOut, outTop)
	}
}

// strides a memory op may advance its cursor by.
var strides = [...]int64{8, 16, 24, 32, 64}

// bodyOp emits one operation from the menu.
func (g *gen) bodyOp() {
	b := g.b
	switch g.r.rng(10) {
	case 0: // strided load, optional predication, post-increment
		b.Emit(isa.Inst{Op: isa.OpLd8, QP: g.qp(), R1: g.temp(), R3: curIn,
			PostInc: strides[g.r.rng(len(strides))]})
	case 1: // strided store of a temporary
		b.Emit(isa.Inst{Op: isa.OpSt8, QP: g.qp(), R2: g.temp(), R3: curOut, PostInc: 8})
	case 2: // pointer chase: read payload, then follow the next pointer
		t := g.temp()
		b.AddI(t, 8, curChase)
		b.Emit(isa.Inst{Op: isa.OpLd8, R1: g.temp(), R3: t})
		b.Emit(isa.Inst{Op: isa.OpLd8, R1: curChase, R3: curChase})
	case 3: // ALU
		ops := [...]isa.Op{isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor}
		b.Emit(isa.Inst{Op: ops[g.r.rng(len(ops))], QP: g.qp(),
			R1: g.temp(), R2: g.temp(), R3: g.temp()})
	case 4: // shladd / shifts
		if g.r.bit() {
			b.ShlAdd(g.temp(), g.temp(), int64(g.r.rng(4)), g.temp())
		} else {
			b.Emit(isa.Inst{Op: isa.OpShr, R1: g.temp(), R2: g.temp(), Imm: int64(g.r.rng(8))})
		}
	case 5: // compare feeding the body predicates, then a predicated op.
		// Alternate between two predicate pairs: two of these compares can
		// share a bundle, and a repeated pair would be a pred-WAW finding.
		p1, p2 := predA, predB
		if g.cmpFlip = !g.cmpFlip; g.cmpFlip {
			p1, p2 = predC, predD
		}
		b.Cmp(isa.CmpRel(g.r.rng(8)), p1, p2, g.temp(), g.temp())
		b.Emit(isa.Inst{Op: isa.OpAdd, QP: p1, R1: g.temp(), R2: g.temp(), R3: g.temp()})
	case 6: // FP stream: load, fma against f1 (=1.0), store
		f := g.ftemp()
		b.LdF(f, curFP, 8)
		b.Fma(g.ftemp(), f, 1, g.ftemp())
		if g.r.bit() {
			b.StF(curOut, g.ftemp(), 8)
		}
	case 7: // software prefetch
		b.Lfetch(curPf, strides[g.r.rng(len(strides))])
	case 8: // speculative load
		b.Emit(isa.Inst{Op: isa.OpLdS, QP: g.qp(), R1: g.temp(), R3: curIn,
			Spec: true, PostInc: 8})
	case 9: // immediate / conversion traffic
		t := g.temp()
		switch g.r.rng(3) {
		case 0:
			b.MovI(t, int64(int8(g.r.byte())))
		case 1:
			b.Emit(isa.Inst{Op: isa.OpSxt4, R1: g.temp(), R3: t})
		case 2:
			b.FCvtXF(g.ftemp(), t)
		}
	}
}

// InitData fills the fuzz data regions from seed: a pseudorandom input
// array and a circular pointer chain whose traversal order is a fixed
// permutation of the nodes. Both engines initialize from the same seed, so
// memory starts bit-identical.
func InitData(m *memsys.Memory, seed uint64) {
	// splitmix64 over the input array.
	x := seed
	next := func() uint64 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for off := uint64(0); off < InBytes; off += 8 {
		m.Write64(InBase+off, next())
	}
	// Circular chain: node i links to node (i*stepK + 1) mod ChainLen with
	// an odd multiplier, visiting every node before repeating.
	step := next() | 1 // odd multiplier: an affine map mod ChainLen is a bijection
	for i := uint64(0); i < ChainLen; i++ {
		nextIdx := (i*step + 1) % ChainLen
		m.Write64(ChainBase+i*NodeBytes, ChainBase+nextIdx*NodeBytes)
		m.Write64(ChainBase+i*NodeBytes+8, next())
	}
}

// PolicyFromInput deterministically samples a prefetch-policy configuration
// from the fuzz input bytes: the byte sum indexes the registered policies
// plus one extra slot that turns on the runtime selector instead. Sampling
// from the input (rather than a side RNG) keeps the whole differential
// check a pure function of the corpus file, so a reproducer replays the
// exact policy that diverged, and fuzzer mutations explore policies the
// same way they explore the program grammar.
func PolicyFromInput(data []byte) (policy string, selector bool) {
	names := core.PrefetchPolicyNames()
	sum := 0
	for _, b := range data {
		sum += int(b)
	}
	k := sum % (len(names) + 1)
	if k == len(names) {
		return "", true
	}
	return names[k], false
}
