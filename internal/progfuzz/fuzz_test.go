package progfuzz_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/pmu"
	"repro/internal/progfuzz"
	"repro/internal/verify"
)

// fuzzCore returns ADORE parameters scaled for the short fuzz programs:
// aggressive sampling and polling so even a few hundred thousand cycles
// give the optimizer a chance to detect a phase and patch.
func fuzzCore() core.Config {
	cfg := core.DefaultConfig()
	cfg.Sampling = pmu.Config{SampleInterval: 2000, SSBSize: 64, DearLatencyMin: 8, HandlerCyclesPerSample: 30}
	cfg.W = 8
	cfg.PollInterval = 20_000
	cfg.StableWindows = 3
	return cfg
}

// FuzzDifferential is the generative differential target: bytes → a
// constrained random program (internal/progfuzz) → oracle vs machine, with
// and without the runtime optimizer attached. Any divergence — register
// state, memory, counters, or a patch that does not undo cleanly — fails.
func FuzzDifferential(f *testing.F) {
	// Seeds name the grammar's corners; the corpus files under
	// testdata/fuzz/FuzzDifferential extend these with found shapes.
	f.Add([]byte{})                              // minimal: zero entropy
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}) // short mixed program
	seed := make([]byte, 160)
	for i := range seed {
		seed[i] = byte(i*37 + 11)
	}
	f.Add(seed) // long multi-nest program
	hot := make([]byte, 200)
	for i := range hot {
		hot[i] = 0xff // every knob maxed: longest loops, most ops
	}
	f.Add(hot)

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := progfuzz.Generate(data)
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		if fs := verify.CheckImage(p.Image, verify.Options{ReservedRegsUnused: true}); len(fs) != 0 {
			t.Fatalf("generated program has verifier findings: %v", fs)
		}

		or, err := harness.RunOracle(p.Image, 4_000_000)
		if err != nil {
			t.Fatalf("oracle: %v", err)
		}

		plain := harness.DefaultRunConfig()
		plain.MaxInsts = 4_000_000
		rep, err := harness.DiffAgainst(or, p.Image, plain)
		if err != nil {
			t.Fatalf("plain: %v", err)
		}
		if rep.Failed() {
			t.Errorf("plain: %s", rep)
		}

		adore := harness.DefaultRunConfig()
		adore.MaxInsts = 4_000_000
		adore.ADORE = true
		adore.Core = fuzzCore()
		// Each fuzzed program also samples a prefetch policy (or the
		// runtime selector) from its input bytes, so the differential
		// oracle covers every policy's injected code, not just the paper
		// default.
		adore.Core.Policy, adore.Core.Selector = progfuzz.PolicyFromInput(data)
		rep, err = harness.DiffAgainst(or, p.Image, adore)
		if err != nil {
			t.Fatalf("adore: %v", err)
		}
		if rep.Failed() {
			t.Errorf("adore: %s", rep)
		}
	})
}
