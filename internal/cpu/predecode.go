package cpu

import (
	"repro/internal/isa"
	"repro/internal/program"
)

// Predecoded code image: the fetch fast path of the interpreter.
//
// CodeSpace.Fetch costs a segment search (amortized by a one-entry cache)
// plus two range compares per bundle — measurable at tens of millions of
// simulated bundles per second. The CPU instead keeps one dense
// direct-indexed []isa.Bundle slab per segment, keyed by
// (addr - slab.base) / 16, and resolves the hot fetch with a single
// subtract/shift/bounds-check against the slab executed last. Segments may
// sit gigabytes apart (the trace pool lives at 0x4000_0000), so the image
// is dense per segment, not across the whole address space.
//
// Coherence contract: the slab is a copy, so every mutation of the
// underlying code must be observed. CodeSpace guarantees that all
// mutations flow through Write / WriteBundles / AddSegment, and the CPU
// subscribes a program.ChangeHook at construction, updating the affected
// slab entries in place (or adding a slab when a segment appears, as when
// ADORE allocates its trace pool mid-setup). Patch install, UnpatchAll and
// trace-pool writes therefore cost one bundle copy each, and the fetch
// path never re-validates against the code space.

// codeSlab is the predecoded form of one code segment.
type codeSlab struct {
	base    uint64 // segment base address
	bundles []isa.Bundle
	seg     *program.Segment // identity key for change notifications
}

// predecode is the CPU's code image. The slab executed last is flattened
// into curBase/curBundles so the hot fetch path is one subtract, one
// shift and one bounds check against a local slice — no pointer chase,
// and the bounds check doubles as the index check.
type predecode struct {
	slabs      []*codeSlab
	curBase    uint64
	curBundles []isa.Bundle
}

// attachCode builds the image from the code space's current segments and
// subscribes to its changes. Called once from New.
func (c *CPU) attachCode(code *program.CodeSpace) {
	if code == nil {
		return
	}
	for _, seg := range code.Segments() {
		c.pre.add(seg)
	}
	code.OnChange(c.onCodeChange)
}

// add predecodes one segment into a new slab. Runs once per segment
// registration or patch, never per fetched bundle.
//
//adore:coldpath
func (p *predecode) add(seg *program.Segment) *codeSlab {
	s := &codeSlab{
		base:    seg.Base,
		bundles: append([]isa.Bundle(nil), seg.Bundles...),
		seg:     seg,
	}
	p.slabs = append(p.slabs, s)
	return s
}

// fetch returns the predecoded bundle at bundleAddr (which must be
// 16-byte aligned), or nil if the address is unmapped. Unsigned underflow
// of addresses below the current base lands in the slow path too.
func (c *CPU) fetch(bundleAddr uint64) *isa.Bundle {
	idx := (bundleAddr - c.pre.curBase) >> 4
	if idx < uint64(len(c.pre.curBundles)) {
		return &c.pre.curBundles[idx]
	}
	return c.fetchSlow(bundleAddr)
}

// fetchSlow switches the current slab (branch into / out of the trace
// pool) or reports an unmapped fetch. The slab count is the segment count
// (two in a full ADORE machine), so a linear scan is the right structure.
func (c *CPU) fetchSlow(bundleAddr uint64) *isa.Bundle {
	for _, s := range c.pre.slabs {
		idx := (bundleAddr - s.base) >> 4
		if idx < uint64(len(s.bundles)) {
			c.pre.curBase = s.base
			c.pre.curBundles = s.bundles
			return &s.bundles[idx]
		}
	}
	return nil
}

// onCodeChange is the program.ChangeHook keeping the image coherent:
// re-copy the written bundles of a known segment, or predecode a newly
// registered one.
func (c *CPU) onCodeChange(seg *program.Segment, first, n int) {
	for _, s := range c.pre.slabs {
		if s.seg == seg {
			copy(s.bundles[first:first+n], seg.Bundles[first:first+n])
			return
		}
	}
	c.pre.add(seg)
}
