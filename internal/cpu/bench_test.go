package cpu

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

// aluLoop builds a pure-ALU counted loop (no data memory traffic): the
// interpreter's floor — fetch, dispatch, scoreboard, branch — with the
// memory model only on the instruction side.
func aluLoop(n int64) *asm.Builder {
	b := asm.New(0)
	b.MovI(5, n)
	b.Label("loop")
	b.AddI(4, 1, 4)
	b.AddI(5, -1, 5)
	b.CmpI(isa.CmpLt, 1, 2, 0, 5)
	b.BrCond(1, "loop")
	b.Halt()
	return b
}

// benchRun re-runs one prebuilt machine b.N times via Reset, reporting
// simulated MIPS.
func benchRun(b *testing.B, c *CPU, entry uint64) {
	b.Helper()
	var insts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Reset()
		c.SetPC(entry)
		st, err := c.Run(0)
		if err != nil {
			b.Fatal(err)
		}
		insts += st.Retired
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(insts)/sec/1e6, "MIPS")
	}
}

// BenchmarkStepNoHooks is the interpreter's speed-of-light measurement: a
// hot ALU loop on a machine with no poll hooks, no PMU, and no data
// accesses, so nearly every cycle is fetch + dispatch + retire.
func BenchmarkStepNoHooks(b *testing.B) {
	c, r := buildMachine(b, aluLoop(200_000), nil)
	benchRun(b, c, r.Base)
}

// BenchmarkStepLoads adds an L1-resident load per iteration: the ALU floor
// plus one data-side hierarchy access that always hits.
func BenchmarkStepLoads(b *testing.B) {
	const base, n = 0x10000, 512
	c, r := buildMachine(b, sumLoop(base, 50_000), nil)
	for i := 0; i < n; i++ {
		c.Mem.WriteN(base+uint64(i*8), 8, uint64(i))
	}
	// Wrap the cursor inside the resident window each run: Reset clears
	// registers, so rebuild is not needed, but the loop reads past the
	// initialized block; values past it read zero, which is fine for a
	// timing benchmark.
	benchRun(b, c, r.Base)
}
