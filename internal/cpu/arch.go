package cpu

import "repro/internal/isa"

// ArchState snapshots the architectural register state for differential
// comparison against the reference oracle (internal/oracle). Timing state —
// cycle counts, scoreboard ready times, issue-window counters — is
// deliberately excluded: two engines that agree architecturally may disagree
// on every one of those.
func (c *CPU) ArchState() isa.ArchState {
	return isa.ArchState{
		PC: c.pc,
		GR: c.GR,
		FR: c.FR,
		PR: c.PR,
		BR: c.BR,
	}
}
