package cpu

import (
	"reflect"
	"testing"

	"repro/internal/memsys"
)

// checkFieldCoverage is the state-exhaustiveness net for the fork engine:
// every field of the CPU (and its accounting/profiler sub-state) must be
// explicitly classified. A new field that Reset/Snapshot/Restore were not
// taught about fails the test by name.
func checkFieldCoverage(t *testing.T, typ reflect.Type, covered map[string]string) {
	t.Helper()
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		if _, ok := covered[name]; !ok {
			t.Errorf("%s has a new field %q not classified for snapshot coverage — teach Reset/Snapshot/Restore about it, then add it to this list", typ, name)
		}
	}
	for name := range covered {
		if _, ok := typ.FieldByName(name); !ok {
			t.Errorf("%s coverage list names %q, which no longer exists — prune it", typ, name)
		}
	}
}

func TestCPUSnapshotFieldCoverage(t *testing.T) {
	checkFieldCoverage(t, reflect.TypeOf(CPU{}), map[string]string{
		"cfg": "validated by Restore",

		"Code": "wired subsystem with its own snapshot (program.CodeSnapshot)",
		"Mem":  "wired subsystem with its own fork (memsys.Memory.Fork)",
		"Hier": "wired subsystem with its own snapshot (memsys.HierarchySnapshot)",
		"PMU":  "wired subsystem with its own snapshot (pmu.Snapshot)",

		"GR":            "captured",
		"FR":            "captured",
		"PR":            "captured",
		"BR":            "captured",
		"pc":            "captured",
		"halted":        "captured",
		"cycle":         "captured",
		"grReady":       "captured",
		"frReady":       "captured",
		"bundlesUsed":   "captured",
		"loadsUsed":     "captured",
		"storesUsed":    "captured",
		"fpUsed":        "captured",
		"brUsed":        "captured",
		"lastFetchLine": "captured",
		"hooks":         "schedule captured; closures validated by count+interval",
		"hookNext":      "captured",
		"acct":          "captured (acctState)",
		"prof":          "captured (profState)",
		"Stats":         "captured",

		"preHook":  "host closure, re-registered by the resuming assembly",
		"pre":      "derived from the code space, kept coherent by change hooks",
		"modelI":   "derived from cfg",
		"l1iShift": "derived from cfg",
	})
	checkFieldCoverage(t, reflect.TypeOf(accounting{}), map[string]string{
		"stack":      "captured",
		"loops":      "captured",
		"curLoop":    "captured",
		"curLo":      "captured",
		"curHi":      "captured",
		"lastSwitch": "captured",
		"img":        "structural: re-attached by the resuming assembly's SetImage",
		"curStack":   "derived: re-resolved from loops[curLoop] on restore",
	})
	checkFieldCoverage(t, reflect.TypeOf(profiler{}), map[string]string{
		"enabled":       "validated by Restore",
		"interval":      "validated by Restore",
		"samples":       "captured",
		"lastCycle":     "captured",
		"lastLoadStall": "captured",
		"lastL2Miss":    "captured",
		"lastL3Miss":    "captured",
		"lastPfUseful":  "captured",
		"lastPfLate":    "captured",
	})
}

// TestCPUSnapshotRoundTrip pins snapshot/restore at the unit level: a
// machine snapshotted mid-run, perturbed, and restored finishes with
// exactly the state and statistics of an unperturbed twin.
func TestCPUSnapshotRoundTrip(t *testing.T) {
	const base, n = 0x10000, 400
	mk := func() *CPU {
		c, r := buildMachine(t, sumLoop(base, n), nil)
		for i := 0; i < n; i++ {
			c.Mem.WriteN(base+uint64(i*8), 8, uint64(i*7))
		}
		c.AddPollHook(700, func(uint64) uint64 { return 3 })
		_ = r
		return c
	}
	ref := mk()
	refStats := run(t, ref)

	c := mk()
	var snap *Snapshot
	c.OnHookBoundary(func(now uint64) {
		if snap == nil && now > 2000 {
			snap = c.Snapshot()
		}
	})
	run(t, c)
	if snap == nil {
		t.Fatal("no hook boundary past cycle 2000")
	}
	// Perturb, then restore; the finish must match the reference exactly.
	c.GR[8] = 0xdeadbeef
	c.Reset()
	if err := c.Restore(snap); err != nil {
		t.Fatal(err)
	}
	// The hierarchy belongs to the caller; rewind it too by re-running a
	// fresh one isn't possible at the cpu layer, so compare against a twin
	// restored at the same point instead: stats must still match because
	// the snapshot captured the CPU's own counters and the replay below
	// re-runs the identical tail.
	st, err := c.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Halted() {
		t.Fatal("restored machine did not halt")
	}
	if st.Retired != refStats.Retired || c.GR[8] != ref.GR[8] {
		t.Fatalf("restored run diverged: retired %d vs %d, sum %d vs %d",
			st.Retired, refStats.Retired, c.GR[8], ref.GR[8])
	}
}

// TestCPUSnapshotRestoreValidation pins the structural error paths: a
// snapshot must refuse a machine with a different config, hook schedule,
// profiler, or accounting shape.
func TestCPUSnapshotRestoreValidation(t *testing.T) {
	c, _ := buildMachine(t, sumLoop(0x10000, 50), nil)
	c.AddPollHook(500, func(uint64) uint64 { return 0 })
	snap := c.Snapshot()

	other := DefaultConfig()
	other.IssueBundles++
	o := New(other, c.Code, memsys.NewMemory(), memsys.NewHierarchy(memsys.DefaultConfig()), nil)
	if err := o.Restore(snap); err == nil {
		t.Error("config mismatch not rejected")
	}

	noHooks, _ := buildMachine(t, sumLoop(0x10000, 50), nil)
	if err := noHooks.Restore(snap); err == nil {
		t.Error("hook-count mismatch not rejected")
	}

	wrongInterval, _ := buildMachine(t, sumLoop(0x10000, 50), nil)
	wrongInterval.AddPollHook(501, func(uint64) uint64 { return 0 })
	if err := wrongInterval.Restore(snap); err == nil {
		t.Error("hook-interval mismatch not rejected")
	}

	profiled, _ := buildMachine(t, sumLoop(0x10000, 50), nil)
	profiled.AddPollHook(500, func(uint64) uint64 { return 0 })
	profiled.EnableProfiler(101)
	if err := profiled.Restore(snap); err == nil {
		t.Error("profiler mismatch not rejected")
	}

	// Matching shape restores cleanly.
	twin, _ := buildMachine(t, sumLoop(0x10000, 50), nil)
	twin.AddPollHook(500, func(uint64) uint64 { return 0 })
	if err := twin.Restore(snap); err != nil {
		t.Errorf("matching machine rejected: %v", err)
	}
}
