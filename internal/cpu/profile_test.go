package cpu

import (
	"reflect"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/memsys"
	"repro/internal/program"
)

// profTestCPU builds a small streaming loop (cold 2 MiB load stream, so it
// has real load stalls and cache misses to attribute) and returns the
// machine, optionally with the sampler enabled.
func profTestCPU(t *testing.T, sampleEvery uint64) *CPU {
	t.Helper()
	b := asm.New(0)
	b.MovI(4, 0x100000)
	b.MovI(10, 1<<15)
	b.Label("loop")
	b.Ld(8, 2, 4, 64)
	b.Add(3, 3, 2)
	b.AddI(10, -1, 10)
	b.CmpI(isa.CmpLt, 1, 2, 0, 10)
	b.BrCond(1, "loop")
	b.Halt()
	r, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cs := program.NewCodeSpace()
	if err := cs.AddSegment(&program.Segment{Name: "m", Base: 0, Bundles: r.Bundles}); err != nil {
		t.Fatal(err)
	}
	c := New(DefaultConfig(), cs, memsys.NewMemory(), memsys.NewHierarchy(memsys.DefaultConfig()), nil)
	c.SetPC(0)
	if sampleEvery > 0 {
		c.EnableProfiler(sampleEvery)
	}
	return c
}

// TestProfilerNonPerturbing pins the charge-0 contract: enabling the
// sampler leaves every Stats field bit-identical to an unsampled run.
func TestProfilerNonPerturbing(t *testing.T) {
	plain := profTestCPU(t, 0)
	stPlain, err := plain.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	sampled := profTestCPU(t, 4093)
	stSampled, err := sampled.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if stPlain != stSampled {
		t.Fatalf("sampling perturbed the simulation:\nplain   %+v\nsampled %+v", stPlain, stSampled)
	}
	if len(sampled.ProfilePCs()) == 0 {
		t.Fatal("sampler collected nothing")
	}
}

// TestProfilerDeterminism pins that two sampled runs of the same image
// produce bit-identical profiles.
func TestProfilerDeterminism(t *testing.T) {
	run := func() (Stats, map[uint64]PCSample) {
		c := profTestCPU(t, 4093)
		st, err := c.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		return st, c.ProfileSamples()
	}
	st1, p1 := run()
	st2, p2 := run()
	if st1 != st2 {
		t.Fatalf("stats differ between identical runs:\n%+v\n%+v", st1, st2)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Fatalf("profiles differ between identical runs:\n%+v\n%+v", p1, p2)
	}
}

// TestProfilerAttribution checks the delta estimator's bookkeeping: the
// attributed totals never exceed the run totals, the shortfall is less
// than one sampling interval (the un-attributed tail after the last fire),
// and the stalling loop body owns the bulk of the attributed cycles.
func TestProfilerAttribution(t *testing.T) {
	const interval = 4093
	c := profTestCPU(t, interval)
	st, err := c.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	var tot PCSample
	for _, pc := range c.ProfilePCs() {
		s := c.ProfileSample(pc)
		tot.add(s)
	}
	if tot.Cycles > st.Cycles {
		t.Fatalf("attributed %d cycles, run took %d", tot.Cycles, st.Cycles)
	}
	if st.Cycles-tot.Cycles >= 2*interval {
		t.Fatalf("attribution tail too large: attributed %d of %d cycles", tot.Cycles, st.Cycles)
	}
	if tot.LoadStall > st.LoadStalls {
		t.Fatalf("attributed %d load-stall cycles, run had %d", tot.LoadStall, st.LoadStalls)
	}
	if tot.LoadStall == 0 {
		t.Fatal("cold-stream loop attributed no load stalls")
	}
	if tot.L3Miss == 0 {
		t.Fatal("cold 2 MiB stream attributed no L3 misses")
	}
	// The loop body spans bundles well below 0x100; everything sampled
	// should be in the image.
	for _, pc := range c.ProfilePCs() {
		if pc >= 0x200 {
			t.Fatalf("sample at %#x outside the program image", pc)
		}
	}
}

// TestProfilerReset pins that Reset clears the profile and baselines so a
// re-run reproduces the first run's profile exactly.
func TestProfilerReset(t *testing.T) {
	c := profTestCPU(t, 4093)
	if _, err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	first := c.ProfileSamples()
	c.Reset()
	c.Hier.Reset() // memory-system counters feed the delta baselines
	c.SetPC(0)
	if got := c.ProfilePCs(); got != nil {
		t.Fatalf("Reset left %d profile cells", len(got))
	}
	if _, err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, c.ProfileSamples()) {
		t.Fatal("re-run after Reset produced a different profile")
	}
}
