package cpu

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/memsys"
	"repro/internal/program"
)

// §1.3 of the paper: "On the latest Itanium 2 processor, two iterations of
// this [DAXPY] loop can be computed in one cycle (2 ldfpds, 2 stfds, 2
// fmas, which can fit in two MMF bundles). If prefetches must be generated
// for both x and y arrays, the requirement of two extra memory operations
// per iteration would exceed the 'two bundles per cycle' constraint."
//
// The test hand-packs the optimally scheduled loop (one MMF bundle per
// element, stores decoupled as a software-pipelined schedule would) and
// shows that adding the prefetch memory operations necessarily costs issue
// cycles even though all data is cache-resident.
func TestDaxpyBundleBandwidth(t *testing.T) {
	mmf := func(fload isa.FReg, fstore isa.FReg) isa.Bundle {
		// The fma reads registers loaded in a previous stage (f20/f21),
		// as the software-pipelined schedule arranges; within this
		// bundle all three ops are independent.
		return isa.Bundle{Tmpl: isa.TmplMMF, Slots: [3]isa.Inst{
			{Op: isa.OpLdF, F1: fload, R3: 4, PostInc: 8},
			{Op: isa.OpStF, F1: fstore, R3: 5, PostInc: 8},
			{Op: isa.OpFma, F1: fload + 30, F2: 20, F3: 1, F4: 21},
		}}
	}
	latch := isa.Bundle{Tmpl: isa.TmplMIB, Slots: [3]isa.Inst{
		{Op: isa.OpAddI, R1: 10, Imm: -1, R3: 10},
		{Op: isa.OpCmpI, Rel: isa.CmpLt, P1: 1, P2: 2, Imm: 0, R3: 10},
		{Op: isa.OpBrCond, QP: 1, Target: 0x40},
	}}
	lfetchBundle := isa.Bundle{Tmpl: isa.TmplMMI, Slots: [3]isa.Inst{
		{Op: isa.OpLfetch, R3: 27, PostInc: 32},
		{Op: isa.OpLfetch, R3: 28, PostInc: 32},
		isa.Nop,
	}}
	outerLatch := []isa.Bundle{
		// reset cursors, decrement outer counter, loop
		{Tmpl: isa.TmplMLX, Slots: [3]isa.Inst{isa.Nop, {Op: isa.OpMovI, R1: 4, Imm: 0x10000}, isa.Nop}},
		{Tmpl: isa.TmplMLX, Slots: [3]isa.Inst{isa.Nop, {Op: isa.OpMovI, R1: 5, Imm: 0x20000}, isa.Nop}},
		{Tmpl: isa.TmplMLX, Slots: [3]isa.Inst{isa.Nop, {Op: isa.OpMovI, R1: 10, Imm: 64}, isa.Nop}},
		{Tmpl: isa.TmplMIB, Slots: [3]isa.Inst{
			{Op: isa.OpAddI, R1: 11, Imm: -1, R3: 11},
			{Op: isa.OpCmpI, Rel: isa.CmpLt, P1: 3, P2: 4, Imm: 0, R3: 11},
			{Op: isa.OpBrCond, QP: 3, Target: 0x10},
		}},
		{Tmpl: isa.TmplBBB, Slots: [3]isa.Inst{{Op: isa.OpHalt}, isa.Nop, isa.Nop}},
	}

	build := func(prefetch bool) *CPU {
		var bundles []isa.Bundle
		// 0x00: init outer counter
		bundles = append(bundles, isa.Bundle{Tmpl: isa.TmplMLX,
			Slots: [3]isa.Inst{isa.Nop, {Op: isa.OpMovI, R1: 11, Imm: 2000}, isa.Nop}})
		// 0x10: outer head = cursor resets (first three outerLatch bundles)
		bundles = append(bundles, outerLatch[0], outerLatch[1], outerLatch[2])
		// 0x40: inner loop: 4 unrolled MMF pairs (+ optional lfetch bundles)
		bundles = append(bundles, mmf(2, 10), mmf(3, 11), mmf(5, 12), mmf(6, 13))
		if prefetch {
			bundles = append(bundles, lfetchBundle, lfetchBundle)
		}
		bundles = append(bundles, latch)
		// outer latch + halt
		bundles = append(bundles, outerLatch[3], outerLatch[4])

		cs := program.NewCodeSpace()
		if err := cs.AddSegment(&program.Segment{Name: "m", Base: 0, Bundles: bundles}); err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.ModelICache = false
		cfg.TakenBubble = 0
		c := New(cfg, cs, memsys.NewMemory(), memsys.NewHierarchy(memsys.DefaultConfig()), nil)
		c.SetPC(0)
		return c
	}

	plain := build(false)
	stPlain, err := plain.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	pf := build(true)
	stPf, err := pf.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(stPf.Cycles) / float64(stPlain.Cycles)
	if ratio < 1.10 {
		t.Fatalf("prefetch ops were free: %d vs %d cycles (ratio %.3f) — the "+
			"two-bundles-per-cycle constraint is not being modeled",
			stPf.Cycles, stPlain.Cycles, ratio)
	}
	t.Logf("DAXPY issue-bandwidth cost of always-prefetching: %d -> %d cycles (+%.0f%%)",
		stPlain.Cycles, stPf.Cycles, (ratio-1)*100)
}

// The flip side of §1.3: when the arrays do miss, the same prefetches that
// cost issue bandwidth pay for themselves — which is why prefetching wants
// miss information rather than a static always/never policy.
func TestDaxpyPrefetchWorthItOnlyWhenMissing(t *testing.T) {
	run := func(prefetch bool, elems, reps int64) uint64 {
		b := asm.New(0)
		b.MovI(11, reps)
		b.Label("outer")
		b.MovI(4, 0x100000)
		b.MovI(5, 0x900000)
		b.MovI(10, elems)
		if prefetch {
			b.MovI(27, 0x100000+512)
			b.MovI(28, 0x900000+512)
		}
		b.Label("loop")
		b.LdF(2, 4, 8)
		b.LdF(3, 5, 0)
		b.Fma(4, 2, 1, 3)
		b.StF(5, 4, 8)
		if prefetch {
			b.Lfetch(27, 8)
			b.Lfetch(28, 8)
		}
		b.AddI(10, -1, 10)
		b.CmpI(isa.CmpLt, 1, 2, 0, 10)
		b.BrCond(1, "loop")
		b.AddI(11, -1, 11)
		b.CmpI(isa.CmpLt, 3, 4, 0, 11)
		b.BrCond(3, "outer")
		b.Halt()
		r, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		cs := program.NewCodeSpace()
		if err := cs.AddSegment(&program.Segment{Name: "m", Base: 0, Bundles: r.Bundles}); err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.ModelICache = false
		c := New(cfg, cs, memsys.NewMemory(), memsys.NewHierarchy(memsys.DefaultConfig()), nil)
		c.SetPC(0)
		st, err := c.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}

	// Cold 2 MiB streams: prefetching wins big.
	coldPlain := run(false, 1<<18, 1)
	coldPf := run(true, 1<<18, 1)
	if coldPf >= coldPlain {
		t.Fatalf("prefetch did not help cold streams: %d vs %d", coldPf, coldPlain)
	}
	// Small resident arrays looped many times: after the first pass the
	// data lives in cache and prefetching buys nothing (in this loosely
	// packed loop the extra lfetch ride in otherwise wasted slots, so
	// they cost almost nothing either — the real bandwidth cost shows in
	// the hand-packed loop of TestDaxpyBundleBandwidth).
	warmPlain := run(false, 512, 200)
	warmPf := run(true, 512, 200)
	warmGain := float64(warmPlain)/float64(warmPf) - 1
	coldGain := float64(coldPlain)/float64(coldPf) - 1
	if warmGain > 0.02 {
		t.Fatalf("prefetch 'helped' resident data by %.1f%%: %d vs %d",
			warmGain*100, warmPlain, warmPf)
	}
	if coldGain < 10*max(warmGain, 0.001) {
		t.Fatalf("cold gain %.3f not decisively larger than warm gain %.3f", coldGain, warmGain)
	}
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
