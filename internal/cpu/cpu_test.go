package cpu

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/memsys"
	"repro/internal/pmu"
	"repro/internal/program"
)

// buildMachine assembles the builder's code at its base and wires a full
// machine around it.
func buildMachine(t testing.TB, b *asm.Builder, p *pmu.PMU) (*CPU, *asm.Result) {
	t.Helper()
	r, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cs := program.NewCodeSpace()
	seg := &program.Segment{Name: "main", Base: r.Base, Bundles: r.Bundles}
	if err := cs.AddSegment(seg); err != nil {
		t.Fatal(err)
	}
	mem := memsys.NewMemory()
	hier := memsys.NewHierarchy(memsys.DefaultConfig())
	c := New(DefaultConfig(), cs, mem, hier, p)
	c.SetPC(r.Base)
	return c, r
}

func run(t testing.TB, c *CPU) Stats {
	t.Helper()
	st, err := c.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Halted() {
		t.Fatal("program did not halt")
	}
	return st
}

func TestArithmeticSemantics(t *testing.T) {
	b := asm.New(0)
	b.MovI(4, 10)
	b.MovI(5, 3)
	b.Add(6, 4, 5)       // 13
	b.Sub(7, 4, 5)       // 7
	b.ShlAdd(8, 5, 2, 4) // 3<<2 + 10 = 22
	b.AddI(9, -1, 6)     // 12
	b.Shl(10, 5, 4)      // 48
	b.Shr(11, 10, 3)     // 6
	b.Halt()
	c, _ := buildMachine(t, b, nil)
	run(t, c)
	want := map[isa.Reg]uint64{6: 13, 7: 7, 8: 22, 9: 12, 10: 48, 11: 6}
	for r, v := range want {
		if c.GR[r] != v {
			t.Errorf("r%d = %d, want %d", r, c.GR[r], v)
		}
	}
}

func TestR0IsHardwiredZero(t *testing.T) {
	b := asm.New(0)
	b.MovI(0, 99)
	b.Add(4, 0, 0)
	b.Halt()
	c, _ := buildMachine(t, b, nil)
	run(t, c)
	if c.GR[0] != 0 || c.GR[4] != 0 {
		t.Fatalf("r0 = %d, r4 = %d", c.GR[0], c.GR[4])
	}
}

// sumLoop builds: sum int64 array [base, base+n*8) into r8.
func sumLoop(base uint64, n int64) *asm.Builder {
	b := asm.New(0)
	b.MovI(4, int64(base)) // cursor
	b.MovI(5, n)           // remaining
	b.MovI(8, 0)           // sum
	b.Label("loop")
	b.Ld(8, 6, 4, 8)
	b.Add(8, 8, 6)
	b.AddI(5, -1, 5)
	b.CmpI(isa.CmpLt, 1, 2, 0, 5) // p1 = 0 < r5
	b.BrCond(1, "loop")
	b.Halt()
	return b
}

func TestLoopOverMemory(t *testing.T) {
	const base, n = 0x10000, 100
	c, _ := buildMachine(t, sumLoop(base, n), nil)
	var want uint64
	for i := 0; i < n; i++ {
		c.Mem.WriteN(base+uint64(i*8), 8, uint64(i*3))
		want += uint64(i * 3)
	}
	st := run(t, c)
	if c.GR[8] != want {
		t.Fatalf("sum = %d, want %d", c.GR[8], want)
	}
	if st.Loads != n {
		t.Fatalf("loads = %d, want %d", st.Loads, n)
	}
	if st.Cycles == 0 || st.CPI() <= 0 {
		t.Fatalf("bad stats %+v", st)
	}
}

func TestPredicationSkipsEffects(t *testing.T) {
	b := asm.New(0)
	b.MovI(4, 5)
	b.CmpI(isa.CmpEq, 1, 2, 99, 4) // p1 false, p2 true
	b.Emit(isa.Inst{Op: isa.OpAddI, QP: 1, R1: 5, Imm: 111, R3: 0})
	b.Emit(isa.Inst{Op: isa.OpAddI, QP: 2, R1: 6, Imm: 222, R3: 0})
	b.Halt()
	c, _ := buildMachine(t, b, nil)
	run(t, c)
	if c.GR[5] != 0 {
		t.Fatalf("predicated-off add executed: r5 = %d", c.GR[5])
	}
	if c.GR[6] != 222 {
		t.Fatalf("predicated-on add skipped: r6 = %d", c.GR[6])
	}
}

func TestLoadUseStallVsIndependent(t *testing.T) {
	// Dependent: each load's address comes from the previous load
	// (pointer chase); independent: strided loads. Over a cold large
	// footprint, the chase must be much slower per load.
	const base = 0x100000
	chain := asm.New(0)
	chain.MovI(4, base)
	chain.MovI(5, 200)
	chain.Label("loop")
	chain.Ld(8, 4, 4, 0) // r4 = [r4]
	chain.AddI(5, -1, 5)
	chain.CmpI(isa.CmpLt, 1, 2, 0, 5)
	chain.BrCond(1, "loop")
	chain.Halt()
	c1, _ := buildMachine(t, chain, nil)
	// Build a pointer chain with 4 KB spacing (distinct lines and sets).
	addr := uint64(base)
	for i := 0; i < 201; i++ {
		next := addr + 4096
		c1.Mem.WriteN(addr, 8, next)
		addr = next
	}
	st1 := run(t, c1)

	c2, _ := buildMachine(t, sumLoop(base, 200), nil)
	st2 := run(t, c2)
	if st1.Cycles <= st2.Cycles {
		t.Fatalf("chase %d cycles <= stream %d cycles", st1.Cycles, st2.Cycles)
	}
	if st1.LoadStalls == 0 {
		t.Fatal("no load stalls recorded on pointer chase")
	}
}

func TestPrefetchingReducesCycles(t *testing.T) {
	build := func(prefetch bool) *asm.Builder {
		b := asm.New(0)
		b.MovI(4, 0x200000)
		b.MovI(5, 4096) // elements
		b.MovI(8, 0)
		if prefetch {
			b.MovI(27, 0x200000+1024) // prefetch cursor, 2 lines ahead
		}
		b.Label("loop")
		b.Ld(8, 6, 4, 8)
		if prefetch {
			b.Lfetch(27, 8)
		}
		b.Add(8, 8, 6)
		b.AddI(5, -1, 5)
		b.CmpI(isa.CmpLt, 1, 2, 0, 5)
		b.BrCond(1, "loop")
		b.Halt()
		return b
	}
	cNo, _ := buildMachine(t, build(false), nil)
	stNo := run(t, cNo)
	cPf, _ := buildMachine(t, build(true), nil)
	stPf := run(t, cPf)
	if stPf.Cycles >= stNo.Cycles {
		t.Fatalf("prefetch did not help: %d >= %d", stPf.Cycles, stNo.Cycles)
	}
	speedup := float64(stNo.Cycles) / float64(stPf.Cycles)
	if speedup < 1.2 {
		t.Fatalf("prefetch speedup only %.2fx", speedup)
	}
}

func TestIssueWidthLimitsThroughput(t *testing.T) {
	// 8 independent adds per iteration: at 6 insts/cycle the loop body
	// needs >= 2 cycles; verify cycles scale with instruction count.
	b := asm.New(0)
	b.MovI(5, 1000)
	b.Label("loop")
	for i := isa.Reg(6); i < 14; i++ {
		b.AddI(i, 1, i)
	}
	b.AddI(5, -1, 5)
	b.CmpI(isa.CmpLt, 1, 2, 0, 5)
	b.BrCond(1, "loop")
	b.Halt()
	c, _ := buildMachine(t, b, nil)
	st := run(t, c)
	// 11 instructions/iteration over >= 4 bundles -> >= 2 cycles/iter.
	if st.Cycles < 2000 {
		t.Fatalf("cycles = %d, below issue-width bound", st.Cycles)
	}
}

func TestMispredictPenalty(t *testing.T) {
	// A taken forward branch mispredicts under BTFN.
	b := asm.New(0)
	b.MovI(5, 1000)
	b.Label("loop")
	b.CmpI(isa.CmpLt, 1, 2, 0, 5)
	b.BrCond(1, "fwd") // always taken, forward: mispredicts
	b.Label("fwd")
	b.AddI(5, -1, 5)
	b.CmpI(isa.CmpLt, 3, 4, 0, 5)
	b.BrCond(3, "loop")
	b.Halt()
	c, _ := buildMachine(t, b, nil)
	st := run(t, c)
	if st.Mispredicts < 1000 {
		t.Fatalf("mispredicts = %d, want >= 1000", st.Mispredicts)
	}
}

func TestPMUSamplingAndDEAR(t *testing.T) {
	p := pmu.New(pmu.Config{SampleInterval: 50, SSBSize: 8, DearLatencyMin: 8, HandlerCyclesPerSample: 5})
	var samples []pmu.Sample
	p.SetHandler(func(s []pmu.Sample) { samples = append(samples, s...) })

	const base = 0x300000
	c, _ := buildMachine(t, sumLoop(base, 5000), p)
	p.Start(0)
	st := run(t, c)
	p.Stop()

	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	var dear, btb int
	for _, s := range samples {
		if s.DEAR.Valid {
			dear++
			if s.DEAR.Latency < 8 {
				t.Fatalf("DEAR latency %d below threshold", s.DEAR.Latency)
			}
			if s.DEAR.Addr < base || s.DEAR.Addr > base+5000*8 {
				t.Fatalf("DEAR addr %#x outside array", s.DEAR.Addr)
			}
		}
		if s.NBTB > 0 {
			btb++
		}
	}
	if dear == 0 {
		t.Fatal("no DEAR events for a streaming miss loop")
	}
	if btb == 0 {
		t.Fatal("no BTB contents")
	}
	if st.SampleCharges == 0 {
		t.Fatal("sampling overhead not charged")
	}
	// Counters in samples are accumulative and non-decreasing.
	for i := 1; i < len(samples); i++ {
		if samples[i].Cycles < samples[i-1].Cycles || samples[i].Retired < samples[i-1].Retired {
			t.Fatal("counters not monotone")
		}
	}
}

func TestPollHookFires(t *testing.T) {
	c, _ := buildMachine(t, sumLoop(0x10000, 2000), nil)
	var calls int
	var last uint64
	c.AddPollHook(500, func(now uint64) uint64 {
		calls++
		if now < last {
			t.Fatal("time went backwards")
		}
		last = now
		return 0
	})
	st := run(t, c)
	if calls == 0 {
		t.Fatal("poll hook never fired")
	}
	if uint64(calls) > st.Cycles/500+2 {
		t.Fatalf("poll hook fired %d times in %d cycles", calls, st.Cycles)
	}
}

func TestPollHookChargeAdvancesTime(t *testing.T) {
	c, _ := buildMachine(t, sumLoop(0x10000, 2000), nil)
	fired := false
	c.AddPollHook(100, func(now uint64) uint64 {
		if fired {
			return 0
		}
		fired = true
		return 10_000
	})
	st := run(t, c)
	if st.Cycles < 10_000 {
		t.Fatalf("charge not applied: %d cycles", st.Cycles)
	}
}

func TestBrCallRet(t *testing.T) {
	b := asm.New(0)
	b.MovI(4, 7)
	b.BrCall(1, "double")
	b.Mov(6, 5)
	b.Halt()
	b.Label("double")
	b.Add(5, 4, 4)
	b.BrRet(1)
	c, _ := buildMachine(t, b, nil)
	run(t, c)
	if c.GR[6] != 14 {
		t.Fatalf("r6 = %d, want 14", c.GR[6])
	}
}

func TestBrRetToZeroHalts(t *testing.T) {
	b := asm.New(0)
	b.BrRet(1) // b1 = 0: acts as program exit
	c, _ := buildMachine(t, b, nil)
	run(t, c)
}

func TestSelfModifyingCodeViaCodeSpace(t *testing.T) {
	// Patch the halt path while running: the poll hook rewrites a
	// bundle, and execution observes the change — the mechanism trace
	// patching relies on.
	b := asm.New(0)
	b.MovI(5, 100000)
	b.Label("loop")
	b.AddI(5, -1, 5)
	b.CmpI(isa.CmpLt, 1, 2, 0, 5)
	b.BrCond(1, "loop")
	b.Label("tail")
	b.MovI(9, 111) // will be patched away
	b.Halt()
	r, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cs := program.NewCodeSpace()
	seg := &program.Segment{Name: "main", Base: 0, Bundles: r.Bundles}
	if err := cs.AddSegment(seg); err != nil {
		t.Fatal(err)
	}
	pool := &program.Segment{Name: "pool", Base: 0x100000, Bundles: make([]isa.Bundle, 2)}
	if err := cs.AddSegment(pool); err != nil {
		t.Fatal(err)
	}
	// Pool: set r9 = 222 then halt.
	pb := asm.New(0x100000)
	pb.MovI(9, 222)
	pb.Halt()
	pr, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	copy(pool.Bundles, pr.Bundles)

	c := New(DefaultConfig(), cs, memsys.NewMemory(), memsys.NewHierarchy(memsys.DefaultConfig()), nil)
	tail, _ := r.AddrOf("tail")
	c.AddPollHook(1000, func(uint64) uint64 {
		_ = cs.Write(tail, isa.BranchBundle(0x100000))
		return 0
	})
	c.SetPC(0)
	run(t, c)
	if c.GR[9] != 222 {
		t.Fatalf("r9 = %d, want 222 (patched path)", c.GR[9])
	}
}

func TestICacheStallsAccumulate(t *testing.T) {
	c, _ := buildMachine(t, sumLoop(0x10000, 10), nil)
	st := run(t, c)
	if st.ICacheStalls == 0 {
		t.Fatal("cold I-cache produced no stalls")
	}
}
