package cpu

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/asm"
	"repro/internal/isa"
)

func TestLogicalAndShiftSemantics(t *testing.T) {
	b := asm.New(0)
	b.MovI(4, 0b1100)
	b.MovI(5, 0b1010)
	b.Emit(isa.Inst{Op: isa.OpAnd, R1: 6, R2: 4, R3: 5})
	b.Emit(isa.Inst{Op: isa.OpOr, R1: 7, R2: 4, R3: 5})
	b.Emit(isa.Inst{Op: isa.OpXor, R1: 8, R2: 4, R3: 5})
	b.Emit(isa.Inst{Op: isa.OpSxt4, R1: 9, R3: 10})
	b.Emit(isa.Inst{Op: isa.OpZxt4, R1: 11, R3: 10})
	b.Halt()
	c, _ := buildMachine(t, b, nil)
	c.GR[10] = 0xffff_ffff_8000_0001 // only low 32 bits matter
	st, err := c.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	_ = st
	if c.GR[6] != 0b1000 || c.GR[7] != 0b1110 || c.GR[8] != 0b0110 {
		t.Fatalf("and/or/xor = %b %b %b", c.GR[6], c.GR[7], c.GR[8])
	}
	if c.GR[9] != 0xffff_ffff_8000_0001 {
		t.Fatalf("sxt4 = %#x", c.GR[9])
	}
	if c.GR[11] != 0x8000_0001 {
		t.Fatalf("zxt4 = %#x", c.GR[11])
	}
}

func TestFloatingPointSemantics(t *testing.T) {
	b := asm.New(0)
	b.MovI(4, 3)
	b.FCvtXF(2, 4)    // f2 = 3.0
	b.FAdd(3, 2, 1)   // f3 = 4.0 (f1 == 1.0)
	b.FMul(4, 3, 2)   // f4 = 12.0
	b.FSub(5, 4, 2)   // f5 = 9.0
	b.Fma(6, 2, 3, 5) // f6 = 3*4+9 = 21
	b.Emit(isa.Inst{Op: isa.OpFNeg, F1: 7, F2: 6})
	b.FCvtFX(5, 6) // r5 = 21
	b.Halt()
	c, _ := buildMachine(t, b, nil)
	if _, err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if c.FR[6] != 21 || c.FR[7] != -21 || c.GR[5] != 21 {
		t.Fatalf("fp chain: f6=%v f7=%v r5=%d", c.FR[6], c.FR[7], c.GR[5])
	}
	// f0 and f1 are hardwired.
	if c.FR[0] != 0 || c.FR[1] != 1 {
		t.Fatalf("f0/f1 = %v/%v", c.FR[0], c.FR[1])
	}
}

func TestGetfSetfRoundTrip(t *testing.T) {
	b := asm.New(0)
	b.MovI(4, int64(math.Float64bits(2.5)))
	b.SetF(2, 4)
	b.GetF(5, 2)
	b.Halt()
	c, _ := buildMachine(t, b, nil)
	if _, err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if c.FR[2] != 2.5 {
		t.Fatalf("setf.sig: f2 = %v", c.FR[2])
	}
	if c.GR[5] != math.Float64bits(2.5) {
		t.Fatalf("getf.sig: r5 = %#x", c.GR[5])
	}
}

func TestCompareRelations(t *testing.T) {
	f := func(a, b int64) bool {
		checks := []struct {
			rel  isa.CmpRel
			want bool
		}{
			{isa.CmpEq, a == b},
			{isa.CmpNe, a != b},
			{isa.CmpLt, a < b},
			{isa.CmpLe, a <= b},
			{isa.CmpGt, a > b},
			{isa.CmpGe, a >= b},
			{isa.CmpLtU, uint64(a) < uint64(b)},
			{isa.CmpGeU, uint64(a) >= uint64(b)},
		}
		for _, c := range checks {
			if compare(c.rel, uint64(a), uint64(b)) != c.want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSubByteMemoryOps(t *testing.T) {
	b := asm.New(0)
	b.MovI(4, 0x10000)
	b.MovI(5, 0x1122334455667788)
	b.St(8, 4, 5, 0)
	b.Ld(1, 6, 4, 0)
	b.Ld(2, 7, 4, 0)
	b.Ld(4, 8, 4, 0)
	b.Halt()
	c, _ := buildMachine(t, b, nil)
	if _, err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if c.GR[6] != 0x88 || c.GR[7] != 0x7788 || c.GR[8] != 0x55667788 {
		t.Fatalf("ld1/2/4 = %#x %#x %#x", c.GR[6], c.GR[7], c.GR[8])
	}
}

func TestPostIncrementOrdering(t *testing.T) {
	// The access uses the pre-increment address; the register is updated
	// afterwards.
	b := asm.New(0)
	b.MovI(4, 0x10000)
	b.Ld(8, 5, 4, 8)
	b.Ld(8, 6, 4, 8)
	b.Halt()
	c, _ := buildMachine(t, b, nil)
	c.Mem.Write64(0x10000, 111)
	c.Mem.Write64(0x10008, 222)
	if _, err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if c.GR[5] != 111 || c.GR[6] != 222 || c.GR[4] != 0x10010 {
		t.Fatalf("post-inc: r5=%d r6=%d r4=%#x", c.GR[5], c.GR[6], c.GR[4])
	}
}

func TestSpeculativeLoadBehavesLikeLoad(t *testing.T) {
	b := asm.New(0)
	b.MovI(4, 0x10000)
	b.LdS(5, 4, 0)
	// Speculative load of an unmapped address returns zero, no fault.
	b.MovI(6, 0xdead0000)
	b.LdS(7, 6, 0)
	b.Halt()
	c, _ := buildMachine(t, b, nil)
	c.Mem.Write64(0x10000, 42)
	if _, err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if c.GR[5] != 42 || c.GR[7] != 0 {
		t.Fatalf("ld.s: r5=%d r7=%d", c.GR[5], c.GR[7])
	}
}

func TestLfetchHasNoArchitecturalEffect(t *testing.T) {
	b := asm.New(0)
	b.MovI(4, 0x10000)
	b.Lfetch(4, 64)
	b.Halt()
	c, _ := buildMachine(t, b, nil)
	if _, err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if c.GR[4] != 0x10040 {
		t.Fatalf("lfetch post-inc: r4=%#x", c.GR[4])
	}
	if c.Stats.Prefetches != 1 {
		t.Fatalf("prefetches = %d", c.Stats.Prefetches)
	}
}

func TestStoreLoadForwardThroughMemory(t *testing.T) {
	// Values written by stores are immediately visible to loads
	// (sequential semantics; no store buffer reordering).
	b := asm.New(0)
	b.MovI(4, 0x10000)
	b.MovI(5, 77)
	b.St(8, 4, 5, 0)
	b.Ld(8, 6, 4, 0)
	b.Halt()
	c, _ := buildMachine(t, b, nil)
	if _, err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if c.GR[6] != 77 {
		t.Fatalf("store-load = %d", c.GR[6])
	}
}

func TestMaxInstructionBudgetStopsRun(t *testing.T) {
	b := asm.New(0)
	b.Label("forever")
	b.AddI(4, 1, 4)
	b.Br("forever")
	c, _ := buildMachine(t, b, nil)
	st, err := c.Run(10_000)
	if err != nil {
		t.Fatal(err)
	}
	if c.Halted() {
		t.Fatal("infinite loop halted")
	}
	if st.Retired < 10_000 || st.Retired > 10_010 {
		t.Fatalf("retired = %d", st.Retired)
	}
}

func TestFetchFromUnmappedAddressErrors(t *testing.T) {
	b := asm.New(0)
	b.Br("off")
	b.Label("off")
	r, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Point the branch somewhere unmapped.
	r.Bundles[0].Slots[len(r.Bundles[0].Slots)-1].Target = 0x999000
	c, _ := buildMachine(t, asm.New(0x2000), nil)
	// Replace code space with the broken program.
	_ = c
	b2 := asm.New(0)
	b2.Emit(isa.Inst{Op: isa.OpBr, Target: 0x999000})
	c2, _ := buildMachine(t, b2, nil)
	if _, err := c2.Run(0); err == nil {
		t.Fatal("unmapped fetch did not error")
	}
}

func TestQualifyingPredicateOnBranchNotTaken(t *testing.T) {
	b := asm.New(0)
	b.CmpI(isa.CmpEq, 1, 2, 5, 0) // p1 = (5 == r0=0) = false
	b.BrCond(1, "skip")
	b.MovI(4, 1)
	b.Label("skip")
	b.MovI(5, 2)
	b.Halt()
	c, _ := buildMachine(t, b, nil)
	if _, err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if c.GR[4] != 1 || c.GR[5] != 2 {
		t.Fatalf("false-predicated branch taken: r4=%d r5=%d", c.GR[4], c.GR[5])
	}
}
