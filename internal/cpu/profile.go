package cpu

import (
	"sort"

	"repro/internal/isa"
)

// Simulated-execution profiler: a cycle-sampling poll hook that attributes
// elapsed simulated cycles — and the memory-system events behind them — to
// the bundle being fetched when the sampler fires. It piggybacks on the
// existing next-event hook scheduler, so with the profiler off (the
// default) the run loop carries no extra work at all, and with it on the
// per-bundle cost is the one hookNext compare every run already pays.
//
// Attribution is by delta, not by sample count: each fire charges the
// cycles elapsed since the previous fire (and the deltas of the
// load-stall, L2/L3-miss and prefetch-usefulness counters over the same
// span) to the current fetch bundle. On an in-order core whose clock
// advances in bulk at stall points this is the statistical estimator that
// converges on the true per-PC cost; counting fires would not, because the
// catch-up scheduling in runHooks makes fire counts non-proportional to
// cycles whenever one bundle stalls past several intervals.
//
// The hook returns charge 0, so enabling the profiler cannot move the
// simulated clock, the hook schedule of any co-registered controller, or
// any Stats field — sampled and unsampled runs are bit-identical in every
// architectural and timing observable (pinned by TestProfilerNonPerturbing).

// PCSample is the profile cell of one bundle address: how often the
// sampler observed fetch there and the event deltas charged to it.
type PCSample struct {
	Samples   uint64 // sampler fires observing this bundle
	Cycles    uint64 // simulated cycles attributed
	LoadStall uint64 // scoreboard load-stall cycles attributed
	L2Miss    uint64 // L2 data misses attributed
	L3Miss    uint64 // L3 misses attributed
	PfUseful  uint64 // prefetched lines first-used in the span
	PfLate    uint64 // prefetches that arrived late in the span
}

// add accumulates o into s (merge path for aggregation).
func (s *PCSample) add(o PCSample) {
	s.Samples += o.Samples
	s.Cycles += o.Cycles
	s.LoadStall += o.LoadStall
	s.L2Miss += o.L2Miss
	s.L3Miss += o.L3Miss
	s.PfUseful += o.PfUseful
	s.PfLate += o.PfLate
}

// profiler is the CPU's sampling state. Inactive (and cost-free) until
// EnableProfiler registers the hook.
type profiler struct {
	enabled  bool
	interval uint64
	samples  map[uint64]*PCSample

	// Counter values at the previous fire; the attribution deltas are
	// computed against these.
	lastCycle     uint64
	lastLoadStall uint64
	lastL2Miss    uint64
	lastL3Miss    uint64
	lastPfUseful  uint64
	lastPfLate    uint64
}

// EnableProfiler registers the cycle sampler to fire every interval cycles
// (at bundle boundaries, like every poll hook). Call once during setup,
// before the run loop; a second call replaces the sampling state but would
// stack a second hook, so it panics instead. Intervals with small factors
// in common with loop trip cycles alias harmonically; callers should
// prefer a prime (the CLI default is 4093).
//
//adore:coldpath
func (c *CPU) EnableProfiler(interval uint64) {
	if interval == 0 {
		panic("cpu: profiler interval must be positive")
	}
	if c.prof.enabled {
		panic("cpu: profiler already enabled")
	}
	c.prof.enabled = true
	c.prof.interval = interval
	c.prof.samples = make(map[uint64]*PCSample)
	c.AddPollHook(interval, c.profSample)
}

// ProfilerEnabled reports whether EnableProfiler has been called.
func (c *CPU) ProfilerEnabled() bool { return c.prof.enabled }

// ProfileInterval returns the sampling interval (0 when disabled).
func (c *CPU) ProfileInterval() uint64 { return c.prof.interval }

// profSample is the sampler's poll hook. It always returns 0: the
// profiler observes the simulation and must never perturb it.
func (c *CPU) profSample(now uint64) uint64 {
	p := &c.prof
	pc := c.pc &^ uint64(isa.BundleBytes-1)
	s := p.samples[pc]
	if s == nil {
		s = p.newCell(pc)
	}
	s.Samples++
	s.Cycles += now - p.lastCycle
	p.lastCycle = now
	s.LoadStall += c.Stats.LoadStalls - p.lastLoadStall
	p.lastLoadStall = c.Stats.LoadStalls
	if h := c.Hier; h != nil {
		s.L2Miss += h.L2.Stats.Misses - p.lastL2Miss
		p.lastL2Miss = h.L2.Stats.Misses
		s.L3Miss += h.L3.Stats.Misses - p.lastL3Miss
		p.lastL3Miss = h.L3.Stats.Misses
		useful := h.L1D.Stats.PfUseful + h.L2.Stats.PfUseful
		s.PfUseful += useful - p.lastPfUseful
		p.lastPfUseful = useful
		late := h.L1D.Stats.PfLate + h.L2.Stats.PfLate
		s.PfLate += late - p.lastPfLate
		p.lastPfLate = late
	}
	return 0
}

// newCell creates the profile cell for a bundle seen for the first time —
// once per distinct sampled address over the whole run, not per fire.
//
//adore:coldpath
func (p *profiler) newCell(pc uint64) *PCSample {
	s := new(PCSample)
	p.samples[pc] = s
	return s
}

// resetProfiler clears accumulated samples and delta baselines for
// CPU.Reset; the hook registration (and enablement) survives, so a reused
// machine profiles its re-run from cycle 0.
func (c *CPU) resetProfiler() {
	p := &c.prof
	if !p.enabled {
		return
	}
	for pc := range p.samples {
		delete(p.samples, pc)
	}
	p.lastCycle = 0
	p.lastLoadStall = 0
	p.lastL2Miss = 0
	p.lastL3Miss = 0
	p.lastPfUseful = 0
	p.lastPfLate = 0
}

// ProfilePCs returns the sampled bundle addresses in ascending order —
// the deterministic iteration order profile export needs. Read-out path.
//
//adore:coldpath
func (c *CPU) ProfilePCs() []uint64 {
	if len(c.prof.samples) == 0 {
		return nil
	}
	pcs := make([]uint64, 0, len(c.prof.samples))
	for pc := range c.prof.samples {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	return pcs
}

// ProfileSample returns the cell of one bundle address (zero value if the
// sampler never observed it). Read-out path.
func (c *CPU) ProfileSample(pc uint64) PCSample {
	if s := c.prof.samples[pc]; s != nil {
		return *s
	}
	return PCSample{}
}

// ProfileSamples returns a copy of the whole profile, keyed by bundle
// address. Read-out path.
//
//adore:coldpath
func (c *CPU) ProfileSamples() map[uint64]PCSample {
	if c.prof.samples == nil {
		return nil
	}
	out := make(map[uint64]PCSample, len(c.prof.samples))
	for pc, s := range c.prof.samples {
		out[pc] = *s
	}
	return out
}
