package cpu

import (
	"sort"

	"repro/internal/program"
)

// CPI-stack accounting (Config.Accounting): every cycle the core's clock
// advances is attributed to exactly one category, so the categories always
// sum to Stats.Cycles — the invariant the Perfetto cpi_stack counter track
// and the observability acceptance test rely on. The split follows the
// classic CPI-stack decomposition:
//
//   - Busy: issue progress — cycles consumed by bundle issue and port
//     structural conflicts, plus the runtime-monitoring cycles billed to
//     the thread (PMU overflow handling, patch installation), which on
//     hardware surface as ordinary execution of the handler.
//   - LoadStall: scoreboard stalls waiting for a load (or long-latency op)
//     result — the cycles prefetching is meant to remove.
//   - Flush: branch-misprediction recovery.
//   - Fetch: front-end cycles — I-cache miss stalls and taken-branch
//     bubbles.
//
// Busy is the residual category: the stall categories are counted
// explicitly when their (comparatively rare, bulk) advances happen, and
// Busy is computed on read as elapsed cycles minus the rest. That keeps the
// per-cycle hot path (nextCycle) free of accounting work — the constant
// acctBusy folds the attribution branch away at the inlined call site.
//
// When an Image is attached (SetImage), the same split is additionally kept
// per innermost compiler loop (program.Image.LoopAt): stall categories are
// charged to the loop owning the bundle being executed, and each loop's
// total cycle ownership is accumulated lazily at loop switches, so steady
// state inside one loop (or one loop-free gap, including the trace pool)
// costs one range check per bundle. Time outside any static loop —
// prologue code and installed trace-pool traces — lands on loop -1.

// acctCat is the attribution category of one clock advance.
type acctCat uint8

const (
	acctBusy acctCat = iota // residual; never stored explicitly
	acctLoadStall
	acctFlush
	acctFetch
	// acctCycles is the per-loop slot holding the loop's total cycle
	// ownership, from which its residual Busy is derived.
	acctCycles
)

// CPIStack partitions elapsed cycles. The zero value is an empty stack.
type CPIStack struct {
	Busy      uint64
	LoadStall uint64
	Flush     uint64
	Fetch     uint64
}

// Total returns the cycles accounted across all categories.
func (s CPIStack) Total() uint64 {
	return s.Busy + s.LoadStall + s.Flush + s.Fetch
}

// Sub returns s - prev per category (deltas between two snapshots).
func (s CPIStack) Sub(prev CPIStack) CPIStack {
	return CPIStack{
		Busy:      s.Busy - prev.Busy,
		LoadStall: s.LoadStall - prev.LoadStall,
		Flush:     s.Flush - prev.Flush,
		Fetch:     s.Fetch - prev.Fetch,
	}
}

// accounting is the CPU's attribution state, active only with
// Config.Accounting. Counters are uint64 arrays indexed by acctCat — a
// plain indexed add on the hot path, converted to the exported CPIStack on
// read.
type accounting struct {
	stack [4]uint64 // whole-core explicit categories; acctBusy unused
	loops map[int]*[5]uint64

	img        *program.Image
	curLoop    int        // loop ID owning the current bundle; -1 outside loops
	curStack   *[5]uint64 // loops[curLoop], cached so attribute skips the map
	curLo      uint64     // cached [curLo,curHi) range sharing curLoop
	curHi      uint64
	lastSwitch uint64 // cycle when curLoop last changed (or was flushed)
}

// SetImage attaches compiler loop metadata so accounting splits per loop.
// Without an image the whole-core stack is still maintained. No-op unless
// Config.Accounting is set. Setup-time, not per-cycle.
//
//adore:coldpath
func (c *CPU) SetImage(img *program.Image) {
	if !c.cfg.Accounting {
		return
	}
	c.acct.img = img
	c.acct.curLoop = -1
	c.acct.curLo, c.acct.curHi = 0, 0
	c.acct.lastSwitch = c.cycle
	if c.acct.loops == nil {
		c.acct.loops = make(map[int]*[5]uint64)
	}
	c.acct.curStack = c.acct.loopStack(-1)
}

// resetAccounting clears all attribution state for CPU.Reset, keeping the
// attached image (if any) so a re-run splits per loop again from cycle 0.
func (c *CPU) resetAccounting() {
	img := c.acct.img
	c.acct = accounting{curLoop: -1}
	if img != nil {
		c.SetImage(img)
	}
}

// loopStack returns (creating on first use) the counters of one loop ID.
// Called on loop transitions, not per cycle; the allocation happens once
// per distinct loop ID over the whole run.
//
//adore:coldpath
func (a *accounting) loopStack(id int) *[5]uint64 {
	ls := a.loops[id]
	if ls == nil {
		ls = new([5]uint64)
		a.loops[id] = ls
	}
	return ls
}

// Accounting returns the whole-core CPI stack and whether accounting is
// enabled. With accounting on, the stack's Total always equals the cycles
// elapsed so far.
func (c *CPU) Accounting() (CPIStack, bool) {
	if !c.cfg.Accounting {
		return CPIStack{}, false
	}
	s := CPIStack{
		LoadStall: c.acct.stack[acctLoadStall],
		Flush:     c.acct.stack[acctFlush],
		Fetch:     c.acct.stack[acctFetch],
	}
	s.Busy = c.cycle - s.LoadStall - s.Flush - s.Fetch
	return s, true
}

// LoopAccounting returns a copy of the per-loop CPI stacks (key -1 is time
// outside every static loop, including installed traces). Nil without an
// attached image. Read-out path (per profile window), not per-cycle.
//
//adore:coldpath
func (c *CPU) LoopAccounting() map[int]CPIStack {
	if c.acct.loops == nil {
		return nil
	}
	c.flushLoopCycles()
	out := make(map[int]CPIStack, len(c.acct.loops))
	for id, v := range c.acct.loops {
		s := CPIStack{
			LoadStall: v[acctLoadStall],
			Flush:     v[acctFlush],
			Fetch:     v[acctFetch],
		}
		s.Busy = v[acctCycles] - s.LoadStall - s.Flush - s.Fetch
		out[id] = s
	}
	return out
}

// LoopIDs returns the loop IDs with accounted time, sorted — the
// deterministic iteration order event emission needs. Read-out path.
//
//adore:coldpath
func (c *CPU) LoopIDs() []int {
	if c.acct.loops == nil {
		return nil
	}
	ids := make([]int, 0, len(c.acct.loops))
	for id := range c.acct.loops {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// flushLoopCycles credits the cycles elapsed since the last loop switch to
// the current loop, so per-loop residual Busy is exact at read time.
func (c *CPU) flushLoopCycles() {
	if cs := c.acct.curStack; cs != nil {
		cs[acctCycles] += c.cycle - c.acct.lastSwitch
		c.acct.lastSwitch = c.cycle
	}
}

// attribute charges d cycles to an explicit (non-Busy) category, whole-core
// and per-loop.
func (c *CPU) attribute(cat acctCat, d uint64) {
	c.acct.stack[cat] += d
	if cs := c.acct.curStack; cs != nil {
		cs[cat] += d
	}
}

// noteFetch keeps the current-loop cache fresh as fetch moves between
// bundles. Called from step only when accounting is enabled; the fast path
// — still inside the cached range — is inlined there.
func (c *CPU) noteFetch(bundleAddr uint64) {
	if c.acct.img == nil || (bundleAddr >= c.acct.curLo && bundleAddr < c.acct.curHi) {
		return
	}
	c.noteFetchSlow(bundleAddr)
}

// noteFetchSlow settles the outgoing loop's cycle ownership and re-resolves
// the cache for a bundle outside the cached range.
func (c *CPU) noteFetchSlow(bundleAddr uint64) {
	c.flushLoopCycles()
	a := &c.acct
	if l, ok := a.img.LoopAt(bundleAddr); ok {
		a.curLoop = l.ID
		a.curStack = a.loopStack(l.ID)
		a.curLo, a.curHi = l.BodyStart, l.BodyEnd
		return
	}
	a.curLoop = -1
	a.curStack = a.loopStack(-1)
	// Cache the whole loop-free gap around bundleAddr: the nearest body
	// end at or below it and the nearest body start above it. Installed
	// traces run past every static loop, so the trace pool lands in the
	// open-ended final gap and never rescans.
	lo, hi := uint64(0), ^uint64(0)
	for i := range a.img.Loops {
		l := &a.img.Loops[i]
		if l.BodyEnd <= bundleAddr {
			if l.BodyEnd > lo {
				lo = l.BodyEnd
			}
		} else if l.BodyStart > bundleAddr && l.BodyStart < hi {
			hi = l.BodyStart
		}
	}
	a.curLo, a.curHi = lo, hi
}
