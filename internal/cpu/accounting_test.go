package cpu

import (
	"reflect"
	"testing"

	"repro/internal/asm"
	"repro/internal/memsys"
	"repro/internal/program"
)

// buildAccounted assembles b into a full machine with Config.Accounting on.
func buildAccounted(t *testing.T, b *asm.Builder) (*CPU, *asm.Result) {
	t.Helper()
	r, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cs := program.NewCodeSpace()
	seg := &program.Segment{Name: "main", Base: r.Base, Bundles: r.Bundles}
	if err := cs.AddSegment(seg); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Accounting = true
	c := New(cfg, cs, memsys.NewMemory(), memsys.NewHierarchy(memsys.DefaultConfig()), nil)
	c.SetPC(r.Base)
	return c, r
}

// TestAccountingSumsToCycles pins the central invariant: with accounting
// on, the four CPI-stack categories partition the elapsed cycles exactly.
func TestAccountingSumsToCycles(t *testing.T) {
	const base, n = 0x10000, 200
	c, _ := buildAccounted(t, sumLoop(base, n))
	for i := 0; i < n; i++ {
		c.Mem.WriteN(base+uint64(i*8), 8, uint64(i))
	}
	st := run(t, c)

	stack, ok := c.Accounting()
	if !ok {
		t.Fatal("Accounting() reports disabled with cfg.Accounting set")
	}
	if stack.Total() != st.Cycles {
		t.Fatalf("stack total %d != cycles %d (stack %+v)", stack.Total(), st.Cycles, stack)
	}
	// A cold strided loop must show issue work, load stalls (cold misses),
	// and front-end time (taken back edges).
	if stack.Busy == 0 || stack.LoadStall == 0 || stack.Fetch == 0 {
		t.Fatalf("degenerate stack %+v", stack)
	}
}

// TestAccountingPerLoop attaches an Image with loop metadata and checks the
// per-loop split: loop stacks partition the whole-core stack, loop IDs come
// out sorted, and prologue/halt time lands on loop -1.
func TestAccountingPerLoop(t *testing.T) {
	const base, n = 0x20000, 150
	c, r := buildAccounted(t, sumLoop(base, n))
	for i := 0; i < n; i++ {
		c.Mem.WriteN(base+uint64(i*8), 8, uint64(i))
	}

	head, ok := r.AddrOf("loop")
	if !ok {
		t.Fatal("no loop label")
	}
	img := program.NewImage("sum", &program.Segment{Name: "main", Base: r.Base, Bundles: r.Bundles}, r.Base)
	img.Loops = []program.LoopInfo{{
		ID:        3,
		Name:      "sum",
		Head:      head,
		BodyStart: head,
		BodyEnd:   r.Base + uint64(len(r.Bundles))*16,
	}}
	c.SetImage(img)
	st := run(t, c)

	loops := c.LoopAccounting()
	if len(loops) == 0 {
		t.Fatal("no per-loop accounting recorded")
	}
	var sum uint64
	for _, s := range loops {
		sum += s.Total()
	}
	if sum != st.Cycles {
		t.Fatalf("per-loop totals %d != cycles %d (%+v)", sum, st.Cycles, loops)
	}
	if loops[3].Total() == 0 {
		t.Fatalf("loop 3 got no time: %+v", loops)
	}
	if loops[-1].Total() == 0 {
		t.Fatalf("prologue time not attributed to loop -1: %+v", loops)
	}
	if loops[3].Total() <= loops[-1].Total() {
		t.Fatalf("loop body %d cycles <= prologue %d cycles", loops[3].Total(), loops[-1].Total())
	}
	if ids := c.LoopIDs(); !reflect.DeepEqual(ids, []int{-1, 3}) {
		t.Fatalf("LoopIDs = %v, want [-1 3]", ids)
	}
}

// TestAccountingOffIsInert checks the disabled path: Accounting() reports
// off, no per-loop state appears, SetImage is a no-op, and — the
// bit-identical-when-off contract — Stats match an accounting-on run.
func TestAccountingOffIsInert(t *testing.T) {
	const base, n = 0x30000, 100
	fill := func(c *CPU) {
		for i := 0; i < n; i++ {
			c.Mem.WriteN(base+uint64(i*8), 8, uint64(i))
		}
	}

	off, rOff := buildMachine(t, sumLoop(base, n), nil)
	off.SetImage(program.NewImage("sum", &program.Segment{Name: "main", Base: rOff.Base, Bundles: rOff.Bundles}, rOff.Base))
	fill(off)
	stOff := run(t, off)

	if _, ok := off.Accounting(); ok {
		t.Fatal("Accounting() reports enabled on default config")
	}
	if off.LoopAccounting() != nil || off.LoopIDs() != nil {
		t.Fatal("disabled CPU accumulated per-loop state")
	}

	on, _ := buildAccounted(t, sumLoop(base, n))
	fill(on)
	stOn := run(t, on)
	if stOff != stOn {
		t.Fatalf("accounting changed Stats:\noff %+v\non  %+v", stOff, stOn)
	}
}

// TestAccountingSub checks snapshot deltas, the per-window emission path.
func TestAccountingSub(t *testing.T) {
	a := CPIStack{Busy: 10, LoadStall: 20, Flush: 3, Fetch: 4}
	b := CPIStack{Busy: 25, LoadStall: 21, Flush: 3, Fetch: 9}
	d := b.Sub(a)
	if (d != CPIStack{Busy: 15, LoadStall: 1, Flush: 0, Fetch: 5}) {
		t.Fatalf("Sub = %+v", d)
	}
	if d.Total() != b.Total()-a.Total() {
		t.Fatalf("delta total %d != %d", d.Total(), b.Total()-a.Total())
	}
}
