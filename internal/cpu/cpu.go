// Package cpu simulates an in-order EPIC core in the style of the
// Itanium 2: it executes the internal/isa instruction set with sequential
// semantics and accounts cycles with a separate issue model — up to two
// bundles per cycle, per-port structural limits, scoreboarded load-use
// stalls, static backward-taken/forward-not-taken branch prediction, and an
// instruction-cache front end.
//
// Separating function from timing keeps the interpreter simple and the
// timing assumptions explicit; DESIGN.md §1 lists what is and is not
// modelled.
package cpu

import (
	"context"
	"fmt"
	"math"
	"math/bits"

	"repro/internal/isa"
	"repro/internal/memsys"
	"repro/internal/pmu"
	"repro/internal/program"
)

// Config sets the core's issue resources and penalties. The defaults
// approximate Itanium 2's front end for the purposes of this reproduction.
type Config struct {
	IssueBundles      int // bundles issued per cycle (Itanium 2: 2)
	LoadPorts         int // loads + lfetches per cycle (2)
	StorePorts        int // stores per cycle (2)
	FPUnits           int // floating-point ops per cycle (2)
	BranchUnits       int // branches per cycle (3)
	MispredictPenalty int // cycles lost on a mispredicted branch
	TakenBubble       int // front-end bubble on a correctly predicted taken branch
	FPLatency         int // FP op result latency (fma: 4)
	ModelICache       bool

	// Accounting enables CPI-stack cycle attribution (see accounting.go):
	// every elapsed cycle is split into busy / load-stall / flush / fetch,
	// whole-core and — with SetImage — per compiler loop. Off by default;
	// when off the accounting code is never reached and Stats are
	// bit-identical to a run without it.
	Accounting bool
}

// DefaultConfig returns the standard core model.
func DefaultConfig() Config {
	return Config{
		IssueBundles:      2,
		LoadPorts:         2,
		StorePorts:        2,
		FPUnits:           2,
		BranchUnits:       3,
		MispredictPenalty: 6,
		TakenBubble:       1,
		FPLatency:         4,
		ModelICache:       true,
	}
}

// PollHook is host code invoked periodically at bundle boundaries — the
// mechanism by which the ADORE dynopt "thread" gets control. The hook runs
// on the (simulated) second processor: its own work is free, but any cycles
// it wants charged to the monitored thread (e.g. for stopping it during
// patching) are returned.
type PollHook func(now uint64) (charge uint64)

type pollEntry struct {
	interval uint64
	next     uint64
	fn       PollHook
}

// Stats summarizes one run.
type Stats struct {
	Cycles        uint64
	Retired       uint64
	Loads         uint64
	Stores        uint64
	Prefetches    uint64
	Branches      uint64
	Mispredicts   uint64
	LoadStalls    uint64 // cycles lost waiting for operand results
	ICacheStalls  uint64
	SampleCharges uint64 // cycles charged for PMU overflow handling
}

// CPI returns cycles per retired instruction.
func (s Stats) CPI() float64 {
	if s.Retired == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Retired)
}

// CPU is one simulated core plus its architectural state.
type CPU struct {
	cfg Config

	GR [isa.NumGR]uint64
	FR [isa.NumFR]float64
	PR [isa.NumPR]bool
	BR [isa.NumBR]uint64

	Code *program.CodeSpace
	Mem  *memsys.Memory
	Hier *memsys.Hierarchy
	PMU  *pmu.PMU

	pc     uint64
	halted bool

	cycle   uint64
	grReady [isa.NumGR]uint64
	frReady [isa.NumFR]uint64

	// per-cycle issue accounting
	bundlesUsed int
	loadsUsed   int
	storesUsed  int
	fpUsed      int
	brUsed      int

	lastFetchLine uint64
	hooks         []pollEntry
	// hookNext is the earliest next-fire cycle across all poll hooks
	// (^0 when none) — the next-event gate that keeps the per-bundle
	// cost of hook scheduling to one compare.
	hookNext uint64
	// preHook, when set, observes hook boundaries just before the due
	// hooks run (OnHookBoundary) — the fork engine's snapshot gate. It
	// rides the existing hookNext compare, so the nil default adds no
	// per-bundle work.
	preHook func(now uint64)

	pre predecode // direct-indexed code image (predecode.go)

	// modelI / l1iShift cache the I-cache front-end decision and the
	// line-number shift so step neither re-tests config nor divides.
	modelI   bool
	l1iShift uint

	acct accounting // CPI-stack attribution (Config.Accounting)
	prof profiler   // cycle-sampling profiler (EnableProfiler; profile.go)

	Stats Stats
}

// New wires a CPU to its code space, memory, hierarchy and PMU. hier and p
// may be nil (no timing detail / no monitoring) for unit tests.
func New(cfg Config, code *program.CodeSpace, mem *memsys.Memory, hier *memsys.Hierarchy, p *pmu.PMU) *CPU {
	c := &CPU{cfg: cfg, Code: code, Mem: mem, Hier: hier, PMU: p}
	c.FR[1] = 1.0
	c.lastFetchLine = ^uint64(0)
	c.hookNext = ^uint64(0)
	c.acct.curLoop = -1
	c.modelI = cfg.ModelICache && hier != nil
	if c.modelI {
		c.l1iShift = uint(bits.TrailingZeros64(uint64(hier.L1I.LineSize())))
	}
	c.attachCode(code)
	return c
}

// Reset returns the CPU to its power-on state — architectural registers,
// scoreboard, cycle clock, statistics, fetch-line tracking, hook schedules
// and CPI-stack accounting — so a reused machine re-runs the same image
// bit-identically. The predecoded code image is kept (the code space is
// unchanged); memory, hierarchy and PMU belong to the caller and are not
// touched.
func (c *CPU) Reset() {
	c.GR = [isa.NumGR]uint64{}
	c.FR = [isa.NumFR]float64{}
	c.PR = [isa.NumPR]bool{}
	c.BR = [isa.NumBR]uint64{}
	c.FR[1] = 1.0
	c.pc = 0
	c.halted = false
	c.cycle = 0
	c.grReady = [isa.NumGR]uint64{}
	c.frReady = [isa.NumFR]uint64{}
	c.bundlesUsed = 0
	c.loadsUsed = 0
	c.storesUsed = 0
	c.fpUsed = 0
	c.brUsed = 0
	c.lastFetchLine = ^uint64(0)
	c.hookNext = ^uint64(0)
	for i := range c.hooks {
		c.hooks[i].next = c.hooks[i].interval
		if c.hooks[i].next < c.hookNext {
			c.hookNext = c.hooks[i].next
		}
	}
	c.Stats = Stats{}
	c.resetAccounting()
	c.resetProfiler()
}

// SetPC sets the next fetch address.
func (c *CPU) SetPC(pc uint64) { c.pc = pc }

// PC returns the current fetch address.
func (c *CPU) PC() uint64 { return c.pc }

// Now returns the current cycle count.
func (c *CPU) Now() uint64 { return c.cycle }

// Halted reports whether the program has executed halt (or returned from
// its outermost frame).
func (c *CPU) Halted() bool { return c.halted }

// OnHookBoundary registers fn to observe every hook boundary — each point
// where the run loop pauses at a bundle boundary to run due poll hooks —
// immediately before those hooks fire. The callback must not perturb the
// simulation; the fork engine uses it to snapshot machine state at
// positions a restored run can resume from (the pending hooks re-fire
// under the continuation's own configuration). Setup-time, not per-cycle.
//
//adore:coldpath
func (c *CPU) OnHookBoundary(fn func(now uint64)) { c.preHook = fn }

// AddPollHook registers fn to run every interval cycles, at bundle
// boundaries. Called during setup, before the run loop starts.
//
//adore:coldpath
func (c *CPU) AddPollHook(interval uint64, fn PollHook) {
	next := c.cycle + interval
	c.hooks = append(c.hooks, pollEntry{interval: interval, next: next, fn: fn})
	if next < c.hookNext {
		c.hookNext = next
	}
}

// advanceCycle moves time forward to at least target and resets the issue
// window when the cycle changes. cat names the CPI-stack category the
// skipped cycles belong to; with Config.Accounting off it is ignored.
func (c *CPU) advanceCycle(target uint64, cat acctCat) {
	if target <= c.cycle {
		return
	}
	// Busy is the residual accounting category (computed on read), so
	// busy advances — the per-cycle hot path — skip attribution; cat is a
	// constant at every call site, folding this branch away when inlined.
	if cat != acctBusy && c.cfg.Accounting {
		c.attribute(cat, target-c.cycle)
	}
	c.cycle = target
	c.bundlesUsed = 0
	c.loadsUsed = 0
	c.storesUsed = 0
	c.fpUsed = 0
	c.brUsed = 0
}

// nextCycle bumps time by one cycle and opens a fresh issue window. The
// cycle left behind was issue progress, so it accounts as busy — the
// residual category, computed on read — which is why this is a hand-
// specialized advanceCycle(c.cycle+1, acctBusy): with no attribution work
// it is cheap enough that chargeBundle and reservePort, which call it
// every other bundle, stay within the inlining budget.
func (c *CPU) nextCycle() {
	c.cycle++
	c.bundlesUsed = 0
	c.loadsUsed = 0
	c.storesUsed = 0
	c.fpUsed = 0
	c.brUsed = 0
}

// chargeBundle accounts the issue of one more bundle in this cycle.
func (c *CPU) chargeBundle() {
	if c.bundlesUsed >= c.cfg.IssueBundles {
		c.nextCycle()
	}
	c.bundlesUsed++
}

// ctxCheckEvery is how many bundles the run loop executes between context
// polls: frequent enough to stop a multi-billion-cycle simulation promptly,
// rare enough that the check costs nothing against the interpreter.
const ctxCheckEvery = 1 << 14

// Run executes until halt or until maxInstructions retire (0 = unlimited).
func (c *CPU) Run(maxInstructions uint64) (Stats, error) {
	return c.RunContext(context.Background(), maxInstructions)
}

// RunContext is Run with cancellation: ctx is polled every ctxCheckEvery
// bundles, alongside the maxInstructions safety stop, and its error is
// returned if it fires mid-run. A context that can never be cancelled adds
// no per-bundle cost.
func (c *CPU) RunContext(ctx context.Context, maxInstructions uint64) (Stats, error) {
	done := ctx.Done()
	sinceCheck := 0
	for !c.halted {
		if maxInstructions > 0 && c.Stats.Retired >= maxInstructions {
			break
		}
		if done != nil {
			if sinceCheck--; sinceCheck < 0 {
				sinceCheck = ctxCheckEvery
				select {
				case <-done:
					c.Stats.Cycles = c.cycle
					return c.Stats, ctx.Err()
				default:
				}
			}
		}
		if err := c.step(); err != nil {
			// A faulting step (unmapped fetch, bad slot, unimplemented
			// op) must still report current time: callers inspect
			// Stats.Cycles of failed runs.
			c.Stats.Cycles = c.cycle
			return c.Stats, err
		}
	}
	c.Stats.Cycles = c.cycle
	return c.Stats, nil
}

// step fetches and executes one bundle (or the tail of one, after a branch
// into a mid-bundle slot).
func (c *CPU) step() error {
	// Poll hooks fire at bundle boundaries; hookNext is the earliest
	// next-fire cycle across hooks, so the no-hook (and between-fires)
	// path is a single compare.
	if c.cycle >= c.hookNext {
		if c.preHook != nil {
			c.preHook(c.cycle)
		}
		c.runHooks()
	}

	bundleAddr := c.pc &^ uint64(isa.BundleBytes-1)
	slot := int(c.pc & uint64(isa.BundleBytes-1))
	if slot > 2 {
		return fmt.Errorf("cpu: bad slot in pc %#x", c.pc)
	}
	b := c.fetch(bundleAddr)
	if b == nil {
		return fmt.Errorf("cpu: fetch from unmapped address %#x", bundleAddr)
	}
	if c.cfg.Accounting {
		c.noteFetch(bundleAddr)
	}

	// Instruction cache: charge when fetch moves to a new I-line.
	if c.modelI {
		line := bundleAddr >> c.l1iShift
		if line != c.lastFetchLine {
			c.lastFetchLine = line
			r := c.Hier.AccessInst(c.cycle, bundleAddr)
			if r.Latency > 0 {
				c.Stats.ICacheStalls += r.Latency
				c.advanceCycle(c.cycle+r.Latency, acctFetch)
			}
		}
	}

	c.chargeBundle()
	return c.executeBundle(bundleAddr, b, slot)
}

// runHooks fires every due poll hook, in registration order, and
// reschedules hookNext. A hook's charge advances the clock, which may make
// a later-registered hook due within the same call — it fires here too,
// exactly as in the per-step scan this scheduler replaced — but each hook
// fires at most once per bundle boundary: catch-up after a long charge
// advances next past the skipped fire times without re-invoking the hook.
func (c *CPU) runHooks() {
	for i := range c.hooks {
		h := &c.hooks[i]
		if c.cycle >= h.next {
			if charge := h.fn(c.cycle); charge > 0 {
				// Runtime charges (patching) account as busy: the
				// thread is executing the runtime's work.
				c.advanceCycle(c.cycle+charge, acctBusy)
			}
			for h.next <= c.cycle {
				h.next += h.interval
			}
		}
	}
	next := ^uint64(0)
	for i := range c.hooks {
		if c.hooks[i].next < next {
			next = c.hooks[i].next
		}
	}
	c.hookNext = next
}

// wait stalls until general register r is ready. The ready-now case — the
// overwhelming majority — is a load and a compare, inlined into execute's
// dispatch; the actual stall is outlined in stallUntil.
func (c *CPU) wait(r isa.Reg) {
	if c.grReady[r] > c.cycle {
		c.stallUntil(c.grReady[r])
	}
}

// waitF stalls until floating register r is ready.
func (c *CPU) waitF(r isa.FReg) {
	if c.frReady[r] > c.cycle {
		c.stallUntil(c.frReady[r])
	}
}

// stallUntil charges a scoreboard stall up to cycle t > now.
func (c *CPU) stallUntil(t uint64) {
	c.Stats.LoadStalls += t - c.cycle
	c.advanceCycle(t, acctLoadStall)
}

// reservePort blocks until the given port class has a free slot this cycle
// and claims it. The counters are fields reset by advanceCycle, so the loop
// terminates after at most one cycle bump.
func (c *CPU) reservePort(used *int, limit int) {
	for *used >= limit {
		c.nextCycle()
	}
	*used++
}

func (c *CPU) writeGR(r isa.Reg, v uint64, readyAt uint64) {
	if r == 0 {
		return
	}
	c.GR[r] = v
	c.grReady[r] = readyAt
}

func (c *CPU) writeFR(r isa.FReg, v float64, readyAt uint64) {
	if r <= 1 {
		return
	}
	c.FR[r] = v
	c.frReady[r] = readyAt
}

// executeBundle runs the slots of one bundle starting at slot, advancing
// pc past the bundle unless an instruction redirected control or halted.
// One call executes up to three instructions: the interpreter retires
// tens of millions of instructions per host second, so the per-slot call
// this loop replaced was a measurable slice of the whole run.
func (c *CPU) executeBundle(bundleAddr uint64, b *isa.Bundle, slot int) error {
	fpLat := uint64(c.cfg.FPLatency)
	for s := slot; s < 3; s++ {
		pc := bundleAddr + uint64(s)
		in := &b.Slots[s]
		// Conditional branches handle their own predicate so that not-taken
		// outcomes still reach the PMU's branch trace buffer.
		if in.Op == isa.OpBrCond {
			redirect, err := c.execBrCond(pc, in)
			if err != nil {
				return err
			}
			if redirect {
				return nil
			}
			continue
		}
		// Any other predicated-off instruction occupies its slot and retires
		// with no effect and no stalls.
		if in.QP != 0 && !c.PR[in.QP] {
			c.retire(pc)
			continue
		}

		switch in.Op {
		case isa.OpNop, isa.OpAlloc:
			// no effect

		case isa.OpAdd:
			c.wait(in.R2)
			c.wait(in.R3)
			c.writeGR(in.R1, c.GR[in.R2]+c.GR[in.R3], c.cycle+1)
		case isa.OpSub:
			c.wait(in.R2)
			c.wait(in.R3)
			c.writeGR(in.R1, c.GR[in.R2]-c.GR[in.R3], c.cycle+1)
		case isa.OpAddI:
			c.wait(in.R3)
			c.writeGR(in.R1, uint64(in.Imm)+c.GR[in.R3], c.cycle+1)
		case isa.OpAnd:
			c.wait(in.R2)
			c.wait(in.R3)
			c.writeGR(in.R1, c.GR[in.R2]&c.GR[in.R3], c.cycle+1)
		case isa.OpOr:
			c.wait(in.R2)
			c.wait(in.R3)
			c.writeGR(in.R1, c.GR[in.R2]|c.GR[in.R3], c.cycle+1)
		case isa.OpXor:
			c.wait(in.R2)
			c.wait(in.R3)
			c.writeGR(in.R1, c.GR[in.R2]^c.GR[in.R3], c.cycle+1)
		case isa.OpShlAdd:
			c.wait(in.R2)
			c.wait(in.R3)
			c.writeGR(in.R1, c.GR[in.R2]<<uint(in.Imm)+c.GR[in.R3], c.cycle+1)
		case isa.OpMov:
			c.wait(in.R3)
			c.writeGR(in.R1, c.GR[in.R3], c.cycle+1)
		case isa.OpMovI:
			c.writeGR(in.R1, uint64(in.Imm), c.cycle+1)
		case isa.OpShl:
			c.wait(in.R2)
			c.writeGR(in.R1, c.GR[in.R2]<<uint(in.Imm), c.cycle+1)
		case isa.OpShr:
			c.wait(in.R2)
			c.writeGR(in.R1, c.GR[in.R2]>>uint(in.Imm), c.cycle+1)
		case isa.OpSxt4:
			c.wait(in.R3)
			c.writeGR(in.R1, uint64(int64(int32(uint32(c.GR[in.R3])))), c.cycle+1)
		case isa.OpZxt4:
			c.wait(in.R3)
			c.writeGR(in.R1, uint64(uint32(c.GR[in.R3])), c.cycle+1)

		case isa.OpCmp:
			c.wait(in.R2)
			c.wait(in.R3)
			v := compare(in.Rel, c.GR[in.R2], c.GR[in.R3])
			c.setPred(in.P1, v)
			c.setPred(in.P2, !v)
		case isa.OpCmpI:
			c.wait(in.R3)
			v := compare(in.Rel, uint64(in.Imm), c.GR[in.R3])
			c.setPred(in.P1, v)
			c.setPred(in.P2, !v)

		case isa.OpLd1, isa.OpLd2, isa.OpLd4, isa.OpLd8, isa.OpLdS:
			c.wait(in.R3)
			c.reservePort(&c.loadsUsed, c.cfg.LoadPorts)
			addr := c.GR[in.R3]
			v := c.Mem.ReadN(addr, isa.AccessBytes(in.Op))
			lat := uint64(1)
			if c.Hier != nil {
				r := c.Hier.AccessLoad(c.cycle, addr)
				lat = r.Latency
				if r.Level != memsys.LevelL1 && c.PMU != nil {
					c.PMU.OnLoadMiss(pc, addr, uint32(lat))
				}
			}
			c.writeGR(in.R1, v, c.cycle+lat)
			c.postInc(in)
			c.Stats.Loads++

		case isa.OpLdF:
			c.wait(in.R3)
			c.reservePort(&c.loadsUsed, c.cfg.LoadPorts)
			addr := c.GR[in.R3]
			v := c.Mem.ReadFloat(addr)
			lat := uint64(1)
			if c.Hier != nil {
				r := c.Hier.Access(c.cycle, addr, memsys.KindLoadFP)
				lat = r.Latency
				// FP loads bypass L1; only count events slower than an
				// L2 hit as data-cache misses.
				if c.PMU != nil && lat > uint64(c.Hier.Config().L2.HitLat) {
					c.PMU.OnLoadMiss(pc, addr, uint32(lat))
				}
			}
			c.writeFR(in.F1, v, c.cycle+lat)
			c.postInc(in)
			c.Stats.Loads++

		case isa.OpSt1, isa.OpSt2, isa.OpSt4, isa.OpSt8:
			c.wait(in.R2)
			c.wait(in.R3)
			c.reservePort(&c.storesUsed, c.cfg.StorePorts)
			addr := c.GR[in.R3]
			c.Mem.WriteN(addr, isa.AccessBytes(in.Op), c.GR[in.R2])
			if c.Hier != nil {
				c.Hier.AccessStore(c.cycle, addr)
			}
			c.postInc(in)
			c.Stats.Stores++

		case isa.OpStF:
			c.waitF(in.F1)
			c.wait(in.R3)
			c.reservePort(&c.storesUsed, c.cfg.StorePorts)
			addr := c.GR[in.R3]
			c.Mem.WriteFloat(addr, c.FR[in.F1])
			if c.Hier != nil {
				c.Hier.AccessStore(c.cycle, addr)
			}
			c.postInc(in)
			c.Stats.Stores++

		case isa.OpLfetch:
			c.wait(in.R3)
			c.reservePort(&c.loadsUsed, c.cfg.LoadPorts)
			if c.Hier != nil {
				c.Hier.AccessPrefetch(c.cycle, c.GR[in.R3])
			}
			c.postInc(in)
			c.Stats.Prefetches++

		case isa.OpFma:
			c.reservePort(&c.fpUsed, c.cfg.FPUnits)
			c.waitF(in.F2)
			c.waitF(in.F3)
			c.waitF(in.F4)
			c.writeFR(in.F1, c.FR[in.F2]*c.FR[in.F3]+c.FR[in.F4], c.cycle+fpLat)
		case isa.OpFAdd:
			c.reservePort(&c.fpUsed, c.cfg.FPUnits)
			c.waitF(in.F2)
			c.waitF(in.F3)
			c.writeFR(in.F1, c.FR[in.F2]+c.FR[in.F3], c.cycle+fpLat)
		case isa.OpFMul:
			c.reservePort(&c.fpUsed, c.cfg.FPUnits)
			c.waitF(in.F2)
			c.waitF(in.F3)
			c.writeFR(in.F1, c.FR[in.F2]*c.FR[in.F3], c.cycle+fpLat)
		case isa.OpFSub:
			c.reservePort(&c.fpUsed, c.cfg.FPUnits)
			c.waitF(in.F2)
			c.waitF(in.F3)
			c.writeFR(in.F1, c.FR[in.F2]-c.FR[in.F3], c.cycle+fpLat)
		case isa.OpFNeg:
			c.reservePort(&c.fpUsed, c.cfg.FPUnits)
			c.waitF(in.F2)
			c.writeFR(in.F1, -c.FR[in.F2], c.cycle+fpLat)

		case isa.OpGetF:
			c.reservePort(&c.loadsUsed, c.cfg.LoadPorts)
			c.waitF(in.F2)
			c.writeGR(in.R1, math.Float64bits(c.FR[in.F2]), c.cycle+2)
		case isa.OpSetF:
			c.reservePort(&c.loadsUsed, c.cfg.LoadPorts)
			c.wait(in.R2)
			c.writeFR(in.F1, math.Float64frombits(c.GR[in.R2]), c.cycle+2)
		case isa.OpFCvtFX:
			c.reservePort(&c.fpUsed, c.cfg.FPUnits)
			c.waitF(in.F2)
			c.writeGR(in.R1, uint64(int64(c.FR[in.F2])), c.cycle+fpLat)
		case isa.OpFCvtXF:
			c.reservePort(&c.fpUsed, c.cfg.FPUnits)
			c.wait(in.R2)
			c.writeFR(in.F1, float64(int64(c.GR[in.R2])), c.cycle+fpLat)

		case isa.OpBr:
			c.reservePort(&c.brUsed, c.cfg.BranchUnits)
			c.retire(pc)
			if c.PMU != nil {
				c.PMU.OnBranch(pc, in.Target, true)
			}
			c.redirect(in.Target, false)
			return nil
		case isa.OpBrCall:
			c.reservePort(&c.brUsed, c.cfg.BranchUnits)
			c.BR[in.B] = (pc &^ uint64(isa.BundleBytes-1)) + isa.BundleBytes
			c.retire(pc)
			if c.PMU != nil {
				c.PMU.OnBranch(pc, in.Target, true)
			}
			c.redirect(in.Target, false)
			return nil
		case isa.OpBrRet:
			c.reservePort(&c.brUsed, c.cfg.BranchUnits)
			target := c.BR[in.B]
			c.retire(pc)
			if target == 0 {
				c.halted = true
				c.Stats.Cycles = c.cycle
				return nil
			}
			if c.PMU != nil {
				c.PMU.OnBranch(pc, target, true)
			}
			c.redirect(target, false)
			return nil
		case isa.OpHalt:
			c.retire(pc)
			c.halted = true
			c.Stats.Cycles = c.cycle
			return nil

		default:
			return fmt.Errorf("cpu: unimplemented op %s at %#x", in.Op, pc)
		}

		c.retire(pc)
	}
	c.pc = bundleAddr + isa.BundleBytes
	return nil
}

// execBrCond executes a conditional branch, including its PMU reporting and
// BTFN prediction accounting.
func (c *CPU) execBrCond(pc uint64, in *isa.Inst) (bool, error) {
	c.reservePort(&c.brUsed, c.cfg.BranchUnits)
	taken := in.QP == 0 || c.PR[in.QP]
	c.retire(pc)
	if c.PMU != nil {
		c.PMU.OnBranch(pc, in.Target, taken)
	}
	backward := in.Target <= pc
	if taken {
		c.redirect(in.Target, !backward)
		return true, nil
	}
	if backward {
		// BTFN predicted taken: a not-taken backward branch (loop
		// exit) mispredicts.
		c.mispredict()
	}
	return false, nil
}

// redirect moves fetch to target, charging the misprediction penalty or the
// taken-branch bubble.
func (c *CPU) redirect(target uint64, mispredicted bool) {
	c.Stats.Branches++
	if mispredicted {
		c.mispredict()
	} else if c.cfg.TakenBubble > 0 {
		c.advanceCycle(c.cycle+uint64(c.cfg.TakenBubble), acctFetch)
	}
	c.pc = target
}

func (c *CPU) mispredict() {
	c.Stats.Mispredicts++
	c.advanceCycle(c.cycle+uint64(c.cfg.MispredictPenalty), acctFlush)
}

func (c *CPU) postInc(in *isa.Inst) {
	if in.PostInc != 0 && in.R3 != 0 {
		c.GR[in.R3] += uint64(in.PostInc)
		c.grReady[in.R3] = c.cycle + 1
	}
}

func (c *CPU) setPred(p isa.PReg, v bool) {
	if p != 0 {
		c.PR[p] = v
	}
}

// retire counts one retired instruction and gives the PMU its sampling
// opportunity. The monitored-run work lives in retireSampled so that
// retire itself inlines into execute's dispatch cases — without a PMU it
// is a counter increment and a nil check.
func (c *CPU) retire(pc uint64) {
	c.Stats.Retired++
	if c.PMU != nil {
		c.retireSampled(pc)
	}
}

func (c *CPU) retireSampled(pc uint64) {
	c.PMU.Retired++
	if c.cycle >= c.PMU.NextSampleAt() {
		before := c.PMU.OverheadCycles
		c.PMU.TakeSample(pc, c.cycle)
		if d := c.PMU.OverheadCycles - before; d > 0 {
			c.Stats.SampleCharges += d
			// Sample-handler charges account as busy, like any other
			// runtime work billed to the thread.
			c.advanceCycle(c.cycle+d, acctBusy)
		}
	}
}

func compare(rel isa.CmpRel, a, b uint64) bool { return isa.Compare(rel, a, b) }
