package cpu

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/memsys"
	"repro/internal/program"
)

// TestRunErrorReportsCurrentCycles pins the step()-error path of
// RunContext: a program that faults mid-run (here by running off the end
// of its segment into unmapped space) must still report the cycle count
// at the fault, not the stale value from the previous Stats refresh.
func TestRunErrorReportsCurrentCycles(t *testing.T) {
	b := asm.New(0)
	b.MovI(5, 500)
	b.Label("loop")
	b.AddI(5, -1, 5)
	b.CmpI(isa.CmpLt, 1, 2, 0, 5)
	b.BrCond(1, "loop")
	// No halt: after the loop the CPU fetches past the segment end.
	c, _ := buildMachine(t, b, nil)
	st, err := c.Run(0)
	if err == nil {
		t.Fatal("run off the segment end did not fault")
	}
	if !strings.Contains(err.Error(), "unmapped") {
		t.Fatalf("unexpected fault: %v", err)
	}
	if st.Cycles == 0 {
		t.Fatal("faulting run reported zero cycles")
	}
	if st.Cycles != c.Now() {
		t.Fatalf("Stats.Cycles = %d but clock is at %d: stale cycles on the error path", st.Cycles, c.Now())
	}
	if st.Retired < 500 {
		t.Fatalf("retired only %d instructions before the fault", st.Retired)
	}
}

// TestReusedCPUBitIdenticalStats runs the same image twice on one machine
// with Reset between runs and demands bit-identical CPU and cache
// statistics — the regression net for stale microarchitectural state
// (lastFetchLine, hook next-fire times, scoreboard, victim/way memos)
// surviving a Reset. The variants re-prove the invariant with each
// optional observation subsystem enabled: CPI-stack accounting with a
// loop image attached (observe), the simulated-execution profiler, and
// both at once under a telemetry-style counting hook — a poll hook that
// only reads state, the shape the harness's metric wiring uses.
func TestReusedCPUBitIdenticalStats(t *testing.T) {
	const base, n = 0x10000, 400
	variants := []struct {
		name       string
		accounting bool
		profiler   uint64 // sampling interval; 0 = off
		telemetry  bool
	}{
		{name: "plain"},
		{name: "observe", accounting: true},
		{name: "profiler", profiler: 4099},
		{name: "observe+profiler+telemetry", accounting: true, profiler: 4099, telemetry: true},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			b := sumLoop(base, n)
			r, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			cs := program.NewCodeSpace()
			if err := cs.AddSegment(&program.Segment{Name: "main", Base: r.Base, Bundles: r.Bundles}); err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig()
			cfg.Accounting = v.accounting
			c := New(cfg, cs, memsys.NewMemory(), memsys.NewHierarchy(memsys.DefaultConfig()), nil)
			c.SetPC(r.Base)
			for i := 0; i < n; i++ {
				c.Mem.WriteN(base+uint64(i*8), 8, uint64(i*7))
			}
			if v.accounting {
				loopAddr, _ := r.AddrOf("loop")
				c.SetImage(&program.Image{Name: "sumloop", Loops: []program.LoopInfo{
					{ID: 1, Name: "loop", Head: loopAddr, BodyStart: loopAddr, BodyEnd: loopAddr + 2*isa.BundleBytes},
				}})
			}
			if v.profiler != 0 {
				c.EnableProfiler(v.profiler)
			}
			// A poll hook with a charge exercises the hook schedule reset
			// too; the telemetry variant adds a read-only counting hook.
			c.AddPollHook(700, func(uint64) uint64 { return 3 })
			var polls uint64
			if v.telemetry {
				c.AddPollHook(900, func(uint64) uint64 { polls++; return 0 })
			}

			type observation struct {
				stats Stats
				sum   uint64
				hier  [4]memsys.CacheStats
				stack CPIStack
				loops map[int]CPIStack
				prof  map[uint64]PCSample
				polls uint64
			}
			observe := func() observation {
				o := observation{
					stats: run(t, c),
					sum:   c.GR[8],
					hier:  [4]memsys.CacheStats{c.Hier.L1D.Stats, c.Hier.L1I.Stats, c.Hier.L2.Stats, c.Hier.L3.Stats},
					polls: polls,
				}
				o.stack, _ = c.Accounting()
				o.loops = c.LoopAccounting()
				o.prof = c.ProfileSamples()
				return o
			}

			o1 := observe()
			// Reset the machine and the hierarchy (which belongs to the
			// caller, per the Reset contract) and re-run the identical image.
			c.Reset()
			c.Hier.Reset()
			c.SetPC(r.Base)
			polls = 0
			o2 := observe()

			if o1.stats != o2.stats {
				t.Fatalf("reused CPU diverged:\n run1 %+v\n run2 %+v", o1.stats, o2.stats)
			}
			if o1.sum != o2.sum {
				t.Fatalf("architectural divergence: sum %d then %d", o1.sum, o2.sum)
			}
			if o1.hier != o2.hier {
				t.Fatalf("cache stats diverged:\n run1 %+v\n run2 %+v", o1.hier, o2.hier)
			}
			if o1.stack != o2.stack {
				t.Fatalf("CPI stack diverged:\n run1 %+v\n run2 %+v", o1.stack, o2.stack)
			}
			if !reflect.DeepEqual(o1.loops, o2.loops) {
				t.Fatalf("per-loop CPI stacks diverged:\n run1 %+v\n run2 %+v", o1.loops, o2.loops)
			}
			if !reflect.DeepEqual(o1.prof, o2.prof) {
				t.Fatalf("profiler samples diverged:\n run1 %+v\n run2 %+v", o1.prof, o2.prof)
			}
			if o1.polls != o2.polls {
				t.Fatalf("telemetry hook fired %d then %d times", o1.polls, o2.polls)
			}
			if v.accounting {
				if _, ok := o1.loops[1]; !ok {
					t.Fatal("loop attribution produced no stack for loop 1 — variant not exercising accounting")
				}
			}
			if v.profiler != 0 && len(o1.prof) == 0 {
				t.Fatal("profiler produced no samples — variant not exercising the profiler")
			}
		})
	}
}

// TestHookCatchUpFiresOncePerBoundary pins the catch-up semantics of the
// next-event hook scheduler: when a hook's own charge advances the clock
// past several of its scheduled fire times, the skipped times are not
// delivered late — the hook fires at most once per bundle boundary and
// its schedule jumps past the charge.
func TestHookCatchUpFiresOncePerBoundary(t *testing.T) {
	const interval, charge = 100, 10_000
	c, _ := buildMachine(t, sumLoop(0x10000, 3000), nil)
	var fires []uint64
	c.AddPollHook(interval, func(now uint64) uint64 {
		fires = append(fires, now)
		if len(fires) == 1 {
			return charge
		}
		return 0
	})
	run(t, c)
	if len(fires) < 3 {
		t.Fatalf("hook fired only %d times", len(fires))
	}
	// At most once per bundle boundary: fire times strictly increase (the
	// schedule jumps past the current cycle after every fire, so the same
	// boundary can never deliver a hook twice).
	for i := 1; i < len(fires); i++ {
		if fires[i] <= fires[i-1] {
			t.Fatalf("fires %d and %d both at cycle %d", i-1, i, fires[i])
		}
	}
	// The charge pushed the clock 10k cycles; the 100 skipped fire times
	// must not be delivered as a burst afterwards.
	if gap := fires[1] - fires[0]; gap < charge {
		t.Fatalf("first gap %d < charge %d: skipped fire times were delivered late", gap, charge)
	}
}

// TestInterleavedHooksStableOrder runs two hooks with different intervals
// and checks the merged fire sequence: time never goes backwards, ties on
// the same boundary fire in registration order, and each hook keeps its
// own cadence.
func TestInterleavedHooksStableOrder(t *testing.T) {
	type fire struct {
		id  int
		now uint64
	}
	c, _ := buildMachine(t, sumLoop(0x10000, 5000), nil)
	var seq []fire
	c.AddPollHook(300, func(now uint64) uint64 { seq = append(seq, fire{0, now}); return 0 })
	c.AddPollHook(500, func(now uint64) uint64 { seq = append(seq, fire{1, now}); return 0 })
	run(t, c)
	var n0, n1 int
	last := [2]uint64{^uint64(0), ^uint64(0)}
	for i, f := range seq {
		if i > 0 && f.now < seq[i-1].now {
			t.Fatalf("fire %d at %d after fire at %d: time went backwards", i, f.now, seq[i-1].now)
		}
		if i > 0 && f.now == seq[i-1].now && seq[i-1].id > f.id {
			t.Fatalf("tie at cycle %d fired out of registration order", f.now)
		}
		// Per hook, fire times strictly increase: one fire per boundary.
		if last[f.id] != ^uint64(0) && f.now <= last[f.id] {
			t.Fatalf("hook %d fired twice at cycle %d", f.id, f.now)
		}
		last[f.id] = f.now
		if f.id == 0 {
			n0++
		} else {
			n1++
		}
	}
	if n0 == 0 || n1 == 0 {
		t.Fatalf("hook fire counts %d/%d: one hook starved", n0, n1)
	}
	if n0 < n1 {
		t.Fatalf("300-cycle hook fired %d times, 500-cycle hook %d: cadence lost", n0, n1)
	}
}

// patchableLoop is the self-modifying-code scaffold shared by the
// predecode-invalidation test: a long countdown, then a tail that sets r9
// and halts. The tail bundle is the patch target.
func patchableLoop() (*asm.Builder, string) {
	b := asm.New(0)
	b.MovI(5, 100_000)
	b.Label("loop")
	b.AddI(5, -1, 5)
	b.CmpI(isa.CmpLt, 1, 2, 0, 5)
	b.BrCond(1, "loop")
	b.Label("tail")
	b.MovI(9, 111)
	b.Halt()
	return b, "tail"
}

// TestPatchUnpatchExecutesLikeNeverPatched proves the predecoded code
// image tracks writes in both directions: a machine whose tail bundle is
// patched to a branch and then restored mid-run executes bundle-for-bundle
// like a machine that was never patched — identical architectural result
// and bit-identical statistics. A stale predecode slab would either
// execute the patched branch (wrong r9) or diverge in timing.
func TestPatchUnpatchExecutesLikeNeverPatched(t *testing.T) {
	build := func(patch bool) (Stats, uint64) {
		b, tail := patchableLoop()
		r, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		cs := program.NewCodeSpace()
		seg := &program.Segment{Name: "main", Base: 0, Bundles: r.Bundles}
		if err := cs.AddSegment(seg); err != nil {
			t.Fatal(err)
		}
		c := New(DefaultConfig(), cs, memsys.NewMemory(), memsys.NewHierarchy(memsys.DefaultConfig()), nil)
		tailAddr, ok := r.AddrOf(tail)
		if !ok {
			t.Fatal("tail label missing")
		}
		orig := seg.Bundles[tailAddr/isa.BundleBytes]
		c.AddPollHook(1000, func(uint64) uint64 {
			if patch {
				// Patch the tail to a branch, then restore the original:
				// both writes must reach the predecoded image.
				if err := cs.Write(tailAddr, isa.BranchBundle(0x100000)); err != nil {
					t.Error(err)
				}
				if err := cs.Write(tailAddr, orig); err != nil {
					t.Error(err)
				}
			}
			return 0
		})
		c.SetPC(0)
		st := run(t, c)
		return st, c.GR[9]
	}

	plainStats, plainR9 := build(false)
	patchedStats, patchedR9 := build(true)
	if plainR9 != 111 || patchedR9 != 111 {
		t.Fatalf("r9 = %d/%d, want 111/111 (unpatched tail must execute)", plainR9, patchedR9)
	}
	if plainStats != patchedStats {
		t.Fatalf("patched-then-unpatched run diverged from never-patched:\n plain   %+v\n patched %+v",
			plainStats, patchedStats)
	}
}

// TestRunLoopZeroAllocs verifies the tentpole's zero-allocation claim for
// the whole run loop — fetch, dispatch, hierarchy accesses, hook
// scheduling — using the same Reset/Run recycle the benchmarks use.
func TestRunLoopZeroAllocs(t *testing.T) {
	const base, n = 0x10000, 256
	c, r := buildMachine(t, sumLoop(base, n), nil)
	for i := 0; i < n; i++ {
		c.Mem.WriteN(base+uint64(i*8), 8, uint64(i))
	}
	// Prime once: first touches of simulated memory allocate pages.
	c.Run(0)
	allocs := testing.AllocsPerRun(10, func() {
		c.Reset()
		c.Hier.Reset()
		c.SetPC(r.Base)
		if _, err := c.Run(0); err != nil {
			t.Error(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("run loop allocates %.1f times per run, want 0", allocs)
	}
}
