package cpu

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/memsys"
	"repro/internal/program"
)

// TestRunErrorReportsCurrentCycles pins the step()-error path of
// RunContext: a program that faults mid-run (here by running off the end
// of its segment into unmapped space) must still report the cycle count
// at the fault, not the stale value from the previous Stats refresh.
func TestRunErrorReportsCurrentCycles(t *testing.T) {
	b := asm.New(0)
	b.MovI(5, 500)
	b.Label("loop")
	b.AddI(5, -1, 5)
	b.CmpI(isa.CmpLt, 1, 2, 0, 5)
	b.BrCond(1, "loop")
	// No halt: after the loop the CPU fetches past the segment end.
	c, _ := buildMachine(t, b, nil)
	st, err := c.Run(0)
	if err == nil {
		t.Fatal("run off the segment end did not fault")
	}
	if !strings.Contains(err.Error(), "unmapped") {
		t.Fatalf("unexpected fault: %v", err)
	}
	if st.Cycles == 0 {
		t.Fatal("faulting run reported zero cycles")
	}
	if st.Cycles != c.Now() {
		t.Fatalf("Stats.Cycles = %d but clock is at %d: stale cycles on the error path", st.Cycles, c.Now())
	}
	if st.Retired < 500 {
		t.Fatalf("retired only %d instructions before the fault", st.Retired)
	}
}

// TestReusedCPUBitIdenticalStats runs the same image twice on one machine
// with Reset between runs and demands bit-identical CPU and cache
// statistics — the regression net for stale microarchitectural state
// (lastFetchLine, hook next-fire times, scoreboard, victim/way memos)
// surviving a Reset.
func TestReusedCPUBitIdenticalStats(t *testing.T) {
	const base, n = 0x10000, 400
	c, r := buildMachine(t, sumLoop(base, n), nil)
	for i := 0; i < n; i++ {
		c.Mem.WriteN(base+uint64(i*8), 8, uint64(i*7))
	}
	// A poll hook with a charge exercises the hook schedule reset too.
	c.AddPollHook(700, func(uint64) uint64 { return 3 })

	run1 := run(t, c)
	sum1 := c.GR[8]
	h1 := [4]memsys.CacheStats{c.Hier.L1D.Stats, c.Hier.L1I.Stats, c.Hier.L2.Stats, c.Hier.L3.Stats}

	// Reset the machine and the hierarchy (which belongs to the caller,
	// per the Reset contract) and re-run the identical image.
	c.Reset()
	c.Hier.Reset()
	c.SetPC(r.Base)
	run2 := run(t, c)
	h2 := [4]memsys.CacheStats{c.Hier.L1D.Stats, c.Hier.L1I.Stats, c.Hier.L2.Stats, c.Hier.L3.Stats}

	if run1 != run2 {
		t.Fatalf("reused CPU diverged:\n run1 %+v\n run2 %+v", run1, run2)
	}
	if c.GR[8] != sum1 {
		t.Fatalf("architectural divergence: sum %d then %d", sum1, c.GR[8])
	}
	if h1 != h2 {
		t.Fatalf("cache stats diverged:\n run1 %+v\n run2 %+v", h1, h2)
	}
}

// TestHookCatchUpFiresOncePerBoundary pins the catch-up semantics of the
// next-event hook scheduler: when a hook's own charge advances the clock
// past several of its scheduled fire times, the skipped times are not
// delivered late — the hook fires at most once per bundle boundary and
// its schedule jumps past the charge.
func TestHookCatchUpFiresOncePerBoundary(t *testing.T) {
	const interval, charge = 100, 10_000
	c, _ := buildMachine(t, sumLoop(0x10000, 3000), nil)
	var fires []uint64
	c.AddPollHook(interval, func(now uint64) uint64 {
		fires = append(fires, now)
		if len(fires) == 1 {
			return charge
		}
		return 0
	})
	run(t, c)
	if len(fires) < 3 {
		t.Fatalf("hook fired only %d times", len(fires))
	}
	// At most once per bundle boundary: fire times strictly increase (the
	// schedule jumps past the current cycle after every fire, so the same
	// boundary can never deliver a hook twice).
	for i := 1; i < len(fires); i++ {
		if fires[i] <= fires[i-1] {
			t.Fatalf("fires %d and %d both at cycle %d", i-1, i, fires[i])
		}
	}
	// The charge pushed the clock 10k cycles; the 100 skipped fire times
	// must not be delivered as a burst afterwards.
	if gap := fires[1] - fires[0]; gap < charge {
		t.Fatalf("first gap %d < charge %d: skipped fire times were delivered late", gap, charge)
	}
}

// TestInterleavedHooksStableOrder runs two hooks with different intervals
// and checks the merged fire sequence: time never goes backwards, ties on
// the same boundary fire in registration order, and each hook keeps its
// own cadence.
func TestInterleavedHooksStableOrder(t *testing.T) {
	type fire struct {
		id  int
		now uint64
	}
	c, _ := buildMachine(t, sumLoop(0x10000, 5000), nil)
	var seq []fire
	c.AddPollHook(300, func(now uint64) uint64 { seq = append(seq, fire{0, now}); return 0 })
	c.AddPollHook(500, func(now uint64) uint64 { seq = append(seq, fire{1, now}); return 0 })
	run(t, c)
	var n0, n1 int
	last := [2]uint64{^uint64(0), ^uint64(0)}
	for i, f := range seq {
		if i > 0 && f.now < seq[i-1].now {
			t.Fatalf("fire %d at %d after fire at %d: time went backwards", i, f.now, seq[i-1].now)
		}
		if i > 0 && f.now == seq[i-1].now && seq[i-1].id > f.id {
			t.Fatalf("tie at cycle %d fired out of registration order", f.now)
		}
		// Per hook, fire times strictly increase: one fire per boundary.
		if last[f.id] != ^uint64(0) && f.now <= last[f.id] {
			t.Fatalf("hook %d fired twice at cycle %d", f.id, f.now)
		}
		last[f.id] = f.now
		if f.id == 0 {
			n0++
		} else {
			n1++
		}
	}
	if n0 == 0 || n1 == 0 {
		t.Fatalf("hook fire counts %d/%d: one hook starved", n0, n1)
	}
	if n0 < n1 {
		t.Fatalf("300-cycle hook fired %d times, 500-cycle hook %d: cadence lost", n0, n1)
	}
}

// patchableLoop is the self-modifying-code scaffold shared by the
// predecode-invalidation test: a long countdown, then a tail that sets r9
// and halts. The tail bundle is the patch target.
func patchableLoop() (*asm.Builder, string) {
	b := asm.New(0)
	b.MovI(5, 100_000)
	b.Label("loop")
	b.AddI(5, -1, 5)
	b.CmpI(isa.CmpLt, 1, 2, 0, 5)
	b.BrCond(1, "loop")
	b.Label("tail")
	b.MovI(9, 111)
	b.Halt()
	return b, "tail"
}

// TestPatchUnpatchExecutesLikeNeverPatched proves the predecoded code
// image tracks writes in both directions: a machine whose tail bundle is
// patched to a branch and then restored mid-run executes bundle-for-bundle
// like a machine that was never patched — identical architectural result
// and bit-identical statistics. A stale predecode slab would either
// execute the patched branch (wrong r9) or diverge in timing.
func TestPatchUnpatchExecutesLikeNeverPatched(t *testing.T) {
	build := func(patch bool) (Stats, uint64) {
		b, tail := patchableLoop()
		r, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		cs := program.NewCodeSpace()
		seg := &program.Segment{Name: "main", Base: 0, Bundles: r.Bundles}
		if err := cs.AddSegment(seg); err != nil {
			t.Fatal(err)
		}
		c := New(DefaultConfig(), cs, memsys.NewMemory(), memsys.NewHierarchy(memsys.DefaultConfig()), nil)
		tailAddr, ok := r.AddrOf(tail)
		if !ok {
			t.Fatal("tail label missing")
		}
		orig := seg.Bundles[tailAddr/isa.BundleBytes]
		c.AddPollHook(1000, func(uint64) uint64 {
			if patch {
				// Patch the tail to a branch, then restore the original:
				// both writes must reach the predecoded image.
				if err := cs.Write(tailAddr, isa.BranchBundle(0x100000)); err != nil {
					t.Error(err)
				}
				if err := cs.Write(tailAddr, orig); err != nil {
					t.Error(err)
				}
			}
			return 0
		})
		c.SetPC(0)
		st := run(t, c)
		return st, c.GR[9]
	}

	plainStats, plainR9 := build(false)
	patchedStats, patchedR9 := build(true)
	if plainR9 != 111 || patchedR9 != 111 {
		t.Fatalf("r9 = %d/%d, want 111/111 (unpatched tail must execute)", plainR9, patchedR9)
	}
	if plainStats != patchedStats {
		t.Fatalf("patched-then-unpatched run diverged from never-patched:\n plain   %+v\n patched %+v",
			plainStats, patchedStats)
	}
}

// TestRunLoopZeroAllocs verifies the tentpole's zero-allocation claim for
// the whole run loop — fetch, dispatch, hierarchy accesses, hook
// scheduling — using the same Reset/Run recycle the benchmarks use.
func TestRunLoopZeroAllocs(t *testing.T) {
	const base, n = 0x10000, 256
	c, r := buildMachine(t, sumLoop(base, n), nil)
	for i := 0; i < n; i++ {
		c.Mem.WriteN(base+uint64(i*8), 8, uint64(i))
	}
	// Prime once: first touches of simulated memory allocate pages.
	c.Run(0)
	allocs := testing.AllocsPerRun(10, func() {
		c.Reset()
		c.Hier.Reset()
		c.SetPC(r.Base)
		if _, err := c.Run(0); err != nil {
			t.Error(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("run loop allocates %.1f times per run, want 0", allocs)
	}
}
