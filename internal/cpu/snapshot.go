package cpu

import (
	"fmt"

	"repro/internal/isa"
)

// Snapshotting for the checkpoint/fork engine (DESIGN.md §16). A CPU
// snapshot captures every run-varying field of the core: architectural
// registers, control state, the cycle clock and scoreboards, the issue
// window, the hook schedule, statistics, and the accounting and profiler
// state. It does NOT capture the wired subsystems (Code, Mem, Hier, PMU
// have their own snapshots), the predecoded code image (derived state,
// kept coherent by code-space change hooks), or registered hook functions
// (host closures — a restored machine keeps the hooks its own assembly
// registered, and Restore validates that their count and intervals match
// the snapshot's so the restored schedule is meaningful).
//
// Snapshots are taken at hook boundaries (OnHookBoundary): the capture
// runs before the due hooks fire, and a restored machine's first step
// re-enters the same boundary and fires the same due hooks — under its
// own hook closures, which is what lets a fork continuation re-make the
// pending policy decision with a different configuration.

// hookState is the schedule of one registered poll hook.
type hookState struct {
	interval uint64
	next     uint64
}

// acctState deep-copies the CPI-stack attribution state (accounting.go).
// The attached image is not captured: Restore re-resolves the per-loop
// cache against the receiver's own image, which machine assembly attached.
type acctState struct {
	stack      [4]uint64
	loops      map[int][5]uint64
	curLoop    int
	curLo      uint64
	curHi      uint64
	lastSwitch uint64
}

// profState deep-copies the cycle-sampling profiler state (profile.go).
type profState struct {
	enabled  bool
	interval uint64
	samples  map[uint64]PCSample

	lastCycle     uint64
	lastLoadStall uint64
	lastL2Miss    uint64
	lastL3Miss    uint64
	lastPfUseful  uint64
	lastPfLate    uint64
}

// Snapshot captures the CPU's run-varying state.
type Snapshot struct {
	cfg Config

	gr [isa.NumGR]uint64
	fr [isa.NumFR]float64
	pr [isa.NumPR]bool
	br [isa.NumBR]uint64

	pc     uint64
	halted bool

	cycle   uint64
	grReady [isa.NumGR]uint64
	frReady [isa.NumFR]uint64

	bundlesUsed int
	loadsUsed   int
	storesUsed  int
	fpUsed      int
	brUsed      int

	lastFetchLine uint64
	hooks         []hookState
	hookNext      uint64

	acct acctState
	prof profState

	stats Stats
}

// Snapshot deep-copies the CPU's mutable state.
func (c *CPU) Snapshot() *Snapshot {
	s := &Snapshot{
		cfg: c.cfg,

		gr: c.GR,
		fr: c.FR,
		pr: c.PR,
		br: c.BR,

		pc:     c.pc,
		halted: c.halted,

		cycle:   c.cycle,
		grReady: c.grReady,
		frReady: c.frReady,

		bundlesUsed: c.bundlesUsed,
		loadsUsed:   c.loadsUsed,
		storesUsed:  c.storesUsed,
		fpUsed:      c.fpUsed,
		brUsed:      c.brUsed,

		lastFetchLine: c.lastFetchLine,
		hookNext:      c.hookNext,

		stats: c.Stats,
	}
	s.hooks = make([]hookState, len(c.hooks))
	for i := range c.hooks {
		s.hooks[i] = hookState{interval: c.hooks[i].interval, next: c.hooks[i].next}
	}

	s.acct = acctState{
		stack:      c.acct.stack,
		curLoop:    c.acct.curLoop,
		curLo:      c.acct.curLo,
		curHi:      c.acct.curHi,
		lastSwitch: c.acct.lastSwitch,
	}
	if c.acct.loops != nil {
		s.acct.loops = make(map[int][5]uint64, len(c.acct.loops))
		for id, v := range c.acct.loops {
			s.acct.loops[id] = *v
		}
	}

	s.prof = profState{
		enabled:       c.prof.enabled,
		interval:      c.prof.interval,
		lastCycle:     c.prof.lastCycle,
		lastLoadStall: c.prof.lastLoadStall,
		lastL2Miss:    c.prof.lastL2Miss,
		lastL3Miss:    c.prof.lastL3Miss,
		lastPfUseful:  c.prof.lastPfUseful,
		lastPfLate:    c.prof.lastPfLate,
	}
	if c.prof.samples != nil {
		s.prof.samples = make(map[uint64]PCSample, len(c.prof.samples))
		for pc, v := range c.prof.samples {
			s.prof.samples[pc] = *v
		}
	}
	return s
}

// Restore overwrites the CPU's mutable state from s. The receiver must be
// an identically assembled machine: same Config, same hooks (count and
// intervals, in registration order — the closures themselves belong to the
// receiver), same profiler enablement, and for per-loop accounting the
// same image attached via SetImage. Violations are errors and indicate the
// snapshot is being restored into a structurally different machine.
func (c *CPU) Restore(s *Snapshot) error {
	if c.cfg != s.cfg {
		return fmt.Errorf("cpu: snapshot config %+v does not match %+v", s.cfg, c.cfg)
	}
	if len(c.hooks) != len(s.hooks) {
		return fmt.Errorf("cpu: snapshot has %d poll hooks, machine has %d", len(s.hooks), len(c.hooks))
	}
	for i := range c.hooks {
		if c.hooks[i].interval != s.hooks[i].interval {
			return fmt.Errorf("cpu: poll hook %d interval %d does not match snapshot's %d",
				i, c.hooks[i].interval, s.hooks[i].interval)
		}
	}
	if c.prof.enabled != s.prof.enabled || c.prof.interval != s.prof.interval {
		return fmt.Errorf("cpu: profiler state (enabled %v interval %d) does not match snapshot's (%v %d)",
			c.prof.enabled, c.prof.interval, s.prof.enabled, s.prof.interval)
	}
	if (c.acct.loops != nil) != (s.acct.loops != nil) {
		return fmt.Errorf("cpu: per-loop accounting mismatch (machine %v, snapshot %v)",
			c.acct.loops != nil, s.acct.loops != nil)
	}

	c.GR = s.gr
	c.FR = s.fr
	c.PR = s.pr
	c.BR = s.br
	c.pc = s.pc
	c.halted = s.halted
	c.cycle = s.cycle
	c.grReady = s.grReady
	c.frReady = s.frReady
	c.bundlesUsed = s.bundlesUsed
	c.loadsUsed = s.loadsUsed
	c.storesUsed = s.storesUsed
	c.fpUsed = s.fpUsed
	c.brUsed = s.brUsed
	c.lastFetchLine = s.lastFetchLine
	for i := range c.hooks {
		c.hooks[i].next = s.hooks[i].next
	}
	c.hookNext = s.hookNext
	c.Stats = s.stats

	c.acct.stack = s.acct.stack
	c.acct.curLoop = s.acct.curLoop
	c.acct.curLo = s.acct.curLo
	c.acct.curHi = s.acct.curHi
	c.acct.lastSwitch = s.acct.lastSwitch
	if s.acct.loops != nil {
		c.acct.loops = make(map[int]*[5]uint64, len(s.acct.loops))
		for id, v := range s.acct.loops {
			ls := v
			c.acct.loops[id] = &ls
		}
		c.acct.curStack = c.acct.loopStack(s.acct.curLoop)
	} else {
		c.acct.curStack = nil
	}

	if s.prof.enabled {
		c.prof.samples = make(map[uint64]*PCSample, len(s.prof.samples))
		for pc, v := range s.prof.samples {
			sv := v
			c.prof.samples[pc] = &sv
		}
		c.prof.lastCycle = s.prof.lastCycle
		c.prof.lastLoadStall = s.prof.lastLoadStall
		c.prof.lastL2Miss = s.prof.lastL2Miss
		c.prof.lastL3Miss = s.prof.lastL3Miss
		c.prof.lastPfUseful = s.prof.lastPfUseful
		c.prof.lastPfLate = s.prof.lastPfLate
	}
	return nil
}
