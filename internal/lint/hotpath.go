package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
)

// HotPathFiles lists the run-loop files held to the zero-allocation rule,
// relative to the module root. These are the files the per-cycle and
// per-access paths of the simulator live in; a stray allocation or
// time.Now here costs every simulated bundle. memdiff.go is deliberately
// absent — it is a debugging aid, never on the run path.
var HotPathFiles = []string{
	"internal/cpu/accounting.go",
	"internal/cpu/arch.go",
	"internal/cpu/cpu.go",
	"internal/cpu/predecode.go",
	"internal/cpu/profile.go",
	"internal/memsys/cache.go",
	"internal/memsys/hierarchy.go",
	"internal/memsys/memory.go",
	"internal/metrics/metrics.go",
}

// coldDirective marks a function as off the per-cycle path, exempting it
// from the hotpath check. Put it in the function's doc comment.
const coldDirective = "//adore:coldpath"

// HotPath checks one file for per-step allocation hazards: calls to the
// allocating builtins (make, new, append), address-taken composite
// literals, closures, goroutine launches, and calls to time.Now or any
// fmt function. Functions named New* or String and functions whose doc
// comment carries //adore:coldpath are exempt; so are files that are not
// Go source.
func HotPath(path string) ([]Finding, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var fs []Finding
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil || hotPathExempt(fn) {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if msg := hotPathHazard(n); msg != "" {
				fs = append(fs, Finding{
					Pos:   fset.Position(n.Pos()),
					Check: "hotpath",
					Msg:   msg + " in hot-path function " + fn.Name.Name,
				})
			}
			return true
		})
	}
	return fs, nil
}

// hotPathExempt reports whether fn is outside the zero-allocation rule:
// a constructor, a Stringer, or explicitly marked cold.
func hotPathExempt(fn *ast.FuncDecl) bool {
	if strings.HasPrefix(fn.Name.Name, "New") || fn.Name.Name == "String" {
		return true
	}
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == coldDirective {
			return true
		}
	}
	return false
}

// hotPathHazard classifies one AST node as an allocation or timing
// hazard, returning a diagnostic message or "".
func hotPathHazard(n ast.Node) string {
	switch n := n.(type) {
	case *ast.CallExpr:
		switch fun := n.Fun.(type) {
		case *ast.Ident:
			switch fun.Name {
			case "make", "new", "append":
				return "calls allocating builtin " + fun.Name
			}
		case *ast.SelectorExpr:
			pkg, ok := fun.X.(*ast.Ident)
			if !ok {
				return ""
			}
			if pkg.Name == "time" && fun.Sel.Name == "Now" {
				return "calls time.Now (wall-clock read per step)"
			}
			// fmt.Errorf is allowed: the run loop constructs an error
			// only on paths that terminate the simulation.
			if pkg.Name == "fmt" && fun.Sel.Name != "Errorf" {
				return "calls fmt." + fun.Sel.Name + " (formats and allocates)"
			}
		}
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := n.X.(*ast.CompositeLit); ok {
				return "heap-allocates &composite literal"
			}
		}
	case *ast.FuncLit:
		return "creates a closure (captured variables escape)"
	case *ast.GoStmt:
		return "launches a goroutine"
	}
	return ""
}
