// Package lint implements the repository's custom vet checks, built on
// the standard library's go/ast only (the module has no external
// dependencies, so the go/analysis framework and `go vet -vettool` are
// unavailable). cmd/adore-vet runs every check over the tree and CI runs
// it as a direct step.
//
// Checks:
//
//   - hotpath: the simulator run loop ([HotPathFiles]) must not allocate
//     or call time.Now / fmt.* per step. Constructors (New*), String
//     methods, and functions marked with an //adore:coldpath directive
//     are exempt.
//   - obsnames: every obs.Kind* constant must have an entry in the
//     package's kindNames table, so events never print as "Kind?".
package lint

import (
	"fmt"
	"go/token"
)

// Finding is one vet diagnostic at a source position.
type Finding struct {
	Pos   token.Position
	Check string // "hotpath" or "obsnames"
	Msg   string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Check, f.Msg)
}
