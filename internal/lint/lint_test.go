package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSrc(t *testing.T, src string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "src.go")
	if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func msgs(fs []Finding) []string {
	var out []string
	for _, f := range fs {
		out = append(out, f.Msg)
	}
	return out
}

func TestHotPathFlagsHazards(t *testing.T) {
	p := writeSrc(t, `package x

import (
	"fmt"
	"time"
)

func step() {
	a := make([]int, 4)
	b := new(int)
	a = append(a, *b)
	c := &struct{ n int }{n: len(a)}
	f := func() int { return c.n }
	go f()
	_ = time.Now()
	_ = fmt.Sprintf("%d", f())
}
`)
	fs, err := HotPath(p)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"allocating builtin make",
		"allocating builtin new",
		"allocating builtin append",
		"&composite literal",
		"creates a closure",
		"launches a goroutine",
		"calls time.Now",
		"calls fmt.Sprintf",
	}
	for _, w := range want {
		found := false
		for _, m := range msgs(fs) {
			if strings.Contains(m, w) {
				found = true
			}
		}
		if !found {
			t.Errorf("no finding mentioning %q; got %q", w, msgs(fs))
		}
	}
	for _, f := range fs {
		if !strings.Contains(f.Msg, "hot-path function step") {
			t.Errorf("finding not attributed to enclosing function: %q", f.Msg)
		}
		if f.Pos.Line == 0 {
			t.Errorf("finding without a line: %+v", f)
		}
	}
}

func TestHotPathExemptions(t *testing.T) {
	p := writeSrc(t, `package x

import "fmt"

type T struct{ n int }

// NewT allocates; constructors are exempt.
func NewT() *T { return &T{n: len(make([]int, 8))} }

func (t *T) String() string { return fmt.Sprintf("T{%d}", t.n) }

// register is called once at startup.
//
//adore:coldpath
func register(t *T) []*T { return append([]*T(nil), t) }

func hot(t *T) int { return t.n }
`)
	fs, err := HotPath(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Errorf("exempt functions flagged: %q", msgs(fs))
	}
}

func TestHotPathDirectiveIsExact(t *testing.T) {
	// A prose mention of the directive is not the directive.
	p := writeSrc(t, `package x

// hot mentions adore:coldpath but is not marked with it.
func hot() []int { return make([]int, 1) }
`)
	fs, err := HotPath(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 {
		t.Errorf("want 1 finding, got %q", msgs(fs))
	}
}

func TestObsNamesComplete(t *testing.T) {
	p := writeSrc(t, `package obs

type Kind uint8

const (
	KindA Kind = iota
	KindB
)

var kindNames = [...]string{
	KindA: "A",
	KindB: "B",
}
`)
	fs, err := ObsNames(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Errorf("complete table flagged: %q", msgs(fs))
	}
}

func TestObsNamesMissingEntry(t *testing.T) {
	p := writeSrc(t, `package obs

type Kind uint8

const (
	KindA Kind = iota
	KindB
	KindC
)

var kindNames = [...]string{
	KindA: "A",
	KindC: "C",
}
`)
	fs, err := ObsNames(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || !strings.Contains(fs[0].Msg, "KindB") {
		t.Errorf("want exactly one finding for KindB, got %q", msgs(fs))
	}
}

func TestObsNamesNoTable(t *testing.T) {
	p := writeSrc(t, `package obs

type Kind uint8

const KindA Kind = 0
`)
	fs, err := ObsNames(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || !strings.Contains(fs[0].Msg, "kindNames table not found") {
		t.Errorf("want a missing-table finding, got %q", msgs(fs))
	}
}

// TestRepoIsClean runs both checks over the real tree, pinning the
// calibration: the run-loop files allocate only in constructors and
// //adore:coldpath functions, and the obs name table is complete. This is
// the same sweep cmd/adore-vet performs.
func TestRepoIsClean(t *testing.T) {
	root := filepath.Join("..", "..")
	for _, rel := range HotPathFiles {
		fs, err := HotPath(filepath.Join(root, rel))
		if err != nil {
			t.Fatalf("%s: %v", rel, err)
		}
		for _, f := range fs {
			t.Errorf("%s", f)
		}
	}
	fs, err := ObsNames(filepath.Join(root, "internal", "obs", "obs.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		t.Errorf("%s", f)
	}
}
