package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
)

// ObsNames checks that every Kind* constant declared in the given file
// (internal/obs/obs.go) has an entry in its kindNames table. A missing
// entry is invisible at compile time — the sparse composite literal just
// leaves a "" hole, or the array silently stops short — and every event
// of that kind then prints as "Kind?" in logs and traces.
func ObsNames(path string) ([]Finding, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return nil, err
	}

	// All top-level constants named Kind<Something>.
	type constDecl struct {
		name string
		pos  token.Pos
	}
	var kinds []constDecl
	named := map[string]bool{} // keys present in kindNames
	tableFound := false

	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		switch gd.Tok {
		case token.CONST:
			for _, spec := range gd.Specs {
				vs := spec.(*ast.ValueSpec)
				for _, id := range vs.Names {
					if strings.HasPrefix(id.Name, "Kind") && len(id.Name) > len("Kind") {
						kinds = append(kinds, constDecl{id.Name, id.Pos()})
					}
				}
			}
		case token.VAR:
			for _, spec := range gd.Specs {
				vs := spec.(*ast.ValueSpec)
				for i, id := range vs.Names {
					if id.Name != "kindNames" || i >= len(vs.Values) {
						continue
					}
					cl, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					tableFound = true
					for _, elt := range cl.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						if key, ok := kv.Key.(*ast.Ident); ok {
							named[key.Name] = true
						}
					}
				}
			}
		}
	}

	var fs []Finding
	if !tableFound {
		fs = append(fs, Finding{
			Pos:   fset.Position(file.Pos()),
			Check: "obsnames",
			Msg:   "kindNames table not found (expected a keyed composite literal)",
		})
		return fs, nil
	}
	for _, k := range kinds {
		if !named[k.name] {
			fs = append(fs, Finding{
				Pos:   fset.Position(k.pos),
				Check: "obsnames",
				Msg:   "constant " + k.name + " has no kindNames entry; its events print as \"Kind?\"",
			})
		}
	}
	return fs, nil
}
