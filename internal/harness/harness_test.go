package harness

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestSpeedupMath(t *testing.T) {
	cases := []struct {
		base, test uint64
		want       float64
	}{
		{100, 100, 0},
		{150, 100, 0.5},
		{100, 200, -0.5},
	}
	for _, c := range cases {
		if got := Speedup(c.base, c.test); got != c.want {
			t.Errorf("Speedup(%d,%d) = %v, want %v", c.base, c.test, got, c.want)
		}
	}
	// Zero test cycles is a broken run, not a 0% speedup.
	if got := Speedup(100, 0); !math.IsNaN(got) {
		t.Errorf("Speedup(100,0) = %v, want NaN", got)
	}
	if b := bar(math.NaN()); b != "" {
		t.Errorf("bar(NaN) = %q, want empty", b)
	}
}

func TestMeanCPISegments(t *testing.T) {
	s := []SeriesPoint{{CPI: 2}, {CPI: 2}, {CPI: 4}, {CPI: 4}}
	if got := MeanCPI(s, 0, 0.5); got != 2 {
		t.Fatalf("first half = %v", got)
	}
	if got := MeanCPI(s, 0.5, 1); got != 4 {
		t.Fatalf("second half = %v", got)
	}
	if got := MeanCPI(nil, 0, 1); got != 0 {
		t.Fatalf("empty = %v", got)
	}
	if got := MeanCPI(s, 0.99, 1.0); got != 4 {
		t.Fatalf("tail slice = %v", got)
	}
}

func TestTable2FromFig7(t *testing.T) {
	f := &Fig7Result{Rows: []SpeedupRow{
		{Name: "x", Stats: core.Stats{DirectPrefetches: 3, IndirectPrefetches: 1, PointerPrefetches: 2, PhasesOptimized: 4}},
	}}
	t2 := Table2FromFig7(f)
	if len(t2.Rows) != 1 {
		t.Fatal("rows")
	}
	r := t2.Rows[0]
	if r.Direct != 3 || r.Indirect != 1 || r.Pointer != 2 || r.Phases != 4 {
		t.Fatalf("row = %+v", r)
	}
	if !strings.Contains(t2.Render(), "pointer-chasing") {
		t.Fatal("render missing header")
	}
}

func TestBarRendering(t *testing.T) {
	if bar(0.10) != "#####" {
		t.Fatalf("bar(0.10) = %q", bar(0.10))
	}
	if bar(-0.06) != "---" {
		t.Fatalf("bar(-0.06) = %q", bar(-0.06))
	}
	if len(bar(5.0)) != 40 {
		t.Fatalf("bar clamping failed: %q", bar(5.0))
	}
}

func TestFig10RenderAndRows(t *testing.T) {
	f := &Fig10Result{Rows: []Fig10Row{{Name: "swim", Restricted: 120, Original: 100, Impact: 0.2}}}
	out := f.Render()
	if !strings.Contains(out, "swim") || !strings.Contains(out, "20.0%") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestFig11MaxOverhead(t *testing.T) {
	f := &Fig11Result{Rows: []Fig11Row{{Overhead: 0.01}, {Overhead: 0.03}, {Overhead: 0.02}}}
	if got := f.MaxOverhead(); got != 0.03 {
		t.Fatalf("MaxOverhead = %v", got)
	}
}

func TestTable1FilteredFraction(t *testing.T) {
	r := &Table1Result{Rows: []Table1Row{
		{LoopsO3: 10, LoopsProfile: 2},
		{LoopsO3: 10, LoopsProfile: 3},
	}}
	if got := r.FilteredFraction(); got != 0.75 {
		t.Fatalf("FilteredFraction = %v", got)
	}
	empty := &Table1Result{}
	if empty.FilteredFraction() != 0 {
		t.Fatal("empty fraction non-zero")
	}
}
