package harness

import (
	"fmt"
	"testing"

	"repro/internal/compiler"
	"repro/internal/workloads"
)

// TestDifferentialAllWorkloads is the PR's acceptance matrix: every paper
// workload, compiled at O2 and O3, runs through the reference oracle and
// the full machine in all four machine modes — patching {off,on} ×
// observability {off,on} — and the engines must agree on final
// architectural state, memory, and counters (see DiffAgainst). The oracle
// runs once per (workload, level); the four machine runs compare against
// that single result.
func TestDifferentialAllWorkloads(t *testing.T) {
	const scale = 0.02
	var patched int64 // across all ADORE legs; proves the matrix isn't vacuous
	for _, bench := range workloads.All(scale) {
		bench := bench
		for _, level := range []compiler.OptLevel{compiler.O2, compiler.O3} {
			level := level
			t.Run(fmt.Sprintf("%s/%s", bench.Name, level), func(t *testing.T) {
				opts := compiler.DefaultOptions()
				opts.Level = level
				build, err := compiler.Build(bench.Kernel, opts)
				if err != nil {
					t.Fatal(err)
				}

				or, err := RunOracle(build.Image, 0)
				if err != nil {
					t.Fatal(err)
				}

				for _, mode := range []struct {
					name    string
					adore   bool
					observe bool
				}{
					{"plain", false, false},
					{"plain-observed", false, true},
					{"adore", true, false},
					{"adore-observed", true, true},
				} {
					cfg := DefaultRunConfig()
					cfg.ADORE = mode.adore
					cfg.Observe = mode.observe
					if mode.adore {
						cfg.Core = fastCore()
					}
					rep, err := DiffAgainst(or, build.Image, cfg)
					if err != nil {
						t.Fatalf("%s: %v", mode.name, err)
					}
					if rep.Failed() {
						t.Errorf("%s: %s", mode.name, rep)
					}
					if mode.adore && rep.CPU.Core != nil {
						patched += int64(rep.CPU.Core.TracesPatched)
					}
				}
			})
		}
	}
	// The transparency claim is only tested if patches were installed.
	// At this scale ~15 of the 17 workloads patch; require a healthy
	// margin so a silent regression in the optimizer trips the test.
	if patched < 10 {
		t.Errorf("only %d traces patched across all ADORE legs; matrix is near-vacuous", patched)
	}
}

// TestDifferentialCatchesPerturbation proves the harness has teeth:
// corrupting the oracle's view of a register or a memory byte must surface
// as a reported divergence on re-comparison.
func TestDifferentialCatchesPerturbation(t *testing.T) {
	bench, err := workloads.ByName("mcf", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	build, err := compiler.Build(bench.Kernel, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	or, err := RunOracle(build.Image, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := DiffAgainst(or, build.Image, DefaultRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("baseline diverges: %s", rep)
	}

	// One flipped register bit on the oracle side must be reported.
	or.Arch.GR[9] ^= 1
	regRep, err := DiffAgainst(or, build.Image, DefaultRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	or.Arch.GR[9] ^= 1
	if !regRep.Failed() {
		t.Error("flipped register bit not detected")
	}

	// One flipped memory byte must be reported.
	v := or.Mem.ReadN(compiler.DataBase, 1)
	or.Mem.WriteN(compiler.DataBase, 1, v^0xff)
	memRep, err := DiffAgainst(or, build.Image, DefaultRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	or.Mem.WriteN(compiler.DataBase, 1, v)
	if !memRep.Failed() {
		t.Error("flipped memory byte not detected")
	}
}
