package harness

import (
	"context"
	"flag"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/workloads"
)

var updatePolicyGolden = flag.Bool("update-policy-golden", false,
	"regenerate testdata/golden/policy_matrix.json instead of comparing against it")

const policyGoldenPath = "testdata/golden/policy_matrix.json"

// TestPolicyMatrixGolden re-runs the full policy matrix at the corpus scale
// and compares it against its own golden section — a separate file from the
// paper corpus, so regenerating one can never silently move the other. The
// same fresh matrix also carries the policy layer's two acceptance claims:
// the runtime selector is at least as good as the paper's fixed policy on
// aggregate cycles, and at least one benchmark is won outright by a
// non-paper policy.
func TestPolicyMatrixGolden(t *testing.T) {
	cfg := GoldenExpConfig()
	cfg.Engine = NewEngine(EngineConfig{})
	m, err := RunPolicyMatrix(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if *updatePolicyGolden {
		g := &PolicyGolden{Scale: cfg.Scale, Tol: DefaultGoldenTolerance(), Policies: m.Policies}
		for _, r := range m.Rows {
			g.Rows = append(g.Rows, GoldenPolicyRow{Name: r.Name, Cycles: r.Cycles, Prefetches: r.Prefetches})
		}
		if err := g.Save(policyGoldenPath); err != nil {
			t.Fatal(err)
		}
		t.Logf("policy matrix golden regenerated at %s", policyGoldenPath)
	} else {
		g, err := LoadPolicyGolden(policyGoldenPath)
		if err != nil {
			t.Fatal(err)
		}
		if g.Scale != cfg.Scale {
			t.Fatalf("policy golden scale %g but GoldenExpConfig scale %g — regenerate with -update-policy-golden",
				g.Scale, cfg.Scale)
		}
		for _, d := range g.Compare(m) {
			t.Error(d)
		}
	}

	// Acceptance: the selector must not lose to the fixed paper policy in
	// aggregate. It picks per phase, so per-benchmark it can only match or
	// beat whichever fixed policy its decisions emulate.
	agg := m.AggregateCycles()
	if agg[PolicySelectorColumn] > agg[core.PolicyPaper] {
		t.Errorf("selector aggregate %d cycles worse than paper %d",
			agg[PolicySelectorColumn], agg[core.PolicyPaper])
	}

	// Acceptance: the alternative policies must not be strictly dominated —
	// at least one benchmark must run faster under a non-paper policy.
	win := ""
	for _, r := range m.Rows {
		for _, col := range m.Policies {
			if col == PolicyBaseColumn || col == PolicySelectorColumn || col == core.PolicyPaper {
				continue
			}
			if r.Cycles[col] < r.Cycles[core.PolicyPaper] {
				win = r.Name + "/" + col
			}
		}
	}
	if win == "" {
		t.Error("no benchmark is won by a non-paper policy — alternatives are strictly dominated")
	} else {
		t.Logf("non-paper win: %s (selector aggregate %d vs paper %d)",
			win, agg[PolicySelectorColumn], agg[core.PolicyPaper])
	}
}

// TestPolicyMatrixRenderAndBest pins the report shape on hand-built rows:
// the best-fixed-policy rule (cheapest cycles, ties alphabetical, base and
// selector never eligible) and the render layout.
func TestPolicyMatrixRenderAndBest(t *testing.T) {
	m := &PolicyMatrixResult{
		Policies: []string{PolicyBaseColumn, "alpha", "beta", PolicySelectorColumn},
		Rows: []PolicyMatrixRow{
			{Name: "w1", Cycles: map[string]uint64{
				PolicyBaseColumn: 1000, "alpha": 900, "beta": 800, PolicySelectorColumn: 790}},
			{Name: "w2", Cycles: map[string]uint64{
				PolicyBaseColumn: 2000, "alpha": 1500, "beta": 1500, PolicySelectorColumn: 100}},
		},
	}
	if got := m.BestFixedPolicy(m.Rows[0]); got != "beta" {
		t.Errorf("best fixed policy for w1 = %q, want beta", got)
	}
	// w2: alpha and beta tie, and the selector's 100 cycles must not count.
	if got := m.BestFixedPolicy(m.Rows[1]); got != "alpha" {
		t.Errorf("best fixed policy for w2 = %q, want alpha (tie → alphabetical)", got)
	}

	agg := m.AggregateCycles()
	if agg[PolicyBaseColumn] != 3000 || agg["alpha"] != 2400 {
		t.Errorf("aggregate cycles = %v", agg)
	}

	out := m.Render()
	for _, want := range []string{"w1", "w2", "alpha", "beta", "aggregate", "best"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
}

// TestPolicyGoldenRoundTrip drives the full pin path on a real (tiny-scale)
// matrix: collect → save → load → compare is divergence-free, and each
// perturbation class — cycles drift, prefetch-count change, renamed row,
// dropped row, different column set — is caught as its own divergence.
func TestPolicyGoldenRoundTrip(t *testing.T) {
	cfg := GoldenExpConfig()
	cfg.Scale = 0.02
	cfg.Engine = NewEngine(EngineConfig{})
	g, err := CollectPolicyGolden(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !equalStrings(g.Policies, PolicyColumns()) {
		t.Fatalf("collector columns %v, want %v", g.Policies, PolicyColumns())
	}
	if len(g.Rows) != len(workloads.Names()) {
		t.Fatalf("collector pinned %d rows, want one per workload (%d)", len(g.Rows), len(workloads.Names()))
	}
	for _, r := range g.Rows {
		if r.Cycles[PolicyBaseColumn] == 0 {
			t.Errorf("%s: no baseline measurement", r.Name)
		}
		if len(r.Cycles) != len(g.Policies) {
			t.Errorf("%s: %d cycle cells, want %d", r.Name, len(r.Cycles), len(g.Policies))
		}
	}

	path := filepath.Join(t.TempDir(), "policy_matrix.json")
	if err := g.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPolicyGolden(path)
	if err != nil {
		t.Fatal(err)
	}

	cloneRow := func(r GoldenPolicyRow) PolicyMatrixRow {
		c := PolicyMatrixRow{Name: r.Name, Cycles: map[string]uint64{}, Prefetches: map[string]int{}}
		for k, v := range r.Cycles {
			c.Cycles[k] = v
		}
		for k, v := range r.Prefetches {
			c.Prefetches[k] = v
		}
		return c
	}
	matrix := func() *PolicyMatrixResult {
		m := &PolicyMatrixResult{Policies: append([]string{}, g.Policies...)}
		for _, r := range g.Rows {
			m.Rows = append(m.Rows, cloneRow(r))
		}
		return m
	}

	if divs := loaded.Compare(matrix()); len(divs) != 0 {
		t.Fatalf("round trip diverges: %v", divs)
	}

	perturb := []struct {
		name string
		mut  func(m *PolicyMatrixResult)
		want string
	}{
		{"cycles drift", func(m *PolicyMatrixResult) {
			m.Rows[0].Cycles[core.PolicyPaper] *= 2
		}, "cycles"},
		{"prefetch count", func(m *PolicyMatrixResult) {
			m.Rows[0].Prefetches[core.PolicyPaper]++
		}, "prefetches"},
		{"renamed row", func(m *PolicyMatrixResult) {
			m.Rows[0].Name = "mystery"
		}, "not in golden corpus"},
		{"dropped row", func(m *PolicyMatrixResult) {
			m.Rows = m.Rows[:len(m.Rows)-1]
		}, "rows"},
		{"different columns", func(m *PolicyMatrixResult) {
			m.Policies = append(m.Policies, "extra")
		}, "columns"},
	}
	for _, p := range perturb {
		t.Run(p.name, func(t *testing.T) {
			m := matrix()
			p.mut(m)
			divs := loaded.Compare(m)
			if len(divs) == 0 {
				t.Fatalf("perturbation not caught")
			}
			found := false
			for _, d := range divs {
				if strings.Contains(d, p.want) {
					found = true
				}
			}
			if !found {
				t.Errorf("divergences %v mention nothing about %q", divs, p.want)
			}
		})
	}
}

// TestResultCachePolicyAntiAliasing pins the satellite regression the run
// fingerprint exists for: two jobs that differ only in the prefetch policy
// (or only in Selector) must never share a cached result, while identical
// jobs must.
func TestResultCachePolicyAntiAliasing(t *testing.T) {
	paper := DefaultRunConfig()
	paper.ADORE = true
	nextline := paper
	nextline.Core.Policy = core.PolicyNextLine
	selector := paper
	selector.Core.Selector = true

	if paper.Fingerprint() == nextline.Fingerprint() {
		t.Fatal("RunConfigs differing only in Core.Policy share a fingerprint")
	}
	if paper.Fingerprint() == selector.Fingerprint() {
		t.Fatal("RunConfigs differing only in Core.Selector share a fingerprint")
	}

	cfg := GoldenExpConfig()
	b, err := workloads.ByName("mcf", cfg.Scale)
	if err != nil {
		t.Fatal(err)
	}
	sp := benchSpec(b, cfg.Scale, compiler.O2)
	mk := func(mut func(*RunConfig)) RunConfig {
		rc := cfg.runConfig()
		rc.ADORE = true
		rc.Core = cfg.Core
		mut(&rc)
		return rc
	}
	jobs := []Job{
		{Name: "mcf/paper", Compile: sp, Config: mk(func(*RunConfig) {})},
		{Name: "mcf/nextline", Compile: sp, Config: mk(func(rc *RunConfig) { rc.Core.Policy = core.PolicyNextLine })},
		{Name: "mcf/paper-again", Compile: sp, Config: mk(func(*RunConfig) {})},
	}
	eng := NewEngine(EngineConfig{Parallelism: 1})
	runs, err := eng.RunJobs(context.Background(), "antialias", jobs)
	if err != nil {
		t.Fatal(err)
	}
	if runs[0] == runs[1] {
		t.Fatal("paper and nextline jobs aliased to one cached result")
	}
	if runs[0] != runs[2] {
		t.Error("identical paper jobs did not share the cached result")
	}
	if hits, misses := eng.Results().Stats(); hits != 1 || misses != 2 {
		t.Errorf("result cache hits=%d misses=%d, want 1/2", hits, misses)
	}
	if runs[0].CPU.Cycles == 0 || runs[1].CPU.Cycles == 0 {
		t.Fatal("cached runs returned empty results")
	}
}
