package harness

import (
	"fmt"
	"testing"

	"repro/internal/analysis"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/workloads"
)

// staticLoops holds the straightened simple-loop bodies of one compiled
// image, indexed for lookup by segment slot position.
type staticLoops struct {
	seg    *program.Segment
	cfg    *analysis.CFG
	bodies []*analysis.LoopBody
}

func analyzeLoops(seg *program.Segment) *staticLoops {
	c := analysis.Build(analysis.SegmentInput(seg))
	d := c.Dominators()
	s := &staticLoops{seg: seg, cfg: c}
	for _, l := range c.NaturalLoops(d) {
		if body, ok := c.LoopBody(l); ok {
			s.bodies = append(s.bodies, body)
		}
	}
	return s
}

// bodyAt returns the loop body containing segment slot position pos and
// the body index of that position, or nil.
func (s *staticLoops) bodyAt(pos int) (*analysis.LoopBody, int) {
	for _, b := range s.bodies {
		if i := b.IndexOfPos(pos); i >= 0 {
			return b, i
		}
	}
	return nil, -1
}

// flattenBundles lists the non-nop instructions of a bundle sequence in
// execution order — the shape both the runtime slicer and the static
// classifier flatten to.
func flattenBundles(bs []isa.Bundle) []isa.Inst {
	var out []isa.Inst
	for _, b := range bs {
		for _, in := range b.Slots {
			if in.Op != isa.OpNop {
				out = append(out, in)
			}
		}
	}
	return out
}

// sameInsts reports whether the flattened trace equals the static loop
// body instruction for instruction — the precondition under which slicer
// and classifier analyze identical code.
func sameInsts(flat []isa.Inst, body *analysis.LoopBody) bool {
	if len(flat) != body.Len() {
		return false
	}
	for i := range flat {
		in, _ := body.At(i)
		if in != flat[i] {
			return false
		}
	}
	return true
}

// verdictsAgree maps the runtime slicer's Pattern onto the static
// classifier's Verdict and checks the pattern-specific details match.
func verdictsAgree(an core.Analysis, lc analysis.LoadClass) bool {
	switch an.Pattern {
	case core.PatternDirect:
		return lc.Verdict == analysis.VerdictStrided && lc.Stride == an.Stride
	case core.PatternIndirect:
		return lc.Verdict == analysis.VerdictIndirect &&
			lc.FeederStride == an.FeederStride && lc.FeederAddrReg == an.FeederAddrReg
	case core.PatternPointer:
		return lc.Verdict == analysis.VerdictPointer && lc.InductionReg == an.InductionReg
	default:
		return lc.Verdict == analysis.VerdictUnknown
	}
}

// TestStaticSlicerAgreement is the tentpole's differential check: across
// every paper workload at O2 and O3, each loop the runtime optimizer
// analyzes is re-derived statically — pristine trace bundles from the
// image, natural loop from the CFG — and the runtime slicer's pattern for
// every delinquent load must equal the static classifier's verdict.
// Traces that do not correspond to a simple static loop (multi-path, or
// truncated by the selector) are skipped and counted; a disagreement on
// any compared load fails.
func TestStaticSlicerAgreement(t *testing.T) {
	const scale = 0.02
	var compared, skipped, events int

	for _, bench := range workloads.All(scale) {
		for _, level := range []compiler.OptLevel{compiler.O2, compiler.O3} {
			opts := compiler.DefaultOptions()
			opts.Level = level
			build, err := compiler.Build(bench.Kernel, opts)
			if err != nil {
				t.Fatalf("%s/%s: build: %v", bench.Name, level, err)
			}
			img := build.Image
			loops := analyzeLoops(img.Code)
			name := fmt.Sprintf("%s/%s", bench.Name, level)

			cfg := DefaultRunConfig()
			cfg.ADORE = true
			cfg.Core = fastCore()
			cfg.OnOptimize = func(tr *core.Trace, loads []core.DelinquentLoad, res core.OptimizeResult) {
				events++
				if !tr.IsLoop {
					return
				}
				// The hook sees the trace after mutation; rebuild the
				// pristine trace from the image bundles at the original
				// addresses (injected code never lives at an original
				// address it didn't start from).
				prist := core.Trace{Start: tr.Start, IsLoop: true}
				for _, a := range tr.Orig {
					if a == 0 {
						continue
					}
					bi := int((a - img.Code.Base) / isa.BundleBytes)
					if bi < 0 || bi >= len(img.Code.Bundles) {
						skipped++
						return
					}
					prist.Bundles = append(prist.Bundles, img.Code.Bundles[bi])
					prist.Orig = append(prist.Orig, a)
				}
				if len(prist.Bundles) == 0 || prist.Orig[0] != prist.Start {
					skipped++
					return
				}
				prist.BackEdge = len(prist.Bundles) - 1
				flat := flattenBundles(prist.Bundles)

				for _, dl := range loads {
					bundleAddr := dl.PC &^ uint64(isa.BundleBytes-1)
					slot := int(dl.PC & uint64(isa.BundleBytes-1))
					segPos := int((bundleAddr-img.Code.Base)/isa.BundleBytes)*analysis.SlotsPerBundle + slot
					body, idx := loops.bodyAt(segPos)
					if body == nil || !sameInsts(flat, body) {
						skipped++
						continue
					}
					ti := -1
					for i, a := range prist.Orig {
						if a == bundleAddr {
							ti = i
						}
					}
					an, ok := core.ClassifyLoad(&prist, ti, slot)
					if !ok {
						skipped++
						continue
					}
					lc := body.Classify(idx)
					compared++
					if !verdictsAgree(an, lc) {
						t.Errorf("%s: load @%#x: runtime slicer says %v (stride %d), static classifier says %v (stride %d)",
							name, dl.PC, an.Pattern, an.Stride, lc.Verdict, lc.Stride)
					}
				}
			}
			if _, err := Run(build, cfg); err != nil {
				t.Fatalf("%s: run: %v", name, err)
			}
		}
	}

	t.Logf("agreement: %d optimize events, %d loads compared, %d skipped", events, compared, skipped)
	if compared < 15 {
		t.Errorf("only %d loads compared (events %d, skipped %d); differential is near-vacuous",
			compared, events, skipped)
	}
}
