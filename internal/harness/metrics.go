package harness

import (
	"sync/atomic"

	"repro/internal/metrics"
)

// Engine telemetry: the host-side view of an experiment sweep — jobs,
// worker utilization, cache effectiveness — plus per-job folds of the
// simulated aggregates each finished RunResult carries.
//
// Two semantics coexist deliberately:
//
//   - adore_engine_* metrics count host work: a result-cache hit is a
//     job that started and finished but simulated nothing.
//   - adore_sim_* / adore_mem_* metrics count work SERVED: they fold the
//     RunResult of every finished job, so a cache hit folds the cached
//     result again. That makes the sim totals proportional to what the
//     sweep consumed, not to what the simulator executed — the view a
//     throughput dashboard wants. (The live adore_core_* counters from
//     core.Telemetry are the execution-side complement: cache hits
//     contribute nothing there.)
//
// All instruments are nil when the engine has no registry, making every
// recording below a no-op (the internal/metrics contract).

// engineMetrics holds the engine's instruments.
type engineMetrics struct {
	jobsStarted *metrics.Counter
	jobsDone    *metrics.Counter
	jobsFailed  *metrics.Counter
	inflight    *metrics.Gauge
	workers     *metrics.Gauge
	queueWait   *metrics.Histogram
	jobLatency  *metrics.Histogram
	workerBusy  *metrics.Counter

	simCycles    *metrics.Counter
	simInsts     *metrics.Counter
	simLoads     *metrics.Counter
	simLoadStall *metrics.Counter

	memL1DMiss *metrics.Counter
	memL2Miss  *metrics.Counter
	memL3Miss  *metrics.Counter
	pfIssued   *metrics.Counter
	pfUseful   *metrics.Counter
	pfLate     *metrics.Counter
	pfUnused   *metrics.Counter

	obsDropped     *metrics.Counter
	samplesDropped *metrics.Counter
}

// newEngineMetrics registers the engine's metric set on r (nil-safe).
func newEngineMetrics(r *metrics.Registry) engineMetrics {
	return engineMetrics{
		jobsStarted: r.Counter("adore_engine_jobs_started_total", "experiment jobs dispatched to workers"),
		jobsDone:    r.Counter("adore_engine_jobs_completed_total", "experiment jobs finished successfully"),
		jobsFailed:  r.Counter("adore_engine_jobs_failed_total", "experiment jobs that returned an error"),
		inflight:    r.Gauge("adore_engine_jobs_inflight", "jobs currently executing on workers"),
		workers:     r.Gauge("adore_engine_workers", "worker-pool width"),
		queueWait:   r.Histogram("adore_engine_queue_wait_ns", "sweep start to job dispatch"),
		jobLatency:  r.Histogram("adore_engine_job_latency_ns", "job dispatch to completion"),
		workerBusy:  r.Counter("adore_engine_worker_busy_ns_total", "cumulative worker time spent in jobs"),

		simCycles:    r.Counter("adore_sim_cycles_total", "simulated cycles served (cache hits re-count)"),
		simInsts:     r.Counter("adore_sim_instructions_total", "simulated instructions served"),
		simLoads:     r.Counter("adore_sim_loads_total", "simulated loads served"),
		simLoadStall: r.Counter("adore_sim_load_stall_cycles_total", "simulated load-stall cycles served"),

		memL1DMiss: r.Counter("adore_mem_l1d_misses_total", "L1D misses across served runs"),
		memL2Miss:  r.Counter("adore_mem_l2_misses_total", "L2 misses across served runs"),
		memL3Miss:  r.Counter("adore_mem_l3_misses_total", "L3 misses across served runs"),
		pfIssued:   r.Counter("adore_mem_prefetch_issued_total", "lfetches issued across served runs"),
		pfUseful:   r.Counter("adore_mem_prefetch_useful_total", "prefetched lines first-used by a demand access"),
		pfLate:     r.Counter("adore_mem_prefetch_late_total", "demand accesses that hit an in-flight prefetch"),
		pfUnused:   r.Counter("adore_mem_prefetch_unused_total", "prefetched lines evicted untouched"),

		obsDropped:     r.Counter("adore_obs_events_dropped_total", "recorder ring overwrites across served runs"),
		samplesDropped: r.Counter("adore_sim_samples_dropped_total", "PMU samples lost to unhandled SSB overflows"),
	}
}

// dropCounts accumulates the two loss signals independently of the metric
// registry, so adore-bench can put them in its output _meta (and warn)
// even when no registry is configured.
type dropCounts struct {
	obsEvents atomic.Uint64
	samples   atomic.Uint64
}

// foldResult folds one finished job's simulated aggregates into the
// engine's metrics and drop accumulators.
func (e *Engine) foldResult(res *RunResult) {
	if res == nil {
		return
	}
	m := &e.metrics
	m.simCycles.Add(res.CPU.Cycles)
	m.simInsts.Add(res.CPU.Retired)
	m.simLoads.Add(res.CPU.Loads)
	m.simLoadStall.Add(res.CPU.LoadStalls)
	if h := res.Mem; h != nil {
		m.memL1DMiss.Add(h.L1D.Stats.Misses)
		m.memL2Miss.Add(h.L2.Stats.Misses)
		m.memL3Miss.Add(h.L3.Stats.Misses)
		pf := h.Prefetch()
		m.pfIssued.Add(pf.Issued)
		m.pfUseful.Add(pf.Useful)
		m.pfLate.Add(pf.Late)
		m.pfUnused.Add(pf.EvictedUnused)
	}
	if res.Obs != nil && res.Obs.Dropped > 0 {
		m.obsDropped.Add(res.Obs.Dropped)
		e.drops.obsEvents.Add(res.Obs.Dropped)
	}
	if res.Core != nil && res.Core.SamplesDropped > 0 {
		m.samplesDropped.Add(res.Core.SamplesDropped)
		e.drops.samples.Add(res.Core.SamplesDropped)
	}
}

// Drops reports the loss signals accumulated over every job this engine
// served: observability ring overwrites and PMU samples lost to
// unhandled SSB overflows. Nonzero values mean some recorded stream is
// incomplete — adore-bench surfaces them in its output _meta and warns.
func (e *Engine) Drops() (obsEvents, samples uint64) {
	return e.drops.obsEvents.Load(), e.drops.samples.Load()
}
