// Package harness assembles full experiment machines — compiled workload,
// memory system, PMU, CPU, and optionally the ADORE controller — runs them,
// and renders the paper's tables and figures from the results.
package harness

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/memsys"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/pmu"
	"repro/internal/program"
)

// RunConfig selects what to wire around the workload.
type RunConfig struct {
	ADORE        bool        // attach the dynamic optimizer
	Core         core.Config // ADORE parameters (ignored unless ADORE)
	CPU          cpu.Config
	Hierarchy    memsys.HierarchyConfig
	MaxInsts     uint64 // safety stop; 0 = default
	RecordSeries bool   // collect per-window CPI/DPI series (Figs. 8-9)

	// SampleOnly attaches the PMU and series recorder without ADORE —
	// the "No Runtime Prefetching" side of Figs. 8-9 still shows PMU
	// metrics over time.
	SampleOnly bool

	// CaptureDear additionally collects every sampled DEAR event
	// (requires SampleOnly) — the training profile for Table 1.
	CaptureDear bool

	// OnOptimize, when set with ADORE, observes every trace
	// optimization attempt (tooling/debugging hook). Excluded from the
	// run fingerprint (a hook is not configuration); jobs carrying one
	// bypass the engine's result cache.
	OnOptimize func(*core.Trace, []core.DelinquentLoad, core.OptimizeResult) `json:"-"`

	// Observe turns on the observability layer for this run: the CPU's
	// CPI-stack accounting (cpu.Config.Accounting), the controller's event
	// recorder (core.Config.Observe), and loop metadata on both, filling
	// RunResult.Obs / CPIStack / LoopCPI. Off by default; when off the run
	// is bit-identical to one built without the layer.
	Observe bool

	// Profile, when nonzero, enables the CPU's cycle-sampling profiler at
	// this interval (simulated cycles; prefer a prime — see
	// cpu.EnableProfiler) and fills RunResult.Profile. The sampler's hook
	// charges nothing, so cpu.Stats and all simulated results stay
	// bit-identical to an unprofiled run; only the result shape changes,
	// which is why the field participates in the fingerprint (a profiled
	// and an unprofiled job must not alias in the result cache).
	Profile uint64

	// Metrics, when set, wires this run's controller to a live metric
	// registry (core.Telemetry). Excluded from the fingerprint like
	// OnOptimize: instruments observe a run without shaping its result,
	// and a metrics-carrying run may share a result-cache entry with a
	// bare one.
	Metrics *metrics.Registry `json:"-"`
}

// Fingerprint returns a stable hash of every configuration field that
// shapes a run's observable result — the ADORE parameters (including the
// prefetch policy and selector), CPU and hierarchy geometry, instruction
// budget, and which outputs are collected. Two RunConfigs with equal
// fingerprints produce identical results for the same build, which is the
// contract the engine's result cache relies on; in particular, runs
// differing only in Core.Policy or Core.Selector fingerprint differently,
// so policies can never alias in a cache. The OnOptimize hook is excluded
// (tagged json:"-"): hooks observe a run without shaping its result, and
// hooked jobs skip result caching anyway.
func (cfg RunConfig) Fingerprint() string {
	b, err := json.Marshal(cfg)
	if err != nil {
		// RunConfig is plain data by construction; a marshal failure is a
		// programming error (e.g. a new un-taggable field), not a runtime
		// condition.
		panic(fmt.Sprintf("harness: RunConfig not fingerprintable: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// DearEvent is one captured miss event of a training profile.
type DearEvent struct {
	PC      uint64
	Addr    uint64
	Latency uint32
}

// DefaultRunConfig returns the standard machine configuration.
func DefaultRunConfig() RunConfig {
	return RunConfig{
		Core:      core.DefaultConfig(),
		CPU:       cpu.DefaultConfig(),
		Hierarchy: memsys.DefaultConfig(),
		MaxInsts:  2_000_000_000,
	}
}

// SeriesPoint is one profile window of the Fig. 8/9 time series.
type SeriesPoint struct {
	Cycle uint64
	CPI   float64
	// DearPerK is DEAR events per 1000 instructions — the paper's
	// "DEAR_CACHE_LAT8 / 1000 Instructions" metric.
	DearPerK float64
	DPI      float64
}

// RunResult is everything an experiment needs from one run.
type RunResult struct {
	Name       string
	CPU        cpu.Stats
	Core       *core.Stats // nil when ADORE was off
	Series     []SeriesPoint
	Mem        *memsys.Hierarchy
	DearEvents []DearEvent // non-nil only with CaptureDear

	// Observability outputs, non-nil only with RunConfig.Observe (and
	// omitted from JSON otherwise, keeping unobserved output unchanged).
	Obs      *obs.Capture         `json:",omitempty"` // controller event stream (ADORE runs)
	CPIStack *cpu.CPIStack        `json:",omitempty"` // whole-run cycle accounting
	LoopCPI  map[int]cpu.CPIStack `json:",omitempty"` // per-loop cycle accounting

	// Profile is the simulated-execution profile, non-nil only with
	// RunConfig.Profile (and omitted from JSON otherwise).
	Profile *obs.Profile `json:",omitempty"`

	// FinalMemory is the simulated data memory after the run — the
	// observable program results, used by semantics-preservation tests.
	FinalMemory *memsys.Memory `json:"-"`

	// Differential-harness outputs (never serialized): the final
	// architectural register state, the run's private code space (patched
	// state included), and the controller when ADORE was attached.
	Arch       *isa.ArchState     `json:"-"`
	Code       *program.CodeSpace `json:"-"`
	Controller *core.Controller   `json:"-"`
}

// ProfiledRun is a training run carrying its miss profile.
type ProfiledRun = RunResult

// RunProfiled runs the workload with sampling only, capturing the DEAR
// profile used by the Table 1 profile-guided compilation.
func RunProfiled(build *compiler.BuildResult, cfg RunConfig) (*ProfiledRun, error) {
	return RunProfiledContext(context.Background(), build, cfg)
}

// RunProfiledContext is RunProfiled with cancellation.
func RunProfiledContext(ctx context.Context, build *compiler.BuildResult, cfg RunConfig) (*ProfiledRun, error) {
	cfg.SampleOnly = true
	cfg.ADORE = false
	cfg.CaptureDear = true
	return RunContext(ctx, build, cfg)
}

// Run executes a compiled workload under cfg.
func Run(build *compiler.BuildResult, cfg RunConfig) (*RunResult, error) {
	return RunContext(context.Background(), build, cfg)
}

// RunContext is Run with cancellation threaded through the simulator: the
// CPU polls ctx between bundles, so even multi-billion-cycle simulations
// stop promptly when ctx fires. The run never mutates build — each run gets
// a private code-segment copy, memory, and hierarchy — so one BuildResult
// may back any number of concurrent runs.
func RunContext(ctx context.Context, build *compiler.BuildResult, cfg RunConfig) (*RunResult, error) {
	return RunImageContext(ctx, build.Image, cfg)
}

// RunImage executes a bare program image under cfg — the entry point for
// programs that never went through the compiler, such as fuzz-generated
// images (internal/progfuzz) and hand-assembled tests.
func RunImage(img *program.Image, cfg RunConfig) (*RunResult, error) {
	return RunImageContext(context.Background(), img, cfg)
}

// RunImageContext is RunImage with cancellation.
func RunImageContext(ctx context.Context, img *program.Image, cfg RunConfig) (*RunResult, error) {
	return runImage(ctx, img, cfg, nil, nil)
}

// runImage assembles and runs one machine. The two optional fork
// parameters (fork.go) select the checkpoint/fork engine's modes: a
// non-nil probe captures a ForkSnapshot while the run executes normally;
// a non-nil resume rewinds the freshly assembled machine to the snapshot
// before the first simulated cycle, so the run replays only the
// continuation. At most one may be set; plain runs pass nil for both.
func runImage(ctx context.Context, img *program.Image, cfg RunConfig, probe *forkProbe, resume *ForkSnapshot) (*RunResult, error) {
	code := program.NewCodeSpace()
	// Each run gets a private copy of the code: ADORE patches bundles in
	// place, and runs must not contaminate each other.
	seg := &program.Segment{
		Name:    img.Code.Name,
		Base:    img.Code.Base,
		Bundles: append([]isa.Bundle{}, img.Code.Bundles...),
	}
	if err := code.AddSegment(seg); err != nil {
		return nil, err
	}
	var mem *memsys.Memory
	if resume != nil {
		// A continuation forks the snapshot's frozen memory image instead
		// of re-initializing: pages are shared copy-on-write, so N
		// continuations fan out from one warmup without copying the heap.
		mem = resume.mem.Fork()
	} else {
		mem = memsys.NewMemory()
		if img.InitData != nil {
			img.InitData(mem)
		}
	}
	hier := memsys.NewHierarchy(cfg.Hierarchy)

	var p *pmu.PMU
	var ctrl *core.Controller
	res := &RunResult{Name: img.Name, Mem: hier}

	if cfg.Observe {
		cfg.Core.Observe = true
		cfg.CPU.Accounting = true
	}
	if cfg.Metrics != nil {
		cfg.Core.Telemetry = core.NewTelemetry(cfg.Metrics)
	}
	needPMU := cfg.ADORE || cfg.SampleOnly
	if needPMU {
		p = pmu.New(cfg.Core.Sampling)
	}
	m := cpu.New(cfg.CPU, code, mem, hier, p)
	m.SetPC(img.Entry)
	m.SetImage(img) // no-op without Accounting
	if cfg.Profile > 0 {
		m.EnableProfiler(cfg.Profile)
	}

	record := func(w core.WindowMetrics) {
		if !cfg.RecordSeries {
			return
		}
		dRet := float64(w.Retired)
		var dearPerK float64
		if dRet > 0 {
			dearPerK = float64(w.DearEvents) / dRet * 1000
		}
		res.Series = append(res.Series, SeriesPoint{
			Cycle: w.EndCycle, CPI: w.CPI, DearPerK: dearPerK, DPI: w.DPI,
		})
	}

	switch {
	case cfg.ADORE:
		var err error
		ctrl, err = core.NewController(cfg.Core, code, p)
		if err != nil {
			return nil, err
		}
		ctrl.OnWindow = record
		ctrl.OnOptimize = cfg.OnOptimize
		ctrl.SetImage(img)
		ctrl.Attach(m)
	case cfg.SampleOnly:
		ueb := core.NewUEB(cfg.Core.W)
		p.SetHandler(func(s []pmu.Sample) {
			if cfg.CaptureDear {
				for i := range s {
					if d := s[i].DEAR; d.Valid {
						res.DearEvents = append(res.DearEvents, DearEvent{PC: d.PC, Addr: d.Addr, Latency: d.Latency})
					}
				}
			}
			record(ueb.AddWindow(s))
		})
		p.Start(0)
	}

	if probe != nil {
		if err := probe.arm(m, mem, code, hier, p, ctrl, res); err != nil {
			return nil, fmt.Errorf("harness: %s: %w", img.Name, err)
		}
	}
	if resume != nil {
		if err := resume.restore(m, code, hier, p, ctrl, res); err != nil {
			return nil, fmt.Errorf("harness: %s: %w", img.Name, err)
		}
	}

	maxInsts := cfg.MaxInsts
	if maxInsts == 0 {
		maxInsts = 2_000_000_000
	}
	st, err := m.RunContext(ctx, maxInsts)
	if err != nil {
		return nil, fmt.Errorf("harness: %s: %w", img.Name, err)
	}
	if !m.Halted() {
		return nil, fmt.Errorf("harness: %s did not halt within %d instructions", img.Name, maxInsts)
	}
	if p != nil {
		p.Stop()
	}
	res.CPU = st
	res.FinalMemory = mem
	arch := m.ArchState()
	res.Arch = &arch
	res.Code = code
	res.Controller = ctrl
	if ctrl != nil {
		cs := ctrl.Stats
		res.Core = &cs
		res.Obs = ctrl.Capture() // nil unless Core.Observe
	}
	if stack, ok := m.Accounting(); ok {
		s := stack
		res.CPIStack = &s
		res.LoopCPI = m.LoopAccounting()
	}
	if cfg.Profile > 0 {
		res.Profile = obs.BuildProfile(img.Name, cfg.Profile, st.Cycles, m.ProfileSamples(), img)
	}
	return res, nil
}

// Speedup returns base/test - 1 as a fraction (positive = test faster).
// Zero testCycles means the test run never executed; that is NaN, not
// "no speedup" — callers rendering figures will see it instead of a
// silently-masked broken run.
func Speedup(baseCycles, testCycles uint64) float64 {
	if testCycles == 0 {
		return math.NaN()
	}
	return float64(baseCycles)/float64(testCycles) - 1
}
