package harness

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/pmu"
	"repro/internal/workloads"
)

func extCore() core.Config {
	cfg := core.DefaultConfig()
	cfg.Sampling = pmu.Config{SampleInterval: 2000, SSBSize: 64, DearLatencyMin: 8, HandlerCyclesPerSample: 30}
	cfg.W = 8
	cfg.PollInterval = 20_000
	cfg.StableWindows = 3
	return cfg
}

// §6 extension: optimizing software-pipelined loops. A SWP-compiled
// streaming workload is refused by the stock optimizer but optimized (and
// sped up) with OptimizeSWPLoops.
func TestExtensionOptimizeSWPLoops(t *testing.T) {
	b, err := workloads.ByName("swim", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	opts := compiler.DefaultOptions()
	opts.SWP = true // swim's stencil qualifies for the pipelined schedule
	build, err := compiler.Build(b.Kernel, opts)
	if err != nil {
		t.Fatal(err)
	}

	rc := DefaultRunConfig()
	base, err := Run(build, rc)
	if err != nil {
		t.Fatal(err)
	}

	rc.ADORE = true
	rc.Core = extCore()
	stock, err := Run(build, rc)
	if err != nil {
		t.Fatal(err)
	}
	if stock.CPU.Prefetches > base.CPU.Retired/1000 {
		t.Fatalf("stock optimizer prefetched a SWP loop: %d lfetches, %+v",
			stock.CPU.Prefetches, *stock.Core)
	}

	rc.Core.OptimizeSWPLoops = true
	ext, err := Run(build, rc)
	if err != nil {
		t.Fatal(err)
	}
	if ext.Core.DirectPrefetches == 0 || ext.CPU.Prefetches <= stock.CPU.Prefetches {
		t.Fatalf("extension did not optimize the SWP loop: %+v (pf %d vs %d)",
			*ext.Core, ext.CPU.Prefetches, stock.CPU.Prefetches)
	}
	sp := Speedup(stock.CPU.Cycles, ext.CPU.Cycles)
	if sp < 0.03 {
		t.Fatalf("SWP-loop prefetching speedup = %.3f over stock, want >= 0.03", sp)
	}
	t.Logf("SWP extension: +%.1f%% over the stock optimizer on the pipelined binary", sp*100)
}

// rapidPhases builds a workload alternating between two loops faster than
// the stock detector can confirm stability, but slowly enough that each
// recurrence is worth optimizing once recognized.
func rapidPhases() *compiler.Kernel {
	mk := func(name, arr string) compiler.Phase {
		return compiler.Phase{
			Name:   name,
			Repeat: 1, // short visits: ~2 profile windows each
			Loops: []*compiler.Loop{{
				Name:      name,
				OuterTrip: 1,
				InnerTrip: 1 << 16,
				Body: []compiler.Stmt{
					{Kind: compiler.SLoadInt, Dst: "v", Size: 8,
						Ref: &compiler.Ref{Kind: compiler.RefAffine, Array: arr, InnerStride: 8}},
					{Kind: compiler.SAdd, Dst: "s", A: "s", B: "v"},
				},
				Inits: []compiler.Init{{Temp: "s", IsImm: true, Imm: 0}},
			}},
		}
	}
	var phases []compiler.Phase
	for i := 0; i < 60; i++ {
		phases = append(phases, mk("a", "wa"), mk("b", "wb"))
	}
	return &compiler.Kernel{
		Name: "rapid",
		Arrays: []compiler.Array{
			{Name: "wa", Elem: 8, N: 1 << 18, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 3}},
			{Name: "wb", Elem: 8, N: 1 << 18, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 5}},
		},
		Phases: phases,
	}
}

// §6 extension: the phase-signature table recognizes recurring phases from
// a single window, recovering optimizations the stock detector misses on
// rapid phase changes.
func TestExtensionPhaseTable(t *testing.T) {
	build, err := compiler.Build(rapidPhases(), compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rc := DefaultRunConfig()
	rc.ADORE = true
	rc.Core = extCore()
	stock, err := Run(build, rc)
	if err != nil {
		t.Fatal(err)
	}

	rc.Core.PhaseTable = true
	ext, err := Run(build, rc)
	if err != nil {
		t.Fatal(err)
	}
	if ext.Core.TableHits == 0 || stock.Core.TableHits != 0 {
		t.Fatalf("table hits: ext %d, stock %d", ext.Core.TableHits, stock.Core.TableHits)
	}
	// Patches persist once installed, so end-to-end the table must at
	// minimum never lose; the mechanism-level latency win is asserted in
	// the detector unit tests (internal/core).
	if float64(ext.CPU.Cycles) > 1.01*float64(stock.CPU.Cycles) {
		t.Fatalf("phase table regressed: %d vs %d cycles", ext.CPU.Cycles, stock.CPU.Cycles)
	}
	t.Logf("phase table: hits %d, first patch %d vs %d, cycles %d vs %d",
		ext.Core.TableHits, ext.Core.FirstPatchCycle, stock.Core.FirstPatchCycle,
		ext.CPU.Cycles, stock.CPU.Cycles)
}

// cvtStride builds a vpr-like loop whose delinquent load's address passes
// through an fp-int conversion (slice fails) but whose actual address
// stream has a constant 40-byte stride — discoverable only by
// instrumentation.
func cvtStride() *compiler.Kernel {
	return &compiler.Kernel{
		Name: "cvt",
		Arrays: []compiler.Array{
			{Name: "xs", Elem: 8, N: 1 << 13, Float: true,
				Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 5, Mod: 1 << 18}},
			{Name: "grid", Elem: 8, N: 1 << 19, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 13}},
		},
		Phases: []compiler.Phase{{
			Name:   "place",
			Repeat: 30,
			Loops: []*compiler.Loop{{
				Name:      "cost",
				OuterTrip: 1,
				InnerTrip: 1 << 13,
				Body: []compiler.Stmt{
					{Kind: compiler.SLoadFloat, Dst: "x",
						Ref: &compiler.Ref{Kind: compiler.RefAffine, Array: "xs", InnerStride: 8}},
					{Kind: compiler.SCvtFI, Dst: "gi", A: "x"},
					{Kind: compiler.SLoadInt, Dst: "g", Size: 8,
						Ref: &compiler.Ref{Kind: compiler.RefIndirect, Array: "grid", IndexTemp: "gi", Scale: 8}},
					{Kind: compiler.SAdd, Dst: "acc", A: "acc", B: "g"},
				},
				Inits: []compiler.Init{{Temp: "acc", IsImm: true, Imm: 0}},
			}},
		}},
	}
}

// §6 extension: selective runtime instrumentation discovers the hidden
// constant stride behind the fp-int conversion and prefetches it.
func TestExtensionStrideProfiling(t *testing.T) {
	build, err := compiler.Build(cvtStride(), compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rc := DefaultRunConfig()
	base, err := Run(build, rc)
	if err != nil {
		t.Fatal(err)
	}

	rc.ADORE = true
	rc.Core = extCore()
	stock, err := Run(build, rc)
	if err != nil {
		t.Fatal(err)
	}
	if stock.Core.AnalysisFailures == 0 {
		t.Fatalf("stock optimizer should fail on the cvt address: %+v", *stock.Core)
	}
	if stock.Core.StrideProfiled != 0 {
		t.Fatal("stock optimizer ran instrumentation")
	}

	rc.Core.StrideProfiling = true
	ext, err := Run(build, rc)
	if err != nil {
		t.Fatal(err)
	}
	if ext.Core.StrideProfiled == 0 {
		t.Fatalf("no instrumentation experiment started: %+v", *ext.Core)
	}
	if ext.Core.StrideFound == 0 {
		t.Fatalf("hidden 40-byte stride not discovered: %+v", *ext.Core)
	}
	_ = base
	sp := Speedup(stock.CPU.Cycles, ext.CPU.Cycles)
	if sp < 0.05 {
		t.Fatalf("profiled prefetch speedup over stock = %.3f, want >= 0.05", sp)
	}
	t.Logf("stride profiling: experiments %d, strides found %d, speedup +%.1f%%",
		ext.Core.StrideProfiled, ext.Core.StrideFound, sp*100)
}

// An irregular address stream must not fool the instrumentation into a
// bogus prefetch: the experiment ends with no dominant stride.
func TestExtensionStrideProfilingRejectsIrregular(t *testing.T) {
	k := cvtStride()
	// Genuinely irregular coordinates: pseudo-random index stream (note
	// that a linear-congruential stream would NOT do — it has a constant
	// stride modulo wraparound, which the instrumentation correctly
	// discovers and prefetches).
	k.Arrays[0].Init = compiler.InitSpec{Kind: compiler.InitRandom, Mod: 1 << 18, Seed: 1234}
	build, err := compiler.Build(k, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rc := DefaultRunConfig()
	rc.ADORE = true
	rc.Core = extCore()
	rc.Core.StrideProfiling = true
	ext, err := Run(build, rc)
	if err != nil {
		t.Fatal(err)
	}
	if ext.Core.StrideProfiled == 0 {
		t.Fatalf("no experiment started: %+v", *ext.Core)
	}
	if ext.Core.StrideFound != 0 {
		t.Fatalf("irregular stream produced a 'dominant' stride: %+v", *ext.Core)
	}
}
