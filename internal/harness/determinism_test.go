package harness

import (
	"reflect"
	"testing"

	"repro/internal/compiler"
	"repro/internal/workloads"
)

// TestRunDeterminism is the engine refactor's safety net at the single-run
// level: the simulator has no hidden global state, so compiling once and
// running the same RunConfig twice must yield bit-identical statistics.
func TestRunDeterminism(t *testing.T) {
	b, err := workloads.ByName("art", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	build, err := compiler.Build(b.Kernel, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rc := DefaultRunConfig()
	rc.ADORE = true

	first, err := Run(build, rc)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(build, rc)
	if err != nil {
		t.Fatal(err)
	}
	if first.CPU != second.CPU {
		t.Errorf("cpu stats diverged:\n  first:  %+v\n  second: %+v", first.CPU, second.CPU)
	}
	if !reflect.DeepEqual(first.Core, second.Core) {
		t.Errorf("core stats diverged:\n  first:  %+v\n  second: %+v", first.Core, second.Core)
	}
}

// TestFig7SerialParallelIdentical is the safety net at the sweep level:
// running the same sweep serially and on a 4-worker pool must produce
// identical rows — order and values — because each run is hermetic and
// results are slotted by index. This is what licenses the parallel engine.
func TestFig7SerialParallelIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("long: two full 17-benchmark sweeps")
	}
	cfg := DefaultExpConfig()
	cfg.Scale = 0.05

	cfg.Engine = NewEngine(EngineConfig{Parallelism: 1})
	serial, err := RunFig7(cfg, compiler.O2)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engine = NewEngine(EngineConfig{Parallelism: 4})
	parallel, err := RunFig7(cfg, compiler.O2)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Rows) != len(parallel.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(serial.Rows), len(parallel.Rows))
	}
	for i := range serial.Rows {
		if !reflect.DeepEqual(serial.Rows[i], parallel.Rows[i]) {
			t.Errorf("row %d diverged:\n  serial:   %+v\n  parallel: %+v",
				i, serial.Rows[i], parallel.Rows[i])
		}
	}
}
