package harness

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/memsys"
	"repro/internal/workloads"
)

// ExpConfig parameterizes a whole experiment sweep.
type ExpConfig struct {
	Scale float64     // workload scale factor (1.0 = full runs)
	Core  core.Config // ADORE configuration

	// Hierarchy, when non-nil, replaces the default memory hierarchy in
	// every run of the sweep — the knob the golden-corpus perturbation
	// tests turn to prove the corpus actually constrains the model.
	Hierarchy *memsys.HierarchyConfig

	// Engine schedules the sweep's jobs. Nil uses a fresh default engine
	// (GOMAXPROCS workers, no progress output); share one engine across
	// sweeps to also share its build cache.
	Engine *Engine
}

// DefaultExpConfig runs the full-scale experiments.
func DefaultExpConfig() ExpConfig {
	return ExpConfig{Scale: 1.0, Core: core.DefaultConfig()}
}

func (c ExpConfig) engine() *Engine {
	if c.Engine != nil {
		return c.Engine
	}
	return NewEngine(EngineConfig{})
}

// runConfig is DefaultRunConfig with the sweep-level overrides applied.
func (c ExpConfig) runConfig() RunConfig {
	rc := DefaultRunConfig()
	if c.Hierarchy != nil {
		rc.Hierarchy = *c.Hierarchy
	}
	return rc
}

// benchSpec is the cache-keyed compile spec for one benchmark under the
// standard experiment settings (restricted: no SWP, registers reserved).
// The key carries the workload scale — the same benchmark at two scales is
// two different kernels.
func benchSpec(b workloads.Benchmark, scale float64, level compiler.OptLevel) CompileSpec {
	opts := compiler.DefaultOptions()
	opts.Level = level
	return CompileSpec{
		Name:    fmt.Sprintf("%s@%g", b.Name, scale),
		Kernel:  b.Kernel,
		Options: opts,
	}
}

// SpeedupRow is one bar of Fig. 7.
type SpeedupRow struct {
	Name    string
	Base    uint64 // cycles without runtime prefetching
	ADORE   uint64 // cycles with runtime prefetching
	Speedup float64
	Stats   core.Stats
}

// Fig7Result is the Fig. 7(a) or 7(b) sweep.
type Fig7Result struct {
	Level compiler.OptLevel
	Rows  []SpeedupRow
}

// RunFig7 reproduces Fig. 7: speedup of runtime prefetching over the plain
// binary at the given optimization level, across the 17 benchmarks.
func RunFig7(cfg ExpConfig, level compiler.OptLevel) (*Fig7Result, error) {
	return RunFig7Context(context.Background(), cfg, level)
}

// RunFig7Context is RunFig7 on the engine: each benchmark contributes a
// base job and an ADORE job (sharing one compile through the build cache),
// and rows keep the workloads.All order whatever the completion order.
func RunFig7Context(ctx context.Context, cfg ExpConfig, level compiler.OptLevel) (*Fig7Result, error) {
	benches := workloads.All(cfg.Scale)
	jobs := make([]Job, 0, 2*len(benches))
	for _, b := range benches {
		sp := benchSpec(b, cfg.Scale, level)
		adore := cfg.runConfig()
		adore.ADORE = true
		adore.Core = cfg.Core
		jobs = append(jobs,
			Job{Name: b.Name + "/base", Compile: sp, Config: cfg.runConfig()},
			Job{Name: b.Name + "/adore", Compile: sp, Config: adore},
		)
	}
	runs, err := cfg.engine().RunJobs(ctx, "fig7/"+level.String(), jobs)
	if err != nil {
		return nil, err
	}
	res := &Fig7Result{Level: level}
	for i, b := range benches {
		base, adore := runs[2*i], runs[2*i+1]
		res.Rows = append(res.Rows, SpeedupRow{
			Name:    b.Name,
			Base:    base.CPU.Cycles,
			ADORE:   adore.CPU.Cycles,
			Speedup: Speedup(base.CPU.Cycles, adore.CPU.Cycles),
			Stats:   *adore.Core,
		})
	}
	return res, nil
}

// Render prints the figure as a text bar table.
func (f *Fig7Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: Speedup of %s + Runtime Prefetching over %s\n", f.Level, f.Level)
	fmt.Fprintf(&b, "%-10s %12s %12s %9s\n", "benchmark", "base cycles", "adore cycles", "speedup")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-10s %12d %12d %8.1f%%  %s\n",
			r.Name, r.Base, r.ADORE, r.Speedup*100, bar(r.Speedup))
	}
	return b.String()
}

// bar geometry: barCharsPerUnit characters per 1.0 of speedup (one '#' per
// 2%), clamped so extreme rows stay on one terminal line.
const (
	barCharsPerUnit = 50
	barMaxChars     = 40  // longest positive bar
	barMinChars     = -10 // longest negative bar
)

func bar(v float64) string {
	if math.IsNaN(v) {
		return ""
	}
	n := int(v * barCharsPerUnit)
	switch {
	case n > barMaxChars:
		n = barMaxChars
	case n < barMinChars:
		n = barMinChars
	}
	if n >= 0 {
		return strings.Repeat("#", n)
	}
	return strings.Repeat("-", -n)
}

// Table1Row is one row of Table 1: profile-guided static prefetching.
type Table1Row struct {
	Name            string
	LoopsO3         int     // loops scheduled for prefetch at plain O3
	LoopsProfile    int     // ... under profile guidance
	NormExecTime    float64 // profile-guided time / O3 time
	NormBinarySize  float64 // profile-guided bundles / O3 bundles
	ProfileCoverage float64 // fraction of sampled latency the kept loops cover
}

// Table1Result is the Table 1 sweep.
type Table1Result struct {
	Rows []Table1Row
}

// table1CoverTarget is the profile-coverage cut. The paper cuts at 90%;
// our synthetic profiles are far more concentrated than SPEC's, so the
// equivalent cut that keeps every loop whose prefetch matters is 98%.
const table1CoverTarget = 0.98

// RunTable1 reproduces Table 1: collect a sampling profile of the O3
// binary, keep the loops whose delinquent loads cover the bulk of the
// total miss latency, recompile prefetching only those, and compare
// execution time and binary size.
func RunTable1(cfg ExpConfig) (*Table1Result, error) {
	return RunTable1Context(context.Background(), cfg)
}

// RunTable1Context is RunTable1 on the engine. Each benchmark's
// profile → recompile → measure chain is inherently sequential, so the unit
// of parallelism is the benchmark; the O2 and O3 compiles still come from
// the shared build cache (Fig. 7 runs the very same binaries).
func RunTable1Context(ctx context.Context, cfg ExpConfig) (*Table1Result, error) {
	e := cfg.engine()
	benches := workloads.All(cfg.Scale)
	rows := make([]Table1Row, len(benches))
	err := e.Map(ctx, len(benches), func(ctx context.Context, i int) error {
		b := benches[i]
		e.report(Progress{Sweep: "table1", Job: b.Name, Index: i, Total: len(benches)})
		row, err := table1Row(ctx, e, cfg, b)
		e.report(Progress{Sweep: "table1", Job: b.Name, Index: i, Total: len(benches), Done: true, Err: err})
		if err != nil {
			return fmt.Errorf("%s: %w", b.Name, err)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Table1Result{Rows: rows}, nil
}

// table1Row runs one benchmark's Table 1 chain.
func table1Row(ctx context.Context, e *Engine, cfg ExpConfig, b workloads.Benchmark) (Table1Row, error) {
	full, err := e.Cache().Build(benchSpec(b, cfg.Scale, compiler.O3))
	if err != nil {
		return Table1Row{}, err
	}
	// Training run with sampling to collect the miss profile. The
	// profile comes from the un-prefetched (O2) binary: profiling
	// the O3 binary would hide exactly the loops whose static
	// prefetches work. Loop IDs are stable across levels.
	noPf, err := e.Cache().Build(benchSpec(b, cfg.Scale, compiler.O2))
	if err != nil {
		return Table1Row{}, err
	}
	rc := cfg.runConfig()
	rc.SampleOnly = true
	rc.Core = cfg.Core
	profileRun, err := RunProfiledContext(ctx, noPf, rc)
	if err != nil {
		return Table1Row{}, err
	}
	keep, coverage := selectLoops(profileRun, noPf, table1CoverTarget)

	fspec := benchSpec(b, cfg.Scale, compiler.O3)
	fspec.Options.PrefetchLoops = keep
	filtered, err := e.Cache().Build(fspec)
	if err != nil {
		return Table1Row{}, err
	}

	baseRun, err := RunContext(ctx, full, cfg.runConfig())
	if err != nil {
		return Table1Row{}, err
	}
	filtRun, err := RunContext(ctx, filtered, cfg.runConfig())
	if err != nil {
		return Table1Row{}, err
	}

	return Table1Row{
		Name:            b.Name,
		LoopsO3:         full.LoopsPrefetched,
		LoopsProfile:    filtered.LoopsPrefetched,
		NormExecTime:    float64(filtRun.CPU.Cycles) / float64(baseRun.CPU.Cycles),
		NormBinarySize:  float64(filtered.Image.BundleCount) / float64(full.Image.BundleCount),
		ProfileCoverage: coverage,
	}, nil
}

// FilteredFraction reports the average fraction of prefetch-scheduled loops
// the profile filtered out (the paper reports 83%).
func (t *Table1Result) FilteredFraction() float64 {
	var kept, total float64
	for _, r := range t.Rows {
		kept += float64(r.LoopsProfile)
		total += float64(r.LoopsO3)
	}
	if total == 0 {
		return 0
	}
	return 1 - kept/total
}

// Render prints Table 1.
func (t *Table1Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 1: Profile Guided Static Prefetching\n")
	fmt.Fprintf(&b, "%-10s %16s %16s %14s %14s\n",
		"benchmark", "loops@O3", "loops@O3+prof", "norm time", "norm size")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-10s %16d %16d %14.3f %14.3f\n",
			r.Name, r.LoopsO3, r.LoopsProfile, r.NormExecTime, r.NormBinarySize)
	}
	fmt.Fprintf(&b, "average fraction of prefetch loops filtered out: %.0f%% (paper: 83%%)\n",
		t.FilteredFraction()*100)
	return b.String()
}

// Table2Row is one column of the paper's Table 2.
type Table2Row struct {
	Name     string
	Direct   int
	Indirect int
	Pointer  int
	Phases   int
}

// Table2Result is the prefetching data analysis of Table 2.
type Table2Result struct {
	Rows []Table2Row
}

// RunTable2 reproduces Table 2 from the Fig. 7(a) ADORE runs (O2
// binaries): the number of prefetches inserted per reference pattern and
// the number of optimized phases.
func RunTable2(cfg ExpConfig) (*Table2Result, error) {
	return RunTable2Context(context.Background(), cfg)
}

// RunTable2Context is RunTable2 on the engine; with a shared engine the
// underlying Fig. 7(a) binaries come straight from the build cache.
func RunTable2Context(ctx context.Context, cfg ExpConfig) (*Table2Result, error) {
	fig7, err := RunFig7Context(ctx, cfg, compiler.O2)
	if err != nil {
		return nil, err
	}
	return Table2FromFig7(fig7), nil
}

// Table2FromFig7 extracts Table 2 from an existing Fig. 7(a) sweep.
func Table2FromFig7(f *Fig7Result) *Table2Result {
	res := &Table2Result{}
	for _, r := range f.Rows {
		res.Rows = append(res.Rows, Table2Row{
			Name:     r.Name,
			Direct:   r.Stats.DirectPrefetches,
			Indirect: r.Stats.IndirectPrefetches,
			Pointer:  r.Stats.PointerPrefetches,
			Phases:   r.Stats.PhasesOptimized,
		})
	}
	return res
}

// Render prints Table 2.
func (t *Table2Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 2: Prefetching Data Analysis (O2 binaries)\n")
	fmt.Fprintf(&b, "%-10s %8s %9s %16s %8s\n", "benchmark", "direct", "indirect", "pointer-chasing", "phases")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-10s %8d %9d %16d %8d\n", r.Name, r.Direct, r.Indirect, r.Pointer, r.Phases)
	}
	return b.String()
}

// SeriesResult holds the Fig. 8/9 time-series pair for one benchmark.
type SeriesResult struct {
	Name    string
	With    []SeriesPoint
	Without []SeriesPoint
}

// RunSeries reproduces Fig. 8 (art) or Fig. 9 (mcf): CPI and DEAR events
// per 1000 instructions over execution time, with and without runtime
// prefetching, on the O2 binary.
func RunSeries(cfg ExpConfig, name string) (*SeriesResult, error) {
	return RunSeriesContext(context.Background(), cfg, name)
}

// RunSeriesContext is RunSeries on the engine: the with/without runs are
// two jobs over one cached compile.
func RunSeriesContext(ctx context.Context, cfg ExpConfig, name string) (*SeriesResult, error) {
	b, err := workloads.ByName(name, cfg.Scale)
	if err != nil {
		return nil, err
	}
	sp := benchSpec(b, cfg.Scale, compiler.O2)
	without := cfg.runConfig()
	without.SampleOnly = true
	without.Core = cfg.Core
	without.RecordSeries = true
	with := cfg.runConfig()
	with.ADORE = true
	with.Core = cfg.Core
	with.RecordSeries = true
	runs, err := cfg.engine().RunJobs(ctx, "series/"+name, []Job{
		{Name: name + "/without", Compile: sp, Config: without},
		{Name: name + "/with", Compile: sp, Config: with},
	})
	if err != nil {
		return nil, err
	}
	return &SeriesResult{Name: name, With: runs[1].Series, Without: runs[0].Series}, nil
}

// MeanCPI returns the average CPI of a series segment [from, to) as
// fractions of its length.
func MeanCPI(s []SeriesPoint, from, to float64) float64 {
	if len(s) == 0 {
		return 0
	}
	lo, hi := int(from*float64(len(s))), int(to*float64(len(s)))
	if hi > len(s) {
		hi = len(s)
	}
	var sum float64
	n := 0
	for _, p := range s[lo:hi] {
		sum += p.CPI
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Render prints the two curves as text columns.
func (s *SeriesResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8/9 series for %s: CPI and DEAR/1000-inst over time\n", s.Name)
	b.WriteString("without runtime prefetching:\n")
	renderSeries(&b, s.Without)
	b.WriteString("with runtime prefetching:\n")
	renderSeries(&b, s.With)
	return b.String()
}

func renderSeries(b *strings.Builder, pts []SeriesPoint) {
	step := len(pts)/40 + 1
	for i := 0; i < len(pts); i += step {
		p := pts[i]
		fmt.Fprintf(b, "  cyc=%-12d CPI=%-6.2f %-30s dear/k=%.2f\n",
			p.Cycle, p.CPI, strings.Repeat("*", clampInt(int(p.CPI*8), 0, 30)), p.DearPerK)
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Fig10Row compares the original O2 (software pipelining on, no reserved
// registers) with the restricted O2 used for runtime prefetching.
type Fig10Row struct {
	Name       string
	Restricted uint64  // cycles: no SWP + 4 GRs reserved
	Original   uint64  // cycles: SWP + full register file
	Impact     float64 // restricted/original - 1: cost of the restriction
}

// Fig10Result is the register/SWP impact sweep.
type Fig10Result struct {
	Rows []Fig10Row
}

// RunFig10 reproduces Fig. 10: the cost of reserving four registers and
// disabling software pipelining, measured without any runtime optimization.
func RunFig10(cfg ExpConfig) (*Fig10Result, error) {
	return RunFig10Context(context.Background(), cfg)
}

// RunFig10Context is RunFig10 on the engine: one restricted-O2 job (the
// compile shared with Fig. 7(a) via the cache) and one original-O2 job per
// benchmark.
func RunFig10Context(ctx context.Context, cfg ExpConfig) (*Fig10Result, error) {
	benches := workloads.All(cfg.Scale)
	jobs := make([]Job, 0, 2*len(benches))
	for _, b := range benches {
		orig := benchSpec(b, cfg.Scale, compiler.O2)
		orig.Options.SWP = true
		orig.Options.ReserveRegs = false
		jobs = append(jobs,
			Job{Name: b.Name + "/restricted", Compile: benchSpec(b, cfg.Scale, compiler.O2), Config: cfg.runConfig()},
			Job{Name: b.Name + "/original", Compile: orig, Config: cfg.runConfig()},
		)
	}
	runs, err := cfg.engine().RunJobs(ctx, "fig10", jobs)
	if err != nil {
		return nil, err
	}
	res := &Fig10Result{}
	for i, b := range benches {
		rr, or := runs[2*i], runs[2*i+1]
		res.Rows = append(res.Rows, Fig10Row{
			Name:       b.Name,
			Restricted: rr.CPU.Cycles,
			Original:   or.CPU.Cycles,
			Impact:     float64(rr.CPU.Cycles)/float64(or.CPU.Cycles) - 1,
		})
	}
	return res, nil
}

// Render prints Fig. 10.
func (f *Fig10Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 10: Impact of register reservation and disabled SWP (original O2 vs restricted O2)\n")
	fmt.Fprintf(&b, "%-10s %14s %14s %8s\n", "benchmark", "restricted", "original O2", "cost")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-10s %14d %14d %7.1f%%  %s\n", r.Name, r.Restricted, r.Original, r.Impact*100, bar(r.Impact))
	}
	return b.String()
}

// Fig11Row measures the ADORE system overhead with prefetch insertion
// disabled.
type Fig11Row struct {
	Name     string
	Plain    uint64 // O2 cycles without ADORE
	Monitor  uint64 // O2 cycles with ADORE attached, insertion disabled
	Overhead float64
}

// Fig11Result is the overhead sweep.
type Fig11Result struct {
	Rows []Fig11Row
}

// RunFig11 reproduces Fig. 11: execution time with the full ADORE pipeline
// running (sampling, phase detection, trace selection, optimization) but
// no patches installed — isolating the system overhead, which the paper
// measures at 1-2%.
func RunFig11(cfg ExpConfig) (*Fig11Result, error) {
	return RunFig11Context(context.Background(), cfg)
}

// RunFig11Context is RunFig11 on the engine: a plain job and a
// monitor-only job per benchmark, over one shared O2 compile.
func RunFig11Context(ctx context.Context, cfg ExpConfig) (*Fig11Result, error) {
	benches := workloads.All(cfg.Scale)
	jobs := make([]Job, 0, 2*len(benches))
	for _, b := range benches {
		sp := benchSpec(b, cfg.Scale, compiler.O2)
		mon := cfg.runConfig()
		mon.ADORE = true
		mon.Core = cfg.Core
		mon.Core.DisableInsertion = true
		jobs = append(jobs,
			Job{Name: b.Name + "/plain", Compile: sp, Config: cfg.runConfig()},
			Job{Name: b.Name + "/monitor", Compile: sp, Config: mon},
		)
	}
	runs, err := cfg.engine().RunJobs(ctx, "fig11", jobs)
	if err != nil {
		return nil, err
	}
	res := &Fig11Result{}
	for i, b := range benches {
		plain, mon := runs[2*i], runs[2*i+1]
		res.Rows = append(res.Rows, Fig11Row{
			Name:     b.Name,
			Plain:    plain.CPU.Cycles,
			Monitor:  mon.CPU.Cycles,
			Overhead: float64(mon.CPU.Cycles)/float64(plain.CPU.Cycles) - 1,
		})
	}
	return res, nil
}

// MaxOverhead reports the largest overhead across the suite.
func (f *Fig11Result) MaxOverhead() float64 {
	var m float64
	for _, r := range f.Rows {
		if r.Overhead > m {
			m = r.Overhead
		}
	}
	return m
}

// Render prints Fig. 11.
func (f *Fig11Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 11: Overhead of runtime system without prefetch insertion\n")
	fmt.Fprintf(&b, "%-10s %14s %14s %9s\n", "benchmark", "O2 cycles", "O2+monitor", "overhead")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-10s %14d %14d %8.2f%%\n", r.Name, r.Plain, r.Monitor, r.Overhead*100)
	}
	return b.String()
}

// selectLoops maps the run's DEAR profile back to compiler loops and keeps
// the hottest loops covering the given fraction of miss latency.
func selectLoops(pr *ProfiledRun, build *compiler.BuildResult, coverTarget float64) (map[int]bool, float64) {
	// Paper's procedure: sort the delinquent loads by total miss
	// latency, take loads until they cover 90% of the total, then
	// prefetch every loop containing at least one listed load. Only
	// loads inside prefetchable loops compete — the static prefetcher
	// cannot act on the others anyway.
	perPC := map[uint64]uint64{}
	pcLoop := map[uint64]int{}
	var total uint64
	for _, ev := range pr.DearEvents {
		if l, ok := build.Image.LoopAt(ev.PC); ok && l.Prefetchable {
			perPC[ev.PC] += uint64(ev.Latency)
			pcLoop[ev.PC] = l.ID
			total += uint64(ev.Latency)
		}
	}
	type loadLat struct {
		pc  uint64
		lat uint64
	}
	ranked := make([]loadLat, 0, len(perPC))
	for pc, lat := range perPC {
		ranked = append(ranked, loadLat{pc, lat})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].lat != ranked[j].lat {
			return ranked[i].lat > ranked[j].lat
		}
		return ranked[i].pc < ranked[j].pc
	})
	keep := map[int]bool{}
	if total == 0 {
		return keep, 0
	}
	var covered uint64
	for _, ll := range ranked {
		if float64(covered) >= coverTarget*float64(total) {
			break
		}
		keep[pcLoop[ll.pc]] = true
		covered += ll.lat
	}
	return keep, float64(covered) / float64(total)
}
