package harness

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/pmu"
)

// The golden figure corpus pins the paper-reproduction numbers — Fig. 7(a)
// and 7(b) speedups, Table 1 profile-guided prefetching, Table 2 prefetch
// pattern counts — at a reduced workload scale, as checked-in JSON. The
// regression test re-runs the sweeps and compares against the corpus under
// per-metric tolerances, so a change that shifts simulated performance
// (cache model, pipeline, optimizer heuristics) fails loudly instead of
// silently redrawing the figures.

// GoldenTolerance is the per-metric slack when comparing a fresh sweep
// against the corpus. The simulator is deterministic, so the tolerances are
// not noise margins — they define how much intentional model drift a change
// may introduce before the corpus must be consciously regenerated.
type GoldenTolerance struct {
	RelCycles  float64 // relative, on raw cycle counts
	AbsSpeedup float64 // absolute, on Fig. 7 speedups
	AbsNorm    float64 // absolute, on Table 1 normalized ratios
}

// DefaultGoldenTolerance: cycles within 0.5%, speedups within one point,
// normalized ratios within two points; all integer counts exact.
func DefaultGoldenTolerance() GoldenTolerance {
	return GoldenTolerance{RelCycles: 0.005, AbsSpeedup: 0.01, AbsNorm: 0.02}
}

// GoldenFig7Row is one pinned bar of Fig. 7.
type GoldenFig7Row struct {
	Name    string
	Base    uint64
	ADORE   uint64
	Speedup float64
}

// GoldenTable1Row pins one row of Table 1 (coverage is a selection input,
// not an output metric, so it is not pinned).
type GoldenTable1Row struct {
	Name           string
	LoopsO3        int
	LoopsProfile   int
	NormExecTime   float64
	NormBinarySize float64
}

// GoldenTable2Row pins one column of Table 2; counts are exact.
type GoldenTable2Row struct {
	Name     string
	Direct   int
	Indirect int
	Pointer  int
	Phases   int
}

// GoldenCorpus is the checked-in regression baseline.
type GoldenCorpus struct {
	Scale  float64
	Tol    GoldenTolerance
	Fig7O2 []GoldenFig7Row
	Fig7O3 []GoldenFig7Row
	Table1 []GoldenTable1Row
	Table2 []GoldenTable2Row
}

// GoldenExpConfig is the exact sweep configuration the corpus was collected
// under: reduced workload scale and ADORE parameters scaled down with it so
// the optimizer still detects phases and patches within the shorter runs.
// The regression test and -update-golden must both use this.
func GoldenExpConfig() ExpConfig {
	cfg := core.DefaultConfig()
	cfg.Sampling = pmu.Config{SampleInterval: 2000, SSBSize: 64, DearLatencyMin: 8, HandlerCyclesPerSample: 30}
	cfg.W = 8
	cfg.PollInterval = 20_000
	cfg.StableWindows = 3
	return ExpConfig{Scale: 0.05, Core: cfg}
}

// CollectGolden runs the pinned sweeps — Fig. 7 at both levels, Table 1,
// and Table 2 derived from the Fig. 7(a) runs — on one shared engine.
func CollectGolden(cfg ExpConfig) (*GoldenCorpus, error) {
	if cfg.Engine == nil {
		cfg.Engine = NewEngine(EngineConfig{})
	}
	o2, err := RunFig7(cfg, compiler.O2)
	if err != nil {
		return nil, err
	}
	o3, err := RunFig7(cfg, compiler.O3)
	if err != nil {
		return nil, err
	}
	t1, err := RunTable1(cfg)
	if err != nil {
		return nil, err
	}
	g := &GoldenCorpus{Scale: cfg.Scale, Tol: DefaultGoldenTolerance()}
	for _, r := range o2.Rows {
		g.Fig7O2 = append(g.Fig7O2, GoldenFig7Row{Name: r.Name, Base: r.Base, ADORE: r.ADORE, Speedup: r.Speedup})
	}
	for _, r := range o3.Rows {
		g.Fig7O3 = append(g.Fig7O3, GoldenFig7Row{Name: r.Name, Base: r.Base, ADORE: r.ADORE, Speedup: r.Speedup})
	}
	for _, r := range t1.Rows {
		g.Table1 = append(g.Table1, GoldenTable1Row{
			Name: r.Name, LoopsO3: r.LoopsO3, LoopsProfile: r.LoopsProfile,
			NormExecTime: r.NormExecTime, NormBinarySize: r.NormBinarySize,
		})
	}
	for _, r := range Table2FromFig7(o2).Rows {
		g.Table2 = append(g.Table2, GoldenTable2Row{
			Name: r.Name, Direct: r.Direct, Indirect: r.Indirect, Pointer: r.Pointer, Phases: r.Phases,
		})
	}
	return g, nil
}

// LoadGolden reads a corpus from its JSON file.
func LoadGolden(path string) (*GoldenCorpus, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	g := &GoldenCorpus{}
	if err := json.Unmarshal(data, g); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

// Save writes the corpus as indented JSON, stable for diffing.
func (g *GoldenCorpus) Save(path string) error {
	data, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// withinRel reports |got-want| <= tol*|want| (want 0 requires got 0).
func withinRel(got, want uint64, tol float64) bool {
	if want == 0 {
		return got == 0
	}
	return math.Abs(float64(got)-float64(want)) <= tol*float64(want)
}

// CompareFig7 checks every row of a fresh Fig. 7 sweep against the pinned
// side for its optimization level, by benchmark name. Rows in the sweep
// that the corpus does not know are divergences; pinned rows the sweep did
// not run are not (partial sweeps are how the perturbation tests stay
// cheap) — the full regression test checks completeness separately.
func (g *GoldenCorpus) CompareFig7(f *Fig7Result) []string {
	golden := g.Fig7O2
	if f.Level == compiler.O3 {
		golden = g.Fig7O3
	}
	byName := make(map[string]GoldenFig7Row, len(golden))
	for _, r := range golden {
		byName[r.Name] = r
	}
	var divs []string
	for _, r := range f.Rows {
		w, ok := byName[r.Name]
		if !ok {
			divs = append(divs, fmt.Sprintf("fig7@%s/%s: not in golden corpus", f.Level, r.Name))
			continue
		}
		if !withinRel(r.Base, w.Base, g.Tol.RelCycles) {
			divs = append(divs, fmt.Sprintf("fig7@%s/%s: base cycles %d, golden %d (±%.2g rel)",
				f.Level, r.Name, r.Base, w.Base, g.Tol.RelCycles))
		}
		if !withinRel(r.ADORE, w.ADORE, g.Tol.RelCycles) {
			divs = append(divs, fmt.Sprintf("fig7@%s/%s: adore cycles %d, golden %d (±%.2g rel)",
				f.Level, r.Name, r.ADORE, w.ADORE, g.Tol.RelCycles))
		}
		if math.Abs(r.Speedup-w.Speedup) > g.Tol.AbsSpeedup {
			divs = append(divs, fmt.Sprintf("fig7@%s/%s: speedup %.4f, golden %.4f (±%.2g)",
				f.Level, r.Name, r.Speedup, w.Speedup, g.Tol.AbsSpeedup))
		}
	}
	return divs
}

// CompareTable1 checks a fresh Table 1 sweep: loop counts exact,
// normalized ratios within AbsNorm.
func (g *GoldenCorpus) CompareTable1(t *Table1Result) []string {
	byName := make(map[string]GoldenTable1Row, len(g.Table1))
	for _, r := range g.Table1 {
		byName[r.Name] = r
	}
	var divs []string
	for _, r := range t.Rows {
		w, ok := byName[r.Name]
		if !ok {
			divs = append(divs, fmt.Sprintf("table1/%s: not in golden corpus", r.Name))
			continue
		}
		if r.LoopsO3 != w.LoopsO3 || r.LoopsProfile != w.LoopsProfile {
			divs = append(divs, fmt.Sprintf("table1/%s: loops %d/%d, golden %d/%d",
				r.Name, r.LoopsO3, r.LoopsProfile, w.LoopsO3, w.LoopsProfile))
		}
		if math.Abs(r.NormExecTime-w.NormExecTime) > g.Tol.AbsNorm {
			divs = append(divs, fmt.Sprintf("table1/%s: norm time %.4f, golden %.4f (±%.2g)",
				r.Name, r.NormExecTime, w.NormExecTime, g.Tol.AbsNorm))
		}
		if math.Abs(r.NormBinarySize-w.NormBinarySize) > g.Tol.AbsNorm {
			divs = append(divs, fmt.Sprintf("table1/%s: norm size %.4f, golden %.4f (±%.2g)",
				r.Name, r.NormBinarySize, w.NormBinarySize, g.Tol.AbsNorm))
		}
	}
	return divs
}

// CompareTable2 checks a fresh Table 2 against the pinned counts, exactly:
// the prefetch pattern mix is discrete optimizer output, not a measurement.
func (g *GoldenCorpus) CompareTable2(t *Table2Result) []string {
	byName := make(map[string]GoldenTable2Row, len(g.Table2))
	for _, r := range g.Table2 {
		byName[r.Name] = r
	}
	var divs []string
	for _, r := range t.Rows {
		w, ok := byName[r.Name]
		if !ok {
			divs = append(divs, fmt.Sprintf("table2/%s: not in golden corpus", r.Name))
			continue
		}
		if r.Direct != w.Direct || r.Indirect != w.Indirect || r.Pointer != w.Pointer || r.Phases != w.Phases {
			divs = append(divs, fmt.Sprintf("table2/%s: direct/indirect/pointer/phases %d/%d/%d/%d, golden %d/%d/%d/%d",
				r.Name, r.Direct, r.Indirect, r.Pointer, r.Phases, w.Direct, w.Indirect, w.Pointer, w.Phases))
		}
	}
	return divs
}

// Compare checks a complete regeneration of every pinned sweep, including
// that no golden row went missing.
func (g *GoldenCorpus) Compare(o2, o3 *Fig7Result, t1 *Table1Result, t2 *Table2Result) []string {
	var divs []string
	divs = append(divs, g.CompareFig7(o2)...)
	divs = append(divs, g.CompareFig7(o3)...)
	divs = append(divs, g.CompareTable1(t1)...)
	divs = append(divs, g.CompareTable2(t2)...)
	for want, got := range map[string][2]int{
		"fig7@O2": {len(g.Fig7O2), len(o2.Rows)},
		"fig7@O3": {len(g.Fig7O3), len(o3.Rows)},
		"table1":  {len(g.Table1), len(t1.Rows)},
		"table2":  {len(g.Table2), len(t2.Rows)},
	} {
		if got[0] != got[1] {
			divs = append(divs, fmt.Sprintf("%s: %d rows, golden %d", want, got[1], got[0]))
		}
	}
	return divs
}
