package harness

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/compiler"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/workloads"
)

// TestProfiledRunNonPerturbing is the PR's bit-identity acceptance test at
// the harness level: a run with the cycle-sampling profiler (and a live
// metric registry) attached must produce exactly the same simulated results
// as a bare run — only the result shape changes (RunResult.Profile).
func TestProfiledRunNonPerturbing(t *testing.T) {
	build := obsBuild(t, "art", 0.1)

	plain := DefaultRunConfig()
	plain.ADORE = true
	bare, err := Run(build, plain)
	if err != nil {
		t.Fatal(err)
	}

	rc := DefaultRunConfig()
	rc.ADORE = true
	rc.Profile = 4093
	rc.Metrics = metrics.NewRegistry()
	prof, err := Run(build, rc)
	if err != nil {
		t.Fatal(err)
	}

	if prof.CPU != bare.CPU {
		t.Errorf("profiling perturbed the run:\n  profiled: %+v\n  bare:     %+v", prof.CPU, bare.CPU)
	}
	if !reflect.DeepEqual(prof.Core, bare.Core) {
		t.Errorf("profiling perturbed controller stats:\n  profiled: %+v\n  bare:     %+v",
			prof.Core, bare.Core)
	}
	if bare.Profile != nil {
		t.Error("unprofiled run carries a profile")
	}
	if prof.Profile == nil {
		t.Fatal("profiled run returned nil profile")
	}
	if len(prof.Profile.Bundles) == 0 {
		t.Fatal("profile has no bundle cells")
	}
	if got, max := prof.Profile.AttributedCycles(), prof.CPU.Cycles; got > max {
		t.Errorf("attributed cycles %d exceed run cycles %d", got, max)
	}

	// And the profile itself is deterministic.
	again, err := Run(build, rc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Profile, prof.Profile) {
		t.Errorf("profiles diverged across identical runs: %d vs %d bundles",
			len(again.Profile.Bundles), len(prof.Profile.Bundles))
	}

	// Profiled and unprofiled configs must never alias in a result cache.
	if plain.Fingerprint() == rc.Fingerprint() {
		t.Error("profiled and unprofiled RunConfigs share a fingerprint")
	}
}

// TestEngineMetricsFold runs a small sweep on a metered engine and checks
// the host-side and folded simulated aggregates: three jobs where two are
// identical (one result-cache hit), so adore_engine_* counts host work
// while adore_sim_* counts work served (the cached result folds twice).
func TestEngineMetricsFold(t *testing.T) {
	r := metrics.NewRegistry()
	e := NewEngine(EngineConfig{Parallelism: 2, Metrics: r})

	base := DefaultRunConfig()
	adore := DefaultRunConfig()
	adore.ADORE = true
	spec := telemetryCompileSpec(t, "art", 0.05)

	jobs := []Job{
		{Name: "art/base", Compile: spec, Config: base},
		{Name: "art/base-again", Compile: spec, Config: base},
		{Name: "art/adore", Compile: spec, Config: adore},
	}
	out, err := e.RunJobs(context.Background(), "telemetry-test", jobs)
	if err != nil {
		t.Fatal(err)
	}

	counter := func(name string) uint64 {
		t.Helper()
		c := r.Counter(name, "")
		if c == nil {
			t.Fatalf("counter %s not registered", name)
		}
		return c.Value()
	}
	if got := counter("adore_engine_jobs_started_total"); got != 3 {
		t.Errorf("jobs started = %d, want 3", got)
	}
	if got := counter("adore_engine_jobs_completed_total"); got != 3 {
		t.Errorf("jobs completed = %d, want 3", got)
	}
	if got := counter("adore_engine_jobs_failed_total"); got != 0 {
		t.Errorf("jobs failed = %d, want 0", got)
	}
	// One compile serves all three jobs; one simulation serves both base jobs.
	if hits, misses := counter("adore_engine_build_cache_hits_total"),
		counter("adore_engine_build_cache_misses_total"); misses != 1 || hits != 2 {
		t.Errorf("build cache hits/misses = %d/%d, want 2/1", hits, misses)
	}
	if hits, misses := counter("adore_engine_result_cache_hits_total"),
		counter("adore_engine_result_cache_misses_total"); misses != 2 || hits != 1 {
		t.Errorf("result cache hits/misses = %d/%d, want 1/2", hits, misses)
	}

	// Folded sim totals cover every finished job, cache hits included.
	var wantCycles uint64
	for _, res := range out {
		wantCycles += res.CPU.Cycles
	}
	if got := counter("adore_sim_cycles_total"); got != wantCycles {
		t.Errorf("adore_sim_cycles_total = %d, want %d (sum over served jobs)", got, wantCycles)
	}

	// Live controller counters agree with the ADORE run's Stats: only one
	// job actually simulated with a controller attached.
	adoreRes := out[2]
	if adoreRes.Core == nil {
		t.Fatal("ADORE job has no core stats")
	}
	if got, want := counter("adore_core_windows_observed_total"), adoreRes.Core.WindowsObserved; got != uint64(want) {
		t.Errorf("adore_core_windows_observed_total = %d, want %d", got, want)
	}
	if got, want := counter("adore_core_patches_installed_total"), adoreRes.Core.TracesPatched; got != uint64(want) {
		t.Errorf("adore_core_patches_installed_total = %d, want %d", got, want)
	}

	// No loss signals on these tiny runs.
	if obsDropped, samples := e.Drops(); obsDropped != 0 || samples != 0 {
		t.Errorf("Drops() = %d/%d, want 0/0", obsDropped, samples)
	}
	// And the registry renders as valid Prometheus text.
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "adore_engine_job_latency_ns_bucket") {
		t.Error("exposition missing job-latency histogram buckets")
	}
}

// telemetryCompileSpec builds the CompileSpec the engine tests schedule.
func telemetryCompileSpec(t *testing.T, name string, scale float64) CompileSpec {
	t.Helper()
	b, err := workloads.ByName(name, scale)
	if err != nil {
		t.Fatal(err)
	}
	return CompileSpec{Name: name, Kernel: b.Kernel, Options: compiler.DefaultOptions()}
}

// TestProfileMatchesLoopAccounting is the acceptance cross-check: the
// sampled profile's per-loop cycle split must agree with the CPI-stack
// loop accounting (the exact per-cycle attribution), and `go tool pprof
// -top` over the export must rank the same loop hottest.
func TestProfileMatchesLoopAccounting(t *testing.T) {
	if testing.Short() {
		t.Skip("long: full mcf simulation + execs the go tool")
	}
	build := obsBuild(t, "mcf", 0.1)
	rc := DefaultRunConfig()
	rc.Observe = true // exact per-loop accounting (RunResult.LoopCPI)
	rc.Profile = 4093 // statistical per-loop attribution (RunResult.Profile)
	res, err := Run(build, rc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile == nil || res.LoopCPI == nil {
		t.Fatal("run missing profile or loop accounting")
	}

	// The sampler charges whole inter-sample spans to the bundle executing
	// at fire time, so loop boundaries smear by up to one interval per
	// transition. Compare cycle *fractions* per loop with a coarse absolute
	// tolerance, over loops big enough for the statistics to hold.
	var acctTotal uint64
	for _, st := range res.LoopCPI {
		acctTotal += st.Total()
	}
	profTotal := res.Profile.AttributedCycles()
	if acctTotal == 0 || profTotal == 0 {
		t.Fatalf("degenerate totals: accounting %d, profile %d", acctTotal, profTotal)
	}
	byLoop := res.Profile.ByLoop()
	profCycles := make(map[int]uint64, len(byLoop))
	for _, lp := range byLoop {
		profCycles[lp.Loop] = lp.Cycles
	}
	const tol = 0.10 // absolute tolerance on the cycle fraction
	checked := 0
	for id, st := range res.LoopCPI {
		acctFrac := float64(st.Total()) / float64(acctTotal)
		if acctFrac < 0.05 {
			continue // too small for sampling statistics
		}
		profFrac := float64(profCycles[id]) / float64(profTotal)
		if diff := profFrac - acctFrac; diff > tol || diff < -tol {
			t.Errorf("loop %d: profile cycle share %.1f%% vs accounting %.1f%% (tolerance %.0f pp)",
				id, 100*profFrac, 100*acctFrac, 100*tol)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no loop holds >=5% of cycles; cross-check checked nothing")
	}

	// The hottest loop by accounting must also top the sampled profile.
	hotID, hotCycles := -2, uint64(0)
	for id, st := range res.LoopCPI {
		if tot := st.Total(); tot > hotCycles {
			hotID, hotCycles = id, tot
		}
	}
	if byLoop[0].Loop != hotID {
		t.Errorf("profile ranks loop %d hottest, accounting says loop %d", byLoop[0].Loop, hotID)
	}

	// End-to-end: the real pprof tool reads the export and its top row
	// names the hottest loop's frame.
	gobin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not on PATH")
	}
	path := filepath.Join(t.TempDir(), "mcf.pb.gz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.WritePprof(f, res.Profile); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	outBytes, err := exec.Command(gobin, "tool", "pprof", "-top", "-sample_index=cycles", path).CombinedOutput()
	if err != nil {
		t.Fatalf("go tool pprof failed: %v\n%s", err, outBytes)
	}
	topFrame := obs.FrameName(byLoop[0].Loop, byLoop[0].Name, res.Profile.Program)
	if first := firstPprofRow(string(outBytes)); !strings.HasSuffix(first, topFrame) {
		t.Errorf("pprof -top first row %q does not end with hottest frame %q\nfull output:\n%s",
			first, topFrame, outBytes)
	}
}

// firstPprofRow returns the first data row of `pprof -top` output (the line
// after the "flat  flat%  ..." header).
func firstPprofRow(out string) string {
	lines := strings.Split(out, "\n")
	for i, l := range lines {
		if strings.Contains(l, "flat%") && i+1 < len(lines) {
			return strings.TrimSpace(lines[i+1])
		}
	}
	return ""
}

// TestTelemetryOverhead guards the acceptance bound: running with the full
// telemetry stack (metric registry + controller telemetry + cycle sampler)
// may cost at most 5% wall clock over a bare run. Min-of-N interleaved
// timing filters scheduler noise, as in TestObserveOverhead.
func TestTelemetryOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("long: timed simulation runs")
	}
	if raceEnabled {
		t.Skip("race detector skews timing; the 5% bound is not meaningful")
	}
	if testing.CoverMode() != "" {
		t.Skip("coverage instrumentation skews timing; the 5% bound is not meaningful")
	}
	build := obsBuild(t, "mcf", 0.1)

	timeRun := func(telemetry bool) time.Duration {
		rc := DefaultRunConfig()
		rc.ADORE = true
		if telemetry {
			rc.Metrics = metrics.NewRegistry()
			rc.Profile = 4093
		}
		start := time.Now()
		if _, err := Run(build, rc); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}

	best := func(a, b time.Duration) time.Duration {
		if a < b {
			return a
		}
		return b
	}
	measure := func() float64 {
		off, on := time.Duration(1<<63-1), time.Duration(1<<63-1)
		for i := 0; i < 5; i++ {
			off = best(off, timeRun(false))
			on = best(on, timeRun(true))
		}
		overhead := float64(on-off) / float64(off)
		t.Logf("telemetry off %v, on %v: overhead %.2f%%", off, on, 100*overhead)
		return overhead
	}
	// Sub-200ms runs see several percent of host-scheduler noise even with
	// interleaved min-of-5, so an over-bound measurement is re-taken; the
	// test fails only when every attempt lands over the bound.
	var overhead float64
	for attempt := 0; attempt < 3; attempt++ {
		if overhead = measure(); overhead <= 0.05 {
			return
		}
	}
	t.Errorf("telemetry overhead %.2f%% exceeds 5%% on every attempt", 100*overhead)
}
