package harness

import (
	"testing"

	"repro/internal/compiler"
)

// TestFig7aShape is the reproduction's regression guard: the qualitative
// claims of the paper's headline figure must hold at reduced scale. If a
// change to the simulator, compiler, workloads or optimizer breaks any of
// the per-benchmark mechanisms, this test names the benchmark that moved.
func TestFig7aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long: full 17-benchmark sweep")
	}
	cfg := DefaultExpConfig()
	cfg.Scale = 0.3
	res, err := RunFig7(cfg, compiler.O2)
	if err != nil {
		t.Fatal(err)
	}
	sp := map[string]float64{}
	stats := map[string]SpeedupRow{}
	for _, r := range res.Rows {
		sp[r.Name] = r.Speedup
		stats[r.Name] = r
	}

	// The winners, with the paper's ordering mcf > art.
	for name, min := range map[string]float64{
		"mcf": 0.30, "art": 0.15, "equake": 0.15, "swim": 0.08,
		"facerec": 0.05, "bzip2": 0.08,
	} {
		if sp[name] < min {
			t.Errorf("%s speedup %.3f below shape floor %.3f", name, sp[name], min)
		}
	}
	if sp["mcf"] <= sp["art"] {
		t.Errorf("mcf (%.3f) must lead art (%.3f), as in the paper", sp["mcf"], sp["art"])
	}

	// The zeros, for their specific reasons.
	for _, name := range []string{"gzip", "vpr", "gap", "applu", "lucas", "gcc"} {
		if sp[name] > 0.05 {
			t.Errorf("%s gained %.3f but the paper's mechanism says ~0", name, sp[name])
		}
		if sp[name] < -0.05 {
			t.Errorf("%s lost %.3f, far below the paper's band", name, sp[name])
		}
	}

	// Mechanism fingerprints.
	if stats["gzip"].Stats.TracesPatched != 0 {
		t.Error("gzip was patched despite its too-short run")
	}
	if stats["mcf"].Stats.PointerPrefetches == 0 {
		t.Error("mcf got no pointer-chasing prefetches")
	}
	if stats["art"].Stats.DirectPrefetches == 0 {
		t.Error("art got no direct prefetches")
	}
	if stats["equake"].Stats.IndirectPrefetches == 0 {
		t.Error("equake got no indirect prefetch")
	}
	if stats["lucas"].Stats.AnalysisFailures == 0 && stats["vpr"].Stats.AnalysisFailures == 0 {
		t.Error("neither lucas nor vpr hit the fp-int slice failure")
	}
}
