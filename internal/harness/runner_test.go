package harness

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/pmu"
)

// fastCore returns ADORE parameters scaled for small test runs.
func fastCore() core.Config {
	cfg := core.DefaultConfig()
	cfg.Sampling = pmu.Config{SampleInterval: 2000, SSBSize: 64, DearLatencyMin: 8, HandlerCyclesPerSample: 30}
	cfg.W = 8
	cfg.PollInterval = 20_000
	cfg.StableWindows = 3
	return cfg
}

// streamKernel reads a large int array with unit stride, repeatedly — the
// direct-array pattern.
func streamKernel(elems, reps int64) *compiler.Kernel {
	return &compiler.Kernel{
		Name: "stream",
		Arrays: []compiler.Array{
			{Name: "a", Elem: 8, N: elems, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 1}},
		},
		Phases: []compiler.Phase{{
			Name:   "main",
			Repeat: reps,
			Loops: []*compiler.Loop{{
				Name:      "stream",
				OuterTrip: 1,
				InnerTrip: elems,
				Body: []compiler.Stmt{
					{Kind: compiler.SLoadInt, Dst: "v", Size: 8, Ref: &compiler.Ref{Kind: compiler.RefAffine, Array: "a", InnerStride: 8}},
					{Kind: compiler.SAdd, Dst: "s", A: "s", B: "v"},
				},
				Inits: []compiler.Init{{Temp: "s", IsImm: true, Imm: 0}},
			}},
		}},
	}
}

// chaseKernel walks a regular pointer chain — the pointer-chasing pattern.
func chaseKernel(nodes, reps int64) *compiler.Kernel {
	return &compiler.Kernel{
		Name: "chase",
		Arrays: []compiler.Array{
			{Name: "chain", N: nodes, Init: compiler.InitSpec{Kind: compiler.InitChain, NodeSize: 128, NextOff: 8}},
		},
		Phases: []compiler.Phase{{
			Name:   "main",
			Repeat: reps,
			Loops: []*compiler.Loop{{
				Name:      "walk",
				OuterTrip: 1,
				InnerTrip: nodes,
				Body: []compiler.Stmt{
					{Kind: compiler.SLoadInt, Dst: "pay", Size: 8, Ref: &compiler.Ref{Kind: compiler.RefPointer, PtrTemp: "p", Offset: 0}},
					{Kind: compiler.SLoadInt, Dst: "p", Size: 8, Ref: &compiler.Ref{Kind: compiler.RefPointer, PtrTemp: "p", Offset: 8}},
					{Kind: compiler.SAdd, Dst: "s", A: "s", B: "pay"},
				},
				Inits: []compiler.Init{
					{Temp: "p", Array: "chain", Offset: 0},
					{Temp: "s", IsImm: true, Imm: 0},
				},
			}},
		}},
	}
}

// gatherKernel does c[i] += b[a[i]] with a huge b — the indirect pattern.
func gatherKernel(n, targetN, reps int64) *compiler.Kernel {
	return &compiler.Kernel{
		Name: "gather",
		Arrays: []compiler.Array{
			{Name: "idx", Elem: 4, N: n, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 97, Mod: targetN}},
			{Name: "b", Elem: 8, N: targetN, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 5}},
		},
		Phases: []compiler.Phase{{
			Name:   "main",
			Repeat: reps,
			Loops: []*compiler.Loop{{
				Name:      "gather",
				OuterTrip: 1,
				InnerTrip: n,
				Body: []compiler.Stmt{
					{Kind: compiler.SLoadInt, Dst: "i", Size: 4, Ref: &compiler.Ref{Kind: compiler.RefAffine, Array: "idx", InnerStride: 4}},
					{Kind: compiler.SLoadInt, Dst: "v", Size: 8, Ref: &compiler.Ref{Kind: compiler.RefIndirect, Array: "b", IndexTemp: "i", Scale: 8}},
					{Kind: compiler.SAdd, Dst: "s", A: "s", B: "v"},
				},
				Inits: []compiler.Init{{Temp: "s", IsImm: true, Imm: 0}},
			}},
		}},
	}
}

func buildO2(t *testing.T, k *compiler.Kernel) *compiler.BuildResult {
	t.Helper()
	res, err := compiler.Build(k, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func runPair(t *testing.T, b *compiler.BuildResult) (base, adore *RunResult) {
	t.Helper()
	cfg := DefaultRunConfig()
	var err error
	base, err = Run(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ADORE = true
	cfg.Core = fastCore()
	adore, err = Run(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return base, adore
}

func TestADOREDirectPrefetchSpeedsUpStream(t *testing.T) {
	b := buildO2(t, streamKernel(1<<17, 12)) // 1 MiB array, streams past L3? (8 MiB footprint > 1.5 MiB L3)
	base, adore := runPair(t, b)
	if adore.Core.DirectPrefetches == 0 {
		t.Fatalf("no direct prefetches inserted: %+v", *adore.Core)
	}
	if adore.Core.TracesPatched == 0 {
		t.Fatal("no trace patched")
	}
	sp := Speedup(base.CPU.Cycles, adore.CPU.Cycles)
	if sp < 0.10 {
		t.Fatalf("speedup = %.3f, want >= 0.10 (base %d, adore %d)", sp, base.CPU.Cycles, adore.CPU.Cycles)
	}
	t.Logf("stream: speedup %.1f%%, stats %+v", sp*100, *adore.Core)
}

func TestADOREPointerPrefetchSpeedsUpChase(t *testing.T) {
	b := buildO2(t, chaseKernel(1<<15, 12)) // 4 MiB chain
	base, adore := runPair(t, b)
	if adore.Core.PointerPrefetches == 0 {
		t.Fatalf("no pointer prefetches inserted: %+v", *adore.Core)
	}
	sp := Speedup(base.CPU.Cycles, adore.CPU.Cycles)
	if sp < 0.10 {
		t.Fatalf("speedup = %.3f, want >= 0.10 (base %d, adore %d)", sp, base.CPU.Cycles, adore.CPU.Cycles)
	}
	t.Logf("chase: speedup %.1f%%, stats %+v", sp*100, *adore.Core)
}

func TestADOREIndirectPrefetchSpeedsUpGather(t *testing.T) {
	b := buildO2(t, gatherKernel(1<<15, 1<<19, 12))
	base, adore := runPair(t, b)
	if adore.Core.IndirectPrefetches == 0 {
		t.Fatalf("no indirect prefetches inserted: %+v", *adore.Core)
	}
	sp := Speedup(base.CPU.Cycles, adore.CPU.Cycles)
	if sp < 0.05 {
		t.Fatalf("speedup = %.3f, want >= 0.05 (base %d, adore %d)", sp, base.CPU.Cycles, adore.CPU.Cycles)
	}
	t.Logf("gather: speedup %.1f%%, stats %+v", sp*100, *adore.Core)
}

func TestDisableInsertionLowOverhead(t *testing.T) {
	b := buildO2(t, streamKernel(1<<16, 10))
	cfg := DefaultRunConfig()
	base, err := Run(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ADORE = true
	cfg.Core = fastCore()
	cfg.Core.DisableInsertion = true
	noins, err := Run(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if noins.Core.TracesPatched != 0 {
		t.Fatal("DisableInsertion patched traces")
	}
	overhead := float64(noins.CPU.Cycles)/float64(base.CPU.Cycles) - 1
	if overhead > 0.05 {
		t.Fatalf("overhead = %.3f, want <= 0.05", overhead)
	}
	t.Logf("monitoring-only overhead: %.2f%%", overhead*100)
}

func TestSemanticsPreservedUnderADORE(t *testing.T) {
	// The chase kernel's payload sum is order-dependent; run both
	// machines and compare memory-visible results by re-running with a
	// store. Simplest check: the patched run halts, retires the same
	// instruction count modulo prefetch code, and the same loads.
	b := buildO2(t, chaseKernel(1<<13, 6))
	base, adore := runPair(t, b)
	if adore.CPU.Loads < base.CPU.Loads {
		t.Fatalf("patched run lost loads: %d vs %d", adore.CPU.Loads, base.CPU.Loads)
	}
	if adore.CPU.Prefetches == 0 {
		t.Fatal("no prefetches executed despite patching")
	}
}

func TestSeriesRecording(t *testing.T) {
	b := buildO2(t, streamKernel(1<<15, 8))
	cfg := DefaultRunConfig()
	cfg.SampleOnly = true
	cfg.Core = fastCore()
	cfg.RecordSeries = true
	r, err := Run(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) < 4 {
		t.Fatalf("series points = %d", len(r.Series))
	}
	for i := 1; i < len(r.Series); i++ {
		if r.Series[i].Cycle < r.Series[i-1].Cycle {
			t.Fatal("series not time-ordered")
		}
	}
}
