package harness

import (
	"testing"

	"repro/internal/compiler"
)

// resultKernel streams a large array and stores a value derived from every
// element — the final contents of "out" witness every iteration of every
// phase, so any mis-patching (lost iterations, clobbered registers, wrong
// prefetch side effects) changes observable results.
func resultKernel() *compiler.Kernel {
	n := int64(1 << 16)
	return &compiler.Kernel{
		Name: "witness",
		Arrays: []compiler.Array{
			{Name: "a", Elem: 8, N: n, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 7, Add: 3}},
			{Name: "idx", Elem: 4, N: n, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 97, Mod: n}},
			{Name: "b", Elem: 8, N: n, Init: compiler.InitSpec{Kind: compiler.InitLinear, Mult: 5}},
			{Name: "chain", N: 1 << 12, Init: compiler.InitSpec{Kind: compiler.InitChain, NodeSize: 128, NextOff: 8, ShufflePct: 10, Seed: 3}},
			{Name: "out", Elem: 8, N: n, Init: compiler.InitSpec{Kind: compiler.InitZero}},
		},
		Phases: []compiler.Phase{
			{
				Name:   "direct-indirect",
				Repeat: 12,
				Loops: []*compiler.Loop{{
					Name:      "mix",
					OuterTrip: 1,
					InnerTrip: n,
					Body: []compiler.Stmt{
						{Kind: compiler.SLoadInt, Dst: "v", Size: 8,
							Ref: &compiler.Ref{Kind: compiler.RefAffine, Array: "a", InnerStride: 8}},
						{Kind: compiler.SLoadInt, Dst: "i", Size: 4,
							Ref: &compiler.Ref{Kind: compiler.RefAffine, Array: "idx", InnerStride: 4}},
						{Kind: compiler.SLoadInt, Dst: "g", Size: 8,
							Ref: &compiler.Ref{Kind: compiler.RefIndirect, Array: "b", IndexTemp: "i", Scale: 8}},
						{Kind: compiler.SAdd, Dst: "s", A: "s", B: "v"},
						{Kind: compiler.SAdd, Dst: "s", A: "s", B: "g"},
						{Kind: compiler.SStoreInt, A: "s", Size: 8,
							Ref: &compiler.Ref{Kind: compiler.RefAffine, Array: "out", InnerStride: 8}},
					},
					Inits: []compiler.Init{{Temp: "s", IsImm: true, Imm: 0}},
				}},
			},
			{
				Name:   "chase",
				Repeat: 12,
				Loops: []*compiler.Loop{{
					Name:      "walk",
					OuterTrip: 1,
					InnerTrip: 1 << 12,
					Body: []compiler.Stmt{
						{Kind: compiler.SLoadInt, Dst: "pay", Size: 8,
							Ref: &compiler.Ref{Kind: compiler.RefPointer, PtrTemp: "p", Offset: 0}},
						{Kind: compiler.SLoadInt, Dst: "p", Size: 8,
							Ref: &compiler.Ref{Kind: compiler.RefPointer, PtrTemp: "p", Offset: 8}},
						{Kind: compiler.SAdd, Dst: "q", A: "q", B: "pay"},
						{Kind: compiler.SStoreInt, A: "q", Size: 8,
							Ref: &compiler.Ref{Kind: compiler.RefAffine, Array: "out", InnerStride: 8}},
					},
					Inits: []compiler.Init{
						{Temp: "p", Array: "chain", Offset: 0},
						{Temp: "q", IsImm: true, Imm: 0},
					},
				}},
			},
		},
	}
}

// TestPatchingPreservesSemantics is the end-to-end safety property of §3.6:
// "the original program's execution sequence has not been changed." Every
// memory-visible result of a heavily patched run must equal the plain
// run's, for all three reference patterns, across phase transitions,
// patching, and prefetch execution.
func TestPatchingPreservesSemantics(t *testing.T) {
	build, err := compiler.Build(resultKernel(), compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(build, DefaultRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	rc := DefaultRunConfig()
	rc.ADORE = true
	rc.Core = fastCore()
	opt, err := Run(build, rc)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Core.TracesPatched == 0 {
		t.Fatalf("run was not patched; test is vacuous: %+v", *opt.Core)
	}
	outBase := build.Layout.Base["out"]
	n := int64(1 << 16)
	for i := int64(0); i < n; i++ {
		a := base.CPU
		_ = a
		want := baseMem(t, base, outBase+uint64(i*8))
		got := baseMem(t, opt, outBase+uint64(i*8))
		if want != got {
			t.Fatalf("out[%d]: base %d, patched %d (traces patched: %d)",
				i, want, got, opt.Core.TracesPatched)
		}
	}
	// The semantic instruction stream is identical; the patched run may
	// only add prefetch-related instructions.
	if opt.CPU.Stores != base.CPU.Stores {
		t.Fatalf("store count changed: %d vs %d", opt.CPU.Stores, base.CPU.Stores)
	}
}

func baseMem(t *testing.T, r *RunResult, addr uint64) uint64 {
	t.Helper()
	if r.FinalMemory == nil {
		t.Fatal("run did not keep memory")
	}
	return r.FinalMemory.Read64(addr)
}

// The same property under every §6 extension enabled at once.
func TestExtensionsPreserveSemantics(t *testing.T) {
	build, err := compiler.Build(resultKernel(), compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(build, DefaultRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	rc := DefaultRunConfig()
	rc.ADORE = true
	rc.Core = fastCore()
	rc.Core.OptimizeSWPLoops = true
	rc.Core.PhaseTable = true
	rc.Core.StrideProfiling = true
	opt, err := Run(build, rc)
	if err != nil {
		t.Fatal(err)
	}
	outBase := build.Layout.Base["out"]
	for i := int64(0); i < 1<<16; i += 101 {
		want := baseMem(t, base, outBase+uint64(i*8))
		got := baseMem(t, opt, outBase+uint64(i*8))
		if want != got {
			t.Fatalf("out[%d]: base %d, extended %d", i, want, got)
		}
	}
}
