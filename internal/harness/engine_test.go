package harness

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/compiler"
	"repro/internal/workloads"
)

func TestEngineMapSlotsResultsByIndex(t *testing.T) {
	for _, workers := range []int{1, 4} {
		e := NewEngine(EngineConfig{Parallelism: workers})
		const n = 32
		out := make([]int, n)
		err := e.Map(context.Background(), n, func(_ context.Context, i int) error {
			out[i] = i * i
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range out {
			if out[i] != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, out[i])
			}
		}
	}
}

func TestEngineMapFirstErrorCancelsRest(t *testing.T) {
	e := NewEngine(EngineConfig{Parallelism: 2})
	boom := errors.New("boom")
	var ran atomic.Int64
	err := e.Map(context.Background(), 1000, func(ctx context.Context, i int) error {
		ran.Add(1)
		if i == 3 {
			return boom
		}
		time.Sleep(200 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := ran.Load(); n == 1000 {
		t.Fatal("error did not stop job dispatch")
	}
}

func TestEngineMapHonorsParentCancellation(t *testing.T) {
	e := NewEngine(EngineConfig{Parallelism: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := e.Map(ctx, 10, func(context.Context, int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestEngineProgressEvents(t *testing.T) {
	var mu sync.Mutex
	var starts, dones int
	e := NewEngine(EngineConfig{Parallelism: 2, OnProgress: func(p Progress) {
		mu.Lock()
		defer mu.Unlock()
		if p.Done {
			dones++
		} else {
			starts++
		}
		if p.Total != 2 || p.Sweep != "test" {
			t.Errorf("bad progress event %+v", p)
		}
	}})
	b, err := workloads.ByName("mcf", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	sp := benchSpec(b, 0.02, compiler.O2)
	jobs := []Job{
		{Name: "mcf/a", Compile: sp, Config: DefaultRunConfig()},
		{Name: "mcf/b", Compile: sp, Config: DefaultRunConfig()},
	}
	if _, err := e.RunJobs(context.Background(), "test", jobs); err != nil {
		t.Fatal(err)
	}
	if starts != 2 || dones != 2 {
		t.Fatalf("starts=%d dones=%d, want 2/2", starts, dones)
	}
}

// TestBuildCacheSingleFlight proves the cache compiles once per key no
// matter how many goroutines race on it, and that distinct options miss
// separately.
func TestBuildCacheSingleFlight(t *testing.T) {
	b, err := workloads.ByName("mcf", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	c := NewBuildCache()
	sp := benchSpec(b, 0.02, compiler.O2)

	const callers = 8
	builds := make([]*compiler.BuildResult, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			br, err := c.Build(sp)
			if err != nil {
				t.Error(err)
				return
			}
			builds[i] = br
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if builds[i] != builds[0] {
			t.Fatalf("caller %d got a different build", i)
		}
	}
	hits, misses := c.Stats()
	if misses != 1 || hits != callers-1 {
		t.Fatalf("hits=%d misses=%d, want %d/1", hits, misses, callers-1)
	}

	// A different optimization level is a different key.
	if _, err := c.Build(benchSpec(b, 0.02, compiler.O3)); err != nil {
		t.Fatal(err)
	}
	if _, misses := c.Stats(); misses != 2 {
		t.Fatalf("misses after O3 = %d, want 2", misses)
	}
	// Same spec again: pure hit.
	if _, err := c.Build(sp); err != nil {
		t.Fatal(err)
	}
	if hits, _ := c.Stats(); hits != callers {
		t.Fatalf("hits after re-ask = %d, want %d", hits, callers)
	}
}

// TestRunJobsSharesCompiles asserts the Fig. 7 job shape — two runs per
// benchmark over one compile — really does hit the cache.
func TestRunJobsSharesCompiles(t *testing.T) {
	b, err := workloads.ByName("gzip", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(EngineConfig{Parallelism: 2})
	sp := benchSpec(b, 0.05, compiler.O2)
	adore := DefaultRunConfig()
	adore.ADORE = true
	runs, err := e.RunJobs(context.Background(), "test", []Job{
		{Name: "gzip/base", Compile: sp, Config: DefaultRunConfig()},
		{Name: "gzip/adore", Compile: sp, Config: adore},
	})
	if err != nil {
		t.Fatal(err)
	}
	if runs[0] == nil || runs[1] == nil {
		t.Fatal("missing results")
	}
	if runs[0].Core != nil || runs[1].Core == nil {
		t.Fatal("results not slotted by index: base/adore swapped")
	}
	hits, misses := e.Cache().Stats()
	if misses != 1 || hits != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}
}

// TestRunContextCancellation proves cancellation reaches the CPU loop: a
// pre-cancelled context stops the run before it simulates anything.
func TestRunContextCancellation(t *testing.T) {
	b, err := workloads.ByName("mcf", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	build, err := compiler.Build(b.Kernel, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, build, DefaultRunConfig()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunContextCancelMidRun cancels a run already in flight and expects it
// to stop long before the workload would finish.
func TestRunContextCancelMidRun(t *testing.T) {
	b, err := workloads.ByName("mcf", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	build, err := compiler.Build(b.Kernel, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RunContext(ctx, build, DefaultRunConfig())
		done <- err
	}()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
