package harness

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/compiler"
	"repro/internal/workloads"
)

func TestEngineMapSlotsResultsByIndex(t *testing.T) {
	for _, workers := range []int{1, 4} {
		e := NewEngine(EngineConfig{Parallelism: workers})
		const n = 32
		out := make([]int, n)
		err := e.Map(context.Background(), n, func(_ context.Context, i int) error {
			out[i] = i * i
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range out {
			if out[i] != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, out[i])
			}
		}
	}
}

func TestEngineMapFirstErrorCancelsRest(t *testing.T) {
	e := NewEngine(EngineConfig{Parallelism: 2})
	boom := errors.New("boom")
	var ran atomic.Int64
	err := e.Map(context.Background(), 1000, func(ctx context.Context, i int) error {
		ran.Add(1)
		if i == 3 {
			return boom
		}
		time.Sleep(200 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := ran.Load(); n == 1000 {
		t.Fatal("error did not stop job dispatch")
	}
}

func TestEngineMapHonorsParentCancellation(t *testing.T) {
	e := NewEngine(EngineConfig{Parallelism: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := e.Map(ctx, 10, func(context.Context, int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestEngineProgressEvents(t *testing.T) {
	var mu sync.Mutex
	var starts, dones int
	e := NewEngine(EngineConfig{Parallelism: 2, OnProgress: func(p Progress) {
		mu.Lock()
		defer mu.Unlock()
		if p.Done {
			dones++
		} else {
			starts++
		}
		if p.Total != 2 || p.Sweep != "test" {
			t.Errorf("bad progress event %+v", p)
		}
	}})
	b, err := workloads.ByName("mcf", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	sp := benchSpec(b, 0.02, compiler.O2)
	jobs := []Job{
		{Name: "mcf/a", Compile: sp, Config: DefaultRunConfig()},
		{Name: "mcf/b", Compile: sp, Config: DefaultRunConfig()},
	}
	if _, err := e.RunJobs(context.Background(), "test", jobs); err != nil {
		t.Fatal(err)
	}
	if starts != 2 || dones != 2 {
		t.Fatalf("starts=%d dones=%d, want 2/2", starts, dones)
	}
}

// TestBuildCacheSingleFlight proves the cache compiles once per key no
// matter how many goroutines race on it, and that distinct options miss
// separately.
func TestBuildCacheSingleFlight(t *testing.T) {
	b, err := workloads.ByName("mcf", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	c := NewBuildCache()
	sp := benchSpec(b, 0.02, compiler.O2)

	const callers = 8
	builds := make([]*compiler.BuildResult, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			br, err := c.Build(sp)
			if err != nil {
				t.Error(err)
				return
			}
			builds[i] = br
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if builds[i] != builds[0] {
			t.Fatalf("caller %d got a different build", i)
		}
	}
	hits, misses := c.Stats()
	if misses != 1 || hits != callers-1 {
		t.Fatalf("hits=%d misses=%d, want %d/1", hits, misses, callers-1)
	}

	// A different optimization level is a different key.
	if _, err := c.Build(benchSpec(b, 0.02, compiler.O3)); err != nil {
		t.Fatal(err)
	}
	if _, misses := c.Stats(); misses != 2 {
		t.Fatalf("misses after O3 = %d, want 2", misses)
	}
	// Same spec again: pure hit.
	if _, err := c.Build(sp); err != nil {
		t.Fatal(err)
	}
	if hits, _ := c.Stats(); hits != callers {
		t.Fatalf("hits after re-ask = %d, want %d", hits, callers)
	}
}

// TestRunJobsSharesCompiles asserts the Fig. 7 job shape — two runs per
// benchmark over one compile — really does hit the cache.
func TestRunJobsSharesCompiles(t *testing.T) {
	b, err := workloads.ByName("gzip", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(EngineConfig{Parallelism: 2})
	sp := benchSpec(b, 0.05, compiler.O2)
	adore := DefaultRunConfig()
	adore.ADORE = true
	runs, err := e.RunJobs(context.Background(), "test", []Job{
		{Name: "gzip/base", Compile: sp, Config: DefaultRunConfig()},
		{Name: "gzip/adore", Compile: sp, Config: adore},
	})
	if err != nil {
		t.Fatal(err)
	}
	if runs[0] == nil || runs[1] == nil {
		t.Fatal("missing results")
	}
	if runs[0].Core != nil || runs[1].Core == nil {
		t.Fatal("results not slotted by index: base/adore swapped")
	}
	hits, misses := e.Cache().Stats()
	if misses != 1 || hits != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}
}

// TestRunContextCancellation proves cancellation reaches the CPU loop: a
// pre-cancelled context stops the run before it simulates anything.
func TestRunContextCancellation(t *testing.T) {
	b, err := workloads.ByName("mcf", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	build, err := compiler.Build(b.Kernel, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, build, DefaultRunConfig()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunContextCancelMidRun cancels a run already in flight and expects it
// to stop long before the workload would finish.
func TestRunContextCancelMidRun(t *testing.T) {
	b, err := workloads.ByName("mcf", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	build, err := compiler.Build(b.Kernel, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RunContext(ctx, build, DefaultRunConfig())
		done <- err
	}()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestResultCacheWaiterNotStranded is the regression test for the serve
// hardening PR: a sweep whose first runner is canceled must not strand a
// concurrent second waiter on a ready channel that never closes (or that
// closes only when the stuck runner eventually dies). The waiter blocks on
// the in-flight run OR its own context, and a retry after the canceled
// first runner re-runs instead of replaying the stale error.
func TestResultCacheWaiterNotStranded(t *testing.T) {
	c := NewResultCache()
	block := make(chan struct{})
	started := make(chan struct{}, 1)
	c.runFn = func(ctx context.Context, _ *compiler.BuildResult, _ RunConfig) (*RunResult, error) {
		started <- struct{}{}
		select {
		case <-block:
			return &RunResult{Name: "stub"}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	cfg := DefaultRunConfig()

	// First runner: holds the in-flight entry until its context fires.
	ctxA, cancelA := context.WithCancel(context.Background())
	errA := make(chan error, 1)
	go func() {
		_, err := c.Run(ctxA, "k", nil, cfg)
		errA <- err
	}()
	<-started

	// Second waiter with its own live context: joins the in-flight entry.
	// Canceling ITS context must release it promptly even though the first
	// runner is still stuck.
	ctxB, cancelB := context.WithCancel(context.Background())
	errB := make(chan error, 1)
	go func() {
		_, err := c.Run(ctxB, "k", nil, cfg)
		errB <- err
	}()
	time.Sleep(5 * time.Millisecond) // let B reach the wait
	cancelB()
	select {
	case err := <-errB:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("second waiter stranded on a canceled context")
	}

	// Cancel the first runner: its error evicts the entry...
	cancelA()
	if err := <-errA; !errors.Is(err, context.Canceled) {
		t.Fatalf("runner err = %v, want context.Canceled", err)
	}
	// ...so a retried sweep re-runs and succeeds.
	close(block)
	res, err := c.Run(context.Background(), "k", nil, cfg)
	if err != nil || res == nil || res.Name != "stub" {
		t.Fatalf("retry after canceled runner: res=%v err=%v", res, err)
	}
	if hits, misses := c.Stats(); misses != 2 {
		t.Fatalf("stats = %d hits / %d misses, want 2 misses (canceled + retry)", hits, misses)
	}
}

// TestResultCachePanicReleasesWaiters: a panicking runner must evict its
// entry and close the ready channel before the panic unwinds, so waiters
// see an error instead of stranding forever.
func TestResultCachePanicReleasesWaiters(t *testing.T) {
	c := NewResultCache()
	entered := make(chan struct{})
	c.runFn = func(context.Context, *compiler.BuildResult, RunConfig) (*RunResult, error) {
		close(entered)
		time.Sleep(5 * time.Millisecond) // let the waiter join first
		panic("runner died")
	}
	cfg := DefaultRunConfig()
	go func() {
		defer func() { recover() }()
		c.Run(context.Background(), "k", nil, cfg)
	}()
	<-entered
	_, err := c.Run(context.Background(), "k", nil, cfg)
	if err == nil {
		t.Fatal("waiter of a panicked runner returned a nil error")
	}
	// The entry was evicted, so a retry runs fresh (and panics again here,
	// but through its own call — prove the eviction only).
	if n := c.Len(); n != 0 {
		t.Fatalf("cache holds %d entries after a panicked runner, want 0", n)
	}
}

// TestResultCacheBoundedLRU pins the bounded mode: least-recently-touched
// completed entries are evicted past capacity, touching refreshes recency,
// and the eviction counter is exact.
func TestResultCacheBoundedLRU(t *testing.T) {
	c := NewResultCacheBounded(2)
	var runs atomic.Int64
	c.runFn = func(_ context.Context, _ *compiler.BuildResult, _ RunConfig) (*RunResult, error) {
		runs.Add(1)
		return &RunResult{Name: "stub"}, nil
	}
	cfg := DefaultRunConfig()
	ctx := context.Background()
	must := func(key string) {
		t.Helper()
		if _, err := c.Run(ctx, key, nil, cfg); err != nil {
			t.Fatal(err)
		}
	}
	must("a")
	must("b")
	must("c") // evicts a
	if got := c.Evictions(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	must("b") // hit; refreshes b over c
	must("d") // evicts c (b was touched)
	if got := c.Evictions(); got != 2 {
		t.Fatalf("evictions = %d, want 2", got)
	}
	must("b") // still cached
	must("a") // was evicted: re-runs, evicts d
	if got := runs.Load(); got != 5 {
		t.Fatalf("runs = %d, want 5 (a b c d + re-run of a)", got)
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 5 {
		t.Fatalf("stats = %d hits / %d misses, want 2/5", hits, misses)
	}
	if n := c.Len(); n != 2 {
		t.Fatalf("cache holds %d entries, want capacity 2", n)
	}
}
