package harness

import (
	"context"
	"fmt"

	"repro/internal/isa"
	"repro/internal/memsys"
	"repro/internal/oracle"
	"repro/internal/program"
)

// This file is the differential harness: it runs one program image through
// the reference oracle (internal/oracle) and through the full machine
// (internal/cpu wired by RunImageContext), then compares everything the
// architecture defines — final register state, final data memory, and the
// architecturally-determined counters. The paper's transparency claim
// (§3.4: patching never changes results, only cycles) becomes a mechanical
// check: with ADORE attached the comparison simply excludes the reserved
// scratch registers r27-r30/p6 and additionally requires that unpatching
// restores the original text bundle-for-bundle.

// OracleResult is one completed oracle run, reusable across any number of
// machine configurations of the same image.
type OracleResult struct {
	Stats oracle.Stats
	Arch  isa.ArchState
	Mem   *memsys.Memory
}

// RunOracle executes img on the reference interpreter until halt.
func RunOracle(img *program.Image, maxInsts uint64) (*OracleResult, error) {
	if maxInsts == 0 {
		maxInsts = 2_000_000_000
	}
	m, err := oracle.FromImage(img)
	if err != nil {
		return nil, err
	}
	st, err := m.Run(maxInsts)
	if err != nil {
		return nil, fmt.Errorf("oracle: %s: %w", img.Name, err)
	}
	if !m.Halted() {
		return nil, fmt.Errorf("oracle: %s did not halt within %d instructions", img.Name, maxInsts)
	}
	return &OracleResult{Stats: st, Arch: m.ArchState(), Mem: m.Mem}, nil
}

// DiffReport is the outcome of one differential comparison. Divergences is
// empty when the two engines agree.
type DiffReport struct {
	Name        string
	Divergences []string
	CPU         *RunResult
	Oracle      *OracleResult
}

// Failed reports whether any divergence was found.
func (r *DiffReport) Failed() bool { return len(r.Divergences) > 0 }

func (r *DiffReport) String() string {
	if !r.Failed() {
		return fmt.Sprintf("differential %s: ok", r.Name)
	}
	s := fmt.Sprintf("differential %s: %d divergences", r.Name, len(r.Divergences))
	for _, d := range r.Divergences {
		s += "\n  " + d
	}
	return s
}

// DiffImage runs img through both engines under cfg and compares. See
// DiffAgainst for the checks performed.
func DiffImage(img *program.Image, cfg RunConfig) (*DiffReport, error) {
	return DiffImageContext(context.Background(), img, cfg)
}

// DiffImageContext is DiffImage with cancellation (CPU side only; the
// oracle runs orders of magnitude faster than the machine it checks).
func DiffImageContext(ctx context.Context, img *program.Image, cfg RunConfig) (*DiffReport, error) {
	or, err := RunOracle(img, cfg.MaxInsts)
	if err != nil {
		return nil, err
	}
	return DiffAgainstContext(ctx, or, img, cfg)
}

// DiffAgainst compares one machine run against an already-computed oracle
// result — the cheap path when sweeping many machine configurations (O2/O3
// × patching × observability) over the same image. The checks:
//
//   - Final architectural register state must match bit-for-bit; with ADORE
//     attached, the runtime-reserved scratch state (r27-r30, p6) is excluded.
//   - Final data memory must match byte-for-byte over every resident page.
//     (ADORE's prefetch code may read through reserved registers but never
//     stores, so this holds with patching on too — unless the §6
//     StrideProfiling extension is enabled, whose instrumentation buffers
//     legitimately write simulated memory; then the comparison masks the
//     instrumentation region.)
//   - Retired/load/store/prefetch/branch counts must match exactly on a
//     plain run. Under ADORE the injected code legitimately adds loads and
//     prefetches, so the check weakens to inequalities — but stores must
//     still match exactly: prefetch code that stores is a bug wherever it
//     hides.
//   - Under ADORE, Controller.UnpatchAll must restore the original text
//     segment bundle-for-bundle (the paper's "the replaced bundle is saved").
func DiffAgainst(or *OracleResult, img *program.Image, cfg RunConfig) (*DiffReport, error) {
	return DiffAgainstContext(context.Background(), or, img, cfg)
}

// DiffAgainstContext is DiffAgainst with cancellation.
func DiffAgainstContext(ctx context.Context, or *OracleResult, img *program.Image, cfg RunConfig) (*DiffReport, error) {
	res, err := RunImageContext(ctx, img, cfg)
	if err != nil {
		return nil, err
	}
	rep := &DiffReport{Name: img.Name, CPU: res, Oracle: or}
	diverge := func(format string, args ...interface{}) {
		rep.Divergences = append(rep.Divergences, fmt.Sprintf(format, args...))
	}

	// Register state.
	cmp := isa.StateCompare{IgnoreReserved: cfg.ADORE}
	for _, d := range or.Arch.Diff(res.Arch, cmp) {
		diverge("arch state (oracle vs cpu): %s", d)
	}

	// Data memory. The stride-profiling extension writes instrumentation
	// buffers into simulated memory from injected code; mask that region
	// when the extension is on.
	if cfg.ADORE && cfg.Core.StrideProfiling {
		if addr, ov, cv, diff := memsys.FirstDiffBelow(or.Mem, res.FinalMemory, cfg.Core.InstrBufBase); diff {
			diverge("memory at %#x: oracle %#x vs cpu %#x", addr, ov, cv)
		}
	} else if addr, ov, cv, diff := memsys.FirstDiff(or.Mem, res.FinalMemory); diff {
		diverge("memory at %#x: oracle %#x vs cpu %#x", addr, ov, cv)
	}

	// Architecturally-determined counters.
	cs := res.CPU
	os := or.Stats
	if cfg.ADORE {
		if cs.Stores != os.Stores {
			diverge("stores: oracle %d vs cpu %d (injected code must not store)", os.Stores, cs.Stores)
		}
		if cs.Retired < os.Retired {
			diverge("retired: oracle %d vs cpu %d (patched run retired fewer)", os.Retired, cs.Retired)
		}
		if cs.Loads < os.Loads {
			diverge("loads: oracle %d vs cpu %d (patched run loaded fewer)", os.Loads, cs.Loads)
		}
	} else {
		if os.Retired != cs.Retired || os.Loads != cs.Loads || os.Stores != cs.Stores ||
			os.Prefetches != cs.Prefetches || os.Branches != cs.Branches {
			diverge("counters: oracle %+v vs cpu {Retired:%d Loads:%d Stores:%d Prefetches:%d Branches:%d}",
				os, cs.Retired, cs.Loads, cs.Stores, cs.Prefetches, cs.Branches)
		}
	}

	// Patch reversibility.
	if cfg.ADORE && res.Controller != nil {
		if err := res.Controller.UnpatchAll(); err != nil {
			diverge("unpatch: %v", err)
		} else if seg, ok := res.Code.SegmentAt(img.Entry); !ok {
			diverge("unpatch: entry %#x unmapped after UnpatchAll", img.Entry)
		} else if len(seg.Bundles) != len(img.Code.Bundles) {
			diverge("unpatch: text length %d bundles vs original %d", len(seg.Bundles), len(img.Code.Bundles))
		} else {
			for i := range seg.Bundles {
				if seg.Bundles[i] != img.Code.Bundles[i] {
					diverge("unpatch: bundle %d (%#x) not restored:\n    ran:      %s\n    original: %s",
						i, seg.Base+uint64(i)*isa.BundleBytes,
						seg.Bundles[i].String(), img.Code.Bundles[i].String())
					break
				}
			}
		}
	}
	return rep, nil
}
