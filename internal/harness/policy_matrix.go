package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/workloads"
)

// The policy-matrix experiment: every benchmark × every registered
// prefetch policy × the runtime selector, against the un-optimized
// baseline. This is the evaluation the policy layer exists for — it asks
// "which policy wins where, and does the runtime selector track the best
// fixed policy?" — and its results are pinned in their own golden-corpus
// section (testdata/golden/policy_matrix.json), separate from the paper
// corpus so the paper figures stay byte-identical to their pre-policy
// baseline.

// PolicyBaseColumn and PolicySelectorColumn are the two matrix columns
// that are not fixed prefetch policies.
const (
	PolicyBaseColumn     = "base"
	PolicySelectorColumn = "selector"
)

// PolicyColumns is the matrix column order: baseline first, then the
// registered policies (sorted), then the runtime selector.
func PolicyColumns() []string {
	cols := []string{PolicyBaseColumn}
	cols = append(cols, core.PrefetchPolicyNames()...)
	return append(cols, PolicySelectorColumn)
}

// PolicyMatrixRow is one benchmark's measurements across the columns.
type PolicyMatrixRow struct {
	Name       string
	Cycles     map[string]uint64 // column → total cycles
	Prefetches map[string]int    // column → prefetch sequences inserted
}

// PolicyMatrixResult is the full sweep.
type PolicyMatrixResult struct {
	Policies []string
	Rows     []PolicyMatrixRow
}

// RunPolicyMatrix runs the matrix with a background context.
func RunPolicyMatrix(cfg ExpConfig) (*PolicyMatrixResult, error) {
	return RunPolicyMatrixContext(context.Background(), cfg)
}

// RunPolicyMatrixContext runs the matrix on the engine: per benchmark, one
// baseline job plus one ADORE job per column, all sharing a single O2
// compile through the build cache. Each column's RunConfig differs only in
// Core.Policy/Core.Selector — which is exactly the aliasing hazard the run
// fingerprint exists to prevent (see ResultCache).
func RunPolicyMatrixContext(ctx context.Context, cfg ExpConfig) (*PolicyMatrixResult, error) {
	benches, cols, jobs := policyMatrixJobs(cfg)
	runs, err := cfg.engine().RunJobs(ctx, "policymatrix", jobs)
	if err != nil {
		return nil, err
	}
	return policyMatrixResult(benches, cols, runs), nil
}

// RunPolicyMatrixForkedContext runs the identical matrix on the
// checkpoint/fork engine: per benchmark, the ADORE columns share one
// warmup through a divergence-point snapshot (RunJobsForked) instead of
// each simulating it. The result is bit-identical to
// RunPolicyMatrixContext's; the returned ForkStats report the warmup
// cycles the sharing saved.
func RunPolicyMatrixForkedContext(ctx context.Context, cfg ExpConfig) (*PolicyMatrixResult, *ForkStats, error) {
	benches, cols, jobs := policyMatrixJobs(cfg)
	runs, stats, err := cfg.engine().RunJobsForked(ctx, "policymatrix", jobs)
	if err != nil {
		return nil, nil, err
	}
	return policyMatrixResult(benches, cols, runs), stats, nil
}

// policyMatrixJobs builds the sweep's job list: benches × columns, in
// row-major order (the layout policyMatrixResult depends on).
func policyMatrixJobs(cfg ExpConfig) ([]workloads.Benchmark, []string, []Job) {
	benches := workloads.All(cfg.Scale)
	cols := PolicyColumns()
	jobs := make([]Job, 0, len(benches)*len(cols))
	for _, b := range benches {
		sp := benchSpec(b, cfg.Scale, compiler.O2)
		for _, col := range cols {
			rc := cfg.runConfig()
			switch col {
			case PolicyBaseColumn:
				// plain run: no ADORE
			case PolicySelectorColumn:
				rc.ADORE = true
				rc.Core = cfg.Core
				rc.Core.Selector = true
			default:
				rc.ADORE = true
				rc.Core = cfg.Core
				rc.Core.Policy = col
			}
			jobs = append(jobs, Job{Name: b.Name + "/" + col, Compile: sp, Config: rc})
		}
	}
	return benches, cols, jobs
}

// policyMatrixResult assembles the matrix from row-major run results.
func policyMatrixResult(benches []workloads.Benchmark, cols []string, runs []*RunResult) *PolicyMatrixResult {
	res := &PolicyMatrixResult{Policies: cols}
	for i, b := range benches {
		row := PolicyMatrixRow{
			Name:       b.Name,
			Cycles:     make(map[string]uint64, len(cols)),
			Prefetches: make(map[string]int, len(cols)),
		}
		for j, col := range cols {
			r := runs[i*len(cols)+j]
			row.Cycles[col] = r.CPU.Cycles
			if r.Core != nil {
				row.Prefetches[col] = r.Core.TotalPrefetches()
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// AggregateCycles sums each column over the whole suite.
func (m *PolicyMatrixResult) AggregateCycles() map[string]uint64 {
	agg := make(map[string]uint64, len(m.Policies))
	for _, r := range m.Rows {
		for _, col := range m.Policies {
			agg[col] += r.Cycles[col]
		}
	}
	return agg
}

// BestFixedPolicy returns, for one row, the fixed (non-base, non-selector)
// policy with the fewest cycles; ties go to the alphabetically first.
func (m *PolicyMatrixResult) BestFixedPolicy(row PolicyMatrixRow) string {
	best, bestCycles := "", uint64(math.MaxUint64)
	for _, col := range m.Policies {
		if col == PolicyBaseColumn || col == PolicySelectorColumn {
			continue
		}
		if c := row.Cycles[col]; c < bestCycles {
			best, bestCycles = col, c
		}
	}
	return best
}

// Render prints the matrix as speedups over the baseline column.
func (m *PolicyMatrixResult) Render() string {
	var b strings.Builder
	b.WriteString("Policy matrix: speedup over no-prefetching baseline, per prefetch policy\n")
	fmt.Fprintf(&b, "%-10s %12s", "benchmark", "base cycles")
	for _, col := range m.Policies {
		if col == PolicyBaseColumn {
			continue
		}
		fmt.Fprintf(&b, " %9s", col)
	}
	b.WriteString("   best\n")
	for _, r := range m.Rows {
		base := r.Cycles[PolicyBaseColumn]
		fmt.Fprintf(&b, "%-10s %12d", r.Name, base)
		for _, col := range m.Policies {
			if col == PolicyBaseColumn {
				continue
			}
			fmt.Fprintf(&b, " %8.1f%%", Speedup(base, r.Cycles[col])*100)
		}
		fmt.Fprintf(&b, "   %s\n", m.BestFixedPolicy(r))
	}
	agg := m.AggregateCycles()
	fmt.Fprintf(&b, "%-10s %12d", "aggregate", agg[PolicyBaseColumn])
	for _, col := range m.Policies {
		if col == PolicyBaseColumn {
			continue
		}
		fmt.Fprintf(&b, " %8.1f%%", Speedup(agg[PolicyBaseColumn], agg[col])*100)
	}
	b.WriteString("\n")
	return b.String()
}

// GoldenPolicyRow pins one benchmark row of the matrix.
type GoldenPolicyRow struct {
	Name       string
	Cycles     map[string]uint64
	Prefetches map[string]int
}

// PolicyGolden is the checked-in policy-matrix baseline — its own corpus
// file, so regenerating it never touches the paper corpus (corpus.json).
type PolicyGolden struct {
	Scale    float64
	Tol      GoldenTolerance
	Policies []string
	Rows     []GoldenPolicyRow
}

// CollectPolicyGolden runs the matrix and pins it.
func CollectPolicyGolden(cfg ExpConfig) (*PolicyGolden, error) {
	m, err := RunPolicyMatrix(cfg)
	if err != nil {
		return nil, err
	}
	g := &PolicyGolden{Scale: cfg.Scale, Tol: DefaultGoldenTolerance(), Policies: m.Policies}
	for _, r := range m.Rows {
		g.Rows = append(g.Rows, GoldenPolicyRow{Name: r.Name, Cycles: r.Cycles, Prefetches: r.Prefetches})
	}
	return g, nil
}

// LoadPolicyGolden reads the pinned matrix.
func LoadPolicyGolden(path string) (*PolicyGolden, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	g := &PolicyGolden{}
	if err := json.Unmarshal(data, g); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

// Save writes the pinned matrix as indented JSON, stable for diffing.
func (g *PolicyGolden) Save(path string) error {
	data, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Compare checks a fresh matrix against the pinned one: cycles within
// RelCycles per cell, prefetch counts exact (discrete optimizer output),
// same benchmarks, same columns.
func (g *PolicyGolden) Compare(m *PolicyMatrixResult) []string {
	var divs []string
	if !equalStrings(g.Policies, m.Policies) {
		divs = append(divs, fmt.Sprintf("policymatrix: columns %v, golden %v (regenerate with -update-policy-golden)",
			m.Policies, g.Policies))
		return divs
	}
	byName := make(map[string]GoldenPolicyRow, len(g.Rows))
	for _, r := range g.Rows {
		byName[r.Name] = r
	}
	for _, r := range m.Rows {
		w, ok := byName[r.Name]
		if !ok {
			divs = append(divs, fmt.Sprintf("policymatrix/%s: not in golden corpus", r.Name))
			continue
		}
		for _, col := range g.Policies {
			if !withinRel(r.Cycles[col], w.Cycles[col], g.Tol.RelCycles) {
				divs = append(divs, fmt.Sprintf("policymatrix/%s/%s: cycles %d, golden %d (±%.2g rel)",
					r.Name, col, r.Cycles[col], w.Cycles[col], g.Tol.RelCycles))
			}
			if r.Prefetches[col] != w.Prefetches[col] {
				divs = append(divs, fmt.Sprintf("policymatrix/%s/%s: prefetches %d, golden %d",
					r.Name, col, r.Prefetches[col], w.Prefetches[col]))
			}
		}
	}
	if len(m.Rows) != len(g.Rows) {
		divs = append(divs, fmt.Sprintf("policymatrix: %d rows, golden %d", len(m.Rows), len(g.Rows)))
	}
	return divs
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
