package harness

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/compiler"
	"repro/internal/obs"
	"repro/internal/workloads"
)

// obsBuild compiles one benchmark for the observability tests.
func obsBuild(t *testing.T, name string, scale float64) *compiler.BuildResult {
	t.Helper()
	b, err := workloads.ByName(name, scale)
	if err != nil {
		t.Fatal(err)
	}
	build, err := compiler.Build(b.Kernel, compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return build
}

// TestObservedRunDeterminism: the recorder is stamped on the simulated
// clock, so two observed runs of the same build must produce bit-identical
// event streams — and an unobserved run of the same build must produce the
// exact same cpu.Stats, because observing may not perturb the simulation.
func TestObservedRunDeterminism(t *testing.T) {
	build := obsBuild(t, "art", 0.1)
	rc := DefaultRunConfig()
	rc.ADORE = true
	rc.Observe = true

	first, err := Run(build, rc)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(build, rc)
	if err != nil {
		t.Fatal(err)
	}
	if first.CPU != second.CPU {
		t.Errorf("cpu stats diverged:\n  first:  %+v\n  second: %+v", first.CPU, second.CPU)
	}
	if first.Obs == nil || second.Obs == nil {
		t.Fatal("observed run returned nil capture")
	}
	if !reflect.DeepEqual(first.Obs, second.Obs) {
		t.Errorf("event streams diverged: %d vs %d events (dropped %d vs %d)",
			len(first.Obs.Events), len(second.Obs.Events), first.Obs.Dropped, second.Obs.Dropped)
	}
	if !reflect.DeepEqual(first.CPIStack, second.CPIStack) {
		t.Errorf("CPI stacks diverged:\n  first:  %+v\n  second: %+v", first.CPIStack, second.CPIStack)
	}

	plain := DefaultRunConfig()
	plain.ADORE = true
	unobserved, err := Run(build, plain)
	if err != nil {
		t.Fatal(err)
	}
	if unobserved.CPU != first.CPU {
		t.Errorf("observing perturbed the run:\n  observed:   %+v\n  unobserved: %+v",
			first.CPU, unobserved.CPU)
	}
	if !reflect.DeepEqual(unobserved.Core, first.Core) {
		t.Errorf("observing perturbed controller stats:\n  observed:   %+v\n  unobserved: %+v",
			first.Core, unobserved.Core)
	}
	if unobserved.Obs != nil || unobserved.CPIStack != nil || unobserved.LoopCPI != nil {
		t.Error("unobserved run carries observability outputs")
	}
}

// TestObservedRunAcceptance is the PR's acceptance run: mcf at scale 0.1
// under ADORE with observability on must record the pipeline milestones,
// keep the per-window CPI-stack deltas consistent with the window clock,
// and export a valid Chrome trace.
func TestObservedRunAcceptance(t *testing.T) {
	build := obsBuild(t, "mcf", 0.1)
	rc := DefaultRunConfig()
	rc.ADORE = true
	rc.Observe = true

	res, err := Run(build, rc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs == nil {
		t.Fatal("no capture")
	}
	if res.CPIStack == nil {
		t.Fatal("no CPI stack")
	}
	if got, want := res.CPIStack.Total(), res.CPU.Cycles; got != want {
		t.Errorf("whole-run CPI stack total %d != cycles %d", got, want)
	}

	counts := map[obs.Kind]int{}
	for _, e := range res.Obs.Events {
		counts[e.Kind]++
	}
	for _, k := range []obs.Kind{
		obs.KindWindowObserved, obs.KindPhaseDetected, obs.KindPatchInstalled,
		obs.KindCPIStack, obs.KindPrefetchWindow,
	} {
		if counts[k] == 0 {
			t.Errorf("no %v event recorded (counts %v)", k, counts)
		}
	}

	// Each core-level (Loop == -1) CPIStack event carries the cycles
	// accounted since the previous snapshot, and is stamped at the snapshot
	// instant — so consecutive stamps bound the delta exactly (well inside
	// the 1%-per-window acceptance bar).
	var prevCycle uint64
	checked := 0
	for _, e := range res.Obs.Events {
		if e.Kind != obs.KindCPIStack || e.Loop != -1 {
			continue
		}
		sum := e.A + e.B + e.C + e.D
		want := e.Cycle - prevCycle
		prevCycle = e.Cycle
		if sum != want {
			t.Errorf("window snapshot @%d: CPI-stack delta %d vs cycle delta %d",
				e.Cycle, sum, want)
		}
		checked++
	}
	if checked == 0 {
		t.Error("no core-level CPIStack windows checked")
	}

	var trace bytes.Buffer
	if err := obs.WriteChromeTrace(&trace, res.Obs); err != nil {
		t.Fatal(err)
	}
	n, err := obs.ValidateChromeTrace(trace.Bytes())
	if err != nil {
		t.Fatalf("exported trace invalid: %v", err)
	}
	if n == 0 {
		t.Error("exported trace has no timestamped events")
	}
	var jsonl bytes.Buffer
	if err := obs.WriteJSONL(&jsonl, res.Obs); err != nil {
		t.Fatal(err)
	}
	if jsonl.Len() == 0 {
		t.Error("empty JSONL export")
	}
}

// TestObserveOverhead guards the "low-overhead" claim: enabling the full
// observability layer (recorder + CPI-stack accounting + per-window
// sampling) on a serial Fig. 7 benchmark may cost at most 5% wall clock.
// Min-of-N timing filters scheduler noise.
func TestObserveOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("long: timed simulation runs")
	}
	if raceEnabled {
		t.Skip("race detector skews timing; the 5% bound is not meaningful")
	}
	if testing.CoverMode() != "" {
		t.Skip("coverage instrumentation skews timing; the 5% bound is not meaningful")
	}
	build := obsBuild(t, "mcf", 0.1)

	timeRun := func(observe bool) time.Duration {
		rc := DefaultRunConfig()
		rc.ADORE = true
		rc.Observe = observe
		start := time.Now()
		if _, err := Run(build, rc); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}

	// Interleave the two configurations and keep the best of each, so
	// host-load drift during the test hits both sides alike.
	best := func(a, b time.Duration) time.Duration {
		if a < b {
			return a
		}
		return b
	}
	off, on := time.Duration(1<<63-1), time.Duration(1<<63-1)
	for i := 0; i < 5; i++ {
		off = best(off, timeRun(false))
		on = best(on, timeRun(true))
	}
	overhead := float64(on-off) / float64(off)
	t.Logf("observe off %v, on %v: overhead %.2f%%", off, on, 100*overhead)
	if overhead > 0.05 {
		t.Errorf("observability overhead %.2f%% exceeds 5%% (off %v, on %v)",
			100*overhead, off, on)
	}
}
