package harness

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/compiler"
)

// The experiment engine: the paper's evaluation sweeps 17 benchmarks ×
// {O2, O3} × {base, ADORE}, and every run is hermetic (private code-segment
// copy, private memory, private hierarchy — see RunContext), so the sweeps
// are embarrassingly parallel. The engine schedules (compile, run) jobs on
// a bounded worker pool, deduplicates compiles through a single-flight
// build cache, and slots results by job index so output is deterministic
// regardless of completion order.

// Progress is one live event from an engine sweep, emitted when a job
// starts (Done false) and when it finishes (Done true).
type Progress struct {
	Sweep string // driver label ("fig7/O2", "table1", ...)
	Job   string // unit label ("mcf/adore")
	Index int    // job index within the sweep
	Total int    // jobs in the sweep
	Done  bool
	Err   error // non-nil on a finished, failed job
}

// EngineConfig sizes the experiment engine.
type EngineConfig struct {
	// Parallelism is the worker-pool width: 1 serializes, 0 uses
	// GOMAXPROCS. The cmd tools' -j flag maps straight onto it.
	Parallelism int

	// OnProgress, when set, observes every job start and finish. It is
	// invoked from worker goroutines and must be safe for concurrent use.
	OnProgress func(Progress)
}

// Engine runs experiment jobs on a worker pool with a shared build cache.
// Error handling follows errgroup semantics: the first failure cancels the
// sweep's context, undispatched jobs are abandoned, and that first error is
// what the sweep returns.
type Engine struct {
	cfg   EngineConfig
	cache *BuildCache
}

// NewEngine creates an engine with a fresh build cache. Share one engine
// across sweeps (as cmd/adore-bench does) to share its cache: Fig. 7(a),
// Table 1 and Fig. 11 all compile the same O2 kernels.
func NewEngine(cfg EngineConfig) *Engine {
	return &Engine{cfg: cfg, cache: NewBuildCache()}
}

// Parallelism returns the effective worker count.
func (e *Engine) Parallelism() int {
	if e.cfg.Parallelism > 0 {
		return e.cfg.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Cache exposes the engine's shared build cache (for its hit counters).
func (e *Engine) Cache() *BuildCache { return e.cache }

func (e *Engine) report(p Progress) {
	if e.cfg.OnProgress != nil {
		e.cfg.OnProgress(p)
	}
}

// Map runs fn(i) for every i in [0, n) on the worker pool. Callers slot
// results into their own output by index, so result order is deterministic
// regardless of completion order. The first error cancels the context
// passed to the remaining jobs, stops dispatch, and is returned.
func (e *Engine) Map(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers := e.Parallelism()
	if workers > n {
		workers = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	next.Store(-1)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				if err := fn(ctx, i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// CompileSpec names one compilation unit for the build cache. Name must
// encode everything that shapes the kernel itself (for the experiment
// drivers: benchmark name and workload scale); Options covers the rest via
// its fingerprint.
type CompileSpec struct {
	Name    string
	Kernel  *compiler.Kernel
	Options compiler.Options
}

// Key returns the build-cache key for the spec.
func (s CompileSpec) Key() string { return s.Name + "|" + s.Options.Fingerprint() }

// Job pairs a compilation with one run of its result — the unit the engine
// schedules.
type Job struct {
	Name    string // display label for progress output
	Compile CompileSpec
	Config  RunConfig
}

// RunJobs executes the jobs on the worker pool and returns their results
// slotted by index: out[i] belongs to jobs[i] no matter which finished
// first. Jobs naming the same compile spec share one compile through the
// build cache.
func (e *Engine) RunJobs(ctx context.Context, sweep string, jobs []Job) ([]*RunResult, error) {
	out := make([]*RunResult, len(jobs))
	err := e.Map(ctx, len(jobs), func(ctx context.Context, i int) error {
		j := &jobs[i]
		e.report(Progress{Sweep: sweep, Job: j.Name, Index: i, Total: len(jobs)})
		build, err := e.cache.Build(j.Compile)
		if err == nil {
			out[i], err = RunContext(ctx, build, j.Config)
		}
		e.report(Progress{Sweep: sweep, Job: j.Name, Index: i, Total: len(jobs), Done: true, Err: err})
		if err != nil {
			return fmt.Errorf("%s: %w", j.Name, err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// BuildCache is a single-flight cache of compiler builds keyed by
// CompileSpec.Key. Sharing one BuildResult between concurrent runs is safe
// because runs copy the code segment and never mutate the image.
type BuildCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	hits    atomic.Uint64
	misses  atomic.Uint64
}

type cacheEntry struct {
	ready chan struct{} // closed once build/err are set
	build *compiler.BuildResult
	err   error
}

// NewBuildCache returns an empty cache.
func NewBuildCache() *BuildCache {
	return &BuildCache{entries: map[string]*cacheEntry{}}
}

// Build returns the build for spec, compiling at most once per key no
// matter how many goroutines ask concurrently: latecomers block until the
// first caller's compile finishes and share its result (and error).
func (c *BuildCache) Build(spec CompileSpec) (*compiler.BuildResult, error) {
	key := spec.Key()
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		<-e.ready
		return e.build, e.err
	}
	e := &cacheEntry{ready: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()
	c.misses.Add(1)
	e.build, e.err = compiler.Build(spec.Kernel, spec.Options)
	close(e.ready)
	return e.build, e.err
}

// Stats reports cache effectiveness: hits are requests served by an
// existing or in-flight compile, misses are actual compiles.
func (c *BuildCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}
