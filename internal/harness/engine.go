package harness

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/compiler"
	"repro/internal/metrics"
)

// The experiment engine: the paper's evaluation sweeps 17 benchmarks ×
// {O2, O3} × {base, ADORE}, and every run is hermetic (private code-segment
// copy, private memory, private hierarchy — see RunContext), so the sweeps
// are embarrassingly parallel. The engine schedules (compile, run) jobs on
// a bounded worker pool, deduplicates compiles through a single-flight
// build cache, and slots results by job index so output is deterministic
// regardless of completion order.

// Progress is one live event from an engine sweep, emitted when a job
// starts (Done false) and when it finishes (Done true).
type Progress struct {
	Sweep string // driver label ("fig7/O2", "table1", ...)
	Job   string // unit label ("mcf/adore")
	Index int    // job index within the sweep
	Total int    // jobs in the sweep
	Done  bool
	Err   error // non-nil on a finished, failed job
}

// EngineConfig sizes the experiment engine.
type EngineConfig struct {
	// Parallelism is the worker-pool width: 1 serializes, 0 uses
	// GOMAXPROCS. The cmd tools' -j flag maps straight onto it.
	Parallelism int

	// OnProgress, when set, observes every job start and finish. It is
	// invoked from worker goroutines and must be safe for concurrent use.
	OnProgress func(Progress)

	// Metrics, when set, instruments the engine on this registry: job and
	// worker telemetry, cache hit/miss counters, and per-job folds of the
	// simulated aggregates (see metrics.go for the semantics). Nil runs
	// the engine unmetered at no cost.
	Metrics *metrics.Registry

	// ResultCacheCap bounds the engine's result cache to this many
	// completed runs (LRU eviction past it). Zero keeps the cache
	// unbounded — right for one-shot sweeps, wrong for a long-lived
	// service, which is why adore-serve always sets it.
	ResultCacheCap int
}

// Engine runs experiment jobs on a worker pool with shared build and
// result caches. Error handling follows errgroup semantics: the first
// failure cancels the sweep's context, undispatched jobs are abandoned,
// and that first error is what the sweep returns.
type Engine struct {
	cfg     EngineConfig
	cache   *BuildCache
	results *ResultCache
	metrics engineMetrics
	drops   dropCounts
}

// NewEngine creates an engine with fresh caches. Share one engine across
// sweeps (as cmd/adore-bench does) to share them: Fig. 7(a), Table 1 and
// Fig. 11 all compile the same O2 kernels, and Table 2 re-runs Fig. 7's
// exact machine configurations.
func NewEngine(cfg EngineConfig) *Engine {
	e := &Engine{cfg: cfg, cache: NewBuildCache(), results: NewResultCacheBounded(cfg.ResultCacheCap)}
	e.metrics = newEngineMetrics(cfg.Metrics)
	e.metrics.workers.Set(int64(e.Parallelism()))
	r := cfg.Metrics
	e.cache.SetMetrics(
		r.Counter("adore_engine_build_cache_hits_total", "compiles served by the build cache"),
		r.Counter("adore_engine_build_cache_misses_total", "actual compiles"))
	e.results.SetMetrics(
		r.Counter("adore_engine_result_cache_hits_total", "runs served by the result cache"),
		r.Counter("adore_engine_result_cache_misses_total", "actual simulations"))
	return e
}

// Parallelism returns the effective worker count.
func (e *Engine) Parallelism() int {
	if e.cfg.Parallelism > 0 {
		return e.cfg.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Cache exposes the engine's shared build cache (for its hit counters).
func (e *Engine) Cache() *BuildCache { return e.cache }

// Results exposes the engine's shared result cache (for its hit counters).
func (e *Engine) Results() *ResultCache { return e.results }

func (e *Engine) report(p Progress) {
	if e.cfg.OnProgress != nil {
		e.cfg.OnProgress(p)
	}
}

// Map runs fn(i) for every i in [0, n) on the worker pool. Callers slot
// results into their own output by index, so result order is deterministic
// regardless of completion order. The first error cancels the context
// passed to the remaining jobs, stops dispatch, and is returned.
func (e *Engine) Map(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers := e.Parallelism()
	if workers > n {
		workers = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	next.Store(-1)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				if err := fn(ctx, i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// CompileSpec names one compilation unit for the build cache. Name must
// encode everything that shapes the kernel itself (for the experiment
// drivers: benchmark name and workload scale); Options covers the rest via
// its fingerprint.
type CompileSpec struct {
	Name    string
	Kernel  *compiler.Kernel
	Options compiler.Options
}

// Key returns the build-cache key for the spec.
func (s CompileSpec) Key() string { return s.Name + "|" + s.Options.Fingerprint() }

// Job pairs a compilation with one run of its result — the unit the engine
// schedules.
type Job struct {
	Name    string // display label for progress output
	Compile CompileSpec
	Config  RunConfig
}

// RunJobs executes the jobs on the worker pool and returns their results
// slotted by index: out[i] belongs to jobs[i] no matter which finished
// first. Jobs naming the same compile spec share one compile through the
// build cache.
func (e *Engine) RunJobs(ctx context.Context, sweep string, jobs []Job) ([]*RunResult, error) {
	out := make([]*RunResult, len(jobs))
	sweepStart := time.Now()
	err := e.Map(ctx, len(jobs), func(ctx context.Context, i int) error {
		j := &jobs[i]
		jobStart := time.Now()
		e.metrics.queueWait.Observe(uint64(jobStart.Sub(sweepStart)))
		e.metrics.jobsStarted.Inc()
		e.metrics.inflight.Inc()
		e.report(Progress{Sweep: sweep, Job: j.Name, Index: i, Total: len(jobs)})
		if j.Config.Metrics == nil {
			// A metered engine meters its jobs' controllers too. Metrics is
			// fingerprint-exempt, so this never splits result-cache entries.
			j.Config.Metrics = e.cfg.Metrics
		}
		build, err := e.cache.Build(j.Compile)
		if err == nil {
			if j.Config.OnOptimize == nil {
				// Hermetic, hook-free job: identical (build, config) pairs
				// share one simulation through the result cache. The key
				// includes the run fingerprint, so two configs differing in
				// anything observable — notably the prefetch policy — can
				// never alias.
				out[i], err = e.results.Run(ctx, j.Compile.Key(), build, j.Config)
			} else {
				out[i], err = RunContext(ctx, build, j.Config)
			}
		}
		elapsed := uint64(time.Since(jobStart))
		e.metrics.inflight.Dec()
		e.metrics.jobLatency.Observe(elapsed)
		e.metrics.workerBusy.Add(elapsed)
		if err != nil {
			e.metrics.jobsFailed.Inc()
		} else {
			e.metrics.jobsDone.Inc()
			e.foldResult(out[i])
		}
		e.report(Progress{Sweep: sweep, Job: j.Name, Index: i, Total: len(jobs), Done: true, Err: err})
		if err != nil {
			return fmt.Errorf("%s: %w", j.Name, err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunJob schedules one job — the unit the serve front door submits per
// request — and returns its result. Identical to RunJobs with a
// single-element slice: the job shares the engine's build and result
// caches and its metrics with every other request in flight.
func (e *Engine) RunJob(ctx context.Context, sweep string, job Job) (*RunResult, error) {
	out, err := e.RunJobs(ctx, sweep, []Job{job})
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// BuildCache is a single-flight cache of compiler builds keyed by
// CompileSpec.Key. Sharing one BuildResult between concurrent runs is safe
// because runs copy the code segment and never mutate the image.
type BuildCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	hits    atomic.Uint64
	misses  atomic.Uint64
	mHits   *metrics.Counter // optional live mirrors (SetMetrics)
	mMisses *metrics.Counter
}

type cacheEntry struct {
	ready chan struct{} // closed once build/err are set
	build *compiler.BuildResult
	err   error
}

// NewBuildCache returns an empty cache.
func NewBuildCache() *BuildCache {
	return &BuildCache{entries: map[string]*cacheEntry{}}
}

// SetMetrics mirrors the cache's hit/miss counters onto live metric
// counters (nil instruments are valid and free). Call before use.
func (c *BuildCache) SetMetrics(hits, misses *metrics.Counter) {
	c.mHits, c.mMisses = hits, misses
}

// Build returns the build for spec, compiling at most once per key no
// matter how many goroutines ask concurrently: latecomers block until the
// first caller's compile finishes and share its result (and error).
func (c *BuildCache) Build(spec CompileSpec) (*compiler.BuildResult, error) {
	key := spec.Key()
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		c.mHits.Inc()
		<-e.ready
		return e.build, e.err
	}
	e := &cacheEntry{ready: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()
	c.misses.Add(1)
	c.mMisses.Inc()
	e.build, e.err = compiler.Build(spec.Kernel, spec.Options)
	close(e.ready)
	return e.build, e.err
}

// Stats reports cache effectiveness: hits are requests served by an
// existing or in-flight compile, misses are actual compiles.
func (c *BuildCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// ResultCache is a single-flight cache of completed runs, keyed by the
// compile key plus the RunConfig fingerprint. Sharing a *RunResult between
// jobs is safe for the engine's callers, which treat results as read-only;
// it is NOT used for differential or hook-carrying runs, which go through
// RunContext directly.
//
// An optional capacity (NewResultCacheBounded) turns the cache into an
// LRU: completed entries beyond the bound are evicted oldest-touched
// first, which is what a long-lived process (adore-serve) needs — the
// unbounded form grows forever under a diverse query mix. In-flight
// entries are never evicted: their waiters hold the entry pointer, and
// evicting one would let a concurrent identical request start a duplicate
// simulation.
type ResultCache struct {
	mu        sync.Mutex
	entries   map[string]*resultEntry
	order     []string // completed keys, oldest-touched first (bounded mode only)
	capacity  int      // 0 = unbounded
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	mHits     *metrics.Counter // optional live mirrors (SetMetrics)
	mMisses   *metrics.Counter

	// runFn performs the simulation; tests substitute a controllable
	// runner to pin the single-flight edge cases (stranded waiters,
	// panicking runners) without real workloads.
	runFn func(context.Context, *compiler.BuildResult, RunConfig) (*RunResult, error)
}

type resultEntry struct {
	ready chan struct{} // closed once res/err are set
	res   *RunResult
	err   error
}

// NewResultCache returns an empty, unbounded cache.
func NewResultCache() *ResultCache {
	return &ResultCache{entries: map[string]*resultEntry{}, runFn: RunContext}
}

// NewResultCacheBounded returns an empty cache holding at most capacity
// completed results, evicting least-recently-touched entries beyond it.
// A capacity <= 0 is unbounded.
func NewResultCacheBounded(capacity int) *ResultCache {
	c := NewResultCache()
	if capacity > 0 {
		c.capacity = capacity
	}
	return c
}

// SetMetrics mirrors the cache's hit/miss counters onto live metric
// counters (nil instruments are valid and free). Call before use.
func (c *ResultCache) SetMetrics(hits, misses *metrics.Counter) {
	c.mHits, c.mMisses = hits, misses
}

// Run returns the result of simulating build under cfg, running each
// distinct (compileKey, cfg.Fingerprint()) pair at most once no matter how
// many goroutines ask concurrently. A failed run is handed to its waiters
// but evicted from the cache, so a later retry (e.g. after a canceled
// sweep) re-runs instead of replaying a stale context error. Waiters block
// on the in-flight run OR their own context — a waiter whose context fires
// returns immediately instead of stranding on a runner that never
// finishes — and a panicking runner releases its waiters (with an error in
// the entry) before the panic propagates.
func (c *ResultCache) Run(ctx context.Context, compileKey string, build *compiler.BuildResult, cfg RunConfig) (*RunResult, error) {
	key := compileKey + "|" + cfg.Fingerprint()
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.touchLocked(key)
		c.mu.Unlock()
		c.hits.Add(1)
		c.mHits.Inc()
		select {
		case <-e.ready:
			return e.res, e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	e := &resultEntry{ready: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()
	c.misses.Add(1)
	c.mMisses.Inc()

	finished := false
	defer func() {
		if !finished {
			// The runner panicked. Evict the entry and release the waiters
			// with an error before the panic unwinds, so nobody strands on
			// a ready channel that would otherwise never close.
			e.err = fmt.Errorf("harness: result-cache runner for %s died", key)
			c.mu.Lock()
			delete(c.entries, key)
			c.mu.Unlock()
			close(e.ready)
		}
	}()
	e.res, e.err = c.runFn(ctx, build, cfg)
	finished = true
	c.mu.Lock()
	if e.err != nil {
		delete(c.entries, key)
	} else {
		c.completeLocked(key)
	}
	c.mu.Unlock()
	close(e.ready)
	return e.res, e.err
}

// touchLocked marks key most-recently-used (bounded mode; no-op otherwise
// or while the key is still in flight).
func (c *ResultCache) touchLocked(key string) {
	if c.capacity == 0 {
		return
	}
	for i, k := range c.order {
		if k == key {
			c.order = append(append(c.order[:i], c.order[i+1:]...), key)
			return
		}
	}
}

// completeLocked records a freshly completed key and evicts past capacity.
func (c *ResultCache) completeLocked(key string) {
	if c.capacity == 0 {
		return
	}
	c.order = append(c.order, key)
	for len(c.order) > c.capacity {
		victim := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, victim)
		c.evictions.Add(1)
	}
}

// Stats reports cache effectiveness: hits are requests served by an
// existing or in-flight run, misses are actual simulations.
func (c *ResultCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Evictions reports how many completed results the bounded mode dropped.
func (c *ResultCache) Evictions() uint64 { return c.evictions.Load() }

// Len reports the number of cached (and in-flight) entries.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
