package harness

import "testing"

// TestADOREVerifiesTracesEndToEnd checks that runtime verification
// (Config.Verify, on by default) actually runs in a full ADORE session:
// every installed trace was checked first, and none of the optimizer's
// real output is rejected.
func TestADOREVerifiesTracesEndToEnd(t *testing.T) {
	b := buildO2(t, streamKernel(1<<17, 12))
	cfg := DefaultRunConfig()
	cfg.ADORE = true
	cfg.Core = fastCore()
	if !cfg.Core.Verify {
		t.Fatal("Verify not on by default")
	}
	r, err := Run(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Core.TracesPatched == 0 {
		t.Fatalf("no traces patched: %+v", *r.Core)
	}
	if r.Core.TracesVerified < r.Core.TracesPatched {
		t.Fatalf("patched %d traces but verified only %d",
			r.Core.TracesPatched, r.Core.TracesVerified)
	}
	if r.Core.VerifyRejects != 0 {
		t.Fatalf("verifier rejected %d of the optimizer's own traces", r.Core.VerifyRejects)
	}
}
