package harness

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/memsys"
	"repro/internal/pmu"
	"repro/internal/program"
)

// The checkpoint/fork execution engine (DESIGN.md §16). A policy sweep
// runs the same benchmark once per prefetch policy, but every ADORE run
// of one (workload, compile-options) pair executes an identical prefix:
// the pipeline's first policy-dependent decision happens only when a
// stable phase triggers trace optimization. The fork engine runs that
// shared prefix ONCE per group, snapshots the whole machine at the
// policy-divergence point, and resumes each remaining configuration from
// the snapshot — bit-identical to a straight run, because the simulator
// is deterministic and the snapshot captures every run-varying bit of
// state (CPU, memory, caches, MSHRs, PMU, controller, code image).

// ForkDivergence is the captureMin value asking RunForkProbeImage to
// keep re-capturing at every snapshot-worthy hook boundary and freeze
// only at the run's first policy-dependent decision — the fork engine's
// mode. A finite captureMin instead freezes the capture at the first
// eligible boundary at or after that cycle (the fuzzer's mode).
const ForkDivergence = ^uint64(0)

// ForkSnapshot is a frozen machine checkpoint: the complete run-varying
// state of the CPU, data memory, cache hierarchy, PMU, controller, and
// patched code image at one hook boundary. Snapshots are immutable once
// the probe run finishes; any number of continuations may resume from
// one concurrently (memory is forked copy-on-write, everything else is
// deep-copied per continuation by Restore).
type ForkSnapshot struct {
	// Cycle is the hook boundary the snapshot was captured at.
	Cycle uint64
	// Diverged reports that the capture was frozen by the probe run's
	// first policy-dependent decision (rather than by a captureMin
	// cycle): the snapshot precedes that decision, so a continuation
	// with a different prefetch policy or selector re-makes it under
	// its own configuration.
	Diverged bool

	cpu    *cpu.Snapshot
	code   *program.CodeSnapshot
	mem    *memsys.Memory // frozen fork; continuations Fork() it again
	hier   *memsys.HierarchySnapshot
	pmu    *pmu.Snapshot
	ctrl   *core.Snapshot
	series []SeriesPoint
}

// forkProbe captures ForkSnapshots while a probe run executes. Captures
// happen at hook boundaries — before the due hooks fire — and only at
// boundaries with profile windows pending (the only boundaries that can
// reach a policy decision) or past minCycle. The latest capture wins
// until the probe freezes: at the first policy-dependent decision
// (OnPolicyPoint), or at the first eligible boundary at/after minCycle.
type forkProbe struct {
	minCycle uint64
	snap     *ForkSnapshot
	frozen   bool
}

func (pr *forkProbe) arm(m *cpu.CPU, mem *memsys.Memory, code *program.CodeSpace,
	hier *memsys.Hierarchy, p *pmu.PMU, ctrl *core.Controller, res *RunResult) error {
	if ctrl == nil {
		return errors.New("fork probe requires an ADORE run")
	}
	m.OnHookBoundary(func(now uint64) {
		if pr.frozen {
			return
		}
		if ctrl.PendingWindows() == 0 && now < pr.minCycle {
			return
		}
		pr.snap = &ForkSnapshot{
			Cycle:  now,
			cpu:    m.Snapshot(),
			code:   code.Snapshot(),
			mem:    mem.Fork(),
			hier:   hier.Snapshot(),
			pmu:    p.Snapshot(),
			ctrl:   ctrl.Snapshot(),
			series: append([]SeriesPoint(nil), res.Series...),
		}
		if now >= pr.minCycle {
			pr.frozen = true
		}
	})
	ctrl.OnPolicyPoint = func(now uint64) {
		// In divergence mode the first policy decision freezes the
		// capture; a finite minCycle (the fuzzer's mode, same-config
		// resume) keeps capturing — snapshots past the divergence are
		// valid when the continuation's configuration is the probe's.
		if pr.frozen || pr.minCycle != ForkDivergence {
			return
		}
		pr.frozen = true
		// The decision fires from a poll hook, after this boundary's
		// capture (pending windows make the boundary eligible), so the
		// frozen snapshot sits exactly at the diverging boundary.
		if pr.snap != nil {
			pr.snap.Diverged = true
		}
	}
	return nil
}

// restore rewinds a freshly assembled machine to the snapshot. Order
// matters: the code image first (re-applying the probe's patches through
// the change hooks keeps the predecode coherent), then CPU, hierarchy,
// PMU, and controller — the PMU after the controller's Attach has
// Start()ed it, the controller last so its restored pending windows are
// what the re-entered poll hook consumes. The machine's first step
// re-enters the same hook boundary and re-makes the pending policy
// decision under ITS OWN policy closures — that is the fork.
func (snap *ForkSnapshot) restore(m *cpu.CPU, code *program.CodeSpace,
	hier *memsys.Hierarchy, p *pmu.PMU, ctrl *core.Controller, res *RunResult) error {
	if ctrl == nil {
		return errors.New("fork resume requires an ADORE run")
	}
	if err := code.Restore(snap.code); err != nil {
		return err
	}
	if err := m.Restore(snap.cpu); err != nil {
		return err
	}
	if err := hier.Restore(snap.hier); err != nil {
		return err
	}
	if err := p.Restore(snap.pmu); err != nil {
		return err
	}
	if err := ctrl.Restore(snap.ctrl); err != nil {
		return err
	}
	res.Series = append(res.Series, snap.series...)
	return nil
}

// RunForkProbeImage runs img under cfg to completion — the returned
// RunResult is a normal, full run — while capturing a ForkSnapshot. With
// captureMin == ForkDivergence the snapshot freezes at the run's first
// policy-dependent decision; a finite captureMin freezes it at the first
// snapshot-worthy hook boundary at or after that cycle. A nil snapshot
// (with a nil error) means no eligible boundary was reached — e.g. the
// run never grew a stable phase; callers fall back to straight runs.
func RunForkProbeImage(ctx context.Context, img *program.Image, cfg RunConfig, captureMin uint64) (*RunResult, *ForkSnapshot, error) {
	pr := &forkProbe{minCycle: captureMin}
	res, err := runImage(ctx, img, cfg, pr, nil)
	if err != nil {
		return nil, nil, err
	}
	return res, pr.snap, nil
}

// RunForkedImage resumes img from snap under cfg, simulating only the
// continuation. cfg must assemble a machine structurally identical to
// the probe's (same CPU/hierarchy/sampling configuration, same hooks) —
// the restore validates this — but its prefetch policy and selector may
// differ when the snapshot was taken at the divergence point.
func RunForkedImage(ctx context.Context, img *program.Image, cfg RunConfig, snap *ForkSnapshot) (*RunResult, error) {
	return runImage(ctx, img, cfg, nil, snap)
}

// forkPrefixFingerprint fingerprints everything of a RunConfig that
// shapes the shared prefix of an ADORE run — i.e. the full fingerprint
// with the policy-divergent fields (prefetch policy, selector)
// neutralized. Jobs with equal compile keys and equal prefix
// fingerprints execute identical simulations up to the first policy
// decision, which is the fork engine's grouping invariant.
func forkPrefixFingerprint(cfg RunConfig) string {
	cfg.Core.Policy = ""
	cfg.Core.Selector = false
	return cfg.Fingerprint()
}

// forkable reports whether a job can join a fork group: an ADORE run
// with no observation hook (hooked runs see every optimization attempt,
// including the probe's) and no sampling-only modes.
func forkable(cfg RunConfig) bool {
	return cfg.ADORE && cfg.OnOptimize == nil && !cfg.SampleOnly && !cfg.CaptureDear
}

// ForkStats summarizes one forked sweep's warmup sharing.
type ForkStats struct {
	// Groups is the number of fork groups that captured a usable
	// snapshot; ForkedRuns the continuations resumed from one;
	// StraightRuns everything else (probes, baselines, un-forkable
	// jobs, and fallbacks for groups that never reached a snapshot).
	Groups       int
	ForkedRuns   int
	StraightRuns int

	// WarmupStraight is the total simulated warmup a non-forked sweep
	// spends on the grouped jobs (members × fork-point cycles, summed
	// over groups); WarmupForked is what the forked sweep simulated for
	// the same work (each group's fork-point cycles once).
	WarmupStraight uint64
	WarmupForked   uint64
}

// WarmupReduction is the sweep's warmup-cycle reduction factor
// (straight / forked); 1.0 when nothing forked.
func (s *ForkStats) WarmupReduction() float64 {
	if s.WarmupForked == 0 {
		return 1
	}
	return float64(s.WarmupStraight) / float64(s.WarmupForked)
}

// RunJobsForked is RunJobs with checkpoint/fork scheduling: jobs whose
// configurations differ only in prefetch policy/selector (and share a
// compile) form fork groups. Each group's first member runs as the
// probe — a full run that also captures the divergence-point snapshot —
// and the rest resume from the snapshot, skipping the shared warmup.
// Results are bit-identical to RunJobs; the two phases (probes and
// un-grouped jobs, then continuations) both run on the worker pool.
// Continuations bypass the result cache (their results are still
// hermetic, but the probe path must run to produce the snapshot).
func (e *Engine) RunJobsForked(ctx context.Context, sweep string, jobs []Job) ([]*RunResult, *ForkStats, error) {
	type group struct {
		members []int // job indices; members[0] is the probe
		snap    *ForkSnapshot
	}
	groups := map[string]*group{}
	var order []string
	for i := range jobs {
		if !forkable(jobs[i].Config) {
			continue
		}
		key := jobs[i].Compile.Key() + "|" + forkPrefixFingerprint(jobs[i].Config)
		g := groups[key]
		if g == nil {
			g = &group{}
			groups[key] = g
			order = append(order, key)
		}
		g.members = append(g.members, i)
	}
	probeOf := make(map[int]*group)
	contOf := make(map[int]*group)
	for _, key := range order {
		g := groups[key]
		if len(g.members) < 2 {
			continue // a lone policy shares nothing; run it straight
		}
		probeOf[g.members[0]] = g
		for _, i := range g.members[1:] {
			contOf[i] = g
		}
	}

	out := make([]*RunResult, len(jobs))
	sweepStart := time.Now()
	runOne := func(ctx context.Context, i int) error {
		j := &jobs[i]
		jobStart := time.Now()
		e.metrics.queueWait.Observe(uint64(jobStart.Sub(sweepStart)))
		e.metrics.jobsStarted.Inc()
		e.metrics.inflight.Inc()
		e.report(Progress{Sweep: sweep, Job: j.Name, Index: i, Total: len(jobs)})
		if j.Config.Metrics == nil {
			j.Config.Metrics = e.cfg.Metrics
		}
		build, err := e.cache.Build(j.Compile)
		if err == nil {
			switch {
			case probeOf[i] != nil:
				var snap *ForkSnapshot
				out[i], snap, err = RunForkProbeImage(ctx, build.Image, j.Config, ForkDivergence)
				probeOf[i].snap = snap // nil when no boundary was eligible
			case contOf[i] != nil && contOf[i].snap != nil:
				out[i], err = RunForkedImage(ctx, build.Image, j.Config, contOf[i].snap)
			case j.Config.OnOptimize == nil:
				out[i], err = e.results.Run(ctx, j.Compile.Key(), build, j.Config)
			default:
				out[i], err = RunContext(ctx, build, j.Config)
			}
		}
		elapsed := uint64(time.Since(jobStart))
		e.metrics.inflight.Dec()
		e.metrics.jobLatency.Observe(elapsed)
		e.metrics.workerBusy.Add(elapsed)
		if err != nil {
			e.metrics.jobsFailed.Inc()
		} else {
			e.metrics.jobsDone.Inc()
			e.foldResult(out[i])
		}
		e.report(Progress{Sweep: sweep, Job: j.Name, Index: i, Total: len(jobs), Done: true, Err: err})
		if err != nil {
			return fmt.Errorf("%s: %w", j.Name, err)
		}
		return nil
	}

	// Phase A: probes plus every un-grouped job. Phase B: continuations,
	// which need their group's snapshot and so wait for phase A's barrier.
	var phaseA, phaseB []int
	for i := range jobs {
		if contOf[i] != nil {
			phaseB = append(phaseB, i)
		} else {
			phaseA = append(phaseA, i)
		}
	}
	if err := e.Map(ctx, len(phaseA), func(ctx context.Context, k int) error {
		return runOne(ctx, phaseA[k])
	}); err != nil {
		return nil, nil, err
	}
	if err := e.Map(ctx, len(phaseB), func(ctx context.Context, k int) error {
		return runOne(ctx, phaseB[k])
	}); err != nil {
		return nil, nil, err
	}

	stats := &ForkStats{StraightRuns: len(jobs)}
	for _, key := range order {
		g := groups[key]
		if len(g.members) < 2 || g.snap == nil {
			continue
		}
		stats.Groups++
		stats.ForkedRuns += len(g.members) - 1
		stats.StraightRuns -= len(g.members) - 1
		stats.WarmupForked += g.snap.Cycle
		stats.WarmupStraight += uint64(len(g.members)) * g.snap.Cycle
	}
	return out, stats, nil
}
