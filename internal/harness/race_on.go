//go:build race

package harness

// raceEnabled reports whether the race detector is compiled in. Timing
// assertions (the observability-overhead bound) are meaningless under its
// instrumentation and skip themselves.
const raceEnabled = true
