package harness

import (
	"flag"
	"testing"

	"repro/internal/compiler"
	"repro/internal/memsys"
	"repro/internal/workloads"
)

var updateGolden = flag.Bool("update-golden", false,
	"regenerate testdata/golden/corpus.json instead of comparing against it")

const goldenPath = "testdata/golden/corpus.json"

// TestGoldenCorpus re-runs every pinned sweep at the corpus scale and
// compares against the checked-in baseline. Run with -update-golden after
// an intentional model change to regenerate the corpus (and say why in the
// commit message).
func TestGoldenCorpus(t *testing.T) {
	cfg := GoldenExpConfig()
	if *updateGolden {
		g, err := CollectGolden(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Save(goldenPath); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden corpus regenerated at %s", goldenPath)
		return
	}

	g, err := LoadGolden(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if g.Scale != cfg.Scale {
		t.Fatalf("corpus scale %g but GoldenExpConfig scale %g — regenerate with -update-golden",
			g.Scale, cfg.Scale)
	}

	cfg.Engine = NewEngine(EngineConfig{})
	o2, err := RunFig7(cfg, compiler.O2)
	if err != nil {
		t.Fatal(err)
	}
	o3, err := RunFig7(cfg, compiler.O3)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := RunTable1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range g.Compare(o2, o3, t1, Table2FromFig7(o2)) {
		t.Error(d)
	}
}

// singleBenchFig7 runs one benchmark's base/adore pair — the cheap probe
// the perturbation test compares against the corpus.
func singleBenchFig7(t *testing.T, cfg ExpConfig, name string, level compiler.OptLevel) *Fig7Result {
	t.Helper()
	b, err := workloads.ByName(name, cfg.Scale)
	if err != nil {
		t.Fatal(err)
	}
	build, err := NewEngine(EngineConfig{}).Cache().Build(benchSpec(b, cfg.Scale, level))
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(build, cfg.runConfig())
	if err != nil {
		t.Fatal(err)
	}
	ac := cfg.runConfig()
	ac.ADORE = true
	ac.Core = cfg.Core
	adore, err := Run(build, ac)
	if err != nil {
		t.Fatal(err)
	}
	return &Fig7Result{Level: level, Rows: []SpeedupRow{{
		Name:    name,
		Base:    base.CPU.Cycles,
		ADORE:   adore.CPU.Cycles,
		Speedup: Speedup(base.CPU.Cycles, adore.CPU.Cycles),
		Stats:   *adore.Core,
	}}}
}

// TestGoldenCorpusCatchesPerturbation proves the corpus has teeth: an
// unchanged run of one benchmark matches it, and turning a single cache
// parameter pushes the same benchmark outside tolerance.
func TestGoldenCorpusCatchesPerturbation(t *testing.T) {
	if *updateGolden {
		t.Skip("regenerating corpus")
	}
	g, err := LoadGolden(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	cfg := GoldenExpConfig()

	clean := singleBenchFig7(t, cfg, "mcf", compiler.O2)
	if divs := g.CompareFig7(clean); len(divs) != 0 {
		t.Fatalf("unperturbed mcf run diverges from corpus: %v", divs)
	}

	perturb := []struct {
		name  string
		tweak func(*memsys.HierarchyConfig)
	}{
		{"mem-latency", func(h *memsys.HierarchyConfig) { h.MemLatency += 80 }},
		{"l2-hit-latency", func(h *memsys.HierarchyConfig) { h.L2.HitLat *= 2 }},
	}
	for _, p := range perturb {
		t.Run(p.name, func(t *testing.T) {
			h := memsys.DefaultConfig()
			p.tweak(&h)
			pc := cfg
			pc.Hierarchy = &h
			hot := singleBenchFig7(t, pc, "mcf", compiler.O2)
			divs := g.CompareFig7(hot)
			if len(divs) == 0 {
				t.Fatalf("%s perturbation did not move mcf off the golden corpus", p.name)
			}
			t.Logf("caught: %v", divs)
		})
	}
}
