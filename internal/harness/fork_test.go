package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/memsys"
	"repro/internal/workloads"
)

// The snapshot-equivalence suite: the fork engine's whole value is that a
// continuation resumed from a divergence-point snapshot is BIT-IDENTICAL
// to a straight run of the same configuration. These tests prove it over
// the full workload suite, both optimization levels, with and without
// patch installation, and — separately, because the observability layer
// widens the state that must survive a snapshot — with observation,
// series recording, and the profiler on.

// forkPolicies rotates probe/continuation policy pairs across table
// entries so every registered policy (and the selector) appears on both
// sides of a fork somewhere in the suite.
func forkPolicies(i int) (probe, cont string) {
	names := core.PrefetchPolicyNames()
	cols := append(append([]string(nil), names...), PolicySelectorColumn)
	probe = cols[i%len(cols)]
	cont = cols[(i+1)%len(cols)]
	return probe, cont
}

// forkRunConfig builds the run configuration for one policy column on
// the golden-scale ADORE parameters.
func forkRunConfig(core_ core.Config, col string, disableInsertion bool) RunConfig {
	rc := DefaultRunConfig()
	rc.ADORE = true
	rc.Core = core_
	rc.Core.DisableInsertion = disableInsertion
	if col == PolicySelectorColumn {
		rc.Core.Selector = true
	} else {
		rc.Core.Policy = col
	}
	return rc
}

// compareRuns demands bit-identity between a straight run and a forked
// continuation: CPU statistics, architectural state, controller
// statistics, prefetch counters, per-level cache statistics, recorded
// series, and (when observed) the event stream and cycle accounting.
func compareRuns(t *testing.T, straight, forked *RunResult) {
	t.Helper()
	if straight.CPU != forked.CPU {
		t.Errorf("cpu stats diverged:\n straight %+v\n forked   %+v", straight.CPU, forked.CPU)
	}
	if *straight.Arch != *forked.Arch {
		t.Errorf("architectural state diverged")
	}
	if (straight.Core == nil) != (forked.Core == nil) {
		t.Fatalf("core stats presence diverged")
	}
	if straight.Core != nil && *straight.Core != *forked.Core {
		t.Errorf("core stats diverged:\n straight %+v\n forked   %+v", *straight.Core, *forked.Core)
	}
	if s, f := straight.Mem.Prefetch(), forked.Mem.Prefetch(); s != f {
		t.Errorf("prefetch counters diverged:\n straight %+v\n forked   %+v", s, f)
	}
	sh := [4]memsys.CacheStats{straight.Mem.L1D.Stats, straight.Mem.L1I.Stats, straight.Mem.L2.Stats, straight.Mem.L3.Stats}
	fh := [4]memsys.CacheStats{forked.Mem.L1D.Stats, forked.Mem.L1I.Stats, forked.Mem.L2.Stats, forked.Mem.L3.Stats}
	if sh != fh {
		t.Errorf("cache stats diverged:\n straight %+v\n forked   %+v", sh, fh)
	}
	if !reflect.DeepEqual(straight.Series, forked.Series) {
		t.Errorf("series diverged: %d points straight, %d forked", len(straight.Series), len(forked.Series))
	}
	if (straight.Obs == nil) != (forked.Obs == nil) {
		t.Fatalf("observability capture presence diverged")
	}
	if straight.Obs != nil {
		if straight.Obs.Dropped != forked.Obs.Dropped {
			t.Errorf("obs dropped diverged: %d vs %d", straight.Obs.Dropped, forked.Obs.Dropped)
		}
		if !reflect.DeepEqual(straight.Obs.Events, forked.Obs.Events) {
			t.Errorf("obs event streams diverged: %d events straight, %d forked",
				len(straight.Obs.Events), len(forked.Obs.Events))
		}
	}
	if !reflect.DeepEqual(straight.CPIStack, forked.CPIStack) {
		t.Errorf("CPI stack diverged:\n straight %+v\n forked   %+v", straight.CPIStack, forked.CPIStack)
	}
	if !reflect.DeepEqual(straight.LoopCPI, forked.LoopCPI) {
		t.Errorf("per-loop CPI diverged")
	}
	if !reflect.DeepEqual(straight.Profile, forked.Profile) {
		t.Errorf("execution profile diverged")
	}
}

// TestForkEquivalenceSuite runs every workload × {O2, O3} × {patching
// on, off}: a probe run under one policy captures the divergence-point
// snapshot, a continuation under a DIFFERENT policy resumes from it, and
// the continuation must be bit-identical to a straight run of its own
// configuration. Workloads that never reach a policy point (no stable
// phase at this scale) return a nil snapshot and prove the fallback
// contract instead.
func TestForkEquivalenceSuite(t *testing.T) {
	base := GoldenExpConfig()
	for wi, b := range workloads.All(base.Scale) {
		for _, level := range []compiler.OptLevel{compiler.O2, compiler.O3} {
			for _, disable := range []bool{false, true} {
				b, level, disable, wi := b, level, disable, wi
				name := fmt.Sprintf("%s/%v/insertion=%v", b.Name, level, !disable)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					sp := benchSpec(b, base.Scale, level)
					build, err := compiler.Build(sp.Kernel, sp.Options)
					if err != nil {
						t.Fatal(err)
					}
					probePol, contPol := forkPolicies(wi)
					probeCfg := forkRunConfig(base.Core, probePol, disable)
					contCfg := forkRunConfig(base.Core, contPol, disable)

					probeRes, snap, err := RunForkProbeImage(context.Background(), build.Image, probeCfg, ForkDivergence)
					if err != nil {
						t.Fatal(err)
					}
					// The probe itself must be unperturbed by capturing:
					// identical to a plain straight run of its config.
					probeStraight, err := RunImage(build.Image, probeCfg)
					if err != nil {
						t.Fatal(err)
					}
					compareRuns(t, probeStraight, probeRes)

					straight, err := RunImage(build.Image, contCfg)
					if err != nil {
						t.Fatal(err)
					}
					if snap == nil {
						// No snapshot-worthy boundary at all: the engine
						// falls back to straight runs; nothing to compare.
						return
					}
					// Diverged snapshots froze at the probe's first policy
					// decision; non-diverged ones mean the probe made NO
					// policy decision, so the whole run is policy-independent
					// and forking from the last boundary is equally sound.
					if snap.Cycle == 0 || snap.Cycle >= straight.CPU.Cycles {
						t.Fatalf("snapshot cycle %d outside run (0, %d)", snap.Cycle, straight.CPU.Cycles)
					}
					cont, err := RunForkedImage(context.Background(), build.Image, contCfg, snap)
					if err != nil {
						t.Fatal(err)
					}
					compareRuns(t, straight, cont)
				})
			}
		}
	}
}

// TestForkEquivalenceObserved re-proves bit-identity with the full
// observability surface on — event recorder, CPI-stack accounting,
// series recording, and the cycle-sampling profiler — on a workload that
// reliably patches. This is the state the plain suite does not exercise:
// the obs ring, accounting maps, and profiler samples must all survive
// the snapshot/restore round trip.
func TestForkEquivalenceObserved(t *testing.T) {
	base := GoldenExpConfig()
	for _, wl := range []string{"mcf", "art"} {
		wl := wl
		t.Run(wl, func(t *testing.T) {
			t.Parallel()
			b, err := workloads.ByName(wl, base.Scale)
			if err != nil {
				t.Fatal(err)
			}
			sp := benchSpec(b, base.Scale, compiler.O2)
			build, err := compiler.Build(sp.Kernel, sp.Options)
			if err != nil {
				t.Fatal(err)
			}
			mk := func(col string) RunConfig {
				rc := forkRunConfig(base.Core, col, false)
				rc.Observe = true
				rc.RecordSeries = true
				rc.Profile = 4099
				return rc
			}
			_, snap, err := RunForkProbeImage(context.Background(), build.Image, mk("paper"), ForkDivergence)
			if err != nil {
				t.Fatal(err)
			}
			if snap == nil {
				t.Fatalf("%s grew no snapshot — pick a workload that patches at golden scale", wl)
			}
			straight, err := RunImage(build.Image, mk("nextline"))
			if err != nil {
				t.Fatal(err)
			}
			cont, err := RunForkedImage(context.Background(), build.Image, mk("nextline"), snap)
			if err != nil {
				t.Fatal(err)
			}
			if straight.Obs == nil || len(straight.Obs.Events) == 0 {
				t.Fatal("observed run recorded no events")
			}
			compareRuns(t, straight, cont)
		})
	}
}

// TestForkProbeValidation pins the structural error paths: probing or
// resuming without ADORE is an error, and a snapshot cannot be restored
// into a machine with different geometry.
func TestForkProbeValidation(t *testing.T) {
	base := GoldenExpConfig()
	b, err := workloads.ByName("mcf", base.Scale)
	if err != nil {
		t.Fatal(err)
	}
	sp := benchSpec(b, base.Scale, compiler.O2)
	build, err := compiler.Build(sp.Kernel, sp.Options)
	if err != nil {
		t.Fatal(err)
	}
	plain := DefaultRunConfig()
	if _, _, err := RunForkProbeImage(context.Background(), build.Image, plain, ForkDivergence); err == nil {
		t.Error("probe without ADORE did not error")
	}

	cfg := forkRunConfig(base.Core, "paper", false)
	_, snap, err := RunForkProbeImage(context.Background(), build.Image, cfg, ForkDivergence)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("mcf grew no snapshot at golden scale")
	}
	if _, err := RunForkedImage(context.Background(), build.Image, plain, snap); err == nil {
		t.Error("resume without ADORE did not error")
	}
	bad := cfg
	bad.Hierarchy.L1D.Size *= 2
	if _, err := RunForkedImage(context.Background(), build.Image, bad, snap); err == nil {
		t.Error("resume into a different hierarchy geometry did not error")
	}
	badCPU := cfg
	badCPU.CPU.IssueBundles++
	if _, err := RunForkedImage(context.Background(), build.Image, badCPU, snap); err == nil {
		t.Error("resume into a different CPU config did not error")
	}
}

// TestForkProbeCaptureMin pins the fuzzer-facing capture mode: a finite
// captureMin freezes the snapshot at the first eligible boundary at or
// after that cycle, and resuming the SAME configuration from it is
// bit-identical to the straight run.
func TestForkProbeCaptureMin(t *testing.T) {
	base := GoldenExpConfig()
	b, err := workloads.ByName("ammp", base.Scale)
	if err != nil {
		t.Fatal(err)
	}
	sp := benchSpec(b, base.Scale, compiler.O2)
	build, err := compiler.Build(sp.Kernel, sp.Options)
	if err != nil {
		t.Fatal(err)
	}
	cfg := forkRunConfig(base.Core, "paper", false)
	straight, err := RunImage(build.Image, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Mid-run capture points, including past the divergence: same-config
	// resume must hold anywhere, not only at the policy point.
	c := straight.CPU.Cycles
	for _, min := range []uint64{c / 4, c / 2, 3 * c / 4} {
		probeRes, snap, err := RunForkProbeImage(context.Background(), build.Image, cfg, min)
		if err != nil {
			t.Fatal(err)
		}
		compareRuns(t, straight, probeRes)
		if snap == nil {
			t.Fatalf("no boundary at/after cycle %d", min)
		}
		if snap.Cycle < min {
			t.Fatalf("snapshot at %d, before captureMin %d", snap.Cycle, min)
		}
		cont, err := RunForkedImage(context.Background(), build.Image, cfg, snap)
		if err != nil {
			t.Fatal(err)
		}
		compareRuns(t, straight, cont)
	}
}

// TestForkPolicyMatrixBitIdentical is the sweep-level acceptance test:
// the forked policy matrix must be byte-identical (as JSON) to the
// straight engine's, and must pass the checked-in policy golden
// unmodified. The fork statistics must show real warmup sharing.
func TestForkPolicyMatrixBitIdentical(t *testing.T) {
	cfg := GoldenExpConfig()
	cfg.Engine = NewEngine(EngineConfig{})
	straight, err := RunPolicyMatrix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fcfg := GoldenExpConfig()
	fcfg.Engine = NewEngine(EngineConfig{})
	forked, stats, err := RunPolicyMatrixForkedContext(context.Background(), fcfg)
	if err != nil {
		t.Fatal(err)
	}
	sj, err := json.Marshal(straight)
	if err != nil {
		t.Fatal(err)
	}
	fj, err := json.Marshal(forked)
	if err != nil {
		t.Fatal(err)
	}
	if string(sj) != string(fj) {
		t.Errorf("forked matrix is not byte-identical to straight matrix:\n straight %s\n forked   %s", sj, fj)
	}

	g, err := LoadPolicyGolden(policyGoldenPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range g.Compare(forked) {
		t.Error(d)
	}

	if stats.Groups == 0 || stats.ForkedRuns == 0 {
		t.Fatalf("no fork groups formed: %+v", stats)
	}
	// Every group shares one warmup across its 5 ADORE columns (4
	// policies + selector), so the grouped warmup reduction is exactly
	// the member count.
	if r := stats.WarmupReduction(); r < 4.9 {
		t.Errorf("warmup reduction %.2f×, want ~5× (stats %+v)", r, stats)
	}
	t.Logf("fork stats: %+v (%.1f× warmup reduction)", stats, stats.WarmupReduction())
}

// BenchmarkForkSweep times the forked policy-matrix sweep; benchstat
// rows against the straight engine quantify the throughput win.
func BenchmarkForkSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := GoldenExpConfig()
		cfg.Scale = 0.02
		cfg.Engine = NewEngine(EngineConfig{})
		_, stats, err := RunPolicyMatrixForkedContext(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(stats.WarmupReduction(), "warmup-reduction")
	}
}
