package verify_test

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/verify"
)

// decodeInst builds an instruction from 10 raw bytes. Nothing is clamped
// into legal ranges on purpose: the verifier must report findings, never
// panic, no matter what the bytes decode to.
func decodeInst(b []byte) isa.Inst {
	return isa.Inst{
		Op:      isa.Op(b[0]),
		QP:      isa.PReg(b[1] & 0x3f),
		Spec:    b[1]&0x80 != 0,
		R1:      isa.Reg(b[2]),
		R2:      isa.Reg(b[3]),
		R3:      isa.Reg(b[4]),
		P1:      isa.PReg(b[5] & 0x3f),
		P2:      isa.PReg(b[6] & 0x3f),
		Imm:     int64(int8(b[7])),
		PostInc: int64(int8(b[8])),
		// Scaled by 4, not 16, so fuzzed targets can be misaligned.
		Target: 0x1000 + uint64(b[9])*4,
	}
}

const fuzzBundleBytes = 1 + 3*10 // template byte + three encoded slots

// decodeBundles consumes whole 31-byte records; trailing bytes are ignored.
func decodeBundles(data []byte) []isa.Bundle {
	var out []isa.Bundle
	for len(data) >= fuzzBundleBytes && len(out) < 16 {
		var bd isa.Bundle
		bd.Tmpl = isa.Template(data[0])
		for s := 0; s < 3; s++ {
			bd.Slots[s] = decodeInst(data[1+s*10 : 1+(s+1)*10])
		}
		out = append(out, bd)
		data = data[fuzzBundleBytes:]
	}
	return out
}

// FuzzVerifier feeds arbitrary bundle bytes through every checking layer.
// Invariants: the verifier never panics, and any bundle the ISA itself
// rejects (Bundle.Validate) yields at least one finding.
func FuzzVerifier(f *testing.F) {
	// Seed 1: header + one all-zero bundle (MII of nops — fully legal).
	f.Add(append([]byte{0, 1, 0, 1}, make([]byte, fuzzBundleBytes)...))
	// Seed 2: unknown template, branch opcode in slot 0, junk registers.
	seed2 := append([]byte{1, 0, 1, 3}, make([]byte, 2*fuzzBundleBytes)...)
	seed2[4] = 200                              // template way out of range
	seed2[4+fuzzBundleBytes] = 2                // second bundle: MMI
	seed2[4+fuzzBundleBytes+1] = byte(isa.OpBr) // ...with a branch in the M slot
	f.Add(seed2)
	// Seed 3: a strided load loop with an injected lfetch (reserved base,
	// zero post-increment) — exercises the patch-safety and prefetch rules.
	seed3 := []byte{1, 0, 1, 2}
	ld := [10]byte{byte(isa.OpLd8), 0, 20, 0, 14, 0, 0, 0, 8, 0}
	lf := [10]byte{byte(isa.OpLfetch), 0, 0, 0, 28, 0, 0, 0, 0, 0}
	br := [10]byte{byte(isa.OpBrCond), 1, 0, 0, 0, 0, 0, 0, 0, 0}
	seed3 = append(seed3, byte(isa.TmplMMI))
	seed3 = append(seed3, ld[:]...)
	seed3 = append(seed3, lf[:]...)
	seed3 = append(seed3, make([]byte, 10)...)
	seed3 = append(seed3, byte(isa.TmplMIB))
	seed3 = append(seed3, make([]byte, 20)...)
	seed3 = append(seed3, br[:]...)
	f.Add(seed3)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		hdr, body := data[:4], data[4:]
		bundles := decodeBundles(body)
		if len(bundles) == 0 {
			return
		}
		opt := verify.Options{Advisory: hdr[0]&2 != 0, ReservedRegsUnused: hdr[0]&4 != 0}

		for i, bd := range bundles {
			pc := 0x1000 + uint64(i)*isa.BundleBytes
			fs := verify.CheckBundle(pc, bd)
			if bd.Validate() != nil && len(fs) == 0 {
				t.Fatalf("bundle %d rejected by isa.Validate but verifier found nothing: %v", i, bd)
			}
			for _, fnd := range fs {
				_ = fnd.String() // findings must always render
			}
		}

		// Assemble a trace view over the same bundles. LoopHead/BackEdge
		// come from raw signed bytes so out-of-range and inverted index
		// pairs are exercised; the verifier must bounds-guard them.
		cur := verify.TraceView{
			Start:    0x1000,
			Bundles:  bundles,
			Orig:     make([]uint64, len(bundles)),
			IsLoop:   hdr[1]&1 != 0,
			LoopHead: int(int8(hdr[2])),
			BackEdge: int(int8(hdr[3])),
		}
		for i := range cur.Orig {
			if hdr[1]&(1<<(uint(i%6)+1)) == 0 {
				cur.Orig[i] = 0x1000 + uint64(i)*isa.BundleBytes
			} // else Orig stays 0: an inserted bundle
		}
		verify.CheckTrace(cur, nil, opt)

		// Baseline = the trace with a byte-selected set of slots blanked
		// to nops, so the blanked instructions count as injected in cur.
		base := cur
		base.Bundles = append([]isa.Bundle{}, cur.Bundles...)
		for i := range base.Bundles {
			mask := hdr[0] >> 5
			for s := 0; s < 3; s++ {
				if mask&(1<<uint(s)) != 0 {
					base.Bundles[i].Slots[s] = isa.Nop
				}
			}
		}
		verify.CheckTrace(cur, &base, opt)
	})
}
