package verify

import (
	"fmt"

	"repro/internal/isa"
)

// TraceView is the verifier's neutral view of a core.Trace (mirrored here
// so verify does not import internal/core, which imports this package).
// core.Trace.View() produces one.
type TraceView struct {
	Start   uint64
	Bundles []isa.Bundle
	Orig    []uint64 // original address per bundle; 0 for inserted bundles

	IsLoop   bool
	LoopHead int
	BackEdge int
}

func (v TraceView) orig(bi int) uint64 {
	if bi < len(v.Orig) {
		return v.Orig[bi]
	}
	return 0
}

// injectedSet marks, per (bundle, slot), the instructions that patching
// added relative to the baseline trace.
type injectedSet [][3]bool

// CheckTrace verifies an ADORE-edited trace before installation. cur is
// the trace as the optimizer left it (back edge still targeting Start;
// TracePool.Install retargets it later). baseline, when non-nil, is the
// pristine trace the edits started from: the difference between the two
// identifies the injected instructions, which are then held to the patch
// safety and prefetch sanity rules. With a nil baseline only structural
// checks run.
func CheckTrace(cur TraceView, baseline *TraceView, opt Options) []Finding {
	var fs []Finding
	for bi, b := range cur.Bundles {
		pc := cur.orig(bi)
		fs = append(fs, checkBundleAt(pc, bi, b)...)
		fs = append(fs, checkBundleDataflow(pc, bi, b, opt.Advisory)...)
	}
	fs = append(fs, checkTraceBranches(cur, opt)...)
	if baseline != nil {
		inj, diffFs := diffInjected(cur, baseline)
		fs = append(fs, diffFs...)
		fs = append(fs, checkPatchSafety(cur, inj, opt)...)
		fs = append(fs, checkPrefetchSanity(cur, inj)...)
	}
	return fs
}

// checkTraceBranches validates branch targets of a trace and, for loop
// traces, that the back edge still targets the trace entry (Install's
// retarget depends on it) and that the loop indices are in range.
func checkTraceBranches(cur TraceView, opt Options) []Finding {
	var fs []Finding
	for bi, b := range cur.Bundles {
		pc := cur.orig(bi)
		for si, in := range b.Slots {
			if !isa.IsBranch(in.Op) {
				continue
			}
			if in.Target == cur.Start && (in.Op == isa.OpBr || in.Op == isa.OpBrCond) {
				continue // back edge: retargeted into the pool at install
			}
			fs = append(fs, checkBranchTarget(pc, bi, si, in, nil, opt)...)
		}
	}
	if !cur.IsLoop {
		return fs
	}
	if cur.BackEdge < 0 || cur.BackEdge >= len(cur.Bundles) ||
		cur.LoopHead < 0 || cur.LoopHead > cur.BackEdge {
		fs = append(fs, Finding{Rule: RuleBranchTarget, Bundle: cur.BackEdge,
			Detail: fmt.Sprintf("loop indices out of range (head %d, back edge %d of %d bundles)",
				cur.LoopHead, cur.BackEdge, len(cur.Bundles))})
		return fs
	}
	found := false
	for _, in := range cur.Bundles[cur.BackEdge].Slots {
		if (in.Op == isa.OpBr || in.Op == isa.OpBrCond) && in.Target == cur.Start {
			found = true
		}
	}
	if !found {
		fs = append(fs, Finding{Rule: RuleBranchTarget, PC: cur.orig(cur.BackEdge), Bundle: cur.BackEdge,
			Detail: "loop back edge no longer targets the trace entry"})
	}
	return fs
}

// diffInjected computes which instructions of cur were added relative to
// baseline. Bundles with an original address are matched positionally by
// that address (duplicates consumed in order); patching may only fill nop
// slots of those, so any other difference is a RuleSlotReuse finding.
// Inserted bundles (Orig == 0) are compared as an instruction multiset
// against the baseline's own inserted bundles, so incremental verification
// (instrumentation added on top of earlier prefetches) attributes only the
// new instructions.
func diffInjected(cur TraceView, baseline *TraceView) (injectedSet, []Finding) {
	inj := make(injectedSet, len(cur.Bundles))
	var fs []Finding
	byAddr := make(map[uint64][]int)
	pool := make(map[isa.Inst]int)
	for i := range baseline.Bundles {
		if a := baseline.orig(i); a != 0 {
			byAddr[a] = append(byAddr[a], i)
			continue
		}
		for _, in := range baseline.Bundles[i].Slots {
			if in.Op != isa.OpNop {
				pool[in]++
			}
		}
	}
	for bi := range cur.Bundles {
		cb := cur.Bundles[bi]
		a := cur.orig(bi)
		if a == 0 {
			for si, in := range cb.Slots {
				if in.Op == isa.OpNop {
					continue
				}
				if pool[in] > 0 {
					pool[in]--
					continue
				}
				inj[bi][si] = true
			}
			continue
		}
		idxs := byAddr[a]
		if len(idxs) == 0 {
			// An original-addressed bundle the baseline never had:
			// treat its contents as injected so they face full checks.
			for si, in := range cb.Slots {
				if in.Op != isa.OpNop {
					inj[bi][si] = true
				}
			}
			continue
		}
		ob := baseline.Bundles[idxs[0]]
		byAddr[a] = idxs[1:]
		if ob.Tmpl != cb.Tmpl {
			fs = append(fs, Finding{Rule: RuleSlotReuse, PC: a, Bundle: bi,
				Detail: fmt.Sprintf("original bundle template changed %s -> %s", ob.Tmpl, cb.Tmpl)})
		}
		for si := 0; si < 3; si++ {
			if ob.Slots[si] == cb.Slots[si] {
				continue
			}
			if ob.Slots[si].Op == isa.OpNop {
				inj[bi][si] = true
				continue
			}
			fs = append(fs, Finding{Rule: RuleSlotReuse, PC: a, Bundle: bi, Slot: si,
				Detail: fmt.Sprintf("original instruction %q overwritten", ob.Slots[si])})
		}
	}
	return inj, fs
}

func (s injectedSet) at(bi, si int) bool {
	return bi < len(s) && s[bi][si]
}

// checkPrefetchSanity validates every injected lfetch. A self-advancing
// lfetch (non-zero post-increment) is paired with the injected add that
// anchors its cursor; the anchoring distance must be non-zero, agree in
// sign with the stride, and be a multiple of the stride or of the 64-byte
// L1D line the §3.3 alignment rounds integer distances to. A non-advancing
// lfetch inside a loop must have its address register recomputed each
// iteration, or it prefetches the same line forever (zero effective
// stride).
func checkPrefetchSanity(cur TraceView, inj injectedSet) []Finding {
	var fs []Finding

	// Injected cursor anchors: add rd = dist, rs with rs != rd.
	anchors := make(map[isa.Reg][]int64)
	for bi, b := range cur.Bundles {
		for si, in := range b.Slots {
			if inj.at(bi, si) && in.Op == isa.OpAddI && in.R1 != in.R3 {
				anchors[in.R1] = append(anchors[in.R1], in.Imm)
			}
		}
	}

	// Registers redefined inside the loop body by any instruction.
	var bodyDef [isa.NumGR]bool
	if cur.IsLoop && cur.LoopHead >= 0 && cur.BackEdge < len(cur.Bundles) {
		for bi := cur.LoopHead; bi <= cur.BackEdge; bi++ {
			for _, in := range cur.Bundles[bi].Slots {
				if d, ok := in.RegDef(); ok && int(d) < isa.NumGR {
					bodyDef[d] = true
				}
				if d, ok := in.PostIncDef(); ok && int(d) < isa.NumGR {
					bodyDef[d] = true
				}
			}
		}
	}

	const line = 64 // L1D line size the §3.3 alignment rounds to
	for bi, b := range cur.Bundles {
		pc := cur.orig(bi)
		for si, in := range b.Slots {
			if !inj.at(bi, si) || in.Op != isa.OpLfetch {
				continue
			}
			add := func(detail string) {
				fs = append(fs, Finding{Rule: RulePrefetchDist, PC: pc, Bundle: bi, Slot: si, Detail: detail})
			}
			if stride := in.PostInc; stride != 0 {
				dists := anchors[in.R3]
				if len(dists) == 0 {
					continue // cursor not anchored by an injected add: nothing to relate
				}
				dist := dists[0]
				switch {
				case dist == 0:
					add("zero prefetch distance")
				case (dist < 0) != (stride < 0):
					add(fmt.Sprintf("distance %d opposes stride %d", dist, stride))
				case dist%stride != 0 && dist%line != 0:
					add(fmt.Sprintf("distance %d is neither a multiple of stride %d nor line-aligned", dist, stride))
				}
			} else if cur.IsLoop && int(in.R3) < isa.NumGR && !bodyDef[in.R3] {
				add(fmt.Sprintf("lfetch address r%d never advances in the loop (zero effective stride)", in.R3))
			}
		}
	}
	return fs
}
