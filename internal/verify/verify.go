// Package verify is the static machine-code verifier for the ADORE
// reproduction: an analysis pass over bundles, program images and selected
// traces that checks the invariants the rest of the system silently relies
// on. It runs at three boundaries — after static code generation in
// internal/compiler, after runtime optimization/instrumentation in
// internal/core (behind Config.Verify), and on demand from cmd/adore-lint —
// and reports typed findings so tests can assert on specific rules.
//
// The rule families mirror the ways live-patching can go wrong:
//
//   - template legality: slot units versus Template.SlotUnits, MLX pairing,
//     branches only in B slots;
//   - register dataflow: predicate WAW inside a bundle, advisory RAW inside
//     a bundle and (via the internal/analysis reaching-definitions solver)
//     across adjacent bundles of a block — the interpreter executes slots
//     sequentially, so these are legal here but would split an issue group
//     on real hardware — and use-before-def of the runtime-reserved
//     registers on a trace;
//   - patch safety: runtime-injected code must confine its writes to the
//     reserved registers r27-r30/p6, and the internal/analysis liveness
//     solver must prove the written register dead in the original code at
//     the exact patch point (the reservation convention is checked, not
//     assumed); an injected read of a reserved register needs a definition
//     on every path to it (predicate-aware definite assignment); injected
//     memory operations are limited to lfetch, speculative loads and stores
//     through a reserved cursor; branch targets must stay mapped after
//     cloning;
//   - prefetch sanity: injected lfetch distances are non-zero, agree in
//     sign with the stride they chase, and are multiples of it (or of the
//     64-byte L1D line, which the §3.3 alignment rounds to).
package verify

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/program"
)

// Rule names one verifier check. Findings carry the rule that produced
// them so tests can assert a fixture is rejected for the expected reason.
type Rule string

const (
	// RuleTemplate: unknown template, or a slot holding an instruction
	// whose unit the template's slot typing cannot accept.
	RuleTemplate Rule = "template"
	// RuleMLX: a movl outside slot 1 of an MLX bundle, or an MLX slot 2
	// that is not the nop half of the L+X pair.
	RuleMLX Rule = "mlx-pair"
	// RuleBranchSlot: a branch instruction in a non-B slot.
	RuleBranchSlot Rule = "branch-slot"
	// RuleBranchTarget: a branch target that is unmapped, not
	// bundle-aligned, or a loop trace whose back edge no longer targets
	// the trace entry (Install could not retarget it).
	RuleBranchTarget Rule = "branch-target"
	// RulePredWAW: two predicate writes to the same register inside one
	// bundle (including a compare with P1 == P2).
	RulePredWAW Rule = "pred-waw"
	// RuleRAWGroup (advisory): a general register written and then read
	// inside the same bundle. The simulated CPU executes slots
	// sequentially, so this is legal here; on real IA-64 it would need a
	// stop bit. Reported only when Options.Advisory is set.
	RuleRAWGroup Rule = "raw-in-group"
	// RuleRAWCross (advisory): a general-register read whose reaching
	// definition (per the dataflow solver) sits in the immediately
	// preceding bundle of the same basic block — the pair could share an
	// issue group on real hardware and would need a stop bit between the
	// bundles. Reported only when Options.Advisory is set.
	RuleRAWCross Rule = "raw-cross-bundle"
	// RuleReservedUse: code compiled under register reservation touches
	// r27-r30 or p6, which belong to the runtime optimizer.
	RuleReservedUse Rule = "reserved-use"
	// RuleUseBeforeDef: injected code reads a reserved register before
	// anything defines it on the trace.
	RuleUseBeforeDef Rule = "use-before-def"
	// RuleClobber: injected code writes a register outside the reserved
	// set, or a reserved register the original trace reads before
	// defining (live-in).
	RuleClobber Rule = "clobber"
	// RuleInjectedOp: injected code contains an operation ADORE must
	// never add — a branch, a non-speculative load, or a store whose
	// base is not a reserved cursor register.
	RuleInjectedOp Rule = "injected-op"
	// RulePostInc: an injected post-increment mutates a base register
	// outside the reserved set.
	RulePostInc Rule = "postinc"
	// RulePrefetchDist: an injected lfetch with a zero distance, a
	// distance opposing the stride's sign, a distance that is neither a
	// stride multiple nor line-aligned, or a loop-invariant address
	// (zero effective stride).
	RulePrefetchDist Rule = "prefetch-dist"
	// RuleSlotReuse: patching overwrote a non-nop original instruction
	// or changed an original bundle's template.
	RuleSlotReuse Rule = "slot-reuse"
	// RuleRegRange: an instruction names a register outside the
	// architectural files (r >= 128 or p >= 64).
	RuleRegRange Rule = "reg-range"
)

// Severity splits findings into errors (invariant violations) and
// advisories (legal in this simulator but notable, like RAW inside a
// bundle).
type Severity uint8

const (
	SevError Severity = iota
	SevAdvisory
)

func (s Severity) String() string {
	if s == SevAdvisory {
		return "advisory"
	}
	return "error"
}

// Finding is one verifier diagnostic, addressed by bundle and slot. PC is
// the bundle's code address; for trace bundles inserted at runtime (no
// original address) PC is zero and Bundle still gives the trace index.
type Finding struct {
	Rule   Rule
	Sev    Severity
	PC     uint64
	Bundle int
	Slot   int
	Detail string
}

func (f Finding) String() string {
	return fmt.Sprintf("%#06x[%d.%d] %s: %s", f.PC, f.Bundle, f.Slot, f.Rule, f.Detail)
}

// Errors filters a finding list down to SevError entries.
func Errors(fs []Finding) []Finding {
	out := fs[:0:0]
	for _, f := range fs {
		if f.Sev == SevError {
			out = append(out, f)
		}
	}
	return out
}

// Options configures a verification pass.
type Options struct {
	// Advisory includes SevAdvisory findings (RAW inside a bundle).
	Advisory bool

	// ReservedRegsUnused additionally checks that the code never touches
	// the runtime-reserved registers r27-r30/p6 — set when verifying
	// output of a compiler run with register reservation enabled.
	ReservedRegsUnused bool

	// Code, when non-nil, resolves branch targets that leave the checked
	// segment or trace (trace exits back into the original binary).
	// Without it, cross-segment targets are not checked.
	Code *program.CodeSpace
}

// CheckBundle checks template legality of a single bundle at pc: a known
// template, units matching the slot typing, branches confined to B slots,
// and a well-formed MLX pair.
func CheckBundle(pc uint64, b isa.Bundle) []Finding {
	return checkBundleAt(pc, 0, b)
}

func checkBundleAt(pc uint64, bi int, b isa.Bundle) []Finding {
	var fs []Finding
	units, ok := b.Tmpl.SlotUnits()
	if !ok {
		return []Finding{{Rule: RuleTemplate, PC: pc, Bundle: bi,
			Detail: fmt.Sprintf("unknown template %s", b.Tmpl)}}
	}
	for i, in := range b.Slots {
		need := isa.UnitOf(in.Op)
		if isa.IsBranch(in.Op) && units[i] != isa.UnitB {
			fs = append(fs, Finding{Rule: RuleBranchSlot, PC: pc, Bundle: bi, Slot: i,
				Detail: fmt.Sprintf("%s in %v slot of %s bundle", in.Op, units[i], b.Tmpl)})
			continue
		}
		if need == isa.UnitLX {
			if b.Tmpl != isa.TmplMLX || i != 1 {
				fs = append(fs, Finding{Rule: RuleMLX, PC: pc, Bundle: bi, Slot: i,
					Detail: fmt.Sprintf("movl in slot %d of %s bundle", i, b.Tmpl)})
			}
			continue
		}
		if b.Tmpl == isa.TmplMLX && i == 2 {
			if in.Op != isa.OpNop {
				fs = append(fs, Finding{Rule: RuleMLX, PC: pc, Bundle: bi, Slot: i,
					Detail: fmt.Sprintf("%s in the X half of an MLX pair", in.Op)})
			}
			continue
		}
		if !isa.SlotAccepts(units[i], need) {
			fs = append(fs, Finding{Rule: RuleTemplate, PC: pc, Bundle: bi, Slot: i,
				Detail: fmt.Sprintf("%s (unit %v) in %v slot of %s bundle", in.Op, need, units[i], b.Tmpl)})
		}
		fs = append(fs, checkRegRange(pc, bi, i, in)...)
	}
	return fs
}

// checkRegRange reports registers named by in that fall outside the
// architectural register files. Only semantically-used fields are checked
// (unused operand fields of an encoding carry no meaning). The dataflow
// passes bounds-guard their index arrays independently, so a bundle
// carrying such a register yields this finding rather than a panic.
func checkRegRange(pc uint64, bi, si int, in isa.Inst) []Finding {
	if in.Op == isa.OpNop {
		return nil
	}
	var fs []Finding
	bad := func(what string) {
		fs = append(fs, Finding{Rule: RuleRegRange, PC: pc, Bundle: bi, Slot: si,
			Detail: fmt.Sprintf("%s names %s outside the register file", in.Op, what)})
	}
	regs := in.RegUses(nil)
	if d, ok := in.RegDef(); ok {
		regs = append(regs, d)
	}
	if d, ok := in.PostIncDef(); ok {
		regs = append(regs, d)
	}
	for _, r := range regs {
		if int(r) >= isa.NumGR {
			bad(fmt.Sprintf("r%d", r))
		}
	}
	if int(in.QP) >= isa.NumPR {
		bad(fmt.Sprintf("p%d", in.QP))
	}
	ps, n := predDefs(in)
	for k := 0; k < n; k++ {
		if int(ps[k]) >= isa.NumPR {
			bad(fmt.Sprintf("p%d", ps[k]))
		}
	}
	return fs
}

// predDefs returns the predicate registers written by in (compares only).
func predDefs(in isa.Inst) (ps [2]isa.PReg, n int) {
	if in.Op == isa.OpCmp || in.Op == isa.OpCmpI {
		if in.P1 != 0 {
			ps[n] = in.P1
			n++
		}
		if in.P2 != 0 {
			ps[n] = in.P2
			n++
		}
	}
	return ps, n
}

// checkBundleDataflow reports predicate WAW inside a bundle and, when
// advisory is set, general-register RAW between slots of the same bundle.
func checkBundleDataflow(pc uint64, bi int, b isa.Bundle, advisory bool) []Finding {
	var fs []Finding
	var predWritten [isa.NumPR]bool
	var grWritten [isa.NumGR]bool
	var uses []isa.Reg
	for i, in := range b.Slots {
		if in.Op == isa.OpNop {
			continue
		}
		if advisory {
			uses = in.RegUses(uses[:0])
			for _, r := range uses {
				if r != 0 && int(r) < isa.NumGR && grWritten[r] {
					fs = append(fs, Finding{Rule: RuleRAWGroup, Sev: SevAdvisory, PC: pc, Bundle: bi, Slot: i,
						Detail: fmt.Sprintf("r%d written earlier in this bundle and read by %s", r, in.Op)})
				}
			}
		}
		ps, n := predDefs(in)
		for k := 0; k < n; k++ {
			if int(ps[k]) >= isa.NumPR {
				continue // reported by checkRegRange
			}
			if predWritten[ps[k]] {
				fs = append(fs, Finding{Rule: RulePredWAW, PC: pc, Bundle: bi, Slot: i,
					Detail: fmt.Sprintf("p%d written twice in one bundle", ps[k])})
			}
			predWritten[ps[k]] = true
		}
		if in.P1 != 0 && in.P1 == in.P2 {
			fs = append(fs, Finding{Rule: RulePredWAW, PC: pc, Bundle: bi, Slot: i,
				Detail: fmt.Sprintf("compare writes p%d as both results", in.P1)})
		}
		if d, ok := in.RegDef(); ok && int(d) < isa.NumGR {
			grWritten[d] = true
		}
		if d, ok := in.PostIncDef(); ok && int(d) < isa.NumGR {
			grWritten[d] = true
		}
	}
	return fs
}

// reservedGR reports whether r is one of the runtime-reserved scratch
// registers r27-r30.
func reservedGR(r isa.Reg) bool {
	return r >= isa.ReservedGRFirst && r <= isa.ReservedGRLast
}

// checkReservedUse flags any contact with the reserved registers.
func checkReservedUse(pc uint64, bi int, b isa.Bundle) []Finding {
	var fs []Finding
	var uses []isa.Reg
	for i, in := range b.Slots {
		if in.Op == isa.OpNop {
			continue
		}
		bad := func(what string) {
			fs = append(fs, Finding{Rule: RuleReservedUse, PC: pc, Bundle: bi, Slot: i,
				Detail: fmt.Sprintf("%s touches runtime-reserved %s", in.Op, what)})
		}
		uses = in.RegUses(uses[:0])
		for _, r := range uses {
			if reservedGR(r) {
				bad(fmt.Sprintf("r%d", r))
			}
		}
		if d, ok := in.RegDef(); ok && reservedGR(d) {
			bad(fmt.Sprintf("r%d", d))
		}
		if d, ok := in.PostIncDef(); ok && reservedGR(d) {
			bad(fmt.Sprintf("r%d", d))
		}
		if in.QP == isa.ReservedPR {
			bad(fmt.Sprintf("p%d", in.QP))
		}
		ps, n := predDefs(in)
		for k := 0; k < n; k++ {
			if ps[k] == isa.ReservedPR {
				bad(fmt.Sprintf("p%d", ps[k]))
			}
		}
	}
	return fs
}

// checkBranchTarget validates one branch's target: bundle-aligned and
// mapped (inside seg, or anywhere in opt.Code when provided).
func checkBranchTarget(pc uint64, bi, si int, in isa.Inst, seg *program.Segment, opt Options) []Finding {
	switch in.Op {
	case isa.OpBr, isa.OpBrCond, isa.OpBrCall:
	default:
		return nil // br.ret and halt carry no static target
	}
	if in.Target%isa.BundleBytes != 0 {
		return []Finding{{Rule: RuleBranchTarget, PC: pc, Bundle: bi, Slot: si,
			Detail: fmt.Sprintf("target %#x not bundle-aligned", in.Target)}}
	}
	mapped := false
	switch {
	case opt.Code != nil:
		_, mapped = opt.Code.SegmentAt(in.Target)
	case seg != nil:
		mapped = seg.Contains(in.Target)
	default:
		return nil
	}
	if !mapped {
		return []Finding{{Rule: RuleBranchTarget, PC: pc, Bundle: bi, Slot: si,
			Detail: fmt.Sprintf("target %#x outside mapped code", in.Target)}}
	}
	return nil
}

// CheckSegment verifies every bundle of a code segment: template legality,
// intra-bundle dataflow, branch targets and (optionally) reserved-register
// abstinence.
func CheckSegment(seg *program.Segment, opt Options) []Finding {
	var fs []Finding
	for i, b := range seg.Bundles {
		pc := seg.Base + uint64(i)*isa.BundleBytes
		fs = append(fs, checkBundleAt(pc, i, b)...)
		fs = append(fs, checkBundleDataflow(pc, i, b, opt.Advisory)...)
		if opt.ReservedRegsUnused {
			fs = append(fs, checkReservedUse(pc, i, b)...)
		}
		for si, in := range b.Slots {
			fs = append(fs, checkBranchTarget(pc, i, si, in, seg, opt)...)
		}
	}
	if opt.Advisory {
		fs = append(fs, checkCrossBundleRAW(seg)...)
	}
	return fs
}

// CheckImage verifies a compiled program image: its code segment plus a
// mapped, aligned entry point.
func CheckImage(img *program.Image, opt Options) []Finding {
	fs := CheckSegment(img.Code, opt)
	if img.Entry%isa.BundleBytes != 0 || !img.Code.Contains(img.Entry) {
		fs = append(fs, Finding{Rule: RuleBranchTarget, PC: img.Entry,
			Detail: fmt.Sprintf("entry point %#x unmapped or misaligned", img.Entry)})
	}
	return fs
}
