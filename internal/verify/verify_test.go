package verify_test

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/verify"
	"repro/internal/workloads"
)

// rulesOf collects the distinct rules of a finding list.
func rulesOf(fs []verify.Finding) map[verify.Rule]int {
	m := make(map[verify.Rule]int)
	for _, f := range fs {
		m[f.Rule]++
	}
	return m
}

// wantExactly asserts the findings consist of at least one finding, all
// carrying the single expected rule — the "caught by exactly the expected
// rule" contract of the negative fixtures.
func wantExactly(t *testing.T, fs []verify.Finding, rule verify.Rule) {
	t.Helper()
	if len(fs) == 0 {
		t.Fatalf("no findings, want rule %q", rule)
	}
	for _, f := range fs {
		if f.Rule != rule {
			t.Fatalf("unexpected finding %v, want only rule %q (all: %v)", f, rule, fs)
		}
	}
}

// ---- template legality ----

func TestCheckBundleUnknownTemplate(t *testing.T) {
	fs := verify.CheckBundle(0x1000, isa.Bundle{Tmpl: isa.Template(250)})
	wantExactly(t, fs, verify.RuleTemplate)
}

func TestCheckBundleUnitMismatch(t *testing.T) {
	// An ld8 (M unit) in the F slot of an MFI bundle.
	b := isa.Bundle{Tmpl: isa.TmplMFI, Slots: [3]isa.Inst{
		isa.Nop, {Op: isa.OpLd8, R1: 4, R3: 5}, isa.Nop,
	}}
	wantExactly(t, verify.CheckBundle(0x1000, b), verify.RuleTemplate)
}

func TestCheckBundleMLXPairing(t *testing.T) {
	// movl outside an MLX bundle.
	b := isa.Bundle{Tmpl: isa.TmplMII, Slots: [3]isa.Inst{
		isa.Nop, {Op: isa.OpMovI, R1: 4, Imm: 1 << 40}, isa.Nop,
	}}
	wantExactly(t, verify.CheckBundle(0x1000, b), verify.RuleMLX)

	// The X half of an MLX pair holding a real instruction.
	b = isa.Bundle{Tmpl: isa.TmplMLX, Slots: [3]isa.Inst{
		isa.Nop, {Op: isa.OpMovI, R1: 4, Imm: 1}, {Op: isa.OpAddI, R1: 5, Imm: 1, R3: 5},
	}}
	wantExactly(t, verify.CheckBundle(0x1000, b), verify.RuleMLX)
}

func TestCheckBundleValidOnesAreClean(t *testing.T) {
	cases := []isa.Bundle{
		isa.NopBundle(),
		isa.BranchBundle(0x2000),
		{Tmpl: isa.TmplMLX, Slots: [3]isa.Inst{
			{Op: isa.OpLd8, R1: 4, R3: 5}, {Op: isa.OpMovI, R1: 6, Imm: 1 << 40}, isa.Nop,
		}},
		{Tmpl: isa.TmplMMI, Slots: [3]isa.Inst{
			{Op: isa.OpLd8, R1: 4, R3: 5}, {Op: isa.OpSt8, R2: 4, R3: 6}, {Op: isa.OpShl, R1: 7, R2: 4, Imm: 3},
		}},
	}
	for i, b := range cases {
		if fs := verify.CheckBundle(0x1000, b); len(fs) != 0 {
			t.Errorf("case %d: unexpected findings %v", i, fs)
		}
	}
}

// ---- intra-bundle dataflow ----

func TestPredicateWAWInBundle(t *testing.T) {
	seg := &program.Segment{Base: 0x1000, Bundles: []isa.Bundle{
		{Tmpl: isa.TmplMII, Slots: [3]isa.Inst{
			{Op: isa.OpCmpI, P1: 1, P2: 2, Imm: 0, R3: 4},
			{Op: isa.OpCmpI, P1: 1, P2: 3, Imm: 1, R3: 5}, // rewrites p1
			isa.Nop,
		}},
	}}
	wantExactly(t, verify.CheckSegment(seg, verify.Options{}), verify.RulePredWAW)

	seg.Bundles[0] = isa.Bundle{Tmpl: isa.TmplMII, Slots: [3]isa.Inst{
		{Op: isa.OpCmpI, P1: 7, P2: 7, Imm: 0, R3: 4}, isa.Nop, isa.Nop, // p1 == p2
	}}
	wantExactly(t, verify.CheckSegment(seg, verify.Options{}), verify.RulePredWAW)
}

func TestRAWInGroupIsAdvisoryOnly(t *testing.T) {
	seg := &program.Segment{Base: 0x1000, Bundles: []isa.Bundle{
		{Tmpl: isa.TmplMMI, Slots: [3]isa.Inst{
			{Op: isa.OpLd8, R1: 4, R3: 5},
			{Op: isa.OpSt8, R2: 4, R3: 6}, // reads r4 written one slot earlier
			isa.Nop,
		}},
	}}
	if fs := verify.CheckSegment(seg, verify.Options{}); len(fs) != 0 {
		t.Fatalf("RAW reported without Advisory: %v", fs)
	}
	fs := verify.CheckSegment(seg, verify.Options{Advisory: true})
	wantExactly(t, fs, verify.RuleRAWGroup)
	if fs[0].Sev != verify.SevAdvisory {
		t.Fatalf("RAW severity = %v, want advisory", fs[0].Sev)
	}
	if errs := verify.Errors(fs); len(errs) != 0 {
		t.Fatalf("Errors() kept advisory findings: %v", errs)
	}
}

// ---- branch targets and reserved registers ----

func TestSegmentBranchTargets(t *testing.T) {
	seg := &program.Segment{Base: 0x1000, Bundles: []isa.Bundle{
		isa.BranchBundle(0x9000), // outside the segment
	}}
	wantExactly(t, verify.CheckSegment(seg, verify.Options{}), verify.RuleBranchTarget)

	seg.Bundles[0] = isa.BranchBundle(0x1008) // not bundle-aligned
	wantExactly(t, verify.CheckSegment(seg, verify.Options{}), verify.RuleBranchTarget)

	seg.Bundles[0] = isa.BranchBundle(0x1000) // self-loop: fine
	if fs := verify.CheckSegment(seg, verify.Options{}); len(fs) != 0 {
		t.Fatalf("unexpected findings: %v", fs)
	}
}

func TestReservedUse(t *testing.T) {
	seg := &program.Segment{Base: 0x1000, Bundles: []isa.Bundle{
		{Tmpl: isa.TmplMII, Slots: [3]isa.Inst{
			{Op: isa.OpAddI, R1: isa.ReservedGRFirst, Imm: 1, R3: 4}, isa.Nop, isa.Nop,
		}},
	}}
	if fs := verify.CheckSegment(seg, verify.Options{}); len(fs) != 0 {
		t.Fatalf("reserved use flagged without the option: %v", fs)
	}
	wantExactly(t, verify.CheckSegment(seg, verify.Options{ReservedRegsUnused: true}), verify.RuleReservedUse)
}

// ---- trace fixtures ----

// loopView is a minimal pristine loop trace: a strided load plus counter
// decrement, then a compare-and-branch latch. r14 (address) and r10
// (counter) are live-in.
func loopView() verify.TraceView {
	return verify.TraceView{
		Start:  0x1000,
		IsLoop: true, LoopHead: 0, BackEdge: 1,
		Orig: []uint64{0x1000, 0x1010},
		Bundles: []isa.Bundle{
			{Tmpl: isa.TmplMMI, Slots: [3]isa.Inst{
				{Op: isa.OpLd8, R1: 20, R3: 14, PostInc: 8},
				isa.Nop, // free M slot
				{Op: isa.OpAddI, R1: 10, Imm: -1, R3: 10},
			}},
			{Tmpl: isa.TmplMIB, Slots: [3]isa.Inst{
				{Op: isa.OpCmpI, Rel: isa.CmpLt, P1: 1, P2: 2, Imm: 0, R3: 10},
				isa.Nop, // free I slot
				{Op: isa.OpBrCond, QP: 1, Target: 0x1000},
			}},
		},
	}
}

// withPrologue prepends one inserted bundle (no original address) holding
// up to three instructions and shifts the loop indices, mimicking
// editor.prologue.
func withPrologue(v verify.TraceView, insts ...isa.Inst) verify.TraceView {
	units := make([]isa.Unit, len(insts))
	for i, in := range insts {
		units[i] = isa.UnitOf(in.Op)
	}
	tmpl, slots, ok := isa.AssignSlots(units)
	if !ok {
		panic("withPrologue: unpackable")
	}
	var bd isa.Bundle
	bd.Tmpl = tmpl
	for i, in := range insts {
		bd.Slots[slots[i]] = in
	}
	out := v
	out.Bundles = append([]isa.Bundle{bd}, v.Bundles...)
	out.Orig = append([]uint64{0}, v.Orig...)
	out.LoopHead++
	out.BackEdge++
	return out
}

func TestTraceLegitimateDirectPrefetch(t *testing.T) {
	base := loopView()
	// Fig. 6A shape: prologue cursor init, self-advancing lfetch in the
	// free M slot of the loop body. Distance 128 = 16 × stride 8.
	cur := withPrologue(loopView(), isa.Inst{Op: isa.OpAddI, R1: 27, Imm: 128, R3: 14})
	cur.Bundles[1].Slots[1] = isa.Inst{Op: isa.OpLfetch, R3: 27, PostInc: 8}
	if fs := verify.CheckTrace(cur, &base, verify.Options{}); len(fs) != 0 {
		t.Fatalf("legitimate prefetch flagged: %v", fs)
	}
}

// Negative fixture 1: injected code clobbers a register live in the
// original trace (the loop counter r10).
func TestFixtureClobberedLiveRegister(t *testing.T) {
	base := loopView()
	cur := loopView()
	cur.Bundles[1].Slots[1] = isa.Inst{Op: isa.OpAddI, R1: 10, Imm: 8, R3: 10}
	wantExactly(t, verify.CheckTrace(cur, &base, verify.Options{}), verify.RuleClobber)
}

// Negative fixture 2: a branch sitting in an M slot.
func TestFixtureBranchInMSlot(t *testing.T) {
	b := isa.Bundle{Tmpl: isa.TmplMMI, Slots: [3]isa.Inst{
		{Op: isa.OpBr, Target: 0x1000}, isa.Nop, isa.Nop,
	}}
	wantExactly(t, verify.CheckBundle(0x1000, b), verify.RuleBranchSlot)

	// The same bundle inside a (non-loop) trace is caught identically.
	cur := verify.TraceView{Start: 0x1000, Orig: []uint64{0x1000}, Bundles: []isa.Bundle{b}}
	wantExactly(t, verify.CheckTrace(cur, nil, verify.Options{}), verify.RuleBranchSlot)
}

// Negative fixture 3: an injected lfetch whose address never advances in
// the loop — a zero effective stride prefetching the same line forever.
func TestFixtureZeroStrideLfetch(t *testing.T) {
	base := loopView()
	cur := withPrologue(loopView(), isa.Inst{Op: isa.OpAddI, R1: 27, Imm: 128, R3: 14})
	cur.Bundles[1].Slots[1] = isa.Inst{Op: isa.OpLfetch, R3: 27} // no post-increment
	wantExactly(t, verify.CheckTrace(cur, &base, verify.Options{}), verify.RulePrefetchDist)
}

func TestTraceSlotReuse(t *testing.T) {
	base := loopView()
	cur := loopView()
	// Overwrite the original counter decrement with a prefetch.
	cur.Bundles[0].Slots[2] = isa.Inst{Op: isa.OpAddI, R1: 27, Imm: 64, R3: 14}
	fs := verify.CheckTrace(cur, &base, verify.Options{})
	if rulesOf(fs)[verify.RuleSlotReuse] == 0 {
		t.Fatalf("overwritten original instruction not flagged: %v", fs)
	}
}

func TestTraceUseBeforeDef(t *testing.T) {
	base := loopView()
	cur := loopView()
	// lfetch through r28 which nothing ever defines.
	cur.Bundles[0].Slots[1] = isa.Inst{Op: isa.OpLfetch, R3: 28, PostInc: 8}
	fs := verify.CheckTrace(cur, &base, verify.Options{})
	if rulesOf(fs)[verify.RuleUseBeforeDef] == 0 {
		t.Fatalf("use of undefined reserved register not flagged: %v", fs)
	}
}

func TestTraceInjectedOpRules(t *testing.T) {
	mk := func(in isa.Inst) []verify.Finding {
		base := loopView()
		cur := loopView()
		cur.Bundles[0].Slots[1] = in
		return verify.CheckTrace(cur, &base, verify.Options{})
	}
	// A non-speculative injected load can fault on a garbage address.
	fs := mk(isa.Inst{Op: isa.OpLd8, R1: 27, R3: 14})
	if rulesOf(fs)[verify.RuleInjectedOp] == 0 {
		t.Fatalf("non-speculative injected load not flagged: %v", fs)
	}
	// The speculative form is allowed.
	if fs := mk(isa.Inst{Op: isa.OpLdS, R1: 27, R3: 14}); len(fs) != 0 {
		t.Fatalf("ld.s flagged: %v", fs)
	}
	// A store through a non-reserved base writes program memory.
	fs = mk(isa.Inst{Op: isa.OpSt8, R2: 20, R3: 14})
	if rulesOf(fs)[verify.RuleInjectedOp] == 0 {
		t.Fatalf("injected store through program register not flagged: %v", fs)
	}
	// A post-increment on a non-reserved base mutates program state.
	fs = mk(isa.Inst{Op: isa.OpLfetch, R3: 14, PostInc: 8})
	if rulesOf(fs)[verify.RulePostInc] == 0 {
		t.Fatalf("post-increment side effect not flagged: %v", fs)
	}
}

func TestTraceInjectedBranch(t *testing.T) {
	base := loopView()
	cur := loopView()
	cur.Bundles[1].Slots[1] = isa.Inst{Op: isa.OpShl, R1: 27, R2: 27, Imm: 1} // benign filler
	cur.Bundles[1].Slots[1] = isa.Inst{Op: isa.OpBrCond, QP: 1, Target: 0x1000}
	fs := verify.CheckTrace(cur, &base, verify.Options{})
	found := rulesOf(fs)
	if found[verify.RuleInjectedOp] == 0 && found[verify.RuleBranchSlot] == 0 {
		t.Fatalf("injected branch not flagged: %v", fs)
	}
}

func TestTracePrefetchDistanceRules(t *testing.T) {
	mk := func(dist, stride int64) []verify.Finding {
		base := loopView()
		cur := withPrologue(loopView(), isa.Inst{Op: isa.OpAddI, R1: 27, Imm: dist, R3: 14})
		cur.Bundles[1].Slots[1] = isa.Inst{Op: isa.OpLfetch, R3: 27, PostInc: stride}
		return verify.CheckTrace(cur, &base, verify.Options{})
	}
	if fs := mk(0, 8); rulesOf(fs)[verify.RulePrefetchDist] == 0 {
		t.Errorf("zero distance not flagged: %v", fs)
	}
	if fs := mk(-128, 8); rulesOf(fs)[verify.RulePrefetchDist] == 0 {
		t.Errorf("sign mismatch not flagged: %v", fs)
	}
	if fs := mk(36, 24); rulesOf(fs)[verify.RulePrefetchDist] == 0 {
		t.Errorf("non-multiple distance not flagged: %v", fs)
	}
	if fs := mk(48, 24); len(fs) != 0 {
		t.Errorf("stride multiple flagged: %v", fs)
	}
	if fs := mk(128, 24); len(fs) != 0 {
		t.Errorf("line-aligned distance flagged: %v", fs) // §3.3 alignment
	}
	if fs := mk(-64, -8); len(fs) != 0 {
		t.Errorf("negative-stride prefetch flagged: %v", fs)
	}
}

func TestTraceBackEdgeIntegrity(t *testing.T) {
	cur := loopView()
	cur.Bundles[1].Slots[2].Target = 0x5000 // back edge no longer targets Start
	fs := verify.CheckTrace(cur, nil, verify.Options{})
	if rulesOf(fs)[verify.RuleBranchTarget] == 0 {
		t.Fatalf("broken back edge not flagged: %v", fs)
	}

	cur = loopView()
	cur.BackEdge = 7 // out of range
	fs = verify.CheckTrace(cur, nil, verify.Options{})
	if rulesOf(fs)[verify.RuleBranchTarget] == 0 {
		t.Fatalf("out-of-range loop indices not flagged: %v", fs)
	}
}

// Negative fixture 4 (liveness-only): the injected write lands *between*
// the original definition of r27 and its original use, so r27 is live at
// the exact patch point. The old linear scan concluded "defined before
// read, hence dead" from bundle order alone and accepted this corruption;
// per-point liveness over the CFG rejects it.
func TestFixturePerPointLiveClobber(t *testing.T) {
	mkView := func() verify.TraceView {
		return verify.TraceView{
			Start:  0x1000,
			IsLoop: true, LoopHead: 0, BackEdge: 2,
			Orig: []uint64{0x1000, 0x1010, 0x1020},
			Bundles: []isa.Bundle{
				{Tmpl: isa.TmplMMI, Slots: [3]isa.Inst{
					{Op: isa.OpAddI, R1: 27, Imm: 0, R3: 14}, // r27 = r14 (no-reserve build)
					isa.Nop, // free M slot between def and use
					{Op: isa.OpAddI, R1: 10, Imm: -1, R3: 10},
				}},
				{Tmpl: isa.TmplMMI, Slots: [3]isa.Inst{
					{Op: isa.OpLd8, R1: 20, R3: 27}, // ...then loads through r27
					isa.Nop, isa.Nop,
				}},
				{Tmpl: isa.TmplMIB, Slots: [3]isa.Inst{
					{Op: isa.OpCmpI, Rel: isa.CmpLt, P1: 1, P2: 2, Imm: 0, R3: 10},
					isa.Nop,
					{Op: isa.OpBrCond, QP: 1, Target: 0x1000},
				}},
			},
		}
	}
	base := mkView()
	cur := mkView()
	// Re-anchoring r27 here silently moves the original load's address.
	cur.Bundles[0].Slots[1] = isa.Inst{Op: isa.OpAddI, R1: 27, Imm: 64, R3: 14}
	wantExactly(t, verify.CheckTrace(cur, &base, verify.Options{}), verify.RuleClobber)
}

// Negative fixture 5 (definite-assignment-only): the cursor init is
// predicated on p1 but the lfetch that reads the cursor is unpredicated,
// so on the p1-false path it prefetches through a register nothing
// assigned. The old scan treated any textually-earlier definition as
// covering, predicate or not, and accepted it.
func TestFixturePredicatedDefUseBeforeDef(t *testing.T) {
	base := loopView()
	cur := withPrologue(loopView(), isa.Inst{Op: isa.OpAddI, QP: 1, R1: 27, Imm: 128, R3: 14})
	cur.Bundles[1].Slots[1] = isa.Inst{Op: isa.OpLfetch, R3: 27, PostInc: 8}
	wantExactly(t, verify.CheckTrace(cur, &base, verify.Options{}), verify.RuleUseBeforeDef)
}

// Cross-bundle RAW is invisible to the per-bundle scan; the
// reaching-definitions solver reports it (advisory, adjacent bundles of
// one block only).
func TestRAWCrossBundleAdvisory(t *testing.T) {
	seg := &program.Segment{Base: 0x1000, Bundles: []isa.Bundle{
		{Tmpl: isa.TmplMMI, Slots: [3]isa.Inst{{Op: isa.OpLd8, R1: 4, R3: 5}, isa.Nop, isa.Nop}},
		{Tmpl: isa.TmplMMI, Slots: [3]isa.Inst{{Op: isa.OpSt8, R2: 4, R3: 6}, isa.Nop, isa.Nop}},
	}}
	if fs := verify.CheckSegment(seg, verify.Options{}); len(fs) != 0 {
		t.Fatalf("cross-bundle RAW reported without Advisory: %v", fs)
	}
	fs := verify.CheckSegment(seg, verify.Options{Advisory: true})
	wantExactly(t, fs, verify.RuleRAWCross)
	if fs[0].Sev != verify.SevAdvisory {
		t.Fatalf("severity = %v, want advisory", fs[0].Sev)
	}

	// With a full bundle in between the pair no longer shares an issue
	// group; the rule must stay quiet.
	seg.Bundles = []isa.Bundle{seg.Bundles[0], isa.NopBundle(), seg.Bundles[1]}
	if fs := verify.CheckSegment(seg, verify.Options{Advisory: true}); len(fs) != 0 {
		t.Fatalf("non-adjacent RAW flagged: %v", fs)
	}
}

// ---- acceptance: every compiled workload verifies clean ----

func TestAllWorkloadImagesVerifyClean(t *testing.T) {
	for _, bench := range workloads.All(0.05) {
		for _, lv := range []compiler.OptLevel{compiler.O2, compiler.O3} {
			opts := compiler.DefaultOptions()
			opts.Level = lv
			build, err := compiler.Build(bench.Kernel, opts)
			if err != nil {
				t.Fatalf("%s/%s: build: %v", bench.Name, lv, err)
			}
			fs := verify.CheckImage(build.Image, verify.Options{ReservedRegsUnused: true})
			if len(fs) != 0 {
				t.Errorf("%s/%s: %d finding(s), first: %v", bench.Name, lv, len(fs), fs[0])
			}
		}
	}
}

// Without register reservation (the Fig. 10 "no reserved registers"
// configuration) the allocator may hand out r27-r30 — that build must
// still verify clean with the reservation check off.
func TestNoReserveImagesVerifyClean(t *testing.T) {
	bench, err := workloads.ByName("mcf", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	opts := compiler.DefaultOptions()
	opts.ReserveRegs = false
	build, err := compiler.Build(bench.Kernel, opts)
	if err != nil {
		t.Fatal(err)
	}
	if fs := verify.CheckImage(build.Image, verify.Options{}); len(fs) != 0 {
		t.Fatalf("findings: %v", fs)
	}
}
