package verify

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/isa"
	"repro/internal/program"
)

// This file is the dataflow-backed half of the verifier. The original
// patch-safety check was a pair of linear scans encoding the reserved-
// register convention (r27-r30/p6 are dead, so injected code may use them);
// it is now a theorem the analysis engine proves per patch point:
//
//   - an injected write is legal iff its target is dead in the *original*
//     program at that exact point — per-point liveness over the trace CFG,
//     with exit boundaries refined through Options.Code into the liveness
//     of the branched-to segment code;
//   - an injected read of a reserved register is legal iff a definition
//     reaches it on every path (a definite-assignment must-analysis that
//     understands qualifying predicates), not merely somewhere earlier in
//     the bundle list.

// reservedVars lists the dataflow variables of the runtime-reserved
// registers r27-r30 and p6.
func reservedVars() []analysis.Var {
	var vars []analysis.Var
	for r := isa.ReservedGRFirst; r <= isa.ReservedGRLast; r++ {
		if v, ok := analysis.GRVar(r); ok {
			vars = append(vars, v)
		}
	}
	if v, ok := analysis.PRVar(isa.ReservedPR); ok {
		vars = append(vars, v)
	}
	return vars
}

// conventionalBoundary is the liveness assumed at an exit whose
// continuation cannot be analyzed: every register may be read downstream
// except the runtime-reserved set, which the reservation convention keeps
// dead in compiled code.
func conventionalBoundary() analysis.VarSet {
	s := analysis.AllVars()
	for _, v := range reservedVars() {
		s.Remove(v)
	}
	return s
}

// traceCFG builds the CFG of a trace as the optimizer left it: the back
// edge still targets Start (resolved to the loop head bundle, exactly what
// TracePool.Install retargets it to), every other branch leaves the trace,
// and falling off the last bundle continues after its original address —
// where Install's appended exit bundle branches.
func traceCFG(cur TraceView) *analysis.CFG {
	head := 0
	if cur.IsLoop {
		head = cur.LoopHead
	}
	var fallOff uint64
	if n := len(cur.Bundles); n > 0 {
		if a := cur.orig(n - 1); a != 0 {
			fallOff = a + isa.BundleBytes
		}
	}
	return analysis.Build(analysis.Input{
		Bundles: cur.Bundles,
		PCOf:    cur.orig,
		Resolve: func(target uint64) (int, bool) {
			if target == cur.Start {
				return head, true
			}
			return 0, false
		},
		FallOff: fallOff,
	})
}

// exitBoundary builds the per-exit live-out oracle for a trace: when the
// exit target is mapped code (Options.Code), the boundary is the actual
// liveness of the target segment at that address; otherwise the
// conventional all-but-reserved set. Segment liveness solves are cached
// across the exits of one trace.
func exitBoundary(opt Options, conv analysis.VarSet) func(analysis.ExitEdge) analysis.VarSet {
	segLive := map[*program.Segment]*analysis.Liveness{}
	edge := map[analysis.ExitEdge]analysis.VarSet{}
	return func(e analysis.ExitEdge) analysis.VarSet {
		if got, ok := edge[e]; ok {
			return got
		}
		out := conv
		if e.Known && opt.Code != nil && e.Target%isa.BundleBytes == 0 {
			if seg, ok := opt.Code.SegmentAt(e.Target); ok {
				lv := segLive[seg]
				if lv == nil {
					sc := analysis.Build(analysis.SegmentInput(seg))
					lv = sc.Liveness(analysis.LiveOpts{
						Boundary: func(analysis.ExitEdge) analysis.VarSet { return conv },
					})
					segLive[seg] = lv
				}
				pos := int((e.Target-seg.Base)/isa.BundleBytes) * analysis.SlotsPerBundle
				out = lv.LiveBefore(pos)
			}
		}
		edge[e] = out
		return out
	}
}

// checkPatchSafety holds every injected instruction to the patch rules:
// no injected branches, only speculative/non-faulting memory operations,
// stores and post-increments confined to reserved cursors, writes only to
// registers the liveness analysis proves dead in the original code at the
// patch point, and no read of a reserved register without a definition on
// every path to it.
func checkPatchSafety(cur TraceView, inj injectedSet, opt Options) []Finding {
	if len(cur.Bundles) == 0 {
		return nil
	}
	if cur.IsLoop && (cur.BackEdge < 0 || cur.BackEdge >= len(cur.Bundles) ||
		cur.LoopHead < 0 || cur.LoopHead > cur.BackEdge) {
		return nil // structural findings already reported by checkTraceBranches
	}
	c := traceCFG(cur)
	conv := conventionalBoundary()

	// Liveness of the ORIGINAL instructions only: injected positions are
	// transparent, so LiveBefore(pos) at an injected slot is exactly the
	// original program's liveness at the patch point.
	lvOrig := c.Liveness(analysis.LiveOpts{
		Include:  func(pos int) bool { return !inj.at(pos/analysis.SlotsPerBundle, pos%analysis.SlotsPerBundle) },
		Boundary: exitBoundary(opt, conv),
	})

	// Definite assignment of the reserved registers over ALL instructions
	// (original and injected): answers whether a reserved read is
	// dominated by a write, predicate-aware.
	da := c.DefiniteAssign(reservedVars())

	// Reserved registers the original code reads before defining are
	// live-in program state (a build without register reservation): reads
	// observe the program's own value and are legal, while writes will be
	// caught by the liveness clobber rule.
	extern := lvOrig.In[0]

	var fs []Finding
	var uses []isa.Reg
	for bi, b := range cur.Bundles {
		pc := cur.orig(bi)
		for si, in := range b.Slots {
			if in.Op == isa.OpNop || !inj.at(bi, si) {
				continue
			}
			pos := bi*analysis.SlotsPerBundle + si
			add := func(rule Rule, detail string) {
				fs = append(fs, Finding{Rule: rule, PC: pc, Bundle: bi, Slot: si, Detail: detail})
			}
			if isa.IsBranch(in.Op) {
				add(RuleInjectedOp, fmt.Sprintf("injected %s: runtime patching must not add branches", in.Op))
			}
			if isa.IsLoad(in.Op) && in.Op != isa.OpLdS && !in.Spec {
				add(RuleInjectedOp, fmt.Sprintf("injected %s is not speculative/non-faulting", in.Op))
			}
			if isa.IsStore(in.Op) && !reservedGR(in.R3) {
				add(RuleInjectedOp, fmt.Sprintf("injected %s through non-reserved base r%d", in.Op, in.R3))
			}

			live := lvOrig.LiveBefore(pos)
			liveAt := func(v analysis.Var, ok bool) bool { return ok && live.Has(v) }
			if d, ok := in.RegDef(); ok {
				switch {
				case !reservedGR(d):
					add(RuleClobber, fmt.Sprintf("injected %s writes non-reserved r%d", in.Op, d))
				case liveAt(analysis.GRVar(d)):
					add(RuleClobber, fmt.Sprintf("injected %s writes r%d, live in the original trace", in.Op, d))
				}
			}
			if d, ok := in.PostIncDef(); ok {
				switch {
				case !reservedGR(d):
					add(RulePostInc, fmt.Sprintf("injected post-increment mutates non-reserved r%d", d))
				case liveAt(analysis.GRVar(d)):
					add(RuleClobber, fmt.Sprintf("injected post-increment writes r%d, live in the original trace", d))
				}
			}
			if f, ok := in.FRegDef(); ok {
				add(RuleClobber, fmt.Sprintf("injected %s writes floating register f%d", in.Op, f))
			}
			ps, n := predDefs(in)
			for k := 0; k < n; k++ {
				switch {
				case ps[k] != isa.ReservedPR:
					add(RuleClobber, fmt.Sprintf("injected compare writes non-reserved p%d", ps[k]))
				case liveAt(analysis.PRVar(ps[k])):
					add(RuleClobber, fmt.Sprintf("injected compare writes p%d, live in the original trace", ps[k]))
				}
			}

			assigned := func(v analysis.Var) bool {
				if extern.Has(v) {
					return true
				}
				st := da.At(pos, v)
				if st.State == analysis.Assigned {
					return true
				}
				return st.State == analysis.AssignedIf && in.QP == st.Pred
			}
			uses = in.RegUses(uses[:0])
			for _, r := range uses {
				if !reservedGR(r) {
					continue
				}
				if v, ok := analysis.GRVar(r); ok && !assigned(v) {
					add(RuleUseBeforeDef, fmt.Sprintf("injected %s reads r%d before any definition", in.Op, r))
				}
			}
			if in.QP == isa.ReservedPR {
				if v, ok := analysis.PRVar(in.QP); ok && !assigned(v) {
					add(RuleUseBeforeDef, fmt.Sprintf("injected %s predicated on p%d before any definition", in.Op, in.QP))
				}
			}
		}
	}
	return fs
}

// checkCrossBundleRAW reports advisory cross-bundle RAW hazards: a read
// whose reaching definition sits in the immediately preceding bundle of
// the same basic block. The simulated CPU executes slots in order so this
// is legal here, but on real hardware the pair could share an issue group
// and would need a stop bit between the bundles. The old advisory rule
// only saw RAW inside a single bundle; the reaching-definitions solver
// sees across them.
func checkCrossBundleRAW(seg *program.Segment) []Finding {
	c := analysis.Build(analysis.SegmentInput(seg))
	rd := c.ReachingDefs()
	var fs []Finding
	var uses []isa.Reg
	for pos := 0; pos < c.NumSlots(); pos++ {
		in := c.Inst(pos)
		if in.Op == isa.OpNop {
			continue
		}
		bi := pos / analysis.SlotsPerBundle
		if bi == 0 {
			continue
		}
		blk := c.BlockOf(pos)
		seen := map[isa.Reg]bool{}
		uses = in.RegUses(uses[:0])
		for _, r := range uses {
			v, ok := analysis.GRVar(r)
			if !ok || seen[r] {
				continue
			}
			seen[r] = true
			for _, si := range rd.ReachingBefore(pos, v) {
				s := rd.Sites[si]
				if s.Pos/analysis.SlotsPerBundle == bi-1 && c.BlockOf(s.Pos) == blk {
					fs = append(fs, Finding{Rule: RuleRAWCross, Sev: SevAdvisory,
						PC: c.BundlePC(bi), Bundle: bi, Slot: pos % analysis.SlotsPerBundle,
						Detail: fmt.Sprintf("r%d written in the previous bundle reaches this %s (issue-group split on real hardware)", r, in.Op)})
					break
				}
			}
		}
	}
	return fs
}
