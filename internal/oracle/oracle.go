// Package oracle is the reference interpreter of the internal/isa
// instruction set: architectural state only — general, floating, predicate
// and branch registers plus flat data memory. No pipeline, no ports, no
// scoreboard, no caches, no PMU, no cycle counting.
//
// Its single job is to be obviously correct, so that internal/cpu — whose
// interleaved issue model, stall accounting, and runtime patching make it
// easy to break silently — can be checked against it mechanically: run the
// same image through both, then compare isa.ArchState snapshots and final
// memories bit for bit (internal/harness/differential.go). Every semantic
// choice here deliberately mirrors cpu.execute: predicated-off instructions
// retire with no effect and no post-increment, loads write the target before
// the base-register update, stores read their source before it, writes to
// r0/f0/f1/p0 are discarded, and floating-point expressions use the exact
// shape of the cpu package so both compile to identical operation orders.
package oracle

import (
	"fmt"
	"math"

	"repro/internal/isa"
	"repro/internal/memsys"
	"repro/internal/program"
)

// Stats counts what the oracle executed. The fields are the subset of
// cpu.Stats that is architecturally determined — equal counts are part of
// the differential contract, unlike cycles or stalls which are timing.
type Stats struct {
	Retired    uint64
	Loads      uint64
	Stores     uint64
	Prefetches uint64
	Branches   uint64 // redirecting (taken) branches, as in cpu.Stats
}

// Machine is one oracle instance: register files, code, and data memory.
type Machine struct {
	GR [isa.NumGR]uint64
	FR [isa.NumFR]float64
	PR [isa.NumPR]bool
	BR [isa.NumBR]uint64

	Code *program.CodeSpace
	Mem  *memsys.Memory

	pc     uint64
	halted bool

	Stats Stats
}

// New wires an oracle to a code space and memory.
func New(code *program.CodeSpace, mem *memsys.Memory) *Machine {
	m := &Machine{Code: code, Mem: mem}
	m.FR[1] = 1.0
	return m
}

// FromImage builds a ready-to-run oracle for one program image: a private
// copy of the code segment (the caller may be patching its own copy), a
// fresh memory initialized by the image, and the PC at the entry point.
func FromImage(img *program.Image) (*Machine, error) {
	code := program.NewCodeSpace()
	seg := &program.Segment{
		Name:    img.Code.Name,
		Base:    img.Code.Base,
		Bundles: append([]isa.Bundle{}, img.Code.Bundles...),
	}
	if err := code.AddSegment(seg); err != nil {
		return nil, err
	}
	mem := memsys.NewMemory()
	if img.InitData != nil {
		img.InitData(mem)
	}
	m := New(code, mem)
	m.SetPC(img.Entry)
	return m, nil
}

// SetPC sets the next fetch address.
func (m *Machine) SetPC(pc uint64) { m.pc = pc }

// PC returns the current fetch address.
func (m *Machine) PC() uint64 { return m.pc }

// Halted reports whether the program has executed halt (or returned from
// its outermost frame).
func (m *Machine) Halted() bool { return m.halted }

// ArchState snapshots the architectural register state.
func (m *Machine) ArchState() isa.ArchState {
	return isa.ArchState{PC: m.pc, GR: m.GR, FR: m.FR, PR: m.PR, BR: m.BR}
}

// Run executes until halt or until maxInstructions retire (0 = unlimited).
func (m *Machine) Run(maxInstructions uint64) (Stats, error) {
	for !m.halted {
		if maxInstructions > 0 && m.Stats.Retired >= maxInstructions {
			break
		}
		if err := m.Step(); err != nil {
			return m.Stats, err
		}
	}
	return m.Stats, nil
}

// Step fetches and executes one bundle (or the tail of one, after a branch
// into a mid-bundle slot).
func (m *Machine) Step() error {
	bundleAddr := m.pc &^ uint64(isa.BundleBytes-1)
	slot := int(m.pc & uint64(isa.BundleBytes-1))
	if slot > 2 {
		return fmt.Errorf("oracle: bad slot in pc %#x", m.pc)
	}
	b, ok := m.Code.Fetch(bundleAddr)
	if !ok {
		return fmt.Errorf("oracle: fetch from unmapped address %#x", bundleAddr)
	}
	for s := slot; s < 3; s++ {
		redirect, err := m.execute(bundleAddr+uint64(s), &b.Slots[s])
		if err != nil {
			return err
		}
		if m.halted || redirect {
			return nil
		}
	}
	m.pc = bundleAddr + isa.BundleBytes
	return nil
}

func (m *Machine) writeGR(r isa.Reg, v uint64) {
	if r == 0 {
		return
	}
	m.GR[r] = v
}

func (m *Machine) writeFR(r isa.FReg, v float64) {
	if r <= 1 {
		return
	}
	m.FR[r] = v
}

func (m *Machine) postInc(in *isa.Inst) {
	if in.PostInc != 0 && in.R3 != 0 {
		m.GR[in.R3] += uint64(in.PostInc)
	}
}

func (m *Machine) setPred(p isa.PReg, v bool) {
	if p != 0 {
		m.PR[p] = v
	}
}

// execute runs one instruction at pc, returning whether control was
// redirected.
func (m *Machine) execute(pc uint64, in *isa.Inst) (bool, error) {
	if in.Op == isa.OpBrCond {
		// Conditional branches retire whether or not they are taken.
		m.Stats.Retired++
		taken := in.QP == 0 || m.PR[in.QP]
		if taken {
			m.Stats.Branches++
			m.pc = in.Target
			return true, nil
		}
		return false, nil
	}
	// Any other predicated-off instruction occupies its slot and retires
	// with no effect — in particular, no post-increment.
	if in.QP != 0 && !m.PR[in.QP] {
		m.Stats.Retired++
		return false, nil
	}

	switch in.Op {
	case isa.OpNop, isa.OpAlloc:
		// no effect

	case isa.OpAdd:
		m.writeGR(in.R1, m.GR[in.R2]+m.GR[in.R3])
	case isa.OpSub:
		m.writeGR(in.R1, m.GR[in.R2]-m.GR[in.R3])
	case isa.OpAddI:
		m.writeGR(in.R1, uint64(in.Imm)+m.GR[in.R3])
	case isa.OpAnd:
		m.writeGR(in.R1, m.GR[in.R2]&m.GR[in.R3])
	case isa.OpOr:
		m.writeGR(in.R1, m.GR[in.R2]|m.GR[in.R3])
	case isa.OpXor:
		m.writeGR(in.R1, m.GR[in.R2]^m.GR[in.R3])
	case isa.OpShlAdd:
		m.writeGR(in.R1, m.GR[in.R2]<<uint(in.Imm)+m.GR[in.R3])
	case isa.OpMov:
		m.writeGR(in.R1, m.GR[in.R3])
	case isa.OpMovI:
		m.writeGR(in.R1, uint64(in.Imm))
	case isa.OpShl:
		m.writeGR(in.R1, m.GR[in.R2]<<uint(in.Imm))
	case isa.OpShr:
		m.writeGR(in.R1, m.GR[in.R2]>>uint(in.Imm))
	case isa.OpSxt4:
		m.writeGR(in.R1, uint64(int64(int32(uint32(m.GR[in.R3])))))
	case isa.OpZxt4:
		m.writeGR(in.R1, uint64(uint32(m.GR[in.R3])))

	case isa.OpCmp:
		v := isa.Compare(in.Rel, m.GR[in.R2], m.GR[in.R3])
		m.setPred(in.P1, v)
		m.setPred(in.P2, !v)
	case isa.OpCmpI:
		v := isa.Compare(in.Rel, uint64(in.Imm), m.GR[in.R3])
		m.setPred(in.P1, v)
		m.setPred(in.P2, !v)

	case isa.OpLd1, isa.OpLd2, isa.OpLd4, isa.OpLd8, isa.OpLdS:
		v := m.Mem.ReadN(m.GR[in.R3], isa.AccessBytes(in.Op))
		m.writeGR(in.R1, v)
		m.postInc(in)
		m.Stats.Loads++

	case isa.OpLdF:
		v := m.Mem.ReadFloat(m.GR[in.R3])
		m.writeFR(in.F1, v)
		m.postInc(in)
		m.Stats.Loads++

	case isa.OpSt1, isa.OpSt2, isa.OpSt4, isa.OpSt8:
		m.Mem.WriteN(m.GR[in.R3], isa.AccessBytes(in.Op), m.GR[in.R2])
		m.postInc(in)
		m.Stats.Stores++

	case isa.OpStF:
		m.Mem.WriteFloat(m.GR[in.R3], m.FR[in.F1])
		m.postInc(in)
		m.Stats.Stores++

	case isa.OpLfetch:
		// Architecturally a no-op apart from the base-register update.
		m.postInc(in)
		m.Stats.Prefetches++

	case isa.OpFma:
		m.writeFR(in.F1, m.FR[in.F2]*m.FR[in.F3]+m.FR[in.F4])
	case isa.OpFAdd:
		m.writeFR(in.F1, m.FR[in.F2]+m.FR[in.F3])
	case isa.OpFMul:
		m.writeFR(in.F1, m.FR[in.F2]*m.FR[in.F3])
	case isa.OpFSub:
		m.writeFR(in.F1, m.FR[in.F2]-m.FR[in.F3])
	case isa.OpFNeg:
		m.writeFR(in.F1, -m.FR[in.F2])

	case isa.OpGetF:
		m.writeGR(in.R1, math.Float64bits(m.FR[in.F2]))
	case isa.OpSetF:
		m.writeFR(in.F1, math.Float64frombits(m.GR[in.R2]))
	case isa.OpFCvtFX:
		m.writeGR(in.R1, uint64(int64(m.FR[in.F2])))
	case isa.OpFCvtXF:
		m.writeFR(in.F1, float64(int64(m.GR[in.R2])))

	case isa.OpBr:
		m.Stats.Retired++
		m.Stats.Branches++
		m.pc = in.Target
		return true, nil
	case isa.OpBrCall:
		m.BR[in.B] = (pc &^ uint64(isa.BundleBytes-1)) + isa.BundleBytes
		m.Stats.Retired++
		m.Stats.Branches++
		m.pc = in.Target
		return true, nil
	case isa.OpBrRet:
		target := m.BR[in.B]
		m.Stats.Retired++
		if target == 0 {
			m.halted = true
			return true, nil
		}
		m.Stats.Branches++
		m.pc = target
		return true, nil
	case isa.OpHalt:
		m.Stats.Retired++
		m.halted = true
		return true, nil

	default:
		return false, fmt.Errorf("oracle: unimplemented op %s at %#x", in.Op, pc)
	}

	m.Stats.Retired++
	return false, nil
}
