package oracle

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/memsys"
	"repro/internal/program"
)

// assemble builds an image from an asm program rooted at 0x1000.
func assemble(t *testing.T, emit func(b *asm.Builder)) *program.Image {
	t.Helper()
	b := asm.New(0x1000)
	emit(b)
	res, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	seg := &program.Segment{Name: "text", Base: res.Base, Bundles: res.Bundles}
	return program.NewImage("test", seg, res.Base)
}

// runBoth executes img on the oracle and on the pipelined CPU (no hierarchy,
// no PMU) and returns both machines after halt.
func runBoth(t *testing.T, img *program.Image) (*Machine, *cpu.CPU) {
	t.Helper()
	o, err := FromImage(img)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Run(1_000_000); err != nil {
		t.Fatalf("oracle: %v", err)
	}
	if !o.Halted() {
		t.Fatal("oracle did not halt")
	}

	code := program.NewCodeSpace()
	seg := &program.Segment{
		Name:    img.Code.Name,
		Base:    img.Code.Base,
		Bundles: append([]isa.Bundle{}, img.Code.Bundles...),
	}
	if err := code.AddSegment(seg); err != nil {
		t.Fatal(err)
	}
	mem := memsys.NewMemory()
	if img.InitData != nil {
		img.InitData(mem)
	}
	c := cpu.New(cpu.DefaultConfig(), code, mem, nil, nil)
	c.SetPC(img.Entry)
	if _, err := c.Run(1_000_000); err != nil {
		t.Fatalf("cpu: %v", err)
	}
	if !c.Halted() {
		t.Fatal("cpu did not halt")
	}
	return o, c
}

// checkAgree asserts bit-identical architectural state, memory, and
// architectural counters between the oracle and the CPU.
func checkAgree(t *testing.T, o *Machine, c *cpu.CPU) {
	t.Helper()
	oa, ca := o.ArchState(), c.ArchState()
	for _, d := range oa.Diff(&ca, isa.StateCompare{}) {
		t.Errorf("state diff (oracle vs cpu): %s", d)
	}
	if addr, ov, cv, diff := memsys.FirstDiff(o.Mem, c.Mem); diff {
		t.Errorf("memory diff at %#x: oracle %#x vs cpu %#x", addr, ov, cv)
	}
	cs := c.Stats
	if o.Stats.Retired != cs.Retired || o.Stats.Loads != cs.Loads ||
		o.Stats.Stores != cs.Stores || o.Stats.Prefetches != cs.Prefetches ||
		o.Stats.Branches != cs.Branches {
		t.Errorf("counter diff: oracle %+v vs cpu {Retired:%d Loads:%d Stores:%d Prefetches:%d Branches:%d}",
			o.Stats, cs.Retired, cs.Loads, cs.Stores, cs.Prefetches, cs.Branches)
	}
}

func TestStridedLoopAgainstCPU(t *testing.T) {
	const base, n = 0x2000, 64
	img := assemble(t, func(b *asm.Builder) {
		b.MovI(4, base)     // src cursor
		b.MovI(5, base+n*8) // dst cursor
		b.MovI(6, n)        // trip count
		b.MovI(7, 0)        // checksum
		b.Label("top")
		b.Ld(8, 8, 4, 8) // r8 = [r4], r4 += 8
		b.Add(7, 7, 8)
		b.St(8, 5, 8, 8) // [r5] = r8, r5 += 8
		b.AddI(6, -1, 6)
		b.CmpI(isa.CmpLt, 8, 9, 0, 6) // p8 = 0 < r6
		b.BrCond(8, "top")
		b.Halt()
	})
	img.InitData = func(m *memsys.Memory) {
		for i := uint64(0); i < n; i++ {
			m.Write64(base+i*8, i*i+3)
		}
	}
	o, c := runBoth(t, img)
	checkAgree(t, o, c)

	// And the loop did what it says: dst is a copy of src, checksum in r7.
	var want uint64
	for i := uint64(0); i < n; i++ {
		want += i*i + 3
		if got := o.Mem.Read64(base + n*8 + i*8); got != i*i+3 {
			t.Fatalf("dst[%d] = %d, want %d", i, got, i*i+3)
		}
	}
	if o.GR[7] != want {
		t.Errorf("checksum r7 = %d, want %d", o.GR[7], want)
	}
}

func TestPredicationCallAndFP(t *testing.T) {
	const base = 0x3000
	img := assemble(t, func(b *asm.Builder) {
		b.MovI(4, base)
		b.MovI(8, 10)
		b.MovI(9, 20)
		b.Cmp(isa.CmpLt, 8, 9, 8, 9) // p8 = r8 < r9 (true), p9 = false
		// True predicate fires; false predicate suppresses both the write
		// and the post-increment.
		b.Emit(isa.Inst{Op: isa.OpAddI, QP: 8, R1: 10, Imm: 111, R3: 0})
		b.Emit(isa.Inst{Op: isa.OpLd8, QP: 9, R1: 11, R3: 4, PostInc: 8})
		b.Emit(isa.Inst{Op: isa.OpAddI, QP: 9, R1: 12, Imm: 999, R3: 0})
		// FP path: f4 = 2.5, f5 = f4*f4 + 1.0, store, convert.
		b.MovI(13, 0x4004000000000000) // bits of 2.5
		b.SetF(4, 13)
		b.Fma(5, 4, 4, 1)
		b.StF(4, 5, 0)
		b.FCvtFX(14, 5)
		// Call/return linkage.
		b.BrCall(1, "fn")
		b.Lfetch(4, 64)
		b.Halt()
		b.Label("fn")
		b.AddI(15, 7, 0)
		b.BrRet(1)
	})
	o, c := runBoth(t, img)
	checkAgree(t, o, c)

	if o.GR[10] != 111 {
		t.Errorf("predicated-on addi: r10 = %d, want 111", o.GR[10])
	}
	if o.GR[11] != 0 || o.GR[12] != 0 {
		t.Errorf("predicated-off ops wrote: r11=%d r12=%d", o.GR[11], o.GR[12])
	}
	if o.GR[4] != base+64 {
		t.Errorf("r4 = %#x: predicated-off load post-incremented (or lfetch did not)", o.GR[4])
	}
	if want := 2.5*2.5 + 1.0; o.Mem.ReadFloat(base) != want {
		t.Errorf("fma result %v, want %v", o.Mem.ReadFloat(base), want)
	}
	if o.GR[14] != 7 {
		t.Errorf("fcvt.fx r14 = %d, want 7", o.GR[14])
	}
	if o.GR[15] != 7 {
		t.Errorf("callee did not run: r15 = %d", o.GR[15])
	}
}

func TestHardwiredRegisters(t *testing.T) {
	img := assemble(t, func(b *asm.Builder) {
		b.MovI(4, 42)
		b.Emit(isa.Inst{Op: isa.OpMov, R1: 0, R3: 4})                                 // write to r0 discarded
		b.FCvtXF(0, 4)                                                                // write to f0 discarded
		b.FCvtXF(1, 4)                                                                // write to f1 discarded
		b.Emit(isa.Inst{Op: isa.OpCmpI, Rel: isa.CmpEq, P1: 0, P2: 8, Imm: 1, R3: 0}) // p0 ignored
		b.Add(5, 0, 4)
		b.Halt()
	})
	o, c := runBoth(t, img)
	checkAgree(t, o, c)

	if o.GR[0] != 0 {
		t.Errorf("r0 = %d", o.GR[0])
	}
	if o.FR[0] != 0 || o.FR[1] != 1 {
		t.Errorf("f0 = %v, f1 = %v", o.FR[0], o.FR[1])
	}
	if o.PR[0] {
		t.Error("p0 array slot set")
	}
	if !o.PR[8] {
		t.Error("p8 not set by compare")
	}
	if o.GR[5] != 42 {
		t.Errorf("r5 = %d, want 42", o.GR[5])
	}
}

// TestHaltByOuterReturn: a br.ret through a zero branch register is the
// outermost-frame return and halts the machine, same as on the CPU.
func TestHaltByOuterReturn(t *testing.T) {
	img := assemble(t, func(b *asm.Builder) {
		b.MovI(4, 5)
		b.BrRet(0)
	})
	o, c := runBoth(t, img)
	checkAgree(t, o, c)
	if !o.Halted() {
		t.Error("not halted")
	}
}

// TestLoadPostIncSameRegister: when a load's destination is its own base
// register, the loaded value lands first and the post-increment applies on
// top of it — in both engines.
func TestLoadPostIncSameRegister(t *testing.T) {
	const base = 0x4000
	img := assemble(t, func(b *asm.Builder) {
		b.MovI(4, base)
		b.Ld(8, 4, 4, 16) // r4 = [r4], then r4 += 16
		b.Halt()
	})
	img.InitData = func(m *memsys.Memory) { m.Write64(base, 1000) }
	o, c := runBoth(t, img)
	checkAgree(t, o, c)
	if o.GR[4] != 1016 {
		t.Errorf("r4 = %d, want 1016 (loaded value + post-increment)", o.GR[4])
	}
}

func TestRunMaxInstructions(t *testing.T) {
	img := assemble(t, func(b *asm.Builder) {
		b.Label("spin")
		b.Br("spin")
	})
	o, err := FromImage(img)
	if err != nil {
		t.Fatal(err)
	}
	st, err := o.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if o.Halted() {
		t.Error("infinite loop halted")
	}
	if st.Retired < 100 {
		t.Errorf("retired %d < 100", st.Retired)
	}
}

func TestUnmappedFetchErrors(t *testing.T) {
	o := New(program.NewCodeSpace(), memsys.NewMemory())
	o.SetPC(0xdead0)
	if err := o.Step(); err == nil {
		t.Error("no error on unmapped fetch")
	}
}
