// Package compiler is the static compiler substrate: an ORC-like code
// generator that lowers a small loop-oriented kernel IR to simulated IA-64
// bundles. It provides the experiment knobs the paper's evaluation turns:
//
//   - O2: no static data prefetching (the ORC baseline for Fig. 7a)
//   - O3: Mowry-style static prefetching of analyzable affine array
//     references (Fig. 7b, Table 1)
//   - profile-guided prefetching: restrict O3 prefetches to loops that a
//     sampling profile shows to miss (Table 1)
//   - software pipelining on/off and the 4-register reservation used by
//     ADORE (Fig. 10)
//
// Like ORC, the compiler refuses to prefetch references it cannot analyze:
// indirect and pointer-chasing references, and loops whose arrays are
// ambiguous (aliased parameters, the paper's §1.1 matrix-multiply story).
package compiler

import "fmt"

// InitKind selects how an array's memory is initialized before a run.
type InitKind uint8

const (
	// InitZero leaves the array zeroed.
	InitZero InitKind = iota
	// InitLinear sets element i to (i*Mult + Add) mod Mod (Mod 0 means no
	// modulus). Used for value arrays and for index arrays feeding
	// indirect references.
	InitLinear
	// InitChain builds a linked structure: nodes of NodeSize bytes, the
	// pointer at NextOff in each node pointing to the next node in visit
	// order. ShufflePct percent of the links are redirected
	// pseudo-randomly; 0 gives a fully regular traversal (the "partially
	// regular strides" for which induction-pointer prefetching works),
	// 100 a graph-like walk it cannot help.
	InitChain
	// InitRandom sets element i to a pseudo-random value mod Mod
	// (deterministic in Seed) — a genuinely irregular index stream.
	InitRandom
)

// InitSpec configures array initialization.
type InitSpec struct {
	Kind       InitKind
	Mult, Add  int64
	Mod        int64
	NodeSize   int64
	NextOff    int64
	ShufflePct int
	Seed       uint64
}

// Array declares one data region of the kernel.
type Array struct {
	Name  string
	Elem  int   // element size in bytes (4 or 8)
	N     int64 // element count (for InitChain: node count, Elem ignored)
	Float bool
	Init  InitSpec
}

// Bytes returns the array footprint.
func (a *Array) Bytes() int64 {
	if a.Init.Kind == InitChain {
		return a.N * a.Init.NodeSize
	}
	return a.N * int64(a.Elem)
}

// RefKind classifies a memory reference, mirroring the paper's three
// runtime data reference patterns (Fig. 5).
type RefKind uint8

const (
	// RefAffine is a direct array reference: base + i*stride.
	RefAffine RefKind = iota
	// RefIndirect addresses Array[IndexTemp*Scale] where IndexTemp was
	// loaded earlier in the body.
	RefIndirect
	// RefPointer addresses *(PtrTemp + Offset); PtrTemp is loop-carried.
	RefPointer
)

// Ref is one memory reference in a loop body.
type Ref struct {
	Kind RefKind

	// RefAffine / RefIndirect: the named array.
	Array string

	// RefAffine: bytes advanced per inner and per outer iteration.
	InnerStride int64
	OuterStride int64
	Offset      int64

	// RefIndirect: temp holding the element index, and its scale in
	// bytes (usually the target array's element size).
	IndexTemp string
	Scale     int64

	// RefPointer: temp holding the node address.
	PtrTemp string
}

// StmtKind enumerates loop-body statements.
type StmtKind uint8

const (
	SLoadInt StmtKind = iota
	SLoadFloat
	SStoreInt
	SStoreFloat
	SAddImm // Dst = A + Imm (int)
	SAdd    // Dst = A + B (int)
	SAnd    // Dst = A & B
	SXor    // Dst = A ^ B
	SShl    // Dst = A << Imm
	SFAdd
	SFMul
	SFSub
	SFMA    // Dst = A*B + C
	SCvtFI  // Dst(int) = int64(A(float)); the slice-analysis poison
	SCvtIF  // Dst(float) = float64(A(int))
	SGetSig // Dst(int) = bits(A(float)); also poisons slices
)

// Stmt is one loop-body statement. Int and float temps live in separate
// namespaces selected by the statement kind.
type Stmt struct {
	Kind StmtKind
	Dst  string
	A    string
	B    string
	C    string
	Imm  int64
	Size int  // load/store bytes (int refs; float refs are always 8)
	Ref  *Ref // for load/store kinds
}

// Init sets a loop-carried temp before the inner loop starts (re-executed
// at every outer iteration).
type Init struct {
	Temp   string
	IsImm  bool
	Imm    int64
	Array  string // when not IsImm: temp = &Array + Offset
	Offset int64
}

// Loop is a (possibly two-deep) loop nest: OuterTrip iterations of
// InnerTrip body executions. Affine references advance by InnerStride per
// inner iteration and restart at base + outer*OuterStride each outer
// iteration.
type Loop struct {
	Name      string
	OuterTrip int64 // 1 for a single loop
	InnerTrip int64
	Body      []Stmt
	Inits     []Init

	// Ambiguous marks loops whose arrays the static compiler cannot
	// analyze (aliased parameters): ORC will not prefetch them
	// regardless of level, but the runtime prefetcher — which sees
	// actual miss addresses — can.
	Ambiguous bool

	// NoSWP marks loops the modulo scheduler gives up on (complex
	// control, calls, recurrences in the real benchmarks); they are
	// emitted with the plain schedule under every option set.
	NoSWP bool

	// FloatTemps lists float temps that must be zero-initialized at the
	// outer head (accumulators).
	FloatTemps []string
}

// Phase is a sequence of loops repeated Repeat times; phases execute in
// order. A program with two phases of distinct working sets exercises
// ADORE's phase detector exactly like 179.art (Fig. 8).
type Phase struct {
	Name   string
	Repeat int64
	Loops  []*Loop
}

// Kernel is one synthetic program.
type Kernel struct {
	Name   string
	Arrays []Array
	Phases []Phase
}

// Validate performs structural checks before code generation.
func (k *Kernel) Validate() error {
	arr := map[string]bool{}
	for _, a := range k.Arrays {
		if arr[a.Name] {
			return fmt.Errorf("compiler: duplicate array %q", a.Name)
		}
		if a.Init.Kind != InitChain && a.Elem != 4 && a.Elem != 8 {
			return fmt.Errorf("compiler: array %q has element size %d", a.Name, a.Elem)
		}
		if a.N <= 0 {
			return fmt.Errorf("compiler: array %q has size %d", a.Name, a.N)
		}
		arr[a.Name] = true
	}
	for _, p := range k.Phases {
		if p.Repeat <= 0 {
			return fmt.Errorf("compiler: phase %q repeat %d", p.Name, p.Repeat)
		}
		for _, l := range p.Loops {
			if l.InnerTrip <= 0 || l.OuterTrip <= 0 {
				return fmt.Errorf("compiler: loop %q trips %d/%d", l.Name, l.OuterTrip, l.InnerTrip)
			}
			for i := range l.Body {
				s := &l.Body[i]
				if s.Ref != nil && s.Ref.Kind != RefPointer && !arr[s.Ref.Array] {
					return fmt.Errorf("compiler: loop %q stmt %d references unknown array %q", l.Name, i, s.Ref.Array)
				}
			}
		}
	}
	return nil
}
