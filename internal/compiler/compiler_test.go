package compiler

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/memsys"
	"repro/internal/program"
)

// runImage executes a compiled image to completion and returns the machine.
func runImage(t *testing.T, res *BuildResult) (*cpu.CPU, cpu.Stats) {
	t.Helper()
	cs := program.NewCodeSpace()
	if err := cs.AddSegment(res.Image.Code); err != nil {
		t.Fatal(err)
	}
	mem := memsys.NewMemory()
	if res.Image.InitData != nil {
		res.Image.InitData(mem)
	}
	c := cpu.New(cpu.DefaultConfig(), cs, mem, memsys.NewHierarchy(memsys.DefaultConfig()), nil)
	c.SetPC(res.Image.Entry)
	st, err := c.Run(200_000_000)
	if err != nil {
		t.Fatalf("%v\n%s", err, program.Listing(res.Image.Code))
	}
	if !c.Halted() {
		t.Fatal("program did not halt")
	}
	return c, st
}

// daxpyKernel builds y[i] += a*x[i] over n doubles, repeated reps times.
func daxpyKernel(n, reps int64) *Kernel {
	return &Kernel{
		Name: "daxpy",
		Arrays: []Array{
			{Name: "x", Elem: 8, N: n, Float: true, Init: InitSpec{Kind: InitLinear, Mult: 1}},
			{Name: "y", Elem: 8, N: n, Float: true, Init: InitSpec{Kind: InitLinear, Mult: 2}},
		},
		Phases: []Phase{{
			Name:   "main",
			Repeat: reps,
			Loops: []*Loop{{
				Name:      "daxpy",
				OuterTrip: 1,
				InnerTrip: n,
				Body: []Stmt{
					{Kind: SLoadFloat, Dst: "xv", Ref: &Ref{Kind: RefAffine, Array: "x", InnerStride: 8}},
					{Kind: SLoadFloat, Dst: "yv", Ref: &Ref{Kind: RefAffine, Array: "y", InnerStride: 8}},
					{Kind: SFMA, Dst: "r", A: "xv", B: "a", C: "yv"},
					{Kind: SStoreFloat, A: "r", Ref: &Ref{Kind: RefAffine, Array: "y", InnerStride: 8}},
				},
				FloatTemps: []string{"a"},
			}},
		}},
	}
}

func TestDaxpySemantics(t *testing.T) {
	// a is zero-initialized (FloatTemps), so y' = 0*x + y = y: values
	// must be preserved exactly. Then check the non-trivial variant via
	// sum reduction below.
	k := daxpyKernel(256, 1)
	res, err := Build(k, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	c, st := runImage(t, res)
	base := res.Layout.Base["y"]
	for i := int64(0); i < 256; i++ {
		want := float64(2 * i)
		if got := c.Mem.ReadFloat(base + uint64(i*8)); got != want {
			t.Fatalf("y[%d] = %v, want %v", i, got, want)
		}
	}
	if st.Loads != 2*256 || st.Stores != 256 {
		t.Fatalf("loads/stores = %d/%d", st.Loads, st.Stores)
	}
}

// sumKernel reduces an int array; result observable via a store to "out".
func sumKernel(n int64) *Kernel {
	return &Kernel{
		Name: "sum",
		Arrays: []Array{
			{Name: "a", Elem: 8, N: n, Init: InitSpec{Kind: InitLinear, Mult: 3}},
			{Name: "out", Elem: 8, N: 8, Init: InitSpec{Kind: InitZero}},
		},
		Phases: []Phase{{
			Name:   "main",
			Repeat: 1,
			Loops: []*Loop{
				{
					Name:      "reduce",
					OuterTrip: 1,
					InnerTrip: n,
					Body: []Stmt{
						{Kind: SLoadInt, Dst: "v", Size: 8, Ref: &Ref{Kind: RefAffine, Array: "a", InnerStride: 8}},
						{Kind: SAdd, Dst: "s", A: "s", B: "v"},
					},
					Inits: []Init{{Temp: "s", IsImm: true, Imm: 0}},
				},
				{
					Name:      "emit",
					OuterTrip: 1,
					InnerTrip: 1,
					Body: []Stmt{
						{Kind: SStoreInt, A: "s2", Size: 8, Ref: &Ref{Kind: RefAffine, Array: "out", InnerStride: 0}},
					},
					Inits: []Init{{Temp: "s2", IsImm: true, Imm: 0}},
				},
			},
		}},
	}
}

func TestSumReduction(t *testing.T) {
	// The "emit" loop stores a temp initialized to 0, so instead verify
	// the reduction by checking the accumulator register is threaded
	// correctly: use a single loop that stores the running sum each
	// iteration; final slot holds the total.
	n := int64(100)
	k := &Kernel{
		Name: "sumstore",
		Arrays: []Array{
			{Name: "a", Elem: 8, N: n, Init: InitSpec{Kind: InitLinear, Mult: 3}},
			{Name: "out", Elem: 8, N: n, Init: InitSpec{Kind: InitZero}},
		},
		Phases: []Phase{{
			Name:   "main",
			Repeat: 1,
			Loops: []*Loop{{
				Name:      "reduce",
				OuterTrip: 1,
				InnerTrip: n,
				Body: []Stmt{
					{Kind: SLoadInt, Dst: "v", Size: 8, Ref: &Ref{Kind: RefAffine, Array: "a", InnerStride: 8}},
					{Kind: SAdd, Dst: "s", A: "s", B: "v"},
					{Kind: SStoreInt, A: "s", Size: 8, Ref: &Ref{Kind: RefAffine, Array: "out", InnerStride: 8}},
				},
				Inits: []Init{{Temp: "s", IsImm: true, Imm: 0}},
			}},
		}},
	}
	res, err := Build(k, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	c, _ := runImage(t, res)
	out := res.Layout.Base["out"]
	var want uint64
	for i := int64(0); i < n; i++ {
		want += uint64(3 * i)
		if got := c.Mem.Read64(out + uint64(i*8)); got != want {
			t.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestIndirectReference(t *testing.T) {
	// c[i] = b[a[i]] with a a permutation-ish index array.
	n := int64(64)
	k := &Kernel{
		Name: "indirect",
		Arrays: []Array{
			{Name: "idx", Elem: 4, N: n, Init: InitSpec{Kind: InitLinear, Mult: 7, Mod: n}},
			{Name: "b", Elem: 8, N: n, Init: InitSpec{Kind: InitLinear, Mult: 10}},
			{Name: "c", Elem: 8, N: n, Init: InitSpec{Kind: InitZero}},
		},
		Phases: []Phase{{
			Name:   "main",
			Repeat: 1,
			Loops: []*Loop{{
				Name:      "gather",
				OuterTrip: 1,
				InnerTrip: n,
				Body: []Stmt{
					{Kind: SLoadInt, Dst: "i", Size: 4, Ref: &Ref{Kind: RefAffine, Array: "idx", InnerStride: 4}},
					{Kind: SLoadInt, Dst: "v", Size: 8, Ref: &Ref{Kind: RefIndirect, Array: "b", IndexTemp: "i", Scale: 8}},
					{Kind: SStoreInt, A: "v", Size: 8, Ref: &Ref{Kind: RefAffine, Array: "c", InnerStride: 8}},
				},
			}},
		}},
	}
	res, err := Build(k, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	c, _ := runImage(t, res)
	cBase := res.Layout.Base["c"]
	for i := int64(0); i < n; i++ {
		idx := (7 * i) % n
		want := uint64(10 * idx)
		if got := c.Mem.Read64(cBase + uint64(i*8)); got != want {
			t.Fatalf("c[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestPointerChase(t *testing.T) {
	// Walk a chain accumulating payloads: p = *(p+8) after reading
	// payload at p+0.
	nodes := int64(128)
	k := &Kernel{
		Name: "chase",
		Arrays: []Array{
			{Name: "chain", N: nodes, Init: InitSpec{Kind: InitChain, NodeSize: 64, NextOff: 8}},
			{Name: "out", Elem: 8, N: nodes, Init: InitSpec{Kind: InitZero}},
		},
		Phases: []Phase{{
			Name:   "main",
			Repeat: 1,
			Loops: []*Loop{{
				Name:      "walk",
				OuterTrip: 1,
				InnerTrip: nodes,
				Body: []Stmt{
					{Kind: SLoadInt, Dst: "pay", Size: 8, Ref: &Ref{Kind: RefPointer, PtrTemp: "p", Offset: 0}},
					{Kind: SLoadInt, Dst: "p", Size: 8, Ref: &Ref{Kind: RefPointer, PtrTemp: "p", Offset: 8}},
					{Kind: SStoreInt, A: "pay", Size: 8, Ref: &Ref{Kind: RefAffine, Array: "out", InnerStride: 8}},
				},
				Inits: []Init{{Temp: "p", Array: "chain", Offset: 0}},
			}},
		}},
	}
	res, err := Build(k, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	c, _ := runImage(t, res)
	out := res.Layout.Base["out"]
	chain := res.Layout.Base["chain"]
	// Sequential chain: node k's payload points at node (k*31+7) mod n.
	for i := int64(0); i < nodes; i++ {
		want := chain + uint64((i*31+7)%nodes)*64
		if got := c.Mem.Read64(out + uint64(i*8)); got != want {
			t.Fatalf("out[%d] = %#x, want %#x", i, got, want)
		}
	}
}

func TestO3InsertsPrefetchesAndHelps(t *testing.T) {
	// A large streaming kernel: O3's static prefetching must both emit
	// lfetch and speed the loop up.
	k := daxpyKernel(1<<16, 2)
	o2, err := Build(k, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Level = O3
	o3, err := Build(k, opts)
	if err != nil {
		t.Fatal(err)
	}
	if o3.PrefetchesInserted == 0 || o3.LoopsPrefetched == 0 {
		t.Fatalf("O3 inserted no prefetches: %+v", o3)
	}
	if o2.PrefetchesInserted != 0 {
		t.Fatal("O2 inserted prefetches")
	}
	_, st2 := runImage(t, o2)
	_, st3 := runImage(t, o3)
	if st3.Prefetches == 0 {
		t.Fatal("no lfetch executed at O3")
	}
	speedup := float64(st2.Cycles) / float64(st3.Cycles)
	if speedup < 1.15 {
		t.Fatalf("static prefetch speedup %.3f, want > 1.15", speedup)
	}
}

func TestAmbiguousLoopNotPrefetched(t *testing.T) {
	k := daxpyKernel(1<<12, 1)
	k.Phases[0].Loops[0].Ambiguous = true
	opts := DefaultOptions()
	opts.Level = O3
	res, err := Build(k, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.LoopsPrefetched != 0 || res.PrefetchesInserted != 0 {
		t.Fatalf("ambiguous loop prefetched: %+v", res)
	}
	if res.LoopsPrefetchable != 0 {
		t.Fatalf("ambiguous loop counted prefetchable")
	}
}

func TestProfileGuidedFiltering(t *testing.T) {
	// Two loops; the profile names only loop 0: only it gets prefetches
	// and the binary shrinks.
	k := daxpyKernel(1<<12, 1)
	second := *k.Phases[0].Loops[0]
	second.Name = "daxpy2"
	k.Phases[0].Loops = append(k.Phases[0].Loops, &second)

	opts := DefaultOptions()
	opts.Level = O3
	full, err := Build(k, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.PrefetchLoops = map[int]bool{0: true}
	filtered, err := Build(k, opts)
	if err != nil {
		t.Fatal(err)
	}
	if full.LoopsPrefetched != 2 || filtered.LoopsPrefetched != 1 {
		t.Fatalf("prefetched loops: full %d filtered %d", full.LoopsPrefetched, filtered.LoopsPrefetched)
	}
	if filtered.Image.BundleCount >= full.Image.BundleCount {
		t.Fatalf("filtered binary not smaller: %d vs %d", filtered.Image.BundleCount, full.Image.BundleCount)
	}
}

func TestSWPLoopMarksBackEdgeAndHelps(t *testing.T) {
	// Small working set (fits L2): SWP hides hit latency and halves
	// loop overhead.
	k := daxpyKernel(1<<10, 50)
	plain, err := Build(k, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.SWP = true
	opts.ReserveRegs = false
	swp, err := Build(k, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Back edge of the SWP loop must carry the marker.
	found := false
	for _, bd := range swp.Image.Code.Bundles {
		for _, in := range bd.Slots {
			if in.Op == isa.OpBrCond && in.SWPLoop {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("SWP back edge not marked")
	}
	_, stP := runImage(t, plain)
	_, stS := runImage(t, swp)
	if float64(stP.Cycles)/float64(stS.Cycles) < 1.1 {
		t.Fatalf("SWP speedup only %.3f (plain %d, swp %d cycles)",
			float64(stP.Cycles)/float64(stS.Cycles), stP.Cycles, stS.Cycles)
	}
	// Semantics preserved: y values unchanged (a = 0).
	c, _ := runImage(t, swp)
	base := swp.Layout.Base["y"]
	for i := int64(0); i < 1<<10; i += 37 {
		if got := c.Mem.ReadFloat(base + uint64(i*8)); got != float64(2*i) {
			t.Fatalf("SWP broke semantics: y[%d] = %v", i, got)
		}
	}
}

func TestOuterLoopAdvancesBase(t *testing.T) {
	// 4 outer x 16 inner over a 64-element array written with a marker.
	k := &Kernel{
		Name: "outer",
		Arrays: []Array{
			{Name: "m", Elem: 8, N: 64, Init: InitSpec{Kind: InitZero}},
		},
		Phases: []Phase{{
			Name:   "main",
			Repeat: 1,
			Loops: []*Loop{{
				Name:      "fill",
				OuterTrip: 4,
				InnerTrip: 16,
				Body: []Stmt{
					{Kind: SAddImm, Dst: "v", A: "v", Imm: 1},
					{Kind: SStoreInt, A: "v", Size: 8, Ref: &Ref{Kind: RefAffine, Array: "m", InnerStride: 8, OuterStride: 16 * 8}},
				},
				Inits: []Init{{Temp: "v", IsImm: true, Imm: 0}},
			}},
		}},
	}
	res, err := Build(k, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	c, _ := runImage(t, res)
	base := res.Layout.Base["m"]
	// v resets per outer iteration (Inits re-run at outer head): each
	// 16-element block counts 1..16.
	for i := int64(0); i < 64; i++ {
		want := uint64(i%16) + 1
		if got := c.Mem.Read64(base + uint64(i*8)); got != want {
			t.Fatalf("m[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestReserveRegsExcludesReserved(t *testing.T) {
	k := daxpyKernel(64, 1)
	res, err := Build(k, DefaultOptions()) // ReserveRegs on
	if err != nil {
		t.Fatal(err)
	}
	for _, bd := range res.Image.Code.Bundles {
		for _, in := range bd.Slots {
			if d, ok := in.RegDef(); ok && d >= isa.ReservedGRFirst && d <= isa.ReservedGRLast {
				t.Fatalf("reserved register r%d written by %s", d, in)
			}
		}
	}
}

func TestValidateRejectsBadKernels(t *testing.T) {
	bad := &Kernel{
		Name:   "bad",
		Arrays: []Array{{Name: "a", Elem: 3, N: 10}},
	}
	if _, err := Build(bad, DefaultOptions()); err == nil {
		t.Fatal("bad element size accepted")
	}
	bad2 := &Kernel{
		Name: "bad2",
		Phases: []Phase{{Name: "p", Repeat: 1, Loops: []*Loop{{
			Name: "l", OuterTrip: 1, InnerTrip: 4,
			Body: []Stmt{{Kind: SLoadInt, Dst: "v", Ref: &Ref{Kind: RefAffine, Array: "ghost", InnerStride: 8}}},
		}}}},
	}
	if _, err := Build(bad2, DefaultOptions()); err == nil {
		t.Fatal("unknown array accepted")
	}
}

func TestInitRandomDeterministicAndBounded(t *testing.T) {
	k := &Kernel{
		Name: "rnd",
		Arrays: []Array{
			{Name: "r", Elem: 8, N: 256, Init: InitSpec{Kind: InitRandom, Mod: 1000, Seed: 7}},
		},
		Phases: []Phase{{Name: "p", Repeat: 1, Loops: []*Loop{{
			Name: "noop", OuterTrip: 1, InnerTrip: 1,
			Body:  []Stmt{{Kind: SAddImm, Dst: "x", A: "x", Imm: 1}},
			Inits: []Init{{Temp: "x", IsImm: true, Imm: 0}},
		}}}},
	}
	res1, err := Build(k, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	c1, _ := runImage(t, res1)
	res2, err := Build(k, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := runImage(t, res2)
	base := res1.Layout.Base["r"]
	distinct := map[uint64]bool{}
	for i := int64(0); i < 256; i++ {
		v1 := c1.Mem.Read64(base + uint64(i*8))
		v2 := c2.Mem.Read64(res2.Layout.Base["r"] + uint64(i*8))
		if v1 != v2 {
			t.Fatalf("r[%d] differs across identical builds: %d vs %d", i, v1, v2)
		}
		if v1 >= 1000 {
			t.Fatalf("r[%d] = %d exceeds Mod", i, v1)
		}
		distinct[v1] = true
	}
	if len(distinct) < 100 {
		t.Fatalf("only %d distinct values out of 256 — not very random", len(distinct))
	}
}

func TestUnrollHalvesBackEdges(t *testing.T) {
	// Qualifying loops are emitted unrolled by two under both schedules:
	// the back edge executes InnerTrip/2 times.
	k := daxpyKernel(1<<10, 1)
	res, err := Build(k, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, st := runImage(t, res)
	// Two ldf per unrolled half + one store per half: loads = 2*trip.
	if st.Loads != 2*(1<<10) {
		t.Fatalf("loads = %d", st.Loads)
	}
	if st.Branches >= 1<<10 {
		t.Fatalf("branches = %d, loop not unrolled", st.Branches)
	}
}

func TestNoSWPDisablesUnrollAndPipelining(t *testing.T) {
	k := daxpyKernel(1<<10, 1)
	k.Phases[0].Loops[0].NoSWP = true
	opts := DefaultOptions()
	opts.SWP = true
	res, err := Build(k, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, bd := range res.Image.Code.Bundles {
		for _, in := range bd.Slots {
			if in.SWPLoop {
				t.Fatal("NoSWP loop got a pipelined back edge")
			}
		}
	}
}

func TestStaticPrefetchDistancePositive(t *testing.T) {
	k := daxpyKernel(1<<12, 1)
	opts := DefaultOptions()
	opts.Level = O3
	res, err := Build(k, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Find prefetch-cursor initializations: add rPf = dist, rCur with
	// dist > 0 and sensibly bounded.
	found := 0
	for _, bd := range res.Image.Code.Bundles {
		for _, in := range bd.Slots {
			if in.Op == isa.OpAddI && in.Imm > 0 && in.Imm < 1<<20 {
				// crude filter: cursor inits use large-ish offsets
				if in.Imm >= 64 {
					found++
				}
			}
		}
	}
	if found == 0 {
		t.Fatal("no prefetch distance initializations found")
	}
}

func TestLoopAlignSeparatesLoops(t *testing.T) {
	k := daxpyKernel(64, 1)
	second := *k.Phases[0].Loops[0]
	second.Name = "second"
	k.Phases[0].Loops = append(k.Phases[0].Loops, &second)
	opts := DefaultOptions()
	opts.LoopAlign = 1024
	res, err := Build(k, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Image.Loops) != 2 {
		t.Fatalf("loops = %d", len(res.Image.Loops))
	}
	gap := int64(res.Image.Loops[1].Head) - int64(res.Image.Loops[0].Head)
	if gap < 1024 {
		t.Fatalf("loops only %d bytes apart", gap)
	}
	// Alignment off: loops packed tightly.
	opts.LoopAlign = 0
	res2, err := Build(k, opts)
	if err != nil {
		t.Fatal(err)
	}
	gap2 := int64(res2.Image.Loops[1].Head) - int64(res2.Image.Loops[0].Head)
	if gap2 >= gap {
		t.Fatalf("alignment had no effect: %d vs %d", gap2, gap)
	}
}
