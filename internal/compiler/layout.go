package compiler

import (
	"repro/internal/memsys"
)

// DataBase is where the data segment starts in the simulated address space.
const DataBase uint64 = 0x1000_0000

// Layout assigns each array a base address, page-aligned to keep conflict
// behaviour deterministic across option sweeps.
type Layout struct {
	Base map[string]uint64
	End  uint64
}

// layoutArrays places arrays sequentially from DataBase.
func layoutArrays(arrays []Array) *Layout {
	l := &Layout{Base: make(map[string]uint64), End: DataBase}
	for _, a := range arrays {
		l.Base[a.Name] = l.End
		sz := uint64(a.Bytes())
		// Round up to 4 KiB and add a guard page so streams over one
		// array do not silently flow into the next.
		sz = (sz + 0xfff) &^ uint64(0xfff)
		l.End += sz + 0x1000
	}
	return l
}

// lcg is a small deterministic pseudo-random generator for chain shuffles.
type lcg struct{ s uint64 }

func (r *lcg) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s >> 11
}

// initData returns the memory initializer for the kernel under the layout.
func initData(arrays []Array, l *Layout) func(m *memsys.Memory) {
	// Copy inputs so the closure is self-contained.
	as := make([]Array, len(arrays))
	copy(as, arrays)
	bases := make(map[string]uint64, len(l.Base))
	for k, v := range l.Base {
		bases[k] = v
	}
	return func(m *memsys.Memory) {
		for _, a := range as {
			base := bases[a.Name]
			switch a.Init.Kind {
			case InitZero:
				// memory reads as zero by default
			case InitLinear:
				for i := int64(0); i < a.N; i++ {
					v := i*a.Init.Mult + a.Init.Add
					if a.Init.Mod > 0 {
						v %= a.Init.Mod
						if v < 0 {
							v += a.Init.Mod
						}
					}
					if a.Float {
						m.WriteFloat(base+uint64(i)*uint64(a.Elem), float64(v))
					} else {
						m.WriteN(base+uint64(i)*uint64(a.Elem), a.Elem, uint64(v))
					}
				}
			case InitChain:
				buildChain(m, base, a.N, a.Init)
			case InitRandom:
				r := lcg{s: a.Init.Seed | 1}
				for i := int64(0); i < a.N; i++ {
					v := int64(r.next())
					if a.Init.Mod > 0 {
						v %= a.Init.Mod
					}
					if a.Float {
						m.WriteFloat(base+uint64(i)*uint64(a.Elem), float64(v))
					} else {
						m.WriteN(base+uint64(i)*uint64(a.Elem), a.Elem, uint64(v))
					}
				}
			}
		}
	}
}

// buildChain lays out n nodes of spec.NodeSize bytes and links them through
// the pointer at spec.NextOff. The visit order is sequential except that
// spec.ShufflePct percent of nodes are transposed pseudo-randomly, giving
// mostly-regular strides with occasional breaks — the structure for which
// the paper's induction-pointer prefetching works. The last node's pointer
// wraps to the first so the walk can repeat.
func buildChain(m *memsys.Memory, base uint64, n int64, spec InitSpec) {
	order := make([]int64, n)
	for i := range order {
		order[i] = int64(i)
	}
	if spec.ShufflePct > 0 {
		r := lcg{s: spec.Seed | 1}
		swaps := n * int64(spec.ShufflePct) / 100
		for s := int64(0); s < swaps; s++ {
			i := int64(r.next() % uint64(n))
			j := int64(r.next() % uint64(n))
			order[i], order[j] = order[j], order[i]
		}
	}
	addr := func(k int64) uint64 { return base + uint64(k)*uint64(spec.NodeSize) }
	for i := int64(0); i < n; i++ {
		next := order[(i+1)%n]
		m.Write64(addr(order[i])+uint64(spec.NextOff), addr(next))
		// The payload word holds a pointer to an unrelated node — the
		// arc->tail second pointer level of mcf-style structures, so a
		// dereference of the payload is itself a chasing miss.
		m.Write64(addr(order[i]), addr((order[i]*31+7)%n))
	}
}

// ChainHead returns the address of the first node of a chain array laid
// out by layoutArrays (node 0 is always the traversal head).
func (l *Layout) ChainHead(name string) uint64 { return l.Base[name] }
