package compiler

import "testing"

func TestOptionsFingerprint(t *testing.T) {
	base := DefaultOptions()

	// Every code-shaping knob must move the fingerprint.
	variants := map[string]func(*Options){
		"level":   func(o *Options) { o.Level = O3 },
		"swp":     func(o *Options) { o.SWP = true },
		"reserve": func(o *Options) { o.ReserveRegs = false },
		"latency": func(o *Options) { o.MemLatency = 200 },
		"base":    func(o *Options) { o.CodeBase = 0x2000 },
		"align":   func(o *Options) { o.LoopAlign = 2048 },
		"pf-nil-vs-empty": func(o *Options) {
			o.PrefetchLoops = map[int]bool{}
		},
		"pf-set": func(o *Options) {
			o.PrefetchLoops = map[int]bool{1: true, 3: true}
		},
	}
	seen := map[string]string{base.Fingerprint(): "default"}
	for name, mutate := range variants {
		o := base
		mutate(&o)
		fp := o.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("%s fingerprints identically to %s: %q", name, prev, fp)
		}
		seen[fp] = name
	}

	// Equal PrefetchLoops content fingerprints identically regardless of
	// construction order, and false entries do not count.
	a, b := base, base
	a.PrefetchLoops = map[int]bool{5: true, 2: true, 9: true}
	b.PrefetchLoops = map[int]bool{9: true, 5: true, 2: true, 7: false}
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("equivalent PrefetchLoops fingerprint differently:\n  %q\n  %q",
			a.Fingerprint(), b.Fingerprint())
	}
}
