package compiler

import (
	"fmt"
	"sort"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/verify"
)

// OptLevel selects the compilation level.
type OptLevel uint8

const (
	// O2 performs no static data prefetching (ORC's default below O3).
	O2 OptLevel = iota
	// O3 enables Mowry-style static prefetching for analyzable loops.
	O3
)

func (o OptLevel) String() string {
	if o == O2 {
		return "O2"
	}
	return "O3"
}

// Options are the compilation knobs the paper's experiments sweep.
type Options struct {
	Level OptLevel

	// SWP enables the software-pipelined schedule for qualifying inner
	// loops. The paper's ADORE runs disable it ("our dynamic
	// optimization currently does not handle software-pipelined loops").
	SWP bool

	// ReserveRegs removes r27-r30 and p6 from the allocator, handing
	// them to the runtime optimizer.
	ReserveRegs bool

	// PrefetchLoops, when non-nil, restricts O3 prefetching to the loop
	// IDs present in the map — the profile-guided mode of Table 1.
	PrefetchLoops map[int]bool

	// MemLatency is the miss latency the static prefetch distance
	// computation assumes (cycles).
	MemLatency int

	// CodeBase is the address of the first code bundle.
	CodeBase uint64

	// LoopAlign pads each loop nest to this boundary, spreading hot
	// regions across the address space as separate functions would be
	// in a real binary. Zero disables padding.
	LoopAlign uint64
}

// DefaultOptions compiles at O2 in the "restricted" configuration used for
// runtime prefetching (no SWP, registers reserved).
func DefaultOptions() Options {
	return Options{Level: O2, SWP: false, ReserveRegs: true, MemLatency: 160, CodeBase: 0x1000, LoopAlign: 1024}
}

// Fingerprint returns a deterministic key covering every option that can
// change generated code — the build-cache component of the harness engine's
// cache keys. PrefetchLoops is rendered as its sorted kept-loop IDs, so two
// maps with equal content fingerprint identically regardless of insertion
// order; nil (prefetch everything O3 wants) is distinct from an empty map
// (prefetch nothing).
func (o Options) Fingerprint() string {
	pf := "all"
	if o.PrefetchLoops != nil {
		ids := make([]int, 0, len(o.PrefetchLoops))
		for id, keep := range o.PrefetchLoops {
			if keep {
				ids = append(ids, id)
			}
		}
		sort.Ints(ids)
		pf = fmt.Sprint(ids)
	}
	return fmt.Sprintf("%s|swp=%t|rsv=%t|lat=%d|base=%#x|align=%d|pf=%s",
		o.Level, o.SWP, o.ReserveRegs, o.MemLatency, o.CodeBase, o.LoopAlign, pf)
}

// BuildResult is the compiler output plus the statistics Table 1 reports.
type BuildResult struct {
	Image  *program.Image
	Layout *Layout

	LoopsTotal         int
	LoopsPrefetchable  int // loops O3 would schedule for prefetching
	LoopsPrefetched    int // loops actually prefetched under the options
	PrefetchesInserted int
}

const (
	regPhase    = isa.Reg(8)
	regOuterCnt = isa.Reg(9)
	regInnerCnt = isa.Reg(10)

	predInner  = isa.PReg(1)
	predInner2 = isa.PReg(2)
	predOuter  = isa.PReg(3)
	predOuter2 = isa.PReg(4)
	predPhase  = isa.PReg(14)
	predPhase2 = isa.PReg(15)
)

// ctx is the per-build code generation state.
type ctx struct {
	k      *Kernel
	opts   Options
	b      *asm.Builder
	layout *Layout
	res    *BuildResult
	loopID int

	// per-loop endpoints recorded for program.LoopInfo resolution
	loopLabels []loopLabels
}

type loopLabels struct {
	id           int
	name         string
	inner, end   string
	prefetchable bool
	prefetched   bool
}

// Build compiles the kernel under the given options.
func Build(k *Kernel, opts Options) (*BuildResult, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	if opts.MemLatency <= 0 {
		opts.MemLatency = 160
	}
	if opts.CodeBase == 0 {
		opts.CodeBase = 0x1000
	}
	c := &ctx{
		k:      k,
		opts:   opts,
		b:      asm.New(opts.CodeBase),
		layout: layoutArrays(k.Arrays),
		res:    &BuildResult{},
	}
	c.res.Layout = c.layout

	for pi := range k.Phases {
		if err := c.genPhase(pi, &k.Phases[pi]); err != nil {
			return nil, err
		}
	}
	c.b.Halt()

	out, err := c.b.Build()
	if err != nil {
		return nil, err
	}
	seg := &program.Segment{Name: k.Name, Base: out.Base, Bundles: out.Bundles}
	img := program.NewImage(k.Name, seg, out.Base)
	for name, base := range c.layout.Base {
		img.Symbols["array:"+name] = base
	}
	for _, ll := range c.loopLabels {
		inner, ok1 := out.AddrOf(ll.inner)
		end, ok2 := out.AddrOf(ll.end)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("compiler: loop %q labels unresolved", ll.name)
		}
		img.Loops = append(img.Loops, program.LoopInfo{
			ID:           ll.id,
			Name:         ll.name,
			Head:         inner,
			BodyStart:    inner,
			BodyEnd:      end,
			Prefetchable: ll.prefetchable,
			Prefetched:   ll.prefetched,
		})
	}
	img.InitData = initData(k.Arrays, c.layout)
	// Post-codegen verification: emitted code must pass the static
	// machine-code checks (template legality, branch targets, and — when
	// the registers are reserved for the runtime optimizer — abstinence
	// from r27-r30/p6). A finding here is a compiler bug, so it fails the
	// build rather than producing a silently malformed image.
	if fs := verify.Errors(verify.CheckImage(img, verify.Options{ReservedRegsUnused: opts.ReserveRegs})); len(fs) > 0 {
		return nil, fmt.Errorf("compiler: generated code fails verification: %s (%d finding(s))", fs[0], len(fs))
	}
	c.res.Image = img
	return c.res, nil
}

// genPhase emits one phase: a repeat-counted sequence of loops.
func (c *ctx) genPhase(pi int, p *Phase) error {
	head := fmt.Sprintf("ph%d_head", pi)
	c.b.MovI(regPhase, p.Repeat)
	c.b.Label(head)
	for _, l := range p.Loops {
		if err := c.genLoop(l); err != nil {
			return fmt.Errorf("phase %q: %w", p.Name, err)
		}
	}
	c.b.AddI(regPhase, -1, regPhase)
	c.b.CmpI(isa.CmpLt, predPhase, predPhase2, 0, regPhase)
	c.b.BrCond(predPhase, head)
	return nil
}

// regAlloc hands out loop-local registers.
type regAlloc struct {
	free []isa.Reg
	fp   isa.FReg
}

func newRegAlloc(reserve bool) *regAlloc {
	ra := &regAlloc{fp: 2}
	for r := isa.Reg(11); r <= 63; r++ {
		if r == regOuterCnt || r == regInnerCnt || r == regPhase {
			continue
		}
		if reserve && r >= isa.ReservedGRFirst && r <= isa.ReservedGRLast {
			continue
		}
		ra.free = append(ra.free, r)
	}
	return ra
}

func (ra *regAlloc) take() (isa.Reg, error) {
	if len(ra.free) == 0 {
		return 0, fmt.Errorf("compiler: out of integer registers (spilling not implemented)")
	}
	r := ra.free[0]
	ra.free = ra.free[1:]
	return r, nil
}

func (ra *regAlloc) takeF() (isa.FReg, error) {
	if ra.fp >= 120 {
		return 0, fmt.Errorf("compiler: out of FP registers")
	}
	f := ra.fp
	ra.fp++
	return f, nil
}

// loopGen carries the register assignments of one loop.
type loopGen struct {
	c    *ctx
	l    *Loop
	ra   *regAlloc
	id   int
	ints map[string]isa.Reg
	fps  map[string]isa.FReg

	cursor    []isa.Reg // per body stmt: affine address cursor (0 = none)
	outerBase []isa.Reg // per body stmt: outer-iteration base (0 = none)
	scratch   []isa.Reg // per body stmt: scratch address register
	arrayBase map[string]isa.Reg

	pfCursor []isa.Reg // per body stmt: static prefetch cursor
	pfDist   []int64

	// unroll: the loop body is emitted twice per back edge (both
	// pipelined and plain schedules — ORC unrolls these loops at O2
	// regardless, so the SWP comparison isolates latency hiding).
	unroll  bool
	swp     bool
	shadow  map[string]isa.FReg // SWP second buffer for float load dsts
	shadowI map[string]isa.Reg  // SWP second buffer for int load dsts
}

func (g *loopGen) intReg(name string) (isa.Reg, error) {
	if r, ok := g.ints[name]; ok {
		return r, nil
	}
	r, err := g.ra.take()
	if err != nil {
		return 0, err
	}
	g.ints[name] = r
	return r, nil
}

func (g *loopGen) fpReg(name string) (isa.FReg, error) {
	if f, ok := g.fps[name]; ok {
		return f, nil
	}
	f, err := g.ra.takeF()
	if err != nil {
		return 0, err
	}
	g.fps[name] = f
	return f, nil
}

// genLoop emits one loop nest.
func (c *ctx) genLoop(l *Loop) error {
	id := c.loopID
	c.loopID++
	g := &loopGen{
		c:         c,
		l:         l,
		ra:        newRegAlloc(c.opts.ReserveRegs),
		id:        id,
		ints:      make(map[string]isa.Reg),
		fps:       make(map[string]isa.FReg),
		cursor:    make([]isa.Reg, len(l.Body)),
		outerBase: make([]isa.Reg, len(l.Body)),
		scratch:   make([]isa.Reg, len(l.Body)),
		pfCursor:  make([]isa.Reg, len(l.Body)),
		pfDist:    make([]int64, len(l.Body)),
		arrayBase: make(map[string]isa.Reg),
	}
	c.res.LoopsTotal++

	// Decide static prefetching for this loop.
	prefetchable := !l.Ambiguous && g.hasAffineRef()
	if prefetchable {
		c.res.LoopsPrefetchable++
	}
	doPrefetch := c.opts.Level == O3 && prefetchable
	if doPrefetch && c.opts.PrefetchLoops != nil && !c.opts.PrefetchLoops[id] {
		doPrefetch = false
	}
	if doPrefetch {
		c.res.LoopsPrefetched++
	}

	g.unroll = g.swpQualifies()
	g.swp = c.opts.SWP && g.unroll

	innerLbl := fmt.Sprintf("L%d_inner", id)
	outerLbl := fmt.Sprintf("L%d_outer", id)
	endLbl := fmt.Sprintf("L%d_end", id)
	c.loopLabels = append(c.loopLabels, loopLabels{
		id: id, name: l.Name, inner: innerLbl, end: endLbl,
		prefetchable: prefetchable, prefetched: doPrefetch,
	})

	b := c.b
	if c.opts.LoopAlign > 0 {
		b.Align(c.opts.LoopAlign)
	}
	multiOuter := l.OuterTrip > 1

	// ---- preheader: per-phase-iteration setup ----
	if multiOuter {
		b.MovI(regOuterCnt, l.OuterTrip)
	}
	for i := range l.Body {
		s := &l.Body[i]
		if s.Ref == nil {
			continue
		}
		switch s.Ref.Kind {
		case RefAffine:
			cur, err := g.ra.take()
			if err != nil {
				return err
			}
			g.cursor[i] = cur
			if multiOuter {
				ob, err := g.ra.take()
				if err != nil {
					return err
				}
				g.outerBase[i] = ob
				b.MovI(ob, int64(c.layout.Base[s.Ref.Array])+s.Ref.Offset)
			}
		case RefIndirect:
			if _, ok := g.arrayBase[s.Ref.Array]; !ok {
				r, err := g.ra.take()
				if err != nil {
					return err
				}
				g.arrayBase[s.Ref.Array] = r
				b.MovI(r, int64(c.layout.Base[s.Ref.Array]))
			}
			sc, err := g.ra.take()
			if err != nil {
				return err
			}
			g.scratch[i] = sc
		case RefPointer:
			if s.Ref.Offset != 0 {
				sc, err := g.ra.take()
				if err != nil {
					return err
				}
				g.scratch[i] = sc
			}
		}
		if doPrefetch && s.Ref.Kind == RefAffine && s.Ref.InnerStride != 0 {
			pf, err := g.ra.take()
			if err != nil {
				return err
			}
			g.pfCursor[i] = pf
			g.pfDist[i] = g.prefetchDistance(s.Ref.InnerStride)
		}
	}

	if multiOuter {
		b.Label(outerLbl)
	}

	// ---- outer head: reset cursors, counters, carried temps ----
	innerTrip := l.InnerTrip
	if g.unroll {
		innerTrip = l.InnerTrip / 2
	}
	b.MovI(regInnerCnt, innerTrip)
	for i := range l.Body {
		s := &l.Body[i]
		if g.cursor[i] == 0 {
			continue
		}
		if multiOuter {
			b.Mov(g.cursor[i], g.outerBase[i])
		} else {
			b.MovI(g.cursor[i], int64(c.layout.Base[s.Ref.Array])+s.Ref.Offset)
		}
		if g.pfCursor[i] != 0 {
			b.AddI(g.pfCursor[i], g.pfDist[i], g.cursor[i])
		}
	}
	for _, init := range l.Inits {
		r, err := g.intReg(init.Temp)
		if err != nil {
			return err
		}
		if init.IsImm {
			b.MovI(r, init.Imm)
		} else {
			b.MovI(r, int64(c.layout.Base[init.Array])+init.Offset)
		}
	}
	for _, ft := range l.FloatTemps {
		f, err := g.fpReg(ft)
		if err != nil {
			return err
		}
		b.SetF(f, 0) // bits(r0) = +0.0
	}

	// ---- SWP prologue: preload two iterations ----
	if g.swp {
		if err := g.emitSWPPrologue(); err != nil {
			return err
		}
	}

	// ---- inner loop ----
	b.Label(innerLbl)
	switch {
	case g.swp:
		if err := g.emitBody(true, false); err != nil { // compute+reload half A
			return err
		}
		if doPrefetch {
			g.emitPrefetches()
		}
		if err := g.emitBody(true, true); err != nil { // half B
			return err
		}
		if doPrefetch {
			g.emitPrefetches()
		}
	case g.unroll:
		for half := 0; half < 2; half++ {
			if err := g.emitBody(false, false); err != nil {
				return err
			}
			if doPrefetch {
				g.emitPrefetches()
			}
		}
	default:
		if err := g.emitBody(false, false); err != nil {
			return err
		}
		if doPrefetch {
			g.emitPrefetches()
		}
	}
	b.AddI(regInnerCnt, -1, regInnerCnt)
	b.CmpI(isa.CmpLt, predInner, predInner2, 0, regInnerCnt)
	if g.swp {
		b.BrCondSWP(predInner, innerLbl)
	} else {
		b.BrCond(predInner, innerLbl)
	}

	// ---- outer latch ----
	if multiOuter {
		for i := range l.Body {
			if g.outerBase[i] != 0 && l.Body[i].Ref.OuterStride != 0 {
				b.AddI(g.outerBase[i], l.Body[i].Ref.OuterStride, g.outerBase[i])
			}
		}
		b.AddI(regOuterCnt, -1, regOuterCnt)
		b.CmpI(isa.CmpLt, predOuter, predOuter2, 0, regOuterCnt)
		b.BrCond(predOuter, outerLbl)
	}
	b.Label(endLbl)
	return nil
}

// hasAffineRef reports whether the loop contains at least one strided
// affine reference (what the static prefetcher can analyze).
func (g *loopGen) hasAffineRef() bool {
	for i := range g.l.Body {
		s := &g.l.Body[i]
		if s.Ref != nil && s.Ref.Kind == RefAffine && s.Ref.InnerStride != 0 {
			return true
		}
	}
	return false
}

// prefetchDistance computes the byte distance for a static prefetch cursor:
// Mowry's "latency / shortest-path cycles" iteration count times the
// stride.
func (g *loopGen) prefetchDistance(stride int64) int64 {
	bodyInsts := len(g.l.Body) + 3
	estCycles := int64(bodyInsts+3) / 4
	if estCycles < 2 {
		estCycles = 2
	}
	iters := (int64(g.c.opts.MemLatency) + estCycles - 1) / estCycles
	if iters < 1 {
		iters = 1
	}
	if iters > 64 {
		iters = 64
	}
	return iters * stride
}

// emitPrefetches appends the loop's static lfetch instructions (one per
// prefetched reference, with the stride folded into the post-increment).
func (g *loopGen) emitPrefetches() {
	for i := range g.l.Body {
		if g.pfCursor[i] != 0 {
			g.c.b.Lfetch(g.pfCursor[i], g.l.Body[i].Ref.InnerStride)
			g.c.res.PrefetchesInserted++
		}
	}
}

// swpQualifies reports whether the software-pipelined schedule applies:
// even trip count, loads only from affine references, and no load
// destination that is loop-carried.
func (g *loopGen) swpQualifies() bool {
	if g.l.NoSWP || g.l.InnerTrip%2 != 0 {
		return false
	}
	carried := map[string]bool{}
	for _, in := range g.l.Inits {
		carried[in.Temp] = true
	}
	hasLoad := false
	defined := map[string]bool{}
	for i := range g.l.Body {
		s := &g.l.Body[i]
		switch s.Kind {
		case SLoadInt, SLoadFloat:
			if s.Ref.Kind != RefAffine {
				return false
			}
			if carried[s.Dst] {
				return false
			}
			// Used before defined in body order means loop-carried.
			if !defined[s.Dst] && usedBefore(g.l.Body[:i], s.Dst) {
				return false
			}
			hasLoad = true
		case SStoreInt, SStoreFloat:
			if s.Ref.Kind != RefAffine {
				return false
			}
		}
		if s.Dst != "" {
			defined[s.Dst] = true
		}
	}
	return hasLoad
}

func usedBefore(stmts []Stmt, temp string) bool {
	for i := range stmts {
		s := &stmts[i]
		if s.A == temp || s.B == temp || s.C == temp ||
			(s.Ref != nil && (s.Ref.IndexTemp == temp || s.Ref.PtrTemp == temp)) {
			return true
		}
	}
	return false
}

// emitSWPPrologue preloads the first two iterations into the primary and
// shadow buffers.
func (g *loopGen) emitSWPPrologue() error {
	g.shadow = make(map[string]isa.FReg)
	g.shadowI = make(map[string]isa.Reg)
	for i := range g.l.Body {
		s := &g.l.Body[i]
		switch s.Kind {
		case SLoadFloat:
			if _, ok := g.shadow[s.Dst]; !ok {
				f, err := g.ra.takeF()
				if err != nil {
					return err
				}
				g.shadow[s.Dst] = f
			}
		case SLoadInt:
			if _, ok := g.shadowI[s.Dst]; !ok {
				r, err := g.ra.take()
				if err != nil {
					return err
				}
				g.shadowI[s.Dst] = r
			}
		}
	}
	// Iteration 0 into primaries, iteration 1 into shadows.
	for pass := 0; pass < 2; pass++ {
		for i := range g.l.Body {
			s := &g.l.Body[i]
			if s.Kind != SLoadFloat && s.Kind != SLoadInt {
				continue
			}
			if err := g.emitLoad(s, i, pass == 1); err != nil {
				return err
			}
		}
	}
	return nil
}

// emitBody lowers the loop body once. Under SWP (swp true) loads are
// deferred to after the computes and target the half's buffer set; the
// computes read the buffer set loaded two iterations ago.
func (g *loopGen) emitBody(swp, shadowHalf bool) error {
	if !swp {
		for i := range g.l.Body {
			if err := g.emitStmt(&g.l.Body[i], i, false); err != nil {
				return err
			}
		}
		return nil
	}
	for i := range g.l.Body {
		s := &g.l.Body[i]
		if s.Kind == SLoadFloat || s.Kind == SLoadInt {
			continue // reload happens after the computes
		}
		if err := g.emitStmt(s, i, shadowHalf); err != nil {
			return err
		}
	}
	for i := range g.l.Body {
		s := &g.l.Body[i]
		if s.Kind == SLoadFloat || s.Kind == SLoadInt {
			if err := g.emitLoad(s, i, shadowHalf); err != nil {
				return err
			}
		}
	}
	return nil
}

// readInt returns the register holding temp for a read in the given half.
func (g *loopGen) readInt(temp string, shadowHalf bool) (isa.Reg, error) {
	if shadowHalf {
		if r, ok := g.shadowI[temp]; ok {
			return r, nil
		}
	}
	return g.intReg(temp)
}

func (g *loopGen) readFp(temp string, shadowHalf bool) (isa.FReg, error) {
	if shadowHalf {
		if f, ok := g.shadow[temp]; ok {
			return f, nil
		}
	}
	return g.fpReg(temp)
}

// refAddr emits any address computation for a non-affine ref and returns
// the register to use as the access base plus the post-increment to apply
// (affine refs fold their stride into the access).
func (g *loopGen) refAddr(s *Stmt, idx int, shadowHalf bool) (isa.Reg, int64, error) {
	r := s.Ref
	switch r.Kind {
	case RefAffine:
		return g.cursor[idx], r.InnerStride, nil
	case RefIndirect:
		idxReg, err := g.readInt(r.IndexTemp, shadowHalf)
		if err != nil {
			return 0, 0, err
		}
		base := g.arrayBase[r.Array]
		scr := g.scratch[idx]
		switch r.Scale {
		case 1:
			g.c.b.Add(scr, idxReg, base)
		case 2:
			g.c.b.ShlAdd(scr, idxReg, 1, base)
		case 4:
			g.c.b.ShlAdd(scr, idxReg, 2, base)
		case 8:
			g.c.b.ShlAdd(scr, idxReg, 3, base)
		default:
			return 0, 0, fmt.Errorf("compiler: unsupported indirect scale %d", r.Scale)
		}
		if r.Offset != 0 {
			g.c.b.AddI(scr, r.Offset, scr)
		}
		return scr, 0, nil
	case RefPointer:
		ptr, err := g.readInt(r.PtrTemp, shadowHalf)
		if err != nil {
			return 0, 0, err
		}
		if r.Offset == 0 {
			return ptr, 0, nil
		}
		scr := g.scratch[idx]
		g.c.b.AddI(scr, r.Offset, ptr)
		return scr, 0, nil
	}
	return 0, 0, fmt.Errorf("compiler: bad ref kind %d", r.Kind)
}

// emitLoad lowers a load statement; shadowHalf selects the SWP buffer set
// for the destination.
func (g *loopGen) emitLoad(s *Stmt, idx int, shadowHalf bool) error {
	base, inc, err := g.refAddr(s, idx, shadowHalf)
	if err != nil {
		return err
	}
	if s.Kind == SLoadFloat {
		dst, err := g.fpReg(s.Dst)
		if err != nil {
			return err
		}
		if shadowHalf {
			if f, ok := g.shadow[s.Dst]; ok {
				dst = f
			}
		}
		g.c.b.LdF(dst, base, inc)
		return nil
	}
	size := s.Size
	if size == 0 {
		size = 8
	}
	dst, err := g.intReg(s.Dst)
	if err != nil {
		return err
	}
	if shadowHalf {
		if r, ok := g.shadowI[s.Dst]; ok {
			dst = r
		}
	}
	g.c.b.Ld(size, dst, base, inc)
	return nil
}

// emitStmt lowers one statement (loads included when not under SWP).
func (g *loopGen) emitStmt(s *Stmt, idx int, shadowHalf bool) error {
	b := g.c.b
	switch s.Kind {
	case SLoadInt, SLoadFloat:
		return g.emitLoad(s, idx, shadowHalf)

	case SStoreInt:
		base, inc, err := g.refAddr(s, idx, shadowHalf)
		if err != nil {
			return err
		}
		src, err := g.readInt(s.A, shadowHalf)
		if err != nil {
			return err
		}
		size := s.Size
		if size == 0 {
			size = 8
		}
		b.St(size, base, src, inc)
	case SStoreFloat:
		base, inc, err := g.refAddr(s, idx, shadowHalf)
		if err != nil {
			return err
		}
		src, err := g.readFp(s.A, shadowHalf)
		if err != nil {
			return err
		}
		b.StF(base, src, inc)

	case SAddImm:
		a, err := g.readInt(s.A, shadowHalf)
		if err != nil {
			return err
		}
		d, err := g.intReg(s.Dst)
		if err != nil {
			return err
		}
		b.AddI(d, s.Imm, a)
	case SAdd:
		a, err := g.readInt(s.A, shadowHalf)
		if err != nil {
			return err
		}
		bb, err := g.readInt(s.B, shadowHalf)
		if err != nil {
			return err
		}
		d, err := g.intReg(s.Dst)
		if err != nil {
			return err
		}
		b.Add(d, a, bb)
	case SAnd, SXor:
		a, err := g.readInt(s.A, shadowHalf)
		if err != nil {
			return err
		}
		bb, err := g.readInt(s.B, shadowHalf)
		if err != nil {
			return err
		}
		d, err := g.intReg(s.Dst)
		if err != nil {
			return err
		}
		if s.Kind == SAnd {
			b.Emit(isa.Inst{Op: isa.OpAnd, R1: d, R2: a, R3: bb})
		} else {
			b.Emit(isa.Inst{Op: isa.OpXor, R1: d, R2: a, R3: bb})
		}
	case SShl:
		a, err := g.readInt(s.A, shadowHalf)
		if err != nil {
			return err
		}
		d, err := g.intReg(s.Dst)
		if err != nil {
			return err
		}
		b.Shl(d, a, s.Imm)

	case SFAdd, SFMul, SFSub:
		a, err := g.readFp(s.A, shadowHalf)
		if err != nil {
			return err
		}
		bb, err := g.readFp(s.B, shadowHalf)
		if err != nil {
			return err
		}
		d, err := g.fpReg(s.Dst)
		if err != nil {
			return err
		}
		switch s.Kind {
		case SFAdd:
			b.FAdd(d, a, bb)
		case SFMul:
			b.FMul(d, a, bb)
		default:
			b.FSub(d, a, bb)
		}
	case SFMA:
		a, err := g.readFp(s.A, shadowHalf)
		if err != nil {
			return err
		}
		bb, err := g.readFp(s.B, shadowHalf)
		if err != nil {
			return err
		}
		cc, err := g.readFp(s.C, shadowHalf)
		if err != nil {
			return err
		}
		d, err := g.fpReg(s.Dst)
		if err != nil {
			return err
		}
		b.Fma(d, a, bb, cc)

	case SCvtFI:
		a, err := g.readFp(s.A, shadowHalf)
		if err != nil {
			return err
		}
		d, err := g.intReg(s.Dst)
		if err != nil {
			return err
		}
		b.FCvtFX(d, a)
	case SCvtIF:
		a, err := g.readInt(s.A, shadowHalf)
		if err != nil {
			return err
		}
		d, err := g.fpReg(s.Dst)
		if err != nil {
			return err
		}
		b.FCvtXF(d, a)
	case SGetSig:
		a, err := g.readFp(s.A, shadowHalf)
		if err != nil {
			return err
		}
		d, err := g.intReg(s.Dst)
		if err != nil {
			return err
		}
		b.GetF(d, a)

	default:
		return fmt.Errorf("compiler: unknown stmt kind %d", s.Kind)
	}
	return nil
}
