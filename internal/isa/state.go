package isa

import (
	"fmt"
	"math"
)

// ArchState is a snapshot of the architectural register state: everything a
// program can observe through its registers, and nothing the timing model
// adds. Both execution engines — the pipelined interpreter in internal/cpu
// and the reference oracle in internal/oracle — can extract one, which is
// what makes differential testing possible: two engines agree exactly when
// their ArchStates and data memories are bit-identical.
type ArchState struct {
	PC uint64
	GR [NumGR]uint64
	FR [NumFR]float64
	PR [NumPR]bool
	BR [NumBR]uint64
}

// StateCompare configures an architectural-state comparison.
type StateCompare struct {
	// IgnoreReserved excludes the runtime-reserved scratch state (r27-r30
	// and p6) from the comparison. ADORE's injected prefetch code is
	// allowed — required, even — to leave values there; a patched run is
	// architecturally equivalent to the plain run everywhere else.
	IgnoreReserved bool

	// MaxDiffs bounds the report length (default 8).
	MaxDiffs int
}

// Diff compares two snapshots and describes every mismatch, up to
// opt.MaxDiffs entries. Floating registers compare by bit pattern, so NaNs
// with different payloads are a difference and -0 != +0.
func (a *ArchState) Diff(b *ArchState, opt StateCompare) []string {
	max := opt.MaxDiffs
	if max <= 0 {
		max = 8
	}
	var out []string
	add := func(format string, args ...interface{}) bool {
		if len(out) < max {
			out = append(out, fmt.Sprintf(format, args...))
		}
		return len(out) < max
	}
	if a.PC != b.PC {
		add("pc: %#x vs %#x", a.PC, b.PC)
	}
	for r := 0; r < NumGR; r++ {
		if opt.IgnoreReserved && Reg(r) >= ReservedGRFirst && Reg(r) <= ReservedGRLast {
			continue
		}
		if a.GR[r] != b.GR[r] && !add("r%d: %#x vs %#x", r, a.GR[r], b.GR[r]) {
			return out
		}
	}
	for r := 0; r < NumFR; r++ {
		if math.Float64bits(a.FR[r]) != math.Float64bits(b.FR[r]) &&
			!add("f%d: %v (%#x) vs %v (%#x)", r,
				a.FR[r], math.Float64bits(a.FR[r]), b.FR[r], math.Float64bits(b.FR[r])) {
			return out
		}
	}
	for p := 0; p < NumPR; p++ {
		if opt.IgnoreReserved && PReg(p) == ReservedPR {
			continue
		}
		if a.PR[p] != b.PR[p] && !add("p%d: %v vs %v", p, a.PR[p], b.PR[p]) {
			return out
		}
	}
	for r := 0; r < NumBR; r++ {
		if a.BR[r] != b.BR[r] && !add("b%d: %#x vs %#x", r, a.BR[r], b.BR[r]) {
			return out
		}
	}
	return out
}

// Equal reports whether the two snapshots match under opt.
func (a *ArchState) Equal(b *ArchState, opt StateCompare) bool {
	o := opt
	o.MaxDiffs = 1
	return len(a.Diff(b, o)) == 0
}
