package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestUnitOfCoversAllOps(t *testing.T) {
	for op := OpNop; op < numOps; op++ {
		u := UnitOf(op)
		if op != OpNop && u == UnitNone {
			t.Errorf("op %s has no unit", op)
		}
	}
}

func TestSlotAccepts(t *testing.T) {
	cases := []struct {
		slot, need Unit
		want       bool
	}{
		{UnitM, UnitM, true},
		{UnitM, UnitA, true},
		{UnitI, UnitA, true},
		{UnitI, UnitM, false},
		{UnitB, UnitA, false},
		{UnitF, UnitF, true},
		{UnitM, UnitF, false},
		{UnitLX, UnitLX, true},
		{UnitI, UnitLX, false},
		{UnitB, UnitNone, true},
	}
	for _, c := range cases {
		if got := SlotAccepts(c.slot, c.need); got != c.want {
			t.Errorf("SlotAccepts(%v, %v) = %v, want %v", c.slot, c.need, got, c.want)
		}
	}
}

func TestTemplateFor(t *testing.T) {
	cases := []struct {
		units [3]Unit
		want  Template
		ok    bool
	}{
		{[3]Unit{UnitM, UnitI, UnitI}, TmplMII, true},
		{[3]Unit{UnitM, UnitM, UnitI}, TmplMMI, true},
		{[3]Unit{UnitM, UnitM, UnitF}, TmplMMF, true},
		{[3]Unit{UnitM, UnitI, UnitB}, TmplMIB, true},
		{[3]Unit{UnitB, UnitB, UnitB}, TmplBBB, true},
		{[3]Unit{UnitA, UnitA, UnitA}, TmplMII, true},
		{[3]Unit{UnitNone, UnitNone, UnitNone}, TmplMII, true},
		{[3]Unit{UnitF, UnitF, UnitF}, 0, false},
		{[3]Unit{UnitM, UnitLX, UnitLX}, TmplMLX, true},
	}
	for _, c := range cases {
		got, ok := TemplateFor(c.units)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("TemplateFor(%v) = %v, %v; want %v, %v", c.units, got, ok, c.want, c.ok)
		}
	}
}

func TestBundleValidate(t *testing.T) {
	good := Bundle{
		Tmpl: TmplMMI,
		Slots: [3]Inst{
			{Op: OpLd8, R1: 4, R3: 5},
			{Op: OpLfetch, R3: 27, PostInc: 12},
			{Op: OpAddI, R1: 14, Imm: 4, R3: 14},
		},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid bundle rejected: %v", err)
	}
	bad := Bundle{
		Tmpl:  TmplMII,
		Slots: [3]Inst{{Op: OpLd8, R1: 4, R3: 5}, {Op: OpLdF, F1: 2, R3: 5}, Nop},
	}
	if err := bad.Validate(); err == nil {
		t.Fatal("load in I slot accepted")
	}
	badLX := Bundle{Tmpl: TmplMII, Slots: [3]Inst{Nop, {Op: OpMovI, R1: 4, Imm: 1 << 40}, Nop}}
	if err := badLX.Validate(); err == nil {
		t.Fatal("movl outside MLX accepted")
	}
	goodLX := Bundle{Tmpl: TmplMLX, Slots: [3]Inst{Nop, {Op: OpMovI, R1: 4, Imm: 1 << 40}, Nop}}
	if err := goodLX.Validate(); err != nil {
		t.Fatalf("valid MLX rejected: %v", err)
	}
}

func TestFreeSlot(t *testing.T) {
	b := Bundle{
		Tmpl:  TmplMMI,
		Slots: [3]Inst{{Op: OpLd8, R1: 4, R3: 5}, Nop, Nop},
	}
	if got := b.FreeSlot(UnitM); got != 1 {
		t.Errorf("FreeSlot(M) = %d, want 1", got)
	}
	if got := b.FreeSlot(UnitA); got != 1 {
		t.Errorf("FreeSlot(A) = %d, want 1", got)
	}
	if got := b.FreeSlot(UnitF); got != -1 {
		t.Errorf("FreeSlot(F) = %d, want -1", got)
	}
	// Slots after a branch are not offered.
	br := Bundle{Tmpl: TmplMBB, Slots: [3]Inst{Nop, {Op: OpBr, Target: 64}, Nop}}
	if got := br.FreeSlot(UnitM); got != 0 {
		t.Errorf("FreeSlot before branch = %d, want 0", got)
	}
	br.Slots[0] = Inst{Op: OpLd8, R1: 4, R3: 5}
	if got := br.FreeSlot(UnitM); got != -1 {
		t.Errorf("FreeSlot across branch = %d, want -1", got)
	}
}

func TestBranchBundle(t *testing.T) {
	b := BranchBundle(0x1000)
	if err := b.Validate(); err != nil {
		t.Fatalf("branch bundle invalid: %v", err)
	}
	if b.Slots[2].Op != OpBr || b.Slots[2].Target != 0x1000 {
		t.Fatalf("unexpected branch bundle %v", b)
	}
}

func TestDefUseDirectArrayPattern(t *testing.T) {
	// Fig. 5A of the paper: post-increment store/load updating r14.
	st := Inst{Op: OpSt4, R2: 20, R3: 14, PostInc: 4}
	if r, ok := st.PostIncDef(); !ok || r != 14 {
		t.Fatalf("post-inc def = %v, %v", r, ok)
	}
	if _, ok := st.RegDef(); ok {
		t.Fatal("store should not define a result register")
	}
	uses := st.RegUses(nil)
	if len(uses) != 2 || uses[0] != 20 || uses[1] != 14 {
		t.Fatalf("store uses = %v", uses)
	}
	ld := Inst{Op: OpLd4, R1: 20, R3: 14}
	if r, ok := ld.RegDef(); !ok || r != 20 {
		t.Fatalf("load def = %v, %v", r, ok)
	}
}

func TestInstStringSmoke(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpLd8, R1: 34, R3: 11}, "ld8 r34 = [r11]"},
		{Inst{Op: OpAddI, R1: 11, Imm: 104, R3: 34}, "add r11 = 104, r34"},
		{Inst{Op: OpLfetch, R3: 27, PostInc: 12}, "lfetch [r27], 12"},
		{Inst{Op: OpShlAdd, R1: 28, R2: 28, Imm: 2, R3: 11}, "shladd r28 = r28, 2, r11"},
		{Inst{Op: OpLdS, R1: 28, R3: 27, PostInc: 4}, "ld8.s r28 = [r27], 4"},
		{Inst{Op: OpCmpI, Rel: CmpLt, P1: 1, P2: 2, Imm: 0, R3: 9}, "cmp.lt p1, p2 = 0, r9"},
		{Inst{Op: OpBrCond, QP: 1, Target: 0x40}, "(p1) br.cond 0x40"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestOpStringsUnique(t *testing.T) {
	seen := map[string]Op{}
	for op := OpNop; op < numOps; op++ {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("op %d has no name", op)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("ops %d and %d share name %q", prev, op, s)
		}
		seen[s] = op
	}
}

// Property: every def reported by RegDef is also absent from a fresh
// instruction's use list unless the op genuinely reads it, and post-inc
// defs only occur on memory ops.
func TestPostIncDefProperty(t *testing.T) {
	f := func(opRaw uint8, r3 uint8, inc int16) bool {
		op := Op(opRaw % uint8(numOps))
		in := Inst{Op: op, R3: Reg(r3 % NumGR), PostInc: int64(inc)}
		r, ok := in.PostIncDef()
		if ok && (!IsMem(op) || in.PostInc == 0 || r == 0) {
			return false
		}
		if !ok && IsMem(op) && in.PostInc != 0 && in.R3 != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
