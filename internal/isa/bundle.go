package isa

import (
	"fmt"
	"strings"
)

// Template names the slot typing of a bundle. Only the templates the
// code generators in this repository emit are enumerated; stop bits are
// not tracked because the interpreter executes slots sequentially and the
// timing model splits issue groups on detected hazards (DESIGN.md §2).
type Template uint8

const (
	TmplMII Template = iota
	TmplMLX          // slot0 M, slots 1-2 form a movl
	TmplMMI
	TmplMFI
	TmplMMF
	TmplMIB
	TmplMMB
	TmplMFB
	TmplMBB
	TmplBBB
	numTemplates
)

var templateUnits = [numTemplates][3]Unit{
	TmplMII: {UnitM, UnitI, UnitI},
	TmplMLX: {UnitM, UnitLX, UnitLX},
	TmplMMI: {UnitM, UnitM, UnitI},
	TmplMFI: {UnitM, UnitF, UnitI},
	TmplMMF: {UnitM, UnitM, UnitF},
	TmplMIB: {UnitM, UnitI, UnitB},
	TmplMMB: {UnitM, UnitM, UnitB},
	TmplMFB: {UnitM, UnitF, UnitB},
	TmplMBB: {UnitM, UnitB, UnitB},
	TmplBBB: {UnitB, UnitB, UnitB},
}

var templateNames = [numTemplates]string{
	"MII", "MLX", "MMI", "MFI", "MMF", "MIB", "MMB", "MFB", "MBB", "BBB",
}

func (t Template) String() string {
	if int(t) < len(templateNames) {
		return templateNames[t]
	}
	return fmt.Sprintf("tmpl(%d)", uint8(t))
}

// SlotUnits reports the port class of each slot under template t. The
// second result is false when t is not one of the enumerated templates;
// callers must not treat the zero [3]Unit of an out-of-range template as
// a legal slot typing.
func (t Template) SlotUnits() ([3]Unit, bool) {
	if int(t) >= len(templateUnits) {
		return [3]Unit{}, false
	}
	return templateUnits[t], true
}

// SlotAccepts reports whether an instruction needing unit u may occupy a
// slot typed st. A-type integer ops fit M or I slots; nops fit anywhere;
// movl requires the LX pair.
func SlotAccepts(st, u Unit) bool {
	switch u {
	case UnitNone:
		return true
	case UnitA:
		return st == UnitM || st == UnitI || st == UnitLX
	case UnitLX:
		return st == UnitLX
	default:
		return st == u
	}
}

// Bundle is three instruction slots under a template. Bundles are the unit
// of code addressing (16 bytes) and of patching: ADORE replaces the first
// bundle of a selected trace with a branch bundle.
type Bundle struct {
	Tmpl  Template
	Slots [3]Inst
}

// Validate checks that each slot's instruction is compatible with the
// template's slot typing. A movl (UnitLX) must sit in slot 1 of an MLX
// bundle with slot 2 a nop.
func (b Bundle) Validate() error {
	units, ok := b.Tmpl.SlotUnits()
	if !ok {
		return fmt.Errorf("isa: unknown bundle template %s", b.Tmpl)
	}
	for i, in := range b.Slots {
		need := UnitOf(in.Op)
		if need == UnitLX {
			if b.Tmpl != TmplMLX || i != 1 {
				return fmt.Errorf("isa: movl must occupy slot 1 of an MLX bundle, found in slot %d of %s", i, b.Tmpl)
			}
			if b.Slots[2].Op != OpNop {
				return fmt.Errorf("isa: slot 2 of an MLX bundle must be nop")
			}
			continue
		}
		if b.Tmpl == TmplMLX && i == 2 {
			if in.Op != OpNop {
				return fmt.Errorf("isa: slot 2 of an MLX bundle must be nop")
			}
			continue
		}
		if !SlotAccepts(units[i], need) {
			return fmt.Errorf("isa: %s (unit %v) cannot occupy slot %d (unit %v) of template %s",
				in.Op, need, i, units[i], b.Tmpl)
		}
	}
	return nil
}

// NopBundle returns an MII bundle of three nops.
func NopBundle() Bundle { return Bundle{Tmpl: TmplMII} }

// BranchBundle returns the patch bundle ADORE writes over a trace entry:
// [nop, nop, br target] under template MIB.
func BranchBundle(target uint64) Bundle {
	return Bundle{
		Tmpl:  TmplMIB,
		Slots: [3]Inst{Nop, Nop, {Op: OpBr, Target: target}},
	}
}

// FreeSlot returns the index of the first nop slot whose template unit can
// accept an instruction of unit u, or -1 if the bundle has none. Branch
// slots are never offered to non-branch instructions and slot reuse never
// crosses a branch: slots after a branch instruction in the same bundle are
// not reachable in a straightened trace, so they are not offered either.
func (b Bundle) FreeSlot(u Unit) int {
	units, ok := b.Tmpl.SlotUnits()
	if !ok {
		return -1
	}
	for i := 0; i < 3; i++ {
		if IsBranch(b.Slots[i].Op) {
			return -1
		}
		if b.Slots[i].Op == OpNop && SlotAccepts(units[i], u) && units[i] != UnitLX {
			return i
		}
	}
	return -1
}

// String renders the bundle on one line: "{ MMI: ld8 r4 = [r5]; ...; nop }".
func (b Bundle) String() string {
	parts := make([]string, 0, 3)
	for _, in := range b.Slots {
		parts = append(parts, in.String())
	}
	return fmt.Sprintf("{ %s: %s }", b.Tmpl, strings.Join(parts, "; "))
}

// TemplateFor picks the cheapest template able to host the given three
// units in order, or reports false when none fits. It is used by the
// assembler's automatic bundler.
func TemplateFor(units [3]Unit) (Template, bool) {
	for t := TmplMII; t < numTemplates; t++ {
		slots := templateUnits[t]
		ok := true
		for i := 0; i < 3; i++ {
			if !SlotAccepts(slots[i], units[i]) {
				ok = false
				break
			}
		}
		if ok {
			return t, true
		}
	}
	return 0, false
}

// AssignSlots finds a template and an order-preserving slot assignment for
// up to three instructions, padding skipped slots with nops. It returns
// the per-instruction slot indices. MLX is excluded — the assembler
// handles movl separately.
func AssignSlots(units []Unit) (Template, []int, bool) {
	if len(units) > 3 {
		return 0, nil, false
	}
	for t := TmplMII; t < numTemplates; t++ {
		if t == TmplMLX {
			continue
		}
		slots := templateUnits[t]
		assign := make([]int, len(units))
		j := 0
		ok := true
		for i, u := range units {
			for j < 3 && !SlotAccepts(slots[j], u) {
				j++
			}
			if j >= 3 {
				ok = false
				break
			}
			assign[i] = j
			j++
		}
		if ok {
			return t, assign, true
		}
	}
	return 0, nil, false
}

// RegUses appends the general registers read by in to dst and returns it.
// The qualifying predicate and predicate sources are not included.
func (in Inst) RegUses(dst []Reg) []Reg {
	switch in.Op {
	case OpAdd, OpSub, OpAnd, OpOr, OpXor:
		dst = append(dst, in.R2, in.R3)
	case OpAddI, OpMov, OpSxt4, OpZxt4:
		dst = append(dst, in.R3)
	case OpShlAdd:
		dst = append(dst, in.R2, in.R3)
	case OpShl, OpShr:
		dst = append(dst, in.R2)
	case OpCmp:
		dst = append(dst, in.R2, in.R3)
	case OpCmpI:
		dst = append(dst, in.R3)
	case OpLd1, OpLd2, OpLd4, OpLd8, OpLdS, OpLdF, OpLfetch:
		dst = append(dst, in.R3)
	case OpSt1, OpSt2, OpSt4, OpSt8:
		dst = append(dst, in.R2, in.R3)
	case OpStF:
		dst = append(dst, in.R3)
	case OpSetF, OpFCvtXF:
		dst = append(dst, in.R2)
	}
	return dst
}

// RegDef reports the general register written by in, if any. Memory ops
// with a post-increment also define their base register; that is reported
// separately by PostIncDef.
func (in Inst) RegDef() (Reg, bool) {
	switch in.Op {
	case OpAdd, OpSub, OpAddI, OpAnd, OpOr, OpXor, OpShlAdd, OpMov, OpMovI,
		OpShl, OpShr, OpSxt4, OpZxt4, OpGetF, OpFCvtFX,
		OpLd1, OpLd2, OpLd4, OpLd8, OpLdS:
		if in.R1 != 0 {
			return in.R1, true
		}
	}
	return 0, false
}

// PostIncDef reports the base register updated by a post-increment memory
// op, if any.
func (in Inst) PostIncDef() (Reg, bool) {
	if IsMem(in.Op) && in.PostInc != 0 && in.R3 != 0 {
		return in.R3, true
	}
	return 0, false
}

// FRegDef reports the floating register written by in, if any.
func (in Inst) FRegDef() (FReg, bool) {
	switch in.Op {
	case OpLdF, OpFma, OpFAdd, OpFMul, OpFSub, OpFNeg, OpSetF, OpFCvtXF:
		if in.F1 != 0 {
			return in.F1, true
		}
	}
	return 0, false
}

// FRegUses appends the floating registers read by in to dst.
func (in Inst) FRegUses(dst []FReg) []FReg {
	switch in.Op {
	case OpFma:
		dst = append(dst, in.F2, in.F3, in.F4)
	case OpFAdd, OpFMul, OpFSub:
		dst = append(dst, in.F2, in.F3)
	case OpFNeg, OpGetF, OpFCvtFX:
		dst = append(dst, in.F2)
	case OpStF:
		dst = append(dst, in.F1)
	}
	return dst
}
