// Package isa defines an IA-64-like instruction set used by the ADORE
// reproduction: 128 general registers, 64 predicates, instruction bundles of
// three typed slots, post-increment memory operations, non-faulting
// speculative loads (ld.s) and data prefetch (lfetch).
//
// The package is pure data: execution semantics live in internal/cpu and
// timing in internal/cpu's issue model. Instructions here are structured
// values rather than encoded bits; addresses are byte addresses where each
// bundle occupies 16 bytes and a PC addresses a (bundle, slot) pair as
// bundleAddr+slot, exactly like IA-64's low-order slot bits.
package isa

import (
	"fmt"
	"strings"
)

// Reg names a general (integer) register r0..r127. r0 is hardwired to zero,
// writes to it are discarded. The ADORE register-reservation convention uses
// r27..r30 as the compiler-reserved scratch registers for runtime
// prefetching, and p6 as the reserved predicate.
type Reg uint8

// FReg names a floating-point register f0..f127. f0 reads as 0.0 and f1 as
// 1.0, as on IA-64.
type FReg uint8

// PReg names a predicate register p0..p63. p0 is hardwired true.
type PReg uint8

// BReg names a branch register b0..b7.
type BReg uint8

// NumGR, NumFR, NumPR and NumBR size the architectural register files.
const (
	NumGR = 128
	NumFR = 128
	NumPR = 64
	NumBR = 8
)

// Reserved registers handed to the runtime optimizer when the program is
// compiled with register reservation (the paper's "third approach":
// "we ask the static compiler to reserve four global integer registers
// (r27-r30) and one global predicate register (p6)").
const (
	ReservedGRFirst Reg  = 27
	ReservedGRLast  Reg  = 30
	ReservedPR      PReg = 6
)

// BundleBytes is the size of one instruction bundle. PCs advance by slot
// within a bundle and by BundleBytes across bundles.
const BundleBytes = 16

// Op enumerates instruction opcodes. The set is a compact subset of IA-64
// sufficient for the kernels in this reproduction and for the code the
// runtime prefetcher itself emits.
type Op uint8

const (
	// OpNop fills unused slots.
	OpNop Op = iota

	// Integer ALU (A-type: may issue on an M or I port).
	OpAdd    // r1 = r2 + r3
	OpSub    // r1 = r2 - r3
	OpAddI   // r1 = imm14 + r3
	OpAnd    // r1 = r2 & r3
	OpOr     // r1 = r2 | r3
	OpXor    // r1 = r2 ^ r3
	OpShlAdd // r1 = (r2 << imm) + r3, imm in 1..4
	OpMov    // r1 = r3 (pseudo for add r1 = 0, r3)
	OpMovI   // r1 = imm64 (movl; occupies an L+X double slot)

	// Integer ops that require an I port.
	OpShl  // r1 = r2 << imm
	OpShr  // r1 = r2 >> imm (unsigned)
	OpSxt4 // r1 = sign-extend low 32 bits of r3
	OpZxt4 // r1 = zero-extend low 32 bits of r3

	// Compare (A-type). Writes the predicate pair P1 = rel, P2 = !rel.
	OpCmp  // p1, p2 = r2 REL r3
	OpCmpI // p1, p2 = imm REL r3

	// Memory (M port). R1 = destination, R3 = address base register.
	// PostInc, when non-zero, adds the immediate to R3 after the access.
	OpLd1 // r1 = zx1 [r3]
	OpLd2 // r1 = zx2 [r3]
	OpLd4 // r1 = zx4 [r3]
	OpLd8 // r1 = [r3]
	OpLdS // r1 = [r3] speculative, non-faulting (ld8.s)

	OpSt1 // [r3] = low 1 byte of r2
	OpSt2 // [r3] = low 2 bytes of r2
	OpSt4 // [r3] = low 4 bytes of r2
	OpSt8 // [r3] = r2

	OpLfetch // prefetch the line containing [r3]; never faults, never stalls

	// Floating point. F1 = destination. Loads/stores use R3 as base.
	OpLdF  // f1 = [r3] (8-byte IEEE double; bypasses L1D like Itanium FP loads)
	OpStF  // [r3] = f1
	OpFma  // f1 = f2*f3 + f4
	OpFAdd // f1 = f2 + f3
	OpFMul // f1 = f2 * f3
	OpFSub // f1 = f2 - f3
	OpFNeg // f1 = -f2

	// Transfers between the register files (the "fp-int conversion" the
	// paper cites as a slice-analysis failure case, e.g. in lucas).
	OpGetF   // r1 = significand bits of f2 (getf.sig)
	OpSetF   // f1 = r2 bits (setf.sig)
	OpFCvtFX // r1 = int64(f2) (fcvt.fx + getf)
	OpFCvtXF // f1 = float64(r2)

	// Branches (B port). Target is an absolute bundle address.
	OpBr     // unconditional
	OpBrCond // taken when the qualifying predicate is true
	OpBrCall // call: pushes return PC to B register then jumps
	OpBrRet  // return to B register
	OpHalt   // stops the machine (stands in for the program's exit path)

	// OpAlloc marks a register-stack frame allocation. Semantically a
	// no-op in this model; the runtime optimizer treats it as a barrier
	// when searching for free registers.
	OpAlloc

	numOps
)

// CmpRel is the relation tested by OpCmp/OpCmpI.
type CmpRel uint8

const (
	CmpEq CmpRel = iota
	CmpNe
	CmpLt  // signed <
	CmpLe  // signed <=
	CmpGt  // signed >
	CmpGe  // signed >=
	CmpLtU // unsigned <
	CmpGeU // unsigned >=
)

func (r CmpRel) String() string {
	switch r {
	case CmpEq:
		return "eq"
	case CmpNe:
		return "ne"
	case CmpLt:
		return "lt"
	case CmpLe:
		return "le"
	case CmpGt:
		return "gt"
	case CmpGe:
		return "ge"
	case CmpLtU:
		return "ltu"
	case CmpGeU:
		return "geu"
	}
	return fmt.Sprintf("rel(%d)", uint8(r))
}

// Compare evaluates rel over two register values. It is the single
// definition of comparison semantics, shared by the pipelined interpreter
// (internal/cpu) and the reference oracle (internal/oracle) so the two
// cannot drift apart.
func Compare(rel CmpRel, a, b uint64) bool {
	switch rel {
	case CmpEq:
		return a == b
	case CmpNe:
		return a != b
	case CmpLt:
		return int64(a) < int64(b)
	case CmpLe:
		return int64(a) <= int64(b)
	case CmpGt:
		return int64(a) > int64(b)
	case CmpGe:
		return int64(a) >= int64(b)
	case CmpLtU:
		return a < b
	case CmpGeU:
		return a >= b
	}
	return false
}

// Inst is one instruction. Field roles follow IA-64 conventions:
//
//	R1: integer destination
//	R2: integer source (value operand; store data)
//	R3: integer source (second operand; memory address base)
//	F1..F4: floating destination and sources
//	P1, P2: predicate destinations of a compare
//	QP: qualifying predicate; the instruction retires as a no-op when false
//	Imm: immediate operand (adds, shifts, compares, movl)
//	PostInc: post-increment applied to R3 by memory operations
//	Target: absolute branch target (bundle address)
//	B: branch register for call/return linkage
type Inst struct {
	Op      Op
	QP      PReg
	R1      Reg
	R2      Reg
	R3      Reg
	F1      FReg
	F2      FReg
	F3      FReg
	F4      FReg
	P1      PReg
	P2      PReg
	B       BReg
	Rel     CmpRel
	Imm     int64
	PostInc int64
	Target  uint64

	// Spec marks a load as speculative/non-faulting (the ld.s form). The
	// runtime prefetcher emits speculative clones of feeder loads so its
	// advanced copies can never raise exceptions (§3.6: "Prefetch
	// instructions use reserved registers and non-faulting loads").
	Spec bool

	// SWPLoop marks the back-edge branch of a software-pipelined loop
	// (the stand-in for br.ctop's rotating-register semantics; see
	// DESIGN.md §6). ADORE's trace selector refuses to optimize loops
	// whose back edge carries this mark, matching the paper's "our
	// dynamic optimization currently does not handle software-pipelined
	// loops with rotation registers".
	SWPLoop bool
}

// Nop is the canonical no-op instruction.
var Nop = Inst{Op: OpNop}

// Unit is the execution-port class an instruction requires.
type Unit uint8

const (
	UnitNone Unit = iota // nop: issues anywhere
	UnitA                // integer ALU op acceptable on M or I ports
	UnitM                // memory port
	UnitI                // integer/shift port
	UnitF                // floating-point port
	UnitB                // branch port
	UnitLX               // movl: occupies an I port plus the following slot
)

// UnitOf reports the port class required by op.
func UnitOf(op Op) Unit {
	switch op {
	case OpNop:
		return UnitNone
	case OpAdd, OpSub, OpAddI, OpAnd, OpOr, OpXor, OpShlAdd, OpMov, OpCmp, OpCmpI:
		return UnitA
	case OpMovI:
		return UnitLX
	case OpShl, OpShr, OpSxt4, OpZxt4:
		return UnitI
	case OpLd1, OpLd2, OpLd4, OpLd8, OpLdS, OpSt1, OpSt2, OpSt4, OpSt8,
		OpLfetch, OpLdF, OpStF, OpGetF, OpSetF, OpAlloc:
		return UnitM
	case OpFma, OpFAdd, OpFMul, OpFSub, OpFNeg, OpFCvtFX, OpFCvtXF:
		return UnitF
	case OpBr, OpBrCond, OpBrCall, OpBrRet, OpHalt:
		return UnitB
	}
	return UnitNone
}

// IsLoad reports whether op reads data memory into a register.
func IsLoad(op Op) bool {
	switch op {
	case OpLd1, OpLd2, OpLd4, OpLd8, OpLdS, OpLdF:
		return true
	}
	return false
}

// IsStore reports whether op writes data memory.
func IsStore(op Op) bool {
	switch op {
	case OpSt1, OpSt2, OpSt4, OpSt8, OpStF:
		return true
	}
	return false
}

// IsMem reports whether op accesses data memory (including lfetch).
func IsMem(op Op) bool { return IsLoad(op) || IsStore(op) || op == OpLfetch }

// IsBranch reports whether op transfers control.
func IsBranch(op Op) bool {
	switch op {
	case OpBr, OpBrCond, OpBrCall, OpBrRet, OpHalt:
		return true
	}
	return false
}

// AccessBytes reports the number of bytes moved by a memory op (0 for
// lfetch, which touches a whole line but moves no architectural data).
func AccessBytes(op Op) int {
	switch op {
	case OpLd1, OpSt1:
		return 1
	case OpLd2, OpSt2:
		return 2
	case OpLd4, OpSt4:
		return 4
	case OpLd8, OpLdS, OpSt8, OpLdF, OpStF:
		return 8
	}
	return 0
}

func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

var opNames = [...]string{
	OpNop: "nop", OpAdd: "add", OpSub: "sub", OpAddI: "addi", OpAnd: "and",
	OpOr: "or", OpXor: "xor", OpShlAdd: "shladd", OpMov: "mov", OpMovI: "movl",
	OpShl: "shl", OpShr: "shr", OpSxt4: "sxt4", OpZxt4: "zxt4",
	OpCmp: "cmp", OpCmpI: "cmpi",
	OpLd1: "ld1", OpLd2: "ld2", OpLd4: "ld4", OpLd8: "ld8", OpLdS: "ld8.s",
	OpSt1: "st1", OpSt2: "st2", OpSt4: "st4", OpSt8: "st8",
	OpLfetch: "lfetch", OpLdF: "ldfd", OpStF: "stfd",
	OpFma: "fma", OpFAdd: "fadd", OpFMul: "fmul", OpFSub: "fsub", OpFNeg: "fneg",
	OpGetF: "getf.sig", OpSetF: "setf.sig", OpFCvtFX: "fcvt.fx", OpFCvtXF: "fcvt.xf",
	OpBr: "br", OpBrCond: "br.cond", OpBrCall: "br.call", OpBrRet: "br.ret",
	OpHalt: "halt", OpAlloc: "alloc",
}

// String renders the instruction in a pseudo-IA-64 syntax, e.g.
// "(p6) ld8 r34 = [r11], 8".
func (in Inst) String() string {
	var b strings.Builder
	if in.QP != 0 {
		fmt.Fprintf(&b, "(p%d) ", in.QP)
	}
	switch in.Op {
	case OpNop:
		b.WriteString("nop")
	case OpAdd, OpSub, OpAnd, OpOr, OpXor:
		fmt.Fprintf(&b, "%s r%d = r%d, r%d", in.Op, in.R1, in.R2, in.R3)
	case OpAddI:
		fmt.Fprintf(&b, "add r%d = %d, r%d", in.R1, in.Imm, in.R3)
	case OpShlAdd:
		fmt.Fprintf(&b, "shladd r%d = r%d, %d, r%d", in.R1, in.R2, in.Imm, in.R3)
	case OpMov:
		fmt.Fprintf(&b, "mov r%d = r%d", in.R1, in.R3)
	case OpMovI:
		fmt.Fprintf(&b, "movl r%d = %d", in.R1, in.Imm)
	case OpShl:
		fmt.Fprintf(&b, "shl r%d = r%d, %d", in.R1, in.R2, in.Imm)
	case OpShr:
		fmt.Fprintf(&b, "shr r%d = r%d, %d", in.R1, in.R2, in.Imm)
	case OpSxt4, OpZxt4:
		fmt.Fprintf(&b, "%s r%d = r%d", in.Op, in.R1, in.R3)
	case OpCmp:
		fmt.Fprintf(&b, "cmp.%s p%d, p%d = r%d, r%d", in.Rel, in.P1, in.P2, in.R2, in.R3)
	case OpCmpI:
		fmt.Fprintf(&b, "cmp.%s p%d, p%d = %d, r%d", in.Rel, in.P1, in.P2, in.Imm, in.R3)
	case OpLd1, OpLd2, OpLd4, OpLd8, OpLdS:
		suffix := ""
		if in.Spec && in.Op != OpLdS {
			suffix = ".s"
		}
		fmt.Fprintf(&b, "%s%s r%d = [r%d]", in.Op, suffix, in.R1, in.R3)
		if in.PostInc != 0 {
			fmt.Fprintf(&b, ", %d", in.PostInc)
		}
	case OpSt1, OpSt2, OpSt4, OpSt8:
		fmt.Fprintf(&b, "%s [r%d] = r%d", in.Op, in.R3, in.R2)
		if in.PostInc != 0 {
			fmt.Fprintf(&b, ", %d", in.PostInc)
		}
	case OpLfetch:
		fmt.Fprintf(&b, "lfetch [r%d]", in.R3)
		if in.PostInc != 0 {
			fmt.Fprintf(&b, ", %d", in.PostInc)
		}
	case OpLdF:
		fmt.Fprintf(&b, "ldfd f%d = [r%d]", in.F1, in.R3)
		if in.PostInc != 0 {
			fmt.Fprintf(&b, ", %d", in.PostInc)
		}
	case OpStF:
		fmt.Fprintf(&b, "stfd [r%d] = f%d", in.R3, in.F1)
		if in.PostInc != 0 {
			fmt.Fprintf(&b, ", %d", in.PostInc)
		}
	case OpFma:
		fmt.Fprintf(&b, "fma f%d = f%d, f%d, f%d", in.F1, in.F2, in.F3, in.F4)
	case OpFAdd, OpFMul, OpFSub:
		fmt.Fprintf(&b, "%s f%d = f%d, f%d", in.Op, in.F1, in.F2, in.F3)
	case OpFNeg:
		fmt.Fprintf(&b, "fneg f%d = f%d", in.F1, in.F2)
	case OpGetF:
		fmt.Fprintf(&b, "getf.sig r%d = f%d", in.R1, in.F2)
	case OpSetF:
		fmt.Fprintf(&b, "setf.sig f%d = r%d", in.F1, in.R2)
	case OpFCvtFX:
		fmt.Fprintf(&b, "fcvt.fx r%d = f%d", in.R1, in.F2)
	case OpFCvtXF:
		fmt.Fprintf(&b, "fcvt.xf f%d = r%d", in.F1, in.R2)
	case OpBr:
		fmt.Fprintf(&b, "br 0x%x", in.Target)
	case OpBrCond:
		fmt.Fprintf(&b, "br.cond 0x%x", in.Target)
	case OpBrCall:
		fmt.Fprintf(&b, "br.call b%d = 0x%x", in.B, in.Target)
	case OpBrRet:
		fmt.Fprintf(&b, "br.ret b%d", in.B)
	case OpHalt:
		b.WriteString("halt")
	case OpAlloc:
		fmt.Fprintf(&b, "alloc r%d = %d", in.R1, in.Imm)
	default:
		fmt.Fprintf(&b, "%s ?", in.Op)
	}
	return b.String()
}
