package isa

import (
	"math"
	"strings"
	"testing"
)

func TestArchStateDiff(t *testing.T) {
	var a, b ArchState
	if d := a.Diff(&b, StateCompare{}); len(d) != 0 {
		t.Fatalf("zero states differ: %v", d)
	}
	if !a.Equal(&b, StateCompare{}) {
		t.Fatal("Equal false on identical states")
	}

	b.PC = 0x1234
	b.GR[5] = 7
	b.FR[9] = 2.5
	b.PR[8] = true
	b.BR[1] = 0x2000
	d := a.Diff(&b, StateCompare{})
	if len(d) != 5 {
		t.Fatalf("want 5 diffs, got %d: %v", len(d), d)
	}
	for i, want := range []string{"pc:", "r5:", "f9:", "p8:", "b1:"} {
		if !strings.HasPrefix(d[i], want) {
			t.Errorf("diff[%d] = %q, want prefix %q", i, d[i], want)
		}
	}
	if a.Equal(&b, StateCompare{}) {
		t.Error("Equal true on differing states")
	}
}

func TestArchStateDiffIgnoreReserved(t *testing.T) {
	var a, b ArchState
	for r := ReservedGRFirst; r <= ReservedGRLast; r++ {
		b.GR[r] = 0xdead
	}
	b.PR[ReservedPR] = true
	if d := a.Diff(&b, StateCompare{IgnoreReserved: true}); len(d) != 0 {
		t.Errorf("reserved-state diffs not ignored: %v", d)
	}
	if d := a.Diff(&b, StateCompare{}); len(d) != 5 {
		t.Errorf("strict compare: want 5 diffs, got %v", d)
	}
}

func TestArchStateDiffBitExactFloats(t *testing.T) {
	var a, b ArchState
	a.FR[3], b.FR[3] = 0.0, math.Copysign(0, -1) // +0 vs -0
	if d := a.Diff(&b, StateCompare{}); len(d) != 1 {
		t.Errorf("+0 vs -0 not detected: %v", d)
	}
	a.FR[3] = b.FR[3]
	a.FR[4], b.FR[4] = math.NaN(), math.NaN() // identical NaN bits
	if d := a.Diff(&b, StateCompare{}); len(d) != 0 {
		t.Errorf("identical NaNs reported: %v", d)
	}
}

func TestArchStateDiffBounded(t *testing.T) {
	var a, b ArchState
	for r := 1; r < NumGR; r++ {
		b.GR[r] = uint64(r)
	}
	if d := a.Diff(&b, StateCompare{}); len(d) != 8 {
		t.Errorf("default bound: got %d diffs", len(d))
	}
	if d := a.Diff(&b, StateCompare{MaxDiffs: 3}); len(d) != 3 {
		t.Errorf("MaxDiffs 3: got %d diffs", len(d))
	}
}
