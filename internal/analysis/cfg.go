// Package analysis is a static dataflow-analysis engine over the simulated
// ISA's bundled machine code: basic-block CFG construction from decoded
// bundles, dominator trees, iterative bit-vector solvers for liveness and
// reaching definitions over the general/floating/predicate register files,
// and a loop-aware load classifier that derives stride/pointer-chase
// verdicts from induction-variable and reaching-def chains.
//
// The package is deliberately low in the import graph (isa and program
// only) so every layer above it can consume the results: internal/verify
// proves patch safety with per-point liveness instead of the reserved-
// register convention, internal/harness cross-checks the runtime slicer's
// classification against the static one, and cmd/adore-lint prints
// per-loop reports in its -analyze mode.
//
// The CFG is built at instruction granularity. A slot position addresses
// one instruction as pos = bundle*3 + slot, nops included, so positions
// translate directly to the (bundle, slot) coordinates the rest of the
// system uses. Blocks are maximal single-entry straight-line position
// ranges; edges follow the interpreter's control rules — slots execute in
// order, a taken branch skips the rest of its bundle, br.cond with the
// hardwired p0 qualifying predicate is always taken, and br.ret/halt leave
// the analyzed code.
package analysis

import (
	"repro/internal/isa"
	"repro/internal/program"
)

// SlotsPerBundle mirrors the ISA's three-slot bundle shape.
const SlotsPerBundle = 3

// ExitEdge is one way control leaves the analyzed code region: a branch to
// an unresolved address, a br.ret, or fall-through past the last bundle.
// Target is the destination address when statically known (Known), so
// callers can refine the dataflow boundary by analyzing the target's
// segment; a br.ret has no static target.
type ExitEdge struct {
	Target uint64
	Known  bool
}

// Block is one basic block: the instruction positions [Start, End) with
// the control edges in and out. Halt instructions end a block with neither
// successors nor exit edges — execution stops, so nothing is live after.
type Block struct {
	ID    int
	Start int // first slot position
	End   int // one past the last slot position
	Succs []int
	Preds []int
	Exits []ExitEdge
}

// CFG is the control-flow graph of one code region (a segment or a
// straightened trace).
type CFG struct {
	Bundles []isa.Bundle
	Blocks  []*Block
	// RPO is a reverse postorder over the blocks reachable from the
	// entry, entry first — the iteration order of the forward solvers.
	RPO []int
	// Reach marks blocks reachable from the entry block.
	Reach []bool

	pcOf    func(bi int) uint64
	blockOf []int // slot position -> block ID
}

// Input describes a code region to Build. Resolve maps a branch target
// address to a bundle index inside the region; targets it rejects become
// exit edges. PCOf reports the address of a bundle for diagnostics and
// boundary refinement (it may return 0 for synthetic bundles). FallOff is
// the address control reaches by falling through past the last bundle
// (0 when unknown).
type Input struct {
	Bundles []isa.Bundle
	PCOf    func(bi int) uint64
	Resolve func(target uint64) (int, bool)
	FallOff uint64
}

// SegmentInput adapts a program segment: branch targets resolve within the
// segment, and falling off the end continues at the segment's end address.
func SegmentInput(seg *program.Segment) Input {
	return Input{
		Bundles: seg.Bundles,
		PCOf:    func(bi int) uint64 { return seg.Base + uint64(bi)*isa.BundleBytes },
		Resolve: func(target uint64) (int, bool) {
			if target%isa.BundleBytes != 0 || !seg.Contains(target) {
				return 0, false
			}
			return int((target - seg.Base) / isa.BundleBytes), true
		},
		FallOff: seg.End(),
	}
}

// NumSlots reports the number of slot positions in the region.
func (c *CFG) NumSlots() int { return len(c.Bundles) * SlotsPerBundle }

// Inst returns the instruction at a slot position.
func (c *CFG) Inst(pos int) *isa.Inst {
	return &c.Bundles[pos/SlotsPerBundle].Slots[pos%SlotsPerBundle]
}

// PC reports the address of the instruction at pos (bundle address plus
// slot offset, matching the PC encoding used system-wide).
func (c *CFG) PC(pos int) uint64 {
	base := c.pcOf(pos / SlotsPerBundle)
	if base == 0 {
		return 0
	}
	return base + uint64(pos%SlotsPerBundle)
}

// BundlePC reports the address of bundle bi.
func (c *CFG) BundlePC(bi int) uint64 { return c.pcOf(bi) }

// BlockOf returns the block containing a slot position.
func (c *CFG) BlockOf(pos int) *Block {
	if pos < 0 || pos >= len(c.blockOf) {
		return nil
	}
	return c.Blocks[c.blockOf[pos]]
}

// alwaysTaken reports whether a branch unconditionally transfers control:
// br, or br.cond qualified by the hardwired-true p0.
func alwaysTaken(in *isa.Inst) bool {
	return in.Op == isa.OpBr || (in.Op == isa.OpBrCond && in.QP == 0)
}

// Build constructs the CFG of a code region.
func Build(in Input) *CFG {
	c := &CFG{Bundles: in.Bundles, pcOf: in.PCOf}
	if c.pcOf == nil {
		c.pcOf = func(int) uint64 { return 0 }
	}
	resolve := in.Resolve
	if resolve == nil {
		resolve = func(uint64) (int, bool) { return 0, false }
	}
	n := c.NumSlots()
	if n == 0 {
		c.blockOf = nil
		return c
	}

	// Pass 1: block leaders. The entry, every resolved branch target
	// (bundle-addressed, so slot 0), and every instruction after a branch.
	leader := make([]bool, n)
	leader[0] = true
	for pos := 0; pos < n; pos++ {
		ins := c.Inst(pos)
		if !isa.IsBranch(ins.Op) {
			continue
		}
		if pos+1 < n {
			leader[pos+1] = true
		}
		switch ins.Op {
		case isa.OpBr, isa.OpBrCond, isa.OpBrCall:
			if bi, ok := resolve(ins.Target); ok && bi >= 0 && bi < len(in.Bundles) {
				leader[bi*SlotsPerBundle] = true
			}
		}
	}

	// Pass 2: carve blocks.
	c.blockOf = make([]int, n)
	for pos := 0; pos < n; {
		b := &Block{ID: len(c.Blocks), Start: pos}
		pos++
		for pos < n && !leader[pos] {
			pos++
		}
		b.End = pos
		for p := b.Start; p < b.End; p++ {
			c.blockOf[p] = b.ID
		}
		c.Blocks = append(c.Blocks, b)
	}

	// Pass 3: edges from each block's terminator.
	addEdge := func(from *Block, toPos int) {
		to := c.Blocks[c.blockOf[toPos]]
		from.Succs = append(from.Succs, to.ID)
		to.Preds = append(to.Preds, from.ID)
	}
	for _, b := range c.Blocks {
		last := c.Inst(b.End - 1)
		fallOff := func() {
			if b.End < n {
				addEdge(b, b.End)
			} else if in.FallOff != 0 {
				b.Exits = append(b.Exits, ExitEdge{Target: in.FallOff, Known: true})
			} else {
				b.Exits = append(b.Exits, ExitEdge{})
			}
		}
		branchTo := func(target uint64) {
			if bi, ok := resolve(target); ok && bi >= 0 && bi < len(in.Bundles) {
				addEdge(b, bi*SlotsPerBundle)
			} else {
				b.Exits = append(b.Exits, ExitEdge{Target: target, Known: target != 0})
			}
		}
		switch {
		case last.Op == isa.OpHalt:
			// Execution stops: no successors, no exit boundary.
		case last.Op == isa.OpBrRet:
			b.Exits = append(b.Exits, ExitEdge{})
		case last.Op == isa.OpBrCall:
			// The callee eventually returns to the fall-through point;
			// both the target and the continuation are successors.
			branchTo(last.Target)
			fallOff()
		case isa.IsBranch(last.Op) && alwaysTaken(last):
			branchTo(last.Target)
		case isa.IsBranch(last.Op): // conditional: taken or fall through
			branchTo(last.Target)
			fallOff()
		default:
			fallOff()
		}
	}

	c.computeOrder()
	return c
}

// computeOrder fills Reach and RPO via an iterative DFS from the entry.
func (c *CFG) computeOrder() {
	c.Reach = make([]bool, len(c.Blocks))
	if len(c.Blocks) == 0 {
		return
	}
	post := make([]int, 0, len(c.Blocks))
	type frame struct {
		id   int
		next int
	}
	stack := []frame{{id: 0}}
	c.Reach[0] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		b := c.Blocks[f.id]
		if f.next < len(b.Succs) {
			s := b.Succs[f.next]
			f.next++
			if !c.Reach[s] {
				c.Reach[s] = true
				stack = append(stack, frame{id: s})
			}
			continue
		}
		post = append(post, f.id)
		stack = stack[:len(stack)-1]
	}
	c.RPO = make([]int, len(post))
	for i, id := range post {
		c.RPO[len(post)-1-i] = id
	}
}

// UnreachableBundles lists the bundles containing at least one non-nop
// instruction none of whose slots lie in a reachable block — code no path
// from the entry executes.
func (c *CFG) UnreachableBundles() []int {
	var out []int
	for bi := range c.Bundles {
		hasInst, reach := false, false
		for si := 0; si < SlotsPerBundle; si++ {
			if c.Bundles[bi].Slots[si].Op == isa.OpNop {
				continue
			}
			hasInst = true
			if c.Reach[c.blockOf[bi*SlotsPerBundle+si]] {
				reach = true
			}
		}
		if hasInst && !reach {
			out = append(out, bi)
		}
	}
	return out
}
