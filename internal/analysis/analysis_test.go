package analysis

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
)

func seg(base uint64, bundles ...isa.Bundle) *program.Segment {
	return &program.Segment{Name: "t", Base: base, Bundles: bundles}
}

func mmi(s0, s2 isa.Inst) isa.Bundle {
	return isa.Bundle{Tmpl: isa.TmplMMI, Slots: [3]isa.Inst{s0, isa.Nop, s2}}
}

func mib(s0, s2 isa.Inst) isa.Bundle {
	return isa.Bundle{Tmpl: isa.TmplMIB, Slots: [3]isa.Inst{s0, isa.Nop, s2}}
}

// twoBundleLoop is the canonical strided loop the verifier fixtures use:
// { ld8 r20=[r14],8 ; nop ; addi r10=-1,r10 } { cmpi p1,p2=0,r10 ; nop ;
// (p1) br.cond base }.
func twoBundleLoop(base uint64) *program.Segment {
	return seg(base,
		mmi(isa.Inst{Op: isa.OpLd8, R1: 20, R3: 14, PostInc: 8},
			isa.Inst{Op: isa.OpAddI, R1: 10, Imm: -1, R3: 10}),
		mib(isa.Inst{Op: isa.OpCmpI, Rel: isa.CmpEq, P1: 1, P2: 2, Imm: 0, R3: 10},
			isa.Inst{Op: isa.OpBrCond, QP: 1, Target: base}),
	)
}

func mustGR(t *testing.T, r isa.Reg) Var {
	t.Helper()
	v, ok := GRVar(r)
	if !ok {
		t.Fatalf("GRVar(%d) rejected", r)
	}
	return v
}

func mustPR(t *testing.T, p isa.PReg) Var {
	t.Helper()
	v, ok := PRVar(p)
	if !ok {
		t.Fatalf("PRVar(%d) rejected", p)
	}
	return v
}

func TestCFGTwoBundleLoop(t *testing.T) {
	c := Build(SegmentInput(twoBundleLoop(0x1000)))
	if len(c.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1 (no interior leader)", len(c.Blocks))
	}
	b := c.Blocks[0]
	if len(b.Succs) != 1 || b.Succs[0] != 0 {
		t.Fatalf("succs = %v, want self-edge", b.Succs)
	}
	if len(b.Exits) != 1 || !b.Exits[0].Known || b.Exits[0].Target != 0x1020 {
		t.Fatalf("exits = %v, want fall-off to segment end", b.Exits)
	}
	d := c.Dominators()
	loops := c.NaturalLoops(d)
	if len(loops) != 1 || loops[0].Header != 0 {
		t.Fatalf("loops = %+v, want one self-loop", loops)
	}
	body, ok := c.LoopBody(loops[0])
	if !ok {
		t.Fatal("loop did not straighten")
	}
	if body.Len() != 4 {
		t.Fatalf("body len = %d, want 4 non-nop insts", body.Len())
	}
	lc := body.Classify(0)
	if lc.Verdict != VerdictStrided || lc.Stride != 8 || lc.AddrReg != 14 {
		t.Fatalf("classify = %+v, want strided/8 on r14", lc)
	}
}

func TestCFGBranchToSelfSingleBundle(t *testing.T) {
	base := uint64(0x2000)
	s := seg(base,
		mib(isa.Inst{Op: isa.OpLd8, R1: 20, R3: 14, PostInc: 8},
			isa.Inst{Op: isa.OpBr, Target: base}),
		mmi(isa.Inst{Op: isa.OpSt8, R2: 20, R3: 15}, isa.Nop),
	)
	c := Build(SegmentInput(s))
	b0 := c.BlockOf(0)
	if len(b0.Succs) != 1 || b0.Succs[0] != b0.ID || len(b0.Exits) != 0 {
		t.Fatalf("self-branch block: succs=%v exits=%v", b0.Succs, b0.Exits)
	}
	un := c.UnreachableBundles()
	if len(un) != 1 || un[0] != 1 {
		t.Fatalf("unreachable = %v, want [1]", un)
	}
	d := c.Dominators()
	loops := c.NaturalLoops(d)
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(loops))
	}
	if _, ok := c.LoopBody(loops[0]); !ok {
		t.Fatal("single-bundle self-loop did not straighten")
	}
}

func TestCFGUnreachableAfterUnconditionalBranch(t *testing.T) {
	base := uint64(0x3000)
	s := seg(base,
		mib(isa.Nop, isa.Inst{Op: isa.OpBr, Target: base + 32}),
		mmi(isa.Inst{Op: isa.OpAddI, R1: 20, Imm: 1}, isa.Nop), // skipped
		mib(isa.Nop, isa.Inst{Op: isa.OpHalt}),
	)
	c := Build(SegmentInput(s))
	un := c.UnreachableBundles()
	if len(un) != 1 || un[0] != 1 {
		t.Fatalf("unreachable = %v, want [1]", un)
	}
	res := AnalyzeSegment(s)
	found := false
	for _, f := range res.Findings {
		if f.Rule == FindingUnreachable && f.Addr == base+16 {
			found = true
		}
	}
	if !found {
		t.Fatalf("findings = %v, want %s at 0x%x", res.Findings, FindingUnreachable, base+16)
	}
}

func TestDominatorsDiamond(t *testing.T) {
	base := uint64(0x4000)
	s := seg(base,
		mib(isa.Inst{Op: isa.OpCmpI, Rel: isa.CmpEq, P1: 1, P2: 2, R3: 10},
			isa.Inst{Op: isa.OpBrCond, QP: 1, Target: base + 32}), // b0 -> b2 or b1
		mib(isa.Inst{Op: isa.OpAddI, R1: 20, Imm: 1},
			isa.Inst{Op: isa.OpBr, Target: base + 48}), // b1 -> b3
		mmi(isa.Inst{Op: isa.OpAddI, R1: 20, Imm: 2}, isa.Nop), // b2 -> b3
		mib(isa.Nop, isa.Inst{Op: isa.OpHalt}),                 // b3
	)
	c := Build(SegmentInput(s))
	if len(c.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(c.Blocks))
	}
	d := c.Dominators()
	b := func(pos int) int { return c.BlockOf(pos * SlotsPerBundle).ID }
	if !d.Dominates(b(0), b(3)) {
		t.Error("entry should dominate the join")
	}
	if d.Dominates(b(1), b(3)) || d.Dominates(b(2), b(3)) {
		t.Error("neither diamond arm dominates the join")
	}
	if got := d.Idom[b(3)]; got != b(0) {
		t.Errorf("idom(join) = %d, want entry %d", got, b(0))
	}
	if loops := c.NaturalLoops(d); len(loops) != 0 {
		t.Errorf("acyclic diamond reported loops: %+v", loops)
	}
}

func TestLivenessPredicatedDefDoesNotKill(t *testing.T) {
	base := uint64(0x5000)
	mk := func(qp isa.PReg) *program.Segment {
		return seg(base,
			mmi(isa.Inst{Op: isa.OpAddI, QP: qp, R1: 20, Imm: 1}, isa.Nop),
			mib(isa.Inst{Op: isa.OpSt8, R2: 20, R3: 15}, isa.Inst{Op: isa.OpHalt}),
		)
	}
	r20 := mustGR(t, 20)
	// Unpredicated def kills: r20 dead at entry.
	c := Build(SegmentInput(mk(0)))
	lv := c.Liveness(LiveOpts{})
	if lv.In[c.RPO[0]].Has(r20) {
		t.Error("unpredicated def should kill r20 upward")
	}
	// Predicated def is a may-def: r20 stays live, and p1 becomes live.
	c = Build(SegmentInput(mk(1)))
	lv = c.Liveness(LiveOpts{})
	in := lv.In[c.RPO[0]]
	if !in.Has(r20) {
		t.Error("predicated def must not kill r20")
	}
	if !in.Has(mustPR(t, 1)) {
		t.Error("qualifying predicate p1 should be live-in")
	}
}

func TestLivenessIncludeAndBoundary(t *testing.T) {
	s := twoBundleLoop(0x1000)
	c := Build(SegmentInput(s))
	// Conservative boundary: everything lives at the fall-off exit.
	lv := c.Liveness(LiveOpts{})
	if got := lv.LiveBefore(0); !got.Has(mustGR(t, 99)) {
		t.Error("default boundary should keep unrelated r99 live")
	}
	// Empty boundary: only registers the loop actually reads stay live.
	empty := func(ExitEdge) VarSet { return VarSet{} }
	lv = c.Liveness(LiveOpts{Boundary: empty})
	got := lv.LiveBefore(0)
	for _, want := range []Var{mustGR(t, 14), mustGR(t, 10)} {
		if !got.Has(want) {
			t.Errorf("%v should be live at loop entry", want)
		}
	}
	if got.Has(mustGR(t, 99)) {
		t.Error("r99 should be dead under the empty boundary")
	}
	if got.Has(mustGR(t, 20)) {
		t.Error("the load destination r20 is never read: should be dead")
	}
	// Excluding the ld8 removes both the r14 use and the r20 def.
	lv = c.Liveness(LiveOpts{Boundary: empty, Include: func(pos int) bool { return pos != 0 }})
	got = lv.LiveBefore(0)
	if got.Has(mustGR(t, 14)) {
		t.Error("excluded instruction's use of r14 must not count")
	}
}

func TestReachingDefsDiamondMerge(t *testing.T) {
	base := uint64(0x6000)
	s := seg(base,
		mib(isa.Inst{Op: isa.OpCmpI, Rel: isa.CmpEq, P1: 1, P2: 2, R3: 10},
			isa.Inst{Op: isa.OpBrCond, QP: 1, Target: base + 32}),
		mib(isa.Inst{Op: isa.OpAddI, R1: 20, Imm: 1},
			isa.Inst{Op: isa.OpBr, Target: base + 48}),
		mmi(isa.Inst{Op: isa.OpAddI, R1: 20, Imm: 2}, isa.Nop),
		mib(isa.Inst{Op: isa.OpSt8, R2: 20, R3: 15}, isa.Inst{Op: isa.OpHalt}),
	)
	c := Build(SegmentInput(s))
	rd := c.ReachingDefs()
	r20 := mustGR(t, 20)
	sites := rd.ReachingBefore(3*SlotsPerBundle, r20)
	if len(sites) != 2 {
		t.Fatalf("reaching defs of r20 at merge = %d, want both arms", len(sites))
	}
	// Before the second arm's def, only external defs reach: empty set.
	if got := rd.ReachingBefore(2*SlotsPerBundle, r20); len(got) != 0 {
		t.Fatalf("r20 should have no internal reaching def at arm entry, got %v", got)
	}
}

func TestDefiniteAssignPredicateLattice(t *testing.T) {
	base := uint64(0x7000)
	r27 := mustGR(t, 27)
	// Predicated def: r27 is AssignedIf(p1) afterwards.
	s := seg(base,
		mmi(isa.Inst{Op: isa.OpAddI, QP: 1, R1: 27, Imm: 128, R3: 14}, isa.Nop),
		mib(isa.Nop, isa.Inst{Op: isa.OpHalt}),
	)
	c := Build(SegmentInput(s))
	da := c.DefiniteAssign([]Var{r27})
	if got := da.At(3, r27); got.State != AssignedIf || got.Pred != 1 {
		t.Fatalf("after (p1) def: %+v, want AssignedIf p1", got)
	}
	// Redefining p1 invalidates the conditional assignment.
	s = seg(base,
		mmi(isa.Inst{Op: isa.OpAddI, QP: 1, R1: 27, Imm: 128, R3: 14},
			isa.Inst{Op: isa.OpCmpI, Rel: isa.CmpEq, P1: 1, P2: 2, R3: 10}),
		mib(isa.Nop, isa.Inst{Op: isa.OpHalt}),
	)
	c = Build(SegmentInput(s))
	da = c.DefiniteAssign([]Var{r27})
	if got := da.At(3, r27); got.State != Unassigned {
		t.Fatalf("after p1 redefinition: %+v, want Unassigned", got)
	}
	// Unpredicated def upgrades to Assigned and survives a loop back edge.
	s = seg(base,
		mmi(isa.Inst{Op: isa.OpAddI, R1: 27, Imm: 128, R3: 14}, isa.Nop),
		mmi(isa.Inst{Op: isa.OpLfetch, R3: 27, PostInc: 8},
			isa.Inst{Op: isa.OpAddI, R1: 10, Imm: -1, R3: 10}),
		mib(isa.Inst{Op: isa.OpCmpI, Rel: isa.CmpEq, P1: 1, P2: 2, R3: 10},
			isa.Inst{Op: isa.OpBrCond, QP: 1, Target: base + 16}),
	)
	c = Build(SegmentInput(s))
	da = c.DefiniteAssign([]Var{r27})
	if got := da.At(1*SlotsPerBundle, r27); got.State != Assigned {
		t.Fatalf("at loop head: %+v, want Assigned (prologue dominates, back edge preserves)", got)
	}
	// With no def at all the variable stays Unassigned everywhere.
	c = Build(SegmentInput(twoBundleLoop(base)))
	da = c.DefiniteAssign([]Var{r27})
	if got := da.At(3, r27); got.State != Unassigned {
		t.Fatalf("never-defined var: %+v, want Unassigned", got)
	}
}

// TestSolverTermination runs all three solvers over a worst-case shape for
// iterative dataflow — a deep chain of nested loops — and bounds the
// fixpoint rounds. progfuzz generates exactly this kind of nest.
func TestSolverTermination(t *testing.T) {
	base := uint64(0x10000)
	const depth = 24
	var bundles []isa.Bundle
	// Bundle i branches back to bundle depth-1-i, nesting loops like an
	// onion: the innermost back edge is in the middle of the chain.
	for i := 0; i < 2*depth; i++ {
		if i < depth {
			bundles = append(bundles, mmi(
				isa.Inst{Op: isa.OpLd8, R1: isa.Reg(20 + i%8), R3: isa.Reg(14 + i%4), PostInc: 8},
				isa.Inst{Op: isa.OpCmpI, Rel: isa.CmpEq, P1: isa.PReg(1 + i%4), P2: 2, R3: 10}))
			continue
		}
		head := uint64(2*depth-1-i) * isa.BundleBytes
		bundles = append(bundles, mib(
			isa.Inst{Op: isa.OpAddI, R1: 10, Imm: -1, R3: 10},
			isa.Inst{Op: isa.OpBrCond, QP: isa.PReg(1 + i%4), Target: base + head}))
	}
	bundles = append(bundles, mib(isa.Nop, isa.Inst{Op: isa.OpHalt}))
	c := Build(SegmentInput(seg(base, bundles...)))

	d := c.Dominators()
	lv := c.Liveness(LiveOpts{})
	rd := c.ReachingDefs()
	da := c.DefiniteAssign([]Var{mustGR(t, 27), mustGR(t, 28), mustPR(t, 6)})
	bound := len(c.Blocks) + 2
	for name, it := range map[string]int{
		"dominators": d.Iterations, "liveness": lv.Iterations,
		"reaching": rd.Iterations, "defassign": da.Iterations,
	} {
		if it < 1 || it > bound {
			t.Errorf("%s iterations = %d, want 1..%d", name, it, bound)
		}
	}
}

func TestClassifyIndirectAndPointer(t *testing.T) {
	base := uint64(0x8000)
	// Indirect: strided feeder ld8 r21=[r15],8 feeds shladd r22=r21<<3+r16,
	// which addresses ld8 r20=[r22].
	s := seg(base,
		mmi(isa.Inst{Op: isa.OpLd8, R1: 21, R3: 15, PostInc: 8},
			isa.Inst{Op: isa.OpShlAdd, R1: 22, R2: 21, Imm: 3, R3: 16}),
		mmi(isa.Inst{Op: isa.OpLd8, R1: 20, R3: 22},
			isa.Inst{Op: isa.OpAddI, R1: 10, Imm: -1, R3: 10}),
		mib(isa.Inst{Op: isa.OpCmpI, Rel: isa.CmpEq, P1: 1, P2: 2, R3: 10},
			isa.Inst{Op: isa.OpBrCond, QP: 1, Target: base}),
	)
	c := Build(SegmentInput(s))
	loops := c.NaturalLoops(c.Dominators())
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(loops))
	}
	body, ok := c.LoopBody(loops[0])
	if !ok {
		t.Fatal("did not straighten")
	}
	idx := body.IndexOfPos(1 * SlotsPerBundle)
	lc := body.Classify(idx)
	if lc.Verdict != VerdictIndirect || lc.FeederStride != 8 || lc.FeederAddrReg != 15 {
		t.Fatalf("classify = %+v, want indirect with feeder [r15] stride 8", lc)
	}

	// Pointer chase: ld8 r14=[r14] advances the address through memory.
	s = seg(base,
		mmi(isa.Inst{Op: isa.OpLd8, R1: 14, R3: 14},
			isa.Inst{Op: isa.OpAddI, R1: 10, Imm: -1, R3: 10}),
		mib(isa.Inst{Op: isa.OpCmpI, Rel: isa.CmpEq, P1: 1, P2: 2, R3: 10},
			isa.Inst{Op: isa.OpBrCond, QP: 1, Target: base}),
	)
	c = Build(SegmentInput(s))
	loops = c.NaturalLoops(c.Dominators())
	body, ok = c.LoopBody(loops[0])
	if !ok {
		t.Fatal("did not straighten")
	}
	lc = body.Classify(0)
	if lc.Verdict != VerdictPointer || lc.InductionReg != 14 {
		t.Fatalf("classify = %+v, want pointer-chasing via r14", lc)
	}
}

func TestLoopBodyRejectsMultiPathLoop(t *testing.T) {
	base := uint64(0x9000)
	s := seg(base,
		mib(isa.Inst{Op: isa.OpCmpI, Rel: isa.CmpNe, P1: 3, P2: 4, R3: 20},
			isa.Inst{Op: isa.OpBrCond, QP: 3, Target: base + 32}), // skip bundle 1
		mmi(isa.Inst{Op: isa.OpAddI, R1: 21, Imm: 1}, isa.Nop),
		mib(isa.Inst{Op: isa.OpAddI, R1: 10, Imm: -1, R3: 10},
			isa.Inst{Op: isa.OpBrCond, QP: 1, Target: base}),
	)
	c := Build(SegmentInput(s))
	loops := c.NaturalLoops(c.Dominators())
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(loops))
	}
	if _, ok := c.LoopBody(loops[0]); ok {
		t.Fatal("multi-path loop must not straighten")
	}
}

func hasFinding(res *Result, rule string) bool {
	for _, f := range res.Findings {
		if f.Rule == rule {
			return true
		}
	}
	return false
}

func TestFindingDeadLfetch(t *testing.T) {
	base := uint64(0xa000)
	s := seg(base,
		mmi(isa.Inst{Op: isa.OpLd8, R1: 20, R3: 14, PostInc: 8},
			isa.Inst{Op: isa.OpAddI, R1: 10, Imm: -1, R3: 10}),
		mmi(isa.Inst{Op: isa.OpLfetch, R3: 16}, isa.Nop), // r16 never advances
		mib(isa.Inst{Op: isa.OpCmpI, Rel: isa.CmpEq, P1: 1, P2: 2, R3: 10},
			isa.Inst{Op: isa.OpBrCond, QP: 1, Target: base}),
	)
	res := AnalyzeSegment(s)
	if !hasFinding(res, FindingDeadLfetch) {
		t.Fatalf("findings = %v, want %s", res.Findings, FindingDeadLfetch)
	}
}

func TestFindingNeverLoadedPrefetch(t *testing.T) {
	base := uint64(0xb000)
	s := seg(base,
		mmi(isa.Inst{Op: isa.OpLd8, R1: 20, R3: 14, PostInc: 8},
			isa.Inst{Op: isa.OpAddI, R1: 10, Imm: -1, R3: 10}),
		mmi(isa.Inst{Op: isa.OpLfetch, R3: 16, PostInc: 64}, isa.Nop), // no load strides by 64
		mib(isa.Inst{Op: isa.OpCmpI, Rel: isa.CmpEq, P1: 1, P2: 2, R3: 10},
			isa.Inst{Op: isa.OpBrCond, QP: 1, Target: base}),
	)
	res := AnalyzeSegment(s)
	if !hasFinding(res, FindingNeverLoadedPF) {
		t.Fatalf("findings = %v, want %s", res.Findings, FindingNeverLoadedPF)
	}

	// Matching strides: the classic software-pipelined prefetch shape is
	// clean.
	s = seg(base,
		mmi(isa.Inst{Op: isa.OpLd8, R1: 20, R3: 14, PostInc: 8},
			isa.Inst{Op: isa.OpAddI, R1: 10, Imm: -1, R3: 10}),
		mmi(isa.Inst{Op: isa.OpLfetch, R3: 16, PostInc: 8}, isa.Nop),
		mib(isa.Inst{Op: isa.OpCmpI, Rel: isa.CmpEq, P1: 1, P2: 2, R3: 10},
			isa.Inst{Op: isa.OpBrCond, QP: 1, Target: base}),
	)
	if res = AnalyzeSegment(s); len(res.Findings) != 0 {
		t.Fatalf("stride-matched prefetch loop should be clean, got %v", res.Findings)
	}
}

func TestReportPrint(t *testing.T) {
	res := AnalyzeSegment(twoBundleLoop(0x1000))
	var sb strings.Builder
	res.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"loop 0 @0x1000", "strided stride 8", "1 loops"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestVarRoundTrip(t *testing.T) {
	if _, ok := GRVar(0); ok {
		t.Error("r0 is not a dataflow variable")
	}
	if _, ok := PRVar(0); ok {
		t.Error("p0 is not a dataflow variable")
	}
	v := mustGR(t, 27)
	if r, ok := v.GR(); !ok || r != 27 {
		t.Errorf("GR round trip: %v %v", r, ok)
	}
	if v.String() != "r27" {
		t.Errorf("String = %q", v.String())
	}
	p := mustPR(t, 6)
	if pr, ok := p.PR(); !ok || pr != 6 {
		t.Errorf("PR round trip: %v %v", pr, ok)
	}
	all := AllVars()
	if all.Has(Var(0)) {
		t.Error("AllVars must exclude r0")
	}
	if !all.Has(v) || !all.Has(p) {
		t.Error("AllVars must include r27 and p6")
	}
	var count int
	all.ForEach(func(Var) { count++ })
	if count != NumVars-3 {
		t.Errorf("AllVars size = %d, want %d", count, NumVars-3)
	}
}
