package analysis

// Dominator tree and natural-loop discovery, per Cooper, Harvey & Kennedy's
// "A Simple, Fast Dominance Algorithm": iterate idom approximations over the
// reverse postorder until fixpoint. The graphs here are small (a segment or
// a trace), so the simple O(N^2)-worst-case scheme beats Lengauer-Tarjan in
// both code size and constant factor.

// DomTree holds immediate dominators per block. Unreachable blocks have
// Idom -1 and dominate nothing.
type DomTree struct {
	c    *CFG
	Idom []int // per block ID; entry's idom is itself, unreachable -1
	// Iterations counts fixpoint rounds, exposed for termination tests.
	Iterations int

	rpoIndex []int // block ID -> position in RPO (-1 if unreachable)
}

// Dominators computes the dominator tree of the reachable CFG.
func (c *CFG) Dominators() *DomTree {
	d := &DomTree{c: c, Idom: make([]int, len(c.Blocks)), rpoIndex: make([]int, len(c.Blocks))}
	for i := range d.Idom {
		d.Idom[i] = -1
		d.rpoIndex[i] = -1
	}
	if len(c.RPO) == 0 {
		return d
	}
	for i, id := range c.RPO {
		d.rpoIndex[id] = i
	}
	entry := c.RPO[0]
	d.Idom[entry] = entry
	for changed := true; changed; {
		changed = false
		d.Iterations++
		for _, id := range c.RPO[1:] {
			newIdom := -1
			for _, p := range c.Blocks[id].Preds {
				if d.Idom[p] == -1 {
					continue // predecessor not yet processed or unreachable
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = d.intersect(p, newIdom)
				}
			}
			if newIdom != -1 && d.Idom[id] != newIdom {
				d.Idom[id] = newIdom
				changed = true
			}
		}
	}
	return d
}

// intersect walks two blocks up the idom chain to their common ancestor.
func (d *DomTree) intersect(a, b int) int {
	for a != b {
		for d.rpoIndex[a] > d.rpoIndex[b] {
			a = d.Idom[a]
		}
		for d.rpoIndex[b] > d.rpoIndex[a] {
			b = d.Idom[b]
		}
	}
	return a
}

// Dominates reports whether block a dominates block b (reflexively).
func (d *DomTree) Dominates(a, b int) bool {
	if d.Idom[b] == -1 || d.Idom[a] == -1 {
		return false
	}
	entry := d.c.RPO[0]
	for {
		if b == a {
			return true
		}
		if b == entry {
			return a == entry
		}
		b = d.Idom[b]
	}
}

// Loop is one natural loop: the header block plus every block that can
// reach a back edge (latch -> header) without passing through the header.
type Loop struct {
	Header  int
	Latches []int // blocks with a back edge to Header
	Blocks  []int // loop body, header first, discovery order
	inLoop  map[int]bool
}

// Contains reports whether block id belongs to the loop.
func (l *Loop) Contains(id int) bool { return l.inLoop[id] }

// NaturalLoops finds the natural loops of the CFG: every edge t->h where h
// dominates t contributes its natural loop, and loops sharing a header are
// merged.
func (c *CFG) NaturalLoops(d *DomTree) []*Loop {
	byHeader := map[int]*Loop{}
	var order []int
	for _, id := range c.RPO {
		for _, s := range c.Blocks[id].Succs {
			if !d.Dominates(s, id) {
				continue
			}
			l := byHeader[s]
			if l == nil {
				l = &Loop{Header: s, Blocks: []int{s}, inLoop: map[int]bool{s: true}}
				byHeader[s] = l
				order = append(order, s)
			}
			l.Latches = append(l.Latches, id)
			// Backward walk from the latch collects the body.
			stack := []int{id}
			for len(stack) > 0 {
				b := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if l.inLoop[b] {
					continue
				}
				l.inLoop[b] = true
				l.Blocks = append(l.Blocks, b)
				for _, p := range c.Blocks[b].Preds {
					if c.Reach[p] {
						stack = append(stack, p)
					}
				}
			}
		}
	}
	loops := make([]*Loop, 0, len(order))
	for _, h := range order {
		loops = append(loops, byHeader[h])
	}
	return loops
}

// InnermostLoopAt returns the smallest loop containing block id, or nil.
func InnermostLoopAt(loops []*Loop, id int) *Loop {
	var best *Loop
	for _, l := range loops {
		if l.Contains(id) && (best == nil || len(l.Blocks) < len(best.Blocks)) {
			best = l
		}
	}
	return best
}

// Straighten linearizes a loop whose body is a single cycle: from the
// header, each block has exactly one successor inside the loop, ending back
// at the header. It returns the slot positions in execution order, or
// ok=false for multi-path loops (which the straightened-trace slicer model
// cannot represent). This mirrors what the runtime trace selector produces
// for the loops it patches: the body bundles in path order.
func (c *CFG) Straighten(l *Loop) (pos []int, ok bool) {
	id := l.Header
	for range l.Blocks {
		b := c.Blocks[id]
		for p := b.Start; p < b.End; p++ {
			pos = append(pos, p)
		}
		next := -1
		for _, s := range b.Succs {
			if !l.Contains(s) {
				continue
			}
			if next != -1 && next != s {
				return nil, false // two in-loop successors: not a simple cycle
			}
			next = s
		}
		if next == -1 {
			return nil, false
		}
		if next == l.Header {
			// A full cycle must cover every loop block, or some side
			// path exists that the linearization misses.
			return pos, len(pos) == c.loopSlotCount(l)
		}
		id = next
	}
	return nil, false
}

func (c *CFG) loopSlotCount(l *Loop) int {
	n := 0
	for _, id := range l.Blocks {
		n += c.Blocks[id].End - c.Blocks[id].Start
	}
	return n
}
