package analysis

import "repro/internal/isa"

// This file is the static twin of the runtime slicer (internal/core's
// slice.go). The runtime slicer classifies a delinquent load by walking a
// *captured trace* backwards; here the same algorithm walks a *straightened
// natural loop* recovered from the CFG. When a trace's bundles are exactly
// the loop's bundles — which is what the trace selector produces for the
// loops ADORE patches — the two must agree instruction for instruction.
// internal/harness and progfuzz assert that agreement differentially; a
// divergence is a bug in one of the two.
//
// The algorithm must therefore mirror the slicer *exactly*: the backward
// walk wraps the loop at most once, pure induction steps (post-increment,
// addi r = imm, r) accumulate without terminating the walk, fp<->int
// transfers and calls poison the slice, and arithmetic transform chains are
// followed at most two levels deep with at most one feeder load.

// Verdict is the static classification of one load, mirroring the paper's
// reference-pattern taxonomy (Fig. 5) as produced by the runtime slicer.
type Verdict uint8

const (
	VerdictUnknown  Verdict = iota
	VerdictStrided          // single-level strided array reference
	VerdictIndirect         // strided feeder load produces the address
	VerdictPointer          // address recurs through memory
)

func (v Verdict) String() string {
	switch v {
	case VerdictStrided:
		return "strided"
	case VerdictIndirect:
		return "indirect"
	case VerdictPointer:
		return "pointer-chasing"
	}
	return "unknown"
}

type bodyInst struct {
	pos int // CFG slot position
	in  isa.Inst
}

// LoopBody is the straightened, nop-free instruction sequence of a simple
// natural loop, in execution order from the header — the same shape the
// runtime trace selector hands the slicer.
type LoopBody struct {
	insts []bodyInst
}

// LoopBody straightens loop l and flattens out the nops. It reports false
// for multi-path loops, which have no single execution order to classify
// over (the runtime optimizer does not patch those either).
func (c *CFG) LoopBody(l *Loop) (*LoopBody, bool) {
	pos, ok := c.Straighten(l)
	if !ok {
		return nil, false
	}
	b := &LoopBody{}
	for _, p := range pos {
		in := c.Inst(p)
		if in.Op == isa.OpNop {
			continue
		}
		b.insts = append(b.insts, bodyInst{pos: p, in: *in})
	}
	if len(b.insts) == 0 {
		return nil, false
	}
	return b, true
}

// Len reports the number of (non-nop) body instructions.
func (b *LoopBody) Len() int { return len(b.insts) }

// At returns body instruction i and its CFG slot position.
func (b *LoopBody) At(i int) (isa.Inst, int) { return b.insts[i].in, b.insts[i].pos }

// IndexOfPos maps a CFG slot position back to its body index, or -1.
func (b *LoopBody) IndexOfPos(pos int) int {
	for i := range b.insts {
		if b.insts[i].pos == pos {
			return i
		}
	}
	return -1
}

// LoadIndices lists the body indices of the data loads (lfetch excluded).
func (b *LoopBody) LoadIndices() []int {
	var out []int
	for i := range b.insts {
		if isa.IsLoad(b.insts[i].in.Op) {
			out = append(out, i)
		}
	}
	return out
}

// bodySelfUpdate mirrors the slicer: a pure induction step of r is a
// post-increment on r (that does not also overwrite r as destination) or an
// immediate add r = imm, r.
func bodySelfUpdate(in *isa.Inst, r isa.Reg) (int64, bool) {
	if pr, ok := in.PostIncDef(); ok && pr == r {
		if d, dok := in.RegDef(); dok && d == r {
			return 0, false
		}
		return in.PostInc, true
	}
	if in.Op == isa.OpAddI && in.R1 == r && in.R3 == r {
		return in.Imm, true
	}
	return 0, false
}

func bodyDefines(in *isa.Inst, r isa.Reg) bool {
	if d, ok := in.RegDef(); ok && d == r {
		return true
	}
	if d, ok := in.PostIncDef(); ok && d == r {
		return true
	}
	return false
}

// walkAddr walks backwards from body index from (exclusive), wrapping the
// loop at most once, following r's lineage: induction steps accumulate into
// delta, and the walk stops at the first generating definition. A -1 index
// means r is only ever self-updated (a pure induction register).
func (b *LoopBody) walkAddr(from int, r isa.Reg) (def int, delta int64) {
	n := len(b.insts)
	for step := 1; step <= n; step++ {
		i := ((from-step)%n + n) % n
		in := &b.insts[i].in
		if !bodyDefines(in, r) {
			continue
		}
		if d, ok := bodySelfUpdate(in, r); ok {
			delta += d
			continue
		}
		return i, delta
	}
	return -1, delta
}

// bodyPoison mirrors the slicer's refusal list: fp<->int transfers and
// calls end the slice with no classification.
func bodyPoison(op isa.Op) bool {
	switch op {
	case isa.OpGetF, isa.OpFCvtFX, isa.OpBrCall, isa.OpBrRet, isa.OpSetF, isa.OpFCvtXF:
		return true
	}
	return false
}

// bodyAType mirrors the slicer's replayable transform ops.
func bodyAType(op isa.Op) bool {
	switch op {
	case isa.OpAdd, isa.OpSub, isa.OpAddI, isa.OpShlAdd, isa.OpMov,
		isa.OpShl, isa.OpSxt4, isa.OpZxt4, isa.OpAnd:
		return true
	}
	return false
}

// LoadClass is the static classification of one load in a loop body.
type LoadClass struct {
	Verdict Verdict
	Index   int // body index of the classified load
	AddrReg isa.Reg

	// VerdictStrided
	Stride int64

	// VerdictIndirect
	FeederIndex    int
	FeederStride   int64
	FeederAddrReg  isa.Reg
	FeederDstReg   isa.Reg
	Transform      []isa.Inst
	TransformDelta int64

	// VerdictPointer
	InductionReg isa.Reg
	UpdateIndex  int
}

// Classify determines the reference pattern of the load at body index i,
// mirroring the runtime slicer's classify step for step.
func (b *LoopBody) Classify(i int) LoadClass {
	load := &b.insts[i].in
	rA := load.R3
	res := LoadClass{Verdict: VerdictUnknown, Index: i, AddrReg: rA}
	if rA == 0 {
		return res
	}

	def, delta := b.walkAddr(i, rA)
	if def == -1 {
		if delta != 0 {
			res.Verdict = VerdictStrided
			res.Stride = delta
		}
		return res
	}
	din := &b.insts[def].in

	switch {
	case isa.IsLoad(din.Op):
		fdef, fstride := b.walkAddr(def, din.R3)
		if fdef == -1 && fstride != 0 {
			res.Verdict = VerdictIndirect
			res.FeederIndex = def
			res.FeederStride = fstride
			res.FeederAddrReg = din.R3
			res.FeederDstReg = rA
			res.TransformDelta = delta
			return res
		}
		res.Verdict = VerdictPointer
		res.InductionReg = rA
		res.UpdateIndex = def
		return res

	case bodyPoison(din.Op):
		return res

	case bodyAType(din.Op):
		return b.chainClassify(i, rA, def, delta, 0)
	}
	return res
}

// chainClassify follows an address produced by an arithmetic transform
// chain, mirroring the slicer: inputs resolve to a single strided feeder
// load (indirect), pure strided recomputes (strided), or a recurrence
// through memory (pointer chasing); two feeders or depth > 2 give up.
func (b *LoopBody) chainClassify(i int, rA isa.Reg, def int, accDelta int64, depth int) LoadClass {
	res := LoadClass{Verdict: VerdictUnknown, Index: i, AddrReg: rA}
	if depth > 2 {
		return res
	}
	din := &b.insts[def].in
	transform := []isa.Inst{*din}
	var strideSum int64
	feeder := -1
	var feederStride int64
	var feederDst isa.Reg

	var uses []isa.Reg
	uses = din.RegUses(uses)
	seen := map[isa.Reg]bool{}
	for _, u := range uses {
		if u == 0 || seen[u] {
			continue
		}
		seen[u] = true
		udef, udelta := b.walkAddr(def, u)
		if udef == -1 {
			strideSum += udelta
			continue
		}
		uin := &b.insts[udef].in
		switch {
		case isa.IsLoad(uin.Op):
			fdef, fstride := b.walkAddr(udef, uin.R3)
			if fdef == -1 && fstride != 0 {
				if feeder != -1 {
					return res // two feeders: give up
				}
				feeder = udef
				feederStride = fstride
				feederDst = u
				continue
			}
			res.Verdict = VerdictPointer
			res.InductionReg = rA
			res.UpdateIndex = def
			return res
		case bodyPoison(uin.Op):
			return res
		case bodyAType(uin.Op):
			sub := b.chainClassify(i, rA, udef, 0, depth+1)
			switch sub.Verdict {
			case VerdictIndirect:
				if feeder != -1 {
					return res
				}
				feeder = sub.FeederIndex
				feederStride = sub.FeederStride
				feederDst = sub.FeederDstReg
				transform = append(sub.Transform, transform...)
				strideSum += sub.TransformDelta
			case VerdictStrided:
				strideSum += sub.Stride
			case VerdictPointer:
				return sub
			default:
				return res
			}
		default:
			return res
		}
	}

	if feeder != -1 {
		res.Verdict = VerdictIndirect
		res.FeederIndex = feeder
		res.FeederStride = feederStride
		res.FeederAddrReg = b.insts[feeder].in.R3
		res.FeederDstReg = feederDst
		res.Transform = transform
		res.TransformDelta = accDelta + strideSum
		return res
	}
	if strideSum+accDelta != 0 {
		res.Verdict = VerdictStrided
		res.Stride = strideSum + accDelta
		return res
	}
	return res
}
