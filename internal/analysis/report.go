package analysis

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/isa"
	"repro/internal/program"
)

// Finding rule names produced by AnalyzeSegment.
const (
	FindingUnreachable   = "unreachable-bundle"
	FindingDeadLfetch    = "dead-lfetch"
	FindingNeverLoadedPF = "never-loaded-prefetch"
)

// Finding is one static-analysis diagnostic over a segment.
type Finding struct {
	Rule   string
	Addr   uint64 // PC of the offending instruction or bundle
	Detail string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s @0x%x: %s", f.Rule, f.Addr, f.Detail)
}

// LoopReport summarizes one natural loop of a segment.
type LoopReport struct {
	Header   uint64 // bundle address of the loop header
	Blocks   int    // basic blocks in the loop
	Insts    int    // non-nop instructions (simple loops only)
	Simple   bool   // single-cycle body, straightened and classified
	LiveIn   []Var  // variables live entering the header (original code)
	Loads    []LoadClass
	Lfetches []LoadClass // lfetch address lineages, classified like loads
}

// Result is the full static analysis of one code segment.
type Result struct {
	Segment  *program.Segment
	CFG      *CFG
	Dom      *DomTree
	Loops    []*Loop
	Live     *Liveness
	Reports  []LoopReport
	Findings []Finding
}

// AnalyzeSegment builds the CFG, dominators, loops, liveness and per-loop
// load classifications of a segment, and derives findings: bundles no path
// reaches, lfetches that prefetch the same line every iteration, and
// lfetches whose address lineage matches no load in the loop.
func AnalyzeSegment(seg *program.Segment) *Result {
	c := Build(SegmentInput(seg))
	d := c.Dominators()
	loops := c.NaturalLoops(d)
	live := c.Liveness(LiveOpts{})
	res := &Result{Segment: seg, CFG: c, Dom: d, Loops: loops, Live: live}

	for _, bi := range c.UnreachableBundles() {
		res.Findings = append(res.Findings, Finding{
			Rule:   FindingUnreachable,
			Addr:   c.BundlePC(bi),
			Detail: fmt.Sprintf("bundle %s is unreachable from the segment entry", c.Bundles[bi]),
		})
	}

	for _, l := range loops {
		rep := LoopReport{Header: c.BundlePC(c.Blocks[l.Header].Start / SlotsPerBundle), Blocks: len(l.Blocks)}
		var liveIn []Var
		live.In[l.Header].ForEach(func(v Var) { liveIn = append(liveIn, v) })
		rep.LiveIn = liveIn

		body, ok := c.LoopBody(l)
		if ok {
			rep.Simple = true
			rep.Insts = body.Len()
			for _, i := range body.LoadIndices() {
				rep.Loads = append(rep.Loads, body.Classify(i))
			}
			for i := 0; i < body.Len(); i++ {
				in, pos := body.At(i)
				if in.Op != isa.OpLfetch {
					continue
				}
				lc := body.Classify(i)
				rep.Lfetches = append(rep.Lfetches, lc)
				res.Findings = append(res.Findings, checkLfetch(c, l, body, i, pos, lc, rep.Loads)...)
			}
		}
		res.Reports = append(res.Reports, rep)
	}
	sort.Slice(res.Findings, func(i, j int) bool { return res.Findings[i].Addr < res.Findings[j].Addr })
	return res
}

// checkLfetch derives the prefetch findings for one in-loop lfetch.
func checkLfetch(c *CFG, l *Loop, body *LoopBody, i, pos int, lc LoadClass, loads []LoadClass) []Finding {
	in, _ := body.At(i)
	var out []Finding

	// Dead lfetch: the address register never advances inside the loop,
	// so every iteration prefetches the same line again.
	if in.PostInc == 0 && !loopDefines(c, l, in.R3) {
		out = append(out, Finding{
			Rule:   FindingDeadLfetch,
			Addr:   c.PC(pos),
			Detail: fmt.Sprintf("lfetch [r%d] address never advances in the loop; it re-prefetches one line every iteration", in.R3),
		})
	}

	// Never-loaded prefetch: the lfetch walks a strided sequence that no
	// load in the loop walks — the prefetched lines are never consumed.
	// Indirect/pointer lineages are not compared; their address streams
	// are data-dependent and can legitimately run ahead of the loads.
	if lc.Verdict == VerdictStrided {
		matched := false
		for _, ld := range loads {
			switch ld.Verdict {
			case VerdictStrided:
				if ld.Stride == lc.Stride {
					matched = true
				}
			case VerdictIndirect:
				if ld.FeederStride == lc.Stride {
					matched = true
				}
			case VerdictPointer, VerdictUnknown:
				// Cannot rule out a match statically; stay quiet.
				matched = true
			}
		}
		if len(loads) == 0 {
			matched = false
		}
		if !matched {
			out = append(out, Finding{
				Rule:   FindingNeverLoadedPF,
				Addr:   c.PC(pos),
				Detail: fmt.Sprintf("lfetch strides by %d but no load in the loop walks that sequence", lc.Stride),
			})
		}
	}
	return out
}

// loopDefines reports whether any instruction inside loop l writes r.
func loopDefines(c *CFG, l *Loop, r isa.Reg) bool {
	if r == 0 {
		return false
	}
	for _, id := range l.Blocks {
		b := c.Blocks[id]
		for p := b.Start; p < b.End; p++ {
			if bodyDefines(c.Inst(p), r) {
				return true
			}
		}
	}
	return false
}

// Fprint writes a human-readable report: segment summary, per-loop CFG,
// liveness and classification lines, then the findings.
func (r *Result) Fprint(w io.Writer) {
	fmt.Fprintf(w, "segment %s: base 0x%x, %d bundles, %d blocks, %d loops\n",
		r.Segment.Name, r.Segment.Base, len(r.CFG.Bundles), len(r.CFG.Blocks), len(r.Loops))
	for i, rep := range r.Reports {
		fmt.Fprintf(w, "  loop %d @0x%x: %d blocks", i, rep.Header, rep.Blocks)
		if !rep.Simple {
			fmt.Fprintf(w, ", multi-path (not classified)\n")
			continue
		}
		fmt.Fprintf(w, ", %d insts, live-in {%s}\n", rep.Insts, varList(rep.LiveIn, 8))
		for _, lc := range rep.Loads {
			fmt.Fprintf(w, "    load  %s\n", classLine(lc))
		}
		for _, lc := range rep.Lfetches {
			fmt.Fprintf(w, "    lfetch %s\n", classLine(lc))
		}
	}
	for _, f := range r.Findings {
		fmt.Fprintf(w, "  finding: %s\n", f)
	}
}

func classLine(lc LoadClass) string {
	switch lc.Verdict {
	case VerdictStrided:
		return fmt.Sprintf("[r%d] %s stride %d", lc.AddrReg, lc.Verdict, lc.Stride)
	case VerdictIndirect:
		return fmt.Sprintf("[r%d] %s feeder [r%d] stride %d", lc.AddrReg, lc.Verdict, lc.FeederAddrReg, lc.FeederStride)
	case VerdictPointer:
		return fmt.Sprintf("[r%d] %s via r%d", lc.AddrReg, lc.Verdict, lc.InductionReg)
	}
	return fmt.Sprintf("[r%d] %s", lc.AddrReg, lc.Verdict)
}

func varList(vars []Var, max int) string {
	var parts []string
	for i, v := range vars {
		if i == max {
			parts = append(parts, fmt.Sprintf("+%d more", len(vars)-max))
			break
		}
		parts = append(parts, v.String())
	}
	return strings.Join(parts, " ")
}
