package analysis

import (
	"fmt"

	"repro/internal/isa"
)

// Var numbers every architectural register in one flat dataflow variable
// space: general registers first, then floating registers, then predicates.
// Hardwired registers (r0, f0, p0) are excluded — they are constants, not
// dataflow variables.
type Var uint16

const (
	grBase = 0
	frBase = isa.NumGR
	prBase = isa.NumGR + isa.NumFR

	// NumVars is the size of the dataflow variable space.
	NumVars = isa.NumGR + isa.NumFR + isa.NumPR
)

// GRVar maps a general register to its Var, rejecting the hardwired r0.
func GRVar(r isa.Reg) (Var, bool) {
	if r == 0 || int(r) >= isa.NumGR {
		return 0, false
	}
	return Var(grBase + int(r)), true
}

// FRVar maps a floating register to its Var, rejecting the hardwired f0.
func FRVar(f isa.FReg) (Var, bool) {
	if f == 0 || int(f) >= isa.NumFR {
		return 0, false
	}
	return Var(frBase + int(f)), true
}

// PRVar maps a predicate register to its Var, rejecting the hardwired p0.
func PRVar(p isa.PReg) (Var, bool) {
	if p == 0 || int(p) >= isa.NumPR {
		return 0, false
	}
	return Var(prBase + int(p)), true
}

// GR reports the general register a Var denotes, if it is one.
func (v Var) GR() (isa.Reg, bool) {
	if int(v) < frBase {
		return isa.Reg(v), true
	}
	return 0, false
}

// PR reports the predicate register a Var denotes, if it is one.
func (v Var) PR() (isa.PReg, bool) {
	if int(v) >= prBase && int(v) < NumVars {
		return isa.PReg(int(v) - prBase), true
	}
	return 0, false
}

func (v Var) String() string {
	switch {
	case int(v) < frBase:
		return fmt.Sprintf("r%d", int(v))
	case int(v) < prBase:
		return fmt.Sprintf("f%d", int(v)-frBase)
	case int(v) < NumVars:
		return fmt.Sprintf("p%d", int(v)-prBase)
	}
	return fmt.Sprintf("var(%d)", int(v))
}

// VarSet is a fixed-size bitset over the dataflow variable space. The zero
// value is the empty set, and sets compare with ==.
type VarSet [(NumVars + 63) / 64]uint64

// Add inserts v.
func (s *VarSet) Add(v Var) { s[v>>6] |= 1 << (v & 63) }

// Remove deletes v.
func (s *VarSet) Remove(v Var) { s[v>>6] &^= 1 << (v & 63) }

// Has reports membership of v.
func (s VarSet) Has(v Var) bool { return s[v>>6]&(1<<(v&63)) != 0 }

// Or unions o into s.
func (s *VarSet) Or(o VarSet) {
	for i := range s {
		s[i] |= o[i]
	}
}

// Empty reports whether the set has no members.
func (s VarSet) Empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// ForEach calls fn for every member in increasing Var order.
func (s VarSet) ForEach(fn func(Var)) {
	for i, w := range s {
		for w != 0 {
			b := w & -w
			var bit int
			for m := b; m > 1; m >>= 1 {
				bit++
			}
			fn(Var(i*64 + bit))
			w &^= b
		}
	}
}

// AllVars is the set of every dataflow variable — the maximally
// conservative liveness boundary for an exit whose continuation is unknown.
func AllVars() VarSet {
	var s VarSet
	for v := 0; v < NumVars; v++ {
		if v == grBase || v == frBase || v == prBase {
			continue // hardwired r0/f0/p0 are not variables
		}
		s.Add(Var(v))
	}
	// grBase+0 etc. were skipped above; r0/f0/p0 never enter the space
	// through GRVar/FRVar/PRVar either, so the set is consistent.
	return s
}

// InstUses appends the dataflow variables read by in: general and floating
// source registers plus the qualifying predicate.
func InstUses(in *isa.Inst, dst []Var) []Var {
	var gr [4]isa.Reg
	for _, r := range in.RegUses(gr[:0]) {
		if v, ok := GRVar(r); ok {
			dst = append(dst, v)
		}
	}
	var fr [4]isa.FReg
	for _, f := range in.FRegUses(fr[:0]) {
		if v, ok := FRVar(f); ok {
			dst = append(dst, v)
		}
	}
	if v, ok := PRVar(in.QP); ok {
		dst = append(dst, v)
	}
	return dst
}

// InstDefs appends the dataflow variables written by in: the integer
// result, a post-increment base, the floating result, and a compare's
// predicate pair. Whether the defs are conditional is a property of the
// whole instruction — see MayDef.
func InstDefs(in *isa.Inst, dst []Var) []Var {
	if r, ok := in.RegDef(); ok {
		if v, ok2 := GRVar(r); ok2 {
			dst = append(dst, v)
		}
	}
	if r, ok := in.PostIncDef(); ok {
		if v, ok2 := GRVar(r); ok2 {
			dst = append(dst, v)
		}
	}
	if f, ok := in.FRegDef(); ok {
		if v, ok2 := FRVar(f); ok2 {
			dst = append(dst, v)
		}
	}
	if in.Op == isa.OpCmp || in.Op == isa.OpCmpI {
		if v, ok := PRVar(in.P1); ok {
			dst = append(dst, v)
		}
		if v, ok := PRVar(in.P2); ok {
			dst = append(dst, v)
		}
	}
	return dst
}

// MayDef reports whether in's definitions are conditional: a qualifying
// predicate other than the hardwired p0 makes every def a may-def, which
// generates but does not kill.
func MayDef(in *isa.Inst) bool { return in.QP != 0 }

// LiveOpts configures a liveness solve.
type LiveOpts struct {
	// Include, when non-nil, restricts the transfer functions to the
	// instructions it accepts; excluded positions are treated as nops.
	// The patch verifier uses this to compute the liveness of the
	// *original* program over a trace that already contains injected
	// instructions.
	Include func(pos int) bool
	// Boundary, when non-nil, supplies the live-out set of an exit edge.
	// Nil means every exit conservatively keeps all variables live.
	Boundary func(e ExitEdge) VarSet
}

// Liveness holds per-block live-in/live-out sets of a backward bit-vector
// solve: a variable is live when some path reaches a read of it before any
// unconditional write.
type Liveness struct {
	c    *CFG
	opts LiveOpts
	In   []VarSet // live at block entry
	Out  []VarSet // live at block exit
	// Iterations counts fixpoint rounds, exposed for termination tests.
	Iterations int
}

// Liveness runs the backward liveness solver to fixpoint.
func (c *CFG) Liveness(opts LiveOpts) *Liveness {
	lv := &Liveness{
		c: c, opts: opts,
		In:  make([]VarSet, len(c.Blocks)),
		Out: make([]VarSet, len(c.Blocks)),
	}
	all := AllVars()
	boundary := func(e ExitEdge) VarSet {
		if opts.Boundary != nil {
			return opts.Boundary(e)
		}
		return all
	}
	for changed := true; changed; {
		changed = false
		lv.Iterations++
		// Postorder (reverse RPO) converges fastest for a backward
		// problem: successors are visited before their predecessors.
		for i := len(c.RPO) - 1; i >= 0; i-- {
			id := c.RPO[i]
			b := c.Blocks[id]
			var out VarSet
			for _, s := range b.Succs {
				out.Or(lv.In[s])
			}
			for _, e := range b.Exits {
				out.Or(boundary(e))
			}
			lv.Out[id] = out
			in := lv.transfer(b, b.Start, out)
			if in != lv.In[id] {
				lv.In[id] = in
				changed = true
			}
		}
	}
	return lv
}

// transfer applies the backward transfer functions of block b from its last
// instruction down to (and including) position stop, starting from the
// given live-out set. Predicated defs are may-defs: they do not kill.
func (lv *Liveness) transfer(b *Block, stop int, out VarSet) VarSet {
	live := out
	var defs, uses [8]Var
	for pos := b.End - 1; pos >= stop; pos-- {
		if lv.opts.Include != nil && !lv.opts.Include(pos) {
			continue
		}
		in := lv.c.Inst(pos)
		if in.Op == isa.OpNop {
			continue
		}
		if !MayDef(in) {
			for _, d := range InstDefs(in, defs[:0]) {
				live.Remove(d)
			}
		}
		for _, u := range InstUses(in, uses[:0]) {
			live.Add(u)
		}
	}
	return live
}

// LiveBefore reports the live set at the program point immediately before
// position pos executes. When pos is excluded by Include, this is exactly
// the liveness of the surrounding (included) program at that point.
func (lv *Liveness) LiveBefore(pos int) VarSet {
	b := lv.c.BlockOf(pos)
	if b == nil {
		return VarSet{}
	}
	return lv.transfer(b, pos, lv.Out[b.ID])
}

// DefSite is one definition site for the reaching-definitions solver.
type DefSite struct {
	Pos int  // slot position of the defining instruction
	Var Var  // variable defined
	May bool // predicated: generates without killing
}

// ReachingDefs holds the def-site bitsets of a forward reaching-definitions
// solve. A site reaches a point when some path from the site arrives
// without an intervening unconditional redefinition of its variable.
type ReachingDefs struct {
	c     *CFG
	Sites []DefSite
	// Iterations counts fixpoint rounds, exposed for termination tests.
	Iterations int

	siteAt [][]int32     // per position: indices into Sites
	byVar  map[Var][]int // per variable: indices into Sites
	in     []defBits     // per block
}

type defBits []uint64

func (d defBits) has(i int) bool { return d[i>>6]&(1<<(i&63)) != 0 }
func (d defBits) set(i int)      { d[i>>6] |= 1 << (i & 63) }
func (d defBits) clear(i int)    { d[i>>6] &^= 1 << (i & 63) }

// ReachingDefs runs the forward reaching-definitions solver to fixpoint.
func (c *CFG) ReachingDefs() *ReachingDefs {
	rd := &ReachingDefs{c: c, byVar: map[Var][]int{}}
	n := c.NumSlots()
	rd.siteAt = make([][]int32, n)
	var defs [8]Var
	for pos := 0; pos < n; pos++ {
		in := c.Inst(pos)
		if in.Op == isa.OpNop {
			continue
		}
		for _, v := range InstDefs(in, defs[:0]) {
			idx := len(rd.Sites)
			rd.Sites = append(rd.Sites, DefSite{Pos: pos, Var: v, May: MayDef(in)})
			rd.siteAt[pos] = append(rd.siteAt[pos], int32(idx))
			rd.byVar[v] = append(rd.byVar[v], idx)
		}
	}
	words := (len(rd.Sites) + 63) / 64
	if words == 0 {
		words = 1
	}
	rd.in = make([]defBits, len(c.Blocks))
	out := make([]defBits, len(c.Blocks))
	for i := range rd.in {
		rd.in[i] = make(defBits, words)
		out[i] = make(defBits, words)
	}
	scratch := make(defBits, words)
	for changed := true; changed; {
		changed = false
		rd.Iterations++
		for _, id := range c.RPO {
			b := c.Blocks[id]
			in := rd.in[id]
			for i := range in {
				in[i] = 0
			}
			for _, p := range b.Preds {
				for i := range in {
					in[i] |= out[p][i]
				}
			}
			copy(scratch, in)
			rd.transfer(b, b.End, scratch)
			for i := range scratch {
				if scratch[i] != out[id][i] {
					copy(out[id], scratch)
					changed = true
					break
				}
			}
		}
	}
	return rd
}

// transfer applies block b's forward transfer from its start up to (but not
// including) position stop, mutating bits in place.
func (rd *ReachingDefs) transfer(b *Block, stop int, bits defBits) {
	for pos := b.Start; pos < b.End && pos < stop; pos++ {
		for _, idx := range rd.siteAt[pos] {
			s := rd.Sites[idx]
			if !s.May {
				for _, other := range rd.byVar[s.Var] {
					bits.clear(other)
				}
			}
			bits.set(int(idx))
		}
	}
}

// ReachingBefore returns the indices into Sites of the definitions of v
// that reach the program point immediately before pos. An empty result
// means every reaching definition of v is outside the analyzed region.
func (rd *ReachingDefs) ReachingBefore(pos int, v Var) []int {
	b := rd.c.BlockOf(pos)
	if b == nil {
		return nil
	}
	bits := make(defBits, len(rd.in[b.ID]))
	copy(bits, rd.in[b.ID])
	rd.transfer(b, pos, bits)
	var out []int
	for _, idx := range rd.byVar[v] {
		if bits.has(idx) {
			out = append(out, idx)
		}
	}
	return out
}

// AssignState is the definite-assignment lattice for one tracked variable:
//
//	Assigned           — written on every path (top)
//	AssignedIf         — written on every path, but only under a predicate
//	Unassigned         — some path reaches here with no write (bottom)
//
// The meet is pairwise: Assigned ⊓ x = x; AssignedIf(q) ⊓ AssignedIf(q) =
// AssignedIf(q); mixed predicates or Unassigned collapse to Unassigned.
type AssignState uint8

const (
	Unassigned AssignState = iota
	AssignedIf
	Assigned
)

// AssignVal is one lattice value; Pred is meaningful only for AssignedIf.
type AssignVal struct {
	State AssignState
	Pred  isa.PReg
}

func meetAssign(a, b AssignVal) AssignVal {
	if a.State == Assigned {
		return b
	}
	if b.State == Assigned {
		return a
	}
	if a.State == AssignedIf && b.State == AssignedIf && a.Pred == b.Pred {
		return a
	}
	return AssignVal{State: Unassigned}
}

// DefiniteAssign holds a forward must-analysis over a small set of tracked
// variables, answering "is v certainly written before this point, and under
// which predicate?". The patch verifier tracks the reserved registers: a
// read of r27-r30/p6 by injected code is legal only when an injected write
// dominates it (modulo matching qualifying predicates).
type DefiniteAssign struct {
	c    *CFG
	vars []Var
	idx  map[Var]int
	In   [][]AssignVal // per block, per tracked var
	// Iterations counts fixpoint rounds, exposed for termination tests.
	Iterations int
}

// DefiniteAssign runs the forward must-solve over the tracked vars.
func (c *CFG) DefiniteAssign(vars []Var) *DefiniteAssign {
	da := &DefiniteAssign{c: c, vars: vars, idx: map[Var]int{}}
	for i, v := range vars {
		da.idx[v] = i
	}
	da.In = make([][]AssignVal, len(c.Blocks))
	out := make([][]AssignVal, len(c.Blocks))
	top := AssignVal{State: Assigned}
	for i := range da.In {
		da.In[i] = make([]AssignVal, len(vars))
		out[i] = make([]AssignVal, len(vars))
		for j := range out[i] {
			// Top everywhere but the entry, so the meet over
			// not-yet-visited back edges starts optimistic.
			out[i][j] = top
			da.In[i][j] = top
		}
	}
	if len(c.RPO) == 0 {
		return da
	}
	entry := c.RPO[0]
	scratch := make([]AssignVal, len(vars))
	for changed := true; changed; {
		changed = false
		da.Iterations++
		for _, id := range c.RPO {
			b := c.Blocks[id]
			in := da.In[id]
			if id == entry && len(b.Preds) == 0 {
				for j := range in {
					in[j] = AssignVal{State: Unassigned}
				}
			} else {
				first := true
				for _, p := range b.Preds {
					if first {
						copy(in, out[p])
						first = false
						continue
					}
					for j := range in {
						in[j] = meetAssign(in[j], out[p][j])
					}
				}
				if id == entry {
					// The entry can have predecessors (a loop
					// header): nothing is assigned on the path
					// from outside.
					for j := range in {
						in[j] = meetAssign(in[j], AssignVal{State: Unassigned})
					}
				}
			}
			copy(scratch, in)
			da.transfer(b, b.End, scratch)
			for j := range scratch {
				if scratch[j] != out[id][j] {
					copy(out[id], scratch)
					changed = true
					break
				}
			}
		}
	}
	return da
}

// transfer applies block b's must-assignment transfer from its start up to
// (but not including) stop.
func (da *DefiniteAssign) transfer(b *Block, stop int, vals []AssignVal) {
	var defs [8]Var
	for pos := b.Start; pos < b.End && pos < stop; pos++ {
		in := da.c.Inst(pos)
		if in.Op == isa.OpNop {
			continue
		}
		for _, d := range InstDefs(in, defs[:0]) {
			// Redefining a predicate invalidates any assignment that
			// was conditional on its old value.
			if p, isPR := d.PR(); isPR {
				for j, v := range vals {
					if v.State == AssignedIf && v.Pred == p {
						vals[j] = AssignVal{State: Unassigned}
					}
				}
			}
			j, tracked := da.idx[d]
			if !tracked {
				continue
			}
			if !MayDef(in) {
				vals[j] = AssignVal{State: Assigned}
			} else if vals[j].State == Unassigned {
				vals[j] = AssignVal{State: AssignedIf, Pred: in.QP}
			}
		}
	}
}

// At reports the assignment state of v immediately before position pos.
// Untracked variables report Unassigned.
func (da *DefiniteAssign) At(pos int, v Var) AssignVal {
	j, tracked := da.idx[v]
	if !tracked {
		return AssignVal{State: Unassigned}
	}
	b := da.c.BlockOf(pos)
	if b == nil {
		return AssignVal{State: Unassigned}
	}
	vals := make([]AssignVal, len(da.vars))
	copy(vals, da.In[b.ID])
	da.transfer(b, pos, vals)
	return vals[j]
}
