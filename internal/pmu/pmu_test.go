package pmu

import (
	"testing"
	"testing/quick"
)

func testConfig() Config {
	// IntervalJitter 1 disables randomization so interval arithmetic is
	// exact in these tests.
	return Config{SampleInterval: 100, SSBSize: 4, DearLatencyMin: 8, HandlerCyclesPerSample: 10, IntervalJitter: 1}
}

func TestIntervalJitterVariesPeriods(t *testing.T) {
	cfg := testConfig()
	cfg.IntervalJitter = 40
	p := New(cfg)
	p.Start(0)
	seen := map[uint64]bool{}
	cycles := uint64(0)
	prev := uint64(0)
	for i := 0; i < 64; i++ {
		cycles = p.NextSampleAt()
		seen[cycles-prev] = true
		prev = cycles
		p.TakeSample(0x40, cycles)
	}
	if len(seen) < 4 {
		t.Fatalf("jitter produced only %d distinct periods", len(seen))
	}
	for d := range seen {
		if d < 80 || d > 120 {
			t.Fatalf("period %d outside [80,120]", d)
		}
	}
}

func TestSamplingInterval(t *testing.T) {
	p := New(testConfig())
	p.Start(0)
	if p.NextSampleAt() != 100 {
		t.Fatalf("NextSampleAt = %d", p.NextSampleAt())
	}
	p.TakeSample(0x40, 100)
	if p.NextSampleAt() != 200 {
		t.Fatalf("after sample NextSampleAt = %d", p.NextSampleAt())
	}
	if p.TotalSamples != 1 || p.PendingSamples() != 1 {
		t.Fatalf("samples = %d pending = %d", p.TotalSamples, p.PendingSamples())
	}
}

func TestDisabledPMUTakesNoSamples(t *testing.T) {
	p := New(testConfig())
	if p.NextSampleAt() != ^uint64(0) {
		t.Fatal("disabled PMU has a sample time")
	}
	p.TakeSample(0x40, 100)
	if p.TotalSamples != 0 {
		t.Fatal("disabled PMU sampled")
	}
}

func TestSSBOverflowDeliversAllSamples(t *testing.T) {
	p := New(testConfig())
	var got []Sample
	p.SetHandler(func(s []Sample) { got = append(got, s...) })
	p.Start(0)
	for i := 1; i <= 9; i++ {
		p.TakeSample(uint64(i*16), uint64(i*100))
	}
	if p.Overflows != 2 {
		t.Fatalf("overflows = %d, want 2", p.Overflows)
	}
	if len(got) != 8 {
		t.Fatalf("delivered = %d, want 8", len(got))
	}
	p.Stop()
	if len(got) != 9 {
		t.Fatalf("after flush delivered = %d, want 9", len(got))
	}
	for i, s := range got {
		if s.Index != uint64(i) {
			t.Fatalf("sample %d has index %d", i, s.Index)
		}
	}
	if p.OverheadCycles != 9*10 {
		t.Fatalf("overhead = %d, want 90", p.OverheadCycles)
	}
}

func TestDEARThresholdAndConsumption(t *testing.T) {
	p := New(testConfig())
	p.Start(0)
	p.OnLoadMiss(0x40, 0x1000, 7) // below threshold: counts, no DEAR
	if p.DMiss != 1 {
		t.Fatalf("DMiss = %d", p.DMiss)
	}
	p.TakeSample(0x40, 100)
	p.OnLoadMiss(0x44, 0x2000, 150)
	p.TakeSample(0x44, 200)
	p.TakeSample(0x48, 300) // DEAR consumed by previous sample
	p.Stop()

	var samples []Sample
	p2 := New(testConfig())
	_ = p2
	// Re-run with a handler to capture.
	p = New(testConfig())
	p.SetHandler(func(s []Sample) { samples = append(samples, s...) })
	p.Start(0)
	p.OnLoadMiss(0x40, 0x1000, 7)
	p.TakeSample(0x40, 100)
	p.OnLoadMiss(0x44, 0x2000, 150)
	p.TakeSample(0x44, 200)
	p.TakeSample(0x48, 300)
	p.Stop()

	if samples[0].DEAR.Valid {
		t.Fatal("sub-threshold miss latched DEAR")
	}
	if !samples[1].DEAR.Valid || samples[1].DEAR.Addr != 0x2000 || samples[1].DEAR.Latency != 150 {
		t.Fatalf("DEAR sample = %+v", samples[1].DEAR)
	}
	if samples[2].DEAR.Valid {
		t.Fatal("DEAR not consumed by sampling")
	}
}

func TestBTBKeepsLastFourOldestFirst(t *testing.T) {
	p := New(testConfig())
	p.Start(0)
	for i := 0; i < 6; i++ {
		p.OnBranch(uint64(i*16), uint64(1000+i*16), i%2 == 0)
	}
	p.TakeSample(0x60, 100)
	p.Stop()
	var s Sample
	p2 := New(testConfig())
	p2.SetHandler(func(ss []Sample) { s = ss[0] })
	p2.Start(0)
	for i := 0; i < 6; i++ {
		p2.OnBranch(uint64(i*16), uint64(1000+i*16), i%2 == 0)
	}
	p2.TakeSample(0x60, 100)
	p2.Stop()
	if s.NBTB != 4 {
		t.Fatalf("NBTB = %d", s.NBTB)
	}
	for i := 0; i < 4; i++ {
		wantSrc := uint64((i + 2) * 16)
		if s.BTB[i].Src != wantSrc {
			t.Fatalf("BTB[%d].Src = %#x, want %#x", i, s.BTB[i].Src, wantSrc)
		}
	}
}

func TestStopIsIdempotent(t *testing.T) {
	p := New(testConfig())
	calls := 0
	p.SetHandler(func([]Sample) { calls++ })
	p.Start(0)
	p.TakeSample(0, 100)
	p.Stop()
	p.Stop()
	if calls != 1 {
		t.Fatalf("handler calls = %d", calls)
	}
}

// Property: sample indices delivered through overflows are strictly
// sequential regardless of interval/buffer configuration.
func TestSampleIndexSequenceProperty(t *testing.T) {
	f := func(nSamples uint8, ssb uint8) bool {
		cfg := testConfig()
		cfg.SSBSize = int(ssb%7) + 1
		p := New(cfg)
		var idx []uint64
		p.SetHandler(func(s []Sample) {
			for _, x := range s {
				idx = append(idx, x.Index)
			}
		})
		p.Start(0)
		n := int(nSamples % 64)
		for i := 0; i < n; i++ {
			p.TakeSample(uint64(i), uint64((i+1)*100))
		}
		p.Stop()
		if len(idx) != n {
			return false
		}
		for i, v := range idx {
			if v != uint64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSamplesDroppedOnUnconsumedOverflow pins the overflow path with no
// handler: the SSB wraps, the samples are lost, and SamplesDropped says so.
func TestSamplesDroppedOnUnconsumedOverflow(t *testing.T) {
	cfg := testConfig() // SSBSize 4
	p := New(cfg)
	p.Start(0)
	for i := 0; i < 10; i++ {
		p.TakeSample(uint64(i), uint64((i+1)*100))
	}
	// Two overflows of 4 samples each fired unconsumed; 2 samples remain.
	if p.SamplesDropped != 8 {
		t.Fatalf("SamplesDropped = %d, want 8", p.SamplesDropped)
	}
	if p.PendingSamples() != 2 {
		t.Fatalf("PendingSamples = %d, want 2", p.PendingSamples())
	}
	// Stop flushes the tail, still unconsumed.
	p.Stop()
	if p.SamplesDropped != 10 {
		t.Fatalf("after Stop: SamplesDropped = %d, want 10", p.SamplesDropped)
	}

	// With a handler attached, nothing is ever dropped.
	p2 := New(testConfig())
	var got int
	p2.SetHandler(func(s []Sample) { got += len(s) })
	p2.Start(0)
	for i := 0; i < 10; i++ {
		p2.TakeSample(uint64(i), uint64((i+1)*100))
	}
	p2.Stop()
	if p2.SamplesDropped != 0 || got != 10 {
		t.Fatalf("handled path: SamplesDropped = %d, delivered = %d", p2.SamplesDropped, got)
	}
}
