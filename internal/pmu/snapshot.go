package pmu

import "fmt"

// Snapshot captures the PMU's run-varying state for the checkpoint/fork
// engine (DESIGN.md §16): counters, the branch trace buffer, DEAR, the
// sampling schedule including the jitter rng, and the pending SSB
// contents. The configuration and the overflow handler are not captured —
// the handler is a host closure, so a restored PMU keeps the handler its
// rebuilt machine registered, and Restore validates the configuration
// matches instead of copying it.
type Snapshot struct {
	cfg     Config
	enabled bool

	cycles  uint64
	retired uint64
	dMiss   uint64

	btb    [BTBEntries]BranchRec
	btbLen int
	btbPos int
	dear   DearRec

	nextSampleAt uint64
	sampleIndex  uint64
	ssb          []Sample
	rng          uint64

	overheadCycles uint64
	totalSamples   uint64
	overflows      uint64
	samplesDropped uint64
}

// Snapshot deep-copies the PMU's mutable state.
func (p *PMU) Snapshot() *Snapshot {
	return &Snapshot{
		cfg:     p.cfg,
		enabled: p.enabled,

		cycles:  p.Cycles,
		retired: p.Retired,
		dMiss:   p.DMiss,

		btb:    p.btb,
		btbLen: p.btbLen,
		btbPos: p.btbPos,
		dear:   p.dear,

		nextSampleAt: p.nextSampleAt,
		sampleIndex:  p.sampleIndex,
		ssb:          append([]Sample(nil), p.ssb...),
		rng:          p.rng,

		overheadCycles: p.OverheadCycles,
		totalSamples:   p.TotalSamples,
		overflows:      p.Overflows,
		samplesDropped: p.SamplesDropped,
	}
}

// Restore overwrites the PMU's mutable state from s, leaving cfg and the
// handler untouched. Call it after the machine assembly that registers the
// handler and Starts the PMU — Restore rewinds the sampling schedule
// (nextSampleAt, rng) that Start advanced. It errors when s was taken from
// a PMU with a different configuration.
func (p *PMU) Restore(s *Snapshot) error {
	if p.cfg != s.cfg {
		return fmt.Errorf("pmu: snapshot config %+v does not match %+v", s.cfg, p.cfg)
	}
	p.enabled = s.enabled
	p.Cycles = s.cycles
	p.Retired = s.retired
	p.DMiss = s.dMiss
	p.btb = s.btb
	p.btbLen = s.btbLen
	p.btbPos = s.btbPos
	p.dear = s.dear
	p.nextSampleAt = s.nextSampleAt
	p.sampleIndex = s.sampleIndex
	p.ssb = append(p.ssb[:0], s.ssb...)
	p.rng = s.rng
	p.OverheadCycles = s.overheadCycles
	p.TotalSamples = s.totalSamples
	p.Overflows = s.overflows
	p.SamplesDropped = s.samplesDropped
	return nil
}
