// Package pmu models the Itanium 2 performance-monitoring unit as used by
// ADORE: accumulative counters (CPU cycles, retired instructions, data-cache
// load misses), the Branch Trace Buffer (the 4 most recent branch outcomes
// with source/target addresses), the Data Event Address Registers (most
// recent data-cache load miss at or above a latency threshold), and
// cycle-interval sampling into a kernel-side System Sample Buffer whose
// overflow invokes a registered handler — the equivalent of the perfmon
// buffer-overflow signal that ADORE's signal handler consumes.
package pmu

// BranchRec is one Branch Trace Buffer entry.
type BranchRec struct {
	Src   uint64 // PC of the branch instruction
	Dst   uint64 // target (meaningful when Taken)
	Taken bool
}

// DearRec is the Data Event Address Register contents: the most recent
// data-cache load miss with latency >= the configured threshold.
type DearRec struct {
	PC      uint64 // PC of the missing load
	Addr    uint64 // missed data address
	Latency uint32 // observed load latency in cycles
	Valid   bool
}

// BTBEntries is the depth of the branch trace buffer ("recording the most
// recent 4 branch outcomes").
const BTBEntries = 4

// Sample is the n-tuple ADORE receives per PMU sample:
// <sample index, pc, CPU cycles, D-cache miss count, retired instruction
// count, BTB values, DEAR values>. Counter fields are accumulative, as on
// hardware; consumers difference adjacent samples.
type Sample struct {
	Index   uint64
	PC      uint64
	Cycles  uint64
	Retired uint64
	DMiss   uint64
	BTB     [BTBEntries]BranchRec
	NBTB    int
	DEAR    DearRec
}

// Config programs the sampling hardware.
type Config struct {
	// SampleInterval is R: one sample every R CPU cycles. The paper uses
	// 100k-300k cycles on wall-clock scale runs; the simulation default
	// is scaled down with the run length (see internal/core.Config).
	SampleInterval uint64
	// SSBSize is N, the kernel sample buffer capacity; the buffer
	// overflow signal fires every N samples.
	SSBSize int
	// DearLatencyMin is the DEAR qualification threshold in cycles.
	// ADORE programs 8: "this much latency implies L2 or L3 cache
	// misses".
	DearLatencyMin uint32
	// HandlerCyclesPerSample approximates the signal-handler cost of
	// copying one sample from the SSB to the user event buffer. It is
	// charged to the monitored thread at every overflow, which is the
	// dominant ADORE overhead measured by Fig. 11.
	HandlerCyclesPerSample uint64

	// IntervalJitter randomizes each sampling interval by up to ±half
	// this many cycles (perfmon's sampling-period randomization).
	// Without it a deterministic loop phase-locks with the sampler and
	// the DEAR only ever shows one of the loop's delinquent loads.
	// Zero selects the default of SampleInterval/4.
	IntervalJitter uint64
}

// DefaultConfig returns sampling parameters scaled for simulated runs of
// tens of millions of instructions.
func DefaultConfig() Config {
	return Config{
		SampleInterval:         2000,
		SSBSize:                256,
		DearLatencyMin:         8,
		HandlerCyclesPerSample: 30,
	}
}

// OverflowHandler receives the full SSB when it fills. The slice is only
// valid for the duration of the call; handlers copy what they keep. The
// returned value is ignored; overhead is charged via HandlerCyclesPerSample.
type OverflowHandler func(samples []Sample)

// PMU is the monitoring unit attached to one simulated CPU.
type PMU struct {
	cfg     Config
	enabled bool

	// Accumulative architectural counters, updated by the CPU.
	Cycles  uint64
	Retired uint64
	DMiss   uint64

	btb    [BTBEntries]BranchRec
	btbLen int
	btbPos int
	dear   DearRec

	nextSampleAt uint64
	sampleIndex  uint64
	ssb          []Sample
	handler      OverflowHandler
	rng          uint64 // deterministic jitter state

	// OverheadCycles accumulates the cycles charged for overflow
	// handling; the CPU adds them to the monitored thread's time.
	OverheadCycles uint64
	TotalSamples   uint64
	Overflows      uint64
	// SamplesDropped counts samples discarded because the SSB overflowed
	// with no handler attached — the kernel buffer wrapped before any
	// consumer read it. Surfaced through core.Stats so observability runs
	// can tell "no events" from "events lost".
	SamplesDropped uint64
}

// New returns a PMU with the given configuration, disabled until Start.
func New(cfg Config) *PMU {
	if cfg.SampleInterval == 0 {
		cfg.SampleInterval = DefaultConfig().SampleInterval
	}
	if cfg.SSBSize <= 0 {
		cfg.SSBSize = DefaultConfig().SSBSize
	}
	if cfg.IntervalJitter == 0 {
		cfg.IntervalJitter = cfg.SampleInterval / 4
	}
	return &PMU{cfg: cfg, ssb: make([]Sample, 0, cfg.SSBSize), rng: 0x9e3779b97f4a7c15}
}

// nextInterval returns the jittered sampling interval.
func (p *PMU) nextInterval() uint64 {
	if p.cfg.IntervalJitter == 0 {
		return p.cfg.SampleInterval
	}
	p.rng = p.rng*6364136223846793005 + 1442695040888963407
	j := (p.rng >> 33) % p.cfg.IntervalJitter
	return p.cfg.SampleInterval - p.cfg.IntervalJitter/2 + j
}

// Config returns the programmed configuration.
func (p *PMU) Config() Config { return p.cfg }

// SetHandler installs the SSB overflow handler (ADORE's signal handler).
func (p *PMU) SetHandler(h OverflowHandler) { p.handler = h }

// Start enables sampling beginning at the given cycle.
func (p *PMU) Start(now uint64) {
	p.enabled = true
	p.nextSampleAt = now + p.nextInterval()
}

// Stop disables sampling and flushes a partial SSB to the handler, so the
// optimizer sees the tail of the run.
func (p *PMU) Stop() {
	p.enabled = false
	p.flush()
}

// Enabled reports whether sampling is active.
func (p *PMU) Enabled() bool { return p.enabled }

// NextSampleAt returns the cycle of the next sample; the CPU compares this
// inline to avoid a call per retired instruction.
func (p *PMU) NextSampleAt() uint64 {
	if !p.enabled {
		return ^uint64(0)
	}
	return p.nextSampleAt
}

// OnBranch records a retired branch in the BTB.
func (p *PMU) OnBranch(src, dst uint64, taken bool) {
	p.btb[p.btbPos] = BranchRec{Src: src, Dst: dst, Taken: taken}
	p.btbPos = (p.btbPos + 1) % BTBEntries
	if p.btbLen < BTBEntries {
		p.btbLen++
	}
}

// OnLoadMiss records a data-cache load miss. Every L1D load miss bumps the
// miss counter; misses at or above the DEAR threshold also latch the DEAR.
func (p *PMU) OnLoadMiss(pc, addr uint64, latency uint32) {
	p.DMiss++
	if latency >= p.cfg.DearLatencyMin {
		p.dear = DearRec{PC: pc, Addr: addr, Latency: latency, Valid: true}
	}
}

// TakeSample captures one sample at the given PC and cycle count. The CPU
// calls it when cycles cross NextSampleAt.
func (p *PMU) TakeSample(pc, cycles uint64) {
	if !p.enabled {
		return
	}
	p.Cycles = cycles
	s := Sample{
		Index:   p.sampleIndex,
		PC:      pc,
		Cycles:  p.Cycles,
		Retired: p.Retired,
		DMiss:   p.DMiss,
		DEAR:    p.dear,
	}
	// Copy the BTB oldest-first.
	n := p.btbLen
	s.NBTB = n
	for i := 0; i < n; i++ {
		s.BTB[i] = p.btb[(p.btbPos-n+i+BTBEntries)%BTBEntries]
	}
	p.dear.Valid = false // DEAR is consumed by the sample that reads it
	p.sampleIndex++
	p.TotalSamples++
	p.ssb = append(p.ssb, s)
	p.nextSampleAt = cycles + p.nextInterval()
	if len(p.ssb) >= p.cfg.SSBSize {
		p.overflow()
	}
}

func (p *PMU) overflow() {
	p.Overflows++
	p.OverheadCycles += uint64(len(p.ssb)) * p.cfg.HandlerCyclesPerSample
	if p.handler != nil {
		p.handler(p.ssb)
	} else {
		p.SamplesDropped += uint64(len(p.ssb))
	}
	p.ssb = p.ssb[:0]
}

func (p *PMU) flush() {
	if len(p.ssb) > 0 {
		p.overflow()
	}
}

// PendingSamples reports the current SSB fill level.
func (p *PMU) PendingSamples() int { return len(p.ssb) }
