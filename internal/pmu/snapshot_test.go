package pmu

import (
	"reflect"
	"testing"
)

// TestPMUSnapshotFieldCoverage is the state-exhaustiveness net for the
// fork engine: every PMU field must be explicitly classified. A new
// field that Snapshot/Restore were not taught about fails by name.
func TestPMUSnapshotFieldCoverage(t *testing.T) {
	covered := map[string]string{
		"cfg": "validated by Restore",

		"enabled":        "captured",
		"Cycles":         "captured",
		"Retired":        "captured",
		"DMiss":          "captured",
		"btb":            "captured",
		"btbLen":         "captured",
		"btbPos":         "captured",
		"dear":           "captured",
		"nextSampleAt":   "captured",
		"sampleIndex":    "captured",
		"ssb":            "captured",
		"rng":            "captured (deterministic jitter state)",
		"OverheadCycles": "captured",
		"TotalSamples":   "captured",
		"Overflows":      "captured",
		"SamplesDropped": "captured",

		"handler": "host closure, re-registered by the resuming assembly",
	}
	typ := reflect.TypeOf(PMU{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		if _, ok := covered[name]; !ok {
			t.Errorf("pmu.PMU has a new field %q not classified for snapshot coverage — teach Snapshot/Restore about it, then add it to this list", name)
		}
	}
	for name := range covered {
		if _, ok := typ.FieldByName(name); !ok {
			t.Errorf("coverage list names %q, which no longer exists on pmu.PMU — prune it", name)
		}
	}
}

// TestPMUSnapshotRoundTrip drives two identical PMUs, snapshots one
// mid-stream, perturbs it, restores, and demands the remaining sample
// stream (including the jittered sample schedule) match its twin's
// bit-for-bit.
func TestPMUSnapshotRoundTrip(t *testing.T) {
	cfg := Config{SampleInterval: 100, SSBSize: 8, DearLatencyMin: 4, HandlerCyclesPerSample: 10}
	drive := func(p *PMU, lo, hi uint64) []Sample {
		var got []Sample
		p.SetHandler(func(s []Sample) { got = append(got, s...) })
		for cyc := lo; cyc < hi; cyc++ {
			p.Retired += 3
			if cyc%7 == 0 {
				p.OnBranch(cyc, cyc+16, cyc%14 == 0)
			}
			if cyc%13 == 0 {
				p.OnLoadMiss(cyc, cyc*8, uint32(cyc%50))
			}
			if cyc >= p.NextSampleAt() {
				p.TakeSample(cyc, cyc)
			}
		}
		return got
	}

	a, b := New(cfg), New(cfg)
	a.Start(0)
	b.Start(0)
	drive(a, 0, 5000)
	drive(b, 0, 5000)
	snap := a.Snapshot()

	// Perturb a past the snapshot, then rewind.
	drive(a, 5000, 9000)
	if err := a.Restore(snap); err != nil {
		t.Fatal(err)
	}
	sa := drive(a, 5000, 20000)
	sb := drive(b, 5000, 20000)
	if len(sa) != len(sb) {
		t.Fatalf("restored PMU produced %d samples, twin %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("sample %d diverged: %+v vs %+v", i, sa[i], sb[i])
		}
	}
	if a.TotalSamples != b.TotalSamples || a.Overflows != b.Overflows || a.OverheadCycles != b.OverheadCycles {
		t.Fatalf("counters diverged: %d/%d/%d vs %d/%d/%d",
			a.TotalSamples, a.Overflows, a.OverheadCycles, b.TotalSamples, b.Overflows, b.OverheadCycles)
	}

	// Config mismatch is an error.
	other := cfg
	other.SampleInterval++
	if err := New(other).Restore(snap); err == nil {
		t.Error("config mismatch not rejected")
	}
}
