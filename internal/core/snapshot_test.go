package core

import (
	"reflect"
	"testing"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/pmu"
)

// checkFieldCoverage is the state-exhaustiveness net for the fork engine:
// every field of the controller (and the pipeline sub-structures flattened
// into its snapshot) must be explicitly classified. A new field that
// Snapshot/Restore were not taught about fails the test by name.
func checkFieldCoverage(t *testing.T, typ reflect.Type, covered map[string]string) {
	t.Helper()
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		if _, ok := covered[name]; !ok {
			t.Errorf("%s has a new field %q not classified for snapshot coverage — teach Snapshot/Restore about it, then add it to this list", typ, name)
		}
	}
	for name := range covered {
		if _, ok := typ.FieldByName(name); !ok {
			t.Errorf("%s coverage list names %q, which no longer exists — prune it", typ, name)
		}
	}
}

func TestControllerSnapshotFieldCoverage(t *testing.T) {
	checkFieldCoverage(t, reflect.TypeOf(Controller{}), map[string]string{
		"cfg":  "structural: the continuation assembles its own (policy fields MAY differ)",
		"code": "structural: code contents restored separately (program.CodeSnapshot)",
		"pmu":  "structural: restored separately (pmu.Snapshot)",
		"mem":  "structural: forked separately (memsys.Memory.Fork)",

		"ueb":  "state flattened into the snapshot (windows, seq, prev counters)",
		"det":  "state flattened into the snapshot (history, aggregation, signature table)",
		"pool": "cursor captured; capacity validated by Restore; contents live in the code space",
		"sel":  "usage counts captured; policy table is structural",

		"opt":   "stateless: pure function of cfg",
		"phase": "stateless policy object",
		"trace": "stateless policy object",
		"pf":    "policy object; continuations deliberately swap it (fork contract)",

		"newWindows": "captured",
		"patches":    "captured",
		"optimized":  "captured",
		"blacklist":  "captured",
		"instr":      "captured (patch pointers flattened to indices)",
		"findings":   "captured",
		"obs":        "enablement validated; recorder contents and delta baselines captured",
		"Stats":      "captured",

		"OnWindow":      "host closure, re-registered by the resuming assembly",
		"OnOptimize":    "host closure, re-registered by the resuming assembly",
		"OnPolicyPoint": "host closure (the fork engine's own divergence hook)",
	})
	checkFieldCoverage(t, reflect.TypeOf(UEB{}), map[string]string{
		"w":           "structural: capacity from cfg",
		"windows":     "captured",
		"seq":         "captured",
		"prevCycles":  "captured",
		"prevRetired": "captured",
		"prevDMiss":   "captured",
		"havePrev":    "captured",
	})
	checkFieldCoverage(t, reflect.TypeOf(PhaseDetector{}), map[string]string{
		"cfg":          "structural: thresholds from cfg",
		"history":      "captured",
		"pending":      "captured",
		"agg":          "captured",
		"inStable":     "captured",
		"sinceStable":  "captured",
		"lastSig":      "captured",
		"windowsSeen":  "captured",
		"DoubleEvents": "captured",
		"table":        "captured",
		"TableHits":    "captured",
		"TableMisses":  "captured",
	})
	checkFieldCoverage(t, reflect.TypeOf(TracePool{}), map[string]string{
		"code": "structural: pool segment contents restored with the code space",
		"seg":  "structural: capacity validated by Restore",
		"next": "captured",
	})
	checkFieldCoverage(t, reflect.TypeOf(observeState{}), map[string]string{
		"rec":       "enablement validated; events and drop count captured (obs.Recorder.Restore)",
		"m":         "structural: re-attached by Attach",
		"img":       "structural: re-attached by SetImage",
		"prevStack": "captured",
		"prevLoop":  "captured",
		"prevPf":    "captured",
		"prevL1D":   "captured",
	})
	checkFieldCoverage(t, reflect.TypeOf(Selector{}), map[string]string{
		"policies": "structural: rebuilt from the policy registry",
		"use":      "captured",
	})
}

// TestControllerSnapshotRoundTrip populates every captured field of a
// controller, snapshots it, restores into a freshly assembled twin, and
// demands the twin's own snapshot be deeply equal — which exercises every
// deep-copy path in both directions.
func TestControllerSnapshotRoundTrip(t *testing.T) {
	cfg := testControllerConfig()
	cfg.Selector = true
	cfg.Observe = true
	mk := func() *Controller {
		cs := codeWith(t, loopBundles())
		c, err := NewController(cfg, cs, pmu.New(cfg.Sampling))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c := mk()

	c.ueb.windows = []windowData{{
		samples: []pmu.Sample{{Index: 1, PC: 0x1000, Cycles: 5000, Retired: 1200, DMiss: 30}},
		metrics: WindowMetrics{Seq: 1, CPI: 2.5},
	}}
	c.ueb.seq = 2
	c.ueb.prevCycles, c.ueb.prevRetired, c.ueb.prevDMiss, c.ueb.havePrev = 5000, 1200, 30, true

	c.det.history = []WindowMetrics{{Seq: 0}, {Seq: 1, CPI: 2.5}}
	c.det.pending = []WindowMetrics{{Seq: 2}}
	c.det.agg = 2
	c.det.inStable = true
	c.det.sinceStable = 3
	c.det.lastSig = 0x1080
	c.det.windowsSeen = 7
	c.det.DoubleEvents = 1
	c.det.table = []tableEntry{{pcCenter: 0x1080, cpiSum: 5.0, dpiSum: 0.02, count: 4, fired: true}}
	c.det.TableHits, c.det.TableMisses = 2, 5

	c.pool.next = 3
	c.patches = []*PatchRecord{{Entry: 0x1000, TraceAddr: cfg.TracePoolBase, TraceEnd: cfg.TracePoolBase + 48, Active: true, PrePatch: 2.0}}
	c.optimized = []float64{0x1080}
	c.blacklist = []float64{0x2080}
	c.newWindows = []WindowMetrics{{Seq: 9}}
	c.instr = []*instrRecord{{
		patch:   c.patches[0],
		bufBase: 0x9000, loadPC: 0x1010, addrReg: 4, avgLat: 12.5, phaseCPI: 1.5,
		origCopy: &Trace{Start: 0x1000, Bundles: append([]isa.Bundle(nil), loopBundles()[:2]...), Orig: []uint64{0x1000, 0x1010}, IsLoop: true, BackEdge: 1},
	}}
	c.sel.use["adaptive"] = 3
	c.sel.use["nextline"] = 1
	c.obs.prevLoop = map[int]cpu.CPIStack{1: {}}
	c.Stats.WindowsObserved = 12
	c.Stats.TracesPatched = 1

	snap := c.Snapshot()
	twin := mk()
	if err := twin.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := twin.Snapshot(); !reflect.DeepEqual(got, snap) {
		t.Fatalf("restored controller re-snapshots differently:\n got %+v\nwant %+v", got, snap)
	}

	// The restore must be a deep copy: mutating the source afterwards must
	// not leak into the twin.
	c.ueb.windows[0].samples[0].PC = 0xdead
	c.det.table[0].count = 99
	*c.patches[0] = PatchRecord{}
	if twin.ueb.windows[0].samples[0].PC == 0xdead || twin.det.table[0].count == 99 || twin.patches[0].Entry != 0x1000 {
		t.Fatal("restored state aliases the source controller")
	}
}

// TestControllerSnapshotRestoreValidation pins the structural error paths:
// trace-pool capacity and observability enablement must match.
func TestControllerSnapshotRestoreValidation(t *testing.T) {
	cfg := testControllerConfig()
	c, err := NewController(cfg, codeWith(t, loopBundles()), nil)
	if err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()

	smaller := cfg
	smaller.TracePoolBundles /= 2
	sc, err := NewController(smaller, codeWith(t, loopBundles()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Restore(snap); err == nil {
		t.Error("trace-pool capacity mismatch not rejected")
	}

	observed := cfg
	observed.Observe = true
	oc, err := NewController(observed, codeWith(t, loopBundles()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := oc.Restore(snap); err == nil {
		t.Error("observability mismatch not rejected (blind snapshot into observed controller)")
	}
	if err := c.Restore(oc.Snapshot()); err == nil {
		t.Error("observability mismatch not rejected (observed snapshot into blind controller)")
	}
}
