package core

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/memsys"
	"repro/internal/obs"
	"repro/internal/pmu"
	"repro/internal/verify"
)

// Controller snapshotting for the checkpoint/fork engine (DESIGN.md §16).
// A snapshot deep-copies every run-varying field of the dynopt pipeline:
// the UEB (windows and their samples), the phase detector (history,
// aggregation, signature table), the trace pool cursor, patch records,
// handled-phase signatures, pending windows, live instrumentation
// experiments, verifier findings, selector usage, the observability
// recorder contents and per-window delta baselines, and Stats.
//
// The controller's structural wiring — code space, PMU, policies, hooks —
// is NOT captured: a fork continuation assembles its own controller (with
// its own, possibly different, prefetch policy and selector) and Restore
// overwrites only the accumulated state. That is what makes forking at a
// policy-divergence point meaningful: everything the pipeline did before
// the snapshot is policy-independent, so the same snapshot seeds any
// policy's continuation.

// instrState captures one live instrumentation experiment. The patch
// pointer is flattened to an index into the snapshot's patch list and
// re-linked on restore.
type instrState struct {
	patchIdx int // index into patches; -1 when unlinked
	bufBase  uint64
	loadPC   uint64
	addrReg  isa.Reg
	avgLat   float64
	origCopy *Trace
	phaseCPI float64
}

// Snapshot captures the controller's run-varying state.
type Snapshot struct {
	uebWindows  []windowData
	uebSeq      int
	prevCycles  uint64
	prevRetired uint64
	prevDMiss   uint64
	havePrev    bool

	detHistory     []WindowMetrics
	detPending     []WindowMetrics
	detAgg         int
	detInStable    bool
	detSinceStable int
	detLastSig     float64
	detWindowsSeen int
	detDouble      int
	detTable       []tableEntry
	detTableHits   int
	detTableMisses int

	poolSize int // pool capacity in bundles, for restore validation
	poolNext int

	patches    []PatchRecord
	optimized  []float64
	blacklist  []float64
	newWindows []WindowMetrics
	instr      []instrState
	findings   []verify.Finding
	selUse     map[string]int

	obsEvents    []obs.Event
	obsDropped   uint64
	obsRecording bool
	prevStack    cpu.CPIStack
	prevLoop     map[int]cpu.CPIStack
	prevPf       memsys.PrefetchStats
	prevL1D      memsys.CacheStats

	stats Stats
}

// Snapshot deep-copies the controller's mutable state.
func (c *Controller) Snapshot() *Snapshot {
	s := &Snapshot{
		uebSeq:      c.ueb.seq,
		prevCycles:  c.ueb.prevCycles,
		prevRetired: c.ueb.prevRetired,
		prevDMiss:   c.ueb.prevDMiss,
		havePrev:    c.ueb.havePrev,

		detHistory:     append([]WindowMetrics(nil), c.det.history...),
		detPending:     append([]WindowMetrics(nil), c.det.pending...),
		detAgg:         c.det.agg,
		detInStable:    c.det.inStable,
		detSinceStable: c.det.sinceStable,
		detLastSig:     c.det.lastSig,
		detWindowsSeen: c.det.windowsSeen,
		detDouble:      c.det.DoubleEvents,
		detTable:       append([]tableEntry(nil), c.det.table...),
		detTableHits:   c.det.TableHits,
		detTableMisses: c.det.TableMisses,

		poolSize: len(c.pool.seg.Bundles),
		poolNext: c.pool.next,

		optimized:  append([]float64(nil), c.optimized...),
		blacklist:  append([]float64(nil), c.blacklist...),
		newWindows: append([]WindowMetrics(nil), c.newWindows...),
		findings:   append([]verify.Finding(nil), c.findings...),

		obsRecording: c.obs.rec != nil,
		prevStack:    c.obs.prevStack,
		prevPf:       c.obs.prevPf,
		prevL1D:      c.obs.prevL1D,

		stats: c.Stats,
	}
	s.uebWindows = make([]windowData, len(c.ueb.windows))
	for i, w := range c.ueb.windows {
		s.uebWindows[i] = windowData{
			samples: append([]pmu.Sample(nil), w.samples...),
			metrics: w.metrics,
		}
	}
	s.patches = make([]PatchRecord, len(c.patches))
	for i, rec := range c.patches {
		s.patches[i] = *rec
	}
	s.instr = make([]instrState, 0, len(c.instr))
	for _, ir := range c.instr {
		st := instrState{
			patchIdx: -1,
			bufBase:  ir.bufBase,
			loadPC:   ir.loadPC,
			addrReg:  ir.addrReg,
			avgLat:   ir.avgLat,
			phaseCPI: ir.phaseCPI,
		}
		if ir.origCopy != nil {
			st.origCopy = cloneTrace(ir.origCopy)
		}
		for pi, rec := range c.patches {
			if rec == ir.patch {
				st.patchIdx = pi
				break
			}
		}
		s.instr = append(s.instr, st)
	}
	if c.sel != nil {
		s.selUse = make(map[string]int, len(c.sel.use))
		for k, v := range c.sel.use {
			s.selUse[k] = v
		}
	}
	if c.obs.rec != nil {
		s.obsEvents = c.obs.rec.Events()
		s.obsDropped = c.obs.rec.Dropped()
		s.prevLoop = make(map[int]cpu.CPIStack, len(c.obs.prevLoop))
		for k, v := range c.obs.prevLoop {
			s.prevLoop[k] = v
		}
	}
	return s
}

// Restore overwrites the controller's mutable state from s. Call it on a
// freshly assembled controller after Attach (Restore rewinds nothing on
// the CPU or PMU — those have their own snapshots). The receiver's
// prefetch policy and selector MAY differ from the snapshotted run's: the
// snapshot must then have been taken before any policy-dependent decision
// (the fork engine's OnPolicyPoint contract). Structural mismatches —
// trace pool capacity, observability enablement — are errors.
func (c *Controller) Restore(s *Snapshot) error {
	if len(c.pool.seg.Bundles) != s.poolSize {
		return fmt.Errorf("core: snapshot pool capacity %d does not match %d", s.poolSize, len(c.pool.seg.Bundles))
	}
	if (c.obs.rec != nil) != s.obsRecording {
		return fmt.Errorf("core: snapshot observability (%v) does not match controller's (%v)", s.obsRecording, c.obs.rec != nil)
	}

	c.ueb.windows = make([]windowData, len(s.uebWindows))
	for i, w := range s.uebWindows {
		c.ueb.windows[i] = windowData{
			samples: append([]pmu.Sample(nil), w.samples...),
			metrics: w.metrics,
		}
	}
	c.ueb.seq = s.uebSeq
	c.ueb.prevCycles = s.prevCycles
	c.ueb.prevRetired = s.prevRetired
	c.ueb.prevDMiss = s.prevDMiss
	c.ueb.havePrev = s.havePrev

	c.det.history = append(c.det.history[:0], s.detHistory...)
	c.det.pending = append(c.det.pending[:0], s.detPending...)
	c.det.agg = s.detAgg
	c.det.inStable = s.detInStable
	c.det.sinceStable = s.detSinceStable
	c.det.lastSig = s.detLastSig
	c.det.windowsSeen = s.detWindowsSeen
	c.det.DoubleEvents = s.detDouble
	c.det.table = append(c.det.table[:0], s.detTable...)
	c.det.TableHits = s.detTableHits
	c.det.TableMisses = s.detTableMisses

	c.pool.next = s.poolNext

	c.patches = make([]*PatchRecord, len(s.patches))
	for i := range s.patches {
		rec := s.patches[i]
		c.patches[i] = &rec
	}
	c.optimized = append([]float64(nil), s.optimized...)
	c.blacklist = append([]float64(nil), s.blacklist...)
	c.newWindows = append([]WindowMetrics(nil), s.newWindows...)
	c.findings = append([]verify.Finding(nil), s.findings...)

	c.instr = make([]*instrRecord, 0, len(s.instr))
	for _, st := range s.instr {
		ir := &instrRecord{
			bufBase:  st.bufBase,
			loadPC:   st.loadPC,
			addrReg:  st.addrReg,
			avgLat:   st.avgLat,
			phaseCPI: st.phaseCPI,
		}
		if st.origCopy != nil {
			ir.origCopy = cloneTrace(st.origCopy)
		}
		if st.patchIdx >= 0 && st.patchIdx < len(c.patches) {
			ir.patch = c.patches[st.patchIdx]
		}
		c.instr = append(c.instr, ir)
	}

	if c.sel != nil {
		use := make(map[string]int, len(s.selUse))
		for k, v := range s.selUse {
			use[k] = v
		}
		c.sel.use = use
	}

	if c.obs.rec != nil {
		if err := c.obs.rec.Restore(s.obsEvents, s.obsDropped); err != nil {
			return err
		}
		c.obs.prevStack = s.prevStack
		c.obs.prevPf = s.prevPf
		c.obs.prevL1D = s.prevL1D
		c.obs.prevLoop = make(map[int]cpu.CPIStack, len(s.prevLoop))
		for k, v := range s.prevLoop {
			c.obs.prevLoop[k] = v
		}
	}

	c.Stats = s.stats
	return nil
}

// PendingWindows reports the number of profile windows delivered by the
// PMU but not yet consumed by the poll hook — the fork engine's gate for
// snapshot-worthy hook boundaries (a pending window may be about to make a
// phase stable and trigger the first policy decision).
func (c *Controller) PendingWindows() int { return len(c.newWindows) }
