package core

// Selector is the runtime policy selector (Config.Selector): at every
// stable phase it inspects the machine's live counters — bus occupancy and
// lfetch usefulness, the same per-window signals the obs layer exports as
// CPIStack/PrefetchWindow deltas — and picks the prefetch policy whose
// assumptions the counters currently support. Decisions happen at patch
// boundaries only (a policy never changes under an installed trace), and
// the rules are pure functions of the counters, so runs stay
// deterministic.
//
// The decision ladder, most-specific first:
//
//	bus saturated      → throttle (stop adding traffic)
//	prefetches late    → adaptive (retune the distance)
//	otherwise          → paper (no evidence against the default)
//
// A phase where the chosen policy injects nothing (e.g. slice analysis
// classified no loads) falls back to next-line prefetching, which needs no
// analysis — the selector's edge over every fixed policy on workloads the
// paper's slicer cannot see through.
type Selector struct {
	policies map[string]PrefetchPolicy
	use      map[string]int
}

// Selector thresholds. selMinIssued gates the usefulness rule until enough
// lfetches resolved to trust the ratio; selLateFrac mirrors the adaptive
// policy's own trigger so a selector pick of "adaptive" always lands in its
// retuning regime. The selector deliberately acts on the late signal only:
// lateness directly measures a distance shortfall, while the evicted-unused
// counter also charges fills evicted by later prefetches of the same stream
// and can exceed the issue count outright, so retuning on it regresses
// workloads (parser) where the late ratio says the distance is fine.
const (
	selMinIssued = adaptiveMinIssued
	selLateFrac  = adaptiveLateFrac
)

// NewSelector instantiates every registered prefetch policy under cfg.
func NewSelector(cfg Config) *Selector {
	s := &Selector{policies: map[string]PrefetchPolicy{}, use: map[string]int{}}
	for _, name := range PrefetchPolicyNames() {
		p, err := NewPrefetchPolicy(name, cfg)
		if err != nil {
			continue // unreachable: names come from the registry
		}
		s.policies[name] = p
	}
	return s
}

// Pick chooses the prefetch policy for one stable phase.
func (s *Selector) Pick(ctx PrefetchContext) PrefetchPolicy {
	name := PolicyPaper
	if throttled(ctx) {
		name = PolicyThrottle
	} else if pf := ctx.Prefetch; pf.Issued >= selMinIssued {
		resolved := pf.Useful + pf.Late
		if resolved > 0 && float64(pf.Late) > selLateFrac*float64(resolved) {
			name = PolicyAdaptive
		}
	}
	s.use[name]++
	return s.policies[name]
}

// Fallback returns the policy to retry with when cur injected nothing
// into a trace, or nil when the chain is exhausted. Next-line is the
// terminal fallback: it is the only policy that works without pattern
// classification.
func (s *Selector) Fallback(cur string) PrefetchPolicy {
	if cur == PolicyNextLine {
		return nil
	}
	return s.policies[PolicyNextLine]
}

// noteUse records a fallback policy actually winning a trace, so Use
// reflects the code that ran, not just the first pick.
func (s *Selector) noteUse(name string) { s.use[name]++ }

// Use reports how many decisions landed on each policy, for summaries.
func (s *Selector) Use() map[string]int {
	out := make(map[string]int, len(s.use))
	for k, v := range s.use {
		out[k] = v
	}
	return out
}
