package core

import (
	"testing"

	"repro/internal/isa"
)

// twoBundleLoop builds a loop trace with a free M slot in the first bundle
// and a free I slot in the latch.
func twoBundleLoop() *Trace {
	t := &Trace{Start: 0x1000, IsLoop: true, LoopHead: 0, BackEdge: 1}
	t.append(0x1000, isa.Bundle{Tmpl: isa.TmplMMI, Slots: [3]isa.Inst{
		{Op: isa.OpLd8, R1: 20, R3: 14, PostInc: 8},
		isa.Nop, // free M slot
		{Op: isa.OpAddI, R1: 10, Imm: -1, R3: 10},
	}})
	t.append(0x1010, isa.Bundle{Tmpl: isa.TmplMIB, Slots: [3]isa.Inst{
		{Op: isa.OpCmpI, Rel: isa.CmpLt, P1: 1, P2: 2, Imm: 0, R3: 10},
		isa.Nop, // free I slot
		{Op: isa.OpBrCond, QP: 1, Target: 0x1000},
	}})
	return t
}

func TestPlaceReusesFreeSlot(t *testing.T) {
	tr := twoBundleLoop()
	ed := &editor{t: tr}
	lf := isa.Inst{Op: isa.OpLfetch, R3: 27, PostInc: 8}
	bi, si, ok := ed.place(lf, 0, 0, true)
	if !ok || bi != 0 || si != 1 {
		t.Fatalf("placed at (%d,%d,%v), want (0,1)", bi, si, ok)
	}
	if len(tr.Bundles) != 2 {
		t.Fatal("new bundle inserted despite free slot")
	}
	if tr.Bundles[0].Slots[1] != lf {
		t.Fatal("slot not written")
	}
}

func TestPlaceRespectsUnitTyping(t *testing.T) {
	tr := twoBundleLoop()
	ed := &editor{t: tr}
	// An A-type op fits the free I slot in the latch when back-edge reuse
	// is allowed...
	add := isa.Inst{Op: isa.OpAddI, R1: 28, Imm: 4, R3: 28}
	bi, si, ok := ed.place(add, 1, 0, true)
	if !ok || bi != 1 || si != 1 {
		t.Fatalf("A-type placement = (%d,%d,%v)", bi, si, ok)
	}
	// ...but an lfetch (M unit) cannot use an I slot: a fresh bundle is
	// inserted before the back edge.
	tr2 := twoBundleLoop()
	tr2.Bundles[0].Slots[1] = isa.Inst{Op: isa.OpLd8, R1: 21, R3: 15} // fill the M slot
	ed2 := &editor{t: tr2}
	lf := isa.Inst{Op: isa.OpLfetch, R3: 27}
	bi, _, ok = ed2.place(lf, 0, 0, false)
	if !ok {
		t.Fatal("placement failed")
	}
	if len(tr2.Bundles) != 3 {
		t.Fatalf("bundles = %d, want 3 (new bundle)", len(tr2.Bundles))
	}
	if tr2.BackEdge != 2 {
		t.Fatalf("back edge not shifted: %d", tr2.BackEdge)
	}
	if bi >= tr2.BackEdge {
		t.Fatal("instruction placed at or after back edge")
	}
}

func TestPlaceOrderingConstraint(t *testing.T) {
	tr := twoBundleLoop()
	ed := &editor{t: tr}
	// Constraint (0,2) means after slot 1: the free M slot at (0,1) is
	// not allowed.
	lf := isa.Inst{Op: isa.OpLfetch, R3: 27}
	bi, si, ok := ed.place(lf, 0, 2, false)
	if !ok {
		t.Fatal("placement failed")
	}
	if bi == 0 && si <= 1 {
		t.Fatalf("ordering violated: placed at (%d,%d)", bi, si)
	}
}

func TestNaiveScheduleAlwaysInsertsBundles(t *testing.T) {
	tr := twoBundleLoop()
	ed := &editor{t: tr, naive: true}
	lf := isa.Inst{Op: isa.OpLfetch, R3: 27, PostInc: 8}
	_, _, ok := ed.place(lf, 0, 0, true)
	if !ok {
		t.Fatal("placement failed")
	}
	if len(tr.Bundles) != 3 {
		t.Fatalf("naive schedule reused a slot: %d bundles", len(tr.Bundles))
	}
}

func TestPrologueShiftsLoopHeadAndBackEdge(t *testing.T) {
	tr := twoBundleLoop()
	ed := &editor{t: tr}
	ed.prologue([]isa.Inst{
		{Op: isa.OpAddI, R1: 27, Imm: 128, R3: 14},
		{Op: isa.OpAddI, R1: 28, Imm: 256, R3: 14},
	})
	if tr.LoopHead != 1 || tr.BackEdge != 2 {
		t.Fatalf("head/backEdge = %d/%d, want 1/2", tr.LoopHead, tr.BackEdge)
	}
	if len(tr.Bundles) != 3 {
		t.Fatalf("bundles = %d", len(tr.Bundles))
	}
	// Both adds packed into one bundle.
	n := 0
	for _, in := range tr.Bundles[0].Slots {
		if in.Op == isa.OpAddI {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("prologue adds in first bundle = %d", n)
	}
	// Synthesized bundles have no original address.
	if tr.Orig[0] != 0 {
		t.Fatalf("prologue bundle has orig %#x", tr.Orig[0])
	}
}

func TestPlaceBeforeFallsBackToLoopHead(t *testing.T) {
	tr := twoBundleLoop()
	// Fill every slot before the constraint.
	tr.Bundles[0].Slots[1] = isa.Inst{Op: isa.OpLd8, R1: 21, R3: 15}
	ed := &editor{t: tr}
	cp := isa.Inst{Op: isa.OpAddI, R1: 28, Imm: 0, R3: 11}
	if !ed.placeBefore(cp, 0, 0) {
		t.Fatal("placeBefore failed")
	}
	// A new bundle at the loop head, still inside the loop.
	if len(tr.Bundles) != 3 || tr.LoopHead != 0 || tr.BackEdge != 2 {
		t.Fatalf("layout after placeBefore: %d bundles, head %d, backEdge %d",
			len(tr.Bundles), tr.LoopHead, tr.BackEdge)
	}
	found := false
	for _, in := range tr.Bundles[0].Slots {
		if in == cp {
			found = true
		}
	}
	if !found {
		t.Fatal("copy not at loop head")
	}
}

func TestEmittedTracesStayValid(t *testing.T) {
	// After a full optimization pass, every bundle still validates.
	tr := traceFromInsts([]isa.Inst{
		{Op: isa.OpLd4, R1: 20, R3: 16, PostInc: 4},
		{Op: isa.OpAdd, R1: 15, R2: 25, R3: 20},
		{Op: isa.OpLd8, R1: 17, R3: 15},
		{Op: isa.OpLd8, R1: 21, R3: 14, PostInc: 8},
	})
	b := flatten(tr)
	var loads []DelinquentLoad
	for _, fi := range b.insts {
		if isa.IsLoad(fi.in.Op) {
			loads = append(loads, DelinquentLoad{
				Bundle: fi.bundle, Slot: fi.slot,
				PC:    tr.Orig[fi.bundle] + uint64(fi.slot),
				Count: 10, TotalLatency: 1500, AvgLatency: 150,
			})
		}
	}
	res := NewOptimizer(DefaultConfig()).Optimize(tr, loads, 2.0)
	if res.Total() == 0 {
		t.Fatalf("nothing inserted: %+v", res)
	}
	for i, bd := range tr.Bundles {
		if err := bd.Validate(); err != nil {
			t.Errorf("bundle %d invalid after optimization: %v", i, err)
		}
	}
}
