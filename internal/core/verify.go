package core

import "repro/internal/verify"

// This file wires the static machine-code verifier (internal/verify) into
// the dynamic optimizer. Behind Config.Verify (on by default), every trace
// the controller is about to install is checked against the pristine copy
// it was grown from; a trace with findings is rejected and the original
// code keeps running unpatched — a bad patch becomes a missed optimization
// instead of a corrupted program.

// View exposes the trace to the verifier. verify cannot import core (core
// imports verify), so the trace crosses as a neutral struct.
func (t *Trace) View() verify.TraceView {
	return verify.TraceView{
		Start:    t.Start,
		Bundles:  t.Bundles,
		Orig:     t.Orig,
		IsLoop:   t.IsLoop,
		LoopHead: t.LoopHead,
		BackEdge: t.BackEdge,
	}
}

// verifyTrace checks an edited trace against the pristine clone its edits
// started from. It reports true when the trace is safe to install. Findings
// are accumulated for inspection (Findings, cmd/adore-lint) and counted in
// Stats.
func (c *Controller) verifyTrace(t, pristine *Trace) bool {
	if !c.cfg.Verify {
		return true
	}
	var base *verify.TraceView
	if pristine != nil {
		v := pristine.View()
		base = &v
	}
	c.Stats.TracesVerified++
	fs := verify.Errors(verify.CheckTrace(t.View(), base, verify.Options{Code: c.code}))
	if len(fs) == 0 {
		return true
	}
	c.Stats.VerifyRejects++
	c.findings = append(c.findings, fs...)
	return false
}

// Findings returns the verifier findings of every rejected trace, in
// rejection order.
func (c *Controller) Findings() []verify.Finding { return c.findings }
