package core

import (
	"sort"
	"testing"

	"repro/internal/isa"
	"repro/internal/pmu"
)

type dearSpec struct {
	lat uint32
	n   int
}

// makeDearSamples fabricates PMU samples carrying DEAR events,
// deterministically ordered by PC.
func makeDearSamples(specs map[uint64]dearSpec) []pmu.Sample {
	pcs := make([]uint64, 0, len(specs))
	for pc := range specs {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	var out []pmu.Sample
	for _, pc := range pcs {
		s := specs[pc]
		for i := 0; i < s.n; i++ {
			out = append(out, pmu.Sample{
				PC:   pc,
				DEAR: pmu.DearRec{PC: pc, Addr: 0x100000 + pc, Latency: s.lat, Valid: true},
			})
		}
	}
	return out
}

// traceFromInsts packs instructions greedily into template-valid bundles
// and appends a back-edge branch bundle.
func traceFromInsts(insts []isa.Inst) *Trace {
	t := &Trace{Start: 0x1000, IsLoop: true}
	addr := uint64(0x1000)
	flush := func(group []isa.Inst) {
		units := make([]isa.Unit, len(group))
		for i, in := range group {
			units[i] = isa.UnitOf(in.Op)
		}
		tmpl, slots, ok := isa.AssignSlots(units)
		if !ok {
			panic("traceFromInsts: unpackable group")
		}
		var bd isa.Bundle
		bd.Tmpl = tmpl
		for i, in := range group {
			bd.Slots[slots[i]] = in
		}
		t.append(addr, bd)
		addr += isa.BundleBytes
	}
	var cur []isa.Inst
	fits := func(group []isa.Inst) bool {
		units := make([]isa.Unit, len(group))
		for i, in := range group {
			units[i] = isa.UnitOf(in.Op)
		}
		_, _, ok := isa.AssignSlots(units)
		return ok
	}
	for _, in := range insts {
		if len(cur) == 3 || !fits(append(append([]isa.Inst{}, cur...), in)) {
			flush(cur)
			cur = nil
		}
		cur = append(cur, in)
	}
	if len(cur) > 0 {
		flush(cur)
	}
	t.append(addr, isa.Bundle{
		Tmpl:  isa.TmplMIB,
		Slots: [3]isa.Inst{isa.Nop, isa.Nop, {Op: isa.OpBrCond, QP: 1, Target: 0x1000}},
	})
	t.LoopHead = 0
	t.BackEdge = len(t.Bundles) - 1
	return t
}

// loadCoords returns the (bundle, slot, pc) of the idx'th instruction in
// flattened order — the robust way to build DelinquentLoad entries.
func loadCoords(t *testing.T, tr *Trace, instIdx int) (int, int, uint64) {
	t.Helper()
	b := flatten(tr)
	if instIdx >= len(b.insts) {
		t.Fatalf("inst index %d out of range", instIdx)
	}
	fi := b.insts[instIdx]
	return fi.bundle, fi.slot, tr.Orig[fi.bundle] + uint64(fi.slot)
}

// classifyLoad flattens the trace and classifies the load at the given
// instruction index.
func classifyLoad(t *testing.T, tr *Trace, instIdx int) Analysis {
	t.Helper()
	b := flatten(tr)
	if instIdx >= len(b.insts) || !isa.IsLoad(b.insts[instIdx].in.Op) {
		t.Fatalf("inst %d is not a load", instIdx)
	}
	return b.classify(instIdx)
}

// Fig. 5A of the paper: direct array reference. r14 is incremented by 4
// three times per iteration ("So the stride is 4 + 4 + 4 = 12").
func TestClassifyDirectFig5A(t *testing.T) {
	tr := traceFromInsts([]isa.Inst{
		{Op: isa.OpAddI, R1: 14, Imm: 4, R3: 14},
		{Op: isa.OpSt4, R2: 20, R3: 14, PostInc: 4},
		{Op: isa.OpLd4, R1: 20, R3: 14},
		{Op: isa.OpAddI, R1: 14, Imm: 4, R3: 14},
	})
	an := classifyLoad(t, tr, 2)
	if an.Pattern != PatternDirect {
		t.Fatalf("pattern = %v, want direct", an.Pattern)
	}
	if an.Stride != 12 {
		t.Fatalf("stride = %d, want 12", an.Stride)
	}
	if an.AddrReg != 14 {
		t.Fatalf("addr reg = r%d", an.AddrReg)
	}
}

// Fig. 5B: indirect array reference c = b[a[k++] - 1].
func TestClassifyIndirectFig5B(t *testing.T) {
	tr := traceFromInsts([]isa.Inst{
		{Op: isa.OpLd4, R1: 20, R3: 16, PostInc: 4},
		{Op: isa.OpAdd, R1: 15, R2: 25, R3: 20},
		{Op: isa.OpAddI, R1: 15, Imm: -1, R3: 15},
		{Op: isa.OpLd1, R1: 15, R3: 15},
	})
	an := classifyLoad(t, tr, 3)
	if an.Pattern != PatternIndirect {
		t.Fatalf("pattern = %v, want indirect", an.Pattern)
	}
	if an.FeederStride != 4 {
		t.Fatalf("feeder stride = %d, want 4", an.FeederStride)
	}
	if an.FeederAddrReg != 16 {
		t.Fatalf("feeder addr reg = r%d, want r16", an.FeederAddrReg)
	}
	if an.FeederDstReg != 20 {
		t.Fatalf("feeder dst = r%d, want r20", an.FeederDstReg)
	}
	if len(an.Transform) != 1 || an.Transform[0].Op != isa.OpAdd {
		t.Fatalf("transform = %v", an.Transform)
	}
	if an.TransformDelta != -1 {
		t.Fatalf("transform delta = %d, want -1", an.TransformDelta)
	}
}

// Fig. 5C: pointer chasing in 181.mcf — tail = arcin->tail; arcin =
// tail->mark. "r11 is the pointer critical to the data traversal."
func TestClassifyPointerFig5C(t *testing.T) {
	tr := traceFromInsts([]isa.Inst{
		{Op: isa.OpAddI, R1: 11, Imm: 104, R3: 34},
		{Op: isa.OpLd8, R1: 11, R3: 11},
		{Op: isa.OpLd8, R1: 34, R3: 11},
	})
	an := classifyLoad(t, tr, 2)
	if an.Pattern != PatternPointer {
		t.Fatalf("pattern = %v, want pointer-chasing", an.Pattern)
	}
	if an.InductionReg != 11 {
		t.Fatalf("induction reg = r%d, want r11", an.InductionReg)
	}
	upd := flatten(tr).insts[an.UpdatePos].in
	if upd.Op != isa.OpLd8 || upd.R1 != 11 {
		t.Fatalf("update inst = %v", upd)
	}
}

// Address computed through an fp-int conversion defeats the slicer (the
// paper's vpr/lucas/gap failure mode).
func TestClassifyFPConversionFails(t *testing.T) {
	tr := traceFromInsts([]isa.Inst{
		{Op: isa.OpLdF, F1: 4, R3: 16, PostInc: 8},
		{Op: isa.OpFCvtFX, R1: 15, F2: 4},
		{Op: isa.OpAdd, R1: 17, R2: 15, R3: 25},
		{Op: isa.OpLd8, R1: 18, R3: 17},
	})
	an := classifyLoad(t, tr, 3)
	if an.Pattern != PatternUnknown {
		t.Fatalf("pattern = %v, want unknown", an.Pattern)
	}
}

// An invariant address register (never advanced) is not prefetchable.
func TestClassifyInvariantAddress(t *testing.T) {
	tr := traceFromInsts([]isa.Inst{
		{Op: isa.OpLd8, R1: 20, R3: 16},
		{Op: isa.OpAddI, R1: 21, Imm: 1, R3: 21},
	})
	an := classifyLoad(t, tr, 0)
	if an.Pattern != PatternUnknown {
		t.Fatalf("pattern = %v, want unknown for invariant address", an.Pattern)
	}
}

// Recompute-style direct reference: address = base + index where the index
// register is a pure induction.
func TestClassifyRecomputedDirect(t *testing.T) {
	tr := traceFromInsts([]isa.Inst{
		{Op: isa.OpAddI, R1: 20, Imm: 8, R3: 20}, // idx += 8
		{Op: isa.OpAdd, R1: 15, R2: 20, R3: 25},  // addr = idx + base
		{Op: isa.OpLd8, R1: 18, R3: 15},
	})
	an := classifyLoad(t, tr, 2)
	if an.Pattern != PatternDirect || an.Stride != 8 {
		t.Fatalf("pattern = %v stride %d, want direct 8", an.Pattern, an.Stride)
	}
}

func TestOptimizeEmitsFig6Shapes(t *testing.T) {
	cfg := DefaultConfig()
	opt := NewOptimizer(cfg)

	// Direct (Fig. 6A): one lfetch with the stride folded into the
	// post-increment, plus one prologue add.
	tr := traceFromInsts([]isa.Inst{
		{Op: isa.OpLd4, R1: 20, R3: 14, PostInc: 12},
		{Op: isa.OpAddI, R1: 21, Imm: 1, R3: 21},
	})
	loads := []DelinquentLoad{{Bundle: 0, Slot: 0, PC: tr.Orig[0], Count: 50, TotalLatency: 8000, AvgLatency: 160}}
	res := opt.Optimize(tr, loads, 2.0)
	if res.Direct != 1 || res.Total() != 1 {
		t.Fatalf("direct result = %+v", res)
	}
	var lf, prologueAdds int
	for bi, bd := range tr.Bundles {
		for _, in := range bd.Slots {
			if in.Op == isa.OpLfetch {
				lf++
				if in.PostInc != 12 {
					t.Fatalf("lfetch post-inc = %d, want 12 (merged stride advance)", in.PostInc)
				}
				if in.R3 < isa.ReservedGRFirst || in.R3 > isa.ReservedGRLast {
					t.Fatalf("lfetch uses non-reserved r%d", in.R3)
				}
				if bi < tr.LoopHead {
					t.Fatal("lfetch placed in prologue")
				}
			}
			if in.Op == isa.OpAddI && in.R1 >= isa.ReservedGRFirst && in.R1 <= isa.ReservedGRLast && bi < tr.LoopHead {
				prologueAdds++
				if in.Imm <= 0 || in.Imm%64 != 0 {
					t.Fatalf("direct prefetch distance %d not L1D-line aligned", in.Imm)
				}
			}
		}
	}
	if lf != 1 || prologueAdds != 1 {
		t.Fatalf("lfetch=%d prologue adds=%d", lf, prologueAdds)
	}

	// Pointer (Fig. 6C): copy at loop top, sub + shladd + lfetch after
	// the pointer update.
	trP := traceFromInsts([]isa.Inst{
		{Op: isa.OpAddI, R1: 11, Imm: 104, R3: 34},
		{Op: isa.OpLd8, R1: 11, R3: 11},
		{Op: isa.OpLd8, R1: 34, R3: 11},
	})
	pb, ps, ppc := loadCoords(t, trP, 2)
	loadsP := []DelinquentLoad{{Bundle: pb, Slot: ps, PC: ppc, Count: 50, TotalLatency: 9000, AvgLatency: 180}}
	resP := opt.Optimize(trP, loadsP, 3.0)
	if resP.Pointer != 1 {
		t.Fatalf("pointer result = %+v", resP)
	}
	var subs, shladds, lfs int
	for _, bd := range trP.Bundles {
		for _, in := range bd.Slots {
			switch in.Op {
			case isa.OpSub:
				subs++
			case isa.OpShlAdd:
				shladds++
				if in.Imm != cfg.IterAheadLog2 {
					t.Fatalf("shladd amplification %d, want %d", in.Imm, cfg.IterAheadLog2)
				}
			case isa.OpLfetch:
				lfs++
			}
		}
	}
	if subs != 1 || shladds != 1 || lfs != 1 {
		t.Fatalf("pointer shape: sub=%d shladd=%d lfetch=%d", subs, shladds, lfs)
	}

	// Indirect (Fig. 6B): ld.s + replayed transform + two lfetch.
	trI := traceFromInsts([]isa.Inst{
		{Op: isa.OpLd4, R1: 20, R3: 16, PostInc: 4},
		{Op: isa.OpAdd, R1: 15, R2: 25, R3: 20},
		{Op: isa.OpAddI, R1: 15, Imm: -1, R3: 15},
		{Op: isa.OpLd1, R1: 15, R3: 15},
	})
	ib, is, ipc := loadCoords(t, trI, 3)
	loadsI := []DelinquentLoad{{Bundle: ib, Slot: is, PC: ipc, Count: 40, TotalLatency: 7000, AvgLatency: 175}}
	resI := opt.Optimize(trI, loadsI, 2.5)
	if resI.Indirect != 1 {
		t.Fatalf("indirect result = %+v", resI)
	}
	var ldS, lfsI int
	for _, bd := range trI.Bundles {
		for _, in := range bd.Slots {
			switch {
			case in.Spec && isa.IsLoad(in.Op):
				ldS++
				if in.Op != isa.OpLd4 {
					t.Fatalf("speculative load op = %s, want ld4 (feeder size preserved)", in.Op)
				}
				if in.PostInc != 4 {
					t.Fatalf("ld.s post-inc = %d, want feeder stride 4", in.PostInc)
				}
			case in.Op == isa.OpLfetch:
				lfsI++
			}
		}
	}
	if ldS != 1 || lfsI != 2 {
		t.Fatalf("indirect shape: ld.s=%d lfetch=%d", ldS, lfsI)
	}
}

func TestOptimizeRespectsRegisterBudget(t *testing.T) {
	// Five direct delinquent loads: only four reserved registers exist,
	// and the top-3 cap applies first.
	var insts []isa.Inst
	for i := 0; i < 5; i++ {
		insts = append(insts, isa.Inst{Op: isa.OpLd8, R1: isa.Reg(40 + i), R3: isa.Reg(50 + i), PostInc: 8})
	}
	tr := traceFromInsts(insts)
	cfg := DefaultConfig()
	var loads []DelinquentLoad
	b := flatten(tr)
	for i := 0; i < 5; i++ {
		fi := b.insts[i]
		loads = append(loads, DelinquentLoad{
			Bundle: fi.bundle, Slot: fi.slot,
			PC:    tr.Orig[fi.bundle] + uint64(fi.slot),
			Count: 10, TotalLatency: uint64(1000 - i), AvgLatency: 100,
		})
	}
	if len(loads) > cfg.MaxDelinquentLoads {
		loads = loads[:cfg.MaxDelinquentLoads]
	}
	res := NewOptimizer(cfg).Optimize(tr, loads, 2.0)
	if res.Direct != 3 {
		t.Fatalf("direct prefetches = %d, want 3 (top-3 cap)", res.Direct)
	}
}

func TestOptimizeSkipsDirectWhenStaticLfetchPresent(t *testing.T) {
	tr := traceFromInsts([]isa.Inst{
		{Op: isa.OpLd8, R1: 20, R3: 14, PostInc: 8},
		{Op: isa.OpLfetch, R3: 26, PostInc: 8}, // compiler-generated
	})
	b := flatten(tr)
	fi := b.insts[0]
	loads := []DelinquentLoad{{Bundle: fi.bundle, Slot: fi.slot, PC: tr.Orig[0], Count: 10, TotalLatency: 1000, AvgLatency: 100}}
	res := NewOptimizer(DefaultConfig()).Optimize(tr, loads, 2.0)
	if res.Direct != 0 || res.Skipped != 1 {
		t.Fatalf("result = %+v, want skip", res)
	}
}

func TestFindDelinquentLoadsRanksAndCaps(t *testing.T) {
	tr := traceFromInsts([]isa.Inst{
		{Op: isa.OpLd8, R1: 20, R3: 14, PostInc: 8},
		{Op: isa.OpLd8, R1: 21, R3: 15, PostInc: 8},
		{Op: isa.OpLd8, R1: 22, R3: 16, PostInc: 8},
		{Op: isa.OpLd8, R1: 23, R3: 17, PostInc: 8},
	})
	cfg := DefaultConfig()
	_, _, pc0 := loadCoords(t, tr, 0)
	_, _, pc1 := loadCoords(t, tr, 1)
	_, _, pc2 := loadCoords(t, tr, 2)
	_, _, pc3 := loadCoords(t, tr, 3)
	ps := makeDearSamples(map[uint64]dearSpec{
		pc0: {lat: 200, n: 50}, // hottest
		pc1: {lat: 150, n: 30},
		pc2: {lat: 100, n: 20},
		pc3: {lat: 50, n: 2}, // below MinLatencyShare
	})
	loads := FindDelinquentLoads(tr, ps, cfg)
	if len(loads) != 3 {
		t.Fatalf("delinquent loads = %d, want 3", len(loads))
	}
	if loads[0].PC != pc0 || loads[0].TotalLatency != 200*50 {
		t.Fatalf("top load = %+v", loads[0])
	}
	for i := 1; i < len(loads); i++ {
		if loads[i].TotalLatency > loads[i-1].TotalLatency {
			t.Fatal("loads not sorted by latency")
		}
	}
}
