package core

import (
	"repro/internal/cpu"
	"repro/internal/memsys"
	"repro/internal/obs"
	"repro/internal/program"
)

// Observability wiring (Config.Observe): the controller stamps every step
// of its pipeline — windows, phase events, trace selection, patching — into
// an obs.Recorder on the simulated clock, and samples the CPU's CPI stack
// and the hierarchy's prefetch-usefulness counters once per profile window.
// With Observe off, rec stays nil and every emit call is a nil-receiver
// no-op: the pipeline's behaviour and timing are untouched.

// observeState is the controller's recorder plus the previous-window
// snapshots the per-window counter deltas difference against.
type observeState struct {
	rec *obs.Recorder
	m   *cpu.CPU
	img *program.Image

	prevStack cpu.CPIStack
	prevLoop  map[int]cpu.CPIStack
	prevPf    memsys.PrefetchStats
	prevL1D   memsys.CacheStats
}

// SetImage attaches compiler loop metadata so events carry loop IDs and the
// exporters can label per-loop tracks. Harmless without Observe.
func (c *Controller) SetImage(img *program.Image) { c.obs.img = img }

// Recording reports whether this controller records events.
func (c *Controller) Recording() bool { return c.obs.rec != nil }

// Capture returns the recorded event stream, or nil without Config.Observe.
func (c *Controller) Capture() *obs.Capture {
	if c.obs.rec == nil {
		return nil
	}
	cp := &obs.Capture{
		Events:  c.obs.rec.Events(),
		Dropped: c.obs.rec.Dropped(),
	}
	if img := c.obs.img; img != nil {
		cp.Meta.Program = img.Name
		for i := range img.Loops {
			l := &img.Loops[i]
			cp.Meta.Loops = append(cp.Meta.Loops, obs.LoopLabel{ID: l.ID, Name: l.Name})
		}
	}
	// Name table the PolicySelected/PolicySwitched indices resolve against
	// (only emitted when the selector ran, but always present so viewers
	// need no special case).
	cp.Meta.Policies = PrefetchPolicyNames()
	return cp
}

// loopOf maps a code address to its compiler loop ID (-1 when unknown).
func (c *Controller) loopOf(pc uint64) int32 {
	if c.obs.img == nil {
		return -1
	}
	if l, ok := c.obs.img.LoopAt(pc); ok {
		return int32(l.ID)
	}
	return -1
}

// observeWindow emits the per-window events: the window itself (stamped at
// its end cycle), then the CPI-stack deltas (whole-core and per loop, when
// the CPU runs with Accounting), then the prefetch-usefulness deltas. The
// counter events are stamped at the snapshot instant — the CPU clock at
// overflow delivery, which can trail EndCycle by the monitoring cycles
// charged between windows (patch installation, handler cost) — so
// consecutive core-level CPIStack deltas sum exactly to the cycles between
// their stamps.
func (c *Controller) observeWindow(w WindowMetrics) {
	o := &c.obs
	if o.rec == nil {
		return
	}
	o.rec.Emit(obs.Event{
		Cycle: w.EndCycle, Kind: obs.KindWindowObserved, Loop: -1,
		A: uint64(w.Seq), B: uint64(w.DearEvents), C: w.Retired,
		V: w.CPI, W: w.DPI,
	})

	if o.m != nil {
		now := o.m.Now()
		if stack, ok := o.m.Accounting(); ok {
			d := stack.Sub(o.prevStack)
			o.prevStack = stack
			o.rec.Emit(obs.Event{
				Cycle: now, Kind: obs.KindCPIStack, Loop: -1,
				A: d.Busy, B: d.LoadStall, C: d.Flush, D: d.Fetch,
			})
			loops := o.m.LoopAccounting()
			for _, id := range o.m.LoopIDs() {
				ld := loops[id].Sub(o.prevLoop[id])
				o.prevLoop[id] = loops[id]
				if ld.Total() == 0 || id < 0 {
					continue // idle loop this window; core already emitted
				}
				o.rec.Emit(obs.Event{
					Cycle: now, Kind: obs.KindCPIStack, Loop: int32(id),
					A: ld.Busy, B: ld.LoadStall, C: ld.Flush, D: ld.Fetch,
				})
			}
		}

		if h := o.m.Hier; h != nil {
			pf := h.Prefetch()
			d := pf.Sub(o.prevPf)
			o.prevPf = pf
			l1d := h.L1D.Stats
			var missRatio float64
			if acc := l1d.Accesses - o.prevL1D.Accesses; acc > 0 {
				missRatio = float64(l1d.Misses-o.prevL1D.Misses) / float64(acc)
			}
			o.prevL1D = l1d
			o.rec.Emit(obs.Event{
				Cycle: now, Kind: obs.KindPrefetchWindow, Loop: -1,
				A: d.Issued, B: d.Useful, C: d.Late, D: d.EvictedUnused,
				V: missRatio,
			})
		}
	}
}

func (c *Controller) observePhaseDetected(now uint64, info *PhaseInfo) {
	if c.obs.rec == nil {
		return
	}
	pc := uint64(info.PCCenter)
	c.obs.rec.Emit(obs.Event{
		Cycle: now, Kind: obs.KindPhaseDetected, Loop: c.loopOf(pc), PC: pc,
		A: uint64(len(info.Windows)), V: info.CPI, W: info.DearPerK,
	})
}

func (c *Controller) observePhaseChange(now uint64) {
	if c.obs.rec == nil {
		return
	}
	c.obs.rec.Emit(obs.Event{Cycle: now, Kind: obs.KindPhaseChange, Loop: -1})
}

func (c *Controller) observeTraceSelected(now uint64, t *Trace) {
	if c.obs.rec == nil {
		return
	}
	var isLoop uint64
	if t.IsLoop {
		isLoop = 1
	}
	c.obs.rec.Emit(obs.Event{
		Cycle: now, Kind: obs.KindTraceSelected, Loop: c.loopOf(t.Start),
		PC: t.Start, A: uint64(len(t.Bundles)), B: isLoop,
	})
}

func (c *Controller) observeVerifyReject(now uint64, t *Trace, findings int) {
	if c.obs.rec == nil {
		return
	}
	c.obs.rec.Emit(obs.Event{
		Cycle: now, Kind: obs.KindVerifyReject, Loop: c.loopOf(t.Start),
		PC: t.Start, A: uint64(findings),
	})
}

func (c *Controller) observePatchInstalled(now uint64, rec *PatchRecord, prefetches int) {
	if c.obs.rec == nil {
		return
	}
	c.obs.rec.Emit(obs.Event{
		Cycle: now, Kind: obs.KindPatchInstalled, Loop: c.loopOf(rec.Entry),
		PC: rec.Entry, A: rec.TraceAddr, B: rec.TraceEnd, C: uint64(prefetches),
	})
}

func (c *Controller) observePolicySelected(now uint64, info *PhaseInfo, name string) {
	if c.obs.rec == nil {
		return
	}
	pc := uint64(info.PCCenter)
	c.obs.rec.Emit(obs.Event{
		Cycle: now, Kind: obs.KindPolicySelected, Loop: c.loopOf(pc), PC: pc,
		A: policyIndex(name), B: uint64(c.Stats.PolicySelections),
	})
}

func (c *Controller) observePolicySwitched(now uint64, t *Trace, from, to string) {
	if c.obs.rec == nil {
		return
	}
	c.obs.rec.Emit(obs.Event{
		Cycle: now, Kind: obs.KindPolicySwitched, Loop: c.loopOf(t.Start),
		PC: t.Start, A: policyIndex(from), B: policyIndex(to),
	})
}

func (c *Controller) observeUnpatch(now uint64, rec *PatchRecord, cpi float64) {
	if c.obs.rec == nil {
		return
	}
	c.obs.rec.Emit(obs.Event{
		Cycle: now, Kind: obs.KindUnpatch, Loop: c.loopOf(rec.Entry),
		PC: rec.Entry, A: rec.TraceAddr, V: cpi, W: rec.PrePatch,
	})
}
