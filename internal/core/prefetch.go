package core

import (
	"sort"

	"repro/internal/isa"
	"repro/internal/pmu"
)

// DelinquentLoad aggregates the DEAR events attributed to one load
// instruction inside a selected trace.
type DelinquentLoad struct {
	Bundle, Slot int    // trace coordinates
	PC           uint64 // original program counter
	Count        int
	TotalLatency uint64
	AvgLatency   float64
}

// FindDelinquentLoads maps the DEAR records of the sampled miss events onto
// a trace and ranks the loads by their share of total miss latency,
// keeping the top cfg.MaxDelinquentLoads ("prefetching in ADORE is applied
// to at most the top three miss instructions in each loop-type trace").
func FindDelinquentLoads(t *Trace, samples []pmu.Sample, cfg Config) []DelinquentLoad {
	byAddr := make(map[uint64]int, len(t.Orig))
	for i, a := range t.Orig {
		if a != 0 {
			byAddr[a] = i
		}
	}
	agg := make(map[uint64]*DelinquentLoad)
	var total uint64
	for i := range samples {
		d := samples[i].DEAR
		if !d.Valid {
			continue
		}
		bundleAddr := d.PC &^ uint64(isa.BundleBytes-1)
		bi, ok := byAddr[bundleAddr]
		if !ok {
			continue
		}
		slot := int(d.PC & uint64(isa.BundleBytes-1))
		if slot > 2 || !isa.IsLoad(t.Bundles[bi].Slots[slot].Op) {
			continue
		}
		dl := agg[d.PC]
		if dl == nil {
			dl = &DelinquentLoad{Bundle: bi, Slot: slot, PC: d.PC}
			agg[d.PC] = dl
		}
		dl.Count++
		dl.TotalLatency += uint64(d.Latency)
		total += uint64(d.Latency)
	}
	out := make([]DelinquentLoad, 0, len(agg))
	for _, dl := range agg {
		dl.AvgLatency = float64(dl.TotalLatency) / float64(dl.Count)
		if total > 0 && float64(dl.TotalLatency) < cfg.MinLatencyShare*float64(total) {
			continue
		}
		out = append(out, *dl)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalLatency != out[j].TotalLatency {
			return out[i].TotalLatency > out[j].TotalLatency
		}
		return out[i].PC < out[j].PC
	})
	if len(out) > cfg.MaxDelinquentLoads {
		out = out[:cfg.MaxDelinquentLoads]
	}
	return out
}

// FailedLoad describes a delinquent load whose reference pattern could not
// be classified — the candidates for the stride-profiling instrumentation
// extension.
type FailedLoad struct {
	PC         uint64
	AddrReg    isa.Reg
	AvgLatency float64
}

// OptimizeResult reports what the runtime prefetcher inserted into a trace.
type OptimizeResult struct {
	Direct   int
	Indirect int
	Pointer  int
	Failures int // analysis or scheduling failures
	Skipped  int // direct loads skipped because static lfetch already present

	// Unknown lists loads that failed classification (pattern unknown),
	// as opposed to scheduling or budget failures.
	Unknown []FailedLoad

	// RegsUsed counts the reserved registers consumed, so extensions can
	// tell whether r29/r30 remain free.
	RegsUsed int
}

// Total returns the number of prefetch sequences inserted.
func (r OptimizeResult) Total() int { return r.Direct + r.Indirect + r.Pointer }

// Optimizer implements §3: runtime prefetch generation for a loop trace.
type Optimizer struct {
	cfg Config
}

// NewOptimizer returns an optimizer with the given configuration.
func NewOptimizer(cfg Config) *Optimizer { return &Optimizer{cfg: cfg} }

// Optimize analyzes the delinquent loads of a loop trace and splices in
// prefetch code, using the reserved registers r27-r30. phaseCPI feeds the
// prefetch-distance computation (distance = avg latency / loop body
// cycles). The trace is mutated in place.
func (o *Optimizer) Optimize(t *Trace, loads []DelinquentLoad, phaseCPI float64) OptimizeResult {
	return o.optimizeScaled(t, loads, phaseCPI, 1.0)
}

// optimizeScaled is Optimize with the prefetch distance multiplied by
// distScale — the adaptive-distance policy's retuning knob. A distScale of
// 1.0 reproduces Optimize exactly (multiplying the distance formula by 1.0
// is an IEEE identity).
func (o *Optimizer) optimizeScaled(t *Trace, loads []DelinquentLoad, phaseCPI, distScale float64) OptimizeResult {
	var res OptimizeResult
	if !t.IsLoop || len(loads) == 0 {
		return res
	}
	b := flatten(t)
	bodyCycles := phaseCPI * float64(b.countFrom(t.LoopHead))
	if bodyCycles < 1 {
		bodyCycles = 1
	}
	hasStatic := t.ContainsLfetch()

	ed := &editor{t: t, naive: o.cfg.NaiveSchedule}
	reserved := []isa.Reg{isa.ReservedGRFirst, isa.ReservedGRFirst + 1, isa.ReservedGRFirst + 2, isa.ReservedGRLast}

	for _, dl := range loads {
		// Re-derive the load's trace coordinates from its original PC:
		// earlier insertions shift bundle indices, but Orig entries of
		// original bundles are stable.
		pos := -1
		bundleAddr := dl.PC &^ uint64(isa.BundleBytes-1)
		slot := int(dl.PC & uint64(isa.BundleBytes-1))
		for bi, a := range t.Orig {
			if a == bundleAddr {
				pos = b.find(bi, slot)
				break
			}
		}
		if pos < 0 {
			res.Failures++
			continue
		}
		an := b.classify(pos)
		load := b.insts[pos].in
		isFP := load.Op == isa.OpLdF

		switch an.Pattern {
		case PatternDirect:
			if hasStatic {
				// O3 binaries already prefetch analyzable strided
				// references; do not double-prefetch them.
				res.Skipped++
				continue
			}
			if len(reserved) < 1 {
				res.Failures++
				continue
			}
			rp := reserved[0]
			dist := o.distanceScaled(dl.AvgLatency, bodyCycles, an.Stride, isFP, distScale)
			if dist == 0 {
				res.Failures++
				continue
			}
			if !ed.emitDirect(b, an, rp, dist) {
				res.Failures++
				continue
			}
			reserved = reserved[1:]
			res.RegsUsed++
			res.Direct++

		case PatternIndirect:
			if len(reserved) < 3 {
				res.Failures++
				continue
			}
			d1 := o.distanceScaled(dl.AvgLatency, bodyCycles, an.FeederStride, false, distScale)
			if d1 == 0 {
				res.Failures++
				continue
			}
			d2 := 2 * d1 // level-1 prefetch runs further ahead (Fig. 6B)
			if !ed.emitIndirect(b, an, reserved[0], reserved[1], reserved[2], d1, d2) {
				res.Failures++
				continue
			}
			reserved = reserved[3:]
			res.RegsUsed += 3
			res.Indirect++

		case PatternPointer:
			if len(reserved) < 1 {
				res.Failures++
				continue
			}
			if !ed.emitPointer(b, an, reserved[0], o.cfg.IterAheadLog2) {
				res.Failures++
				continue
			}
			reserved = reserved[1:]
			res.RegsUsed++
			res.Pointer++

		default:
			res.Failures++
			res.Unknown = append(res.Unknown, FailedLoad{
				PC: dl.PC, AddrReg: load.R3, AvgLatency: dl.AvgLatency,
			})
		}
		// Editing invalidates flattened positions: re-flatten for the
		// next load's analysis.
		b = flatten(t)
	}
	return res
}

// distanceBytes computes the prefetch distance: ceil(avg latency / loop
// body cycles) iterations, times the stride, with small integer strides
// aligned up to the L1D line size (§3.3: "for small strides in integer
// programs, prefetch distances are aligned to L1D cache line size (not for
// FP operations since they bypass L1 cache)").
func (o *Optimizer) distanceBytes(avgLat, bodyCycles float64, stride int64, isFP bool) int64 {
	return o.distanceScaled(avgLat, bodyCycles, stride, isFP, 1.0)
}

// distanceScaled is distanceBytes with the iteration count scaled by
// distScale before clamping and line alignment.
func (o *Optimizer) distanceScaled(avgLat, bodyCycles float64, stride int64, isFP bool, distScale float64) int64 {
	if stride == 0 {
		return 0
	}
	// A 50% margin over the paper's exact formula keeps the fill ahead of
	// the demand stream under bus-queueing jitter; the exact distance
	// arrives just-in-time on average and therefore late half the time.
	iters := int64(distScale*1.5*avgLat/bodyCycles) + 2
	if iters < 1 {
		iters = 1
	}
	if o.cfg.MaxPrefetchIters > 0 && iters > o.cfg.MaxPrefetchIters {
		iters = o.cfg.MaxPrefetchIters
	}
	dist := iters * stride
	if o.cfg.NoLineAlign {
		return dist
	}
	const line = 64
	if !isFP && stride > 0 && stride < line {
		dist = (dist + line - 1) / line * line
	}
	if !isFP && stride < 0 && stride > -line {
		dist = -((-dist + line - 1) / line * line)
	}
	return dist
}

// countFrom counts non-nop instructions at or after the loop-head bundle.
func (b *body) countFrom(loopHead int) int {
	n := 0
	for i := range b.insts {
		if b.insts[i].bundle >= loopHead {
			n++
		}
	}
	if n == 0 {
		n = len(b.insts)
	}
	return n
}
