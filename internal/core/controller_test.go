package core

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
)

func testControllerConfig() Config {
	cfg := DefaultConfig()
	cfg.StableWindows = 2
	cfg.MinDPI = 0.001
	return cfg
}

func newTestController(t *testing.T, cfg Config, bundles []isa.Bundle) *Controller {
	t.Helper()
	cs := codeWith(t, bundles)
	c, err := NewController(cfg, cs, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTracePoolInstallAndExit(t *testing.T) {
	cfg := DefaultConfig()
	cs := codeWith(t, loopBundles())
	pool, err := NewTracePool(cfg, cs)
	if err != nil {
		t.Fatal(err)
	}
	tr := &Trace{
		Start:    0x1000,
		IsLoop:   true,
		LoopHead: 0,
		BackEdge: 1,
		Bundles:  append([]isa.Bundle{}, loopBundles()[:2]...),
		Orig:     []uint64{0x1000, 0x1010},
	}
	addr, err := pool.Install(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !pool.Contains(addr) {
		t.Fatal("installed trace outside pool")
	}
	// The back edge must now target the in-pool loop head.
	b, _ := cs.Fetch(addr + isa.BundleBytes)
	if b.Slots[2].Op != isa.OpBrCond || b.Slots[2].Target != addr {
		t.Fatalf("back edge not retargeted: %v", b.Slots[2])
	}
	// The appended exit bundle returns to the original fall-through.
	exit, _ := cs.Fetch(addr + 2*isa.BundleBytes)
	if exit.Slots[2].Op != isa.OpBr || exit.Slots[2].Target != 0x1020 {
		t.Fatalf("exit bundle = %v", exit)
	}
	if pool.Used() != 3 {
		t.Fatalf("pool used = %d", pool.Used())
	}
}

func TestTracePoolFull(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TracePoolBundles = 4
	cs := codeWith(t, loopBundles())
	pool, err := NewTracePool(cfg, cs)
	if err != nil {
		t.Fatal(err)
	}
	tr := &Trace{
		Start: 0x1000, IsLoop: true, BackEdge: 1,
		Bundles: append([]isa.Bundle{}, loopBundles()[:2]...),
		Orig:    []uint64{0x1000, 0x1010},
	}
	if _, err := pool.Install(tr); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Install(tr); err == nil {
		t.Fatal("second install fit a full pool")
	}
}

func TestApplyAndUndoPatch(t *testing.T) {
	cs := codeWith(t, loopBundles())
	orig, _ := cs.Fetch(0x1000)
	saved := *orig
	rec, err := applyPatch(cs, 0x1000, 0x40000000, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	patched, _ := cs.Fetch(0x1000)
	if patched.Slots[2].Op != isa.OpBr || patched.Slots[2].Target != 0x40000000 {
		t.Fatalf("patch not installed: %v", patched)
	}
	if rec.Saved != saved {
		t.Fatal("original bundle not saved")
	}
	if err := undoPatch(cs, rec); err != nil {
		t.Fatal(err)
	}
	restored, _ := cs.Fetch(0x1000)
	if *restored != saved {
		t.Fatal("unpatch did not restore the original bundle")
	}
	if rec.Active {
		t.Fatal("record still active after undo")
	}
	// Undo is idempotent.
	if err := undoPatch(cs, rec); err != nil {
		t.Fatal(err)
	}
}

// stableWindow fabricates identical windows that establish a stable phase
// at the given PC center and DPI.
func feedStablePhase(c *Controller, pc float64, cpi, dpi float64, n int) {
	for i := 0; i < n; i++ {
		c.newWindows = append(c.newWindows, WindowMetrics{
			Seq: c.det.windowsSeen + i, CPI: cpi, DPI: dpi, PCCenter: pc, Retired: 100000,
		})
	}
	c.poll(0)
}

func TestControllerSkipsLowMissPhase(t *testing.T) {
	c := newTestController(t, testControllerConfig(), loopBundles())
	feedStablePhase(c, 0x1008, 1.0, 0.00001, 4)
	if c.Stats.PhasesDetected != 1 {
		t.Fatalf("phases detected = %d", c.Stats.PhasesDetected)
	}
	if c.Stats.SkipLowMiss != 1 {
		t.Fatalf("low-miss phase not skipped: %+v", c.Stats)
	}
	if c.Stats.TracesPatched != 0 {
		t.Fatal("low-miss phase was optimized")
	}
}

func TestControllerSkipsPoolPhase(t *testing.T) {
	cfg := testControllerConfig()
	c := newTestController(t, cfg, loopBundles())
	feedStablePhase(c, float64(cfg.TracePoolBase+0x100), 1.0, 0.01, 4)
	if c.Stats.SkipInPool != 1 {
		t.Fatalf("pool phase not skipped: %+v", c.Stats)
	}
}

func TestControllerUnpatchesUnprofitableTrace(t *testing.T) {
	cfg := testControllerConfig()
	cfg.UnpatchSlowdown = 1.10
	cs := codeWith(t, loopBundles())
	c, err := NewController(cfg, cs, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Install a patch by hand with a known pre-patch CPI.
	addr, err := c.pool.Install(&Trace{
		Start: 0x1000, IsLoop: true, BackEdge: 1,
		Bundles: append([]isa.Bundle{}, loopBundles()[:2]...),
		Orig:    []uint64{0x1000, 0x1010},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := applyPatch(cs, 0x1000, addr, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	rec.TraceEnd = addr + 3*isa.BundleBytes
	c.patches = append(c.patches, rec)

	// A stable phase inside the trace running 50% slower than pre-patch
	// triggers unpatching.
	feedStablePhase(c, float64(addr+0x10), 3.0, 0.01, 4)
	if c.Stats.Unpatches != 1 {
		t.Fatalf("unprofitable trace not unpatched: %+v", c.Stats)
	}
	if rec.Active {
		t.Fatal("patch still active")
	}
	restored, _ := cs.Fetch(0x1000)
	if restored.Slots[0].Op != isa.OpLd8 {
		t.Fatal("original code not restored")
	}
}

func TestControllerKeepsProfitableTrace(t *testing.T) {
	cfg := testControllerConfig()
	cs := codeWith(t, loopBundles())
	c, err := NewController(cfg, cs, nil)
	if err != nil {
		t.Fatal(err)
	}
	addr, _ := c.pool.Install(&Trace{
		Start: 0x1000, IsLoop: true, BackEdge: 1,
		Bundles: append([]isa.Bundle{}, loopBundles()[:2]...),
		Orig:    []uint64{0x1000, 0x1010},
	})
	rec, _ := applyPatch(cs, 0x1000, addr, 2.0)
	rec.TraceEnd = addr + 3*isa.BundleBytes
	c.patches = append(c.patches, rec)

	// Faster than pre-patch: stays.
	feedStablePhase(c, float64(addr+0x10), 1.0, 0.01, 4)
	if c.Stats.Unpatches != 0 || !rec.Active {
		t.Fatalf("profitable trace unpatched: %+v", c.Stats)
	}
}

func TestIsPatched(t *testing.T) {
	c := newTestController(t, testControllerConfig(), loopBundles())
	if c.isPatched(0x1000) {
		t.Fatal("fresh controller reports patch")
	}
	c.patches = append(c.patches, &PatchRecord{Entry: 0x1000, Active: true})
	if !c.isPatched(0x1000) {
		t.Fatal("active patch not found")
	}
	c.patches[0].Active = false
	if c.isPatched(0x1000) {
		t.Fatal("inactive patch reported")
	}
}

func TestSigMatches(t *testing.T) {
	list := []float64{0x1000, 0x9000}
	if !sigMatches(list, 0x1000+100, 384) {
		t.Fatal("near signature not matched")
	}
	if sigMatches(list, 0x5000, 384) {
		t.Fatal("far signature matched")
	}
	if sigMatches(nil, 0x1000, 384) {
		t.Fatal("empty list matched")
	}
}

// program.Listing should render installed pool traces (smoke test for the
// tooling path).
func TestPoolListing(t *testing.T) {
	cfg := DefaultConfig()
	cs := codeWith(t, loopBundles())
	pool, _ := NewTracePool(cfg, cs)
	_, err := pool.Install(&Trace{
		Start: 0x1000, IsLoop: true, BackEdge: 1,
		Bundles: append([]isa.Bundle{}, loopBundles()[:2]...),
		Orig:    []uint64{0x1000, 0x1010},
	})
	if err != nil {
		t.Fatal(err)
	}
	seg := &program.Segment{Name: "pool", Base: cfg.TracePoolBase, Bundles: pool.seg.Bundles[:pool.Used()]}
	if program.Listing(seg) == "" {
		t.Fatal("empty listing")
	}
}
