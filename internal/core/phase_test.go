package core

import (
	"testing"

	"repro/internal/pmu"
)

func testCfg() Config {
	cfg := DefaultConfig()
	cfg.StableWindows = 3
	cfg.WindowDoubleAfter = 6
	return cfg
}

func win(seq int, cpi, dpi, pc float64) WindowMetrics {
	return WindowMetrics{Seq: seq, CPI: cpi, DPI: dpi, PCCenter: pc, Retired: 1000}
}

func TestPhaseDetectorFindsStablePhase(t *testing.T) {
	d := NewPhaseDetector(testCfg())
	var got *PhaseInfo
	for i := 0; i < 5; i++ {
		ev, info := d.Observe(win(i, 2.0, 0.01, 0x2000))
		if ev == PhaseStable {
			got = info
		}
	}
	if got == nil {
		t.Fatal("no stable phase over identical windows")
	}
	if got.CPI != 2.0 || got.DPI != 0.01 {
		t.Fatalf("phase info = %+v", got)
	}
	if !d.InStable() {
		t.Fatal("detector not in stable state")
	}
}

func TestPhaseDetectorNoRepeatEventForSamePhase(t *testing.T) {
	d := NewPhaseDetector(testCfg())
	events := 0
	for i := 0; i < 20; i++ {
		ev, _ := d.Observe(win(i, 2.0, 0.01, 0x2000))
		if ev == PhaseStable {
			events++
		}
	}
	if events != 1 {
		t.Fatalf("stable events = %d, want 1", events)
	}
}

func TestPhaseDetectorDetectsChange(t *testing.T) {
	d := NewPhaseDetector(testCfg())
	for i := 0; i < 4; i++ {
		d.Observe(win(i, 2.0, 0.01, 0x2000))
	}
	if !d.InStable() {
		t.Fatal("setup failed")
	}
	// A very different window breaks stability.
	ev, _ := d.Observe(win(5, 8.0, 0.08, 0x9000))
	if ev != PhaseChanged {
		t.Fatalf("event = %v, want PhaseChanged", ev)
	}
	// The new phase stabilizes and fires its own event.
	var stable bool
	for i := 6; i < 12; i++ {
		e, _ := d.Observe(win(i, 8.0, 0.08, 0x9000))
		if e == PhaseStable {
			stable = true
		}
	}
	if !stable {
		t.Fatal("second phase never stabilized")
	}
}

func TestPhaseDetectorHighDeviationNoPhase(t *testing.T) {
	d := NewPhaseDetector(testCfg())
	cpis := []float64{1, 5, 2, 9, 1, 6, 3, 8}
	for i, c := range cpis {
		ev, _ := d.Observe(win(i, c, 0.01, float64(0x2000+i*65536)))
		if ev == PhaseStable {
			t.Fatal("noisy windows reported stable")
		}
	}
}

func TestPhaseDetectorWindowDoubling(t *testing.T) {
	cfg := testCfg()
	d := NewPhaseDetector(cfg)
	// Alternating windows never stabilize at aggregation 1; after
	// WindowDoubleAfter windows the detector doubles.
	for i := 0; i < cfg.WindowDoubleAfter+2; i++ {
		cpi := 2.0
		if i%2 == 1 {
			cpi = 6.0
		}
		d.Observe(win(i, cpi, 0.01, 0x2000))
	}
	if d.Aggregation() < 2 {
		t.Fatalf("aggregation = %d, want >= 2", d.Aggregation())
	}
	if d.DoubleEvents == 0 {
		t.Fatal("no doubling events recorded")
	}
}

func TestUEBWindowMetricsFromCounters(t *testing.T) {
	u := NewUEB(4)
	mk := func(idx int, cyc, ret, miss uint64, pc uint64) pmu.Sample {
		return pmu.Sample{Index: uint64(idx), PC: pc, Cycles: cyc, Retired: ret, DMiss: miss}
	}
	// First window: counters 0->1000 cycles, 0->500 insts, 0->5 misses.
	w1 := u.AddWindow([]pmu.Sample{
		mk(0, 100, 50, 1, 0x2000),
		mk(1, 500, 250, 3, 0x2010),
		mk(2, 1000, 500, 5, 0x2020),
	})
	if w1.CPI < 1.9 || w1.CPI > 2.3 {
		t.Fatalf("w1 CPI = %v", w1.CPI)
	}
	// Second window continues accumulative counters; deltas are taken
	// against the previous window's last sample.
	w2 := u.AddWindow([]pmu.Sample{
		mk(3, 2000, 1000, 10, 0x2000),
		mk(4, 3000, 1500, 15, 0x2010),
	})
	wantCPI := float64(3000-1000) / float64(1500-500)
	if w2.CPI != wantCPI {
		t.Fatalf("w2 CPI = %v, want %v", w2.CPI, wantCPI)
	}
	wantDPI := float64(15-5) / float64(1500-500)
	if w2.DPI != wantDPI {
		t.Fatalf("w2 DPI = %v, want %v", w2.DPI, wantDPI)
	}
}

func TestUEBEvictsOldWindows(t *testing.T) {
	u := NewUEB(2)
	for i := 0; i < 5; i++ {
		u.AddWindow([]pmu.Sample{{Index: uint64(i), PC: 0x1000, Cycles: uint64(i * 1000), Retired: uint64(i * 100)}})
	}
	if len(u.Windows()) != 2 {
		t.Fatalf("windows = %d, want 2", len(u.Windows()))
	}
	if u.Seq() != 5 {
		t.Fatalf("seq = %d", u.Seq())
	}
	ws := u.Windows()
	if ws[0].Seq != 3 || ws[1].Seq != 4 {
		t.Fatalf("kept wrong windows: %v %v", ws[0].Seq, ws[1].Seq)
	}
}

func TestPCCenterOutlierRemoval(t *testing.T) {
	samples := make([]pmu.Sample, 0, 40)
	for i := 0; i < 38; i++ {
		samples = append(samples, pmu.Sample{PC: 0x2000 + uint64(i%4)*16})
	}
	// Two far outliers (e.g. a library call's PCs).
	samples = append(samples, pmu.Sample{PC: 0x900000}, pmu.Sample{PC: 0x910000})
	center, dev := pcCenter(samples)
	if center < 0x2000-64 || center > 0x2000+256 {
		t.Fatalf("center = %#x, outliers not removed", uint64(center))
	}
	if dev > 64 {
		t.Fatalf("dev = %v after outlier removal", dev)
	}
}

func TestTraceSelectionFromBTB(t *testing.T) {
	// Synthetic samples describing a hot loop at 0x2000 whose back edge
	// at 0x2020+2 jumps to 0x2000 (taken 95%).
	var samples []pmu.Sample
	for i := 0; i < 100; i++ {
		s := pmu.Sample{PC: 0x2010, NBTB: 1}
		s.BTB[0] = pmu.BranchRec{Src: 0x2022, Dst: 0x2000, Taken: i%20 != 0}
		samples = append(samples, s)
	}
	prof := buildPathProfile(samples)
	bias, ok := prof.bias(0x2022)
	if !ok || bias < 0.9 {
		t.Fatalf("bias = %v, %v", bias, ok)
	}
	hot := prof.hotTargets()
	if len(hot) != 1 || hot[0] != 0x2000 {
		t.Fatalf("hot targets = %v", hot)
	}
}

// The PhaseTable extension recognizes phases whose visits alternate faster
// than StableWindows consecutive windows — the §6 "rapid phase changes"
// improvement. The stock detector never fires on a strict a/b/a/b window
// alternation (even window doubling only merges the pair); the table
// accumulates occurrences per signature and fires both.
func TestPhaseTableCatchesAlternation(t *testing.T) {
	cfg := testCfg()
	cfg.WindowDoubleAfter = 0 // isolate the mechanism from doubling

	stock := NewPhaseDetector(cfg)
	cfg2 := cfg
	cfg2.PhaseTable = true
	table := NewPhaseDetector(cfg2)

	window := func(i int) WindowMetrics {
		if i%2 == 0 {
			return win(i, 2.0, 0.02, 0x2000)
		}
		return win(i, 6.0, 0.05, 0x9000)
	}
	stockFires, tableFires := 0, 0
	var tableSigs []float64
	for i := 0; i < 12; i++ {
		if ev, _ := stock.Observe(window(i)); ev == PhaseStable {
			stockFires++
		}
		if ev, info := table.Observe(window(i)); ev == PhaseStable {
			tableFires++
			tableSigs = append(tableSigs, info.PCCenter)
		}
	}
	if stockFires != 0 {
		t.Fatalf("stock detector fired %d times on strict alternation", stockFires)
	}
	if tableFires != 2 {
		t.Fatalf("table fired %d times, want 2 (one per phase)", tableFires)
	}
	near := func(sig, want float64) bool { return sig > want-512 && sig < want+512 }
	if !near(tableSigs[0], 0x2000) || !near(tableSigs[1], 0x9000) {
		t.Fatalf("table signatures = %v", tableSigs)
	}
	if table.TableHits == 0 {
		t.Fatal("no table hits recorded")
	}
}

// A phase confirmed by the consecutive rule must not be re-announced by
// the occurrence path.
func TestPhaseTableNoDoubleFire(t *testing.T) {
	cfg := testCfg()
	cfg.PhaseTable = true
	d := NewPhaseDetector(cfg)
	fires := 0
	for i := 0; i < 20; i++ {
		if ev, _ := d.Observe(win(i, 2.0, 0.02, 0x2000)); ev == PhaseStable {
			fires++
		}
	}
	if fires != 1 {
		t.Fatalf("steady phase fired %d times with table enabled, want 1", fires)
	}
}
