package core

import "repro/internal/isa"

// editor splices prefetch code into a trace: prologue instructions go into
// new bundles ahead of the loop head (executed once on trace entry), body
// instructions are scheduled into otherwise wasted empty slots (§3.5) and
// only force a new bundle when no compatible slot exists.
type editor struct {
	t     *Trace
	naive bool // ablation: never reuse free slots, always add bundles
}

// emitDirect implements Fig. 6A: initialize a prefetch cursor ahead of the
// load's address register, then a single lfetch whose post-increment both
// prefetches and advances the stride (the §3.4 redundancy optimization).
func (ed *editor) emitDirect(b *body, an Analysis, rp isa.Reg, distBytes int64) bool {
	ed.prologue([]isa.Inst{
		{Op: isa.OpAddI, R1: rp, Imm: distBytes, R3: an.AddrReg},
	})
	_, _, ok := ed.place(isa.Inst{Op: isa.OpLfetch, R3: rp, PostInc: an.Stride},
		ed.t.LoopHead, 0, true)
	return ok
}

// emitIndirect implements Fig. 6B: a speculative copy of the feeder load
// runs d1 bytes ahead through rCur into rVal, the transform chain is
// replayed in place on rVal to recompute the future second-level address,
// and a second cursor rL1 prefetches the first level d2 bytes ahead.
// (The paper's example uses a fourth register for the transform result;
// a linear chain can overwrite the ld.s destination instead, leaving one
// more reserved register for other delinquent loads.)
func (ed *editor) emitIndirect(b *body, an Analysis, rCur, rVal, rL1 isa.Reg, d1, d2 int64) bool {
	rT := rVal
	feederInst := b.insts[an.FeederPos].in
	ed.prologue([]isa.Inst{
		{Op: isa.OpAddI, R1: rCur, Imm: d1, R3: an.FeederAddrReg},
		{Op: isa.OpAddI, R1: rL1, Imm: d2, R3: an.FeederAddrReg},
	})
	// The prologue shifted bundle indices: re-locate the feeder.
	nb := flatten(ed.t)
	fpos := findInst(nb, feederInst)
	if fpos < 0 {
		return false
	}
	feeder := nb.insts[fpos]
	if feeder.in.Op == isa.OpLdF {
		return false // float-valued feeders cannot index integer slices
	}
	// The advanced feeder copy must keep the feeder's access size (the
	// paper's ld4.s in Fig. 6B) or the recomputed index is garbage.
	specLoad := feeder.in
	specLoad.QP = 0
	specLoad.R1 = rVal
	specLoad.R3 = rCur
	specLoad.PostInc = an.FeederStride
	specLoad.Spec = true
	seq := []isa.Inst{specLoad}
	// Replay the transform chain with substituted registers: the feeder's
	// destination becomes rVal, every intermediate destination becomes rT.
	sub := map[isa.Reg]isa.Reg{an.FeederDstReg: rVal}
	for _, tr := range an.Transform {
		in := tr
		d, ok := in.RegDef()
		if !ok {
			return false
		}
		in.R1 = rT
		in.R2 = subst(sub, in.R2)
		in.R3 = subst(sub, in.R3)
		sub[d] = rT
		seq = append(seq, in)
	}
	if an.TransformDelta != 0 {
		last := rT
		if len(an.Transform) == 0 {
			last = rVal
		}
		seq = append(seq, isa.Inst{Op: isa.OpAddI, R1: rT, Imm: an.TransformDelta, R3: last})
	}
	target := rT
	if len(an.Transform) == 0 && an.TransformDelta == 0 {
		target = rVal
	}
	seq = append(seq,
		isa.Inst{Op: isa.OpLfetch, R3: target},
		isa.Inst{Op: isa.OpLfetch, R3: rL1, PostInc: an.FeederStride},
	)

	// Keep the sequence after the feeder's position so per-iteration
	// advancement stays aligned with the loop's own cursor.
	minB, minS := feeder.bundle, feeder.slot+1
	for _, in := range seq {
		bi, si, ok := ed.place(in, minB, minS, false)
		if !ok {
			return false
		}
		minB, minS = bi, si+1
	}
	return true
}

func subst(m map[isa.Reg]isa.Reg, r isa.Reg) isa.Reg {
	if n, ok := m[r]; ok {
		return n
	}
	return r
}

// emitPointer implements Fig. 6C: remember the induction pointer at the
// loop top, and after it advances compute the per-iteration delta, amplify
// it by 2^iterLog2 iterations, and prefetch the projected future node.
func (ed *editor) emitPointer(b *body, an Analysis, rp isa.Reg, iterLog2 int64) bool {
	upd := b.insts[an.UpdatePos]
	// Copy must execute before the update; prefer a free slot in the
	// bundles ahead of it, else a fresh bundle at the loop head.
	copyInst := isa.Inst{Op: isa.OpAddI, R1: rp, Imm: 0, R3: an.InductionReg}
	if !ed.placeBefore(copyInst, upd.bundle, upd.slot) {
		return false
	}
	// Editing above may have shifted bundle indices; re-flatten and
	// relocate the update instruction.
	nb := flatten(ed.t)
	updPos := findInst(nb, upd.in)
	if updPos < 0 {
		return false
	}
	upd2 := nb.insts[updPos]
	seq := []isa.Inst{
		{Op: isa.OpSub, R1: rp, R2: an.InductionReg, R3: rp},
		{Op: isa.OpShlAdd, R1: rp, R2: rp, Imm: iterLog2, R3: an.InductionReg},
		{Op: isa.OpLfetch, R3: rp},
	}
	minB, minS := upd2.bundle, upd2.slot+1
	for _, in := range seq {
		bi, si, ok := ed.place(in, minB, minS, false)
		if !ok {
			return false
		}
		minB, minS = bi, si+1
	}
	return true
}

// findInst locates an instruction identical to in (prefetch code never
// duplicates original instructions exactly, and original loop bodies do not
// repeat the same fully-specified instruction in a way that matters here).
func findInst(b *body, in isa.Inst) int {
	for i := range b.insts {
		if b.insts[i].in == in {
			return i
		}
	}
	return -1
}

// prologue prepends instructions ahead of the loop head, packed into new
// bundles. The trace entry runs them once before falling into the loop.
func (ed *editor) prologue(insts []isa.Inst) {
	var bundles []isa.Bundle
	i := 0
	for i < len(insts) {
		n := len(insts) - i
		if n > 3 {
			n = 3
		}
		for {
			units := make([]isa.Unit, n)
			for j := 0; j < n; j++ {
				units[j] = isa.UnitOf(insts[i+j].Op)
			}
			tmpl, slots, ok := isa.AssignSlots(units)
			if ok {
				var bd isa.Bundle
				bd.Tmpl = tmpl
				for j := 0; j < n; j++ {
					bd.Slots[slots[j]] = insts[i+j]
				}
				bundles = append(bundles, bd)
				i += n
				break
			}
			n--
			if n == 0 {
				// A single instruction always fits some template.
				panic("core: unplaceable prologue instruction")
			}
		}
	}
	ed.insertBundles(ed.t.LoopHead, bundles)
	ed.t.LoopHead += len(bundles)
	ed.t.BackEdge += len(bundles)
}

// insertBundles splices bundles at index k.
func (ed *editor) insertBundles(k int, bs []isa.Bundle) {
	t := ed.t
	t.Bundles = append(t.Bundles[:k], append(append([]isa.Bundle{}, bs...), t.Bundles[k:]...)...)
	origs := make([]uint64, len(bs))
	t.Orig = append(t.Orig[:k], append(origs, t.Orig[k:]...)...)
}

// freeSlotFrom finds a nop slot in bd at or after startSlot that accepts
// unit u, refusing to pass a branch in either direction.
func freeSlotFrom(bd *isa.Bundle, u isa.Unit, startSlot int) int {
	units, ok := bd.Tmpl.SlotUnits()
	if !ok {
		return -1
	}
	for i := 0; i < 3; i++ {
		if isa.IsBranch(bd.Slots[i].Op) {
			return -1
		}
		if i < startSlot {
			continue
		}
		if bd.Slots[i].Op == isa.OpNop && isa.SlotAccepts(units[i], u) && units[i] != isa.UnitLX {
			return i
		}
	}
	return -1
}

// place schedules in at the first free compatible slot at or after
// (minBundle, minSlot), inserting a fresh bundle before the back edge when
// no slot exists. Sequence placements pass allowBackEdge=false so that
// later members of the sequence never run out of room behind the branch.
// Returns the placement.
func (ed *editor) place(in isa.Inst, minBundle, minSlot int, allowBackEdge bool) (int, int, bool) {
	t := ed.t
	u := isa.UnitOf(in.Op)
	limit := t.BackEdge
	if !allowBackEdge {
		limit = t.BackEdge - 1
	}
	if !ed.naive {
		for bi := minBundle; bi <= limit && bi < len(t.Bundles); bi++ {
			start := 0
			if bi == minBundle {
				start = minSlot
			}
			if s := freeSlotFrom(&t.Bundles[bi], u, start); s >= 0 {
				t.Bundles[bi].Slots[s] = in
				return bi, s, true
			}
		}
	}
	// New bundle: insert after the constraint point but before the
	// back-edge bundle.
	k := minBundle + 1
	if minSlot == 0 {
		k = minBundle
	}
	if k > t.BackEdge {
		k = t.BackEdge
	}
	if k < minBundle || (k == minBundle && minSlot > 0) {
		// The constraint point lies at or beyond the back edge: there
		// is nowhere inside the loop to put the instruction after it.
		return 0, 0, false
	}
	tmpl, slots, ok := isa.AssignSlots([]isa.Unit{u})
	if !ok {
		return 0, 0, false
	}
	var bd isa.Bundle
	bd.Tmpl = tmpl
	bd.Slots[slots[0]] = in
	ed.insertBundles(k, []isa.Bundle{bd})
	t.BackEdge++
	if k < t.LoopHead {
		// Body placements insert at or after the loop head; a bundle
		// at exactly LoopHead extends the loop downward and must stay
		// inside it.
		t.LoopHead++
	}
	return k, slots[0], true
}

// placeBefore schedules in strictly before (maxBundle, maxSlot), falling
// back to a fresh bundle at the loop head.
func (ed *editor) placeBefore(in isa.Inst, maxBundle, maxSlot int) bool {
	t := ed.t
	u := isa.UnitOf(in.Op)
	for bi := t.LoopHead; bi <= maxBundle && bi < len(t.Bundles); bi++ {
		limit := 3
		if bi == maxBundle {
			limit = maxSlot
		}
		units, ok := t.Bundles[bi].Tmpl.SlotUnits()
		if !ok {
			continue
		}
		for s := 0; s < limit; s++ {
			if isa.IsBranch(t.Bundles[bi].Slots[s].Op) {
				break
			}
			if t.Bundles[bi].Slots[s].Op == isa.OpNop &&
				isa.SlotAccepts(units[s], u) && units[s] != isa.UnitLX {
				t.Bundles[bi].Slots[s] = in
				return true
			}
		}
	}
	tmpl, slots, ok := isa.AssignSlots([]isa.Unit{u})
	if !ok {
		return false
	}
	var bd isa.Bundle
	bd.Tmpl = tmpl
	bd.Slots[slots[0]] = in
	ed.insertBundles(t.LoopHead, []isa.Bundle{bd})
	t.BackEdge++
	return true
}
