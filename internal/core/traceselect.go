package core

import (
	"sort"

	"repro/internal/isa"
	"repro/internal/pmu"
	"repro/internal/program"
)

// Trace is a single-entry multi-exit instruction sequence selected from the
// running binary. For loop traces, Bundles[LoopHead..BackEdge] form the
// loop body and the back-edge branch re-targets into the trace itself when
// the trace is installed.
type Trace struct {
	Start   uint64       // original entry address (the bundle ADORE patches)
	Bundles []isa.Bundle // copies of the original bundles (mutated by the optimizer)
	Orig    []uint64     // original address of each trace bundle

	IsLoop   bool
	LoopHead int // trace bundle index the back edge returns to (0 before prologue insertion)
	BackEdge int // trace bundle index holding the back-edge branch

	// SWP marks traces whose back edge is a software-pipelined loop
	// branch; ADORE refuses to optimize them.
	SWP bool
}

// InstCount returns the number of non-nop instructions in the trace.
func (t *Trace) InstCount() int {
	n := 0
	for _, b := range t.Bundles {
		for _, in := range b.Slots {
			if in.Op != isa.OpNop {
				n++
			}
		}
	}
	return n
}

// ContainsLfetch reports whether the trace already has compiler-generated
// prefetches (O3 binaries); used to avoid duplicating static prefetching.
func (t *Trace) ContainsLfetch() bool {
	for _, b := range t.Bundles {
		for _, in := range b.Slots {
			if in.Op == isa.OpLfetch {
				return true
			}
		}
	}
	return false
}

// branchStat accumulates BTB outcomes per branch PC.
type branchStat struct {
	taken int
	total int
}

// pathProfile is what trace selection derives from the UEB's BTB records:
// per-branch bias and per-target reference counts. The 4-outcome BTB
// sequences give fractions of a path profile, as in §2.4.
type pathProfile struct {
	branches map[uint64]*branchStat
	targets  map[uint64]int
}

// buildPathProfile digests the samples' branch trace buffers.
func buildPathProfile(samples []pmu.Sample) *pathProfile {
	p := &pathProfile{
		branches: make(map[uint64]*branchStat),
		targets:  make(map[uint64]int),
	}
	for i := range samples {
		s := &samples[i]
		for j := 0; j < s.NBTB; j++ {
			rec := s.BTB[j]
			st := p.branches[rec.Src]
			if st == nil {
				st = &branchStat{}
				p.branches[rec.Src] = st
			}
			st.total++
			if rec.Taken {
				st.taken++
				p.targets[rec.Dst]++
			}
		}
	}
	return p
}

// bias returns the taken fraction of the branch at pc, with ok=false when
// the branch was never observed.
func (p *pathProfile) bias(pc uint64) (float64, bool) {
	st := p.branches[pc]
	if st == nil || st.total == 0 {
		return 0, false
	}
	return float64(st.taken) / float64(st.total), true
}

// hotTargets returns observed branch targets sorted by reference count,
// hottest first.
func (p *pathProfile) hotTargets() []uint64 {
	out := make([]uint64, 0, len(p.targets))
	for t := range p.targets {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		if p.targets[out[i]] != p.targets[out[j]] {
			return p.targets[out[i]] > p.targets[out[j]]
		}
		return out[i] < out[j] // deterministic tie-break
	})
	return out
}

// TraceSelector builds traces from sampled path profiles (§2.4).
type TraceSelector struct {
	cfg  Config
	code *program.CodeSpace
}

// NewTraceSelector returns a selector reading bundles from code.
func NewTraceSelector(cfg Config, code *program.CodeSpace) *TraceSelector {
	return &TraceSelector{cfg: cfg, code: code}
}

// Select builds up to MaxTraces traces from the samples, hottest targets
// first. Targets already covered by an earlier trace, and targets inside
// the trace pool, are skipped.
func (s *TraceSelector) Select(samples []pmu.Sample) []*Trace {
	prof := buildPathProfile(samples)
	var traces []*Trace
	covered := make(map[uint64]bool)
	for _, target := range prof.hotTargets() {
		if len(traces) >= s.cfg.MaxTraces {
			break
		}
		if covered[target] || s.inTracePool(target) {
			continue
		}
		t := s.grow(target, prof)
		if t == nil || len(t.Bundles) == 0 {
			continue
		}
		for _, a := range t.Orig {
			covered[a] = true
		}
		traces = append(traces, t)
	}
	return traces
}

func (s *TraceSelector) inTracePool(addr uint64) bool {
	return addr >= s.cfg.TracePoolBase &&
		addr < s.cfg.TracePoolBase+uint64(s.cfg.TracePoolBundles)*isa.BundleBytes
}

// grow builds one trace starting at start, following the hottest path until
// a stop point: a function return, a back edge that makes the trace a loop,
// or a balanced conditional branch (§2.4). A taken branch in slot 0 or 1
// breaks the bundle: the remaining fall-through slots are discarded
// (replaced by nops) and the trace continues at the target.
func (s *TraceSelector) grow(start uint64, prof *pathProfile) *Trace {
	t := &Trace{Start: start}
	addr := start
	for len(t.Bundles) < s.cfg.MaxTraceBundles {
		b, ok := s.code.Fetch(addr)
		if !ok {
			break
		}
		bundle := *b // copy
		stop := false
		redirected := false
		for slot := 0; slot < 3; slot++ {
			in := bundle.Slots[slot]
			if !isa.IsBranch(in.Op) {
				continue
			}
			switch in.Op {
			case isa.OpBrRet, isa.OpBrCall, isa.OpHalt:
				// Returns and calls end the trace at this bundle.
				stop = true
			case isa.OpBr:
				// Unconditional: continue at the target, breaking
				// the bundle if mid-slot.
				if in.SWPLoop {
					t.SWP = true
				}
				next := in.Target
				if next == start {
					t.markLoop(len(t.Bundles), slot)
					stop = true
					break
				}
				clearSlotsAfter(&bundle, slot)
				t.append(addr, bundle)
				addr = next
				redirected = true
			case isa.OpBrCond:
				if in.SWPLoop {
					t.SWP = true
				}
				bias, known := prof.bias(addr + uint64(slot))
				switch {
				case in.Target == start && known && bias >= s.cfg.BranchBias:
					// Back edge: the trace becomes a loop.
					t.markLoop(len(t.Bundles), slot)
					stop = true
				case known && bias >= s.cfg.BranchBias:
					// Strongly taken: follow the target.
					clearSlotsAfter(&bundle, slot)
					t.append(addr, bundle)
					addr = in.Target
					redirected = true
				case known && bias <= 1-s.cfg.BranchBias:
					// Strongly not-taken: fall through past the
					// branch (the branch stays as a trace exit).
				default:
					// Balanced or unobserved: stop point.
					stop = true
				}
			}
			if stop || redirected {
				break
			}
		}
		if redirected {
			continue
		}
		t.append(addr, bundle)
		if stop {
			break
		}
		addr += isa.BundleBytes
	}
	if t.SWP && !s.cfg.OptimizeSWPLoops {
		// Software-pipelined loops use rotating registers the paper's
		// optimizer cannot handle; discard the trace. The
		// OptimizeSWPLoops extension keeps it: the simulated SWP
		// renames statically, so slices stay analyzable.
		return nil
	}
	return t
}

// append adds a bundle (deduplicating the final back-edge append).
func (t *Trace) append(addr uint64, b isa.Bundle) {
	t.Bundles = append(t.Bundles, b)
	t.Orig = append(t.Orig, addr)
}

// markLoop finalizes a loop trace whose back edge sits in the bundle being
// scanned; the bundle itself still needs to be appended by the caller path,
// so record indices relative to the appended position.
func (t *Trace) markLoop(bundleIdx, slot int) {
	t.IsLoop = true
	t.LoopHead = 0
	t.BackEdge = bundleIdx
	_ = slot
}

// clearSlotsAfter replaces the slots after the taken branch with nops —
// "break the current bundle ... discarding the remaining instruction in the
// fall-through path".
func clearSlotsAfter(b *isa.Bundle, slot int) {
	for i := slot + 1; i < 3; i++ {
		b.Slots[i] = isa.Nop
	}
}
