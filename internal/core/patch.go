package core

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/program"
)

// TracePool is the shared-memory block dyn_open allocates for optimized
// traces. It is a bump allocator over a dedicated code segment. All pool
// writes go through the code space so the CPU's predecoded code image
// observes them.
type TracePool struct {
	code *program.CodeSpace
	seg  *program.Segment
	next int
}

// NewTracePool creates the pool segment and registers it with the code
// space.
func NewTracePool(cfg Config, code *program.CodeSpace) (*TracePool, error) {
	seg := &program.Segment{
		Name:    "trace-pool",
		Base:    cfg.TracePoolBase,
		Bundles: make([]isa.Bundle, cfg.TracePoolBundles),
	}
	// Unused pool space halts if ever reached (it never should be).
	for i := range seg.Bundles {
		seg.Bundles[i] = isa.Bundle{Tmpl: isa.TmplBBB, Slots: [3]isa.Inst{{Op: isa.OpHalt}, isa.Nop, isa.Nop}}
	}
	if err := code.AddSegment(seg); err != nil {
		return nil, err
	}
	return &TracePool{code: code, seg: seg}, nil
}

// Contains reports whether addr lies inside the pool.
func (p *TracePool) Contains(addr uint64) bool { return p.seg.Contains(addr) }

// Used reports the number of allocated bundles.
func (p *TracePool) Used() int { return p.next }

// Install writes a finished trace into the pool: the back edge is
// re-targeted to the in-pool loop head and an exit-jump bundle is appended
// so the loop's fall-through returns to the original code. It returns the
// trace's entry address.
func (p *TracePool) Install(t *Trace) (uint64, error) {
	need := len(t.Bundles) + 1
	if p.next+need > len(p.seg.Bundles) {
		return 0, fmt.Errorf("core: trace pool full (%d bundles used)", p.next)
	}
	base := p.seg.Base + uint64(p.next)*isa.BundleBytes

	bundles := make([]isa.Bundle, len(t.Bundles))
	copy(bundles, t.Bundles)
	if t.IsLoop {
		// Retarget the back edge into the pool.
		loopHeadAddr := base + uint64(t.LoopHead)*isa.BundleBytes
		fixed := false
		bd := &bundles[t.BackEdge]
		for s := 0; s < 3; s++ {
			in := &bd.Slots[s]
			if (in.Op == isa.OpBrCond || in.Op == isa.OpBr) && in.Target == t.Start {
				in.Target = loopHeadAddr
				fixed = true
			}
		}
		if !fixed {
			return 0, fmt.Errorf("core: loop trace back edge not found in bundle %d", t.BackEdge)
		}
	}
	// Exit bundle: fall-through of the last trace bundle returns to the
	// original successor.
	exitTo := t.Orig[t.BackEdge] + isa.BundleBytes
	if !t.IsLoop {
		exitTo = t.Orig[len(t.Orig)-1] + isa.BundleBytes
	}
	bundles = append(bundles, isa.BranchBundle(exitTo))
	if err := p.code.WriteBundles(base, bundles); err != nil {
		return 0, err
	}
	p.next += need
	return base, nil
}

// PatchRecord remembers an installed entry patch so it can be undone.
type PatchRecord struct {
	Entry     uint64 // original code address whose bundle was replaced
	TraceAddr uint64
	TraceEnd  uint64 // first pool address past the installed trace
	Saved     isa.Bundle
	Active    bool
	PrePatch  float64 // phase CPI before patching, for profitability checks
}

// applyPatch replaces the first bundle of the trace's original code region
// with a branch into the trace pool, saving the original bundle for
// unpatching ("the replaced bundle is not simply overwritten; it is saved").
func applyPatch(code *program.CodeSpace, entry, traceAddr uint64, preCPI float64) (*PatchRecord, error) {
	orig, ok := code.Fetch(entry)
	if !ok {
		return nil, fmt.Errorf("core: patch target %#x unmapped", entry)
	}
	rec := &PatchRecord{Entry: entry, TraceAddr: traceAddr, Saved: *orig, Active: true, PrePatch: preCPI}
	if err := code.Write(entry, isa.BranchBundle(traceAddr)); err != nil {
		return nil, err
	}
	return rec, nil
}

// undoPatch writes the saved bundle back.
func undoPatch(code *program.CodeSpace, rec *PatchRecord) error {
	if !rec.Active {
		return nil
	}
	if err := code.Write(rec.Entry, rec.Saved); err != nil {
		return err
	}
	rec.Active = false
	return nil
}
