package core

import (
	"sort"

	"repro/internal/isa"
	"repro/internal/memsys"
)

// This file implements the paper's §6 "selective runtime instrumentation"
// future work: when dependence-slice analysis cannot classify a delinquent
// load (address computed through an fp-int conversion, a call, ...), the
// hardware monitors alone cannot reveal the reference pattern. The
// extension patches the loop with one store per iteration that records the
// load's effective address into a profile buffer; the dynopt thread later
// reads the buffer, and if the address deltas show a dominant constant
// stride — Wu's observation that irregular programs hide regular strides —
// it replaces the instrumentation with an ordinary direct prefetch at the
// measured stride.

// instrRecord tracks one live instrumentation experiment.
type instrRecord struct {
	patch    *PatchRecord
	bufBase  uint64
	loadPC   uint64
	addrReg  isa.Reg
	avgLat   float64
	origCopy *Trace  // pre-instrumentation trace, for re-optimization
	phaseCPI float64 // CPI of the phase when instrumented
}

// cloneTrace deep-copies a trace.
func cloneTrace(t *Trace) *Trace {
	cp := *t
	cp.Bundles = append([]isa.Bundle{}, t.Bundles...)
	cp.Orig = append([]uint64{}, t.Orig...)
	return &cp
}

// instrument splices address-recording code for the failed load into the
// trace: a prologue that points a reserved register at the profile buffer
// and a post-increment store of the address register each iteration.
// It returns false when no room or registers remain. The buffer cursor
// takes the LAST reserved register (r30), leaving r27.. for the pattern
// prefetches the optimizer may already have placed in the same trace.
func instrument(t *Trace, load FailedLoad, bufBase uint64) bool {
	ed := &editor{t: t}
	rb := isa.ReservedGRLast // r30 carries the buffer cursor
	ed.prologue([]isa.Inst{
		// The simulated ISA takes full-width immediates on add (the
		// real system would use movl here).
		{Op: isa.OpAddI, R1: rb, Imm: int64(bufBase), R3: 0},
	})
	// Find the load in the (prologue-shifted) trace and place the store
	// after it, where the address register holds this iteration's value.
	b := flatten(t)
	pos := -1
	bundleAddr := load.PC &^ uint64(isa.BundleBytes-1)
	slot := int(load.PC & uint64(isa.BundleBytes-1))
	for bi, a := range t.Orig {
		if a == bundleAddr {
			pos = b.find(bi, slot)
			break
		}
	}
	if pos < 0 {
		return false
	}
	fi := b.insts[pos]
	_, _, ok := ed.place(isa.Inst{Op: isa.OpSt8, R2: load.AddrReg, R3: rb, PostInc: 8},
		fi.bundle, fi.slot+1, false)
	return ok
}

// analyzeStride reads the recorded addresses back out of simulated memory
// and returns the dominant inter-iteration stride, if any. Addresses are
// read until the first zero word (the buffer starts zeroed and recorded
// addresses are never zero).
func analyzeStride(mem *memsys.Memory, bufBase uint64, minSamples int, minShare float64) (stride int64, samples int, ok bool) {
	var prev uint64
	hist := map[int64]int{}
	n := 0
	const maxScan = 1 << 20 // never read more than 8 MiB of buffer
	for i := 0; i < maxScan; i++ {
		v := mem.Read64(bufBase + uint64(i)*8)
		if v == 0 {
			break
		}
		if i > 0 {
			hist[int64(v)-int64(prev)]++
		}
		prev = v
		n++
	}
	if n < minSamples {
		return 0, n, false
	}
	type kv struct {
		d int64
		c int
	}
	var ranked []kv
	for d, c := range hist {
		ranked = append(ranked, kv{d, c})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].c != ranked[j].c {
			return ranked[i].c > ranked[j].c
		}
		return ranked[i].d < ranked[j].d
	})
	top := ranked[0]
	if top.d == 0 || float64(top.c) < minShare*float64(n-1) {
		return 0, n, false
	}
	return top.d, n, true
}

// emitProfiledDirect adds a direct prefetch at an externally measured
// stride for the load at loadPC — used when the stride came from
// instrumentation rather than slice analysis. The prefetch cursor chases
// the address register itself: it is re-anchored from rA every iteration
// (rp = rA + dist), which is correct for any constant-stride address
// stream no matter how the address is computed.
func (o *Optimizer) emitProfiledDirect(t *Trace, loadPC uint64, addrReg isa.Reg, stride int64, avgLat, phaseCPI float64) bool {
	b := flatten(t)
	pos := -1
	bundleAddr := loadPC &^ uint64(isa.BundleBytes-1)
	slot := int(loadPC & uint64(isa.BundleBytes-1))
	for bi, a := range t.Orig {
		if a == bundleAddr {
			pos = b.find(bi, slot)
			break
		}
	}
	if pos < 0 {
		return false
	}
	fi := b.insts[pos]
	isFP := fi.in.Op == isa.OpLdF
	bodyCycles := phaseCPI * float64(b.countFrom(t.LoopHead))
	if bodyCycles < 1 {
		bodyCycles = 1
	}
	dist := o.distanceBytes(avgLat, bodyCycles, stride, isFP)
	if dist == 0 {
		return false
	}
	rp := isa.ReservedGRLast - 1 // r29: kept free alongside the r30 cursor
	ed := &editor{t: t, naive: o.cfg.NaiveSchedule}
	// Re-anchor from the live address register, then prefetch: placed
	// after the load so addrReg holds this iteration's address.
	bi, si, ok := ed.place(isa.Inst{Op: isa.OpAddI, R1: rp, Imm: dist, R3: addrReg},
		fi.bundle, fi.slot+1, false)
	if !ok {
		return false
	}
	_, _, ok = ed.place(isa.Inst{Op: isa.OpLfetch, R3: rp}, bi, si+1, false)
	return ok
}

// addInstrumentation splices recording code for the hottest unclassifiable
// load into the trace (before installation) and returns the pending
// experiment descriptor. The optimizer must have left r29/r30 free
// (RegsUsed <= 2) and the trace must still be a clean candidate.
func (c *Controller) addInstrumentation(t *Trace, res OptimizeResult, info *PhaseInfo) *instrRecord {
	if !c.cfg.StrideProfiling || c.cfg.DisableInsertion {
		return nil
	}
	if len(res.Unknown) == 0 || res.RegsUsed > 2 {
		return nil
	}
	load := res.Unknown[0]
	buf := c.cfg.InstrBufBase + uint64(c.Stats.StrideProfiled)*(8<<20)
	// Keep a pre-instrumentation copy: it carries any pattern prefetches
	// already inserted, and is what gets re-installed once the stride is
	// known (or the experiment fails).
	orig := cloneTrace(t)
	if !instrument(t, load, buf) {
		return nil
	}
	c.Stats.StrideProfiled++
	return &instrRecord{
		bufBase: buf, loadPC: load.PC, addrReg: load.AddrReg,
		avgLat: load.AvgLatency, origCopy: orig, phaseCPI: info.CPI,
	}
}

// pollInstrumentation evaluates live experiments: once enough addresses
// are recorded it removes the instrumentation and, if a dominant stride
// emerged, installs the profiled prefetch.
func (c *Controller) pollInstrumentation() uint64 {
	if len(c.instr) == 0 || c.mem == nil {
		return 0
	}
	var charge uint64
	keep := c.instr[:0]
	for _, ir := range c.instr {
		stride, n, ok := analyzeStride(c.mem, ir.bufBase, c.cfg.InstrMinSamples, c.cfg.InstrMinShare)
		if n < c.cfg.InstrMinSamples {
			keep = append(keep, ir) // not enough data yet
			continue
		}
		// Experiment over: remove the instrumented trace.
		if err := undoPatch(c.code, ir.patch); err != nil {
			continue
		}
		charge += c.cfg.PatchCharge
		t := cloneTrace(ir.origCopy)
		if ok {
			// Add the discovered-stride prefetch to the clean copy.
			if c.opt.emitProfiledDirect(t, ir.loadPC, ir.addrReg, stride, ir.avgLat, ir.phaseCPI) {
				c.Stats.StrideFound++
			} else {
				c.Stats.StrideProfileFailed++
			}
		} else {
			c.Stats.StrideProfileFailed++
		}
		// The profiled prefetch was spliced at runtime like any other
		// patch: verify it against the clean copy before reinstalling,
		// and fall back to the clean copy itself when it fails.
		if !c.verifyTrace(t, ir.origCopy) {
			t = cloneTrace(ir.origCopy)
		}
		// Either way, reinstall the un-instrumented trace (it may carry
		// the pattern prefetches found by slice analysis).
		if t.InstCount() <= ir.origCopy.InstCount() && !ok && c.countTracePrefetches(ir.origCopy) == 0 {
			// Nothing useful in the clean copy: leave the original
			// code unpatched.
			continue
		}
		addr, err := c.pool.Install(t)
		if err != nil {
			continue
		}
		rec, err := applyPatch(c.code, t.Start, addr, ir.phaseCPI)
		if err != nil {
			continue
		}
		rec.TraceEnd = c.pool.seg.Base + uint64(c.pool.next)*isa.BundleBytes
		c.patches = append(c.patches, rec)
		c.Stats.TracesPatched++
		charge += c.cfg.PatchCharge
	}
	c.instr = keep
	return charge
}

// countTracePrefetches counts lfetch instructions in a trace.
func (c *Controller) countTracePrefetches(t *Trace) int {
	n := 0
	for _, bd := range t.Bundles {
		for _, in := range bd.Slots {
			if in.Op == isa.OpLfetch {
				n++
			}
		}
	}
	return n
}
