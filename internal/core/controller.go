package core

import (
	"math"

	"repro/internal/cpu"
	"repro/internal/memsys"
	"repro/internal/obs"
	"repro/internal/pmu"
	"repro/internal/program"
	"repro/internal/verify"
)

// Stats aggregates what the dynamic optimizer did during a run; the
// pattern counters are exactly the rows of the paper's Table 2.
type Stats struct {
	DirectPrefetches   int
	IndirectPrefetches int
	PointerPrefetches  int
	PhasesOptimized    int // stable phases that received prefetching

	PhasesDetected  int
	PhaseChanges    int
	WindowsObserved int
	TracesSelected  int
	TracesPatched   int
	Unpatches       int
	// Stride-profiling extension counters.
	StrideProfiled      int // instrumentation experiments started
	StrideFound         int // experiments that yielded a prefetchable stride
	StrideProfileFailed int // experiments with no dominant stride
	// Phase-table extension counters.
	TableHits   int
	TableMisses int
	// FirstPatchCycle records when the first trace went live (0 = never)
	// — the detection-latency metric the phase-table extension improves.
	FirstPatchCycle  uint64
	SkipLowMiss      int
	SkipInPool       int
	SkipOptimized    int
	SkipStaticLfetch int
	AnalysisFailures int
	// Static-verifier counters (Config.Verify): traces checked before
	// installation and traces rejected for failing a rule.
	TracesVerified int
	VerifyRejects  int
	// Policy-selector counters (Config.Selector): per-phase policy
	// decisions and traces where the chosen policy injected nothing and
	// the selector fell back to next-line. Omitted from JSON when zero so
	// fixed-policy output is unchanged.
	PolicySelections int `json:",omitempty"`
	PolicySwitches   int `json:",omitempty"`
	// SamplesDropped counts PMU samples lost to SSB overflows that fired
	// with no handler attached (pmu.PMU.SamplesDropped). Always zero while
	// a controller is attached — it exists so observability runs can tell
	// "no events" from "events lost" — and omitted from JSON when zero so
	// experiment output is unchanged.
	SamplesDropped uint64 `json:",omitempty"`
}

// TotalPrefetches returns the number of prefetch sequences inserted.
func (s Stats) TotalPrefetches() int {
	return s.DirectPrefetches + s.IndirectPrefetches + s.PointerPrefetches
}

// Controller is the dynopt thread: it owns the UEB, the phase detector,
// the trace selector/optimizer and the patcher, and is driven by PMU
// buffer-overflow deliveries plus a periodic poll (the paper's 100 ms
// hibernation loop). Its compute runs on the second (simulated) processor
// and is not charged to the monitored program; only patch installation
// charges PatchCharge cycles.
//
// The three decision points — phase detection, trace selection, prefetch
// generation — are driven through the policy interfaces (policy.go); the
// defaults are the paper's own components, so a default-config controller
// behaves bit-identically to the pre-policy pipeline.
type Controller struct {
	cfg  Config
	code *program.CodeSpace
	pmu  *pmu.PMU

	ueb  *UEB
	det  *PhaseDetector
	pool *TracePool
	opt  *Optimizer

	// Policy layer: the phase/trace/prefetch decisions, plus the optional
	// runtime selector that re-picks pf per stable phase (Config.Selector).
	phase PhasePolicy
	trace TracePolicy
	pf    PrefetchPolicy
	sel   *Selector

	newWindows []WindowMetrics
	patches    []*PatchRecord
	optimized  []float64 // PC-center signatures of handled phases
	blacklist  []float64

	// Stride-profiling extension state.
	mem   *memsys.Memory
	instr []*instrRecord

	// Verifier findings of rejected traces (Config.Verify).
	findings []verify.Finding

	// Observability state (Config.Observe; see observe.go).
	obs observeState

	// OnWindow, when set, receives every profile window's metrics — the
	// hook the harness uses to record the Fig. 8/9 time series.
	OnWindow func(WindowMetrics)

	// OnOptimize, when set, observes every trace optimization attempt
	// (tooling and tests; not used by the pipeline itself).
	OnOptimize func(t *Trace, loads []DelinquentLoad, res OptimizeResult)

	// OnPolicyPoint, when set, fires immediately before the controller's
	// first policy-dependent act of a stable phase — the moment the
	// prefetch policy (or the runtime selector) is consulted. Everything
	// the controller does before this callback is independent of
	// Config.Policy/Config.Selector, which is the fork engine's contract:
	// a snapshot taken at any hook boundary before the callback fires can
	// seed continuations running any policy (DESIGN.md §16). Observation
	// only; must not perturb the controller.
	OnPolicyPoint func(now uint64)

	Stats Stats
}

// NewController wires a controller to the code space it will patch and the
// PMU it samples from. Call Attach to connect it to a CPU.
func NewController(cfg Config, code *program.CodeSpace, p *pmu.PMU) (*Controller, error) {
	// Resolve the prefetch policy first: a bad Config.Policy is a
	// configuration error and should surface before any allocation.
	pf, err := NewPrefetchPolicy(cfg.Policy, cfg)
	if err != nil {
		return nil, err
	}
	pool, err := NewTracePool(cfg, code)
	if err != nil {
		return nil, err
	}
	c := &Controller{
		cfg:  cfg,
		code: code,
		pmu:  p,
		ueb:  NewUEB(cfg.W),
		det:  NewPhaseDetector(cfg),
		pool: pool,
		opt:  NewOptimizer(cfg),
	}
	c.phase = c.det
	c.trace = &paperTracePolicy{cfg: cfg, code: code}
	c.pf = pf
	if cfg.Selector {
		c.sel = NewSelector(cfg)
	}
	if cfg.Observe {
		c.obs.rec = obs.NewRecorder(cfg.ObserveCapacity)
		c.obs.prevLoop = make(map[int]cpu.CPIStack)
	}
	return c, nil
}

// Attach installs the signal handler and the poll hook on the CPU and
// starts sampling — the dyn_open sequence of §2.2.
func (c *Controller) Attach(m *cpu.CPU) {
	c.pmu.SetHandler(c.onOverflow)
	m.AddPollHook(c.cfg.PollInterval, c.poll)
	c.mem = m.Mem // instrumentation buffers live in program memory
	c.obs.m = m   // per-window CPI-stack and prefetch sampling
	c.pmu.Start(m.Now())
}

// onOverflow is the signal handler: it copies the System Sample Buffer
// into the User Event Buffer. Its cycle cost is charged by the PMU itself
// (HandlerCyclesPerSample).
func (c *Controller) onOverflow(samples []pmu.Sample) {
	w := c.ueb.AddWindow(samples)
	c.Stats.WindowsObserved++
	c.cfg.Telemetry.WindowsObserved.Inc()
	c.newWindows = append(c.newWindows, w)
	c.observeWindow(w)
	if c.OnWindow != nil {
		c.OnWindow(w)
	}
}

// poll is the dynopt thread's periodic wake-up: it feeds any new profile
// windows to the phase detector and reacts to phase events. The returned
// charge bills patch installations to the monitored thread.
func (c *Controller) poll(now uint64) uint64 {
	var charge uint64
	for _, w := range c.newWindows {
		ev, info := c.phase.Observe(w)
		switch ev {
		case PhaseStable:
			c.observePhaseDetected(now, info)
			charge += c.onStablePhase(now, info)
		case PhaseChanged:
			c.Stats.PhaseChanges++
			c.cfg.Telemetry.PhaseChanges.Inc()
			c.observePhaseChange(now)
		}
	}
	c.newWindows = c.newWindows[:0]
	charge += c.pollInstrumentation()
	c.Stats.TableHits = c.det.TableHits
	c.Stats.TableMisses = c.det.TableMisses
	if c.pmu != nil {
		c.Stats.SamplesDropped = c.pmu.SamplesDropped
	}
	if c.Stats.FirstPatchCycle == 0 && c.Stats.TracesPatched > 0 {
		c.Stats.FirstPatchCycle = now
	}
	return charge
}

// sigMatches reports whether a phase signature was already handled.
func sigMatches(list []float64, sig, tol float64) bool {
	for _, s := range list {
		if math.Abs(s-sig) <= tol {
			return true
		}
	}
	return false
}

// onStablePhase runs trace selection and optimization for a newly stable
// phase, per §2.3-§3. now is the polling cycle, used to stamp events.
func (c *Controller) onStablePhase(now uint64, info *PhaseInfo) uint64 {
	c.Stats.PhasesDetected++
	c.cfg.Telemetry.PhasesDetected.Inc()
	tol := c.cfg.PCDev

	// A phase executing inside the trace pool was already optimized:
	// skip re-optimization but monitor profitability ("we may continue
	// to monitor the execution of the optimized trace to detect and fix
	// nonprofitable ones").
	if c.pool.Contains(uint64(info.PCCenter)) {
		c.Stats.SkipInPool++
		return c.checkProfitability(now, info)
	}
	if sigMatches(c.blacklist, info.PCCenter, tol) {
		return 0
	}
	if sigMatches(c.optimized, info.PCCenter, tol) {
		c.Stats.SkipOptimized++
		return 0
	}
	// Ignore phases without meaningful data-cache miss rates — either by
	// the DPI counter or, more sharply, by the rate of DEAR-qualifying
	// (>= 8 cycle) events prefetching could actually remove.
	if info.DPI < c.cfg.MinDPI || info.DearPerK < c.cfg.MinDearPerK {
		c.Stats.SkipLowMiss++
		c.optimized = append(c.optimized, info.PCCenter)
		return 0
	}

	// Trace selection reads the whole UEB for path-profile coverage;
	// delinquent-load identification uses only the windows that
	// established the stable phase, so stale startup misses cannot
	// justify prefetches for code that now hits in cache ("use
	// performance samples to locate the most recent delinquent loads").
	samples := c.ueb.Samples()
	recent := samples
	if len(info.Windows) > 0 {
		recent = c.ueb.SamplesSince(info.Windows[0].Seq)
	}
	traces := c.trace.Select(info, samples)
	c.Stats.TracesSelected += len(traces)
	c.cfg.Telemetry.TracesSelected.Add(uint64(len(traces)))
	for _, t := range traces {
		c.observeTraceSelected(now, t)
	}

	// One prefetch-policy decision per stable phase: with the selector on,
	// the live counters pick the policy; otherwise the configured one runs.
	if c.OnPolicyPoint != nil {
		c.OnPolicyPoint(now)
	}
	ctx := c.prefetchContext(info.CPI)
	pol := c.pf
	if c.sel != nil {
		pol = c.sel.Pick(ctx)
		c.Stats.PolicySelections++
		c.cfg.Telemetry.PolicySelections.Inc()
		c.observePolicySelected(now, info, pol.PolicyName())
	}

	var charge uint64
	anyInserted := false
	for _, t := range traces {
		if !t.IsLoop {
			continue
		}
		if c.isPatched(t.Start) {
			// This loop was already optimized in an earlier phase.
			continue
		}
		loads := FindDelinquentLoads(t, recent, c.cfg)
		if len(loads) == 0 {
			continue
		}
		events := 0
		for _, dl := range loads {
			events += dl.Count
		}
		if events < c.cfg.MinDearEvents {
			continue // not enough evidence of frequent misses
		}
		var pristine *Trace
		if c.cfg.Verify || c.sel != nil {
			pristine = cloneTrace(t)
		}
		res := pol.Optimize(t, loads, ctx)
		if c.sel != nil && res.Total() == 0 {
			// The picked policy saw nothing it could prefetch (most often
			// unclassifiable loads): retry the trace with the fallback.
			if fb := c.sel.Fallback(pol.PolicyName()); fb != nil {
				*t = *cloneTrace(pristine)
				if fres := fb.Optimize(t, loads, ctx); fres.Total() > 0 {
					res = fres
					c.Stats.PolicySwitches++
					c.cfg.Telemetry.PolicySwitches.Inc()
					c.sel.noteUse(fb.PolicyName())
					c.observePolicySwitched(now, t, pol.PolicyName(), fb.PolicyName())
				} else {
					*t = *cloneTrace(pristine) // nothing worked: restore
				}
			}
		}
		if c.OnOptimize != nil {
			c.OnOptimize(t, loads, res)
		}
		c.Stats.DirectPrefetches += res.Direct
		c.Stats.IndirectPrefetches += res.Indirect
		c.Stats.PointerPrefetches += res.Pointer
		c.Stats.AnalysisFailures += res.Failures
		c.Stats.SkipStaticLfetch += res.Skipped

		// §6 extension: if slice analysis failed on some loads, add
		// address-recording instrumentation to the same trace.
		instr := c.addInstrumentation(t, res, info)

		if (res.Total() == 0 && instr == nil) || c.cfg.DisableInsertion {
			continue
		}
		preFindings := len(c.findings)
		if !c.verifyTrace(t, pristine) {
			c.cfg.Telemetry.VerifyRejects.Inc()
			c.observeVerifyReject(now, t, len(c.findings)-preFindings)
			continue // fail-safe: leave the original code unpatched
		}
		addr, err := c.pool.Install(t)
		if err != nil {
			continue // pool full: stop patching, keep running
		}
		rec, err := applyPatch(c.code, t.Start, addr, info.CPI)
		if err != nil {
			continue
		}
		rec.TraceEnd = c.pool.seg.Base + uint64(c.pool.next)*16
		c.patches = append(c.patches, rec)
		c.Stats.TracesPatched++
		c.cfg.Telemetry.TracesPatched.Inc()
		c.observePatchInstalled(now, rec, res.Total())
		charge += c.cfg.PatchCharge
		if instr != nil {
			instr.patch = rec
			c.instr = append(c.instr, instr)
		}
		if res.Total() > 0 {
			anyInserted = true
		}
	}
	if anyInserted {
		c.Stats.PhasesOptimized++
	}
	c.optimized = append(c.optimized, info.PCCenter)
	return charge
}

// isPatched reports whether a patch is already installed at entry.
func (c *Controller) isPatched(entry uint64) bool {
	for _, rec := range c.patches {
		if rec.Active && rec.Entry == entry {
			return true
		}
	}
	return false
}

// checkProfitability unpatches traces whose phase now runs slower than
// before patching.
func (c *Controller) checkProfitability(now uint64, info *PhaseInfo) uint64 {
	pc := uint64(info.PCCenter)
	for _, rec := range c.patches {
		if !rec.Active || pc < rec.TraceAddr || pc >= rec.TraceEnd {
			continue
		}
		if info.CPI > rec.PrePatch*c.cfg.UnpatchSlowdown {
			if err := undoPatch(c.code, rec); err == nil {
				c.Stats.Unpatches++
				c.cfg.Telemetry.Unpatches.Inc()
				c.blacklist = append(c.blacklist, info.PCCenter)
				c.observeUnpatch(now, rec, info.CPI)
				return c.cfg.PatchCharge
			}
		}
	}
	return 0
}

// Patches returns the installed patch records (active and undone).
func (c *Controller) Patches() []*PatchRecord { return c.patches }

// UnpatchAll restores the saved original bundle of every active patch —
// the dyn_close path, and the hook the differential harness uses to check
// that patching is fully reversible: after UnpatchAll the main code segment
// must be bundle-for-bundle identical to the image as built.
func (c *Controller) UnpatchAll() error {
	for _, rec := range c.patches {
		if !rec.Active {
			continue
		}
		if err := undoPatch(c.code, rec); err != nil {
			return err
		}
		c.Stats.Unpatches++
		c.cfg.Telemetry.Unpatches.Inc()
	}
	return nil
}

// Pool returns the trace pool, for inspection.
func (c *Controller) Pool() *TracePool { return c.pool }

// Detector exposes the phase detector, for inspection.
func (c *Controller) Detector() *PhaseDetector { return c.det }

// prefetchContext snapshots the runtime signals a prefetch policy may
// consult. Read-only: gathering it never perturbs the machine, so the
// default (paper) policy — which looks only at PhaseCPI — behaves exactly
// as before the policy layer existed.
func (c *Controller) prefetchContext(phaseCPI float64) PrefetchContext {
	ctx := PrefetchContext{PhaseCPI: phaseCPI}
	if m := c.obs.m; m != nil {
		ctx.Cycle = m.Now()
		if h := m.Hier; h != nil {
			ctx.Prefetch = h.Prefetch()
			ctx.BusWaitCycles = h.BusWaitCycles
			ctx.MemAccesses = h.MemAccesses
		}
	}
	return ctx
}

// PolicyKey names the effective prefetch-policy configuration.
func (c *Controller) PolicyKey() string { return c.cfg.PolicyKey() }

// PolicyUse reports, per policy name, how many decisions the runtime
// selector resolved to it (first picks plus fallback wins). Nil without
// Config.Selector.
func (c *Controller) PolicyUse() map[string]int {
	if c.sel == nil {
		return nil
	}
	return c.sel.Use()
}
