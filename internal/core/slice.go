package core

import "repro/internal/isa"

// Pattern is the paper's data reference pattern taxonomy (Fig. 5).
type Pattern uint8

const (
	PatternUnknown  Pattern = iota
	PatternDirect           // single-level strided array reference
	PatternIndirect         // multi-level access: a strided load feeds the address
	PatternPointer          // pointer-chasing: the address advances through memory
)

func (p Pattern) String() string {
	switch p {
	case PatternDirect:
		return "direct"
	case PatternIndirect:
		return "indirect"
	case PatternPointer:
		return "pointer-chasing"
	}
	return "unknown"
}

// flatInst is one instruction of a flattened loop trace.
type flatInst struct {
	pos    int
	bundle int
	slot   int
	in     isa.Inst
}

// body is the flattened instruction view of a loop trace, the structure
// over which dependence slices are extracted.
type body struct {
	insts []flatInst
}

// flatten lists the non-nop instructions of a trace in execution order.
func flatten(t *Trace) *body {
	b := &body{}
	for bi := range t.Bundles {
		for si := 0; si < 3; si++ {
			in := t.Bundles[bi].Slots[si]
			if in.Op == isa.OpNop {
				continue
			}
			b.insts = append(b.insts, flatInst{
				pos: len(b.insts), bundle: bi, slot: si, in: in,
			})
		}
	}
	return b
}

// find returns the body position of the instruction at the given original
// trace coordinates, or -1.
func (b *body) find(bundle, slot int) int {
	for i := range b.insts {
		if b.insts[i].bundle == bundle && b.insts[i].slot == slot {
			return i
		}
	}
	return -1
}

// selfUpdate reports whether in is a pure induction step of r: a
// post-increment on r or an immediate add r = imm, r. These accumulate a
// constant per iteration without redefining the register's lineage.
func selfUpdate(in *isa.Inst, r isa.Reg) (int64, bool) {
	if pr, ok := in.PostIncDef(); ok && pr == r {
		if d, dok := in.RegDef(); dok && d == r {
			// r = [r], inc — the destination overwrites the lineage.
			return 0, false
		}
		return in.PostInc, true
	}
	if in.Op == isa.OpAddI && in.R1 == r && in.R3 == r {
		return in.Imm, true
	}
	return 0, false
}

// defines reports whether in writes r (result or post-increment).
func defines(in *isa.Inst, r isa.Reg) bool {
	if d, ok := in.RegDef(); ok && d == r {
		return true
	}
	if d, ok := in.PostIncDef(); ok && d == r {
		return true
	}
	return false
}

// walkAddr walks backwards from position from (exclusive), wrapping around
// the loop at most once, following register r's lineage. Pure induction
// steps accumulate into delta; the walk stops at the first generating
// definition (anything else that writes r).
//
// Returns (nil, delta) when r is only ever self-updated — a pure induction
// register whose per-iteration stride is delta — or (def, delta) where
// delta is the self-update contribution between def and the start point.
func (b *body) walkAddr(from int, r isa.Reg) (def *flatInst, delta int64) {
	n := len(b.insts)
	for step := 1; step <= n; step++ {
		i := ((from-step)%n + n) % n
		in := &b.insts[i].in
		if !defines(in, r) {
			continue
		}
		if d, ok := selfUpdate(in, r); ok {
			delta += d
			continue
		}
		return &b.insts[i], delta
	}
	return nil, delta
}

// poison reports ops the slicer refuses to trace through — the paper's
// "complex address calculation patterns (e.g. function call or fp-int
// conversion), causing the dynamic optimizer to fail".
func poison(op isa.Op) bool {
	switch op {
	case isa.OpGetF, isa.OpFCvtFX, isa.OpBrCall, isa.OpBrRet, isa.OpSetF, isa.OpFCvtXF:
		return true
	}
	return false
}

// aType reports the transform ops the slicer can replay with substituted
// registers when recomputing a future indirect address.
func aType(op isa.Op) bool {
	switch op {
	case isa.OpAdd, isa.OpSub, isa.OpAddI, isa.OpShlAdd, isa.OpMov,
		isa.OpShl, isa.OpSxt4, isa.OpZxt4, isa.OpAnd:
		return true
	}
	return false
}

// Analysis is the classification of one delinquent load.
type Analysis struct {
	Pattern Pattern
	Pos     int // body position of the delinquent load

	// PatternDirect
	Stride  int64
	AddrReg isa.Reg

	// PatternIndirect
	FeederPos      int        // body position of the feeding load
	FeederStride   int64      // stride of the feeder's address register
	FeederAddrReg  isa.Reg    // the feeder's cursor register
	FeederDstReg   isa.Reg    // register the transform chain consumes
	Transform      []isa.Inst // ops from feeder value to address, forward order
	TransformDelta int64      // accumulated immediate adjustments

	// PatternPointer
	InductionReg isa.Reg
	UpdatePos    int // body position after which the induction reg is final
}

// classify determines the reference pattern of the load at body position
// pos, per §3.2 of the paper.
func (b *body) classify(pos int) Analysis {
	load := &b.insts[pos].in
	rA := load.R3
	res := Analysis{Pattern: PatternUnknown, Pos: pos, AddrReg: rA}
	if rA == 0 {
		return res
	}

	def, delta := b.walkAddr(pos, rA)
	if def == nil {
		if delta != 0 {
			res.Pattern = PatternDirect
			res.Stride = delta
		}
		return res
	}

	switch {
	case isa.IsLoad(def.in.Op):
		// rA itself comes from memory: a strided feeder makes this a
		// table-indirection; anything else is a linked-structure
		// advance (pointer chasing).
		fdef, fstride := b.walkAddr(def.pos, def.in.R3)
		if fdef == nil && fstride != 0 {
			res.Pattern = PatternIndirect
			res.FeederPos = def.pos
			res.FeederStride = fstride
			res.FeederAddrReg = def.in.R3
			res.FeederDstReg = rA
			res.TransformDelta = delta
			return res
		}
		res.Pattern = PatternPointer
		res.InductionReg = rA
		res.UpdatePos = def.pos
		return res

	case poison(def.in.Op):
		return res

	case aType(def.in.Op):
		return b.chainClassify(pos, rA, def, delta, 0)
	}
	return res
}

// chainClassify follows an address produced by an arithmetic transform
// chain: it inspects the transform's inputs to find a strided feeder load
// (indirect), a pure strided recompute (direct), or a recurrence through
// memory (pointer chasing).
func (b *body) chainClassify(pos int, rA isa.Reg, def *flatInst, accDelta int64, depth int) Analysis {
	res := Analysis{Pattern: PatternUnknown, Pos: pos, AddrReg: rA}
	if depth > 2 {
		return res
	}
	transform := []isa.Inst{def.in}
	var strideSum int64
	var feeder *flatInst
	var feederStride int64
	var feederDst isa.Reg

	var uses []isa.Reg
	uses = def.in.RegUses(uses)
	seen := map[isa.Reg]bool{}
	for _, u := range uses {
		if u == 0 || seen[u] {
			continue
		}
		seen[u] = true
		udef, udelta := b.walkAddr(def.pos, u)
		if udef == nil {
			strideSum += udelta
			continue
		}
		switch {
		case isa.IsLoad(udef.in.Op):
			fdef, fstride := b.walkAddr(udef.pos, udef.in.R3)
			if fdef == nil && fstride != 0 {
				if feeder != nil {
					return res // two feeders: give up
				}
				feeder = udef
				feederStride = fstride
				feederDst = u
				continue
			}
			// The input recurs through memory: pointer chasing on
			// the original address register.
			res.Pattern = PatternPointer
			res.InductionReg = rA
			res.UpdatePos = def.pos
			return res
		case poison(udef.in.Op):
			return res
		case aType(udef.in.Op):
			// One more transform level: classify through it.
			sub := b.chainClassify(pos, rA, udef, 0, depth+1)
			switch sub.Pattern {
			case PatternIndirect:
				if feeder != nil {
					return res
				}
				feeder = &b.insts[sub.FeederPos]
				feederStride = sub.FeederStride
				feederDst = sub.FeederDstReg
				transform = append(sub.Transform, transform...)
				strideSum += sub.TransformDelta
			case PatternDirect:
				strideSum += sub.Stride
			case PatternPointer:
				return sub
			default:
				return res
			}
		default:
			return res
		}
	}

	if feeder != nil {
		res.Pattern = PatternIndirect
		res.FeederPos = feeder.pos
		res.FeederStride = feederStride
		res.FeederAddrReg = feeder.in.R3
		res.FeederDstReg = feederDst
		res.Transform = transform
		res.TransformDelta = accDelta + strideSum
		return res
	}
	if strideSum+accDelta != 0 {
		res.Pattern = PatternDirect
		res.Stride = strideSum + accDelta
		return res
	}
	return res
}

// ClassifyLoad runs the dependence slicer on the load at the given trace
// coordinates, exactly as the optimizer does before emitting prefetches.
// It exposes the classification step on its own so the static classifier
// in internal/analysis can be differentially checked against it: on a
// pristine loop trace whose bundles equal a straightened natural loop, the
// two must produce the same verdict for every load. Reports false when the
// coordinates do not name a load.
func ClassifyLoad(t *Trace, bundle, slot int) (Analysis, bool) {
	b := flatten(t)
	pos := b.find(bundle, slot)
	if pos < 0 || !isa.IsLoad(b.insts[pos].in.Op) {
		return Analysis{}, false
	}
	return b.classify(pos), true
}
