package core

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/memsys"
	"repro/internal/obs"
	"repro/internal/program"
	"repro/internal/verify"
)

// pfStats abbreviates the usefulness-counter literals in the tables below.
func pfStats(issued, useful, late, unused uint64) memsys.PrefetchStats {
	return memsys.PrefetchStats{Issued: issued, Useful: useful, Late: late, EvictedUnused: unused}
}

// The policy-conformance suite: every registered prefetch policy — current
// and future — must honor the same contract the controller relies on when
// it hands a policy a cloned trace:
//
//	determinism     — same trace + loads + context ⇒ same edits
//	verifier-clean  — edited traces pass the static verifier
//	confined writes — injected code writes only r27-r30 / p6
//	benign on empty — no loads, or a non-loop trace ⇒ no edits
//
// The suite runs each policy under a spread of PrefetchContexts, so a
// policy whose behavior depends on the counters (adaptive, throttle) is
// exercised in every regime its thresholds carve out.

// policyTrace builds the canonical conformance input: a loop trace with a
// direct-pattern (stride-12) delinquent load, which every built-in policy
// knows how to prefetch.
func policyTrace() (*Trace, []DelinquentLoad) {
	tr := traceFromInsts([]isa.Inst{
		{Op: isa.OpLd4, R1: 20, R3: 14, PostInc: 12},
		{Op: isa.OpAddI, R1: 21, Imm: 1, R3: 21},
	})
	loads := []DelinquentLoad{{Bundle: 0, Slot: 0, PC: tr.Orig[0], Count: 50, TotalLatency: 8000, AvgLatency: 160}}
	return tr, loads
}

// policyContexts spans the counter regimes the built-in policies branch on.
func policyContexts() map[string]PrefetchContext {
	return map[string]PrefetchContext{
		"zero":    {},
		"steady":  {PhaseCPI: 2.0, Cycle: 1_000_000, Prefetch: pfStats(1000, 900, 10, 10)},
		"late":    {PhaseCPI: 2.0, Cycle: 1_000_000, Prefetch: pfStats(1000, 400, 500, 10)},
		"unused":  {PhaseCPI: 2.0, Cycle: 1_000_000, Prefetch: pfStats(1000, 300, 10, 600)},
		"bus-sat": {PhaseCPI: 2.0, Cycle: 1_000_000, Prefetch: pfStats(1000, 900, 10, 10), BusWaitCycles: 100_000},
	}
}

func TestPolicyRegistry(t *testing.T) {
	names := PrefetchPolicyNames()
	for _, want := range []string{PolicyAdaptive, PolicyNextLine, PolicyPaper, PolicyThrottle} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("registry missing %q (have %v)", want, names)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("PrefetchPolicyNames not sorted: %v", names)
		}
	}

	cfg := DefaultConfig()
	for _, name := range names {
		p, err := NewPrefetchPolicy(name, cfg)
		if err != nil {
			t.Fatalf("NewPrefetchPolicy(%q): %v", name, err)
		}
		if p.PolicyName() != name {
			t.Errorf("policy %q reports name %q", name, p.PolicyName())
		}
	}

	def, err := NewPrefetchPolicy("", cfg)
	if err != nil || def.PolicyName() != PolicyPaper {
		t.Fatalf("empty policy name = (%v, %v), want the paper default", def, err)
	}
	if _, err := NewPrefetchPolicy("nope", cfg); err == nil ||
		!strings.Contains(err.Error(), PolicyNextLine) {
		t.Fatalf("unknown policy error %v does not list valid names", err)
	}
}

// TestPolicyConformance runs the contract checks for every registered
// policy under every counter regime.
func TestPolicyConformance(t *testing.T) {
	cfg := DefaultConfig()
	pristine, loads := policyTrace()
	pv := pristine.View()

	for _, name := range PrefetchPolicyNames() {
		for ctxName, ctx := range policyContexts() {
			t.Run(name+"/"+ctxName, func(t *testing.T) {
				// Two independent instances on two clones: determinism must
				// hold across instances, not just calls (the selector and a
				// fixed-policy controller construct them separately).
				p1, err := NewPrefetchPolicy(name, cfg)
				if err != nil {
					t.Fatal(err)
				}
				p2, err := NewPrefetchPolicy(name, cfg)
				if err != nil {
					t.Fatal(err)
				}
				t1, t2 := cloneTrace(pristine), cloneTrace(pristine)
				r1 := p1.Optimize(t1, loads, ctx)
				r2 := p2.Optimize(t2, loads, ctx)
				if !reflect.DeepEqual(r1, r2) {
					t.Fatalf("nondeterministic result: %+v vs %+v", r1, r2)
				}
				if !reflect.DeepEqual(t1.Bundles, t2.Bundles) {
					t.Fatal("nondeterministic trace edits")
				}

				if fs := verify.Errors(verify.CheckTrace(t1.View(), &pv, verify.Options{})); len(fs) != 0 {
					t.Fatalf("edited trace fails verifier: %v", fs)
				}

				for _, in := range injectedInsts(pristine, t1) {
					if in.R1 != 0 && (in.R1 < isa.ReservedGRFirst || in.R1 > isa.ReservedGRLast) {
						t.Errorf("injected %s writes non-reserved r%d", in.Op, in.R1)
					}
					if in.F1 != 0 {
						t.Errorf("injected %s writes FP register f%d", in.Op, in.F1)
					}
					if (in.P1 != 0 && in.P1 != isa.ReservedPR) || (in.P2 != 0 && in.P2 != isa.ReservedPR) {
						t.Errorf("injected %s writes non-reserved predicate", in.Op)
					}
				}

				// No loads ⇒ no edits.
				empty := cloneTrace(pristine)
				if r := p1.Optimize(empty, nil, ctx); r.Total() != 0 {
					t.Fatalf("policy injected %d prefetches with no delinquent loads", r.Total())
				}
				if !reflect.DeepEqual(empty.Bundles, pristine.Bundles) {
					t.Fatal("policy edited a trace with no delinquent loads")
				}

				// Non-loop trace ⇒ no edits.
				straight := cloneTrace(pristine)
				straight.IsLoop = false
				if r := p1.Optimize(straight, loads, ctx); r.Total() != 0 {
					t.Fatalf("policy injected %d prefetches into a non-loop trace", r.Total())
				}
				if !reflect.DeepEqual(straight.Bundles, pristine.Bundles) {
					t.Fatal("policy edited a non-loop trace")
				}
			})
		}
	}
}

// injectedInsts returns the instructions present in edited but not in
// pristine, as a multiset difference over the flattened slots.
func injectedInsts(pristine, edited *Trace) []isa.Inst {
	seen := map[isa.Inst]int{}
	for _, bd := range pristine.Bundles {
		for _, in := range bd.Slots {
			seen[in]++
		}
	}
	var out []isa.Inst
	for _, bd := range edited.Bundles {
		for _, in := range bd.Slots {
			if seen[in] > 0 {
				seen[in]--
				continue
			}
			if in == isa.Nop {
				continue
			}
			out = append(out, in)
		}
	}
	return out
}

// TestNextLineFiresWithoutAnalyzablePattern pins the fallback property the
// selector relies on: a load the paper's slicer cannot classify (address
// register never advanced in the body) still gets a next-line prefetch.
func TestNextLineFiresWithoutAnalyzablePattern(t *testing.T) {
	tr := traceFromInsts([]isa.Inst{
		{Op: isa.OpLd8, R1: 20, R3: 14}, // no post-inc, r14 never redefined
		{Op: isa.OpAddI, R1: 21, Imm: 1, R3: 21},
	})
	loads := []DelinquentLoad{{Bundle: 0, Slot: 0, PC: tr.Orig[0], Count: 50, TotalLatency: 8000, AvgLatency: 160}}
	cfg := DefaultConfig()

	paper, err := NewPrefetchPolicy(PolicyPaper, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r := paper.Optimize(cloneTrace(tr), loads, PrefetchContext{PhaseCPI: 2.0}); r.Total() != 0 {
		t.Fatalf("paper policy classified the unclassifiable load: %+v", r)
	}

	nl, err := NewPrefetchPolicy(PolicyNextLine, cfg)
	if err != nil {
		t.Fatal(err)
	}
	edited := cloneTrace(tr)
	r := nl.Optimize(edited, loads, PrefetchContext{PhaseCPI: 2.0})
	if r.Direct != 1 || r.Total() != 1 {
		t.Fatalf("nextline result = %+v, want one prefetch", r)
	}
	pv := tr.View()
	if fs := verify.Errors(verify.CheckTrace(edited.View(), &pv, verify.Options{})); len(fs) != 0 {
		t.Fatalf("nextline trace fails verifier: %v", fs)
	}
}

// TestSelectorDecisionLadder pins the pick rules against hand-built
// counter states.
func TestSelectorDecisionLadder(t *testing.T) {
	s := NewSelector(DefaultConfig())
	cases := []struct {
		name string
		ctx  PrefetchContext
		want string
	}{
		{"no evidence", PrefetchContext{}, PolicyPaper},
		{"healthy counters", PrefetchContext{Cycle: 1_000_000, Prefetch: pfStats(1000, 900, 10, 10)}, PolicyPaper},
		{"below issue gate", PrefetchContext{Cycle: 1_000_000, Prefetch: pfStats(32, 0, 32, 0)}, PolicyPaper},
		{"late-heavy", PrefetchContext{Cycle: 1_000_000, Prefetch: pfStats(1000, 400, 500, 10)}, PolicyAdaptive},
		// The evicted-unused counter alone must NOT trigger a retune: it
		// overcounts on overlapping streams (see selector.go).
		{"unused-heavy", PrefetchContext{Cycle: 1_000_000, Prefetch: pfStats(1000, 300, 10, 900)}, PolicyPaper},
		{"bus saturated", PrefetchContext{Cycle: 1_000_000, BusWaitCycles: 100_000, Prefetch: pfStats(1000, 900, 10, 10)}, PolicyThrottle},
		{"bus beats late", PrefetchContext{Cycle: 1_000_000, BusWaitCycles: 100_000, Prefetch: pfStats(1000, 400, 500, 10)}, PolicyThrottle},
	}
	picks := 0
	for _, c := range cases {
		if got := s.Pick(c.ctx).PolicyName(); got != c.want {
			t.Errorf("%s: picked %q, want %q", c.name, got, c.want)
		}
		picks++
	}
	total := 0
	for _, n := range s.Use() {
		total += n
	}
	if total != picks {
		t.Errorf("Use() accounts for %d decisions, want %d", total, picks)
	}

	if fb := s.Fallback(PolicyPaper); fb == nil || fb.PolicyName() != PolicyNextLine {
		t.Error("fallback from paper is not nextline")
	}
	if fb := s.Fallback(PolicyNextLine); fb != nil {
		t.Errorf("fallback chain does not terminate: %v", fb.PolicyName())
	}

	// A fallback that wins a trace is charged to the policy that ran.
	s.noteUse(PolicyNextLine)
	if n := s.Use()[PolicyNextLine]; n != 1 {
		t.Errorf("noteUse recorded %d nextline wins, want 1", n)
	}
}

// TestPolicyAdapterNames pins the identity the paper adapters report and
// the name→index encoding obs events carry.
func TestPolicyAdapterNames(t *testing.T) {
	cfg := DefaultConfig()
	if n := NewPhaseDetector(cfg).PolicyName(); n != PolicyPaper {
		t.Errorf("phase detector reports policy %q", n)
	}
	if n := (&paperTracePolicy{}).PolicyName(); n != PolicyPaper {
		t.Errorf("paper trace policy reports %q", n)
	}
	for i, name := range PrefetchPolicyNames() {
		if idx := policyIndex(name); idx != uint64(i) {
			t.Errorf("policyIndex(%q) = %d, want %d", name, idx, i)
		}
	}
	if idx := policyIndex("nope"); idx != ^uint64(0) {
		t.Errorf("policyIndex of unknown name = %d, want sentinel", idx)
	}
}

// TestObservePolicyEvents pins the event shape the selector emits: indices
// resolve through the capture's policy name table.
func TestObservePolicyEvents(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Observe = true
	cfg.Selector = true
	c, err := NewController(cfg, program.NewCodeSpace(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Recording() {
		t.Fatal("Observe config did not arm the recorder")
	}

	info := &PhaseInfo{PCCenter: 0x2000}
	c.Stats.PolicySelections = 1
	c.observePolicySelected(100, info, PolicyAdaptive)
	tr, _ := policyTrace()
	c.observePolicySwitched(200, tr, PolicyPaper, PolicyNextLine)

	cp := c.Capture()
	if cp == nil || len(cp.Events) != 2 {
		t.Fatalf("capture = %+v, want 2 events", cp)
	}
	if !reflect.DeepEqual(cp.Meta.Policies, PrefetchPolicyNames()) {
		t.Errorf("capture name table %v, want %v", cp.Meta.Policies, PrefetchPolicyNames())
	}
	sel := cp.Events[0]
	if sel.Kind != obs.KindPolicySelected || cp.Meta.Policies[sel.A] != PolicyAdaptive {
		t.Errorf("selected event %+v does not resolve to %q", sel, PolicyAdaptive)
	}
	sw := cp.Events[1]
	if sw.Kind != obs.KindPolicySwitched ||
		cp.Meta.Policies[sw.A] != PolicyPaper || cp.Meta.Policies[sw.B] != PolicyNextLine {
		t.Errorf("switched event %+v does not resolve to %q→%q", sw, PolicyPaper, PolicyNextLine)
	}
}

// TestControllerRejectsUnknownPolicy pins the config-validation path.
func TestControllerRejectsUnknownPolicy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = "bogus"
	if _, err := NewController(cfg, nil, nil); err == nil {
		t.Fatal("controller accepted an unknown policy name")
	}
}

func TestConfigPolicyKey(t *testing.T) {
	var cfg Config
	if k := cfg.PolicyKey(); k != PolicyPaper {
		t.Errorf("zero config policy key = %q", k)
	}
	cfg.Policy = PolicyAdaptive
	if k := cfg.PolicyKey(); k != PolicyAdaptive {
		t.Errorf("fixed policy key = %q", k)
	}
	cfg.Selector = true
	if k := cfg.PolicyKey(); k != "selector" {
		t.Errorf("selector policy key = %q", k)
	}
}
