package core

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/pmu"
	"repro/internal/program"
)

// codeWith builds a code space from bundles at base 0x1000.
func codeWith(t *testing.T, bundles []isa.Bundle) *program.CodeSpace {
	t.Helper()
	cs := program.NewCodeSpace()
	if err := cs.AddSegment(&program.Segment{Name: "main", Base: 0x1000, Bundles: bundles}); err != nil {
		t.Fatal(err)
	}
	return cs
}

// btbSamples fabricates samples whose BTB reports one branch outcome
// repeatedly: takenOf times taken out of total.
func btbSamples(src, dst uint64, taken, total int) []pmu.Sample {
	var out []pmu.Sample
	for i := 0; i < total; i++ {
		s := pmu.Sample{PC: dst, NBTB: 1}
		s.BTB[0] = pmu.BranchRec{Src: src, Dst: dst, Taken: i < taken}
		out = append(out, s)
	}
	return out
}

func loopBundles() []isa.Bundle {
	// 0x1000: body bundle; 0x1010: latch with back edge to 0x1000.
	return []isa.Bundle{
		{Tmpl: isa.TmplMII, Slots: [3]isa.Inst{
			{Op: isa.OpLd8, R1: 20, R3: 14, PostInc: 8},
			{Op: isa.OpAdd, R1: 21, R2: 21, R3: 20},
			{Op: isa.OpAddI, R1: 10, Imm: -1, R3: 10},
		}},
		{Tmpl: isa.TmplMIB, Slots: [3]isa.Inst{
			{Op: isa.OpCmpI, Rel: isa.CmpLt, P1: 1, P2: 2, Imm: 0, R3: 10},
			isa.Nop,
			{Op: isa.OpBrCond, QP: 1, Target: 0x1000},
		}},
		{Tmpl: isa.TmplMII}, // fall-through after loop
	}
}

func TestSelectLoopTrace(t *testing.T) {
	cs := codeWith(t, loopBundles())
	sel := NewTraceSelector(DefaultConfig(), cs)
	traces := sel.Select(btbSamples(0x1012, 0x1000, 95, 100))
	if len(traces) != 1 {
		t.Fatalf("traces = %d", len(traces))
	}
	tr := traces[0]
	if !tr.IsLoop {
		t.Fatal("loop not detected")
	}
	if tr.Start != 0x1000 || tr.BackEdge != 1 || len(tr.Bundles) != 2 {
		t.Fatalf("trace = start %#x backEdge %d bundles %d", tr.Start, tr.BackEdge, len(tr.Bundles))
	}
}

func TestBalancedBranchStopsTrace(t *testing.T) {
	// A 50/50 branch is a stop point: the trace ends at its bundle.
	bundles := []isa.Bundle{
		{Tmpl: isa.TmplMII, Slots: [3]isa.Inst{{Op: isa.OpAddI, R1: 20, Imm: 1, R3: 20}, isa.Nop, isa.Nop}},
		{Tmpl: isa.TmplMIB, Slots: [3]isa.Inst{isa.Nop, isa.Nop, {Op: isa.OpBrCond, QP: 1, Target: 0x1040}}},
		{Tmpl: isa.TmplMII},
		{Tmpl: isa.TmplMII},
		{Tmpl: isa.TmplBBB, Slots: [3]isa.Inst{{Op: isa.OpHalt}, isa.Nop, isa.Nop}},
	}
	cs := codeWith(t, bundles)
	samples := btbSamples(0x1012, 0x1040, 50, 100)
	// Also make 0x1000 a hot target so a trace starts there.
	for i := range samples {
		if i%2 == 0 {
			samples[i].BTB[0] = pmu.BranchRec{Src: 0x1080, Dst: 0x1000, Taken: true}
		}
	}
	sel := NewTraceSelector(DefaultConfig(), cs)
	traces := sel.Select(samples)
	for _, tr := range traces {
		if tr.Start == 0x1000 {
			if len(tr.Bundles) != 2 {
				t.Fatalf("balanced branch did not stop trace: %d bundles", len(tr.Bundles))
			}
			return
		}
	}
	t.Fatal("no trace from 0x1000")
}

func TestStronglyTakenBranchBreaksBundle(t *testing.T) {
	// Branch in slot 1 of the second bundle, 95% taken to 0x1040:
	// the slot after the branch must be discarded and the trace continue
	// at the target ("break the current bundle ... discarding the
	// remaining instruction in the fall-through path").
	bundles := []isa.Bundle{
		{Tmpl: isa.TmplMII, Slots: [3]isa.Inst{{Op: isa.OpAddI, R1: 20, Imm: 1, R3: 20}, isa.Nop, isa.Nop}},
		{Tmpl: isa.TmplMBB, Slots: [3]isa.Inst{
			{Op: isa.OpLd8, R1: 21, R3: 14},
			{Op: isa.OpBrCond, QP: 1, Target: 0x1040},
			isa.Nop,
		}},
		{Tmpl: isa.TmplMII, Slots: [3]isa.Inst{{Op: isa.OpAddI, R1: 22, Imm: 9, R3: 22}, isa.Nop, isa.Nop}}, // fall-through, must not appear
		{Tmpl: isa.TmplMII},
		{Tmpl: isa.TmplMII, Slots: [3]isa.Inst{{Op: isa.OpAddI, R1: 23, Imm: 3, R3: 23}, isa.Nop, isa.Nop}},
		{Tmpl: isa.TmplBBB, Slots: [3]isa.Inst{{Op: isa.OpHalt}, isa.Nop, isa.Nop}},
	}
	cs := codeWith(t, bundles)
	samples := btbSamples(0x1011, 0x1040, 95, 100)
	for i := range samples {
		if i%3 == 0 {
			samples[i].BTB[0] = pmu.BranchRec{Src: 0x1090, Dst: 0x1000, Taken: true}
		}
	}
	sel := NewTraceSelector(DefaultConfig(), cs)
	traces := sel.Select(samples)
	var tr *Trace
	for _, c := range traces {
		if c.Start == 0x1000 {
			tr = c
		}
	}
	if tr == nil {
		t.Fatal("no trace from 0x1000")
	}
	// Trace: bundle 0, broken bundle 1, then continues at 0x1040.
	for _, b := range tr.Bundles {
		for _, in := range b.Slots {
			if in.Op == isa.OpAddI && in.Imm == 9 {
				t.Fatal("fall-through instruction leaked into trace")
			}
		}
	}
	found := false
	for i, a := range tr.Orig {
		if a == 0x1040 {
			found = true
			if i != 2 {
				t.Fatalf("target bundle at index %d, want 2", i)
			}
		}
	}
	if !found {
		t.Fatal("trace did not continue at branch target")
	}
}

func TestSWPLoopTraceDiscarded(t *testing.T) {
	bundles := loopBundles()
	bundles[1].Slots[2].SWPLoop = true
	cs := codeWith(t, bundles)
	sel := NewTraceSelector(DefaultConfig(), cs)
	traces := sel.Select(btbSamples(0x1012, 0x1000, 95, 100))
	if len(traces) != 0 {
		t.Fatalf("software-pipelined loop selected: %d traces", len(traces))
	}
}

func TestReturnStopsTrace(t *testing.T) {
	bundles := []isa.Bundle{
		{Tmpl: isa.TmplMII, Slots: [3]isa.Inst{{Op: isa.OpAddI, R1: 20, Imm: 1, R3: 20}, isa.Nop, isa.Nop}},
		{Tmpl: isa.TmplMIB, Slots: [3]isa.Inst{isa.Nop, isa.Nop, {Op: isa.OpBrRet, B: 1}}},
		{Tmpl: isa.TmplMII},
	}
	cs := codeWith(t, bundles)
	sel := NewTraceSelector(DefaultConfig(), cs)
	traces := sel.Select(btbSamples(0x1080, 0x1000, 100, 100))
	if len(traces) != 1 || len(traces[0].Bundles) != 2 || traces[0].IsLoop {
		t.Fatalf("return did not stop trace: %+v", traces[0])
	}
}

func TestCoveredTargetsNotReselected(t *testing.T) {
	cs := codeWith(t, loopBundles())
	sel := NewTraceSelector(DefaultConfig(), cs)
	// Two hot targets: the loop head and the latch bundle (inside the
	// first trace).
	samples := btbSamples(0x1012, 0x1000, 95, 100)
	samples = append(samples, btbSamples(0x1012, 0x1010, 95, 50)...)
	traces := sel.Select(samples)
	if len(traces) != 1 {
		t.Fatalf("covered target re-selected: %d traces", len(traces))
	}
}

func TestTraceMaxBundlesBound(t *testing.T) {
	// Straight-line code with no branches: growth must stop at the cap.
	bundles := make([]isa.Bundle, 300)
	for i := range bundles {
		bundles[i] = isa.Bundle{Tmpl: isa.TmplMII, Slots: [3]isa.Inst{{Op: isa.OpAddI, R1: 20, Imm: 1, R3: 20}, isa.Nop, isa.Nop}}
	}
	bundles[299] = isa.Bundle{Tmpl: isa.TmplBBB, Slots: [3]isa.Inst{{Op: isa.OpHalt}, isa.Nop, isa.Nop}}
	cs := codeWith(t, bundles)
	cfg := DefaultConfig()
	cfg.MaxTraceBundles = 32
	sel := NewTraceSelector(cfg, cs)
	traces := sel.Select(btbSamples(0x2200, 0x1000, 100, 100))
	if len(traces) != 1 || len(traces[0].Bundles) > 32 {
		t.Fatalf("trace growth unbounded: %d bundles", len(traces[0].Bundles))
	}
}

func TestPoolTargetsSkipped(t *testing.T) {
	cfg := DefaultConfig()
	cs := codeWith(t, loopBundles())
	sel := NewTraceSelector(cfg, cs)
	traces := sel.Select(btbSamples(cfg.TracePoolBase+0x20, cfg.TracePoolBase, 95, 100))
	if len(traces) != 0 {
		t.Fatal("trace selected inside the trace pool")
	}
}

func TestTraceInstCountAndLfetch(t *testing.T) {
	tr := traceFromInsts([]isa.Inst{
		{Op: isa.OpLd8, R1: 20, R3: 14, PostInc: 8},
		{Op: isa.OpLfetch, R3: 26, PostInc: 8},
		{Op: isa.OpAdd, R1: 21, R2: 21, R3: 20},
	})
	if !tr.ContainsLfetch() {
		t.Fatal("lfetch not found")
	}
	if got := tr.InstCount(); got != 4 { // 3 + back-edge branch
		t.Fatalf("InstCount = %d, want 4", got)
	}
}
