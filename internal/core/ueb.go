package core

import (
	"math"

	"repro/internal/pmu"
)

// WindowMetrics summarizes one profile window — the period of time it took
// the System Sample Buffer to fill. The phase detector works exclusively on
// these three values, exactly as in §2.3 of the paper.
type WindowMetrics struct {
	Seq      int
	CPI      float64
	DPI      float64
	PCCenter float64
	PCDev    float64 // stddev of sample PCs after outlier removal

	StartCycle uint64
	EndCycle   uint64
	Retired    uint64 // instructions retired within the window
	DearEvents int
}

// UEB is the User Event Buffer: a circular store of the last W profile
// windows, each holding the raw samples plus derived metrics.
type UEB struct {
	w       int
	windows []windowData
	seq     int

	prevCycles  uint64
	prevRetired uint64
	prevDMiss   uint64
	havePrev    bool
}

type windowData struct {
	samples []pmu.Sample
	metrics WindowMetrics
}

// NewUEB returns a buffer holding w windows.
func NewUEB(w int) *UEB {
	return &UEB{w: w}
}

// AddWindow ingests one SSB-overflow delivery (the signal handler's copy).
// It computes the window's metrics from the accumulative counters.
func (u *UEB) AddWindow(samples []pmu.Sample) WindowMetrics {
	cp := make([]pmu.Sample, len(samples))
	copy(cp, samples)

	m := WindowMetrics{Seq: u.seq}
	u.seq++
	if len(cp) > 0 {
		last := cp[len(cp)-1]
		startCyc, startRet, startMiss := last.Cycles, last.Retired, last.DMiss
		if u.havePrev {
			startCyc, startRet, startMiss = u.prevCycles, u.prevRetired, u.prevDMiss
		} else {
			first := cp[0]
			startCyc, startRet, startMiss = first.Cycles, first.Retired, first.DMiss
		}
		dCyc := float64(last.Cycles - startCyc)
		dRet := float64(last.Retired - startRet)
		dMiss := float64(last.DMiss - startMiss)
		if dRet > 0 {
			m.CPI = dCyc / dRet
			m.DPI = dMiss / dRet
		}
		m.StartCycle = startCyc
		m.EndCycle = last.Cycles
		m.Retired = uint64(dRet)
		u.prevCycles, u.prevRetired, u.prevDMiss = last.Cycles, last.Retired, last.DMiss
		u.havePrev = true
	}
	m.PCCenter, m.PCDev = pcCenter(cp)
	for _, s := range cp {
		if s.DEAR.Valid {
			m.DearEvents++
		}
	}

	u.windows = append(u.windows, windowData{samples: cp, metrics: m})
	if len(u.windows) > u.w {
		u.windows = u.windows[len(u.windows)-u.w:]
	}
	return m
}

// pcCenter estimates the center of the code area of a window: the
// arithmetic mean of sample PCs after removing noise (samples more than
// two standard deviations from the raw mean).
func pcCenter(samples []pmu.Sample) (center, dev float64) {
	if len(samples) == 0 {
		return 0, 0
	}
	mean, sd := meanStddevPC(samples, nil)
	if sd > 0 {
		keep := make([]bool, len(samples))
		kept := 0
		for i, s := range samples {
			if math.Abs(float64(s.PC)-mean) <= 2*sd {
				keep[i] = true
				kept++
			}
		}
		if kept > 0 && kept < len(samples) {
			mean, sd = meanStddevPC(samples, keep)
		}
	}
	return mean, sd
}

func meanStddevPC(samples []pmu.Sample, keep []bool) (mean, sd float64) {
	n := 0
	var sum float64
	for i, s := range samples {
		if keep != nil && !keep[i] {
			continue
		}
		sum += float64(s.PC)
		n++
	}
	if n == 0 {
		return 0, 0
	}
	mean = sum / float64(n)
	var ss float64
	for i, s := range samples {
		if keep != nil && !keep[i] {
			continue
		}
		d := float64(s.PC) - mean
		ss += d * d
	}
	sd = math.Sqrt(ss / float64(n))
	return mean, sd
}

// Windows returns the metrics of the buffered windows, oldest first.
func (u *UEB) Windows() []WindowMetrics {
	out := make([]WindowMetrics, len(u.windows))
	for i, w := range u.windows {
		out[i] = w.metrics
	}
	return out
}

// Seq returns the total number of windows ever ingested.
func (u *UEB) Seq() int { return u.seq }

// Samples returns all buffered samples, oldest window first.
func (u *UEB) Samples() []pmu.Sample {
	var out []pmu.Sample
	for _, w := range u.windows {
		out = append(out, w.samples...)
	}
	return out
}

// LastWindows returns up to n most recent window metrics, oldest first.
func (u *UEB) LastWindows(n int) []WindowMetrics {
	ws := u.Windows()
	if len(ws) > n {
		ws = ws[len(ws)-n:]
	}
	return ws
}

// LastSamples returns the samples of the up-to-n most recent windows,
// oldest first — the "most recent delinquent loads" view of §3(a), as
// opposed to the full-UEB view trace selection uses for path profiles.
func (u *UEB) LastSamples(n int) []pmu.Sample {
	start := len(u.windows) - n
	if start < 0 {
		start = 0
	}
	var out []pmu.Sample
	for _, w := range u.windows[start:] {
		out = append(out, w.samples...)
	}
	return out
}

// SamplesSince returns the samples of every buffered window with sequence
// number >= seq — used to scope delinquent-load identification to exactly
// the windows that established a stable phase.
func (u *UEB) SamplesSince(seq int) []pmu.Sample {
	var out []pmu.Sample
	for _, w := range u.windows {
		if w.metrics.Seq >= seq {
			out = append(out, w.samples...)
		}
	}
	return out
}
