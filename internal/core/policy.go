package core

import (
	"fmt"
	"sort"

	"repro/internal/memsys"
	"repro/internal/pmu"
	"repro/internal/program"
)

// This file factors the controller's three decision points behind narrow
// interfaces, so the paper's pipeline becomes one policy among several
// rather than the only possible behaviour. The defaults are the paper's
// own components, extracted verbatim: a run with Config.Policy unset is
// bit-identical to the pre-refactor controller.
//
//	PhasePolicy    — profile windows → stable-phase decisions (§2.3)
//	TracePolicy    — stable phase + UEB samples → candidate traces (§2.4)
//	PrefetchPolicy — loop trace + delinquent loads → injected code (§3)
//
// Prefetch policies are named and registered (RegisterPrefetchPolicy) so
// the config layer, CLIs and the fuzzer can select them by string, and the
// runtime Selector (selector.go) can enumerate them.

// PhasePolicy turns the stream of profile windows into phase events. The
// paper's implementation is the coarse-grain PhaseDetector (phase.go).
type PhasePolicy interface {
	// PolicyName identifies the implementation in configs and summaries.
	PolicyName() string
	// Observe consumes one profile window and reports whether a stable
	// phase was established or a previously stable phase ended.
	Observe(w WindowMetrics) (PhaseEvent, *PhaseInfo)
}

// TracePolicy selects candidate traces for a newly stable phase. The
// paper's implementation grows traces from BTB path profiles
// (traceselect.go); info carries the phase the selection serves, for
// policies that want to focus on the phase's PC-center.
type TracePolicy interface {
	PolicyName() string
	Select(info *PhaseInfo, samples []pmu.Sample) []*Trace
}

// PrefetchContext carries the runtime signals a prefetch policy may
// consult, gathered read-only at decision time. Only PhaseCPI influences
// the paper policy; the alternatives read the prefetch-usefulness and
// bus-occupancy counters (the PR-3 PfLate/PfUnused instrumentation).
type PrefetchContext struct {
	// PhaseCPI is the stable phase's CPI — the paper's input to the
	// prefetch-distance computation.
	PhaseCPI float64
	// Cycle is the simulated clock at decision time (0 when unattached).
	Cycle uint64
	// Prefetch is the cumulative lfetch usefulness accounting.
	Prefetch memsys.PrefetchStats
	// BusWaitCycles / MemAccesses summarize memory-bus pressure.
	BusWaitCycles uint64
	MemAccesses   uint64
}

// PrefetchPolicy decides what prefetch code to inject into a loop trace.
// Implementations mutate t in place (like the §3 optimizer) and must keep
// every inserted write inside the reserved registers r27-r30/p6 — the
// conformance suite (policy_test.go) enforces this for every registered
// policy.
type PrefetchPolicy interface {
	PolicyName() string
	Optimize(t *Trace, loads []DelinquentLoad, ctx PrefetchContext) OptimizeResult
}

// PolicyPaper is the name of the default policy at each decision point:
// the paper's pipeline, unchanged.
const PolicyPaper = "paper"

// PolicyName makes the paper's phase detector the default PhasePolicy.
func (d *PhaseDetector) PolicyName() string { return PolicyPaper }

// paperTracePolicy reproduces the controller's original call site: a fresh
// TraceSelector per stable phase, fed the whole UEB.
type paperTracePolicy struct {
	cfg  Config
	code *program.CodeSpace
}

func (p *paperTracePolicy) PolicyName() string { return PolicyPaper }

func (p *paperTracePolicy) Select(info *PhaseInfo, samples []pmu.Sample) []*Trace {
	sel := NewTraceSelector(p.cfg, p.code)
	return sel.Select(samples)
}

// paperPrefetch adapts the §3 Optimizer: pattern classification by
// dependence slicing, distance from avg latency / body cycles.
type paperPrefetch struct{ opt *Optimizer }

func (p *paperPrefetch) PolicyName() string { return PolicyPaper }

func (p *paperPrefetch) Optimize(t *Trace, loads []DelinquentLoad, ctx PrefetchContext) OptimizeResult {
	return p.opt.Optimize(t, loads, ctx.PhaseCPI)
}

// ---- registry ----

var prefetchPolicyFactories = map[string]func(Config) PrefetchPolicy{}

// RegisterPrefetchPolicy makes a prefetch policy selectable by name
// through Config.Policy. Registration happens at init time; duplicate
// names panic (a programming error, not a runtime condition).
func RegisterPrefetchPolicy(name string, factory func(Config) PrefetchPolicy) {
	if _, dup := prefetchPolicyFactories[name]; dup {
		panic("core: duplicate prefetch policy " + name)
	}
	prefetchPolicyFactories[name] = factory
}

// PrefetchPolicyNames lists the registered prefetch policies, sorted, so
// every layer (CLIs, fuzzer, obs metadata) enumerates them identically.
func PrefetchPolicyNames() []string {
	names := make([]string, 0, len(prefetchPolicyFactories))
	for n := range prefetchPolicyFactories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewPrefetchPolicy builds the named policy ("" means PolicyPaper).
func NewPrefetchPolicy(name string, cfg Config) (PrefetchPolicy, error) {
	if name == "" {
		name = PolicyPaper
	}
	f, ok := prefetchPolicyFactories[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown prefetch policy %q (have %v)", name, PrefetchPolicyNames())
	}
	return f(cfg), nil
}

// policyIndex maps a policy name to its position in the sorted registry —
// the encoding obs events use (Event carries integers; obs.Meta.Policies
// carries the name table).
func policyIndex(name string) uint64 {
	for i, n := range PrefetchPolicyNames() {
		if n == name {
			return uint64(i)
		}
	}
	return ^uint64(0)
}

func init() {
	RegisterPrefetchPolicy(PolicyPaper, func(cfg Config) PrefetchPolicy {
		return &paperPrefetch{opt: NewOptimizer(cfg)}
	})
}
