package core

import "math"

// PhaseEvent is what the detector reports to the controller.
type PhaseEvent int

const (
	// PhaseNone: nothing new this poll.
	PhaseNone PhaseEvent = iota
	// PhaseStable: a new stable phase was detected and is eligible for
	// optimization.
	PhaseStable
	// PhaseChanged: the previously stable phase ended.
	PhaseChanged
)

// PhaseInfo describes a detected stable phase.
type PhaseInfo struct {
	PCCenter float64
	CPI      float64
	DPI      float64
	DearPerK float64         // DEAR events per 1000 retired instructions
	Windows  []WindowMetrics // the windows that established stability
}

// dearPerK computes DEAR events per 1000 instructions over windows.
func dearPerK(ws []WindowMetrics) float64 {
	var ev, ret float64
	for _, w := range ws {
		ev += float64(w.DearEvents)
		ret += float64(w.Retired)
	}
	if ret == 0 {
		return 0
	}
	return ev / ret * 1000
}

// PhaseDetector implements the coarse-grain phase detection of §2.3: a
// stable phase is StableWindows consecutive profile windows with low
// standard deviations of CPI, DPI and PC-center. When no stable phase
// appears for WindowDoubleAfter windows, the logical window size doubles
// (adjacent raw windows are merged) in case the window is too small to
// accommodate a large phase.
type PhaseDetector struct {
	cfg Config

	history []WindowMetrics // logical windows
	pending []WindowMetrics // raw windows awaiting aggregation
	agg     int             // raw windows per logical window (1, 2, 4, ...)

	inStable     bool
	sinceStable  int // logical windows since the last stable detection
	lastSig      float64
	windowsSeen  int
	DoubleEvents int

	// table accumulates window-signature occurrences (the PhaseTable
	// extension): unlike the consecutive-window rule, occurrences count
	// cumulatively, so phases that alternate faster than StableWindows
	// are still recognized once their total residency is long enough
	// (Dhodapkar/Smith-style working-set signatures).
	table       []tableEntry
	TableHits   int
	TableMisses int
}

type tableEntry struct {
	pcCenter float64
	cpiSum   float64
	dpiSum   float64
	count    int
	fired    bool
}

// NewPhaseDetector returns a detector with the given configuration.
func NewPhaseDetector(cfg Config) *PhaseDetector {
	return &PhaseDetector{cfg: cfg, agg: 1}
}

// Aggregation reports the current raw-windows-per-logical-window factor.
func (d *PhaseDetector) Aggregation() int { return d.agg }

// InStable reports whether the detector currently considers execution
// inside a stable phase.
func (d *PhaseDetector) InStable() bool { return d.inStable }

// Observe ingests one raw profile window and reports any phase event.
func (d *PhaseDetector) Observe(w WindowMetrics) (PhaseEvent, *PhaseInfo) {
	d.windowsSeen++
	d.pending = append(d.pending, w)
	if len(d.pending) < d.agg {
		return PhaseNone, nil
	}
	logical := mergeWindows(d.pending)
	d.pending = d.pending[:0]
	d.history = append(d.history, logical)
	if len(d.history) > d.cfg.StableWindows {
		d.history = d.history[len(d.history)-d.cfg.StableWindows:]
	}

	// PhaseTable path: count this window's signature occurrence; when a
	// signature has accumulated StableWindows occurrences — consecutive
	// or not — its phase is declared stable. This is what catches
	// programs whose phases alternate faster than the consecutive rule
	// can confirm.
	if d.cfg.PhaseTable {
		if info := d.tableObserve(logical); info != nil {
			d.sinceStable = 0
			d.inStable = true
			d.lastSig = info.PCCenter
			return PhaseStable, info
		}
	}

	if len(d.history) == d.cfg.StableWindows && d.isStable() {
		info := &PhaseInfo{
			PCCenter: meanOf(d.history, func(m WindowMetrics) float64 { return m.PCCenter }),
			CPI:      meanOf(d.history, func(m WindowMetrics) float64 { return m.CPI }),
			DPI:      meanOf(d.history, func(m WindowMetrics) float64 { return m.DPI }),
			DearPerK: dearPerK(d.history),
			Windows:  append([]WindowMetrics(nil), d.history...),
		}
		d.sinceStable = 0
		if d.inStable && math.Abs(info.PCCenter-d.lastSig) <= d.cfg.PCDev*2 {
			// Still the same phase: no new event.
			return PhaseNone, nil
		}
		d.inStable = true
		d.lastSig = info.PCCenter
		d.remember(info)
		return PhaseStable, info
	}

	d.sinceStable++
	ev := PhaseNone
	if d.inStable {
		d.inStable = false
		ev = PhaseChanged
	}
	if d.cfg.WindowDoubleAfter > 0 && d.sinceStable >= d.cfg.WindowDoubleAfter && d.agg < 8 {
		d.agg *= 2
		d.sinceStable = 0
		d.history = d.history[:0]
		d.DoubleEvents++
	}
	return ev, nil
}

// tableObserve folds one window into the signature table and reports a
// newly confirmed phase the first time its cumulative occurrence count
// reaches StableWindows.
func (d *PhaseDetector) tableObserve(w WindowMetrics) *PhaseInfo {
	var e *tableEntry
	for i := range d.table {
		if math.Abs(d.table[i].pcCenter-w.PCCenter) <= d.cfg.PCDev {
			e = &d.table[i]
			break
		}
	}
	if e == nil {
		d.table = append(d.table, tableEntry{pcCenter: w.PCCenter})
		e = &d.table[len(d.table)-1]
		d.TableMisses++
	} else {
		d.TableHits++
	}
	e.count++
	e.cpiSum += w.CPI
	e.dpiSum += w.DPI
	// Drift the center toward recent windows.
	e.pcCenter += (w.PCCenter - e.pcCenter) / float64(e.count)
	if e.fired || e.count < d.cfg.StableWindows {
		return nil
	}
	e.fired = true
	return &PhaseInfo{
		PCCenter: e.pcCenter,
		CPI:      e.cpiSum / float64(e.count),
		DPI:      e.dpiSum / float64(e.count),
		DearPerK: dearPerK([]WindowMetrics{w}),
		Windows:  []WindowMetrics{w},
	}
}

// remember marks a consecutively-confirmed phase as fired in the table so
// the occurrence path does not re-announce it.
func (d *PhaseDetector) remember(info *PhaseInfo) {
	if !d.cfg.PhaseTable {
		return
	}
	for i := range d.table {
		if math.Abs(d.table[i].pcCenter-info.PCCenter) <= d.cfg.PCDev {
			d.table[i].fired = true
			return
		}
	}
	d.table = append(d.table, tableEntry{pcCenter: info.PCCenter, cpiSum: info.CPI, dpiSum: info.DPI, count: 1, fired: true})
}

// isStable applies the three deviation thresholds over the history.
func (d *PhaseDetector) isStable() bool {
	cpiM, cpiSD := meanStddev(d.history, func(m WindowMetrics) float64 { return m.CPI })
	dpiM, dpiSD := meanStddev(d.history, func(m WindowMetrics) float64 { return m.DPI })
	_, pcSD := meanStddev(d.history, func(m WindowMetrics) float64 { return m.PCCenter })
	if cpiM <= 0 {
		return false
	}
	if cpiSD/cpiM > d.cfg.CPIDev {
		return false
	}
	// DPI deviation is relative when misses are significant; a phase
	// with near-zero misses is stable regardless of its DPI jitter.
	if dpiM > d.cfg.MinDPI && dpiSD/dpiM > d.cfg.DPIDev {
		return false
	}
	return pcSD <= d.cfg.PCDev
}

func mergeWindows(ws []WindowMetrics) WindowMetrics {
	if len(ws) == 1 {
		return ws[0]
	}
	out := ws[0]
	out.DearEvents = 0
	var cyc, ret, miss float64
	var pcSum float64
	for _, w := range ws {
		dRet := float64(w.Retired)
		cyc += w.CPI * dRet
		miss += w.DPI * dRet
		ret += dRet
		pcSum += w.PCCenter
		out.DearEvents += w.DearEvents
		out.EndCycle = w.EndCycle
	}
	if ret > 0 {
		out.CPI = cyc / ret
		out.DPI = miss / ret
		out.Retired = uint64(ret)
	}
	out.PCCenter = pcSum / float64(len(ws))
	return out
}

func meanOf(ws []WindowMetrics, f func(WindowMetrics) float64) float64 {
	m, _ := meanStddev(ws, f)
	return m
}

func meanStddev(ws []WindowMetrics, f func(WindowMetrics) float64) (mean, sd float64) {
	if len(ws) == 0 {
		return 0, 0
	}
	var sum float64
	for _, w := range ws {
		sum += f(w)
	}
	mean = sum / float64(len(ws))
	var ss float64
	for _, w := range ws {
		d := f(w) - mean
		ss += d * d
	}
	sd = math.Sqrt(ss / float64(len(ws)))
	return mean, sd
}
