package core

import "repro/internal/isa"

// Alternative prefetch policies. Each one is a different answer to "what
// should be injected for these delinquent loads?" than the paper's §3
// slice analysis:
//
//	nextline — pattern-oblivious: prefetch the line after every miss
//	adaptive — the paper's analysis, with the distance retuned from the
//	           runtime lfetch-usefulness counters (late → further ahead,
//	           evicted-unused → closer in)
//	throttle — the paper's analysis, restricted to the single hottest
//	           load when the memory bus is already saturated
//
// All three obey the same contract as the paper policy: writes confined
// to the reserved registers, no branches, verifier-clean output (the
// conformance suite in policy_test.go checks every registered policy).

// Policy names of the built-in alternatives.
const (
	PolicyNextLine = "nextline"
	PolicyAdaptive = "adaptive"
	PolicyThrottle = "throttle"
)

// nextLineDistance is one L1D line: the classic next-line prefetch.
const nextLineDistance = 64

// nextLinePrefetch ignores reference patterns entirely: for every
// delinquent load it re-anchors a reserved cursor off the load's own
// address register each iteration (rp = rA + 64) and prefetches the next
// cache line. It needs no slice analysis, so it still fires on loads the
// paper policy reports as unclassifiable — which is why the runtime
// selector uses it as the fallback — but it can only hide one line of
// latency and prefetches garbage on pointer chases with line-sized nodes.
type nextLinePrefetch struct {
	cfg Config
}

func (p *nextLinePrefetch) PolicyName() string { return PolicyNextLine }

func (p *nextLinePrefetch) Optimize(t *Trace, loads []DelinquentLoad, ctx PrefetchContext) OptimizeResult {
	var res OptimizeResult
	if !t.IsLoop || len(loads) == 0 {
		return res
	}
	hasStatic := t.ContainsLfetch()
	reserved := []isa.Reg{isa.ReservedGRFirst, isa.ReservedGRFirst + 1, isa.ReservedGRFirst + 2, isa.ReservedGRLast}
	for _, dl := range loads {
		if hasStatic {
			// Like the paper's direct case: O3 binaries already prefetch
			// the analyzable streams; next-line on top double-fetches.
			res.Skipped++
			continue
		}
		if len(reserved) == 0 {
			res.Failures++
			continue
		}
		if p.emitNextLine(t, dl.PC, reserved[0]) {
			reserved = reserved[1:]
			res.RegsUsed++
			res.Direct++
		} else {
			res.Failures++
		}
	}
	return res
}

// emitNextLine places "add rp = 64, rA ; lfetch [rp]" after the load at
// loadPC, where rA is the load's address register. The cursor is
// re-anchored every iteration, so the prefetch tracks any address stream;
// rp is redefined in the loop body, which is what makes a non-advancing
// lfetch legal under the verifier's zero-effective-stride rule.
func (p *nextLinePrefetch) emitNextLine(t *Trace, loadPC uint64, rp isa.Reg) bool {
	b := flatten(t)
	pos := -1
	bundleAddr := loadPC &^ uint64(isa.BundleBytes-1)
	slot := int(loadPC & uint64(isa.BundleBytes-1))
	for bi, a := range t.Orig {
		if a == bundleAddr {
			pos = b.find(bi, slot)
			break
		}
	}
	if pos < 0 {
		return false
	}
	fi := b.insts[pos]
	addrReg := fi.in.R3
	if addrReg == 0 || !isa.IsLoad(fi.in.Op) {
		return false
	}
	ed := &editor{t: t, naive: p.cfg.NaiveSchedule}
	bi, si, ok := ed.place(isa.Inst{Op: isa.OpAddI, R1: rp, Imm: nextLineDistance, R3: addrReg},
		fi.bundle, fi.slot+1, false)
	if !ok {
		return false
	}
	_, _, ok = ed.place(isa.Inst{Op: isa.OpLfetch, R3: rp}, bi, si+1, false)
	return ok
}

// Adaptive-distance thresholds: retuning only starts once enough lfetches
// resolved to be statistically meaningful, and only reacts to clearly
// skewed outcomes.
const (
	adaptiveMinIssued  = 64
	adaptiveLateFrac   = 0.25 // late / (useful + late) above this → too close
	adaptiveUnusedFrac = 0.25 // evicted-unused / issued above this → too far
	adaptiveGrow       = 2.0
	adaptiveShrink     = 0.5
)

// adaptivePrefetch runs the paper's slice analysis but retunes the
// prefetch distance from the runtime usefulness counters: a stream of
// late prefetches (demand load arrived while the fill was in flight)
// doubles the distance; a stream of evicted-unused prefetches (fills
// pushed out before any hit) halves it. With balanced counters — or
// before enough lfetches resolved — it is exactly the paper policy.
type adaptivePrefetch struct {
	opt *Optimizer
}

func (p *adaptivePrefetch) PolicyName() string { return PolicyAdaptive }

// distScale derives the retuning factor from the usefulness counters.
func (p *adaptivePrefetch) distScale(ctx PrefetchContext) float64 {
	pf := ctx.Prefetch
	if pf.Issued < adaptiveMinIssued {
		return 1.0
	}
	if resolved := pf.Useful + pf.Late; resolved > 0 &&
		float64(pf.Late) > adaptiveLateFrac*float64(resolved) {
		return adaptiveGrow
	}
	if float64(pf.EvictedUnused) > adaptiveUnusedFrac*float64(pf.Issued) {
		return adaptiveShrink
	}
	return 1.0
}

func (p *adaptivePrefetch) Optimize(t *Trace, loads []DelinquentLoad, ctx PrefetchContext) OptimizeResult {
	return p.opt.optimizeScaled(t, loads, ctx.PhaseCPI, p.distScale(ctx))
}

// throttleBusFrac is the fraction of all cycles spent waiting for the
// memory bus above which the throttling policy considers the bus
// saturated. The simulated bus serializes at one access per
// memsys.Config.BusOccupancy cycles, so sustained queueing shows up
// directly in this ratio.
const throttleBusFrac = 0.05

// throttlePrefetch is the paper policy with bus-occupancy-aware admission:
// when the run is already losing more than throttleBusFrac of its cycles
// to bus queueing, extra prefetch streams mostly add traffic, so only the
// single hottest delinquent load is prefetched. On an idle bus it is
// exactly the paper policy.
type throttlePrefetch struct {
	opt *Optimizer
}

func (p *throttlePrefetch) PolicyName() string { return PolicyThrottle }

// throttled reports whether the bus is saturated enough to restrict
// prefetching.
func throttled(ctx PrefetchContext) bool {
	return ctx.Cycle > 0 && float64(ctx.BusWaitCycles) > throttleBusFrac*float64(ctx.Cycle)
}

func (p *throttlePrefetch) Optimize(t *Trace, loads []DelinquentLoad, ctx PrefetchContext) OptimizeResult {
	if throttled(ctx) && len(loads) > 1 {
		loads = loads[:1] // FindDelinquentLoads ranks by total miss latency
	}
	return p.opt.Optimize(t, loads, ctx.PhaseCPI)
}

func init() {
	RegisterPrefetchPolicy(PolicyNextLine, func(cfg Config) PrefetchPolicy {
		return &nextLinePrefetch{cfg: cfg}
	})
	RegisterPrefetchPolicy(PolicyAdaptive, func(cfg Config) PrefetchPolicy {
		return &adaptivePrefetch{opt: NewOptimizer(cfg)}
	})
	RegisterPrefetchPolicy(PolicyThrottle, func(cfg Config) PrefetchPolicy {
		return &throttlePrefetch{opt: NewOptimizer(cfg)}
	})
}
