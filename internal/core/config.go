// Package core implements ADORE — ADaptive Object code REoptimization —
// the paper's contribution: a trace-based dynamic optimizer driven by
// hardware performance-monitoring samples, whose sole optimization here (as
// in the paper) is runtime data-cache prefetching.
//
// The pipeline matches §2-§3 of the paper:
//
//	PMU samples → User Event Buffer → coarse-grain phase detector →
//	trace selection from BTB path profiles → delinquent-load tracking
//	via DEAR → dependence-slice pattern analysis (direct / indirect /
//	pointer-chasing) → prefetch generation with the reserved registers
//	r27-r30 → prefetch scheduling into free slots → trace patching.
package core

import "repro/internal/pmu"

// Config scales ADORE for simulated runs. The paper's wall-clock values
// (100k-300k cycle sampling, 100 ms poll, multi-second windows) are scaled
// down with the run length; every structural ratio the algorithms rely on
// (UEB = W profile windows, window ≫ sampling interval) is preserved.
type Config struct {
	Sampling pmu.Config

	// W is the number of profile windows the User Event Buffer holds
	// (SIZE_UEB = SIZE_SSB * W; the paper uses W = 16).
	W int

	// PollInterval is the cycle distance between phase-detector polls
	// (the paper's 100 ms hibernation).
	PollInterval uint64

	// StableWindows is how many consecutive low-deviation profile
	// windows constitute a stable phase.
	StableWindows int

	// CPIDev / DPIDev are the maximum relative standard deviations of
	// CPI and D-miss-per-instruction across StableWindows windows.
	CPIDev float64
	DPIDev float64
	// PCDev is the maximum standard deviation of window PC-centers, in
	// bytes of code distance.
	PCDev float64

	// MinDPI ignores phases whose data-cache miss rate is too low to be
	// worth prefetching ("we ignore phases that do not have high cache
	// miss rate").
	MinDPI float64

	// MinDearPerK is the minimum DEAR events per 1000 instructions a
	// stable phase must sustain. The DPI counter includes L1 misses that
	// hit L2 quickly; only the >= DearLatencyMin events are fixable by
	// prefetching, so a phase without them is left alone even when its
	// L1 miss rate is high.
	MinDearPerK float64

	// WindowDoubleAfter doubles the logical profile window when this
	// many windows pass without a stable phase ("the phase detector
	// doubles the size of the profile window").
	WindowDoubleAfter int

	// MaxDelinquentLoads caps prefetching per loop trace (the paper's
	// "top three miss instructions in each loop-type trace").
	MaxDelinquentLoads int

	// MinLatencyShare drops delinquent loads contributing less than
	// this fraction of the trace's total sampled miss latency.
	MinLatencyShare float64

	// MinDearEvents is the minimum number of sampled miss events a trace
	// must show before it is optimized — "a typical compiler would not
	// attempt high overhead prefetching unless there is sufficient
	// evidence"; neither does the runtime optimizer.
	MinDearEvents int

	// BranchBias is the taken-ratio above which trace selection follows
	// a branch (and below 1-BranchBias, falls through); in between the
	// branch is "balanced" and stops the trace.
	BranchBias float64

	// MaxTraceBundles bounds trace growth.
	MaxTraceBundles int

	// MaxTraces bounds how many traces are selected per stable phase.
	MaxTraces int

	// TracePoolBase / TracePoolBundles size the shared-memory trace
	// pool dyn_open allocates.
	TracePoolBase    uint64
	TracePoolBundles int

	// PatchCharge is the cycle cost billed to the main thread per
	// installed patch (the brief stop while bundles are swapped).
	PatchCharge uint64

	// IterAheadLog2 is the pointer-chasing prefetch distance as a
	// shladd shift count: the induction-pointer delta is amplified by
	// 2^IterAheadLog2 iterations.
	IterAheadLog2 int64

	// MaxPrefetchIters caps the computed prefetch distance in
	// iterations for direct/indirect prefetching.
	MaxPrefetchIters int64

	// DisableInsertion runs the full pipeline but installs no patches —
	// the Fig. 11 overhead measurement.
	DisableInsertion bool

	// NoLineAlign disables the L1D-line alignment of small integer
	// prefetch distances (§3.3) — an ablation knob.
	NoLineAlign bool

	// NaiveSchedule makes the prefetch scheduler always insert fresh
	// bundles instead of reusing otherwise wasted empty slots (§3.5) —
	// an ablation knob quantifying the cost of ineffective insertion.
	NaiveSchedule bool

	// Verify runs the static machine-code verifier (internal/verify) on
	// every edited trace before installation; a trace with findings is
	// rejected and the original code left unpatched (fail-safe). On by
	// default: the check is cheap relative to trace optimization.
	Verify bool

	// UnpatchSlowdown is the relative CPI regression (observed on an
	// optimized phase vs. its pre-patch CPI) that triggers unpatching.
	UnpatchSlowdown float64

	// Observe records a cycle-stamped structured event stream of the
	// controller's pipeline (internal/obs): profile windows, phase events,
	// trace selection, patching, and — when the CPU runs with
	// cpu.Config.Accounting — per-window CPI-stack and prefetch-usefulness
	// counters. Off by default; when off no recorder exists and the
	// controller's behaviour and timing are bit-identical to a build
	// without the observability layer.
	Observe bool

	// ObserveCapacity bounds the event ring (obs.DefaultCapacity when 0).
	ObserveCapacity int

	// Telemetry is the controller's live metric set (telemetry.go). The
	// zero value disables it for free; it is excluded from the run
	// fingerprint (instruments observe a run without shaping its result).
	Telemetry Telemetry `json:"-"`

	// Policy names the prefetch policy driving §3 code injection. The
	// empty string (and "paper") is the paper's slice-analysis pipeline;
	// see RegisterPrefetchPolicy / PrefetchPolicyNames for the rest.
	// NewController rejects unknown names.
	Policy string

	// Selector enables the runtime policy selector (selector.go): the
	// prefetch policy is chosen per stable phase from the machine's live
	// bus and prefetch-usefulness counters, overriding Policy.
	Selector bool

	// ---- §6 future-work extensions (all off by default: the paper's
	// published system) ----

	// OptimizeSWPLoops lets trace selection keep software-pipelined
	// loops and the prefetcher optimize them ("we plan to enhance our
	// algorithm to also handle software pipelined loops"). The simulated
	// SWP scheme renames statically instead of rotating registers, so
	// the dependence slicer works unchanged; the paper's hardware could
	// not assume that.
	OptimizeSWPLoops bool

	// PhaseTable remembers the signatures of previously seen stable
	// phases; a recurring phase is re-recognized after a single matching
	// window instead of StableWindows of them — the improvement §6 asks
	// for on "programs with rapid phase changes".
	PhaseTable bool

	// StrideProfiling enables selective runtime instrumentation ("we are
	// investigating the possibility of adding selective runtime
	// instrumentation to collect information not available from HPM"):
	// when slice analysis fails on a delinquent load, the trace is
	// patched with code that records the load's address every iteration;
	// if the recorded addresses show a dominant constant stride, the
	// instrumentation is replaced by a direct prefetch at that stride.
	StrideProfiling bool

	// InstrBufBase is where instrumentation buffers live in the
	// simulated address space.
	InstrBufBase uint64

	// InstrMinSamples is the minimum number of recorded addresses before
	// the stride histogram is evaluated.
	InstrMinSamples int

	// InstrMinShare is the fraction of deltas that must agree for a
	// stride to count as dominant.
	InstrMinShare float64
}

// PolicyKey names the effective prefetch-policy configuration — the string
// cache keys, JSON metadata and summaries use. "selector" when the runtime
// selector is on, else the policy name ("paper" for the default).
func (c Config) PolicyKey() string {
	if c.Selector {
		return "selector"
	}
	if c.Policy == "" {
		return PolicyPaper
	}
	return c.Policy
}

// DefaultConfig returns parameters scaled for runs of 5-100 M instructions.
func DefaultConfig() Config {
	return Config{
		Sampling:           pmu.DefaultConfig(),
		W:                  16,
		PollInterval:       100_000,
		StableWindows:      4,
		CPIDev:             0.12,
		DPIDev:             0.35,
		PCDev:              384,
		MinDPI:             0.0015,
		MinDearPerK:        0.05,
		WindowDoubleAfter:  24,
		MaxDelinquentLoads: 3,
		MinLatencyShare:    0.05,
		MinDearEvents:      16,
		BranchBias:         0.70,
		MaxTraceBundles:    128,
		MaxTraces:          8,
		TracePoolBase:      0x4000_0000,
		TracePoolBundles:   4096,
		PatchCharge:        2000,
		IterAheadLog2:      2,
		MaxPrefetchIters:   64,
		UnpatchSlowdown:    1.15,
		Verify:             true,
		InstrBufBase:       0x6000_0000,
		InstrMinSamples:    2048,
		InstrMinShare:      0.60,
	}
}
