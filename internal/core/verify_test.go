package core

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/pmu"
	"repro/internal/program"
	"repro/internal/verify"
)

func testController(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c, err := NewController(cfg, program.NewCodeSpace(), pmu.New(cfg.Sampling))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestVerifyTraceRejectsClobber drives the controller's fail-safe path: a
// "patch" that increments the loop counter (live program state) must be
// rejected before installation, counted, and surfaced via Findings.
func TestVerifyTraceRejectsClobber(t *testing.T) {
	c := testController(t, DefaultConfig())

	tr := twoBundleLoop()
	pristine := cloneTrace(tr)
	tr.Bundles[0].Slots[1] = isa.Inst{Op: isa.OpAddI, R1: 10, Imm: 8, R3: 10}

	if c.verifyTrace(tr, pristine) {
		t.Fatal("trace clobbering a live register passed verification")
	}
	if c.Stats.TracesVerified != 1 || c.Stats.VerifyRejects != 1 {
		t.Fatalf("stats = %+v, want 1 verified / 1 rejected", c.Stats)
	}
	fs := c.Findings()
	if len(fs) == 0 {
		t.Fatal("rejection left no findings")
	}
	for _, f := range fs {
		if f.Rule != verify.RuleClobber {
			t.Fatalf("finding %v, want rule %q", f, verify.RuleClobber)
		}
	}
}

func TestVerifyTraceAcceptsUntouchedTrace(t *testing.T) {
	c := testController(t, DefaultConfig())
	tr := twoBundleLoop()
	if !c.verifyTrace(tr, cloneTrace(tr)) {
		t.Fatalf("pristine trace rejected: %v", c.Findings())
	}
	if c.Stats.TracesVerified != 1 || c.Stats.VerifyRejects != 0 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestVerifyDisabledAcceptsAnything(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Verify = false
	c := testController(t, cfg)
	tr := twoBundleLoop()
	pristine := cloneTrace(tr)
	tr.Bundles[0].Slots[1] = isa.Inst{Op: isa.OpAddI, R1: 10, Imm: 8, R3: 10}
	if !c.verifyTrace(tr, pristine) {
		t.Fatal("verifyTrace rejected with Verify off")
	}
	if c.Stats.TracesVerified != 0 {
		t.Fatalf("stats counted a check with Verify off: %+v", c.Stats)
	}
}

// TestOptimizerOutputVerifies runs the real optimizer over the canonical
// loop fixture and checks its edits pass the verifier — the invariant the
// in-pipeline hook depends on.
func TestOptimizerOutputVerifies(t *testing.T) {
	cfg := DefaultConfig()
	c := testController(t, cfg)
	tr := twoBundleLoop()
	pristine := cloneTrace(tr)
	loads := []DelinquentLoad{{
		Bundle: 0, Slot: 0, PC: tr.Orig[0],
		Count: 64, TotalLatency: 8000, AvgLatency: 120,
	}}
	res := NewOptimizer(cfg).Optimize(tr, loads, 2.0)
	if res.Total() == 0 {
		t.Fatal("optimizer inserted nothing")
	}
	if !c.verifyTrace(tr, pristine) {
		t.Fatalf("optimizer output rejected: %v", c.Findings())
	}
}
