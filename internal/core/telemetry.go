package core

import "repro/internal/metrics"

// Telemetry is the controller's live metric set: counters the control
// loop bumps as its pipeline events happen, so an adore-bench process
// serving /metrics shows optimizer activity while long experiments are
// still running (Stats carries the same totals, but only after a run
// finishes).
//
// The zero value is the disabled telemetry: every field is a nil
// instrument whose methods are no-ops (the internal/metrics contract), so
// the controller increments unconditionally and pays two nil checks per
// event when telemetry is off.
//
// These counters aggregate across every run wired to the same registry —
// a fleet view, not a per-run one (per-run totals live in Stats). Runs
// served from the engine's result cache execute no controller, so they
// contribute nothing here; the engine's folded adore_sim_* metrics are
// the ones with served-work semantics.
type Telemetry struct {
	WindowsObserved  *metrics.Counter
	PhasesDetected   *metrics.Counter
	PhaseChanges     *metrics.Counter
	TracesSelected   *metrics.Counter
	TracesPatched    *metrics.Counter
	Unpatches        *metrics.Counter
	VerifyRejects    *metrics.Counter
	PolicySelections *metrics.Counter
	PolicySwitches   *metrics.Counter
}

// NewTelemetry registers the controller's metric set on r (nil-safe: a
// nil registry yields the zero, disabled Telemetry).
func NewTelemetry(r *metrics.Registry) Telemetry {
	return Telemetry{
		WindowsObserved:  r.Counter("adore_core_windows_observed_total", "profile windows copied from the SSB"),
		PhasesDetected:   r.Counter("adore_core_phases_detected_total", "stable phases confirmed by the detector"),
		PhaseChanges:     r.Counter("adore_core_phase_changes_total", "stable phases that ended"),
		TracesSelected:   r.Counter("adore_core_traces_selected_total", "candidate traces produced by selection"),
		TracesPatched:    r.Counter("adore_core_patches_installed_total", "traces patched live into the pool"),
		Unpatches:        r.Counter("adore_core_unpatches_total", "patches removed (unprofitable or dyn_close)"),
		VerifyRejects:    r.Counter("adore_core_verify_rejects_total", "traces the static verifier refused"),
		PolicySelections: r.Counter("adore_core_policy_selections_total", "per-phase prefetch-policy decisions"),
		PolicySwitches:   r.Counter("adore_core_policy_switches_total", "selector fallbacks after an empty optimize"),
	}
}
