package memsys

import "sort"

// FirstDiff compares two memories byte-for-byte over the union of their
// resident pages and returns the lowest differing address. A page resident
// in one memory and absent in the other compares against zeros, matching the
// read semantics of unmapped addresses — so a memory that wrote an explicit
// zero equals one that never touched the location.
func FirstDiff(a, b *Memory) (addr uint64, av, bv byte, ok bool) {
	return FirstDiffBelow(a, b, ^uint64(0))
}

// FirstDiffBelow is FirstDiff restricted to addresses strictly below limit:
// pages at or past the limit are excluded from the walk. It exists so the
// differential harness can mask a high scratch region (instrumentation
// buffers) without giving up the cheap page-granular comparison.
func FirstDiffBelow(a, b *Memory, limit uint64) (addr uint64, av, bv byte, ok bool) {
	idxSet := make(map[uint64]struct{}, len(a.pages)+len(b.pages))
	for idx := range a.pages {
		idxSet[idx] = struct{}{}
	}
	for idx := range b.pages {
		idxSet[idx] = struct{}{}
	}
	idxs := make([]uint64, 0, len(idxSet))
	for idx := range idxSet {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })

	var zero page
	for _, idx := range idxs {
		if idx<<pageBits >= limit {
			break
		}
		pa, pb := a.pages[idx], b.pages[idx]
		if pa == nil {
			pa = &zero
		}
		if pb == nil {
			pb = &zero
		}
		if *pa == *pb {
			continue
		}
		for off := 0; off < pageSize; off++ {
			byteAddr := idx<<pageBits + uint64(off)
			if byteAddr >= limit {
				break
			}
			if pa[off] != pb[off] {
				return byteAddr, pa[off], pb[off], true
			}
		}
	}
	return 0, 0, 0, false
}

// FirstDiffRange is FirstDiff restricted to [base, base+length): the first
// differing byte inside the window, if any. Use it to compare a declared
// output buffer while ignoring scratch regions.
func FirstDiffRange(a, b *Memory, base, length uint64) (addr uint64, av, bv byte, ok bool) {
	for off := uint64(0); off < length; off++ {
		x, y := a.readByte(base+off), b.readByte(base+off)
		if x != y {
			return base + off, x, y, true
		}
	}
	return 0, 0, 0, false
}
