package memsys

import (
	"reflect"
	"sync"
	"testing"
)

// checkFieldCoverage is the state-exhaustiveness net for the fork engine:
// every field of a snapshottable struct must be explicitly classified.
// Adding a field without teaching Reset/Snapshot/Restore (or consciously
// classifying it as derived/structural) fails the test by name.
func checkFieldCoverage(t *testing.T, typ reflect.Type, covered map[string]string) {
	t.Helper()
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		if _, ok := covered[name]; !ok {
			t.Errorf("%s has a new field %q not classified for snapshot coverage — teach Snapshot/Restore/Reset about it, then add it to this list", typ, name)
		}
	}
	for name := range covered {
		if _, ok := typ.FieldByName(name); !ok {
			t.Errorf("%s coverage list names %q, which no longer exists — prune it", typ, name)
		}
	}
}

func TestCacheSnapshotFieldCoverage(t *testing.T) {
	checkFieldCoverage(t, reflect.TypeOf(Cache{}), map[string]string{
		"cfg":      "validated by Restore",
		"numSets":  "derived from cfg",
		"assoc":    "derived from cfg",
		"lineBits": "derived from cfg",
		"setMask":  "derived from cfg",

		"useTick":    "captured",
		"lines":      "captured",
		"lastWay":    "captured",
		"victimIdx":  "captured",
		"victimBase": "captured",
		"victimTick": "captured",
		"Stats":      "captured",
	})
}

func TestMemoryForkFieldCoverage(t *testing.T) {
	checkFieldCoverage(t, reflect.TypeOf(Memory{}), map[string]string{
		"pages":  "captured by Fork (copy-on-write page sharing)",
		"tlb":    "derived read cache, repaired on page copy",
		"wtlb":   "derived write cache, cleared by Fork",
		"shared": "fork bookkeeping, rebuilt by Fork",
		"sealed": "fork bookkeeping",
	})
}

func TestHierarchySnapshotFieldCoverage(t *testing.T) {
	checkFieldCoverage(t, reflect.TypeOf(Hierarchy{}), map[string]string{
		"cfg":    "validated by Restore",
		"l1dLat": "derived from cfg",
		"l1iLat": "derived from cfg",
		"l2Lat":  "derived from cfg",
		"l3Lat":  "derived from cfg",

		"L1D":               "captured (per-level snapshot)",
		"L1I":               "captured (per-level snapshot)",
		"L2":                "captured (per-level snapshot)",
		"L3":                "captured (per-level snapshot)",
		"busNextFree":       "captured",
		"inflight":          "captured",
		"infHead":           "captured",
		"infCount":          "captured",
		"DroppedPrefetches": "captured",
		"PrefetchesIssued":  "captured",
		"MemAccesses":       "captured",
		"BusWaitCycles":     "captured",
		"MSHRWaitCycles":    "captured",
	})
}

// TestHierarchySnapshotRoundTrip drives a hierarchy into a non-trivial
// state (filled lines, in-flight misses, bus queueing), snapshots it,
// perturbs the original, restores, and demands the restored machine
// behave bit-identically to an unperturbed twin.
func TestHierarchySnapshotRoundTrip(t *testing.T) {
	mk := func() *Hierarchy { return NewHierarchy(DefaultConfig()) }
	drive := func(h *Hierarchy) {
		for i := uint64(0); i < 64; i++ {
			h.AccessLoad(i*3, 0x1000+i*256)
			h.AccessPrefetch(i*3+1, 0x80000+i*512)
		}
	}
	a, b := mk(), mk()
	drive(a)
	drive(b)
	snap := a.Snapshot()
	// Perturb a far away from the snapshot point.
	for i := uint64(0); i < 200; i++ {
		a.AccessStore(1000+i*7, 0xf0000+i*64)
	}
	if err := a.Restore(snap); err != nil {
		t.Fatal(err)
	}
	// Identical post-restore behavior, including MSHR and bus state.
	for i := uint64(0); i < 64; i++ {
		ra := a.AccessLoad(300+i*5, 0x2000+i*128)
		rb := b.AccessLoad(300+i*5, 0x2000+i*128)
		if ra != rb {
			t.Fatalf("access %d diverged after restore: %+v vs %+v", i, ra, rb)
		}
	}
	sa := [4]CacheStats{a.L1D.Stats, a.L1I.Stats, a.L2.Stats, a.L3.Stats}
	sb := [4]CacheStats{b.L1D.Stats, b.L1I.Stats, b.L2.Stats, b.L3.Stats}
	if sa != sb {
		t.Fatalf("cache stats diverged after restore:\n a %+v\n b %+v", sa, sb)
	}
	if a.MemAccesses != b.MemAccesses || a.BusWaitCycles != b.BusWaitCycles ||
		a.MSHRWaitCycles != b.MSHRWaitCycles || a.PrefetchesIssued != b.PrefetchesIssued {
		t.Fatalf("aggregate counters diverged after restore")
	}

	// Structural mismatch is an error, not a partial restore.
	other := DefaultConfig()
	other.MemLatency++
	if err := NewHierarchy(other).Restore(snap); err == nil {
		t.Error("restore into a different hierarchy config did not error")
	}
	lv := NewCache(CacheConfig{Name: "x", Size: 1 << 12, LineSize: 64, Assoc: 2, HitLat: 1})
	if err := lv.Restore(a.L1D.Snapshot()); err == nil {
		t.Error("restore into a different cache config did not error")
	}
}

// TestMSHRRing pins the MSHR file's ring semantics directly, table-driven
// over capacity, completion times, and reservation kinds: prefetches are
// refused at a full file, demand misses wait exactly until the earliest
// completion, and pruning pops expired entries in completion order even
// across the ring's wrap point.
func TestMSHRRing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MSHRs = 4
	cases := []struct {
		name     string
		fill     []uint64 // completion times pushed into the ring
		now      uint64
		prefetch bool
		wantOK   bool
		wantWait uint64
	}{
		{name: "empty file admits demand", fill: nil, now: 0, wantOK: true},
		{name: "empty file admits prefetch", fill: nil, now: 0, prefetch: true, wantOK: true},
		{name: "full file refuses prefetch", fill: []uint64{100, 110, 120, 130}, now: 50, prefetch: true, wantOK: false},
		{name: "full file delays demand to earliest completion", fill: []uint64{100, 110, 120, 130}, now: 50, wantOK: true, wantWait: 50},
		{name: "expired entries free slots", fill: []uint64{100, 110, 120, 130}, now: 115, wantOK: true, wantWait: 0},
		{name: "boundary: completion at now is expired", fill: []uint64{100, 110, 120, 130}, now: 100, wantOK: true, wantWait: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHierarchy(cfg)
			for _, c := range tc.fill {
				h.addInflight(c)
			}
			delay, ok := h.reserveMSHR(tc.now, tc.prefetch)
			if ok != tc.wantOK || delay != tc.wantWait {
				t.Fatalf("reserveMSHR(now=%d, pf=%v) = (%d, %v), want (%d, %v)",
					tc.now, tc.prefetch, delay, ok, tc.wantWait, tc.wantOK)
			}
			if tc.wantOK && tc.wantWait > 0 && h.MSHRWaitCycles != tc.wantWait {
				t.Fatalf("MSHRWaitCycles = %d, want %d", h.MSHRWaitCycles, tc.wantWait)
			}
		})
	}

	t.Run("ring wraps in completion order", func(t *testing.T) {
		h := NewHierarchy(cfg)
		// Cycle the ring so the head is in the middle of the storage,
		// then force a wrap: ordering must survive.
		for i := uint64(0); i < 3; i++ {
			h.addInflight(10 + i)
		}
		h.pruneInflight(12) // pops all three, head now at index 3
		for _, c := range []uint64{200, 210, 220, 230} {
			h.addInflight(c) // physically wraps the ring
		}
		for want, now := range map[uint64]uint64{200: 190, 210: 205, 220: 215, 230: 225} {
			// reserveMSHR at a full file must wait for the true earliest
			// completion regardless of physical layout.
			hh := NewHierarchy(cfg)
			hh.inflight = append([]uint64(nil), h.inflight...)
			hh.infHead, hh.infCount = h.infHead, h.infCount
			hh.pruneInflight(now)
			if hh.infCount == cfg.MSHRs {
				delay, ok := hh.reserveMSHR(now, false)
				if !ok || now+delay != want {
					t.Fatalf("at now=%d: wait until %d, want %d", now, now+delay, want)
				}
			}
		}
	})

	t.Run("snapshot preserves ring layout", func(t *testing.T) {
		h := NewHierarchy(cfg)
		for _, c := range []uint64{300, 310, 320} {
			h.addInflight(c)
		}
		h.pruneInflight(305)
		snap := h.Snapshot()
		h.addInflight(999)
		h.pruneInflight(2000)
		if err := h.Restore(snap); err != nil {
			t.Fatal(err)
		}
		if h.infCount != 2 || h.inflight[h.infHead] != 310 {
			t.Fatalf("restored ring head/count = %d/%d, want 310/2", h.inflight[h.infHead], h.infCount)
		}
	})
}

// TestMemoryForkCOW pins the copy-on-write fork semantics table-driven
// over write targets: writes after a fork are private to the writing
// side, reads through both the read- and write-TLB fast paths see the
// right page after a copy, and a forked child re-forked keeps working.
func TestMemoryForkCOW(t *testing.T) {
	const a, b = uint64(0x1000), uint64(0x200000) // distinct pages
	cases := []struct {
		name        string
		writeParent bool // write to parent after fork (else child)
		addr        uint64
	}{
		{name: "parent write does not leak into child", writeParent: true, addr: a},
		{name: "child write does not leak into parent", writeParent: false, addr: a},
		{name: "write to a fresh page stays private", writeParent: true, addr: b + 0x5000},
		{name: "child write to fresh page stays private", writeParent: false, addr: b + 0x5000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			parent := NewMemory()
			parent.Write64(a, 111)
			parent.Write64(b, 222)
			parent.Read64(a) // prime the read TLB
			child := parent.Fork()

			writer, reader := parent, child
			if !tc.writeParent {
				writer, reader = child, parent
			}
			before := reader.Read64(tc.addr)
			writer.Write64(tc.addr, 0xdead)
			if got := reader.Read64(tc.addr); got != before {
				t.Fatalf("write leaked across the fork: reader sees %#x, want %#x", got, before)
			}
			if got := writer.Read64(tc.addr); got != 0xdead {
				t.Fatalf("writer's own read-TLB is stale after COW copy: %#x", got)
			}
			// Untouched pages remain shared and correct on both sides.
			if parent.Read64(a) != 111 && tc.addr != a {
				t.Fatal("unrelated page corrupted")
			}
			// The write fast path must also be consistent: a second write
			// through wtlb, then read back.
			writer.Write64(tc.addr, 0xbeef)
			if got := writer.Read64(tc.addr); got != 0xbeef {
				t.Fatalf("second write through wtlb lost: %#x", got)
			}
		})
	}
}

// TestMemoryForkChainAndConcurrency covers the frozen-snapshot contract:
// a forked (sealed) memory may be forked again, concurrently, without
// perturbation — the fork engine resumes many continuations from one
// snapshot in parallel worker goroutines.
func TestMemoryForkChainAndConcurrency(t *testing.T) {
	parent := NewMemory()
	for i := uint64(0); i < 64; i++ {
		parent.Write64(0x1000+i*8, i*7)
	}
	frozen := parent.Fork()
	parent.Write64(0x1000, 0xffff) // probe keeps running; snapshot must not see it

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := frozen.Fork()
			for i := uint64(0); i < 64; i++ {
				if got := m.Read64(0x1000 + i*8); got != i*7 {
					t.Errorf("fork %d: word %d = %d, want %d", g, i, got, i*7)
					return
				}
			}
			m.Write64(0x1000, uint64(g)) // private to this continuation
			if got := m.Read64(0x1000); got != uint64(g) {
				t.Errorf("fork %d: private write lost", g)
			}
		}()
	}
	wg.Wait()
	if got := frozen.Read64(0x1000); got != 0 {
		t.Fatalf("frozen snapshot mutated: %#x", got)
	}
	if got := parent.Read64(0x1000); got != 0xffff {
		t.Fatalf("parent lost its own write: %#x", got)
	}
}

// TestMemoryForkFootprintSharing is the cheapness claim: forking shares
// pages instead of copying them, so a fork's marginal footprint before
// any write is zero pages.
func TestMemoryForkFootprintSharing(t *testing.T) {
	m := NewMemory()
	for i := uint64(0); i < 32; i++ {
		m.Write64(uint64(i)<<pageBits, i)
	}
	f := m.Fork()
	if f.Footprint() != m.Footprint() {
		t.Fatalf("fork footprint %d != parent %d", f.Footprint(), m.Footprint())
	}
	for i := uint64(0); i < 32; i++ {
		pm, pf := m.pages[i], f.pages[i]
		if pm != pf {
			t.Fatalf("page %d copied eagerly; fork must share", i)
		}
	}
	f.Write64(0, 99)
	if m.pages[0] == f.pages[0] {
		t.Fatal("written page still shared after COW write")
	}
	if m.Read64(0) == 99 {
		t.Fatal("COW write reached the parent")
	}
}
